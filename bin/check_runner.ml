(* check_runner: the schedule-space differential checker.

   Two modes:

   - sweep (default): enumerate apps x graphs x the schedule cross-product
     x worker counts under a time budget, judge every point against the
     sequential oracles, and print a machine-readable JSON summary on
     stdout. Failures are shrunk and come with paste-able repro lines
     (also written to --failures FILE for CI artifacts).

   - repro: --app/--graph/--schedule re-run exactly one configuration
     (the syntax printed in repro lines) and report pass/fail.

   - query repro: --app/--graph-file/--source/--target (or --vertex)
     re-run one service query from a slow-query log line against the
     graph *file* the server loaded (docs/OBSERVABILITY.md).

   - dsl sweep: --dsl generate seeded DSL programs and run each through
     the reference interpreter, the scheduled engine, and (when a C++
     toolchain is detected) the generated-C++ lane across the schedule
     grid, shrinking failures over both programs and graphs
     (docs/TESTING.md). With --program/--graph/--schedule: replay one
     failing configuration.

   Exit codes: 0 = clean; 1 = oracle mismatch or race finding; 2 = bad
   command line. *)

open Cmdliner
module Json = Support.Json
module Sweep = Check.Sweep
module Dynamic = Check.Dynamic
module Graph_case = Check.Graph_case
module Dsl_case = Check.Dsl_case
module Dsl_sweep = Check.Dsl_sweep

let parse_or_exit what = function
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "check_runner: bad %s: %s\n" what msg;
      exit 2

let parse_workers s =
  String.split_on_char ',' s
  |> List.map (fun w ->
         match int_of_string_opt (String.trim w) with
         | Some n when n >= 1 -> n
         | _ ->
             Printf.eprintf "check_runner: bad worker count %S\n" w;
             exit 2)

let parse_apps s =
  String.split_on_char ',' s
  |> List.map (fun a -> parse_or_exit "app" (Sweep.app_of_string (String.trim a)))

let failure_json (f : Sweep.failure) =
  let v = f.config.Sweep.variant in
  Json.Obj
    [
      ("app", Json.String (Sweep.app_to_string f.config.Sweep.app));
      ("graph", Json.String (Graph_case.to_string f.config.Sweep.spec));
      ("schedule", Json.String (Sweep.schedule_to_string f.config.Sweep.schedule));
      ("workers", Json.Int f.config.Sweep.workers);
      ("layout", Json.String (Graphs.Layout.kind_to_string v.Sweep.layout));
      ("reorder", Json.String (Graphs.Reorder.kind_to_string v.Sweep.reorder));
      ("bin_roundtrip", Json.Bool v.Sweep.bin_roundtrip);
      ("message", Json.String f.message);
      ( "shrunk",
        match f.shrunk with
        | None -> Json.Null
        | Some spec -> Json.String (Graph_case.to_string spec) );
      ("repro", Json.String f.repro);
    ]

let summary_json ~seed (s : Sweep.summary) =
  Json.Obj
    [
      ("seed", Json.Int seed);
      ("configs_run", Json.Int s.configs_run);
      ( "per_app",
        Json.Obj
          (List.map
             (fun (app, n) -> (Sweep.app_to_string app, Json.Int n))
             s.per_app) );
      ("failures", Json.List (List.map failure_json s.failures));
      ("race_findings", Json.Int s.race_findings);
      ("elapsed_seconds", Json.Float s.elapsed_seconds);
      ("budget_exhausted", Json.Bool s.budget_exhausted);
    ]

let run_repro ~seed ~chaos ~race ~workers ~variant app graph schedule =
  let app = parse_or_exit "app" (Sweep.app_of_string app) in
  let spec = parse_or_exit "graph spec" (Graph_case.of_string graph) in
  let schedule = parse_or_exit "schedule" (Sweep.schedule_of_string schedule) in
  let case = Graph_case.build spec in
  if chaos then Parallel.Chaos.enable ~seed;
  if race then begin
    Parallel.Race.clear ();
    Parallel.Race.enable ()
  end;
  let failed = ref false in
  List.iter
    (fun w ->
      Parallel.Pool.with_pool ~num_workers:w (fun pool ->
          match Sweep.run_one ~variant ~pool app case schedule with
          | Ok () -> Printf.printf "ok: %d workers\n" w
          | Error msg ->
              failed := true;
              Printf.printf "FAIL: %d workers: %s\n" w msg))
    workers;
  let findings = if race then Parallel.Race.num_findings () else 0 in
  if findings > 0 then begin
    failed := true;
    Printf.printf "race findings: %d\n" findings;
    List.iter
      (fun f -> Format.printf "  %a@." Parallel.Race.pp_finding f)
      (Parallel.Race.findings ())
  end;
  if !failed then exit 1

let dynamic_failure_json (f : Dynamic.failure) =
  Json.Obj
    [
      ("graph", Json.String (Graph_case.to_string f.config.Dynamic.spec));
      ( "schedule",
        Json.String (Sweep.schedule_to_string f.config.Dynamic.schedule) );
      ("workers", Json.Int f.config.Dynamic.workers);
      ("batches", Json.String (Dynamic.batches_to_string f.config.Dynamic.batches));
      ("step", Json.Int f.step);
      ("message", Json.String f.message);
      ("repro", Json.String f.repro);
    ]

let dynamic_summary_json ~seed (s : Dynamic.summary) =
  Json.Obj
    [
      ("mode", Json.String "dynamic");
      ("seed", Json.Int seed);
      ("configs_run", Json.Int s.configs_run);
      ("failures", Json.List (List.map dynamic_failure_json s.failures));
      ("race_findings", Json.Int s.race_findings);
      ("elapsed_seconds", Json.Float s.elapsed_seconds);
      ("budget_exhausted", Json.Bool s.budget_exhausted);
    ]

let run_dynamic_sweep ~seed ~budget ~chaos ~race ~workers ~max_failures
    ~json_path ~failures_path =
  let summary =
    Dynamic.run ~workers ~budget ~seed ~max_failures ~chaos ~race
      ~log:prerr_endline ()
  in
  let json = dynamic_summary_json ~seed summary in
  print_endline (Json.to_string json);
  Option.iter
    (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Format.fprintf (Format.formatter_of_out_channel oc) "%a@?" Json.pp json))
    json_path;
  Option.iter
    (fun path ->
      if summary.Dynamic.failures <> [] then
        Out_channel.with_open_text path (fun oc ->
            List.iter
              (fun (f : Dynamic.failure) ->
                Printf.fprintf oc "step %d: %s\n  %s\n" f.step f.message f.repro)
              summary.Dynamic.failures))
    failures_path;
  if summary.Dynamic.failures <> [] || summary.Dynamic.race_findings > 0 then
    exit 1

let run_dynamic_repro ~seed ~chaos ~race ~workers graph schedule batches =
  let spec = parse_or_exit "graph spec" (Graph_case.of_string graph) in
  let schedule = parse_or_exit "schedule" (Sweep.schedule_of_string schedule) in
  let batches = parse_or_exit "batches" (Dynamic.batches_of_string batches) in
  if chaos then Parallel.Chaos.enable ~seed;
  if race then begin
    Parallel.Race.clear ();
    Parallel.Race.enable ()
  end;
  let failed = ref false in
  List.iter
    (fun w ->
      Parallel.Pool.with_pool ~num_workers:w (fun pool ->
          let config = { Dynamic.spec; schedule; workers = w; batches } in
          match Dynamic.run_config ~pool config with
          | Ok () -> Printf.printf "ok: %d workers\n" w
          | Error (step, msg) ->
              failed := true;
              Printf.printf "FAIL: %d workers: step %d: %s\n" w step msg))
    workers;
  let findings = if race then Parallel.Race.num_findings () else 0 in
  if findings > 0 then begin
    failed := true;
    Printf.printf "race findings: %d\n" findings;
    List.iter
      (fun f -> Format.printf "  %a@." Parallel.Race.pp_finding f)
      (Parallel.Race.findings ())
  end;
  if !failed then exit 1

let dsl_failure_json (f : Dsl_sweep.failure) =
  Json.Obj
    [
      ("program", Json.String (Dsl_case.to_string f.config.Dsl_sweep.spec));
      ("graph", Json.String (Graph_case.to_string f.config.Dsl_sweep.graph));
      ( "schedule",
        Json.String (Sweep.schedule_to_string f.config.Dsl_sweep.schedule) );
      ("workers", Json.Int f.config.Dsl_sweep.workers);
      ("bug", Json.String (Dsl_sweep.bug_to_string f.config.Dsl_sweep.bug));
      ("lane", Json.String f.lane);
      ("message", Json.String f.message);
      ( "shrunk_program",
        match f.shrunk_program with
        | None -> Json.Null
        | Some spec -> Json.String (Dsl_case.to_string spec) );
      ( "shrunk_graph",
        match f.shrunk_graph with
        | None -> Json.Null
        | Some spec -> Json.String (Graph_case.to_string spec) );
      ("repro", Json.String f.repro);
    ]

let dsl_summary_json ~seed (s : Dsl_sweep.summary) =
  Json.Obj
    [
      ("mode", Json.String "dsl");
      ("seed", Json.Int seed);
      ("programs", Json.Int s.programs);
      ("configs_run", Json.Int s.configs_run);
      ("compiled_runs", Json.Int s.compiled_runs);
      ( "toolchain",
        match s.toolchain with
        | None -> Json.Null
        | Some name -> Json.String name );
      ("failures", Json.List (List.map dsl_failure_json s.failures));
      ("race_findings", Json.Int s.race_findings);
      ("elapsed_seconds", Json.Float s.elapsed_seconds);
      ("budget_exhausted", Json.Bool s.budget_exhausted);
    ]

let run_dsl_sweep ~seed ~budget ~chaos ~race ~workers ~max_failures ~bug
    ~compiled ~json_path ~failures_path =
  let summary =
    Dsl_sweep.run ~workers ~budget ~seed ~max_failures ~chaos ~race ~bug
      ~compiled ~log:prerr_endline ()
  in
  let json = dsl_summary_json ~seed summary in
  print_endline (Json.to_string json);
  Option.iter
    (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Format.fprintf (Format.formatter_of_out_channel oc) "%a@?" Json.pp json))
    json_path;
  Option.iter
    (fun path ->
      if summary.Dsl_sweep.failures <> [] then
        Out_channel.with_open_text path (fun oc ->
            List.iter
              (fun (f : Dsl_sweep.failure) ->
                Printf.fprintf oc "%s lane: %s\n  %s\n" f.lane f.message f.repro)
              summary.Dsl_sweep.failures))
    failures_path;
  if summary.Dsl_sweep.failures <> [] || summary.Dsl_sweep.race_findings > 0
  then exit 1

let run_dsl_repro ~seed ~chaos ~race ~workers ~bug ~compiled program graph
    schedule =
  let spec = parse_or_exit "program spec" (Dsl_case.of_string program) in
  let gspec = parse_or_exit "graph spec" (Graph_case.of_string graph) in
  let schedule = parse_or_exit "schedule" (Sweep.schedule_of_string schedule) in
  let case = Graph_case.build gspec in
  let toolchain = if compiled then Dsl_sweep.detect_toolchain () else None in
  (match toolchain with
  | Some t -> Printf.printf "compiled lane: %s\n" (Dsl_sweep.toolchain_name t)
  | None -> Printf.printf "compiled lane: unavailable\n");
  if chaos then Parallel.Chaos.enable ~seed;
  if race then begin
    Parallel.Race.clear ();
    Parallel.Race.enable ()
  end;
  let failed = ref false in
  Parallel.Pool.with_pool ~num_workers:1 (fun ref_pool ->
      List.iter
        (fun w ->
          Parallel.Pool.with_pool ~num_workers:w (fun pool ->
              match
                Dsl_sweep.run_one ~bug ?toolchain ~pool ~ref_pool spec case
                  schedule
              with
              | Ok () -> Printf.printf "ok: %d workers\n" w
              | Error msg ->
                  failed := true;
                  Printf.printf "FAIL: %d workers: %s\n" w msg))
        workers);
  let findings = if race then Parallel.Race.num_findings () else 0 in
  if findings > 0 then begin
    failed := true;
    Printf.printf "race findings: %d\n" findings;
    List.iter
      (fun f -> Format.printf "  %a@." Parallel.Race.pp_finding f)
      (Parallel.Race.findings ())
  end;
  if !failed then exit 1

let run_query_repro ~workers ~symmetric ~source ~target ~vertex app graph_file
    schedule =
  let module Qr = Check.Query_repro in
  let app = parse_or_exit "app" (Qr.app_of_string app) in
  let schedule = parse_or_exit "schedule" (Sweep.schedule_of_string schedule) in
  let source, target =
    match (app, vertex, source, target) with
    | Qr.Kcore, Some v, _, _ -> (v, -1)
    | Qr.Kcore, None, Some s, _ -> (s, -1)
    | Qr.Kcore, None, None, _ ->
        Printf.eprintf "check_runner: kcore query repro needs --vertex\n";
        exit 2
    | _, _, Some s, Some t -> (s, t)
    | _ ->
        Printf.eprintf "check_runner: query repro needs --source and --target\n";
        exit 2
  in
  let failed = ref false in
  List.iter
    (fun w ->
      let r =
        { Qr.app; graph_file; symmetric; source; target; schedule; workers = w }
      in
      match Qr.run r with
      | Ok () -> Printf.printf "ok: %d workers\n" w
      | Error msg ->
          failed := true;
          Printf.printf "FAIL: %d workers: %s\n" w msg)
    workers;
  if !failed then exit 1

let run_sweep ~seed ~budget ~chaos ~race ~workers ~max_failures ~apps
    ~json_path ~failures_path ~variants =
  let apps =
    match apps with None -> Sweep.all_apps | Some apps -> parse_apps apps
  in
  let summary =
    Sweep.run ~apps ~variants ~workers ~budget ~seed ~max_failures ~chaos ~race
      ~log:prerr_endline ()
  in
  let json = summary_json ~seed summary in
  print_endline (Json.to_string json);
  Option.iter
    (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Format.fprintf
            (Format.formatter_of_out_channel oc)
            "%a@?" Json.pp json))
    json_path;
  Option.iter
    (fun path ->
      if summary.Sweep.failures <> [] then
        Out_channel.with_open_text path (fun oc ->
            List.iter
              (fun (f : Sweep.failure) ->
                Printf.fprintf oc "%s\n  %s\n" f.message f.repro)
              summary.Sweep.failures))
    failures_path;
  if summary.Sweep.failures <> [] || summary.Sweep.race_findings > 0 then
    exit 1

let main budget seed apps app graph schedule workers chaos race max_failures
    json_path failures_path layout reorder bin graph_file source target vertex
    symmetric dynamic batches dsl program bug no_compiled =
  let workers = parse_workers workers in
  let bug = parse_or_exit "bug" (Dsl_sweep.bug_of_string bug) in
  let compiled = not no_compiled in
  let variant_given = layout <> None || reorder <> None || bin in
  let variant =
    {
      Sweep.layout =
        (match layout with
        | None -> Graphs.Layout.Plain
        | Some l -> parse_or_exit "layout" (Graphs.Layout.kind_of_string l));
      reorder =
        (match reorder with
        | None -> Graphs.Reorder.Identity
        | Some r -> parse_or_exit "reorder" (Graphs.Reorder.kind_of_string r));
      bin_roundtrip = bin;
    }
  in
  if dsl then begin
    match (program, graph, schedule) with
    | Some program, Some graph, Some schedule ->
        run_dsl_repro ~seed ~chaos ~race ~workers ~bug ~compiled program graph
          schedule
    | None, None, None ->
        run_dsl_sweep ~seed ~budget ~chaos ~race ~workers ~max_failures ~bug
          ~compiled ~json_path ~failures_path
    | _ ->
        Printf.eprintf
          "check_runner: dsl repro mode needs all of --program, --graph, \
           --schedule\n";
        exit 2
  end
  else
  match (dynamic, graph_file, app, graph, schedule) with
  | true, None, None, Some graph, Some schedule ->
      (* Dynamic repro: replay one batch sequence (the syntax of
         --dynamic repro lines). *)
      run_dynamic_repro ~seed ~chaos ~race ~workers graph schedule
        (Option.value ~default:"" batches)
  | true, None, None, None, None ->
      run_dynamic_sweep ~seed ~budget ~chaos ~race ~workers ~max_failures
        ~json_path ~failures_path
  | false, Some graph_file, Some app, None, Some schedule ->
      run_query_repro ~workers ~symmetric ~source ~target ~vertex app graph_file
        schedule
  | false, None, Some app, Some graph, Some schedule ->
      run_repro ~seed ~chaos ~race ~workers ~variant app graph schedule
  | false, None, None, None, None ->
      (* Sweep mode: with no substrate flags, run the whole default
         variant axis; with flags, pin the sweep to that one variant. *)
      let variants =
        if variant_given then [ variant ] else Sweep.default_variants
      in
      run_sweep ~seed ~budget ~chaos ~race ~workers ~max_failures ~apps
        ~json_path ~failures_path ~variants
  | _ ->
      Printf.eprintf
        "check_runner: repro mode needs all of --app, --graph, --schedule; \
         query repro needs --app, --graph-file, --schedule and \
         --source/--target (or --vertex); dynamic repro needs --dynamic, \
         --graph, --schedule, --batches\n";
      exit 2

let () =
  let budget =
    Arg.(
      value & opt float 60.
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Stop enumerating new configurations after this long")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ]
          ~doc:"Master seed for graphs, sampled schedules, and chaos streams")
  in
  let apps =
    Arg.(
      value
      & opt (some string) None
      & info [ "apps" ] ~docv:"LIST"
          ~doc:"Comma-separated subset of sssp,wbfs,ppsp,astar,kcore,setcover")
  in
  let app_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "app" ] ~doc:"Repro mode: the app of the failing configuration")
  in
  let graph =
    Arg.(
      value
      & opt (some string) None
      & info [ "graph" ] ~docv:"SPEC"
          ~doc:"Repro mode: graph spec, e.g. 'random:seed=3,n=48,m=200,w=12'")
  in
  let schedule =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"SCHED"
          ~doc:
            "Repro mode: schedule, e.g. \
             'strategy=lazy,delta=2,traversal=DensePull,sched=guided'")
  in
  let workers =
    Arg.(
      value & opt string "1,2,4"
      & info [ "workers" ] ~docv:"LIST" ~doc:"Worker counts to sweep")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:"Inject seeded scheduling perturbation (Parallel.Chaos)")
  in
  let race =
    Arg.(
      value & flag
      & info [ "race" ]
          ~doc:
            "Enable the plain-write race detector (Parallel.Race); any \
             finding fails the run")
  in
  let max_failures =
    Arg.(
      value & opt int 5
      & info [ "max-failures" ] ~doc:"Stop the sweep after this many failures")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the JSON summary here")
  in
  let failures_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "failures" ] ~docv:"FILE"
          ~doc:"Write failure messages and repro lines here (CI artifact)")
  in
  let layout =
    Arg.(
      value
      & opt (some string) None
      & info [ "layout" ] ~docv:"KIND"
          ~doc:
            "Storage layout (plain|compressed). Repro mode: run the \
             configuration under it; sweep mode: pin the sweep's variant \
             axis to it")
  in
  let reorder =
    Arg.(
      value
      & opt (some string) None
      & info [ "reorder" ] ~docv:"KIND"
          ~doc:
            "Vertex reordering (none|degree|bfs|hilbert) applied to the \
             graph before running")
  in
  let bin =
    Arg.(
      value & flag
      & info [ "bin" ]
          ~doc:
            "Round-trip the graph through the binary format (save-bin -> \
             load-bin) before running")
  in
  let graph_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "graph-file" ] ~docv:"FILE"
          ~doc:
            "Query-repro mode: replay one service query against this graph \
             file (edge-list text or GRAPHBIN) — the syntax of slow-query \
             log repro lines")
  in
  let source =
    Arg.(
      value
      & opt (some int) None
      & info [ "source" ] ~doc:"Query-repro mode: source vertex")
  in
  let target =
    Arg.(
      value
      & opt (some int) None
      & info [ "target" ] ~doc:"Query-repro mode: target vertex")
  in
  let vertex =
    Arg.(
      value
      & opt (some int) None
      & info [ "vertex" ] ~doc:"Query-repro mode: the kcore query vertex")
  in
  let symmetric =
    Arg.(
      value & flag
      & info [ "symmetric" ]
          ~doc:
            "Query-repro mode: symmetrize the loaded graph, as `serve \
             --symmetric` did")
  in
  let dynamic =
    Arg.(
      value & flag
      & info [ "dynamic" ]
          ~doc:
            "Dynamic-graph mode: sweep incremental-vs-from-scratch SSSP \
             across random delta batches, schedules, and worker counts \
             (with --graph/--schedule/--batches: replay one failing \
             configuration)")
  in
  let batches =
    Arg.(
      value
      & opt (some string) None
      & info [ "batches" ] ~docv:"BATCHES"
          ~doc:
            "Dynamic repro mode: semicolon-separated delta batches, each a \
             comma-separated op list (i:src-dst-w, d:src-dst, r:src-dst-w)")
  in
  let dsl =
    Arg.(
      value & flag
      & info [ "dsl" ]
          ~doc:
            "DSL differential mode: sweep generated DSL programs through \
             reference-interp vs scheduled-engine (vs generated C++ when a \
             toolchain is present) across the schedule grid (with \
             --program/--graph/--schedule: replay one failing configuration)")
  in
  let program =
    Arg.(
      value
      & opt (some string) None
      & info [ "program" ] ~docv:"SPEC"
          ~doc:"DSL repro mode: program spec, e.g. 'min:guard+reach+print'")
  in
  let bug =
    Arg.(
      value & opt string "none"
      & info [ "bug" ] ~docv:"NAME"
          ~doc:
            "DSL mode: graft a deliberately wrong lowering into the \
             engine/compiled lanes (none|wrong-weight) — used by the test \
             suite to prove the sweep detects injected miscompilations")
  in
  let no_compiled =
    Arg.(
      value & flag
      & info [ "no-compiled" ]
          ~doc:"DSL mode: skip the compiled lane even if a toolchain exists")
  in
  let term =
    Term.(
      const main $ budget $ seed $ apps $ app_arg $ graph $ schedule $ workers
      $ chaos $ race $ max_failures $ json_path $ failures_path $ layout
      $ reorder $ bin $ graph_file $ source $ target $ vertex $ symmetric
      $ dynamic $ batches $ dsl $ program $ bug $ no_compiled)
  in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "check_runner"
             ~doc:
               "Differential checker: every schedule-space point must match \
                the sequential oracles")
          term))
