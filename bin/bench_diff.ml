(* bench_diff: compare two [bench --json] reports and gate on regressions.

   Exit codes: 0 = no regression; 1 = at least one measured field regressed
   past the threshold; 2 = unreadable report or provenance mismatch without
   --force. See docs/OBSERVABILITY.md §7. *)

open Cmdliner
module Json = Support.Json
module Report_diff = Observe.Report_diff

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg ->
      Printf.eprintf "bench_diff: cannot read %s: %s\n" path msg;
      exit 2
  | contents -> (
      match Json.of_string contents with
      | Ok json -> json
      | Error msg ->
          Printf.eprintf "bench_diff: %s is not a bench report: %s\n" path msg;
          exit 2)

(* A trajectory file is a JSON list of bench reports, oldest first —
   future runs append to it, and the diff gates against the latest entry.
   A bare report object is accepted as a one-entry trajectory. *)
let baseline_of name = function
  | Json.List [] ->
      Printf.eprintf "bench_diff: %s is an empty trajectory\n" name;
      exit 2
  | Json.List entries -> List.nth entries (List.length entries - 1)
  | report -> report

let append_trajectory path report =
  let existing =
    if Sys.file_exists path then
      match Json.of_string (In_channel.with_open_bin path In_channel.input_all) with
      | Ok (Json.List entries) -> entries
      | Ok report -> [ report ]
      | Error msg ->
          Printf.eprintf "bench_diff: cannot append to %s: %s\n" path msg;
          exit 2
    else []
  in
  let trajectory = Json.List (existing @ [ report ]) in
  Out_channel.with_open_bin path (fun oc ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "%a@." Json.pp trajectory);
  Printf.printf "appended to trajectory %s (%d entries)\n" path
    (List.length existing + 1)

let print_provenance name report =
  match Report_diff.provenance report with
  | [] -> Printf.printf "%s: (no provenance)\n" name
  | fields ->
      Printf.printf "%s: %s\n" name
        (String.concat " "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) fields))

let run old_path new_path threshold floor force append =
  let old_ = baseline_of old_path (load old_path) and new_ = load new_path in
  print_provenance old_path old_;
  print_provenance new_path new_;
  (match Report_diff.provenance_mismatches ~old_ ~new_ with
  | [] -> ()
  | mismatches ->
      List.iter
        (fun (name, ov, nv) ->
          Printf.eprintf "bench_diff: provenance mismatch: %s is %s vs %s\n"
            name ov nv)
        mismatches;
      if force then
        Printf.eprintf
          "bench_diff: --force given, comparing across environments anyway\n"
      else begin
        Printf.eprintf
          "bench_diff: refusing to compare reports from different \
           environments (pass --force to override)\n";
        exit 2
      end);
  let diff =
    Report_diff.compare_reports ~threshold ~floor_seconds:floor ~old_ ~new_ ()
  in
  Format.printf "%a@?" Report_diff.pp diff;
  (* Append before gating: a trajectory records every run, including the
     regressed ones the exit code flags. *)
  Option.iter (fun path -> append_trajectory path new_) append;
  if diff.Report_diff.regressions > 0 then exit 1

let () =
  let old_path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline bench --json report")
  in
  let new_path =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate bench --json report")
  in
  let threshold =
    Arg.(
      value & opt float 0.10
      & info [ "threshold" ]
          ~doc:"Relative slowdown that counts as a regression (0.10 = 10%)")
  in
  let floor =
    Arg.(
      value & opt float 1e-4
      & info [ "floor" ]
          ~doc:
            "Absolute floor in seconds: rows whose baseline is below it \
             never gate (scheduler noise)")
  in
  let force =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:"Compare even when provenance (hostname, workers, ...) differs")
  in
  let append =
    Arg.(
      value
      & opt (some string) None
      & info [ "append" ] ~docv:"FILE"
          ~doc:
            "Append the NEW report to this trajectory file (a JSON list of \
             reports, oldest first; created when missing). OLD may itself \
             be a trajectory: the diff gates against its last entry.")
  in
  let term =
    Term.(const run $ old_path $ new_path $ threshold $ floor $ force $ append)
  in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "bench_diff"
             ~doc:"Diff two bench --json reports and fail on regressions")
          term))
