(* ordered_run: run any native ordered algorithm from the command line with
   an explicit schedule — the CLI counterpart of the scheduling language. *)

open Cmdliner

(* A graph argument may be an edge-list text file or a GRAPHBIN binary
   (sniffed by magic, so `.bin` files work regardless of extension). *)
let load_edge_list path =
  if Graphs.Graph_bin.is_graph_bin path then
    Graphs.Csr.to_edge_list (Graphs.Graph_bin.load_csr path)
  else Graphs.Graph_io.load path

let make_schedule strategy delta threshold buckets traversal =
  let ( let* ) = Result.bind in
  let* strategy = Ordered.Schedule.strategy_of_string strategy in
  let* traversal = Ordered.Schedule.traversal_of_string traversal in
  Ordered.Schedule.validate
    {
      Ordered.Schedule.default with
      strategy;
      delta;
      fusion_threshold = threshold;
      num_open_buckets = buckets;
      traversal;
    }

let run algorithm graph_path source target workers strategy delta threshold buckets
    traversal coords_path show_rounds trace_path profile layout reorder
    save_bin =
  let schedule =
    match make_schedule strategy delta threshold buckets traversal with
    | Ok s -> s
    | Error msg ->
        Printf.eprintf "invalid schedule: %s\n" msg;
        exit 1
  in
  let layout_kind =
    match Graphs.Layout.kind_of_string layout with
    | Ok k -> k
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
  in
  let reorder_kind =
    match Graphs.Reorder.kind_of_string reorder with
    | Ok k -> k
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
  in
  (* Load, optionally relabel vertices, optionally persist the prepared
     graph as a binary, and wrap it in a handle carrying the chosen
     layout. Vertex ids given on the command line are remapped through
     the permutation so the query answers the same question. *)
  let prepare symmetric =
    let el = load_edge_list graph_path in
    let el = if symmetric then Graphs.Edge_list.symmetrized el else el in
    let coords = Option.map Graphs.Graph_io.read_coords coords_path in
    let csr = Graphs.Csr.of_edge_list el in
    let perm =
      match Graphs.Reorder.of_kind reorder_kind ~csr ~coords with
      | Ok r -> r
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 1
    in
    let csr =
      if reorder_kind = Graphs.Reorder.Identity then csr
      else Graphs.Csr.of_edge_list (Graphs.Reorder.apply_edge_list perm el)
    in
    let coords = Option.map (Graphs.Reorder.apply_coords perm) coords in
    (match save_bin with
    | Some path ->
        Graphs.Graph_bin.save path ~layout:layout_kind csr;
        Printf.printf "saved binary graph: %s (%s layout)\n" path
          (Graphs.Layout.kind_to_string layout_kind)
    | None -> ());
    let remap v =
      if v >= 0 && v < Graphs.Csr.num_vertices csr then
        Graphs.Reorder.apply_vertex perm v
      else v
    in
    let handle = Graphs.Handle.create ~kind:layout_kind csr in
    (csr, handle, coords, remap source, remap target)
  in
  if profile then begin
    Observe.Span.set_enabled true;
    Observe.Span.install_pool_hook ()
  end;
  let tracer =
    match trace_path with
    | None -> None
    | Some _ ->
        let t = Observe.Tracer.create () in
        Observe.Tracer.set_current (Some t);
        Observe.Tracer.install_pool_hooks ();
        Some t
  in
  (* The pool hooks are process-wide state: detach them even when the run
     below raises (bad graph file, unknown algorithm), or they would keep
     firing — against a dead tracer — for the rest of the process. *)
  Fun.protect
    ~finally:(fun () ->
      if profile then Observe.Span.remove_pool_hook ();
      if tracer <> None then begin
        Observe.Tracer.remove_pool_hooks ();
        Observe.Tracer.set_current None
      end)
  @@ fun () ->
  Parallel.Pool.with_pool ~num_workers:workers (fun pool ->
      let report name seconds (stats : Ordered.Stats.t option) =
        Printf.printf "%s: %.4fs\n" name seconds;
        match stats with
        | Some s -> Format.printf "stats: %a@." Ordered.Stats.pp s
        | None -> ()
      in
      match algorithm with
      | "sssp" ->
          let graph, handle, _, source, _ = prepare false in
          let trace = if show_rounds then Some (Ordered.Trace.create ()) else None in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Sssp_delta.run ~pool ~graph ~handle ~schedule ~source
                  ?trace ())
          in
          report "sssp" seconds (Some r.stats);
          (match trace with
          | Some t -> Format.printf "%a" (Ordered.Trace.pp ?max_rounds:None) t
          | None -> ())
      | "wbfs" ->
          let graph, handle, _, source, _ = prepare false in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Wbfs.run ~pool ~graph ~handle ~schedule ~source ())
          in
          report "wbfs" seconds (Some r.stats)
      | "ppsp" ->
          let graph, handle, _, source, target = prepare false in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Ppsp.run ~pool ~graph ~handle ~schedule ~source
                  ~target ())
          in
          Printf.printf "distance %d -> %d = %s\n" source target
            (if r.distance = Bucketing.Bucket_order.null_priority then "unreachable"
             else string_of_int r.distance);
          report "ppsp" seconds (Some r.stats)
      | "astar" ->
          let graph, handle, coords, source, target = prepare false in
          let coords =
            match coords with
            | Some c -> c
            | None ->
                Printf.eprintf "astar requires --coords\n";
                exit 1
          in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Astar.run ~pool ~graph ~coords ~handle ~schedule
                  ~source ~target ())
          in
          Printf.printf "distance %d -> %d = %d\n" source target r.distance;
          report "astar" seconds (Some r.stats)
      | "kcore" ->
          let graph, handle, _, _, _ = prepare true in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Kcore.run ~pool ~graph ~handle ~schedule ())
          in
          Printf.printf "max core = %d\n" (Algorithms.Kcore.max_core r);
          report "kcore" seconds (Some r.stats)
      | "setcover" ->
          let graph, handle, _, _, _ = prepare true in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Setcover.run ~pool ~graph ~handle ~schedule ())
          in
          Printf.printf "cover size = %d (%d rounds)\n" r.cover_size r.rounds;
          report "setcover" seconds None
      | "bellman-ford" ->
          let graph, _, _, source, _ = prepare false in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Bellman_ford.run ~pool ~graph ~source ())
          in
          Printf.printf "iterations = %d\n" r.iterations;
          report "bellman-ford" seconds None
      | other ->
          Printf.eprintf
            "unknown algorithm %S (sssp|wbfs|ppsp|astar|kcore|setcover|bellman-ford)\n"
            other;
          exit 1);
  (match (tracer, trace_path) with
  | Some t, Some path ->
      Observe.Tracer.set_current None;
      Observe.Tracer.write t path;
      Printf.printf "trace: %s (%d events; open in ui.perfetto.dev)\n" path
        (Observe.Tracer.event_count t)
  | _ -> ());
  if profile then begin
    let snap = Observe.Metrics.snapshot Observe.Metrics.default in
    Format.printf "@.flight recorder (docs/OBSERVABILITY.md):@.%a"
      (Observe.Metrics.pp ?times:None) snap
  end

let () =
  let algorithm =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ALGORITHM" ~doc:"Algorithm")
  in
  let graph = Arg.(required & pos 1 (some file) None & info [] ~docv:"GRAPH" ~doc:"Graph") in
  let source = Arg.(value & opt int 0 & info [ "source" ] ~doc:"Source vertex") in
  let target = Arg.(value & opt int 0 & info [ "target" ] ~doc:"Target vertex") in
  let workers = Arg.(value & opt int 4 & info [ "j"; "workers" ] ~doc:"Worker domains") in
  let strategy =
    Arg.(
      value & opt string "eager_with_fusion"
      & info [ "strategy" ] ~doc:"Bucket update strategy")
  in
  let delta = Arg.(value & opt int 1 & info [ "delta" ] ~doc:"Priority coarsening factor") in
  let threshold =
    Arg.(value & opt int 1000 & info [ "fusion-threshold" ] ~doc:"Bucket fusion threshold")
  in
  let buckets =
    Arg.(value & opt int 128 & info [ "num-buckets" ] ~doc:"Materialized lazy buckets")
  in
  let traversal =
    Arg.(value & opt string "SparsePush" & info [ "direction" ] ~doc:"SparsePush|DensePull")
  in
  let coords =
    Arg.(value & opt (some file) None & info [ "coords" ] ~doc:"Coordinates file (astar)")
  in
  let show_rounds =
    Arg.(value & flag & info [ "rounds" ] ~doc:"Print a per-round trace table (sssp)")
  in
  let trace_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a per-worker timeline and write it as Chrome trace_event \
             JSON (open in ui.perfetto.dev)")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Enable the flight recorder (span timings and cumulative \
             counters) and print its table after the run")
  in
  let layout =
    Arg.(
      value & opt string "plain"
      & info [ "layout" ] ~docv:"KIND"
          ~doc:"Storage layout for traversal: plain|compressed")
  in
  let reorder =
    Arg.(
      value & opt string "none"
      & info [ "reorder" ] ~docv:"KIND"
          ~doc:
            "Vertex reordering applied before running: \
             none|degree|bfs|hilbert (hilbert needs --coords)")
  in
  let save_bin =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-bin" ] ~docv:"FILE"
          ~doc:
            "Write the prepared graph (after symmetrization/reordering) as \
             a GRAPHBIN binary; later runs can pass it as GRAPH for \
             mmap-speed loading")
  in
  let term =
    Term.(
      const run $ algorithm $ graph $ source $ target $ workers $ strategy $ delta
      $ threshold $ buckets $ traversal $ coords $ show_rounds $ trace_path
      $ profile $ layout $ reorder $ save_bin)
  in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "ordered_run" ~doc:"Run ordered graph algorithms") term))
