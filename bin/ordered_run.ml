(* ordered_run: run any native ordered algorithm from the command line with
   an explicit schedule — the CLI counterpart of the scheduling language. *)

open Cmdliner

let load_graph path symmetric =
  let el = Graphs.Graph_io.load path in
  let el = if symmetric then Graphs.Edge_list.symmetrized el else el in
  Graphs.Csr.of_edge_list el

let make_schedule strategy delta threshold buckets traversal =
  let ( let* ) = Result.bind in
  let* strategy = Ordered.Schedule.strategy_of_string strategy in
  let* traversal = Ordered.Schedule.traversal_of_string traversal in
  Ordered.Schedule.validate
    {
      Ordered.Schedule.default with
      strategy;
      delta;
      fusion_threshold = threshold;
      num_open_buckets = buckets;
      traversal;
    }

let run algorithm graph_path source target workers strategy delta threshold buckets
    traversal coords_path show_rounds trace_path profile =
  let schedule =
    match make_schedule strategy delta threshold buckets traversal with
    | Ok s -> s
    | Error msg ->
        Printf.eprintf "invalid schedule: %s\n" msg;
        exit 1
  in
  if profile then begin
    Observe.Span.set_enabled true;
    Observe.Span.install_pool_hook ()
  end;
  let tracer =
    match trace_path with
    | None -> None
    | Some _ ->
        let t = Observe.Tracer.create () in
        Observe.Tracer.set_current (Some t);
        Observe.Tracer.install_pool_hooks ();
        Some t
  in
  (* The pool hooks are process-wide state: detach them even when the run
     below raises (bad graph file, unknown algorithm), or they would keep
     firing — against a dead tracer — for the rest of the process. *)
  Fun.protect
    ~finally:(fun () ->
      if profile then Observe.Span.remove_pool_hook ();
      if tracer <> None then begin
        Observe.Tracer.remove_pool_hooks ();
        Observe.Tracer.set_current None
      end)
  @@ fun () ->
  Parallel.Pool.with_pool ~num_workers:workers (fun pool ->
      let report name seconds (stats : Ordered.Stats.t option) =
        Printf.printf "%s: %.4fs\n" name seconds;
        match stats with
        | Some s -> Format.printf "stats: %a@." Ordered.Stats.pp s
        | None -> ()
      in
      match algorithm with
      | "sssp" ->
          let graph = load_graph graph_path false in
          let transpose =
            if schedule.Ordered.Schedule.traversal <> Ordered.Schedule.Sparse_push
            then Some (Graphs.Csr.transpose graph)
            else None
          in
          let trace = if show_rounds then Some (Ordered.Trace.create ()) else None in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Sssp_delta.run ~pool ~graph ?transpose ~schedule ~source
                  ?trace ())
          in
          report "sssp" seconds (Some r.stats);
          (match trace with
          | Some t -> Format.printf "%a" (Ordered.Trace.pp ?max_rounds:None) t
          | None -> ())
      | "wbfs" ->
          let graph = load_graph graph_path false in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Wbfs.run ~pool ~graph ~schedule ~source ())
          in
          report "wbfs" seconds (Some r.stats)
      | "ppsp" ->
          let graph = load_graph graph_path false in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Ppsp.run ~pool ~graph ~schedule ~source ~target ())
          in
          Printf.printf "distance %d -> %d = %s\n" source target
            (if r.distance = Bucketing.Bucket_order.null_priority then "unreachable"
             else string_of_int r.distance);
          report "ppsp" seconds (Some r.stats)
      | "astar" ->
          let graph = load_graph graph_path false in
          let coords =
            match coords_path with
            | Some p -> Graphs.Graph_io.read_coords p
            | None ->
                Printf.eprintf "astar requires --coords\n";
                exit 1
          in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Astar.run ~pool ~graph ~coords ~schedule ~source ~target ())
          in
          Printf.printf "distance %d -> %d = %d\n" source target r.distance;
          report "astar" seconds (Some r.stats)
      | "kcore" ->
          let graph = load_graph graph_path true in
          let r, seconds =
            Support.Timer.time (fun () -> Algorithms.Kcore.run ~pool ~graph ~schedule ())
          in
          Printf.printf "max core = %d\n" (Algorithms.Kcore.max_core r);
          report "kcore" seconds (Some r.stats)
      | "setcover" ->
          let graph = load_graph graph_path true in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Setcover.run ~pool ~graph ~schedule ())
          in
          Printf.printf "cover size = %d (%d rounds)\n" r.cover_size r.rounds;
          report "setcover" seconds None
      | "bellman-ford" ->
          let graph = load_graph graph_path false in
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Bellman_ford.run ~pool ~graph ~source ())
          in
          Printf.printf "iterations = %d\n" r.iterations;
          report "bellman-ford" seconds None
      | other ->
          Printf.eprintf
            "unknown algorithm %S (sssp|wbfs|ppsp|astar|kcore|setcover|bellman-ford)\n"
            other;
          exit 1);
  (match (tracer, trace_path) with
  | Some t, Some path ->
      Observe.Tracer.set_current None;
      Observe.Tracer.write t path;
      Printf.printf "trace: %s (%d events; open in ui.perfetto.dev)\n" path
        (Observe.Tracer.event_count t)
  | _ -> ());
  if profile then begin
    let snap = Observe.Metrics.snapshot Observe.Metrics.default in
    Format.printf "@.flight recorder (docs/OBSERVABILITY.md):@.%a"
      (Observe.Metrics.pp ?times:None) snap
  end

let () =
  let algorithm =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ALGORITHM" ~doc:"Algorithm")
  in
  let graph = Arg.(required & pos 1 (some file) None & info [] ~docv:"GRAPH" ~doc:"Graph") in
  let source = Arg.(value & opt int 0 & info [ "source" ] ~doc:"Source vertex") in
  let target = Arg.(value & opt int 0 & info [ "target" ] ~doc:"Target vertex") in
  let workers = Arg.(value & opt int 4 & info [ "j"; "workers" ] ~doc:"Worker domains") in
  let strategy =
    Arg.(
      value & opt string "eager_with_fusion"
      & info [ "strategy" ] ~doc:"Bucket update strategy")
  in
  let delta = Arg.(value & opt int 1 & info [ "delta" ] ~doc:"Priority coarsening factor") in
  let threshold =
    Arg.(value & opt int 1000 & info [ "fusion-threshold" ] ~doc:"Bucket fusion threshold")
  in
  let buckets =
    Arg.(value & opt int 128 & info [ "num-buckets" ] ~doc:"Materialized lazy buckets")
  in
  let traversal =
    Arg.(value & opt string "SparsePush" & info [ "direction" ] ~doc:"SparsePush|DensePull")
  in
  let coords =
    Arg.(value & opt (some file) None & info [ "coords" ] ~doc:"Coordinates file (astar)")
  in
  let show_rounds =
    Arg.(value & flag & info [ "rounds" ] ~doc:"Print a per-round trace table (sssp)")
  in
  let trace_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a per-worker timeline and write it as Chrome trace_event \
             JSON (open in ui.perfetto.dev)")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Enable the flight recorder (span timings and cumulative \
             counters) and print its table after the run")
  in
  let term =
    Term.(
      const run $ algorithm $ graph $ source $ target $ workers $ strategy $ delta
      $ threshold $ buckets $ traversal $ coords $ show_rounds $ trace_path
      $ profile)
  in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "ordered_run" ~doc:"Run ordered graph algorithms") term))
