(* ordered_serve: the long-running ordered-graph query server and its
   line-protocol client. `serve` loads a graph once and answers point
   queries over a unix or TCP socket (protocol: docs/SERVICE.md);
   `client` plays a script of request lines against a server and prints
   the responses — the scripted-mix driver used by CI and the docs. *)

open Cmdliner

let load_edge_list path =
  if Graphs.Graph_bin.is_graph_bin path then
    Graphs.Csr.to_edge_list (Graphs.Graph_bin.load_csr path)
  else Graphs.Graph_io.load path

let make_schedule strategy delta threshold buckets =
  let ( let* ) = Result.bind in
  let* strategy = Ordered.Schedule.strategy_of_string strategy in
  Ordered.Schedule.validate
    {
      Ordered.Schedule.default with
      strategy;
      delta;
      fusion_threshold = threshold;
      num_open_buckets = buckets;
    }

let address socket_path port host =
  match port with
  | Some p -> Service.Server.Tcp (host, p)
  | None -> Service.Server.Unix_sock socket_path

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let serve graph_path socket_path port host workers landmarks queue_capacity
    max_batch deadline_ms slow_query_ms strategy delta threshold buckets
    coords_path symmetric warm compact_ops trace_path metrics_out log_path
    log_level =
  let schedule =
    match make_schedule strategy delta threshold buckets with
    | Ok s -> s
    | Error msg ->
        Printf.eprintf "invalid schedule: %s\n" msg;
        exit 1
  in
  (match Observe.Log.level_of_string log_level with
  | Some l -> Observe.Log.set_level l
  | None ->
      Printf.eprintf "invalid log level %S\n" log_level;
      exit 1);
  Option.iter Observe.Log.open_file log_path;
  let el = load_edge_list graph_path in
  let el = if symmetric then Graphs.Edge_list.symmetrized el else el in
  let handle = Graphs.Handle.of_edge_list el in
  let coords = Option.map Graphs.Graph_io.read_coords coords_path in
  let tracer =
    match trace_path with
    | None -> None
    | Some _ ->
        let t = Observe.Tracer.create () in
        Observe.Tracer.set_current (Some t);
        Observe.Tracer.install_pool_hooks ();
        Some t
  in
  Parallel.Pool.with_pool ~num_workers:workers (fun pool ->
      let config =
        {
          Service.Config.queue_capacity;
          max_batch;
          default_deadline_ms = deadline_ms;
          landmarks;
          schedule;
          slow_query_ms;
          graph_file = Some graph_path;
          symmetric;
          compact_ops;
        }
      in
      let core = Service.Core.create ~pool ~handle ?coords ~config () in
      if warm then begin
        let warmed = Service.Core.warm_alt core in
        Printf.printf "alt cache warmed: %d landmarks\n%!" warmed
      end;
      let server =
        Service.Server.start ~core ~address:(address socket_path port host) ()
      in
      (* The readiness line CI greps for before launching clients. *)
      Printf.printf "listening on %s (%d vertices, %d edges, %d workers)\n%!"
        (Service.Server.address_to_string (Service.Server.bound_address server))
        (Graphs.Handle.num_vertices handle)
        (Graphs.Handle.num_edges handle)
        workers;
      let handle_signal _ = Service.Server.request_stop server in
      (try
         Sys.set_signal Sys.sigint (Sys.Signal_handle handle_signal);
         Sys.set_signal Sys.sigterm (Sys.Signal_handle handle_signal)
       with Invalid_argument _ -> ());
      Service.Server.wait server;
      Printf.printf "server stopped\n%!");
  Observe.Log.close ();
  (match log_path with
  | Some path -> Printf.printf "log: %s\n" path
  | None -> ());
  (match metrics_out with
  | Some path ->
      let snap = Observe.Metrics.snapshot Observe.Metrics.default in
      let oc = open_out path in
      output_string oc (Support.Json.to_string (Observe.Metrics.to_json snap));
      output_char oc '\n';
      close_out oc;
      Printf.printf "metrics: %s\n" path
  | None -> ());
  match (tracer, trace_path) with
  | Some t, Some path ->
      Observe.Tracer.set_current None;
      Observe.Tracer.remove_pool_hooks ();
      Observe.Tracer.write t path;
      Printf.printf "trace: %s (%d events; open in ui.perfetto.dev)\n" path
        (Observe.Tracer.event_count t)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* client                                                              *)

let connect socket_path port host timeout =
  let fd =
    match port with
    | Some p ->
        let addr =
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_of_string host
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (addr, p));
        fd
    | None ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket_path);
        fd
  in
  if timeout > 0. then Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
  fd

let read_script = function
  | None ->
      let rec go acc =
        match input_line stdin with
        | exception End_of_file -> List.rev acc
        | line -> go (line :: acc)
      in
      go []
  | Some path ->
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | exception End_of_file -> List.rev acc
            | line -> go (line :: acc)
          in
          go [])

let write_all fd line =
  let bytes = Bytes.of_string line in
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes !written (len - !written)
  done

(* `client --watch`: one subscribe request, then print the stats pushes
   as they stream in. [updates = 0] watches until the server stops (or
   the receive timeout fires). *)
let watch socket_path port host timeout interval_ms updates quiet =
  let fd = connect socket_path port host timeout in
  let ic = Unix.in_channel_of_descr fd in
  write_all fd
    (Support.Json.to_string
       (Support.Json.Obj
          [
            ("id", Support.Json.Int 0);
            ("op", Support.Json.String "subscribe");
            ("interval_ms", Support.Json.Float interval_ms);
            ("updates", Support.Json.Int updates);
          ])
    ^ "\n");
  let received = ref 0 in
  (try
     while updates = 0 || !received < updates do
       let line = input_line ic in
       incr received;
       if not quiet then print_endline line
     done
   with
  | End_of_file -> ()
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Printf.eprintf "timed out after %d updates\n" !received);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Printf.eprintf "updates: %d/%s\n" !received
    (if updates = 0 then "unbounded" else string_of_int updates);
  if updates > 0 && !received < updates then exit 1

let client socket_path port host script timeout quiet watch_mode interval_ms
    updates =
  if watch_mode then watch socket_path port host timeout interval_ms updates quiet
  else
  let lines =
    read_script script
    |> List.filter (fun l ->
           let l = String.trim l in
           l <> "" && not (String.length l >= 1 && l.[0] = '#'))
  in
  if lines = [] then begin
    Printf.eprintf "empty script\n";
    exit 1
  end;
  let fd = connect socket_path port host timeout in
  let ic = Unix.in_channel_of_descr fd in
  List.iter (fun line -> write_all fd (line ^ "\n")) lines;
  let expected = List.length lines in
  let by_status = Hashtbl.create 8 in
  let received = ref 0 in
  (try
     while !received < expected do
       let line = input_line ic in
       incr received;
       if not quiet then print_endline line;
       let status =
         match Support.Json.of_string line with
         | Ok json -> (
             match Support.Json.member "status" json with
             | Some (Support.Json.String s) -> s
             | _ -> "unparseable")
         | Error _ -> "unparseable"
       in
       Hashtbl.replace by_status status
         (1 + Option.value ~default:0 (Hashtbl.find_opt by_status status))
     done
   with
  | End_of_file ->
      Printf.eprintf "server closed the connection after %d/%d responses\n"
        !received expected
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Printf.eprintf "timed out after %d/%d responses\n" !received expected);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let statuses =
    Hashtbl.fold (fun s n acc -> (s, n) :: acc) by_status []
    |> List.sort compare
    |> List.map (fun (s, n) -> Printf.sprintf "%s=%d" s n)
    |> String.concat " "
  in
  Printf.eprintf "responses: %d/%d (%s)\n" !received expected statuses;
  if !received < expected then exit 1

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)

let socket_arg =
  Arg.(
    value
    & opt string "ordered.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (ignored when $(b,--port) is given)")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen/connect on TCP instead of the unix socket; 0 lets the \
              OS pick (the bound port is printed on the readiness line)")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP bind/connect host")

let serve_cmd =
  let graph =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"GRAPH"
          ~doc:"Edge-list text file or GRAPHBIN binary (sniffed by magic)")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "j"; "workers" ] ~doc:"Worker domains")
  in
  let landmarks =
    Arg.(
      value & opt int 4
      & info [ "landmarks" ] ~docv:"K"
          ~doc:"ALT landmark cache size; 0 disables the cache")
  in
  let queue_capacity =
    Arg.(
      value & opt int 256
      & info [ "queue-capacity" ]
          ~doc:"Admission bound: further requests are rejected, not queued")
  in
  let max_batch =
    Arg.(
      value & opt int 32
      & info [ "max-batch" ] ~doc:"Most requests one batcher cycle drains")
  in
  let deadline_ms =
    Arg.(
      value & opt float 0.
      & info [ "default-deadline-ms" ]
          ~doc:
            "Deadline for requests that set none; 0 means unlimited. \
             Expired queries return status=partial with monotone bounds")
  in
  let slow_query_ms =
    Arg.(
      value & opt float 0.
      & info [ "slow-query-ms" ] ~docv:"MS"
          ~doc:
            "Log a slow-query record (with a check_runner repro line) for \
             any query at or over this wall-clock latency; 0 disables the \
             threshold. Deadline misses are always recorded. Needs \
             $(b,--log)")
  in
  let strategy =
    Arg.(
      value & opt string "eager_with_fusion"
      & info [ "strategy" ] ~doc:"Bucket update strategy")
  in
  let delta =
    Arg.(value & opt int 1 & info [ "delta" ] ~doc:"Priority coarsening factor")
  in
  let threshold =
    Arg.(
      value & opt int 1000
      & info [ "fusion-threshold" ] ~doc:"Bucket fusion threshold")
  in
  let buckets =
    Arg.(
      value & opt int 128
      & info [ "num-buckets" ] ~doc:"Materialized lazy buckets")
  in
  let coords =
    Arg.(
      value
      & opt (some file) None
      & info [ "coords" ] ~doc:"Coordinates file (extra A* heuristic)")
  in
  let symmetric =
    Arg.(
      value & flag
      & info [ "symmetric" ]
          ~doc:"Symmetrize the graph at load (service queries still run on \
                the loaded direction; kcore symmetrizes internally anyway)")
  in
  let warm =
    Arg.(
      value & flag
      & info [ "warm" ]
          ~doc:
            "Warm the whole ALT cache before accepting connections \
             (otherwise it warms in the background and via the warm_alt op)")
  in
  let compact_ops =
    Arg.(
      value & opt int 4096
      & info [ "compact-ops" ] ~docv:"N"
          ~doc:
            "Mutation ops between background compactions of the versioned \
             graph (each compaction rebuilds every derived layout hot and \
             truncates the delta log); 0 disables compaction")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a per-worker timeline of the whole serving session and \
             write Chrome trace_event JSON at exit (open in ui.perfetto.dev)")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the flight-recorder snapshot as JSON at exit")
  in
  let log_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Append structured JSONL event records (query attribution, \
             slow queries) to $(docv) (schema: docs/OBSERVABILITY.md §8a)")
  in
  let log_level =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Lowest level written to $(b,--log): debug, info, warn, error. \
             Per-query attribution records are $(b,debug); slow-query \
             records are $(b,warn)")
  in
  let term =
    Term.(
      const serve $ graph $ socket_arg $ port_arg $ host_arg $ workers
      $ landmarks $ queue_capacity $ max_batch $ deadline_ms $ slow_query_ms
      $ strategy $ delta $ threshold $ buckets $ coords $ symmetric $ warm
      $ compact_ops $ trace $ metrics_out $ log_path $ log_level)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Load a graph once and serve ordered-graph point queries \
          (ppsp/astar/widest/kcore) over line-delimited JSON")
    term

let client_cmd =
  let script =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "Request lines to send (one JSON object per line; blank lines \
             and # comments skipped). Reads stdin when absent")
  in
  let timeout =
    Arg.(
      value & opt float 60.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Receive timeout while waiting for responses; 0 disables")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ]
          ~doc:"Suppress response lines; only print the summary to stderr")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Subscribe to the server's live stats stream instead of playing \
             a script: print one queue/latency snapshot per interval \
             (docs/SERVICE.md §7a)")
  in
  let interval_ms =
    Arg.(
      value & opt float 1000.
      & info [ "interval-ms" ] ~docv:"MS"
          ~doc:"Push interval for $(b,--watch) (server-clamped to ≥ 10)")
  in
  let updates =
    Arg.(
      value & opt int 0
      & info [ "updates" ] ~docv:"N"
          ~doc:
            "Stop $(b,--watch) after $(docv) pushes; 0 watches until the \
             server stops or $(b,--timeout) fires")
  in
  let term =
    Term.(
      const client $ socket_arg $ port_arg $ host_arg $ script $ timeout
      $ quiet $ watch $ interval_ms $ updates)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send a script of requests to a running server, print each \
          response, and summarize statuses (exit 1 on missing responses)")
    term

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "ordered_serve"
             ~doc:"Ordered-graph query service (docs/SERVICE.md)")
          [ serve_cmd; client_cmd ]))
