(* bench_timeline: aggregate the committed bench --json reports
   (bench/BENCH_*.json, oldest first) into a per-section trajectory —
   median/min/max/stddev across the series and a regression flag for the
   newest point against the median of the points before it. The
   across-PRs companion of bench_diff (docs/OBSERVABILITY.md §7b).

   Exit codes: 0 = no regression; 1 = at least one section's newest
   point regressed past the threshold; 2 = unreadable input. *)

open Cmdliner
module Timeline = Observe.Timeline

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg ->
      Printf.eprintf "bench_timeline: cannot read %s: %s\n" path msg;
      exit 2
  | contents -> (
      match
        Timeline.points_of_string ~label:(Filename.basename path) contents
      with
      | Ok points -> points
      | Error msg ->
          Printf.eprintf "bench_timeline: %s\n" msg;
          exit 2)

let run paths threshold floor force json_out =
  (* Command-line order is trajectory order: pass reports oldest first
     (CI sorts bench/BENCH_*.json by number). *)
  let points = List.concat_map load paths in
  if points = [] then begin
    Printf.eprintf "bench_timeline: no points\n";
    exit 2
  end;
  let report =
    Timeline.analyze ~threshold ~floor ~gate_foreign:force points
  in
  Format.printf "%a@?" Timeline.pp report;
  (match json_out with
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          let ppf = Format.formatter_of_out_channel oc in
          Format.fprintf ppf "%a@." Support.Json.pp (Timeline.to_json report));
      Printf.printf "report: %s\n" path
  | None -> ());
  if report.Timeline.regressions > 0 then exit 1

let () =
  let paths =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"REPORT"
          ~doc:
            "bench --json reports or bench_diff trajectory files, oldest \
             first; trajectories flatten in order")
  in
  let threshold =
    Arg.(
      value & opt float 0.25
      & info [ "threshold" ]
          ~doc:
            "Relative slowdown of the newest point vs the prior median \
             that counts as a regression (0.25 = 25%)")
  in
  let floor =
    Arg.(
      value & opt float 0.01
      & info [ "floor" ]
          ~doc:
            "Absolute floor in seconds: sections where both sides sit \
             below it never gate (scheduler noise)")
  in
  let force =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:
            "Gate on every point even when its hostname differs from the \
             majority (foreign-host points are otherwise listed but \
             excluded)")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON (the artifact CI uploads)")
  in
  let term =
    Term.(const run $ paths $ threshold $ floor $ force $ json_out)
  in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "bench_timeline"
             ~doc:
               "Aggregate committed bench reports into a per-section \
                trajectory and fail on a newest-point regression")
          term))
