(* The DSL differential sweep (Check.Dsl_case / Check.Dsl_sweep):

   - spec strings round-trip, so repro lines are self-contained;
   - every generated program renders to text that parses, typechecks,
     and survives the pretty-printer round trip (Parser -> Pretty ->
     Parser is identity under Ast.equal_program);
   - a clean mini-sweep over real programs and graphs finds nothing;
   - a grafted wrong lowering (--bug wrong-weight) is detected, ddmin
     shrinks the program to the bare skeleton (<= 5 statements) and the
     graph to a near-minimal case, and the resulting repro configuration
     still fails when replayed. *)

module Dsl_case = Check.Dsl_case
module Dsl_sweep = Check.Dsl_sweep
module Graph_case = Check.Graph_case
module Schedule = Ordered.Schedule
module Pool = Parallel.Pool

let with_pools f =
  Pool.with_pool ~num_workers:1 (fun ref_pool ->
      Pool.with_pool ~num_workers:2 (fun pool -> f ~pool ~ref_pool))

(* ---------------- spec strings ---------------- *)

let test_spec_roundtrip () =
  for seed = 0 to 3 do
    for i = 0 to 11 do
      let spec = Dsl_case.generate ~seed i in
      let s = Dsl_case.to_string spec in
      match Dsl_case.of_string s with
      | Ok spec' ->
          Alcotest.(check string) ("round trip of " ^ s) s
            (Dsl_case.to_string spec')
      | Error msg -> Alcotest.fail (s ^ ": " ^ msg)
    done
  done;
  (match Dsl_case.of_string "min:reach+guard" with
  | Ok spec ->
      (* genes canonicalize to pool order *)
      Alcotest.(check string) "canonical order" "min:guard+reach"
        (Dsl_case.to_string spec)
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "unknown family rejected" true
    (Result.is_error (Dsl_case.of_string "bogus:guard"));
  Alcotest.(check bool) "unknown gene rejected" true
    (Result.is_error (Dsl_case.of_string "peel:tmp"))

let test_bug_string_roundtrip () =
  List.iter
    (fun b ->
      match Dsl_sweep.bug_of_string (Dsl_sweep.bug_to_string b) with
      | Ok b' ->
          Alcotest.(check string) "bug round trip" (Dsl_sweep.bug_to_string b)
            (Dsl_sweep.bug_to_string b')
      | Error msg -> Alcotest.fail msg)
    [ Dsl_sweep.No_bug; Dsl_sweep.Wrong_weight ];
  Alcotest.(check bool) "unknown bug rejected" true
    (Result.is_error (Dsl_sweep.bug_of_string "off-by-one"))

(* ---------------- render / pretty round trip ---------------- *)

let qcheck_render_pretty_roundtrip =
  QCheck.Test.make ~name:"render -> parse -> pretty -> parse is identity"
    ~count:60
    QCheck.(pair (int_bound 20) (int_bound 20))
    (fun (seed, i) ->
      let spec = Dsl_case.generate ~seed i in
      let source = Dsl_case.render spec in
      let ast =
        try Dsl.Parser.parse_string source
        with Dsl.Parser.Error (pos, msg) ->
          QCheck.Test.fail_reportf "%s: %a: parse error: %s"
            (Dsl_case.to_string spec) Dsl.Pos.pp pos msg
      in
      (match Dsl.Typecheck.check ast with
      | Ok () -> ()
      | Error errors ->
          QCheck.Test.fail_reportf "%s: %s" (Dsl_case.to_string spec)
            (String.concat "; "
               (List.map
                  (fun e -> Format.asprintf "%a" Dsl.Typecheck.pp_error e)
                  errors)));
      let printed = Dsl.Pretty.program ast in
      let ast' =
        try Dsl.Parser.parse_string printed
        with Dsl.Parser.Error (pos, msg) ->
          QCheck.Test.fail_reportf
            "%s: pretty output no longer parses at %a: %s\n%s"
            (Dsl_case.to_string spec) Dsl.Pos.pp pos msg printed
      in
      Dsl.Ast.equal_program ast ast')

(* ---------------- single configurations ---------------- *)

let full spec_family =
  { Dsl_case.family = spec_family; genes = Dsl_case.all_genes spec_family }

let bare spec_family = { Dsl_case.family = spec_family; genes = [] }

(* Every family, bare and fully gened, through reference-vs-engine at the
   default schedule. The schedule grid itself is the sweep's job. *)
let test_all_specs_run () =
  let case = Graph_case.build (Graph_case.Random { seed = 2; n = 16; m = 60; max_w = 6 }) in
  with_pools (fun ~pool ~ref_pool ->
      List.iter
        (fun spec ->
          match Dsl_sweep.run_one ~pool ~ref_pool spec case Schedule.default with
          | Ok () -> ()
          | Error msg ->
              Alcotest.fail (Dsl_case.to_string spec ^ ": " ^ msg))
        (List.concat_map
           (fun f -> [ bare f; full f ])
           Dsl_case.all_families))

(* When a C++ toolchain is present, one representative configuration
   through all three lanes; skipped silently otherwise (CI installs a
   compiler so the lane runs there). *)
let test_compiled_lane_when_available () =
  match Dsl_sweep.detect_toolchain () with
  | None -> ()
  | Some toolchain ->
      let case = Graph_case.build (Graph_case.Path 10) in
      with_pools (fun ~pool ~ref_pool ->
          List.iter
            (fun spec ->
              match
                Dsl_sweep.run_one ~toolchain ~pool ~ref_pool spec case
                  Schedule.default
              with
              | Ok () -> ()
              | Error msg ->
                  Alcotest.fail (Dsl_case.to_string spec ^ ": " ^ msg))
            [ full Dsl_case.Min_relax; bare Dsl_case.Sum_peel ])

(* ---------------- sweeps ---------------- *)

let test_clean_mini_sweep () =
  let summary =
    Dsl_sweep.run
      ~programs:[ bare Dsl_case.Min_relax; full Dsl_case.Max_relax ]
      ~graphs:[ Graph_case.Path 8; Graph_case.Self_loops 5 ]
      ~workers:[ 2 ] ~budget:60. ~seed:11 ~compiled:false ()
  in
  Alcotest.(check int) "no failures" 0 (List.length summary.Dsl_sweep.failures);
  Alcotest.(check bool) "ran configurations" true
    (summary.Dsl_sweep.configs_run > 0)

(* The forced-bug loop: graft the wrong lowering, demand detection,
   shrinking to the bare skeleton, and a repro that still fails. *)
let test_forced_bug_detected_and_shrunk () =
  let summary =
    Dsl_sweep.run
      ~programs:[ full Dsl_case.Min_relax ]
      ~graphs:[ Graph_case.Random { seed = 5; n = 20; m = 80; max_w = 7 } ]
      ~workers:[ 1 ] ~budget:120. ~seed:5 ~max_failures:1
      ~bug:Dsl_sweep.Wrong_weight ~compiled:false ()
  in
  match summary.Dsl_sweep.failures with
  | [] -> Alcotest.fail "wrong-weight bug not detected"
  | f :: _ ->
      let shrunk =
        match f.Dsl_sweep.shrunk_program with
        | Some s -> s
        | None -> Alcotest.fail "program did not shrink"
      in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to <= 5 statements (%s = %d)"
           (Dsl_case.to_string shrunk)
           (Dsl_case.num_statements shrunk))
        true
        (Dsl_case.num_statements shrunk <= 5);
      let contains sub s =
        let re = Str.regexp_string sub in
        try
          ignore (Str.search_forward re s 0);
          true
        with Not_found -> false
      in
      Alcotest.(check bool) "repro line names the dsl mode" true
        (contains "check_runner --dsl --program" f.Dsl_sweep.repro);
      Alcotest.(check bool) "repro line carries the bug" true
        (contains "--bug wrong-weight" f.Dsl_sweep.repro);
      (* replay the shrunk configuration: it must still fail *)
      let graph_spec =
        Option.value ~default:f.Dsl_sweep.config.Dsl_sweep.graph
          f.Dsl_sweep.shrunk_graph
      in
      let case = Graph_case.build graph_spec in
      with_pools (fun ~pool ~ref_pool ->
          match
            Dsl_sweep.run_one ~bug:Dsl_sweep.Wrong_weight ~pool ~ref_pool
              shrunk case f.Dsl_sweep.config.Dsl_sweep.schedule
          with
          | Ok () -> Alcotest.fail ("shrunk repro passes: " ^ f.Dsl_sweep.repro)
          | Error _ -> ())

(* Sum_peel is unweighted, so the wrong-weight graft is a no-op there —
   the sweep must stay clean rather than report phantom failures. *)
let test_bug_noop_for_unweighted () =
  let summary =
    Dsl_sweep.run
      ~programs:[ full Dsl_case.Sum_peel ]
      ~graphs:[ Graph_case.Path 8 ]
      ~workers:[ 1 ] ~budget:60. ~seed:9 ~max_failures:1
      ~bug:Dsl_sweep.Wrong_weight ~compiled:false ()
  in
  Alcotest.(check int) "no failures" 0 (List.length summary.Dsl_sweep.failures)

let () =
  Alcotest.run "dsl_sweep"
    [
      ( "specs",
        [
          Alcotest.test_case "spec strings round-trip" `Quick
            test_spec_roundtrip;
          Alcotest.test_case "bug strings round-trip" `Quick
            test_bug_string_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_render_pretty_roundtrip;
        ] );
      ( "lanes",
        [
          Alcotest.test_case "all specs run reference-vs-engine" `Quick
            test_all_specs_run;
          Alcotest.test_case "compiled lane when toolchain present" `Slow
            test_compiled_lane_when_available;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "clean mini-sweep" `Slow test_clean_mini_sweep;
          Alcotest.test_case "forced bug detected and shrunk" `Slow
            test_forced_bug_detected_and_shrunk;
          Alcotest.test_case "wrong-weight is a no-op unweighted" `Quick
            test_bug_noop_for_unweighted;
        ] );
    ]
