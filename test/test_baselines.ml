(* The comparison frameworks must be just as correct as the GraphIt engine:
   every baseline is validated against the same sequential oracles. *)

module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Edge_list = Graphs.Edge_list
module Generators = Graphs.Generators
module Rng = Support.Rng
module Bucket_order = Bucketing.Bucket_order

let random_weighted_graph = Testlib.random_weighted_graph
let symmetric_random = Testlib.symmetric_random

let test_julienne_sssp () =
  let g = random_weighted_graph 101 ~n:200 ~m:1200 ~max_w:25 in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  List.iter
    (fun workers ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          let r = Baselines.Julienne_like.sssp ~pool ~graph:g ~delta:8 ~source:0 () in
          Alcotest.(check (array int))
            (Printf.sprintf "julienne sssp workers=%d" workers)
            expected r.dist;
          Alcotest.(check bool) "did rounds" true (r.rounds > 0)))
    [ 1; 4 ]

let test_julienne_wbfs_ppsp () =
  let g = random_weighted_graph 102 ~n:150 ~m:900 ~max_w:6 in
  let expected = Algorithms.Dijkstra.distances g ~source:1 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let r = Baselines.Julienne_like.wbfs ~pool ~graph:g ~source:1 () in
      Alcotest.(check (array int)) "julienne wbfs" expected r.dist;
      let reachable =
        let best = ref (-1) in
        Array.iteri
          (fun v d ->
            if v <> 1 && d <> Bucket_order.null_priority && !best = -1 then best := v)
          expected;
        !best
      in
      let d = Baselines.Julienne_like.ppsp ~pool ~graph:g ~delta:8 ~source:1 ~target:reachable () in
      Alcotest.(check int) "julienne ppsp" expected.(reachable) d)

let test_julienne_kcore () =
  let g = symmetric_random 103 ~n:120 ~m:700 in
  let expected = Algorithms.Kcore_peel_seq.coreness g in
  List.iter
    (fun workers ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          let r = Baselines.Julienne_like.kcore ~pool ~graph:g () in
          Alcotest.(check (array int))
            (Printf.sprintf "julienne kcore workers=%d" workers)
            expected r.coreness))
    [ 1; 4 ]

let test_julienne_setcover () =
  let g = symmetric_random 104 ~n:100 ~m:500 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let r = Baselines.Julienne_like.setcover ~pool ~graph:g () in
      Alcotest.(check bool) "valid cover" true (Algorithms.Setcover.is_valid_cover g r))

let test_gapbs_sssp_no_fusion () =
  let g = random_weighted_graph 105 ~n:180 ~m:1000 ~max_w:30 in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let r = Baselines.Gapbs_like.sssp ~pool ~graph:g ~delta:8 ~source:0 () in
      Alcotest.(check (array int)) "gapbs sssp" expected r.dist;
      Alcotest.(check int) "gapbs never fuses" 0 r.stats.Ordered.Stats.fused_drains)

let test_gapbs_astar () =
  let rng = Rng.create 106 in
  let el, coords = Generators.road_grid ~rng ~rows:10 ~cols:15 () in
  let g = Csr.of_edge_list el in
  let source = 0 and target = (10 * 15) - 1 in
  let expected = Algorithms.Dijkstra.distance_to g ~source ~target in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let r = Baselines.Gapbs_like.astar ~pool ~graph:g ~coords ~delta:128 ~source ~target () in
      Alcotest.(check int) "gapbs astar" expected r.distance)

let test_galois_sssp () =
  let g = random_weighted_graph 107 ~n:200 ~m:1100 ~max_w:20 in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  List.iter
    (fun workers ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          let r = Baselines.Galois_like.sssp ~pool ~graph:g ~delta:4 ~source:0 () in
          Alcotest.(check (array int))
            (Printf.sprintf "galois sssp workers=%d" workers)
            expected r.dist;
          Alcotest.(check bool) "work accounted" true (r.work_items > 0)))
    [ 1; 2; 4 ]

let test_galois_ppsp_astar () =
  let rng = Rng.create 108 in
  let el, coords = Generators.road_grid ~rng ~rows:12 ~cols:12 () in
  let g = Csr.of_edge_list el in
  let source = 0 and target = (12 * 12) - 1 in
  let expected = Algorithms.Dijkstra.distance_to g ~source ~target in
  Pool.with_pool ~num_workers:2 (fun pool ->
      Alcotest.(check int) "galois ppsp" expected
        (Baselines.Galois_like.ppsp ~pool ~graph:g ~delta:64 ~source ~target ());
      Alcotest.(check int) "galois astar" expected
        (Baselines.Galois_like.astar ~pool ~graph:g ~coords ~delta:64 ~source ~target ()))

let test_ligra_sssp_directions () =
  (* A dense-ish graph forces at least one dense pull sweep. *)
  let g = random_weighted_graph 109 ~n:80 ~m:2500 ~max_w:10 in
  let t = Csr.transpose g in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let r = Baselines.Ligra_like.sssp ~pool ~graph:g ~transpose:t ~source:0 () in
      Alcotest.(check (array int)) "ligra sssp" expected r.dist;
      Alcotest.(check bool)
        (Printf.sprintf "used dense direction (%d/%d)" r.dense_iterations r.iterations)
        true (r.dense_iterations > 0))

let test_ligra_sssp_sparse_only () =
  let rng = Rng.create 110 in
  let el, _ = Generators.road_grid ~rng ~rows:12 ~cols:12 () in
  let g = Csr.of_edge_list el in
  let t = Csr.transpose g in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let r = Baselines.Ligra_like.sssp ~pool ~graph:g ~transpose:t ~source:0 () in
      Alcotest.(check (array int)) "ligra road sssp" expected r.dist)

let qcheck_galois_matches_dijkstra =
  QCheck.Test.make ~name:"galois relaxed scheduler is still exact" ~count:40
    QCheck.(triple (int_range 2 60) (int_bound 300) (int_range 1 8))
    (fun (n, m, delta) ->
      let g = random_weighted_graph (n + (m * 17) + delta) ~n ~m ~max_w:15 in
      let expected = Algorithms.Dijkstra.distances g ~source:0 in
      Pool.with_pool ~num_workers:3 (fun pool ->
          let r = Baselines.Galois_like.sssp ~pool ~graph:g ~delta ~source:0 () in
          r.dist = expected))

let qcheck_julienne_matches_dijkstra =
  QCheck.Test.make ~name:"julienne lazy engine is exact" ~count:40
    QCheck.(triple (int_range 2 60) (int_bound 300) (int_range 1 8))
    (fun (n, m, delta) ->
      let g = random_weighted_graph (n + (m * 29) + delta) ~n ~m ~max_w:15 in
      let expected = Algorithms.Dijkstra.distances g ~source:0 in
      Pool.with_pool ~num_workers:2 (fun pool ->
          let r = Baselines.Julienne_like.sssp ~pool ~graph:g ~delta ~source:0 () in
          r.dist = expected))

let () =
  Alcotest.run "baselines"
    [
      ( "julienne",
        [
          Alcotest.test_case "sssp" `Quick test_julienne_sssp;
          Alcotest.test_case "wbfs + ppsp" `Quick test_julienne_wbfs_ppsp;
          Alcotest.test_case "kcore" `Quick test_julienne_kcore;
          Alcotest.test_case "setcover" `Quick test_julienne_setcover;
          QCheck_alcotest.to_alcotest qcheck_julienne_matches_dijkstra;
        ] );
      ( "gapbs",
        [
          Alcotest.test_case "sssp without fusion" `Quick test_gapbs_sssp_no_fusion;
          Alcotest.test_case "astar" `Quick test_gapbs_astar;
        ] );
      ( "galois",
        [
          Alcotest.test_case "sssp" `Quick test_galois_sssp;
          Alcotest.test_case "ppsp + astar" `Quick test_galois_ppsp_astar;
          QCheck_alcotest.to_alcotest qcheck_galois_matches_dijkstra;
        ] );
      ( "ligra",
        [
          Alcotest.test_case "direction switching" `Quick test_ligra_sssp_directions;
          Alcotest.test_case "sparse-only road" `Quick test_ligra_sssp_sparse_only;
        ] );
    ]
