(* The dynamic-graph stack, bottom to top: Delta batch semantics,
   Versioned snapshot isolation (including a commit landing mid-query),
   the incremental == from-scratch property across schedules and worker
   counts (qcheck over random mutation histories), the per-version cache
   keying that makes push and pull agree after a mutation, and the
   service-level mutate/cancel wire ops. *)

module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Edge_list = Graphs.Edge_list
module Handle = Graphs.Handle
module Delta = Graphs.Delta
module Versioned = Graphs.Versioned
module Schedule = Ordered.Schedule
module Sssp = Algorithms.Sssp_delta
module Oracle = Check.Oracle
module Dynamic = Check.Dynamic
module Protocol = Service.Protocol
module Json = Support.Json

let null = Bucketing.Bucket_order.null_priority

let csr_of edges ~n =
  Csr.of_edge_list
    (Edge_list.create ~num_vertices:n
       (Array.of_list
          (List.map (fun (s, d, w) -> { Edge_list.src = s; dst = d; weight = w }) edges)))

let dist_equal = Alcotest.(check (array int))

(* ---------------- Delta semantics ---------------- *)

let test_delta_apply () =
  let g = csr_of ~n:4 [ (0, 1, 5); (1, 2, 3); (1, 2, 7); (2, 3, 1) ] in
  (* Insert appends; delete removes every parallel copy; reweight sets
     every copy; ops apply in order. *)
  let batch =
    [|
      Delta.Insert { src = 0; dst = 3; weight = 2 };
      Delta.Delete { src = 1; dst = 2 };
      Delta.Insert { src = 1; dst = 2; weight = 9 };
      Delta.Reweight { src = 2; dst = 3; weight = 4 };
      Delta.Delete { src = 3; dst = 0 } (* absent: no-op *);
    |]
  in
  let g' = Delta.apply g batch in
  let edges u =
    let acc = ref [] in
    Csr.iter_out g' u (fun v w -> acc := (v, w) :: !acc);
    List.sort compare !acc
  in
  Alcotest.(check (list (pair int int))) "out(0)" [ (1, 5); (3, 2) ] (edges 0);
  Alcotest.(check (list (pair int int))) "out(1)" [ (2, 9) ] (edges 1);
  Alcotest.(check (list (pair int int))) "out(2)" [ (3, 4) ] (edges 2);
  (* The input CSR is untouched. *)
  Alcotest.(check int) "old num_edges" 4 (Csr.num_edges g);
  (* Round-trip the printable form. *)
  let s = Delta.to_string batch in
  match Delta.of_string s with
  | Error e -> Alcotest.fail e
  | Ok batch' ->
      Alcotest.(check string) "to_string round-trip" s (Delta.to_string batch')

let test_delta_validate () =
  let bad w = [| Delta.Insert { src = 0; dst = 1; weight = w } |] in
  (match Delta.validate ~num_vertices:2 (bad 0) with
  | Ok () -> Alcotest.fail "weight 0 accepted"
  | Error _ -> ());
  (match Delta.validate ~num_vertices:2 [| Delta.Delete { src = 0; dst = 7 } |] with
  | Ok () -> Alcotest.fail "out-of-range dst accepted"
  | Error _ -> ());
  match Delta.validate ~num_vertices:2 (bad 3) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ---------------- Versioned snapshots ---------------- *)

let test_versioned_commit_pin () =
  let g = csr_of ~n:3 [ (0, 1, 1); (1, 2, 1) ] in
  let v = Versioned.create g in
  Alcotest.(check int) "initial version" 0 (Versioned.version v);
  let pinned = Versioned.pin v in
  let v1 = Versioned.commit v [| Delta.Insert { src = 0; dst = 2; weight = 1 } |] in
  Alcotest.(check int) "commit mints 1" 1 v1;
  Alcotest.(check int) "latest advanced" 1 (Versioned.version v);
  (* The pinned snapshot still reads the old graph. *)
  Alcotest.(check int) "pinned edges" 2 (Csr.num_edges (Handle.csr pinned));
  Alcotest.(check int) "new edges" 3
    (Csr.num_edges (Handle.csr (Versioned.latest v)));
  Alcotest.(check (list int)) "pinned versions" [ 0 ] (Versioned.pinned_versions v);
  (* batches_since spans 0 -> 1; from latest it is empty. *)
  (match Versioned.batches_since v ~version:0 with
  | Some [| b |] -> Alcotest.(check int) "one-op batch" 1 (Delta.size b)
  | _ -> Alcotest.fail "batches_since 0");
  (match Versioned.batches_since v ~version:1 with
  | Some [||] -> ()
  | _ -> Alcotest.fail "batches_since latest");
  Versioned.release v pinned;
  Alcotest.(check (list int)) "released" [] (Versioned.pinned_versions v)

let test_versioned_compact () =
  let g = csr_of ~n:3 [ (0, 1, 1) ] in
  let v = Versioned.create ~compact_every:2 g in
  ignore (Versioned.commit v [| Delta.Insert { src = 1; dst = 2; weight = 4 } |]);
  Alcotest.(check bool) "below threshold" false (Versioned.should_compact v);
  ignore (Versioned.commit v [| Delta.Reweight { src = 0; dst = 1; weight = 2 } |]);
  Alcotest.(check bool) "at threshold" true (Versioned.should_compact v);
  Alcotest.(check bool) "compact swaps" true (Versioned.compact v);
  Alcotest.(check int) "compactions" 1 (Versioned.compactions v);
  Alcotest.(check int) "ops reset" 0 (Versioned.ops_pending v);
  (* The log was truncated: the pre-compaction version is unreachable. *)
  (match Versioned.batches_since v ~version:0 with
  | None -> ()
  | Some _ -> Alcotest.fail "log not truncated");
  Alcotest.(check int) "version preserved" 2 (Versioned.version v)

(* A commit landing mid-run must not disturb the pinned snapshot: the
   query answers for version N whether or not N+1 appears while its
   engine is still rounding — the acceptance shape of snapshot
   isolation. *)
let test_snapshot_isolation_mid_flight () =
  Pool.with_pool ~num_workers:2 (fun pool ->
      let g = Testlib.random_weighted_graph 11 ~n:300 ~m:1500 ~max_w:8 in
      let v = Versioned.create g in
      let schedule = Testlib.schedule () in
      let control =
        (Sssp.run ~pool ~graph:g ~schedule ~source:0 ()).Sssp.dist
      in
      let pinned = Versioned.pin v in
      let committed = ref false in
      let on_round (_ : Ordered.Stats.t) =
        if not !committed then begin
          committed := true;
          ignore
            (Versioned.commit v
               [|
                 Delta.Reweight { src = 0; dst = 1; weight = 1 };
                 Delta.Insert { src = 0; dst = 299; weight = 1 };
               |])
        end
      in
      let dist = Parallel.Atomic_array.make 300 null in
      Parallel.Atomic_array.set dist 0 0;
      let pq =
        Ordered.Priority_queue.create ~schedule ~num_workers:2
          ~direction:Bucketing.Bucket_order.Lower_first ~allow_coarsening:true
          ~priorities:dist ~initial:(Ordered.Priority_queue.Start_vertex 0)
          ~pool ()
      in
      let edge_fn ctx ~src ~dst ~weight =
        let nd = Parallel.Atomic_array.get dist src + weight in
        Ordered.Priority_queue.update_priority_min pq ctx dst nd
      in
      ignore
        (Ordered.Engine.run ~pool ~graph:(Handle.csr pinned) ~handle:pinned
           ~schedule ~pq ~edge_fn ~on_round ());
      dist_equal "pinned run unaffected by mid-flight commit" control
        (Parallel.Atomic_array.to_array dist);
      Alcotest.(check bool) "commit did land" true !committed;
      Alcotest.(check int) "latest moved on" 1 (Versioned.version v);
      Alcotest.(check int) "pinned still version 0" 0 (Handle.version pinned);
      Versioned.release v pinned)

(* ---------------- incremental == from-scratch (qcheck) ---------------- *)

(* One property instance: replay random batches over a random graph and
   demand the incremental repair equals a from-scratch run at every
   step. Exercised per (traversal, workers) grid point below; the full
   4-way judgment (plus ddmin shrinking) lives in `check_runner
   --dynamic`. *)
let incremental_matches_scratch ~pool ~schedule seed =
  let g = Testlib.random_weighted_graph seed ~n:60 ~m:260 ~max_w:6 in
  let batches = Dynamic.gen_batches ~seed g ~num_batches:3 ~ops_per_batch:5 in
  let source = 0 in
  let old_graph = ref g in
  let prev =
    ref (Sssp.run ~pool ~graph:g ~handle:(Handle.create g) ~schedule ~source ()).Sssp.dist
  in
  Array.for_all
    (fun batch ->
      let graph = Delta.apply !old_graph batch in
      let handle = Handle.create graph in
      let inc =
        Sssp.run_incremental ~pool ~old_graph:!old_graph ~graph ~handle ~schedule
          ~source ~batch ~prev:!prev ()
      in
      let scratch =
        (Sssp.run ~pool ~graph ~handle ~schedule ~source ()).Sssp.dist
      in
      let equal = inc.Sssp.result.Sssp.dist = scratch in
      old_graph := graph;
      prev := scratch;
      equal)
    batches

let qcheck_incremental ~traversal ~workers =
  let name =
    Printf.sprintf "incremental sssp exact (%s, %d workers)"
      (match traversal with
      | Schedule.Sparse_push -> "push"
      | Schedule.Dense_pull -> "pull"
      | Schedule.Hybrid -> "hybrid")
      workers
  in
  let strategies =
    (* Dense pull and hybrid admit only lazy bucket updates. *)
    match traversal with
    | Schedule.Sparse_push -> [ Schedule.Eager_with_fusion; Schedule.Lazy ]
    | Schedule.Dense_pull | Schedule.Hybrid -> [ Schedule.Lazy ]
  in
  QCheck.Test.make ~name ~count:8 QCheck.(int_bound 10_000) (fun seed ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          List.for_all
            (fun strategy ->
              incremental_matches_scratch ~pool
                ~schedule:(Testlib.schedule ~strategy ~traversal ())
                seed)
            strategies))

(* Forcing the threshold to 0 must take the full-recompute fallback and
   still be exact. *)
let test_incremental_fallback () =
  Pool.with_pool ~num_workers:2 (fun pool ->
      let g = Testlib.random_weighted_graph 3 ~n:80 ~m:300 ~max_w:5 in
      let batch = [| Delta.Insert { src = 0; dst = 79; weight = 1 } |] in
      let g' = Delta.apply g batch in
      let schedule = { (Testlib.schedule ()) with Schedule.incremental_threshold = 0.0 } in
      let prev = (Sssp.run ~pool ~graph:g ~schedule ~source:0 ()).Sssp.dist in
      let inc =
        Sssp.run_incremental ~pool ~old_graph:g ~graph:g' ~schedule ~source:0
          ~batch ~prev ()
      in
      Alcotest.(check bool) "fell back" true inc.Sssp.fell_back;
      let scratch = (Sssp.run ~pool ~graph:g' ~schedule ~source:0 ()).Sssp.dist in
      dist_equal "fallback exact" scratch inc.Sssp.result.Sssp.dist)

(* ---------------- per-version caches: push vs pull ---------------- *)

(* The regression the version keying exists for: warm every derived
   cache of version 0 (transpose, degree memo), mutate, then check the
   pull/hybrid runs on version 1 agree with push — a stale transpose or
   degree array would make them diverge. *)
let test_mutate_then_push_vs_pull () =
  Pool.with_pool ~num_workers:2 (fun pool ->
      let g = Testlib.random_weighted_graph 7 ~n:120 ~m:700 ~max_w:6 in
      let v = Versioned.create g in
      let h0 = Versioned.latest v in
      (* Warm v0's caches the way a serving process would. *)
      ignore (Handle.transpose_csr h0);
      ignore (Csr.out_degrees_cached (Handle.csr h0));
      ignore
        (Versioned.commit v
           [|
             Delta.Insert { src = 0; dst = 119; weight = 1 };
             Delta.Delete { src = 0; dst = 1 };
             Delta.Insert { src = 5; dst = 0; weight = 2 };
           |]);
      let h1 = Versioned.latest v in
      let run traversal =
        (* Lazy strategy: the only one pull and hybrid admit. *)
        (Sssp.run ~pool ~graph:(Handle.csr h1) ~handle:h1
           ~schedule:(Testlib.schedule ~strategy:Schedule.Lazy ~traversal ())
           ~source:0 ())
          .Sssp.dist
      in
      let push = run Schedule.Sparse_push in
      (match Oracle.default.Oracle.sssp (Handle.csr h1) ~source:0 push with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("push vs oracle: " ^ e));
      dist_equal "pull = push after mutation" push (run Schedule.Dense_pull);
      dist_equal "hybrid = push after mutation" push (run Schedule.Hybrid))

(* ---------------- service: mutate / versions / cancel ---------------- *)

let req ?deadline_ms id op = { Protocol.id; op; deadline_ms }

let run_queries core reqs =
  let replies = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Service.Core.submit core r ~reply:(fun resp ->
          Hashtbl.replace replies r.Protocol.id resp))
    reqs;
  let drained = ref 1 in
  while !drained > 0 do
    drained := Service.Core.process_pending core ~max_wait_s:0.
  done;
  List.map
    (fun r ->
      match Hashtbl.find_opt replies r.Protocol.id with
      | Some resp -> resp
      | None -> Alcotest.fail (Printf.sprintf "no reply for id %d" r.Protocol.id))
    reqs

let mk_core ~pool ?(landmarks = 2) ?(compact_ops = 4096) csr =
  Service.Core.create ~pool ~handle:(Handle.create csr)
    ~config:
      {
        Service.Config.default with
        Service.Config.landmarks;
        schedule = Testlib.schedule ();
        compact_ops;
      }
    ()

let distance_of resp =
  match resp.Protocol.result with
  | Some j -> (
      match Json.member "distance" j with
      | Some (Json.Int d) -> Some d
      | Some Json.Null -> None
      | _ -> Alcotest.fail "malformed distance payload")
  | None -> Alcotest.fail "no result payload"

let meta_version resp =
  match resp.Protocol.meta with
  | Some m -> m.Protocol.version
  | None -> Alcotest.fail "no meta"

let test_service_mutate () =
  Pool.with_pool ~num_workers:2 (fun pool ->
      (* 0 -> 1 -> 2 -> 3, so d(0,3) = 30; the mutation adds a shortcut
         and deletes the first hop. *)
      let g = csr_of ~n:4 [ (0, 1, 10); (1, 2, 10); (2, 3, 10) ] in
      let core = mk_core ~pool g in
      ignore (Service.Core.warm_alt core);
      let before = run_queries core [ req 1 (Protocol.Ppsp { source = 0; target = 3 }) ] in
      Alcotest.(check (option int)) "pre-mutation distance" (Some 30)
        (distance_of (List.hd before));
      Alcotest.(check (option int)) "pre-mutation version" (Some 0)
        (meta_version (List.hd before));
      let batch =
        [|
          Delta.Insert { src = 0; dst = 2; weight = 3 };
          Delta.Reweight { src = 2; dst = 3; weight = 4 };
        |]
      in
      let replies =
        run_queries core
          [
            req 2 (Protocol.Mutate { ops = batch });
            req 3 (Protocol.Ppsp { source = 0; target = 3 });
            req 4 (Protocol.Astar { source = 0; target = 3 });
            req 5 (Protocol.Widest { source = 0; target = 3 });
          ]
      in
      (match replies with
      | [ m; p; a; w ] ->
          Alcotest.(check bool) "mutate ok" true (m.Protocol.status = Protocol.Ok);
          (match m.Protocol.result with
          | Some j -> (
              match (Json.member "version" j, Json.member "applied" j) with
              | Some (Json.Int 1), Some (Json.Int 2) -> ()
              | _ -> Alcotest.fail "mutate payload")
          | None -> Alcotest.fail "mutate payload missing");
          Alcotest.(check (option int)) "post-mutation ppsp" (Some 7) (distance_of p);
          Alcotest.(check (option int)) "ppsp ran at version 1" (Some 1)
            (meta_version p);
          (* The incremental ALT refresh kept A* admissible: it must
             agree with ppsp on the mutated graph. *)
          Alcotest.(check (option int)) "astar = ppsp after refresh" (Some 7)
            (distance_of a);
          Alcotest.(check bool) "widest answered" true
            (w.Protocol.status = Protocol.Ok)
      | _ -> Alcotest.fail "reply count");
      Alcotest.(check int) "core version" 1 (Service.Core.version core);
      Service.Core.drain_shutdown core)

let test_service_mutate_invalid () =
  Pool.with_pool ~num_workers:1 (fun pool ->
      let g = csr_of ~n:2 [ (0, 1, 1) ] in
      let core = mk_core ~pool g in
      let replies =
        run_queries core
          [ req 1 (Protocol.Mutate { ops = [| Delta.Delete { src = 0; dst = 9 } |] }) ]
      in
      Alcotest.(check bool) "rejected as error" true
        ((List.hd replies).Protocol.status = Protocol.Error);
      Alcotest.(check int) "no version minted" 0 (Service.Core.version core);
      Service.Core.drain_shutdown core)

let test_service_kcore_cache_by_version () =
  Pool.with_pool ~num_workers:2 (fun pool ->
      (* A triangle has coreness 2 everywhere; cutting it open drops to 1. *)
      let g = csr_of ~n:3 [ (0, 1, 1); (1, 0, 1); (1, 2, 1); (2, 1, 1); (2, 0, 1); (0, 2, 1) ] in
      let core = mk_core ~pool ~landmarks:0 g in
      let k1 = run_queries core [ req 1 (Protocol.Kcore { vertex = 0 }) ] in
      let coreness_of resp =
        match resp.Protocol.result with
        | Some j -> (
            match Json.member "coreness" j with
            | Some (Json.Int k) -> k
            | _ -> Alcotest.fail "no coreness")
        | None -> Alcotest.fail "no result"
      in
      Alcotest.(check int) "triangle coreness" 2 (coreness_of (List.hd k1));
      let batch =
        [| Delta.Delete { src = 2; dst = 0 }; Delta.Delete { src = 0; dst = 2 } |]
      in
      let replies =
        run_queries core
          [ req 2 (Protocol.Mutate { ops = batch }); req 3 (Protocol.Kcore { vertex = 0 }) ]
      in
      (* A stale (version-0) decomposition would still answer 2. *)
      Alcotest.(check int) "post-cut coreness" 1 (coreness_of (List.nth replies 1));
      Service.Core.drain_shutdown core)

let test_service_cancel () =
  Pool.with_pool ~num_workers:1 (fun pool ->
      let g = Testlib.random_weighted_graph 19 ~n:200 ~m:900 ~max_w:6 in
      let core = mk_core ~pool ~landmarks:0 g in
      let replies = Hashtbl.create 4 in
      let submit r =
        Service.Core.submit core r ~reply:(fun resp ->
            Hashtbl.replace replies r.Protocol.id resp)
      in
      (* The cancel arrives while its target is still queued: the target
         must resolve with status cancelled, the unrelated query with ok. *)
      submit (req 1 (Protocol.Ppsp { source = 0; target = 9 }));
      submit (req 2 (Protocol.Ppsp { source = 1; target = 9 }));
      submit (req 10 (Protocol.Cancel { query = 1 }));
      let drained = ref 1 in
      while !drained > 0 do
        drained := Service.Core.process_pending core ~max_wait_s:0.
      done;
      let status id =
        match Hashtbl.find_opt replies id with
        | Some r -> r.Protocol.status
        | None -> Alcotest.fail (Printf.sprintf "no reply %d" id)
      in
      Alcotest.(check bool) "cancel acked ok" true (status 10 = Protocol.Ok);
      Alcotest.(check bool) "target cancelled" true (status 1 = Protocol.Cancelled);
      Alcotest.(check bool) "bystander unaffected" true (status 2 = Protocol.Ok);
      (* A cancel for an id that is not in flight is acknowledged and
         harmless. *)
      submit (req 11 (Protocol.Cancel { query = 999 }));
      Alcotest.(check bool) "dangling cancel acked" true (status 11 = Protocol.Ok);
      Service.Core.drain_shutdown core)

let test_service_compaction () =
  Pool.with_pool ~num_workers:1 (fun pool ->
      let g = csr_of ~n:4 [ (0, 1, 2); (1, 2, 2); (2, 3, 2) ] in
      let core = mk_core ~pool ~landmarks:0 ~compact_ops:2 g in
      let mutate i =
        req i
          (Protocol.Mutate
             { ops = [| Delta.Reweight { src = 0; dst = 1; weight = 1 + (i mod 5) } |] })
      in
      let replies =
        run_queries core
          [ mutate 1; mutate 2; mutate 3; req 4 (Protocol.Ppsp { source = 0; target = 3 }) ]
      in
      List.iter
        (fun r ->
          Alcotest.(check bool) "reply ok" true (r.Protocol.status = Protocol.Ok))
        replies;
      (* drain_shutdown joins the compactor; afterwards at least one
         compaction must have completed and queries still answer. *)
      Service.Core.drain_shutdown core;
      Alcotest.(check bool) "compacted" true
        (Versioned.compactions (Service.Core.versioned core) >= 1))

(* ---------------- wire round-trips for the new ops ---------------- *)

let test_protocol_mutate_roundtrip () =
  let batch =
    [|
      Delta.Insert { src = 1; dst = 2; weight = 3 };
      Delta.Delete { src = 0; dst = 2 };
      Delta.Reweight { src = 2; dst = 0; weight = 8 };
    |]
  in
  let line = Json.to_string (Protocol.request_to_json (req 7 (Protocol.Mutate { ops = batch }))) in
  (match Protocol.parse_request line with
  | Ok { op = Protocol.Mutate { ops }; id = 7; _ } ->
      Alcotest.(check string) "ops round-trip" (Delta.to_string batch)
        (Delta.to_string ops)
  | _ -> Alcotest.fail ("mutate round-trip: " ^ line));
  let cancel_line =
    Json.to_string (Protocol.request_to_json (req 8 (Protocol.Cancel { query = 3 })))
  in
  (match Protocol.parse_request cancel_line with
  | Ok { op = Protocol.Cancel { query = 3 }; id = 8; _ } -> ()
  | _ -> Alcotest.fail ("cancel round-trip: " ^ cancel_line));
  (* A cancelled response's status survives the wire, and meta.version
     parses leniently in both directions. *)
  let resp =
    Protocol.cancelled
      ~meta:
        {
          Protocol.batch_width = 1;
          rounds = 2;
          wall_ms = 0.5;
          alt_assisted = false;
          version = Some 4;
        }
      ~id:9 Json.Null
  in
  match Protocol.response_of_json (Protocol.response_to_json resp) with
  | Ok r ->
      Alcotest.(check bool) "status cancelled" true (r.Protocol.status = Protocol.Cancelled);
      Alcotest.(check (option int)) "meta version" (Some 4) (meta_version r)
  | Error e -> Alcotest.fail e

(* ---------------- driver ---------------- *)

let () =
  Alcotest.run "dynamic"
    [
      ( "delta",
        [
          Alcotest.test_case "apply semantics" `Quick test_delta_apply;
          Alcotest.test_case "validate" `Quick test_delta_validate;
        ] );
      ( "versioned",
        [
          Alcotest.test_case "commit and pin" `Quick test_versioned_commit_pin;
          Alcotest.test_case "compaction" `Quick test_versioned_compact;
          Alcotest.test_case "snapshot isolation mid-flight" `Quick
            test_snapshot_isolation_mid_flight;
        ] );
      ( "incremental",
        [
          QCheck_alcotest.to_alcotest (qcheck_incremental ~traversal:Schedule.Sparse_push ~workers:1);
          QCheck_alcotest.to_alcotest (qcheck_incremental ~traversal:Schedule.Dense_pull ~workers:2);
          QCheck_alcotest.to_alcotest (qcheck_incremental ~traversal:Schedule.Hybrid ~workers:4);
          Alcotest.test_case "threshold 0 falls back" `Quick test_incremental_fallback;
        ] );
      ( "caches",
        [
          Alcotest.test_case "mutate then push vs pull" `Quick
            test_mutate_then_push_vs_pull;
        ] );
      ( "service",
        [
          Alcotest.test_case "mutate commits and queries move" `Quick
            test_service_mutate;
          Alcotest.test_case "invalid mutate rejected" `Quick
            test_service_mutate_invalid;
          Alcotest.test_case "kcore cache keyed by version" `Quick
            test_service_kcore_cache_by_version;
          Alcotest.test_case "cancel resolves queued target" `Quick
            test_service_cancel;
          Alcotest.test_case "background compaction" `Quick test_service_compaction;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "mutate/cancel round-trip" `Quick
            test_protocol_mutate_roundtrip;
        ] );
    ]
