(* Correctness of the ordered runtime and all six applications, checked
   against sequential oracles across every schedule and several worker
   counts. Coarsening and bucket strategies may change the work performed,
   never the results. *)

module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Edge_list = Graphs.Edge_list
module Generators = Graphs.Generators
module Rng = Support.Rng
module Schedule = Ordered.Schedule
module Bucket_order = Bucketing.Bucket_order

let schedule = Testlib.schedule
let all_strategies = Testlib.all_strategies
let random_weighted_graph = Testlib.random_weighted_graph

(* ---------------- schedule validation ---------------- *)

let test_schedule_validation () =
  let check_err msg s =
    match Schedule.validate s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail msg
  in
  check_err "delta 0 rejected" (schedule ~delta:0 ());
  check_err "pull+eager rejected"
    (schedule ~strategy:Schedule.Eager_with_fusion ~traversal:Schedule.Dense_pull ());
  (match Schedule.validate (schedule ~strategy:Schedule.Lazy ~traversal:Schedule.Dense_pull ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("pull+lazy should be valid: " ^ e));
  Alcotest.(check string) "strategy roundtrip" "eager_with_fusion"
    (Schedule.strategy_to_string Schedule.Eager_with_fusion);
  (match Schedule.strategy_of_string "lazy_constant_sum" with
  | Ok Schedule.Lazy_constant_sum -> ()
  | _ -> Alcotest.fail "parse lazy_constant_sum");
  (match Schedule.traversal_of_string "DensePull" with
  | Ok Schedule.Dense_pull -> ()
  | _ -> Alcotest.fail "parse DensePull")

let test_engine_requires_transpose_for_pull () =
  let g = random_weighted_graph 1 ~n:20 ~m:60 ~max_w:5 in
  Pool.with_pool ~num_workers:1 (fun pool ->
      Alcotest.check_raises "missing transpose"
        (Invalid_argument "Engine.run: DensePull traversal requires ~transpose")
        (fun () ->
          ignore
            (Algorithms.Sssp_delta.run ~pool ~graph:g
               ~schedule:(schedule ~strategy:Schedule.Lazy ~traversal:Schedule.Dense_pull ())
               ~source:0 ())))

(* ---------------- SSSP ---------------- *)

let check_sssp_matches graph source sched pool label =
  let expected = Algorithms.Dijkstra.distances graph ~source in
  let { Algorithms.Sssp_delta.dist; _ } =
    Algorithms.Sssp_delta.run ~pool ~graph ~schedule:sched ~source ()
  in
  Alcotest.(check (array int)) label expected dist

let test_sssp_fixed_graph () =
  (* Hand-checkable diamond with a long detour. *)
  let el =
    Edge_list.create ~num_vertices:6
      [|
        { src = 0; dst = 1; weight = 7 };
        { src = 0; dst = 2; weight = 2 };
        { src = 2; dst = 1; weight = 3 };
        { src = 1; dst = 3; weight = 1 };
        { src = 2; dst = 3; weight = 8 };
        { src = 3; dst = 4; weight = 2 };
      |]
  in
  let g = Csr.of_edge_list el in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let { Algorithms.Sssp_delta.dist; _ } =
        Algorithms.Sssp_delta.run ~pool ~graph:g ~schedule:(schedule ~delta:2 ())
          ~source:0 ()
      in
      Alcotest.(check (array int))
        "distances (vertex 5 unreachable)"
        [| 0; 5; 2; 6; 8; Bucket_order.null_priority |]
        dist)

let test_sssp_all_strategies_all_workers () =
  let g = random_weighted_graph 7 ~n:200 ~m:1200 ~max_w:20 in
  List.iter
    (fun workers ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          List.iter
            (fun strategy ->
              List.iter
                (fun delta ->
                  check_sssp_matches g 0
                    (schedule ~strategy ~delta ())
                    pool
                    (Printf.sprintf "strategy=%s delta=%d workers=%d"
                       (Schedule.strategy_to_string strategy)
                       delta workers))
                [ 1; 3; 16 ])
            all_strategies))
    [ 1; 2; 4 ]

let test_sssp_dense_pull () =
  let g = random_weighted_graph 8 ~n:100 ~m:800 ~max_w:10 in
  let t = Csr.transpose g in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let { Algorithms.Sssp_delta.dist; _ } =
        Algorithms.Sssp_delta.run ~pool ~graph:g ~transpose:t
          ~schedule:(schedule ~strategy:Schedule.Lazy ~traversal:Schedule.Dense_pull ~delta:4 ())
          ~source:0 ()
      in
      Alcotest.(check (array int)) "DensePull matches Dijkstra" expected dist)

let test_sssp_hybrid_direction () =
  (* Hybrid traversal: dense-ish graph so some rounds pull, some push. *)
  let g = random_weighted_graph 9 ~n:80 ~m:2400 ~max_w:10 in
  let t = Csr.transpose g in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let { Algorithms.Sssp_delta.dist; stats } =
        Algorithms.Sssp_delta.run ~pool ~graph:g ~transpose:t
          ~schedule:
            (schedule ~strategy:Schedule.Lazy ~traversal:Schedule.Hybrid ~delta:8 ())
          ~source:0 ()
      in
      Alcotest.(check (array int)) "hybrid matches Dijkstra" expected dist;
      Alcotest.(check bool)
        (Printf.sprintf "some rounds pulled (%d/%d)" stats.Ordered.Stats.pull_rounds
           stats.Ordered.Stats.rounds)
        true
        (stats.Ordered.Stats.pull_rounds > 0
        && stats.Ordered.Stats.pull_rounds < stats.Ordered.Stats.rounds))

let test_hybrid_requires_lazy () =
  match
    Schedule.validate
      (schedule ~strategy:Schedule.Eager_with_fusion ~traversal:Schedule.Hybrid ())
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hybrid must require a lazy strategy"

let test_sssp_road_like () =
  let rng = Rng.create 21 in
  let el, _coords = Generators.road_grid ~rng ~rows:15 ~cols:20 () in
  let g = Csr.of_edge_list el in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  Pool.with_pool ~num_workers:4 (fun pool ->
      List.iter
        (fun strategy ->
          let { Algorithms.Sssp_delta.dist; _ } =
            Algorithms.Sssp_delta.run ~pool ~graph:g
              ~schedule:(schedule ~strategy ~delta:512 ())
              ~source:0 ()
          in
          Alcotest.(check (array int))
            ("road " ^ Schedule.strategy_to_string strategy)
            expected dist)
        all_strategies)

let qcheck_sssp_matches_dijkstra =
  QCheck.Test.make ~name:"sssp = dijkstra on random graphs/schedules" ~count:60
    QCheck.(
      quad (int_range 2 80) (int_bound 400) (int_range 1 20) (int_range 0 2))
    (fun (n, m, delta, strat_idx) ->
      let g = random_weighted_graph (n + (m * 131) + delta) ~n ~m ~max_w:30 in
      let strategy = List.nth all_strategies strat_idx in
      let expected = Algorithms.Dijkstra.distances g ~source:0 in
      Pool.with_pool ~num_workers:2 (fun pool ->
          let { Algorithms.Sssp_delta.dist; _ } =
            Algorithms.Sssp_delta.run ~pool ~graph:g ~schedule:(schedule ~strategy ~delta ())
              ~source:0 ()
          in
          dist = expected))

(* ---------------- bucket fusion statistics ---------------- *)

let test_fusion_reduces_rounds () =
  (* A long path is the extreme road network: without fusion every vertex is
     its own round; with fusion a worker chews through its local bucket. *)
  let g = Csr.of_edge_list (Generators.path 2000) in
  Pool.with_pool ~num_workers:2 (fun pool ->
      (* delta = 32: each bucket holds a 32-vertex chain that refills the
         current bucket 32 times; fusion collapses those rounds into one. *)
      let with_fusion =
        Algorithms.Sssp_delta.run ~pool ~graph:g
          ~schedule:(schedule ~strategy:Schedule.Eager_with_fusion ~delta:32 ())
          ~source:0 ()
      in
      let without_fusion =
        Algorithms.Sssp_delta.run ~pool ~graph:g
          ~schedule:(schedule ~strategy:Schedule.Eager_no_fusion ~delta:32 ())
          ~source:0 ()
      in
      Alcotest.(check (array int))
        "same distances" without_fusion.dist with_fusion.dist;
      let rf = with_fusion.stats.Ordered.Stats.rounds in
      let rn = without_fusion.stats.Ordered.Stats.rounds in
      Alcotest.(check bool)
        (Printf.sprintf "fusion cuts rounds (%d vs %d)" rf rn)
        true
        (rf * 10 < rn);
      Alcotest.(check bool) "fused drains recorded" true
        (with_fusion.stats.Ordered.Stats.fused_drains > 0);
      Alcotest.(check int) "no fused drains without fusion" 0
        without_fusion.stats.Ordered.Stats.fused_drains)

let test_fusion_threshold_respected () =
  let g = Csr.of_edge_list (Generators.path 500) in
  Pool.with_pool ~num_workers:1 (fun pool ->
      (* threshold 1: local buckets of size 1 may still fuse, so the path
         should fuse fully anyway (each round produces one vertex). *)
      let r =
        Algorithms.Sssp_delta.run ~pool ~graph:g
          ~schedule:(schedule ~strategy:Schedule.Eager_with_fusion ~fusion_threshold:1 ())
          ~source:0 ()
      in
      Alcotest.(check bool) "still correct" true (r.dist.(499) = 499))

let test_trace_records_rounds () =
  let g = random_weighted_graph 10 ~n:120 ~m:700 ~max_w:20 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let trace = Ordered.Trace.create () in
      let { Algorithms.Sssp_delta.stats; _ } =
        Algorithms.Sssp_delta.run ~pool ~graph:g ~schedule:(schedule ~delta:8 ())
          ~source:0 ~trace ()
      in
      Alcotest.(check int) "one entry per round" stats.Ordered.Stats.rounds
        (Ordered.Trace.length trace);
      let rounds = Ordered.Trace.rounds trace in
      let keys = List.map (fun r -> r.Ordered.Trace.bucket_key) rounds in
      Alcotest.(check bool) "bucket keys nondecreasing" true
        (List.sort compare keys = keys);
      Alcotest.(check bool) "frontiers non-empty" true
        (List.for_all (fun r -> r.Ordered.Trace.frontier_size > 0) rounds);
      Alcotest.(check int) "fused drains consistent" stats.Ordered.Stats.fused_drains
        (List.fold_left (fun acc r -> acc + r.Ordered.Trace.fused_drains) 0 rounds);
      (* The table printer elides long traces without crashing. *)
      let rendered = Format.asprintf "%a" (Ordered.Trace.pp ~max_rounds:4) trace in
      Alcotest.(check bool) "printer emits rows" true (String.length rendered > 0))

let test_stats_sanity () =
  let g = random_weighted_graph 3 ~n:100 ~m:500 ~max_w:10 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let { Algorithms.Sssp_delta.stats; _ } =
        Algorithms.Sssp_delta.run ~pool ~graph:g ~schedule:(schedule ~delta:4 ()) ~source:0 ()
      in
      let open Ordered.Stats in
      Alcotest.(check bool) "rounds > 0" true (stats.rounds > 0);
      Alcotest.(check bool) "vertices processed >= reachable" true
        (stats.vertices_processed > 0);
      Alcotest.(check bool) "edges relaxed > 0" true (stats.edges_relaxed > 0);
      Alcotest.(check bool) "inserts > 0" true (stats.bucket_inserts > 0);
      Alcotest.(check bool) "buckets <= rounds" true
        (stats.buckets_processed <= stats.rounds))

(* ---------------- wBFS / PPSP / A* ---------------- *)

let test_wbfs_matches_dijkstra () =
  let rng = Rng.create 12 in
  let el = Generators.erdos_renyi ~rng ~num_vertices:150 ~num_edges:900 () in
  let g = Csr.of_edge_list (Generators.wbfs_weights ~rng el) in
  let expected = Algorithms.Dijkstra.distances g ~source:3 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      List.iter
        (fun strategy ->
          let { Algorithms.Sssp_delta.dist; _ } =
            (* wBFS ignores the schedule's delta. *)
            Algorithms.Wbfs.run ~pool ~graph:g ~schedule:(schedule ~strategy ~delta:999 ())
              ~source:3 ()
          in
          Alcotest.(check (array int))
            ("wbfs " ^ Schedule.strategy_to_string strategy)
            expected dist)
        all_strategies)

let test_ppsp_matches_and_stops_early () =
  let g = random_weighted_graph 31 ~n:300 ~m:1500 ~max_w:50 in
  let full = Algorithms.Dijkstra.distances g ~source:0 in
  (* Pick a reachable, close-ish target. *)
  let target =
    let best = ref (-1) in
    Array.iteri
      (fun v d -> if v <> 0 && d <> Bucket_order.null_priority && !best = -1 then best := v)
      full;
    !best
  in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let sssp =
        Algorithms.Sssp_delta.run ~pool ~graph:g ~schedule:(schedule ~delta:8 ()) ~source:0 ()
      in
      let ppsp =
        Algorithms.Ppsp.run ~pool ~graph:g ~schedule:(schedule ~delta:8 ()) ~source:0
          ~target ()
      in
      Alcotest.(check int) "ppsp distance exact" full.(target) ppsp.distance;
      Alcotest.(check bool) "ppsp does no more rounds than sssp" true
        (ppsp.stats.Ordered.Stats.rounds <= sssp.stats.Ordered.Stats.rounds))

let qcheck_ppsp_equals_sssp_at_target =
  QCheck.Test.make ~name:"ppsp = sssp at the target (early exit is sound)" ~count:40
    QCheck.(
      quad (int_range 2 70) (int_bound 350) (int_range 1 16) (int_range 0 2))
    (fun (n, m, delta, strat_idx) ->
      let g = random_weighted_graph (n + (m * 61) + delta) ~n ~m ~max_w:25 in
      let strategy = List.nth all_strategies strat_idx in
      let target = n - 1 in
      Pool.with_pool ~num_workers:2 (fun pool ->
          let sssp =
            Algorithms.Sssp_delta.run ~pool ~graph:g ~schedule:(schedule ~strategy ~delta ())
              ~source:0 ()
          in
          let ppsp =
            Algorithms.Ppsp.run ~pool ~graph:g ~schedule:(schedule ~strategy ~delta ())
              ~source:0 ~target ()
          in
          ppsp.distance = sssp.dist.(target)))

let test_ppsp_unreachable () =
  (* Two disconnected components. *)
  let el =
    Edge_list.create ~num_vertices:4
      [| { src = 0; dst = 1; weight = 1 }; { src = 2; dst = 3; weight = 1 } |]
  in
  let g = Csr.of_edge_list el in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let r = Algorithms.Ppsp.run ~pool ~graph:g ~schedule:(schedule ()) ~source:0 ~target:3 () in
      Alcotest.(check int) "unreachable" Bucket_order.null_priority r.distance)

let test_astar_matches_dijkstra () =
  let rng = Rng.create 17 in
  let el, coords = Generators.road_grid ~rng ~rows:12 ~cols:18 () in
  let g = Csr.of_edge_list el in
  let source = 0 and target = (12 * 18) - 1 in
  let expected = Algorithms.Dijkstra.distance_to g ~source ~target in
  Pool.with_pool ~num_workers:2 (fun pool ->
      List.iter
        (fun strategy ->
          let r =
            Algorithms.Astar.run ~pool ~graph:g ~coords
              ~schedule:(schedule ~strategy ~delta:256 ())
              ~source ~target ()
          in
          Alcotest.(check int)
            ("astar exact " ^ Schedule.strategy_to_string strategy)
            expected r.distance)
        all_strategies)

let test_astar_explores_less_than_sssp () =
  let rng = Rng.create 18 in
  let el, coords = Generators.road_grid ~rng ~rows:25 ~cols:25 () in
  let g = Csr.of_edge_list el in
  (* Source and target adjacent corners: the heuristic should prune most of
     the grid compared with plain Δ-stepping run to completion. *)
  let source = 0 and target = 24 in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let sssp =
        Algorithms.Sssp_delta.run ~pool ~graph:g ~schedule:(schedule ~delta:512 ()) ~source ()
      in
      let astar =
        Algorithms.Astar.run ~pool ~graph:g ~coords ~schedule:(schedule ~delta:512 ())
          ~source ~target ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "astar touches fewer edges (%d vs %d)"
           astar.stats.Ordered.Stats.edges_relaxed sssp.stats.Ordered.Stats.edges_relaxed)
        true
        (astar.stats.Ordered.Stats.edges_relaxed < sssp.stats.Ordered.Stats.edges_relaxed))

(* ---------------- Bellman-Ford ---------------- *)

let test_bellman_ford_matches () =
  let g = random_weighted_graph 40 ~n:150 ~m:700 ~max_w:30 in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  List.iter
    (fun workers ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          let r = Algorithms.Bellman_ford.run ~pool ~graph:g ~source:0 () in
          Alcotest.(check (array int))
            (Printf.sprintf "bellman-ford workers=%d" workers)
            expected r.dist))
    [ 1; 4 ]

(* ---------------- k-core ---------------- *)

(* Naive quadratic peeling oracle: repeatedly remove a minimum-degree
   vertex; coreness is the running maximum of peel degrees. *)
let naive_coreness_running_max = Testlib.naive_coreness_running_max
let symmetric_random = Testlib.symmetric_random
let kcore_strategies = Testlib.kcore_strategies

let test_kcore_oracles_agree () =
  let g = symmetric_random 51 ~n:60 ~m:300 in
  Alcotest.(check (array int))
    "Matula-Beck = naive"
    (naive_coreness_running_max g)
    (Algorithms.Kcore_peel_seq.coreness g)

let test_kcore_all_strategies () =
  let g = symmetric_random 52 ~n:120 ~m:800 in
  let expected = Algorithms.Kcore_peel_seq.coreness g in
  List.iter
    (fun workers ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          List.iter
            (fun strategy ->
              let r =
                Algorithms.Kcore.run ~pool ~graph:g ~schedule:(schedule ~strategy ()) ()
              in
              Alcotest.(check (array int))
                (Printf.sprintf "kcore %s workers=%d"
                   (Schedule.strategy_to_string strategy)
                   workers)
                expected r.coreness)
            kcore_strategies))
    [ 1; 2; 4 ]

let test_kcore_ignores_coarsening () =
  (* k-core must run with delta = 1 even if the schedule requests more. *)
  let g = symmetric_random 53 ~n:80 ~m:400 in
  let expected = Algorithms.Kcore_peel_seq.coreness g in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let r = Algorithms.Kcore.run ~pool ~graph:g ~schedule:(schedule ~delta:64 ()) () in
      Alcotest.(check (array int)) "coarsening disabled" expected r.coreness)

let test_kcore_tiny_window_regression () =
  (* Regression for the stale-overflow re-materialization bug: a window far
     smaller than the degree range forces vertices through the overflow
     bucket repeatedly; stale copies must never be re-peeled. *)
  let g = symmetric_random 55 ~n:150 ~m:2000 in
  let expected = Algorithms.Kcore_peel_seq.coreness g in
  Pool.with_pool ~num_workers:2 (fun pool ->
      List.iter
        (fun strategy ->
          let sched =
            { (schedule ~strategy ()) with Schedule.num_open_buckets = 2 }
          in
          let r = Algorithms.Kcore.run ~pool ~graph:g ~schedule:sched () in
          Alcotest.(check (array int))
            ("tiny window " ^ Schedule.strategy_to_string strategy)
            expected r.coreness)
        [ Schedule.Lazy; Schedule.Lazy_constant_sum ])

let test_kcore_unordered_matches () =
  let g = symmetric_random 54 ~n:100 ~m:600 in
  let expected = Algorithms.Kcore_peel_seq.coreness g in
  List.iter
    (fun workers ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          let r = Algorithms.Kcore_unordered.run ~pool ~graph:g () in
          Alcotest.(check (array int))
            (Printf.sprintf "h-index fixpoint workers=%d" workers)
            expected r.coreness;
          Alcotest.(check bool) "iterated" true (r.iterations >= 1)))
    [ 1; 4 ]

let qcheck_kcore_matches_oracle =
  QCheck.Test.make ~name:"kcore = sequential peeling on random graphs" ~count:40
    QCheck.(triple (int_range 2 50) (int_bound 250) (int_range 0 3))
    (fun (n, m, strat_idx) ->
      let g = symmetric_random (n + (m * 37)) ~n ~m in
      let strategy = List.nth kcore_strategies strat_idx in
      let expected = Algorithms.Kcore_peel_seq.coreness g in
      Pool.with_pool ~num_workers:2 (fun pool ->
          let r = Algorithms.Kcore.run ~pool ~graph:g ~schedule:(schedule ~strategy ()) () in
          r.coreness = expected))

(* ---------------- weighted core (variable-diff updatePrioritySum) ------ *)

let symmetric_weighted = Testlib.symmetric_weighted

let test_score_unit_weights_equal_kcore () =
  (* With unit weights, s-core degenerates to k-core. *)
  let rng = Rng.create 81 in
  let el = Generators.erdos_renyi ~rng ~num_vertices:90 ~num_edges:500 () in
  let g = Csr.of_edge_list (Edge_list.symmetrized el) in
  let expected = Algorithms.Kcore_peel_seq.coreness g in
  Alcotest.(check (array int)) "sequential s-core = k-core" expected
    (Algorithms.Score.sequential g);
  Pool.with_pool ~num_workers:2 (fun pool ->
      let r = Algorithms.Score.run ~pool ~graph:g ~schedule:(schedule ()) () in
      Alcotest.(check (array int)) "parallel s-core = k-core" expected r.coreness)

let test_score_all_strategies () =
  let g = symmetric_weighted 82 ~n:100 ~m:600 ~max_w:9 in
  let expected = Algorithms.Score.sequential g in
  List.iter
    (fun workers ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          List.iter
            (fun strategy ->
              let r = Algorithms.Score.run ~pool ~graph:g ~schedule:(schedule ~strategy ()) () in
              Alcotest.(check (array int))
                (Printf.sprintf "s-core %s workers=%d"
                   (Schedule.strategy_to_string strategy)
                   workers)
                expected r.coreness)
            all_strategies))
    [ 1; 4 ]

let test_score_rejects_histogram () =
  let g = symmetric_weighted 83 ~n:20 ~m:60 ~max_w:5 in
  Pool.with_pool ~num_workers:1 (fun pool ->
      match
        Algorithms.Score.run ~pool ~graph:g
          ~schedule:(schedule ~strategy:Schedule.Lazy_constant_sum ())
          ()
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected rejection of the histogram schedule")

let qcheck_score_matches_oracle =
  QCheck.Test.make ~name:"s-core = sequential weighted peeling" ~count:40
    QCheck.(triple (int_range 2 50) (int_bound 250) (int_range 0 2))
    (fun (n, m, strat_idx) ->
      let g = symmetric_weighted (n + (m * 41)) ~n ~m ~max_w:12 in
      let strategy = List.nth all_strategies strat_idx in
      let expected = Algorithms.Score.sequential g in
      Pool.with_pool ~num_workers:2 (fun pool ->
          let r = Algorithms.Score.run ~pool ~graph:g ~schedule:(schedule ~strategy ()) () in
          r.coreness = expected))

(* ---------------- widest path (Higher_first + updatePriorityMax) ------- *)

let test_widest_fixed_graph () =
  (* Two routes 0->3: direct with capacity 2, detour with bottleneck 5. *)
  let el =
    Edge_list.create ~num_vertices:4
      [|
        { src = 0; dst = 3; weight = 2 };
        { src = 0; dst = 1; weight = 9 };
        { src = 1; dst = 2; weight = 5 };
        { src = 2; dst = 3; weight = 7 };
      |]
  in
  let g = Csr.of_edge_list el in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let r = Algorithms.Widest_path.run ~pool ~graph:g ~schedule:(schedule ()) ~source:0 () in
      Alcotest.(check (array int)) "bottleneck capacities" [| 9; 9; 5; 5 |] r.capacity)

let test_widest_all_strategies () =
  let g = random_weighted_graph 71 ~n:150 ~m:900 ~max_w:40 in
  let expected = Algorithms.Widest_path.sequential g ~source:0 in
  List.iter
    (fun workers ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          List.iter
            (fun strategy ->
              List.iter
                (fun delta ->
                  let r =
                    Algorithms.Widest_path.run ~pool ~graph:g
                      ~schedule:(schedule ~strategy ~delta ())
                      ~source:0 ()
                  in
                  Alcotest.(check (array int))
                    (Printf.sprintf "widest %s delta=%d workers=%d"
                       (Schedule.strategy_to_string strategy)
                       delta workers)
                    expected r.capacity)
                [ 1; 4 ])
            all_strategies))
    [ 1; 4 ]

let qcheck_widest_matches_oracle =
  QCheck.Test.make ~name:"widest path = sequential oracle" ~count:50
    QCheck.(triple (int_range 2 60) (int_bound 300) (int_range 1 8))
    (fun (n, m, delta) ->
      let g = random_weighted_graph (n + (m * 53) + delta) ~n ~m ~max_w:25 in
      let expected = Algorithms.Widest_path.sequential g ~source:0 in
      Pool.with_pool ~num_workers:2 (fun pool ->
          let r =
            Algorithms.Widest_path.run ~pool ~graph:g ~schedule:(schedule ~delta ())
              ~source:0 ()
          in
          r.capacity = expected))

(* ---------------- SetCover ---------------- *)

let test_setcover_valid_and_bounded () =
  let g = symmetric_random 61 ~n:150 ~m:900 in
  let greedy = Algorithms.Setcover_greedy.run g in
  Alcotest.(check bool) "greedy valid" true
    (Algorithms.Setcover_greedy.is_valid_cover g greedy);
  List.iter
    (fun strategy ->
      Pool.with_pool ~num_workers:2 (fun pool ->
          let r = Algorithms.Setcover.run ~pool ~graph:g ~schedule:(schedule ~strategy ()) () in
          Alcotest.(check bool)
            ("valid cover " ^ Schedule.strategy_to_string strategy)
            true
            (Algorithms.Setcover.is_valid_cover g r);
          Alcotest.(check bool)
            (Printf.sprintf "size %d within 4x of greedy %d" r.cover_size
               greedy.cover_size)
            true
            (r.cover_size <= 4 * greedy.cover_size)))
    all_strategies

let test_setcover_star () =
  (* The center of a star covers everything: both algorithms find a cover of
     size 1. *)
  let g = Csr.of_edge_list (Edge_list.symmetrized (Generators.star 30)) in
  let greedy = Algorithms.Setcover_greedy.run g in
  Alcotest.(check int) "greedy picks the center" 1 greedy.cover_size;
  Pool.with_pool ~num_workers:1 (fun pool ->
      let r = Algorithms.Setcover.run ~pool ~graph:g ~schedule:(schedule ()) () in
      Alcotest.(check int) "parallel picks the center" 1 r.cover_size;
      Alcotest.(check bool) "center chosen" true r.in_cover.(0))

let test_setcover_weighted () =
  (* The paper's noted generalization: bucket by cost-per-element ratio. *)
  let g = symmetric_random 63 ~n:120 ~m:700 in
  let rng = Rng.create 64 in
  let costs = Array.init 120 (fun _ -> Rng.int_range rng 1 8) in
  let greedy, greedy_cost = Algorithms.Setcover_greedy.run_weighted g ~costs in
  Alcotest.(check bool) "weighted greedy valid" true
    (Algorithms.Setcover_greedy.is_valid_cover g greedy);
  Pool.with_pool ~num_workers:2 (fun pool ->
      let r =
        Algorithms.Setcover.run ~pool ~graph:g ~schedule:(schedule ()) ~costs ()
      in
      Alcotest.(check bool) "weighted cover valid" true
        (Algorithms.Setcover.is_valid_cover g r);
      Alcotest.(check bool)
        (Printf.sprintf "cost %d within 4x of greedy %d" r.cover_cost greedy_cost)
        true
        (r.cover_cost <= 4 * greedy_cost);
      Alcotest.(check bool) "cost >= size (costs >= 1)" true
        (r.cover_cost >= r.cover_size))

let test_setcover_weighted_prefers_cheap () =
  (* A star where the center is exorbitantly priced: the weighted algorithm
     must not buy the center even though it covers everything. *)
  let g = Csr.of_edge_list (Edge_list.symmetrized (Generators.star 20)) in
  let costs = Array.make 20 1 in
  costs.(0) <- 10_000;
  Pool.with_pool ~num_workers:1 (fun pool ->
      let r = Algorithms.Setcover.run ~pool ~graph:g ~schedule:(schedule ()) ~costs () in
      Alcotest.(check bool) "valid" true (Algorithms.Setcover.is_valid_cover g r);
      Alcotest.(check bool) "center avoided" false r.in_cover.(0);
      Alcotest.(check int) "buys the 19 cheap leaves" 19 r.cover_size)

let test_setcover_rejects_bad_costs () =
  let g = symmetric_random 65 ~n:10 ~m:20 in
  Pool.with_pool ~num_workers:1 (fun pool ->
      Alcotest.check_raises "non-positive cost"
        (Invalid_argument "Setcover.run: costs must be positive") (fun () ->
          ignore
            (Algorithms.Setcover.run ~pool ~graph:g ~schedule:(schedule ())
               ~costs:(Array.make 10 0) ())))

let test_setcover_rejects_constant_sum () =
  let g = symmetric_random 62 ~n:10 ~m:20 in
  Pool.with_pool ~num_workers:1 (fun pool ->
      match
        Algorithms.Setcover.run ~pool ~graph:g
          ~schedule:(schedule ~strategy:Schedule.Lazy_constant_sum ())
          ()
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected rejection of lazy_constant_sum")

let qcheck_setcover_valid =
  QCheck.Test.make ~name:"setcover always produces a valid cover" ~count:40
    QCheck.(pair (int_range 2 60) (int_bound 300))
    (fun (n, m) ->
      let g = symmetric_random (n * 7919 + m) ~n ~m in
      Pool.with_pool ~num_workers:2 (fun pool ->
          let r = Algorithms.Setcover.run ~pool ~graph:g ~schedule:(schedule ()) () in
          Algorithms.Setcover.is_valid_cover g r))

let () =
  Alcotest.run "ordered"
    [
      ( "schedule",
        [
          Alcotest.test_case "validation" `Quick test_schedule_validation;
          Alcotest.test_case "pull requires transpose" `Quick
            test_engine_requires_transpose_for_pull;
        ] );
      ( "sssp",
        [
          Alcotest.test_case "fixed graph" `Quick test_sssp_fixed_graph;
          Alcotest.test_case "all strategies x workers" `Slow
            test_sssp_all_strategies_all_workers;
          Alcotest.test_case "dense pull" `Quick test_sssp_dense_pull;
          Alcotest.test_case "hybrid direction" `Quick test_sssp_hybrid_direction;
          Alcotest.test_case "hybrid requires lazy" `Quick test_hybrid_requires_lazy;
          Alcotest.test_case "road-like graph" `Quick test_sssp_road_like;
          QCheck_alcotest.to_alcotest qcheck_sssp_matches_dijkstra;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "reduces rounds" `Quick test_fusion_reduces_rounds;
          Alcotest.test_case "threshold respected" `Quick
            test_fusion_threshold_respected;
          Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
          Alcotest.test_case "trace records rounds" `Quick test_trace_records_rounds;
        ] );
      ( "variants",
        [
          Alcotest.test_case "wbfs" `Quick test_wbfs_matches_dijkstra;
          Alcotest.test_case "ppsp exact + early stop" `Quick
            test_ppsp_matches_and_stops_early;
          Alcotest.test_case "ppsp unreachable" `Quick test_ppsp_unreachable;
          QCheck_alcotest.to_alcotest qcheck_ppsp_equals_sssp_at_target;
          Alcotest.test_case "astar exact" `Quick test_astar_matches_dijkstra;
          Alcotest.test_case "astar prunes" `Quick test_astar_explores_less_than_sssp;
          Alcotest.test_case "bellman-ford" `Quick test_bellman_ford_matches;
        ] );
      ( "kcore",
        [
          Alcotest.test_case "oracles agree" `Quick test_kcore_oracles_agree;
          Alcotest.test_case "all strategies x workers" `Slow
            test_kcore_all_strategies;
          Alcotest.test_case "coarsening disabled" `Quick test_kcore_ignores_coarsening;
          Alcotest.test_case "tiny window (regression)" `Quick
            test_kcore_tiny_window_regression;
          Alcotest.test_case "unordered h-index" `Quick test_kcore_unordered_matches;
          QCheck_alcotest.to_alcotest qcheck_kcore_matches_oracle;
        ] );
      ( "score",
        [
          Alcotest.test_case "unit weights = k-core" `Quick
            test_score_unit_weights_equal_kcore;
          Alcotest.test_case "all strategies" `Quick test_score_all_strategies;
          Alcotest.test_case "rejects histogram" `Quick test_score_rejects_histogram;
          QCheck_alcotest.to_alcotest qcheck_score_matches_oracle;
        ] );
      ( "widest_path",
        [
          Alcotest.test_case "fixed graph" `Quick test_widest_fixed_graph;
          Alcotest.test_case "all strategies" `Quick test_widest_all_strategies;
          QCheck_alcotest.to_alcotest qcheck_widest_matches_oracle;
        ] );
      ( "setcover",
        [
          Alcotest.test_case "valid and bounded" `Quick test_setcover_valid_and_bounded;
          Alcotest.test_case "star" `Quick test_setcover_star;
          Alcotest.test_case "weighted" `Quick test_setcover_weighted;
          Alcotest.test_case "weighted prefers cheap" `Quick
            test_setcover_weighted_prefers_cheap;
          Alcotest.test_case "rejects bad costs" `Quick test_setcover_rejects_bad_costs;
          Alcotest.test_case "rejects constant sum" `Quick
            test_setcover_rejects_constant_sum;
          QCheck_alcotest.to_alcotest qcheck_setcover_valid;
        ] );
    ]
