(* The query service must be boring to its clients: every admitted
   request gets exactly one answer, batched answers match solo oracles,
   deadline misses surface as monotone bounds (never wrong values), the
   ALT heuristic never overestimates, and the documented example
   sessions in docs/SERVICE.md replay verbatim against a real server
   core. *)

module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Edge_list = Graphs.Edge_list
module Handle = Graphs.Handle
module Json = Support.Json
module Protocol = Service.Protocol
module Request_queue = Service.Request_queue

let null = Bucketing.Bucket_order.null_priority

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---------------- request queue ---------------- *)

let test_queue_admission () =
  let q = Request_queue.create ~capacity:3 () in
  Alcotest.(check bool) "push 1" true (Request_queue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Request_queue.try_push q 2);
  Alcotest.(check bool) "push 3" true (Request_queue.try_push q 3);
  Alcotest.(check bool) "overflow rejected" false (Request_queue.try_push q 4);
  Alcotest.(check int) "depth" 3 (Request_queue.length q);
  (* FIFO, bounded drain. *)
  Alcotest.(check (list int)) "first two" [ 1; 2 ]
    (Request_queue.pop_batch q ~max:2 ~timeout_s:0.);
  Alcotest.(check bool) "room again" true (Request_queue.try_push q 5);
  Alcotest.(check (list int)) "rest in order" [ 3; 5 ]
    (Request_queue.pop_batch q ~max:10 ~timeout_s:0.);
  Alcotest.(check (list int)) "empty timeout" []
    (Request_queue.pop_batch q ~max:10 ~timeout_s:0.);
  Request_queue.close q;
  Alcotest.(check bool) "closed rejects" false (Request_queue.try_push q 6)

let test_queue_cross_thread () =
  let q = Request_queue.create ~capacity:64 () in
  let producer =
    Thread.create
      (fun () ->
        for i = 1 to 50 do
          while not (Request_queue.try_push q i) do
            Thread.yield ()
          done
        done)
      ()
  in
  let got = ref [] in
  while List.length !got < 50 do
    got := !got @ Request_queue.pop_batch q ~max:8 ~timeout_s:0.5
  done;
  Thread.join producer;
  Alcotest.(check (list int)) "all items in order" (List.init 50 (fun i -> i + 1)) !got

(* ---------------- protocol ---------------- *)

let test_protocol_roundtrip () =
  let cases =
    [
      {
        Protocol.id = 1;
        op = Protocol.Ppsp { source = 3; target = 9 };
        deadline_ms = Some 12.5;
      };
      { Protocol.id = 2; op = Protocol.Kcore { vertex = 0 }; deadline_ms = None };
      { Protocol.id = 7; op = Protocol.Shutdown; deadline_ms = None };
    ]
  in
  List.iter
    (fun req ->
      let line = Json.to_string (Protocol.request_to_json req) in
      match Protocol.parse_request line with
      | Ok req' -> Alcotest.(check bool) ("round-trip " ^ line) true (req = req')
      | Error (_, msg) -> Alcotest.fail (line ^ ": " ^ msg))
    cases

let test_protocol_errors () =
  let check_err line expect_id =
    match Protocol.parse_request line with
    | Ok _ -> Alcotest.fail ("parsed: " ^ line)
    | Error (id, _) -> Alcotest.(check int) ("id of " ^ line) expect_id id
  in
  check_err "not json" (-1);
  check_err {|{"op": "ping"}|} (-1);
  check_err {|{"id": 3, "op": "levitate"}|} 3;
  check_err {|{"id": 4, "op": "ppsp", "source": 1}|} 4;
  check_err {|{"id": 5}|} 5

(* ---------------- in-process core helpers ---------------- *)

let mk_core ?(landmarks = 2) ?(queue_capacity = 256) ?(max_batch = 32)
    ?(default_deadline_ms = 0.) ?(slow_query_ms = 0.) ?graph_file
    ?(symmetric = false) ?(compact_ops = 4096) ~pool csr =
  Service.Core.create ~pool ~handle:(Handle.create csr)
    ~config:
      {
        Service.Config.queue_capacity;
        max_batch;
        default_deadline_ms;
        landmarks;
        schedule = Testlib.schedule ();
        slow_query_ms;
        graph_file;
        symmetric;
        compact_ops;
      }
    ()

let pump core =
  let drained = ref 1 in
  while !drained > 0 do
    drained := Service.Core.process_pending core ~max_wait_s:0.
  done

let req ?deadline_ms id op = { Protocol.id; op; deadline_ms }

(* Submit everything first (so the batcher actually batches), then pump
   until every reply landed. *)
let run_queries core reqs =
  let replies = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Service.Core.submit core r ~reply:(fun resp ->
          Hashtbl.replace replies r.Protocol.id resp))
    reqs;
  pump core;
  List.map
    (fun r ->
      match Hashtbl.find_opt replies r.Protocol.id with
      | Some resp -> resp
      | None -> Alcotest.fail (Printf.sprintf "request %d unanswered" r.Protocol.id))
    reqs

let result_int field resp =
  match resp.Protocol.result with
  | Some j -> (
      match Json.member field j with
      | Some (Json.Int v) -> Some v
      | Some Json.Null -> None
      | _ -> Alcotest.fail ("bad field " ^ field))
  | None -> Alcotest.fail ("no result for field " ^ field)

let check_status what expected resp =
  Alcotest.(check string)
    (what ^ " status")
    (Protocol.status_to_string expected)
    (Protocol.status_to_string resp.Protocol.status)

(* ---------------- batched answers = solo oracles ---------------- *)

let test_batch_demux_matches_oracles () =
  let csr = Testlib.random_weighted_graph 11 ~n:300 ~m:1500 ~max_w:64 in
  let sym = Csr.of_edge_list (Edge_list.symmetrized (Csr.to_edge_list csr)) in
  let dist0 = Check.Oracle.bellman_ford csr ~source:0 in
  let dist7 = Check.Oracle.bellman_ford csr ~source:7 in
  let widest0 = Algorithms.Widest_path.sequential csr ~source:0 in
  let core_oracle = Testlib.naive_coreness_running_max sym in
  Testlib.with_pools [ 1; 2; 4 ] (fun _w pool ->
      let core = mk_core ~pool csr in
      let targets = [ 1; 50; 99; 123; 222; 299 ] in
      let reqs =
        List.concat_map
          (fun (i, t) ->
            [
              req (100 + i) (Protocol.Ppsp { source = 0; target = t });
              req (200 + i) (Protocol.Ppsp { source = 7; target = t });
              req (300 + i) (Protocol.Widest { source = 0; target = t });
              req (400 + i) (Protocol.Astar { source = 0; target = t });
              req (500 + i) (Protocol.Kcore { vertex = t });
            ])
          (List.mapi (fun i t -> (i, t)) targets)
      in
      let replies = run_queries core reqs in
      List.iter2
        (fun r resp ->
          check_status (string_of_int r.Protocol.id) Protocol.Ok resp;
          let expect_dist oracle t =
            let got = result_int "distance" resp in
            let want = if oracle.(t) = null then None else Some oracle.(t) in
            Alcotest.(check (option int))
              (Printf.sprintf "id %d distance" r.Protocol.id)
              want got
          in
          match r.Protocol.op with
          | Protocol.Ppsp { source = 0; target } -> expect_dist dist0 target
          | Protocol.Ppsp { target; _ } -> expect_dist dist7 target
          | Protocol.Astar { target; _ } -> expect_dist dist0 target
          | Protocol.Widest { target; _ } ->
              Alcotest.(check (option int))
                (Printf.sprintf "id %d capacity" r.Protocol.id)
                (Some widest0.(target))
                (result_int "capacity" resp)
          | Protocol.Kcore { vertex } ->
              Alcotest.(check (option int))
                (Printf.sprintf "id %d coreness" r.Protocol.id)
                (Some core_oracle.(vertex))
                (result_int "coreness" resp)
          | _ -> ())
        reqs replies;
      (* The second kcore round must be answered from the cache. *)
      let before =
        Observe.Metrics.counter_value
          (Observe.Metrics.counter Observe.Metrics.default
             "service.kcore.cache_hits")
      in
      let cached =
        run_queries core [ req 900 (Protocol.Kcore { vertex = 42 }) ]
      in
      check_status "cached kcore" Protocol.Ok (List.hd cached);
      let after =
        Observe.Metrics.counter_value
          (Observe.Metrics.counter Observe.Metrics.default
             "service.kcore.cache_hits")
      in
      Alcotest.(check bool) "kcore cache hit counted" true (after > before))

(* ---------------- deadlines: partial, never wrong ---------------- *)

let test_expired_deadline_is_partial_null () =
  let csr = Testlib.random_weighted_graph 3 ~n:200 ~m:1000 ~max_w:32 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let core = mk_core ~pool csr in
      (* A microscopic budget is always spent before the batcher runs:
         the reply must be partial with the null bound. *)
      let resp =
        List.hd
          (run_queries core
             [
               req ~deadline_ms:0.001 1 (Protocol.Ppsp { source = 0; target = 150 });
             ])
      in
      check_status "expired ppsp" Protocol.Partial resp;
      Alcotest.(check (option int)) "null distance" None (result_int "distance" resp);
      let resp =
        List.hd
          (run_queries core
             [
               req ~deadline_ms:0.001 2
                 (Protocol.Widest { source = 0; target = 150 });
             ])
      in
      check_status "expired widest" Protocol.Partial resp;
      Alcotest.(check (option int)) "zero capacity" (Some 0)
        (result_int "capacity" resp))

let test_partial_results_are_monotone_bounds () =
  (* Sweep deadlines from instant to generous: whatever the status, a
     finite distance must be a real upper bound and a capacity a real
     lower bound; exact answers must match the oracle exactly. *)
  let csr = Testlib.random_weighted_graph 17 ~n:400 ~m:2400 ~max_w:100 in
  let dist = Check.Oracle.bellman_ford csr ~source:0 in
  let widest = Algorithms.Widest_path.sequential csr ~source:0 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let core = mk_core ~pool csr in
      List.iteri
        (fun i deadline_ms ->
          let target = 37 * (i + 1) mod 400 in
          let resp =
            List.hd
              (run_queries core
                 [ req ~deadline_ms (1000 + i) (Protocol.Ppsp { source = 0; target }) ])
          in
          (match (resp.Protocol.status, result_int "distance" resp) with
          | Protocol.Ok, got ->
              Alcotest.(check (option int))
                "exact distance"
                (if dist.(target) = null then None else Some dist.(target))
                got
          | Protocol.Partial, Some d ->
              Alcotest.(check bool)
                (Printf.sprintf "partial distance %d is an upper bound of %d" d
                   dist.(target))
                true
                (dist.(target) <> null && d >= dist.(target))
          | Protocol.Partial, None -> () (* nothing learned: fine *)
          | _ -> Alcotest.fail "unexpected status");
          let resp =
            List.hd
              (run_queries core
                 [
                   req ~deadline_ms (2000 + i) (Protocol.Widest { source = 0; target });
                 ])
          in
          match (resp.Protocol.status, result_int "capacity" resp) with
          | Protocol.Ok, got ->
              Alcotest.(check (option int)) "exact capacity" (Some widest.(target)) got
          | Protocol.Partial, Some c ->
              Alcotest.(check bool)
                (Printf.sprintf "partial capacity %d is a lower bound of %d" c
                   widest.(target))
                true
                (c <= widest.(target))
          | _ -> Alcotest.fail "unexpected widest status")
        [ 0.001; 0.05; 0.3; 1.0; 5.0; 50.0 ])

let test_timed_out_kcore_not_cached () =
  let csr = Testlib.symmetric_random 5 ~n:400 ~m:3000 in
  let oracle = Testlib.naive_coreness_running_max csr in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let core = mk_core ~pool csr in
      let resp =
        List.hd
          (run_queries core
             [ req ~deadline_ms:0.001 1 (Protocol.Kcore { vertex = 9 }) ])
      in
      check_status "expired kcore" Protocol.Partial resp;
      (* The truncated peel must not have been cached: the next query
         (no deadline) runs the real decomposition and is exact. *)
      let resp =
        List.hd (run_queries core [ req 2 (Protocol.Kcore { vertex = 9 }) ])
      in
      check_status "fresh kcore" Protocol.Ok resp;
      Alcotest.(check (option int)) "exact coreness" (Some oracle.(9))
        (result_int "coreness" resp))

(* ---------------- admission control ---------------- *)

let test_queue_overflow_rejects () =
  let csr = Testlib.random_weighted_graph 7 ~n:50 ~m:200 ~max_w:8 in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let core = mk_core ~queue_capacity:4 ~pool csr in
      let statuses = ref [] in
      for i = 1 to 10 do
        Service.Core.submit core
          (req i (Protocol.Ppsp { source = 0; target = 1 }))
          ~reply:(fun resp -> statuses := resp.Protocol.status :: !statuses)
      done;
      (* Rejections are synchronous: 6 already answered, 4 queued. *)
      let rejected_now =
        List.length (List.filter (( = ) Protocol.Rejected) !statuses)
      in
      Alcotest.(check int) "overflow rejected synchronously" 6 rejected_now;
      Alcotest.(check int) "admitted are pending" 4 (Service.Core.pending core);
      pump core;
      Alcotest.(check int) "everyone answered" 10 (List.length !statuses);
      Alcotest.(check int) "admitted answered ok" 4
        (List.length (List.filter (( = ) Protocol.Ok) !statuses)))

let test_out_of_range_is_error () =
  let csr = Testlib.random_weighted_graph 7 ~n:50 ~m:200 ~max_w:8 in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let core = mk_core ~pool csr in
      let resp = ref None in
      Service.Core.submit core
        (req 1 (Protocol.Ppsp { source = 0; target = 50 }))
        ~reply:(fun r -> resp := Some r);
      match !resp with
      | Some r ->
          check_status "range error" Protocol.Error r;
          Alcotest.(check bool) "mentions range" true
            (match r.Protocol.error with
            | Some msg -> contains ~needle:"out of range" msg
            | None -> false)
      | None -> Alcotest.fail "validation must answer synchronously")

(* ---------------- ALT: admissible, consistent with ppsp ---------------- *)

let qcheck_alt_heuristic_admissible =
  QCheck.Test.make ~name:"ALT heuristic never overestimates d(v, target)"
    ~count:25
    QCheck.(triple (int_range 20 120) (int_range 40 400) small_nat)
    (fun (n, m, salt) ->
      let csr = Testlib.random_weighted_graph (salt + 23) ~n ~m ~max_w:50 in
      let handle = Handle.create csr in
      Pool.with_pool ~num_workers:2 (fun pool ->
          let alt =
            Service.Alt.create ~pool ~handle ~schedule:(Testlib.schedule ())
              ~landmarks:3 ()
          in
          ignore (Service.Alt.warm_all alt);
          let target = salt * 7 mod n in
          (* d(v, target) for every v = SSSP from target on the transpose. *)
          let to_target =
            Check.Oracle.bellman_ford (Handle.transpose_csr handle) ~source:target
          in
          match Service.Alt.heuristic alt ~target with
          | None -> true (* no warm landmark: vacuously admissible *)
          | Some h ->
              let ok = ref true in
              for v = 0 to n - 1 do
                if to_target.(v) <> null && h v > to_target.(v) then ok := false
              done;
              !ok))

let qcheck_astar_with_alt_matches_ppsp =
  QCheck.Test.make ~name:"astar over warm ALT cache = ppsp distances" ~count:20
    QCheck.(pair (int_range 20 150) small_nat)
    (fun (n, salt) ->
      let csr = Testlib.random_weighted_graph (salt + 41) ~n ~m:(4 * n) ~max_w:30 in
      Pool.with_pool ~num_workers:2 (fun pool ->
          let core = mk_core ~landmarks:3 ~pool csr in
          ignore (Service.Core.warm_alt core);
          let dist = Check.Oracle.bellman_ford csr ~source:0 in
          let targets = [ n - 1; n / 2; 1 mod n ] in
          let reqs =
            List.mapi
              (fun i t -> req (i + 1) (Protocol.Astar { source = 0; target = t }))
              targets
          in
          let replies = run_queries core reqs in
          List.for_all2
            (fun t resp ->
              resp.Protocol.status = Protocol.Ok
              && result_int "distance" resp
                 = (if dist.(t) = null then None else Some dist.(t)))
            targets replies))

(* ---------------- the socket server under concurrent clients -------- *)

let tmp_socket_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "svc_test_%d_%d.sock" (Unix.getpid ()) !counter)

let send_line fd line =
  let bytes = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes !written (len - !written)
  done

(* One client: send [queries], read that many responses, return them
   decoded and indexed by id. *)
let run_client path queries =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.;
  let ic = Unix.in_channel_of_descr fd in
  List.iter (fun q -> send_line fd (Json.to_string (Protocol.request_to_json q))) queries;
  let replies = Hashtbl.create 16 in
  for _ = 1 to List.length queries do
    let line = input_line ic in
    match Result.bind (Json.of_string line) Protocol.response_of_json with
    | Ok resp -> Hashtbl.replace replies resp.Protocol.rid resp
    | Error msg -> Alcotest.fail (Printf.sprintf "bad response %S: %s" line msg)
  done;
  Unix.close fd;
  replies

let test_concurrent_clients () =
  let csr = Testlib.random_weighted_graph 29 ~n:400 ~m:2400 ~max_w:64 in
  let dist = Array.init 8 (fun s -> Check.Oracle.bellman_ford csr ~source:s) in
  Testlib.with_pools [ 1; 2; 4 ] (fun _w pool ->
      let core = mk_core ~pool csr in
      let path = tmp_socket_path () in
      let server =
        Service.Server.start ~core ~address:(Service.Server.Unix_sock path) ()
      in
      let num_clients = 4 in
      let failures = Atomic.make 0 in
      let clients =
        List.init num_clients (fun c ->
            Thread.create
              (fun () ->
                try
                  let queries =
                    List.init 12 (fun i ->
                        let t = ((c + 1) * 31 * (i + 1)) mod 400 in
                        req
                          ((c * 1000) + i)
                          (if i mod 3 = 0 then
                             Protocol.Astar { source = c; target = t }
                           else Protocol.Ppsp { source = c; target = t }))
                  in
                  let replies = run_client path queries in
                  List.iter
                    (fun q ->
                      let resp = Hashtbl.find replies q.Protocol.id in
                      let target =
                        match q.Protocol.op with
                        | Protocol.Ppsp { target; _ } | Protocol.Astar { target; _ }
                          ->
                            target
                        | _ -> assert false
                      in
                      let want =
                        if dist.(c).(target) = null then None
                        else Some dist.(c).(target)
                      in
                      if
                        resp.Protocol.status <> Protocol.Ok
                        || result_int "distance" resp <> want
                      then Atomic.incr failures)
                    queries
                with _ -> Atomic.incr failures)
              ())
      in
      List.iter Thread.join clients;
      (* Orderly shutdown through the protocol. *)
      let replies = run_client path [ req 999999 Protocol.Shutdown ] in
      check_status "shutdown" Protocol.Ok (Hashtbl.find replies 999999);
      Service.Server.wait server;
      Alcotest.(check int) "zero wrong answers across clients" 0
        (Atomic.get failures);
      Alcotest.(check bool) "socket removed" false (Sys.file_exists path))

(* ---------------- docs/SERVICE.md sessions replay ---------------- *)

(* dune runtest runs in test/, dune exec in the workspace root. *)
let service_md =
  if Sys.file_exists "../docs/SERVICE.md" then "../docs/SERVICE.md"
  else "docs/SERVICE.md"

type fenced = { lang : string; body : string list }

let fenced_blocks path =
  let ic = open_in path in
  let blocks = ref [] in
  let current = ref None in
  (try
     while true do
       let line = input_line ic in
       match !current with
       | None ->
           if String.length line >= 3 && String.sub line 0 3 = "```" then
             let lang = String.trim (String.sub line 3 (String.length line - 3)) in
             if lang <> "" then current := Some { lang; body = [] }
             else current := Some { lang = "_"; body = [] }
       | Some b ->
           if String.trim line = "```" then begin
             blocks := { b with body = List.rev b.body } :: !blocks;
             current := None
           end
           else current := Some { b with body = line :: b.body }
     done
   with End_of_file -> close_in ic);
  List.rev !blocks

let docs_graph blocks =
  match List.find_opt (fun b -> b.lang = "graph") blocks with
  | None -> Alcotest.fail "SERVICE.md has no ```graph block"
  | Some b ->
      let edges =
        List.filter_map
          (fun line ->
            let line = String.trim line in
            if line = "" || line.[0] = '#' then None
            else
              match
                String.split_on_char ' ' line |> List.filter (( <> ) "")
              with
              | [ s; d; w ] ->
                  Some
                    {
                      Edge_list.src = int_of_string s;
                      dst = int_of_string d;
                      weight = int_of_string w;
                    }
              | _ -> Alcotest.fail ("bad graph line in SERVICE.md: " ^ line))
          b.body
      in
      let num_vertices =
        1 + List.fold_left (fun a e -> max a (max e.Edge_list.src e.Edge_list.dst)) 0 edges
      in
      Csr.of_edge_list (Edge_list.create ~num_vertices (Array.of_list edges))

let session_pairs blocks =
  List.concat_map
    (fun b ->
      if b.lang <> "jsonl" then []
      else begin
        let pairs = ref [] in
        let pending = ref None in
        List.iter
          (fun line ->
            let line = String.trim line in
            let strip p = String.sub line (String.length p) (String.length line - String.length p) in
            if String.length line > 4 && String.sub line 0 4 = "--> " then begin
              (match !pending with
              | Some r -> Alcotest.fail ("unanswered request in SERVICE.md: " ^ r)
              | None -> ());
              pending := Some (strip "--> ")
            end
            else if String.length line > 4 && String.sub line 0 4 = "<-- " then
              match !pending with
              | Some r ->
                  pairs := (r, strip "<-- ") :: !pairs;
                  pending := None
              | None -> Alcotest.fail ("response without request: " ^ line))
          b.body;
        (match !pending with
        | Some r -> Alcotest.fail ("trailing unanswered request: " ^ r)
        | None -> ());
        List.rev !pairs
      end)
    blocks

let strip_meta = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "meta") fields)
  | j -> j

let test_service_md_sessions_roundtrip () =
  let blocks = fenced_blocks service_md in
  let csr = docs_graph blocks in
  let pairs = session_pairs blocks in
  Alcotest.(check bool) "SERVICE.md documents sessions" true (List.length pairs > 10);
  Pool.with_pool ~num_workers:2 (fun pool ->
      (* §8: the test server runs with --landmarks 2. *)
      let core = mk_core ~landmarks:2 ~pool csr in
      List.iter
        (fun (request_line, expected_line) ->
          let expected =
            match Json.of_string expected_line with
            | Ok j -> strip_meta j
            | Error e ->
                Alcotest.fail
                  (Printf.sprintf "SERVICE.md bad response JSON %S: %s"
                     expected_line e)
          in
          let actual =
            match Protocol.parse_request request_line with
            | Error (id, msg) -> Protocol.error ~id msg
            | Ok r -> List.hd (run_queries core [ r ])
          in
          let actual = strip_meta (Protocol.response_to_json actual) in
          if not (Json.equal expected actual) then
            Alcotest.fail
              (Printf.sprintf "SERVICE.md drifted for %s\n  documented: %s\n  actual:     %s"
                 request_line (Json.to_string expected) (Json.to_string actual)))
        pairs;
      Alcotest.(check bool) "session 5 requested shutdown" true
        (Service.Core.shutdown_requested core))

(* ---------------- query-scoped telemetry ---------------- *)

module Log = Observe.Log
module Metrics = Observe.Metrics

(* Capture log records in memory for the duration of [f], at Debug so
   per-query attribution records land too. *)
let with_log_capture f =
  let buf = Buffer.create 1024 in
  Log.set_writer (Some (Buffer.add_string buf));
  Log.set_level Log.Debug;
  Fun.protect
    ~finally:(fun () ->
      Log.set_writer None;
      Log.set_level Log.Info)
    (fun () -> f ())
  |> fun r ->
  Log.flush ();
  ( r,
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
           match Json.of_string l with
           | Ok j -> j
           | Error e -> Alcotest.fail (Printf.sprintf "bad log line %S: %s" l e))
  )

let log_int field j =
  match Json.member field j with Some (Json.Int v) -> v | _ -> -1

let log_str field j =
  match Json.member field j with Some (Json.String s) -> s | _ -> ""

let records_of_event name =
  List.filter (fun j -> log_str "event" j = name)

let counter_value name =
  Metrics.counter_value (Metrics.counter Metrics.default name)

(* Satellite (c): a coalesced 3-query batch yields three attribution
   records whose per-member round counts are consistent with the
   engine's own Stats — every member at most the run total, the last
   resolved member exactly the total (the engine stops the moment the
   pending set empties, so no rounds run past the final resolution). *)
let test_batch_attribution_records () =
  let csr = Testlib.random_weighted_graph 13 ~n:300 ~m:1500 ~max_w:64 in
  Testlib.with_pools [ 1; 2; 4 ] (fun w pool ->
      let core = mk_core ~pool csr in
      Observe.Span.set_enabled true;
      let before = Metrics.snapshot Metrics.default in
      let (), records =
        with_log_capture (fun () ->
            Observe.Span.set_enabled true;
            let replies =
              run_queries core
                [
                  req 1 (Protocol.Ppsp { source = 0; target = 299 });
                  req 2 (Protocol.Ppsp { source = 0; target = 123 });
                  req 3 (Protocol.Ppsp { source = 0; target = 7 });
                ]
            in
            List.iter (check_status "batched" Protocol.Ok) replies)
      in
      Observe.Span.set_enabled false;
      let d = Metrics.diff ~earlier:before (Metrics.snapshot Metrics.default) in
      let engine_rounds =
        match List.assoc_opt "engine.rounds" d.Metrics.counters with
        | Some r -> r
        | None -> Alcotest.fail "no engine.rounds counter from the batch run"
      in
      let records = records_of_event "service.query.done" records in
      Alcotest.(check int)
        (Printf.sprintf "three attribution records (%d workers)" w)
        3 (List.length records);
      let batches =
        List.sort_uniq compare (List.map (log_int "batch") records)
      in
      Alcotest.(check int) "one coalesced batch" 1 (List.length batches);
      let queries = List.sort_uniq compare (List.map (log_int "query") records) in
      Alcotest.(check int) "member query ids distinct" 3 (List.length queries);
      List.iter
        (fun r ->
          Alcotest.(check int) "batch width" 3 (log_int "batch_width" r);
          Alcotest.(check int) "workers field" w (log_int "workers" r);
          let rounds = log_int "rounds" r in
          Alcotest.(check bool)
            (Printf.sprintf "member rounds %d within engine total %d" rounds
               engine_rounds)
            true
            (rounds >= 0 && rounds <= engine_rounds);
          (match Check.Sweep.schedule_of_string (log_str "schedule" r) with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("schedule field does not parse: " ^ e));
          Alcotest.(check bool) "edges attributed" true
            (log_int "edges_relaxed" r >= 0))
        records;
      let max_rounds =
        List.fold_left (fun a r -> max a (log_int "rounds" r)) 0 records
      in
      Alcotest.(check int) "last member attributed the full run" engine_rounds
        max_rounds)

(* Satellite (d) + the slow-query acceptance: a deadline-missed query
   emits a Warn record whose repro line parses and re-executes cleanly
   through the check_runner repro path; a threshold-crossing query is
   recorded too. *)
let test_slow_query_record_and_replay () =
  let csr = Testlib.random_weighted_graph 19 ~n:300 ~m:1800 ~max_w:64 in
  let graph_file = Filename.temp_file "svc_slow" ".el" in
  Graphs.Graph_io.write_edge_list graph_file (Csr.to_edge_list csr);
  Fun.protect
    ~finally:(fun () -> Sys.remove graph_file)
    (fun () ->
      Pool.with_pool ~num_workers:2 (fun pool ->
          let core = mk_core ~pool ~graph_file ~slow_query_ms:0.000001 csr in
          let slow_before = counter_value "service.slow_queries" in
          let (), records =
            with_log_capture (fun () ->
                (* One deadline miss (partial) and one merely-slow ok
                   query — both must be recorded. *)
                ignore
                  (run_queries core
                     [
                       req ~deadline_ms:0.001 1
                         (Protocol.Ppsp { source = 0; target = 150 });
                     ]);
                ignore
                  (run_queries core
                     [ req 2 (Protocol.Widest { source = 0; target = 9 }) ]))
          in
          let slow = records_of_event "service.slow_query" records in
          Alcotest.(check int) "both queries recorded as slow" 2
            (List.length slow);
          Alcotest.(check int) "slow-query counter tracks" 2
            (counter_value "service.slow_queries" - slow_before);
          let miss =
            List.find (fun r -> log_str "status" r = "partial") slow
          in
          Alcotest.(check bool) "negative slack on the miss" true
            (match Json.member "deadline_slack_ms" miss with
            | Some (Json.Float s) -> s < 0.
            | _ -> false);
          List.iter
            (fun r ->
              let line = log_str "repro" r in
              Alcotest.(check bool) "repro line present" true (line <> "");
              match Check.Query_repro.of_line line with
              | Error e ->
                  Alcotest.fail
                    (Printf.sprintf "repro %S does not parse: %s" line e)
              | Ok repro -> (
                  Alcotest.(check string) "repro names the served file"
                    graph_file repro.Check.Query_repro.graph_file;
                  match Check.Query_repro.run repro with
                  | Ok () -> ()
                  | Error e ->
                      Alcotest.fail
                        (Printf.sprintf "repro %S does not replay: %s" line e)))
            slow))

(* Fast queries with no threshold configured stay out of the slow log
   but still land as Debug attribution. *)
let test_no_threshold_no_slow_records () =
  let csr = Testlib.random_weighted_graph 23 ~n:60 ~m:240 ~max_w:8 in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let core = mk_core ~pool csr in
      let (), records =
        with_log_capture (fun () ->
            ignore
              (run_queries core [ req 1 (Protocol.Ppsp { source = 0; target = 5 }) ]))
      in
      Alcotest.(check int) "no slow records" 0
        (List.length (records_of_event "service.slow_query" records));
      Alcotest.(check int) "one attribution record" 1
        (List.length (records_of_event "service.query.done" records)))

(* ---------------- live stats streaming ---------------- *)

let test_subscribe_stream () =
  let csr = Testlib.random_weighted_graph 7 ~n:50 ~m:200 ~max_w:8 in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let core = mk_core ~pool csr in
      (* Some traffic first, so the percentiles have observations. *)
      ignore (run_queries core [ req 1 (Protocol.Ppsp { source = 0; target = 5 }) ]);
      let mu = Mutex.create () in
      let pushes = ref [] in
      Service.Core.submit core
        (req 2 (Protocol.Subscribe { interval_ms = 20.; updates = 3 }))
        ~reply:(fun r ->
          Mutex.lock mu;
          pushes := r :: !pushes;
          Mutex.unlock mu);
      pump core;
      let count () =
        Mutex.lock mu;
        let n = List.length !pushes in
        Mutex.unlock mu;
        n
      in
      let deadline = Unix.gettimeofday () +. 10. in
      while count () < 3 && Unix.gettimeofday () < deadline do
        Thread.delay 0.01
      done;
      Service.Core.drain_shutdown core;
      let pushes = List.rev !pushes in
      Alcotest.(check int) "three pushes for one request" 3 (List.length pushes);
      List.iteri
        (fun i r ->
          check_status (Printf.sprintf "push %d" (i + 1)) Protocol.Ok r;
          Alcotest.(check (option int)) "sequence numbers" (Some (i + 1))
            (result_int "seq" r);
          match r.Protocol.result with
          | None -> Alcotest.fail "push without result"
          | Some j ->
              Alcotest.(check bool) "snapshot shape" true
                (Json.member "queue" j <> None
                && Json.member "counters" j <> None
                && Json.member "latency" j <> None))
        pushes;
      (* The percentiles carry the earlier request's latency. *)
      match (List.hd pushes).Protocol.result with
      | Some j -> (
          match Json.member "latency" j with
          | Some lat -> (
              match Json.member "request" lat with
              | Some reqh ->
                  Alcotest.(check bool) "request percentile count > 0" true
                    (log_int "count" reqh > 0)
              | None -> Alcotest.fail "no request percentiles")
          | None -> Alcotest.fail "no latency object")
      | None -> assert false)

let test_subscribe_validation () =
  let csr = Testlib.random_weighted_graph 7 ~n:50 ~m:200 ~max_w:8 in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let core = mk_core ~pool csr in
      let resp = ref None in
      Service.Core.submit core
        (req 1 (Protocol.Subscribe { interval_ms = -5.; updates = 0 }))
        ~reply:(fun r -> resp := Some r);
      (match !resp with
      | Some r -> check_status "negative interval" Protocol.Error r
      | None -> Alcotest.fail "validation must answer synchronously");
      Service.Core.submit core
        (req 2 (Protocol.Subscribe { interval_ms = 10.; updates = 1_000_000 }))
        ~reply:(fun r -> resp := Some r);
      match !resp with
      | Some r -> check_status "absurd updates" Protocol.Error r
      | None -> Alcotest.fail "validation must answer synchronously")

(* The stats reply carries the derived percentiles alongside the raw
   histograms. *)
let test_stats_latency_percentiles () =
  let csr = Testlib.random_weighted_graph 7 ~n:50 ~m:200 ~max_w:8 in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let core = mk_core ~pool csr in
      ignore (run_queries core [ req 1 (Protocol.Ppsp { source = 0; target = 5 }) ]);
      let resp = List.hd (run_queries core [ req 2 Protocol.Stats ]) in
      check_status "stats" Protocol.Ok resp;
      match resp.Protocol.result with
      | None -> Alcotest.fail "no stats result"
      | Some j -> (
          match Json.member "latency" j with
          | None -> Alcotest.fail "stats reply has no latency percentiles"
          | Some lat -> (
              match Json.member "request" lat with
              | Some h ->
                  Alcotest.(check bool) "p50 <= p99" true
                    (match
                       (Json.member "p50_ms" h, Json.member "p99_ms" h)
                     with
                    | Some (Json.Float p50), Some (Json.Float p99) ->
                        p50 <= p99 && p50 >= 0.
                    | _ -> false)
              | None -> Alcotest.fail "no request histogram percentiles")))

let () =
  Alcotest.run "service"
    [
      ( "queue",
        [
          Alcotest.test_case "bounded admission" `Quick test_queue_admission;
          Alcotest.test_case "cross-thread" `Quick test_queue_cross_thread;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "parse errors keep ids" `Quick test_protocol_errors;
        ] );
      ( "batching",
        [
          Alcotest.test_case "demux matches oracles" `Slow
            test_batch_demux_matches_oracles;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "expired -> partial null" `Quick
            test_expired_deadline_is_partial_null;
          Alcotest.test_case "partials are monotone bounds" `Slow
            test_partial_results_are_monotone_bounds;
          Alcotest.test_case "timed-out kcore not cached" `Quick
            test_timed_out_kcore_not_cached;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overflow rejects" `Quick test_queue_overflow_rejects;
          Alcotest.test_case "out of range errors" `Quick test_out_of_range_is_error;
        ] );
      ( "alt",
        [
          QCheck_alcotest.to_alcotest qcheck_alt_heuristic_admissible;
          QCheck_alcotest.to_alcotest qcheck_astar_with_alt_matches_ppsp;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "batch demux attribution on 1/2/4 workers" `Slow
            test_batch_attribution_records;
          Alcotest.test_case "slow-query records replay via repro lines" `Quick
            test_slow_query_record_and_replay;
          Alcotest.test_case "no threshold, no slow records" `Quick
            test_no_threshold_no_slow_records;
        ] );
      ( "subscribe",
        [
          Alcotest.test_case "stream pushes n snapshots" `Quick
            test_subscribe_stream;
          Alcotest.test_case "validation" `Quick test_subscribe_validation;
          Alcotest.test_case "stats reply carries percentiles" `Quick
            test_stats_latency_percentiles;
        ] );
      ( "server",
        [
          Alcotest.test_case "4 concurrent clients, zero wrong answers" `Slow
            test_concurrent_clients;
        ] );
      ( "docs",
        [
          Alcotest.test_case "SERVICE.md sessions replay" `Quick
            test_service_md_sessions_roundtrip;
        ] );
    ]
