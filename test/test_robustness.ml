(* Edge cases and failure injection across layers: degenerate graphs,
   direct priority-queue semantics, execution-counter invariants, and DSL
   runtime errors. *)

module Pool = Parallel.Pool
module Atomic_array = Parallel.Atomic_array
module Csr = Graphs.Csr
module Edge_list = Graphs.Edge_list
module Generators = Graphs.Generators
module Rng = Support.Rng
module Schedule = Ordered.Schedule
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue

let schedule ?strategy ?delta () = Testlib.schedule ?strategy ?delta ()
let all_strategies = Testlib.all_strategies

(* ---------------- degenerate graphs ---------------- *)

let test_sssp_edgeless_graph () =
  let g = Csr.of_edge_list (Edge_list.create ~num_vertices:5 [||]) in
  Pool.with_pool ~num_workers:2 (fun pool ->
      List.iter
        (fun strategy ->
          let r =
            Algorithms.Sssp_delta.run ~pool ~graph:g ~schedule:(schedule ~strategy ())
              ~source:3 ()
          in
          Alcotest.(check int) "source at 0" 0 r.dist.(3);
          Alcotest.(check int) "others unreachable" Bucket_order.null_priority r.dist.(0))
        all_strategies)

let test_sssp_single_vertex () =
  let g = Csr.of_edge_list (Edge_list.create ~num_vertices:1 [||]) in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let r = Algorithms.Sssp_delta.run ~pool ~graph:g ~schedule:(schedule ()) ~source:0 () in
      Alcotest.(check (array int)) "singleton" [| 0 |] r.dist)

let test_kcore_edgeless () =
  let g = Csr.of_edge_list (Edge_list.create ~num_vertices:4 [||]) in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let r = Algorithms.Kcore.run ~pool ~graph:g ~schedule:(schedule ()) () in
      Alcotest.(check (array int)) "all coreness zero" [| 0; 0; 0; 0 |] r.coreness)

let test_setcover_edgeless () =
  (* Every vertex must buy its own singleton set. *)
  let g = Csr.of_edge_list (Edge_list.create ~num_vertices:6 [||]) in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let r =
        Algorithms.Setcover.run ~pool ~graph:g
          ~schedule:(schedule ~strategy:Schedule.Lazy ())
          ()
      in
      Alcotest.(check bool) "valid" true (Algorithms.Setcover.is_valid_cover g r);
      Alcotest.(check int) "all six sets" 6 r.cover_size)

let test_widest_single_edge () =
  let g = Csr.of_edge_list (Edge_list.create ~num_vertices:2 [| { src = 0; dst = 1; weight = 7 } |]) in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let r = Algorithms.Widest_path.run ~pool ~graph:g ~schedule:(schedule ()) ~source:0 () in
      Alcotest.(check int) "capacity across the edge" 7 r.capacity.(1))

let test_complete_graph_all_strategies () =
  let rng = Rng.create 9 in
  let el = Generators.assign_weights ~rng ~lo:1 ~hi:20 (Generators.complete 12) in
  let g = Csr.of_edge_list el in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  Pool.with_pool ~num_workers:4 (fun pool ->
      List.iter
        (fun strategy ->
          List.iter
            (fun delta ->
              let r =
                Algorithms.Sssp_delta.run ~pool ~graph:g
                  ~schedule:(schedule ~strategy ~delta ()) ~source:0 ()
              in
              Alcotest.(check (array int))
                (Printf.sprintf "complete %s delta=%d"
                   (Schedule.strategy_to_string strategy) delta)
                expected r.dist)
            [ 1; 7 ])
        all_strategies)

(* The Lazy strategy with coarse deltas never ran on the degenerate
   shapes above: empty/singleton frontiers, self-loops (relaxations that
   change nothing), and duplicate edges (racing updates to one slot) all
   stress lazy bucket bookkeeping differently than eager. *)
let lazy_deltas = [ 1; 2; 8 ]

let degenerate_graphs =
  [
    ("edgeless", Csr.of_edge_list (Edge_list.create ~num_vertices:5 [||]));
    ("singleton", Csr.of_edge_list (Edge_list.create ~num_vertices:1 [||]));
    ( "self-loops",
      Csr.of_edge_list
        (Edge_list.create ~num_vertices:4
           [|
             { src = 0; dst = 0; weight = 3 };
             { src = 0; dst = 1; weight = 2 };
             { src = 1; dst = 1; weight = 1 };
             { src = 1; dst = 2; weight = 5 };
             { src = 2; dst = 2; weight = 7 };
             { src = 3; dst = 3; weight = 1 };
           |]) );
    ( "duplicate edges",
      Csr.of_edge_list
        (Edge_list.create ~num_vertices:3
           [|
             { src = 0; dst = 1; weight = 4 };
             { src = 0; dst = 1; weight = 2 };
             { src = 0; dst = 1; weight = 9 };
             { src = 1; dst = 2; weight = 1 };
             { src = 1; dst = 2; weight = 1 };
           |]) );
  ]

let test_sssp_lazy_coarse_degenerate () =
  Pool.with_pool ~num_workers:2 (fun pool ->
      List.iter
        (fun (name, g) ->
          let expected = Algorithms.Dijkstra.distances g ~source:0 in
          List.iter
            (fun delta ->
              let r =
                Algorithms.Sssp_delta.run ~pool ~graph:g
                  ~schedule:(schedule ~strategy:Schedule.Lazy ~delta ())
                  ~source:0 ()
              in
              Alcotest.(check (array int))
                (Printf.sprintf "lazy sssp %s delta=%d" name delta)
                expected r.dist)
            lazy_deltas)
        degenerate_graphs)

let test_widest_lazy_coarse_degenerate () =
  Pool.with_pool ~num_workers:2 (fun pool ->
      List.iter
        (fun (name, g) ->
          let expected =
            (Algorithms.Widest_path.run ~pool ~graph:g
               ~schedule:(schedule ()) ~source:0 ())
              .capacity
          in
          List.iter
            (fun delta ->
              let r =
                Algorithms.Widest_path.run ~pool ~graph:g
                  ~schedule:(schedule ~strategy:Schedule.Lazy ~delta ())
                  ~source:0 ()
              in
              Alcotest.(check (array int))
                (Printf.sprintf "lazy widest %s delta=%d" name delta)
                expected r.capacity)
            lazy_deltas)
        degenerate_graphs)

let test_kcore_lazy_coarse_degenerate () =
  (* k-core needs symmetric input; symmetrize each degenerate shape. *)
  Pool.with_pool ~num_workers:2 (fun pool ->
      List.iter
        (fun (name, g) ->
          let g = Csr.of_edge_list (Edge_list.symmetrized (Csr.to_edge_list g)) in
          let expected = Algorithms.Kcore_peel_seq.coreness g in
          List.iter
            (fun delta ->
              let r =
                Algorithms.Kcore.run ~pool ~graph:g
                  ~schedule:(schedule ~strategy:Schedule.Lazy ~delta ())
                  ()
              in
              Alcotest.(check (array int))
                (Printf.sprintf "lazy kcore %s delta=%d" name delta)
                expected r.coreness)
            lazy_deltas)
        degenerate_graphs)

(* ---------------- priority queue unit semantics ---------------- *)

let make_pq ?(strategy = Schedule.Eager_no_fusion) ?(direction = Bucket_order.Lower_first)
    ?(initial = Pq.No_initial) ?constant_sum_delta priorities =
  Pq.create
    ~schedule:{ Schedule.default with strategy }
    ~num_workers:1 ~direction ~allow_coarsening:false
    ~priorities:(Atomic_array.of_array priorities)
    ~initial ?constant_sum_delta ()

let ctx = { Pq.tid = 0; use_atomics = true }

let test_pq_min_updates_and_order () =
  let pq = make_pq [| 0; max_int; max_int |] ~initial:(Pq.Start_vertex 0) in
  Pq.update_priority_min pq ctx 1 5;
  Pq.update_priority_min pq ctx 2 3;
  Pq.update_priority_min pq ctx 1 2 (* improves: 5 -> 2 *);
  let order = ref [] in
  while not (Pq.finished pq) do
    let frontier = Pq.dequeue_ready_set pq in
    Frontier.Vertex_subset.iter
      (fun v -> if Pq.vertex_on_current_bucket pq v then order := v :: !order)
      frontier
  done;
  Alcotest.(check (list int)) "ascending priority order" [ 0; 1; 2 ] (List.rev !order)

let test_pq_max_updates_higher_first () =
  let pq =
    make_pq [| 10; 0; 0 |] ~direction:Bucket_order.Higher_first
      ~initial:(Pq.Start_vertex 0)
  in
  Pq.update_priority_max pq ctx 1 4;
  Pq.update_priority_max pq ctx 2 8;
  Pq.update_priority_max pq ctx 1 1 (* no-op: 4 > 1 *);
  let order = ref [] in
  while not (Pq.finished pq) do
    let frontier = Pq.dequeue_ready_set pq in
    Frontier.Vertex_subset.iter
      (fun v -> if Pq.vertex_on_current_bucket pq v then order := v :: !order)
      frontier
  done;
  Alcotest.(check (list int)) "descending priority order" [ 0; 2; 1 ] (List.rev !order)

let test_pq_dequeue_after_finished_raises () =
  let pq = make_pq [| max_int |] in
  Alcotest.(check bool) "empty queue finished" true (Pq.finished pq);
  match Pq.dequeue_ready_set pq with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_pq_finished_vertex_progression () =
  let pq = make_pq [| 0; 2; 9 |] ~initial:Pq.All_vertices in
  Alcotest.(check bool) "nothing finished before processing" false
    (Pq.finished_vertex pq 0);
  ignore (Pq.dequeue_ready_set pq) (* bucket 0 *);
  ignore (Pq.dequeue_ready_set pq) (* bucket 2: cursor moved past 0 *);
  Alcotest.(check bool) "vertex 0 finalized" true (Pq.finished_vertex pq 0);
  Alcotest.(check bool) "vertex 2 not yet" false (Pq.finished_vertex pq 2);
  Alcotest.(check int) "current priority" 2 (Pq.current_priority pq)

let test_pq_constant_sum_recorder_presence () =
  let with_strategy strategy delta =
    make_pq [| 3; 3 |] ~strategy ?constant_sum_delta:delta ~initial:Pq.All_vertices
  in
  Alcotest.(check bool) "eager has no recorder" true
    (Pq.constant_sum_recorder (with_strategy Schedule.Eager_no_fusion None) = None);
  Alcotest.(check bool) "plain lazy has no recorder" true
    (Pq.constant_sum_recorder (with_strategy Schedule.Lazy None) = None);
  Alcotest.(check bool) "constant-sum backend has one" true
    (Pq.constant_sum_recorder (with_strategy Schedule.Lazy_constant_sum (Some (-1)))
    <> None)

let test_pq_constant_sum_requires_delta () =
  match
    Pq.create
      ~schedule:{ Schedule.default with strategy = Schedule.Lazy_constant_sum }
      ~num_workers:1 ~direction:Bucket_order.Lower_first ~allow_coarsening:false
      ~priorities:(Atomic_array.make 2 1) ~initial:Pq.All_vertices ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection without constant_sum_delta"

let test_pq_sum_diff_mismatch_rejected () =
  let pq =
    make_pq [| 5; 5 |] ~strategy:Schedule.Lazy_constant_sum
      ~constant_sum_delta:(-1) ~initial:Pq.All_vertices
  in
  match Pq.update_priority_sum pq ctx 0 ~diff:(-2) ~floor:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected diff mismatch rejection"

let test_pq_set_priority_reinserts () =
  let pq = make_pq [| 1; 5 |] ~strategy:Schedule.Lazy ~initial:Pq.All_vertices in
  ignore (Pq.dequeue_ready_set pq) (* bucket 1 = {0} *);
  (* Vertex 1 gets a recomputed priority (SetCover style). *)
  Pq.set_priority pq ctx 1 3;
  let frontier = Pq.dequeue_ready_set pq in
  Alcotest.(check int) "reinserted at new priority" 3 (Pq.current_priority pq);
  Alcotest.(check (array int)) "the right vertex" [| 1 |]
    (Frontier.Vertex_subset.to_sorted_array frontier)

(* ---------------- stats invariants ---------------- *)

let qcheck_stats_invariants =
  QCheck.Test.make ~name:"engine counters satisfy structural invariants" ~count:40
    QCheck.(
      quad (int_range 2 60) (int_bound 300) (int_range 1 16) (int_range 0 2))
    (fun (n, m, delta, strat_idx) ->
      let rng = Rng.create (n + (m * 97) + delta) in
      let el = Generators.erdos_renyi ~rng ~num_vertices:n ~num_edges:m () in
      let g = Csr.of_edge_list (Generators.assign_weights ~rng ~lo:1 ~hi:30 el) in
      let strategy = List.nth all_strategies strat_idx in
      Pool.with_pool ~num_workers:2 (fun pool ->
          let r =
            Algorithms.Sssp_delta.run ~pool ~graph:g ~schedule:(schedule ~strategy ~delta ())
              ~source:0 ()
          in
          let s = r.stats in
          let open Ordered.Stats in
          let reachable =
            Array.fold_left
              (fun acc d -> if d <> Bucket_order.null_priority then acc + 1 else acc)
              0 r.dist
          in
          s.buckets_processed <= s.rounds
          && s.rounds <= s.global_syncs
          && s.vertices_processed >= reachable - 1
          && s.bucket_inserts >= reachable - 1
          && (strategy = Schedule.Eager_with_fusion || s.fused_drains = 0)))

(* ---------------- DSL failure injection ---------------- *)

let compile src =
  match Dsl.Frontend.compile src with
  | Ok c -> c
  | Error msg -> Alcotest.fail msg

let expect_runtime_error ?(argv = [| "prog" |]) ?(externs = []) src fragment =
  let compiled = compile src in
  Pool.with_pool ~num_workers:1 (fun pool ->
      match Dsl.Frontend.run compiled ~pool ~argv ~externs () with
      | exception Dsl.Interp.Runtime_error (_, msg) ->
          let re = Str.regexp_string fragment in
          Alcotest.(check bool)
            (Printf.sprintf "error %S mentions %S" msg fragment)
            true
            (try
               ignore (Str.search_forward re msg 0);
               true
             with Not_found -> false)
      | _ -> Alcotest.fail ("expected runtime error for " ^ fragment))

let minimal_prelude = "element Vertex end\nelement Edge end\n"

let test_dsl_argv_out_of_range () =
  expect_runtime_error
    (minimal_prelude ^ "func main() var x : int = atoi(argv[5]); end")
    "argv[5] out of range"

let test_dsl_division_by_zero () =
  expect_runtime_error
    (minimal_prelude ^ "func main() var x : int = 1 / 0; end")
    "division by zero"

let test_dsl_vector_index_out_of_range () =
  let src =
    "element Vertex end\nelement Edge end\n\
     const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);\n\
     const dist : vector{Vertex}(int) = INT_MAX;\n\
     func main() dist[99999] = 0; end"
  in
  let el =
    Edge_list.create ~num_vertices:3 [| { src = 0; dst = 1; weight = 1 } |]
  in
  let path = Filename.temp_file "robust" ".el" in
  Graphs.Graph_io.write_edge_list path el;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let compiled = compile src in
      Pool.with_pool ~num_workers:1 (fun pool ->
          match Dsl.Frontend.run compiled ~pool ~argv:[| "p"; path |] () with
          | exception Dsl.Interp.Runtime_error (_, msg) ->
              Alcotest.(check bool) "mentions range" true
                (String.length msg > 0)
          | _ -> Alcotest.fail "expected out-of-range error"))

let test_dsl_vector_before_edgeset () =
  expect_runtime_error
    ("element Vertex end\nelement Edge end\n\
      const dist : vector{Vertex}(int) = INT_MAX;\n\
      func main() end")
    "before any edgeset"

let test_dsl_unregistered_extern () =
  expect_runtime_error
    (minimal_prelude
   ^ "extern func mystery(x : int) : int;\n\
      func main() var x : int = mystery(1); end")
    "unknown function"

let test_dsl_print_collects_output () =
  let compiled =
    compile
      (minimal_prelude
     ^ "func main()\nprint(1 + 2);\nprint(\"done\");\nend")
  in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let result = Dsl.Frontend.run compiled ~pool ~argv:[| "p" |] () in
      Alcotest.(check (list string)) "printed in order" [ "3"; "done" ]
        result.Dsl.Interp.printed)

let test_dsl_generic_while_loop () =
  (* An ordinary while loop (no priority-queue pattern) interprets
     normally. *)
  let compiled =
    compile
      (minimal_prelude
     ^ "func main()\n\
        var total : int = 0;\n\
        var i : int = 0;\n\
        while i < 5\n\
        total = total + i;\n\
        i = i + 1;\n\
        end\n\
        print(total);\n\
        end")
  in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let result = Dsl.Frontend.run compiled ~pool ~argv:[| "p" |] () in
      Alcotest.(check (list string)) "10" [ "10" ] result.Dsl.Interp.printed)

(* ---------------- baseline edge cases ---------------- *)

let test_galois_unreachable_target () =
  let el =
    Edge_list.create ~num_vertices:4
      [| { src = 0; dst = 1; weight = 1 }; { src = 2; dst = 3; weight = 1 } |]
  in
  let g = Csr.of_edge_list el in
  Pool.with_pool ~num_workers:2 (fun pool ->
      Alcotest.(check int) "galois unreachable" Bucket_order.null_priority
        (Baselines.Galois_like.ppsp ~pool ~graph:g ~delta:2 ~source:0 ~target:3 ());
      Alcotest.(check int) "julienne unreachable" Bucket_order.null_priority
        (Baselines.Julienne_like.ppsp ~pool ~graph:g ~delta:2 ~source:0 ~target:3 ()))

let test_io_header_mismatch () =
  let path = Filename.temp_file "robust" ".el" in
  let oc = open_out path in
  output_string oc "# 3 5\n0 1 2\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Graphs.Graph_io.read_edge_list path with
      | exception Failure msg ->
          Alcotest.(check bool) "mentions mismatch" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "expected edge-count mismatch failure")

let test_io_dimacs_comments () =
  let path = Filename.temp_file "robust" ".gr" in
  let oc = open_out path in
  output_string oc "c a comment line\np sp 2 1\nc another\na 1 2 9\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let el = Graphs.Graph_io.read_dimacs path in
      Alcotest.(check int) "one edge" 1 (Edge_list.num_edges el);
      Alcotest.(check int) "0-indexed" 0 el.Edge_list.edges.(0).Edge_list.src)

let () =
  Alcotest.run "robustness"
    [
      ( "degenerate graphs",
        [
          Alcotest.test_case "sssp edgeless" `Quick test_sssp_edgeless_graph;
          Alcotest.test_case "sssp singleton" `Quick test_sssp_single_vertex;
          Alcotest.test_case "kcore edgeless" `Quick test_kcore_edgeless;
          Alcotest.test_case "setcover edgeless" `Quick test_setcover_edgeless;
          Alcotest.test_case "widest single edge" `Quick test_widest_single_edge;
          Alcotest.test_case "complete graph" `Quick test_complete_graph_all_strategies;
          Alcotest.test_case "lazy coarse sssp" `Quick test_sssp_lazy_coarse_degenerate;
          Alcotest.test_case "lazy coarse widest" `Quick
            test_widest_lazy_coarse_degenerate;
          Alcotest.test_case "lazy coarse kcore" `Quick
            test_kcore_lazy_coarse_degenerate;
        ] );
      ( "priority queue",
        [
          Alcotest.test_case "min updates order" `Quick test_pq_min_updates_and_order;
          Alcotest.test_case "max updates higher first" `Quick
            test_pq_max_updates_higher_first;
          Alcotest.test_case "dequeue after finished" `Quick
            test_pq_dequeue_after_finished_raises;
          Alcotest.test_case "finished_vertex progression" `Quick
            test_pq_finished_vertex_progression;
          Alcotest.test_case "recorder presence" `Quick
            test_pq_constant_sum_recorder_presence;
          Alcotest.test_case "constant sum needs delta" `Quick
            test_pq_constant_sum_requires_delta;
          Alcotest.test_case "sum diff mismatch" `Quick test_pq_sum_diff_mismatch_rejected;
          Alcotest.test_case "set_priority reinserts" `Quick
            test_pq_set_priority_reinserts;
        ] );
      ("stats", [ QCheck_alcotest.to_alcotest qcheck_stats_invariants ]);
      ( "dsl runtime errors",
        [
          Alcotest.test_case "argv out of range" `Quick test_dsl_argv_out_of_range;
          Alcotest.test_case "division by zero" `Quick test_dsl_division_by_zero;
          Alcotest.test_case "vector index" `Quick test_dsl_vector_index_out_of_range;
          Alcotest.test_case "vector before edgeset" `Quick
            test_dsl_vector_before_edgeset;
          Alcotest.test_case "unregistered extern" `Quick test_dsl_unregistered_extern;
          Alcotest.test_case "print output" `Quick test_dsl_print_collects_output;
          Alcotest.test_case "generic while loop" `Quick test_dsl_generic_while_loop;
        ] );
      ( "baselines/io",
        [
          Alcotest.test_case "unreachable targets" `Quick test_galois_unreachable_target;
          Alcotest.test_case "io header mismatch" `Quick test_io_header_mismatch;
          Alcotest.test_case "dimacs comments" `Quick test_io_dimacs_comments;
        ] );
    ]
