module Edge_list = Graphs.Edge_list
module Csr = Graphs.Csr
module Csr_compressed = Graphs.Csr_compressed
module Generators = Graphs.Generators
module Graph_io = Graphs.Graph_io
module Graph_bin = Graphs.Graph_bin
module Coords = Graphs.Coords
module Layout = Graphs.Layout
module Reorder = Graphs.Reorder
module Rng = Support.Rng

let edge src dst weight = { Edge_list.src; dst; weight }

let test_edge_list_validation () =
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Edge_list.create: endpoint out of range") (fun () ->
      ignore (Edge_list.create ~num_vertices:2 [| edge 0 2 1 |]));
  Alcotest.check_raises "positive weights"
    (Invalid_argument "Edge_list.create: weight must be positive") (fun () ->
      ignore (Edge_list.create ~num_vertices:2 [| edge 0 1 0 |]))

let test_edge_list_dedup () =
  let el =
    Edge_list.create ~num_vertices:3
      [| edge 0 1 5; edge 0 1 3; edge 1 1 2; edge 2 0 7; edge 0 1 9 |]
  in
  let d = Edge_list.dedup el in
  Alcotest.(check int) "dedup count (self-loop dropped)" 2 (Edge_list.num_edges d);
  let weight_01 =
    Array.fold_left
      (fun acc e -> if e.Edge_list.src = 0 && e.Edge_list.dst = 1 then e.Edge_list.weight else acc)
      0 d.Edge_list.edges
  in
  Alcotest.(check int) "keeps min weight" 3 weight_01

let test_edge_list_symmetrized () =
  let el = Edge_list.create ~num_vertices:3 [| edge 0 1 5; edge 1 0 2; edge 1 2 4 |] in
  let s = Edge_list.symmetrized el in
  Alcotest.(check int) "both directions" 4 (Edge_list.num_edges s);
  let g = Csr.of_edge_list s in
  Alcotest.(check bool) "0->1" true (Csr.mem_edge g 0 1);
  Alcotest.(check bool) "1->0" true (Csr.mem_edge g 1 0);
  Alcotest.(check bool) "2->1" true (Csr.mem_edge g 2 1);
  (* Symmetrization keeps the min weight of antiparallel duplicates. *)
  Csr.iter_out g 0 (fun v w -> if v = 1 then Alcotest.(check int) "min weight" 2 w)

let test_csr_structure () =
  let el =
    Edge_list.create ~num_vertices:4 [| edge 0 2 7; edge 0 1 3; edge 2 3 1; edge 0 3 9 |]
  in
  let g = Csr.of_edge_list el in
  Alcotest.(check int) "n" 4 (Csr.num_vertices g);
  Alcotest.(check int) "m" 4 (Csr.num_edges g);
  Alcotest.(check int) "deg 0" 3 (Csr.out_degree g 0);
  Alcotest.(check int) "deg 1" 0 (Csr.out_degree g 1);
  let neighbors = ref [] in
  Csr.iter_out g 0 (fun v w -> neighbors := (v, w) :: !neighbors);
  Alcotest.(check (list (pair int int)))
    "sorted neighbor list"
    [ (1, 3); (2, 7); (3, 9) ]
    (List.rev !neighbors);
  Alcotest.(check int) "fold_out sums weights" 19
    (Csr.fold_out g 0 (fun acc _ w -> acc + w) 0);
  Alcotest.(check bool) "mem_edge present" true (Csr.mem_edge g 0 2);
  Alcotest.(check bool) "mem_edge absent" false (Csr.mem_edge g 1 0);
  Alcotest.(check int) "max_weight" 9 (Csr.max_weight g)

let test_csr_roundtrip_and_transpose () =
  let rng = Rng.create 5 in
  let el = Generators.erdos_renyi ~rng ~num_vertices:50 ~num_edges:300 () in
  let g = Csr.of_edge_list el in
  let g2 = Csr.of_edge_list (Csr.to_edge_list g) in
  Alcotest.(check int) "roundtrip edges" (Csr.num_edges g) (Csr.num_edges g2);
  let t = Csr.transpose g in
  Alcotest.(check int) "transpose edge count" (Csr.num_edges g) (Csr.num_edges t);
  let ok = ref true in
  for u = 0 to 49 do
    Csr.iter_out g u (fun v _ -> if not (Csr.mem_edge t v u) then ok := false)
  done;
  Alcotest.(check bool) "transpose reverses all edges" true !ok;
  let tt = Csr.transpose t in
  let ok = ref true in
  for u = 0 to 49 do
    Csr.iter_out g u (fun v _ -> if not (Csr.mem_edge tt u v) then ok := false)
  done;
  Alcotest.(check bool) "double transpose = original" true !ok

let test_rmat_properties () =
  let rng = Rng.create 1 in
  let el = Generators.rmat ~rng ~scale:10 ~edge_factor:8 () in
  Alcotest.(check int) "vertex count" 1024 el.Edge_list.num_vertices;
  Alcotest.(check bool) "dense enough" true (Edge_list.num_edges el > 4000);
  let g = Csr.of_edge_list el in
  (* Power-law-ish: the max degree should far exceed the average. *)
  let degrees = Csr.out_degrees g in
  let max_deg = Array.fold_left max 0 degrees in
  let avg = Csr.num_edges g / 1024 in
  Alcotest.(check bool)
    (Printf.sprintf "skewed degrees (max=%d avg=%d)" max_deg avg)
    true
    (max_deg > 4 * avg)

let test_road_grid_properties () =
  let rng = Rng.create 2 in
  let el, coords = Generators.road_grid ~rng ~rows:20 ~cols:30 () in
  Alcotest.(check int) "vertex count" 600 el.Edge_list.num_vertices;
  Alcotest.(check int) "coords count" 600 (Coords.num_vertices coords);
  let g = Csr.of_edge_list el in
  (* Bounded degree: lattice plus a few shortcuts. *)
  let max_deg = Array.fold_left max 0 (Csr.out_degrees g) in
  Alcotest.(check bool) "bounded degree" true (max_deg <= 8);
  (* Symmetric by construction. *)
  let symmetric = ref true in
  for u = 0 to 599 do
    Csr.iter_out g u (fun v _ -> if not (Csr.mem_edge g v u) then symmetric := false)
  done;
  Alcotest.(check bool) "symmetric" true !symmetric;
  (* Weights dominate the Euclidean heuristic (A* admissibility). *)
  let admissible = ref true in
  for u = 0 to 599 do
    Csr.iter_out g u (fun v w ->
        if w < Coords.scaled_distance ~scale:100.0 coords u v then admissible := false)
  done;
  Alcotest.(check bool) "weights >= scaled euclidean" true !admissible

let test_weight_assignment () =
  let rng = Rng.create 3 in
  let el = Generators.erdos_renyi ~rng ~num_vertices:100 ~num_edges:500 () in
  let weighted = Generators.assign_weights ~rng ~lo:1 ~hi:1000 el in
  Array.iter
    (fun e ->
      if e.Edge_list.weight < 1 || e.Edge_list.weight >= 1000 then
        Alcotest.fail "weight out of range")
    weighted.Edge_list.edges;
  let wbfs = Generators.wbfs_weights ~rng el in
  Array.iter
    (fun e ->
      if e.Edge_list.weight < 1 || e.Edge_list.weight >= 7 then
        Alcotest.fail "wbfs weight out of [1, log2 100)")
    wbfs.Edge_list.edges

let test_fixed_shapes () =
  let p = Generators.path 5 in
  Alcotest.(check int) "path edges" 4 (Edge_list.num_edges p);
  let c = Generators.cycle 5 in
  Alcotest.(check int) "cycle edges" 5 (Edge_list.num_edges c);
  let s = Generators.star 5 in
  Alcotest.(check int) "star edges" 4 (Edge_list.num_edges s);
  let k = Generators.complete 4 in
  Alcotest.(check int) "complete edges" 12 (Edge_list.num_edges k);
  let g = Generators.grid 3 4 in
  (* 2 * (rows*(cols-1) + (rows-1)*cols) directed edges *)
  Alcotest.(check int) "grid edges" (2 * ((3 * 3) + (2 * 4))) (Edge_list.num_edges g)

let with_temp_file f =
  let path = Filename.temp_file "graphit_test" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_io_edge_list_roundtrip () =
  with_temp_file (fun path ->
      let rng = Rng.create 9 in
      let el = Generators.erdos_renyi ~rng ~num_vertices:40 ~num_edges:200 () in
      let el = Generators.assign_weights ~rng ~lo:1 ~hi:50 el in
      Graph_io.write_edge_list path el;
      let el2 = Graph_io.read_edge_list path in
      Alcotest.(check int) "n" el.Edge_list.num_vertices el2.Edge_list.num_vertices;
      Alcotest.(check bool) "edges preserved" true (el.Edge_list.edges = el2.Edge_list.edges))

let test_io_dimacs_roundtrip () =
  with_temp_file (fun path ->
      let el =
        Graphs.Edge_list.create ~num_vertices:3 [| edge 0 1 4; edge 1 2 6; edge 2 0 1 |]
      in
      Graph_io.write_dimacs path el;
      let el2 = Graph_io.read_dimacs path in
      Alcotest.(check bool) "edges preserved" true (el.Edge_list.edges = el2.Edge_list.edges))

let test_io_coords_roundtrip () =
  with_temp_file (fun path ->
      let c = Coords.create [| 0.5; 1.25 |] [| -3.0; 7.5 |] in
      Graph_io.write_coords path c;
      let c2 = Graph_io.read_coords path in
      Alcotest.(check int) "count" 2 (Coords.num_vertices c2);
      Alcotest.(check (float 1e-5)) "x" 1.25 (Coords.x c2 1);
      Alcotest.(check (float 1e-5)) "y" 7.5 (Coords.y c2 1))

let test_io_malformed () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "not a header\n";
      close_out oc;
      match Graph_io.read_edge_list path with
      | exception Failure msg ->
          Alcotest.(check bool) "located error" true
            (String.length msg > 0 && String.contains msg ':')
      | _ -> Alcotest.fail "expected a parse failure")

let qcheck_csr_degree_sum =
  QCheck.Test.make ~name:"sum of out-degrees = edge count" ~count:100
    QCheck.(pair (int_range 1 60) (int_bound 300))
    (fun (n, m) ->
      let rng = Rng.create (n + (m * 1000)) in
      let el = Generators.erdos_renyi ~rng ~num_vertices:n ~num_edges:m () in
      let g = Csr.of_edge_list el in
      Array.fold_left ( + ) 0 (Csr.out_degrees g) = Csr.num_edges g)

let qcheck_symmetrized_is_symmetric =
  QCheck.Test.make ~name:"symmetrized graphs are symmetric" ~count:50
    QCheck.(pair (int_range 2 40) (int_bound 200))
    (fun (n, m) ->
      let rng = Rng.create (n + (m * 77)) in
      let el = Generators.erdos_renyi ~rng ~num_vertices:n ~num_edges:m () in
      let g = Csr.of_edge_list (Edge_list.symmetrized el) in
      let ok = ref true in
      for u = 0 to n - 1 do
        Csr.iter_out g u (fun v _ -> if not (Csr.mem_edge g v u) then ok := false)
      done;
      !ok)

let random_graph seed ~n ~m =
  let rng = Rng.create seed in
  let el = Generators.erdos_renyi ~rng ~num_vertices:n ~num_edges:m () in
  Csr.of_edge_list (Generators.assign_weights ~rng ~lo:1 ~hi:1000 el)

(* compress . decode = id: the varint round-trip reproduces the exact
   edge list, including weights and empty neighbor lists. *)
let qcheck_compressed_roundtrip =
  QCheck.Test.make ~name:"compressed of_csr/to_csr is the identity" ~count:100
    QCheck.(pair (int_range 1 80) (int_bound 400))
    (fun (n, m) ->
      let g = random_graph (n + (m * 131)) ~n ~m in
      let c = Csr_compressed.of_csr g in
      Csr.to_edge_list (Csr_compressed.to_csr c) = Csr.to_edge_list g)

(* The in-register decoder agrees with plain CSR iteration per vertex
   (the round-trip above goes through the same decoder, but this checks
   the iteration order and degrees directly). *)
let qcheck_compressed_iter_matches_plain =
  QCheck.Test.make ~name:"compressed iter_out matches plain" ~count:50
    QCheck.(pair (int_range 1 60) (int_bound 300))
    (fun (n, m) ->
      let g = random_graph (n + (m * 977)) ~n ~m in
      let c = Csr_compressed.of_csr g in
      let edges iter u =
        let acc = ref [] in
        iter u (fun v w -> acc := (v, w) :: !acc);
        List.rev !acc
      in
      let ok = ref (Csr_compressed.num_edges c = Csr.num_edges g) in
      for u = 0 to n - 1 do
        if Csr_compressed.out_degree c u <> Csr.out_degree g u then ok := false;
        if edges (Csr_compressed.iter_out c) u <> edges (Csr.iter_out g) u then
          ok := false
      done;
      !ok)

let reorder_of kind g coords =
  match Reorder.of_kind kind ~csr:g ~coords with
  | Ok r -> r
  | Error msg -> Alcotest.fail msg

(* reorder . unreorder = id, for every pass: vertex ids round-trip, value
   arrays round-trip, and the relabeled graph is the original up to the
   permutation. *)
let qcheck_reorder_roundtrip =
  QCheck.Test.make ~name:"reorder apply/unapply is the identity" ~count:50
    QCheck.(pair (int_range 1 60) (int_bound 300))
    (fun (n, m) ->
      let g = random_graph (n + (m * 313)) ~n ~m in
      let coords =
        Some (Coords.create (Array.init n float_of_int)
                (Array.init n (fun i -> float_of_int (i * 7 mod 13))))
      in
      List.for_all
        (fun kind ->
          let r = reorder_of kind g coords in
          let vertices_ok = ref true in
          for v = 0 to n - 1 do
            if Reorder.unapply_vertex r (Reorder.apply_vertex r v) <> v then
              vertices_ok := false
          done;
          let values = Array.init n (fun i -> i * 31) in
          let values_ok =
            Reorder.unapply_values r (Reorder.apply_values r values) = values
          in
          let g' = Csr.of_edge_list (Reorder.apply_edge_list r (Csr.to_edge_list g)) in
          let edges_ok = ref (Csr.num_edges g' = Csr.num_edges g) in
          for u = 0 to n - 1 do
            Csr.iter_out g u (fun v w ->
                let u' = Reorder.apply_vertex r u
                and v' = Reorder.apply_vertex r v in
                if not (Csr.mem_edge g' u' v') then edges_ok := false;
                ignore w)
          done;
          !vertices_ok && values_ok && !edges_ok)
        Reorder.all_kinds)

(* Reordering only relabels: SSSP distances mapped back through the
   permutation equal the distances on the original ids. *)
let test_reorder_preserves_sssp () =
  let g = random_graph 2026 ~n:60 ~m:400 in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  List.iter
    (fun kind ->
      let r = reorder_of kind g None in
      let g' = Csr.of_edge_list (Reorder.apply_edge_list r (Csr.to_edge_list g)) in
      let dist' =
        Algorithms.Dijkstra.distances g' ~source:(Reorder.apply_vertex r 0)
      in
      Alcotest.(check bool)
        (Reorder.kind_to_string kind ^ " distances survive relabeling")
        true
        (Reorder.unapply_values r dist' = expected))
    [ Reorder.Degree; Reorder.Bfs ]

let with_temp_bin f =
  let path = Filename.temp_file "graphit_test" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_graph_bin_roundtrip () =
  let g = random_graph 77 ~n:50 ~m:260 in
  List.iter
    (fun kind ->
      with_temp_bin (fun path ->
          Graph_bin.save path ~layout:kind g;
          Alcotest.(check bool) "magic sniff" true (Graph_bin.is_graph_bin path);
          let loaded = Graph_bin.load path in
          Alcotest.(check bool)
            (Layout.kind_to_string kind ^ " layout preserved")
            true
            (Layout.kind loaded = kind);
          Alcotest.(check bool)
            (Layout.kind_to_string kind ^ " round-trip")
            true
            (Csr.to_edge_list (Layout.to_csr loaded) = Csr.to_edge_list g)))
    Layout.all_kinds

let test_graph_bin_rejects_garbage () =
  with_temp_bin (fun path ->
      let oc = open_out_bin path in
      output_string oc "# 3 2\n0 1 5\n1 2 4\n";
      close_out oc;
      Alcotest.(check bool) "text is not GRAPHBIN" false
        (Graph_bin.is_graph_bin path);
      match Graph_bin.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected load to fail on a text file")

let test_graph_bin_rejects_truncation () =
  let g = random_graph 78 ~n:40 ~m:200 in
  with_temp_bin (fun path ->
      Graph_bin.save path g;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full / 2));
      close_out oc;
      (* The magic still matches — only the payload is short. *)
      Alcotest.(check bool) "magic intact" true (Graph_bin.is_graph_bin path);
      match Graph_bin.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected load to fail on a truncated file")

let () =
  Alcotest.run "graphs"
    [
      ( "edge_list",
        [
          Alcotest.test_case "validation" `Quick test_edge_list_validation;
          Alcotest.test_case "dedup" `Quick test_edge_list_dedup;
          Alcotest.test_case "symmetrized" `Quick test_edge_list_symmetrized;
          QCheck_alcotest.to_alcotest qcheck_symmetrized_is_symmetric;
        ] );
      ( "csr",
        [
          Alcotest.test_case "structure" `Quick test_csr_structure;
          Alcotest.test_case "roundtrip/transpose" `Quick
            test_csr_roundtrip_and_transpose;
          QCheck_alcotest.to_alcotest qcheck_csr_degree_sum;
        ] );
      ( "generators",
        [
          Alcotest.test_case "rmat" `Quick test_rmat_properties;
          Alcotest.test_case "road grid" `Quick test_road_grid_properties;
          Alcotest.test_case "weights" `Quick test_weight_assignment;
          Alcotest.test_case "fixed shapes" `Quick test_fixed_shapes;
        ] );
      ( "io",
        [
          Alcotest.test_case "edge list roundtrip" `Quick test_io_edge_list_roundtrip;
          Alcotest.test_case "dimacs roundtrip" `Quick test_io_dimacs_roundtrip;
          Alcotest.test_case "coords roundtrip" `Quick test_io_coords_roundtrip;
          Alcotest.test_case "malformed input" `Quick test_io_malformed;
        ] );
      ( "compressed",
        [
          QCheck_alcotest.to_alcotest qcheck_compressed_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_compressed_iter_matches_plain;
        ] );
      ( "reorder",
        [
          QCheck_alcotest.to_alcotest qcheck_reorder_roundtrip;
          Alcotest.test_case "sssp survives relabeling" `Quick
            test_reorder_preserves_sssp;
        ] );
      ( "graph_bin",
        [
          Alcotest.test_case "roundtrip both layouts" `Quick
            test_graph_bin_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_graph_bin_rejects_garbage;
          Alcotest.test_case "rejects truncation" `Quick
            test_graph_bin_rejects_truncation;
        ] );
    ]
