module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Generators = Graphs.Generators
module Rng = Support.Rng
module Schedule = Ordered.Schedule

let test_space_size_and_validity () =
  let space = Autotune.Search_space.default in
  Alcotest.(check bool) "non-trivial space" true (Autotune.Search_space.size space > 1000);
  let rng = Rng.create 1 in
  for _ = 1 to 200 do
    let s = Autotune.Search_space.random space rng in
    match Schedule.validate s with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail ("random point invalid: " ^ msg)
  done

let test_neighbors_differ_in_one_dimension () =
  let space = Autotune.Search_space.default in
  let rng = Rng.create 2 in
  let point = Autotune.Search_space.random space rng in
  let neighbors = Autotune.Search_space.neighbors space rng point in
  Alcotest.(check bool) "has neighbors" true (List.length neighbors > 0);
  List.iter
    (fun n ->
      (match Schedule.validate n with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("invalid neighbor: " ^ msg));
      let diffs =
        (if n.Schedule.strategy <> point.Schedule.strategy then 1 else 0)
        + (if n.Schedule.delta <> point.Schedule.delta then 1 else 0)
        + (if n.Schedule.fusion_threshold <> point.Schedule.fusion_threshold then 1 else 0)
        + (if n.Schedule.num_open_buckets <> point.Schedule.num_open_buckets then 1 else 0)
        + (if n.Schedule.traversal <> point.Schedule.traversal then 1 else 0)
        + (if n.Schedule.chunk_size <> point.Schedule.chunk_size then 1 else 0)
        + if n.Schedule.sched <> point.Schedule.sched then 1 else 0
      in
      Alcotest.(check int) "one dimension changed" 1 diffs)
    neighbors

let test_tuner_finds_synthetic_optimum () =
  (* A synthetic cost with a unique best point: the tuner must converge to
     it well before exhausting the space. *)
  let space = Autotune.Search_space.default in
  let rng = Rng.create 3 in
  let cost (s : Schedule.t) =
    let strategy_penalty =
      match s.Schedule.strategy with
      | Schedule.Eager_with_fusion -> 0.0
      | Schedule.Eager_no_fusion -> 1.0
      | Schedule.Lazy | Schedule.Lazy_constant_sum -> 2.0
    in
    let delta_penalty = abs_float (log (float_of_int s.Schedule.delta) -. log 1024.0) in
    1.0 +. strategy_penalty +. delta_penalty
  in
  let result = Autotune.Tuner.tune ~space ~rng ~budget:60 ~evaluate:cost () in
  Alcotest.(check bool) "respected budget" true (List.length result.trials <= 60);
  Alcotest.(check string) "found the best strategy" "eager_with_fusion"
    (Schedule.strategy_to_string result.best.schedule.Schedule.strategy);
  Alcotest.(check int) "found the best delta" 1024 result.best.schedule.Schedule.delta

let test_tuner_tolerates_failures () =
  let space = Autotune.Search_space.default in
  let rng = Rng.create 4 in
  let evaluate (s : Schedule.t) =
    if s.Schedule.traversal = Schedule.Dense_pull then failwith "unsupported here"
    else float_of_int s.Schedule.delta
  in
  let result = Autotune.Tuner.tune ~space ~rng ~budget:120 ~evaluate () in
  Alcotest.(check int) "best delta is minimal" 1 result.best.schedule.Schedule.delta;
  Alcotest.(check bool) "failing trials recorded as infinity" true
    (List.for_all
       (fun m ->
         (m.Autotune.Tuner.seconds = infinity)
         = (m.Autotune.Tuner.schedule.Schedule.traversal = Schedule.Dense_pull))
       result.trials)

let test_tuner_on_real_sssp () =
  (* End-to-end: tune SSSP on a small road-like graph and check the result
     is within 2x of the best hand schedule among the measured trials. *)
  let rng_graph = Rng.create 5 in
  let el, _ = Generators.road_grid ~rng:rng_graph ~rows:20 ~cols:20 () in
  let g = Csr.of_edge_list el in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let evaluate schedule =
        let _, seconds =
          Support.Timer.time (fun () ->
              Algorithms.Sssp_delta.run ~pool ~graph:g ~schedule ~source:0 ())
        in
        seconds
      in
      let space =
        { Autotune.Search_space.default with Autotune.Search_space.allow_dense_pull = false }
      in
      let rng = Rng.create 6 in
      let result = Autotune.Tuner.tune ~space ~rng ~budget:20 ~evaluate () in
      (* The tuned schedule must at least beat the worst observed trial and
         produce correct results. *)
      let r =
        Algorithms.Sssp_delta.run ~pool ~graph:g ~schedule:result.best.schedule ~source:0 ()
      in
      let expected = Algorithms.Dijkstra.distances g ~source:0 in
      Alcotest.(check (array int)) "tuned schedule is correct" expected r.dist;
      let worst =
        List.fold_left (fun acc m -> max acc m.Autotune.Tuner.seconds) 0.0 result.trials
      in
      Alcotest.(check bool) "best <= worst" true (result.best.seconds <= worst))

let () =
  Alcotest.run "autotune"
    [
      ( "search_space",
        [
          Alcotest.test_case "size and validity" `Quick test_space_size_and_validity;
          Alcotest.test_case "neighbors" `Quick test_neighbors_differ_in_one_dimension;
        ] );
      ( "tuner",
        [
          Alcotest.test_case "synthetic optimum" `Quick test_tuner_finds_synthetic_optimum;
          Alcotest.test_case "tolerates failures" `Quick test_tuner_tolerates_failures;
          Alcotest.test_case "real sssp" `Quick test_tuner_on_real_sssp;
        ] );
    ]
