module Bucket_order = Bucketing.Bucket_order
module Lazy_buckets = Bucketing.Lazy_buckets
module Eager_buckets = Bucketing.Eager_buckets
module Update_buffer = Bucketing.Update_buffer
module Histogram = Bucketing.Histogram
module Atomic_array = Parallel.Atomic_array

let test_key_normalization () =
  let key = Bucket_order.key_of_priority in
  Alcotest.(check int) "lower delta 1" 7 (key ~direction:Lower_first ~delta:1 7);
  Alcotest.(check int) "lower coarsened" 3 (key ~direction:Lower_first ~delta:10 35);
  Alcotest.(check int) "higher negates" (-3) (key ~direction:Higher_first ~delta:10 35);
  Alcotest.(check int) "null maps to null key" Bucket_order.null_key
    (key ~direction:Lower_first ~delta:4 Bucket_order.null_priority);
  (* Lower-first: smaller priorities get smaller keys; higher-first: larger
     priorities get smaller keys — both process smallest key first. *)
  Alcotest.(check bool) "lower order" true
    (key ~direction:Lower_first ~delta:1 2 < key ~direction:Lower_first ~delta:1 9);
  Alcotest.(check bool) "higher order" true
    (key ~direction:Higher_first ~delta:1 9 < key ~direction:Higher_first ~delta:1 2)

let test_key_validation () =
  Alcotest.check_raises "negative priority"
    (Invalid_argument "Bucket_order: priorities must be non-negative") (fun () ->
      ignore (Bucket_order.key_of_priority ~direction:Lower_first ~delta:1 (-1)));
  Alcotest.check_raises "bad delta"
    (Invalid_argument "Bucket_order: delta must be positive") (fun () ->
      ignore (Bucket_order.key_of_priority ~direction:Lower_first ~delta:0 5))

let test_representative () =
  Alcotest.(check int) "lower" 30
    (Bucket_order.representative_priority ~direction:Lower_first ~delta:10 3);
  Alcotest.(check int) "higher" 30
    (Bucket_order.representative_priority ~direction:Higher_first ~delta:10 (-3))

let test_direction_strings () =
  Alcotest.(check bool) "parse lower" true
    (Bucket_order.direction_of_string "lower_first" = Ok Bucket_order.Lower_first);
  Alcotest.(check bool) "parse higher" true
    (Bucket_order.direction_of_string "higher_first" = Ok Bucket_order.Higher_first);
  Alcotest.(check bool) "reject junk" true
    (match Bucket_order.direction_of_string "sideways" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Lazy buckets against a priority-vector model: repeatedly lower some
   priorities, insert the changed vertices, and check that extraction
   yields each vertex exactly once, at its final bucket, in key order.  *)

let drain_lazy lb =
  let rec go acc =
    match Lazy_buckets.next_bucket lb with
    | None -> List.rev acc
    | Some (key, members) -> go ((key, Array.to_list members) :: acc)
  in
  go []

let test_lazy_basic_extraction () =
  let priorities = Atomic_array.of_array [| 5; 3; 5; 8; 1 |] in
  let lb =
    Lazy_buckets.create ~num_vertices:5 ~num_open:4
      ~source:(Lazy_buckets.Vector (priorities, Bucket_order.Lower_first, 1))
      ()
  in
  Lazy_buckets.insert_all lb;
  let buckets = drain_lazy lb in
  Alcotest.(check (list (pair int (list int))))
    "keys ascend, members grouped"
    [ (1, [ 4 ]); (3, [ 1 ]); (5, [ 0; 2 ]); (8, [ 3 ]) ]
    buckets

let test_lazy_overflow_rematerialization () =
  (* num_open = 2 forces several window rematerializations. *)
  let priorities = Atomic_array.of_array [| 0; 10; 20; 30; 40 |] in
  let lb =
    Lazy_buckets.create ~num_vertices:5 ~num_open:2
      ~source:(Lazy_buckets.Vector (priorities, Bucket_order.Lower_first, 1))
      ()
  in
  Lazy_buckets.insert_all lb;
  let keys = List.map fst (drain_lazy lb) in
  Alcotest.(check (list int)) "all buckets found in order" [ 0; 10; 20; 30; 40 ] keys

let test_lazy_stale_copies_filtered () =
  let priorities = Atomic_array.of_array [| 9; 9 |] in
  let lb =
    Lazy_buckets.create ~num_vertices:2 ~num_open:16
      ~source:(Lazy_buckets.Vector (priorities, Bucket_order.Lower_first, 1))
      ()
  in
  Lazy_buckets.insert_all lb;
  (* Vertex 0 improves to 4: a stale copy remains filed under 9. *)
  Atomic_array.set priorities 0 4;
  Lazy_buckets.insert lb 0;
  let buckets = drain_lazy lb in
  Alcotest.(check (list (pair int (list int))))
    "vertex 0 extracted once, at its final bucket"
    [ (4, [ 0 ]); (9, [ 1 ]) ]
    buckets

let test_lazy_null_priorities_ignored () =
  let priorities =
    Atomic_array.of_array [| 2; Bucket_order.null_priority; 7 |]
  in
  let lb =
    Lazy_buckets.create ~num_vertices:3 ~num_open:8
      ~source:(Lazy_buckets.Vector (priorities, Bucket_order.Lower_first, 1))
      ()
  in
  Lazy_buckets.insert_all lb;
  let buckets = drain_lazy lb in
  Alcotest.(check (list (pair int (list int))))
    "null vertex never appears"
    [ (2, [ 0 ]); (7, [ 2 ]) ]
    buckets;
  Alcotest.(check int) "only 2 accepted inserts" 2 (Lazy_buckets.total_inserts lb)

let test_lazy_closure_source () =
  let pri = [| 4; 2; 4 |] in
  let lb =
    Lazy_buckets.create ~num_vertices:3 ~num_open:4
      ~source:(Lazy_buckets.Closure (fun v -> pri.(v)))
      ()
  in
  Lazy_buckets.insert_all lb;
  Alcotest.(check (list (pair int (list int))))
    "closure-computed keys"
    [ (2, [ 1 ]); (4, [ 0; 2 ]) ]
    (drain_lazy lb)

let test_lazy_higher_first () =
  let priorities = Atomic_array.of_array [| 5; 9; 1 |] in
  let lb =
    Lazy_buckets.create ~num_vertices:3 ~num_open:4
      ~source:(Lazy_buckets.Vector (priorities, Bucket_order.Higher_first, 1))
      ()
  in
  Lazy_buckets.insert_all lb;
  let order = List.concat_map snd (drain_lazy lb) in
  Alcotest.(check (list int)) "highest priority first" [ 1; 0; 2 ] order

let test_lazy_stale_overflow_not_rematerialized () =
  (* Regression: with a tiny window, a vertex whose priority drops from the
     overflow range into an already-processed bucket must NOT be emitted
     again at window re-materialization (double emission double-peels in
     k-core). *)
  let priorities = Atomic_array.of_array [| 1; 50; 60 |] in
  let lb =
    Lazy_buckets.create ~num_vertices:3 ~num_open:2
      ~source:(Lazy_buckets.Vector (priorities, Bucket_order.Lower_first, 1))
      ()
  in
  Lazy_buckets.insert_all lb;
  (* Vertex 1 (key 50, in overflow) improves to key 1 while bucket 1 is
     current; it is re-inserted and must be processed exactly once. *)
  (match Lazy_buckets.next_bucket lb with
  | Some (1, [| 0 |]) -> ()
  | _ -> Alcotest.fail "expected bucket 1 = {0}");
  Atomic_array.set priorities 1 1;
  Lazy_buckets.insert lb 1;
  (match Lazy_buckets.next_bucket lb with
  | Some (1, [| 1 |]) -> ()
  | other ->
      Alcotest.failf "expected bucket 1 = {1}, got %s"
        (match other with
        | None -> "None"
        | Some (k, m) ->
            Printf.sprintf "(%d, [%s])" k
              (String.concat ";" (Array.to_list (Array.map string_of_int m)))));
  (* The stale overflow copy of vertex 1 (key 1 <= cursor) must be dropped;
     only vertex 2 remains. *)
  let rest = drain_lazy lb in
  Alcotest.(check (list (pair int (list int)))) "only vertex 2 remains"
    [ (60, [ 2 ]) ]
    rest

(* Interleaved insert/extract trace against a multiset model: every vertex
   is emitted exactly once, at its final key, regardless of window size. *)
let qcheck_lazy_interleaved_no_double_emission =
  QCheck.Test.make ~name:"lazy buckets never emit a vertex twice (interleaved)"
    ~count:200
    QCheck.(
      triple (int_range 1 4) (int_range 1 20)
        (list (pair (int_bound 19) (int_bound 60))))
    (fun (num_open, n, updates) ->
      let priorities = Atomic_array.make n Bucket_order.null_priority in
      let lb =
        Lazy_buckets.create ~num_vertices:n ~num_open
          ~source:(Lazy_buckets.Vector (priorities, Bucket_order.Lower_first, 1))
          ()
      in
      let emitted = Array.make n 0 in
      let wrong_bucket = ref false in
      let drain_one () =
        match Lazy_buckets.next_bucket lb with
        | None -> ()
        | Some (key, members) ->
            Array.iter
              (fun v ->
                emitted.(v) <- emitted.(v) + 1;
                if Atomic_array.get priorities v <> key then wrong_bucket := true)
              members
      in
      List.iteri
        (fun i (v, p) ->
          let v = v mod n in
          (* Only monotone decreases, and never behind the cursor (the
             runtime guarantees both). *)
          let p = max p (Lazy_buckets.current_key lb) in
          if p < Atomic_array.get priorities v then begin
            Atomic_array.set priorities v p;
            Lazy_buckets.insert lb v
          end;
          if i mod 3 = 0 then drain_one ())
        updates;
      let rec drain_all () =
        match Lazy_buckets.next_bucket lb with
        | None -> ()
        | Some (key, members) ->
            Array.iter
              (fun v ->
                emitted.(v) <- emitted.(v) + 1;
                if Atomic_array.get priorities v <> key then wrong_bucket := true)
              members;
            drain_all ()
      in
      drain_all ();
      (not !wrong_bucket) && Array.for_all (fun c -> c <= 1) emitted)

(* Random trace against a model: final extraction order must equal sorting
   vertices by their final key. *)
let qcheck_lazy_matches_model =
  QCheck.Test.make ~name:"lazy buckets extract by final priority" ~count:100
    QCheck.(triple (int_range 1 30) (int_range 1 8) (list (pair (int_bound 29) (int_bound 100))))
    (fun (n, num_open, updates) ->
      let priorities = Atomic_array.make n Bucket_order.null_priority in
      let lb =
        Lazy_buckets.create ~num_vertices:n ~num_open
          ~source:(Lazy_buckets.Vector (priorities, Bucket_order.Lower_first, 1))
          ()
      in
      (* Monotonically decreasing updates, as the runtime guarantees. *)
      List.iter
        (fun (v, p) ->
          let v = v mod n in
          if p < Atomic_array.get priorities v then begin
            Atomic_array.set priorities v p;
            Lazy_buckets.insert lb v
          end)
        updates;
      let extracted = List.concat_map snd (drain_lazy lb) in
      let expected =
        List.init n (fun v -> (Atomic_array.get priorities v, v))
        |> List.filter (fun (p, _) -> p <> Bucket_order.null_priority)
        |> List.sort compare |> List.map snd
      in
      List.sort compare extracted = List.sort compare expected
      && List.length extracted = List.length expected)

(* ------------------------------------------------------------------ *)

let test_eager_basic () =
  let eb = Eager_buckets.create ~num_workers:2 ~min_key:0 () in
  Eager_buckets.insert eb ~tid:0 ~vertex:10 ~key:3;
  Eager_buckets.insert eb ~tid:1 ~vertex:11 ~key:1;
  Eager_buckets.insert eb ~tid:1 ~vertex:12 ~key:3;
  Alcotest.(check (option int)) "min key across workers" (Some 1)
    (Eager_buckets.next_global_key eb);
  Alcotest.(check (array int)) "drain key 1" [| 11 |] (Eager_buckets.drain_global eb ~key:1);
  Alcotest.(check (option int)) "next key" (Some 3) (Eager_buckets.next_global_key eb);
  let drained = Eager_buckets.drain_global eb ~key:3 in
  Array.sort compare drained;
  Alcotest.(check (array int)) "drain both workers" [| 10; 12 |] drained;
  Alcotest.(check (option int)) "exhausted" None (Eager_buckets.next_global_key eb);
  Alcotest.(check int) "insert count" 3 (Eager_buckets.total_inserts eb)

let test_eager_null_ignored () =
  let eb = Eager_buckets.create ~num_workers:1 ~min_key:0 () in
  Eager_buckets.insert eb ~tid:0 ~vertex:5 ~key:Bucket_order.null_key;
  Alcotest.(check (option int)) "nothing inserted" None (Eager_buckets.next_global_key eb);
  Alcotest.(check int) "no inserts" 0 (Eager_buckets.total_inserts eb)

let test_eager_take_local_for_fusion () =
  let eb = Eager_buckets.create ~num_workers:2 ~min_key:0 () in
  Eager_buckets.insert eb ~tid:0 ~vertex:1 ~key:2;
  Eager_buckets.insert eb ~tid:0 ~vertex:2 ~key:2;
  Eager_buckets.insert eb ~tid:1 ~vertex:3 ~key:2;
  ignore (Eager_buckets.next_global_key eb);
  Alcotest.(check int) "local size tid 0" 2 (Eager_buckets.local_size eb ~tid:0 ~key:2);
  (match Eager_buckets.take_local eb ~tid:0 ~key:2 with
  | Some bin ->
      Array.sort compare bin;
      Alcotest.(check (array int)) "take only own bin" [| 1; 2 |] bin
  | None -> Alcotest.fail "expected a bin");
  Alcotest.(check bool) "second take empty" true
    (Eager_buckets.take_local eb ~tid:0 ~key:2 = None);
  (* tid 1's bin is untouched and still reachable globally. *)
  Alcotest.(check (array int)) "other worker bin intact" [| 3 |]
    (Eager_buckets.drain_global eb ~key:2)

let test_eager_clamps_behind_cursor () =
  let eb = Eager_buckets.create ~num_workers:1 ~min_key:0 () in
  Eager_buckets.insert eb ~tid:0 ~vertex:1 ~key:5;
  Alcotest.(check (option int)) "cursor at 5" (Some 5) (Eager_buckets.next_global_key eb);
  ignore (Eager_buckets.drain_global eb ~key:5);
  (* An insert with a key behind the cursor lands in the current bucket. *)
  Eager_buckets.insert eb ~tid:0 ~vertex:2 ~key:3;
  Alcotest.(check (option int)) "clamped to cursor" (Some 5)
    (Eager_buckets.next_global_key eb)

let test_eager_negative_keys () =
  (* Higher-first algorithms produce negative keys. *)
  let eb = Eager_buckets.create ~num_workers:1 ~min_key:(-10) () in
  Eager_buckets.insert eb ~tid:0 ~vertex:1 ~key:(-10);
  Eager_buckets.insert eb ~tid:0 ~vertex:2 ~key:(-4);
  Alcotest.(check (option int)) "min negative key" (Some (-10))
    (Eager_buckets.next_global_key eb)

let qcheck_eager_global_order =
  QCheck.Test.make ~name:"eager global extraction is nondecreasing in key" ~count:100
    QCheck.(list (pair (int_bound 3) (int_bound 20)))
    (fun inserts ->
      let eb = Eager_buckets.create ~num_workers:4 ~min_key:0 () in
      List.iteri
        (fun i (tid, key) -> Eager_buckets.insert eb ~tid ~vertex:i ~key)
        inserts;
      let rec drain last acc =
        match Eager_buckets.next_global_key eb with
        | None -> (last, acc)
        | Some key ->
            let members = Eager_buckets.drain_global eb ~key in
            if key < last then (key, -1)
            else drain key (acc + Array.length members)
      in
      let _, drained = drain min_int 0 in
      drained = List.length inserts)

(* ------------------------------------------------------------------ *)

let test_update_buffer_dedup () =
  let b = Update_buffer.create ~num_vertices:10 ~num_workers:2 () in
  Alcotest.(check bool) "first add" true (Update_buffer.try_add b ~tid:0 3);
  Alcotest.(check bool) "duplicate rejected" false (Update_buffer.try_add b ~tid:1 3);
  Alcotest.(check bool) "other vertex" true (Update_buffer.try_add b ~tid:1 7);
  Alcotest.(check int) "size" 2 (Update_buffer.size b);
  let drained = ref [] in
  Update_buffer.drain b (fun v -> drained := v :: !drained);
  Alcotest.(check (list int)) "drained" [ 3; 7 ] (List.sort compare !drained);
  (* Flags reset: the vertex can be buffered again next round. *)
  Alcotest.(check bool) "re-add after drain" true (Update_buffer.try_add b ~tid:0 3);
  Alcotest.(check int) "lifetime count" 2 (Update_buffer.total_added b)

let test_histogram_reduce () =
  let h = Histogram.create ~num_workers:2 () in
  Histogram.record h ~tid:0 4;
  Histogram.record h ~tid:1 4;
  Histogram.record h ~tid:0 4;
  Histogram.record h ~tid:1 9;
  Alcotest.(check int) "events" 4 (Histogram.events h);
  let scratch = Array.make 10 0 in
  let seen = ref [] in
  Histogram.reduce h ~scratch (fun ~vertex ~count -> seen := (vertex, count) :: !seen);
  Alcotest.(check (list (pair int int)))
    "counts per distinct vertex"
    [ (4, 3); (9, 1) ]
    (List.sort compare !seen);
  Alcotest.(check bool) "scratch rezeroed" true (Array.for_all (( = ) 0) scratch);
  Alcotest.(check int) "logs cleared" 0 (Histogram.events h);
  Alcotest.(check int) "lifetime events" 4 (Histogram.total_events h)

(* ------------------------------------------------------------------ *)

let directions = [ Bucket_order.Lower_first; Bucket_order.Higher_first ]

(* Priority order must survive the key mapping: the bucket structure
   processes smaller keys first, so a better priority may never land in a
   later bucket, for either direction and any coarsening. *)
let qcheck_key_monotone =
  QCheck.Test.make ~name:"key_of_priority is monotone in priority" ~count:200
    QCheck.(triple (int_range 1 16) (int_bound 10_000) (int_bound 10_000))
    (fun (delta, p, q) ->
      let lo = min p q and hi = max p q in
      List.for_all
        (fun direction ->
          let key = Bucket_order.key_of_priority ~direction ~delta in
          match direction with
          | Bucket_order.Lower_first -> key lo <= key hi
          | Bucket_order.Higher_first -> key lo >= key hi)
        directions)

(* getCurrentPriority round-trip: the representative priority of a bucket
   maps back to that bucket, and no better priority shares it shifted. *)
let qcheck_representative_roundtrip =
  QCheck.Test.make ~name:"representative_priority inverts key_of_priority"
    ~count:200
    QCheck.(triple (int_range 1 16) (int_bound 10_000) (int_range 0 1))
    (fun (delta, p, dir_idx) ->
      let direction = List.nth directions dir_idx in
      let key = Bucket_order.key_of_priority ~direction ~delta p in
      let rep = Bucket_order.representative_priority ~direction ~delta key in
      Bucket_order.key_of_priority ~direction ~delta rep = key
      && rep <= p
      && (delta > 1 || rep = p))

(* The unreached sentinel lives strictly outside the real key space: it
   maps to null_key and every real priority maps before it. *)
let qcheck_null_priority_isolated =
  QCheck.Test.make ~name:"null_priority maps to null_key, real ones never do"
    ~count:200
    QCheck.(triple (int_range 1 16) (int_bound 1_000_000) (int_range 0 1))
    (fun (delta, p, dir_idx) ->
      let direction = List.nth directions dir_idx in
      let key = Bucket_order.key_of_priority ~direction ~delta in
      key Bucket_order.null_priority = Bucket_order.null_key
      && key p <> Bucket_order.null_key
      && key p < Bucket_order.null_key)

(* Histogram reduction equals the obvious sequential count, whatever the
   interleaving of workers and vertices, and a second round starts clean. *)
let qcheck_histogram_matches_model =
  QCheck.Test.make ~name:"histogram reduce = per-vertex event counts" ~count:100
    QCheck.(
      pair (int_range 1 4) (small_list (pair (int_bound 3) (int_bound 19))))
    (fun (num_workers, events) ->
      let events =
        List.map (fun (tid, v) -> (tid mod num_workers, v)) events
      in
      let h = Histogram.create ~num_workers () in
      List.iter (fun (tid, v) -> Histogram.record h ~tid v) events;
      let model = Array.make 20 0 in
      List.iter (fun (_, v) -> model.(v) <- model.(v) + 1) events;
      let scratch = Array.make 20 0 in
      let got = Array.make 20 0 in
      Histogram.reduce h ~scratch (fun ~vertex ~count -> got.(vertex) <- count);
      got = model
      && Array.for_all (( = ) 0) scratch
      && Histogram.events h = 0
      && Histogram.total_events h = List.length events)

let () =
  Alcotest.run "bucketing"
    [
      ( "bucket_order",
        [
          Alcotest.test_case "normalization" `Quick test_key_normalization;
          Alcotest.test_case "validation" `Quick test_key_validation;
          Alcotest.test_case "representative" `Quick test_representative;
          Alcotest.test_case "direction strings" `Quick test_direction_strings;
          QCheck_alcotest.to_alcotest qcheck_key_monotone;
          QCheck_alcotest.to_alcotest qcheck_representative_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_null_priority_isolated;
        ] );
      ( "lazy_buckets",
        [
          Alcotest.test_case "basic extraction" `Quick test_lazy_basic_extraction;
          Alcotest.test_case "overflow rematerialization" `Quick
            test_lazy_overflow_rematerialization;
          Alcotest.test_case "stale copies filtered" `Quick
            test_lazy_stale_copies_filtered;
          Alcotest.test_case "null ignored" `Quick test_lazy_null_priorities_ignored;
          Alcotest.test_case "closure source" `Quick test_lazy_closure_source;
          Alcotest.test_case "higher first" `Quick test_lazy_higher_first;
          Alcotest.test_case "stale overflow dropped (regression)" `Quick
            test_lazy_stale_overflow_not_rematerialized;
          QCheck_alcotest.to_alcotest qcheck_lazy_matches_model;
          QCheck_alcotest.to_alcotest qcheck_lazy_interleaved_no_double_emission;
        ] );
      ( "eager_buckets",
        [
          Alcotest.test_case "basic" `Quick test_eager_basic;
          Alcotest.test_case "null ignored" `Quick test_eager_null_ignored;
          Alcotest.test_case "take_local (fusion)" `Quick
            test_eager_take_local_for_fusion;
          Alcotest.test_case "clamps behind cursor" `Quick
            test_eager_clamps_behind_cursor;
          Alcotest.test_case "negative keys" `Quick test_eager_negative_keys;
          QCheck_alcotest.to_alcotest qcheck_eager_global_order;
        ] );
      ( "update_buffer",
        [ Alcotest.test_case "dedup and drain" `Quick test_update_buffer_dedup ] );
      ( "histogram",
        [
          Alcotest.test_case "reduce" `Quick test_histogram_reduce;
          QCheck_alcotest.to_alcotest qcheck_histogram_matches_model;
        ] );
    ]
