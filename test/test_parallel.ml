module Pool = Parallel.Pool
module Atomic_array = Parallel.Atomic_array
module Prefix_sum = Parallel.Prefix_sum

let worker_counts = [ 1; 2; 4 ]

let test_run_workers_covers_all_tids () =
  List.iter
    (fun w ->
      Pool.with_pool ~num_workers:w (fun pool ->
          let seen = Array.make w 0 in
          Pool.run_workers pool (fun tid -> seen.(tid) <- seen.(tid) + 1);
          Alcotest.(check (array int))
            (Printf.sprintf "every tid ran once (w=%d)" w)
            (Array.make w 1) seen))
    worker_counts

let test_run_workers_propagates_exception () =
  Pool.with_pool ~num_workers:3 (fun pool ->
      Alcotest.check_raises "exception reaches caller" (Failure "boom") (fun () ->
          Pool.run_workers pool (fun tid -> if tid = 2 then failwith "boom"));
      (* The pool must still be usable afterwards. *)
      let total = Atomic.make 0 in
      Pool.run_workers pool (fun _ -> ignore (Atomic.fetch_and_add total 1));
      Alcotest.(check int) "pool alive after exception" 3 (Atomic.get total))

let test_parallel_for_sums () =
  List.iter
    (fun w ->
      Pool.with_pool ~num_workers:w (fun pool ->
          let n = 10_000 in
          let hits = Atomic_array.make n 0 in
          Pool.parallel_for pool ~chunk:7 ~lo:0 ~hi:n (fun i ->
              ignore (Atomic_array.fetch_add hits i 1));
          let ok = ref true in
          for i = 0 to n - 1 do
            if Atomic_array.get hits i <> 1 then ok := false
          done;
          Alcotest.(check bool)
            (Printf.sprintf "each index exactly once (w=%d)" w)
            true !ok))
    worker_counts

let test_parallel_for_empty_range () =
  Pool.with_pool ~num_workers:2 (fun pool ->
      let ran = ref false in
      Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> ran := true);
      Pool.parallel_for pool ~lo:5 ~hi:2 (fun _ -> ran := true);
      Alcotest.(check bool) "no iterations" false !ran)

let test_parallel_for_reduce () =
  List.iter
    (fun w ->
      Pool.with_pool ~num_workers:w (fun pool ->
          let n = 5000 in
          let total =
            Pool.parallel_for_reduce pool ~chunk:13 ~lo:0 ~hi:n ~neutral:0
              ~combine:( + ) (fun i -> i)
          in
          Alcotest.(check int)
            (Printf.sprintf "sum 0..%d (w=%d)" (n - 1) w)
            (n * (n - 1) / 2)
            total))
    worker_counts

let test_parallel_for_tid () =
  Pool.with_pool ~num_workers:4 (fun pool ->
      let n = 1000 in
      let per_tid = Array.make 4 0 in
      let marks = Atomic_array.make n 0 in
      Pool.parallel_for_tid pool ~chunk:9 ~lo:0 ~hi:n (fun ~tid i ->
          per_tid.(tid) <- per_tid.(tid) + 1;
          ignore (Atomic_array.fetch_add marks i 1));
      Alcotest.(check int) "work conserved" n (Array.fold_left ( + ) 0 per_tid);
      let ok = ref true in
      for i = 0 to n - 1 do
        if Atomic_array.get marks i <> 1 then ok := false
      done;
      Alcotest.(check bool) "each index once" true !ok)

let test_atomic_fetch_min_max () =
  let a = Atomic_array.make 4 10 in
  Alcotest.(check bool) "min lowers" true (Atomic_array.fetch_min a 0 5);
  Alcotest.(check bool) "min no-op" false (Atomic_array.fetch_min a 0 7);
  Alcotest.(check int) "value after min" 5 (Atomic_array.get a 0);
  Alcotest.(check bool) "max raises" true (Atomic_array.fetch_max a 1 20);
  Alcotest.(check bool) "max no-op" false (Atomic_array.fetch_max a 1 15);
  Alcotest.(check int) "value after max" 20 (Atomic_array.get a 1)

let test_atomic_add_with_floor () =
  let a = Atomic_array.make 1 10 in
  (match Atomic_array.add_with_floor a 0 ~delta:(-3) ~floor:5 with
  | Some (before, after) ->
      Alcotest.(check (pair int int)) "decrement" (10, 7) (before, after)
  | None -> Alcotest.fail "expected a change");
  (match Atomic_array.add_with_floor a 0 ~delta:(-5) ~floor:5 with
  | Some (before, after) ->
      Alcotest.(check (pair int int)) "clamped at floor" (7, 5) (before, after)
  | None -> Alcotest.fail "expected a clamped change");
  Alcotest.(check bool) "no change at floor" true
    (Atomic_array.add_with_floor a 0 ~delta:(-1) ~floor:5 = None);
  (* Crucially: a decrement with a *higher* floor must not raise the value
     (finalized k-core vertices stay finalized). *)
  Alcotest.(check bool) "never raises toward floor" true
    (Atomic_array.add_with_floor a 0 ~delta:(-1) ~floor:9 = None);
  Alcotest.(check int) "value untouched" 5 (Atomic_array.get a 0)

let test_atomic_concurrent_min () =
  Pool.with_pool ~num_workers:4 (fun pool ->
      let a = Atomic_array.make 1 max_int in
      let wins = Atomic.make 0 in
      Pool.parallel_for pool ~chunk:1 ~lo:0 ~hi:1000 (fun i ->
          if Atomic_array.fetch_min a 0 (1000 - i) then
            ignore (Atomic.fetch_and_add wins 1));
      Alcotest.(check int) "final is global min" 1 (Atomic_array.get a 0);
      Alcotest.(check bool) "at least one win" true (Atomic.get wins >= 1))

let test_atomic_concurrent_fetch_add () =
  Pool.with_pool ~num_workers:4 (fun pool ->
      let a = Atomic_array.make 1 0 in
      Pool.parallel_for pool ~chunk:3 ~lo:0 ~hi:10_000 (fun _ ->
          ignore (Atomic_array.fetch_add a 0 1));
      Alcotest.(check int) "no lost updates" 10_000 (Atomic_array.get a 0))

let test_prefix_sum_small () =
  Alcotest.(check (array int)) "empty" [| 0 |] (Prefix_sum.exclusive [||]);
  Alcotest.(check (array int))
    "basic" [| 0; 1; 3; 6; 10 |]
    (Prefix_sum.exclusive [| 1; 2; 3; 4 |])

let qcheck_prefix_sum_parallel_matches =
  QCheck.Test.make ~name:"parallel prefix sum = sequential" ~count:50
    QCheck.(pair (array (int_bound 100)) (int_range 1 4))
    (fun (a, workers) ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          Prefix_sum.exclusive_parallel pool a = Prefix_sum.exclusive a))

let qcheck_prefix_sum_parallel_large =
  QCheck.Test.make ~name:"parallel prefix sum on large arrays" ~count:10
    (QCheck.int_range 4096 20000)
    (fun n ->
      let rng = Support.Rng.create n in
      let a = Array.init n (fun _ -> Support.Rng.int rng 50) in
      Pool.with_pool ~num_workers:4 (fun pool ->
          Prefix_sum.exclusive_parallel pool a = Prefix_sum.exclusive a))

(* ---- range API properties ---- *)

let sched_of_int = function
  | 0 -> Pool.Static
  | 1 -> Pool.Dynamic
  | _ -> Pool.Guided

let sched_name = function
  | Pool.Static -> "static"
  | Pool.Dynamic -> "dynamic"
  | Pool.Guided -> "guided"

(* Random (lo, hi, chunk, workers, sched) including empty/backwards ranges
   and chunks larger than the range. *)
let range_case =
  QCheck.(
    map
      (fun (lo, len, chunk, workers, s) -> (lo, lo + len, chunk, workers, sched_of_int s))
      (tup5 (int_range (-50) 200) (int_range (-10) 3000) (int_range 1 5000)
         (int_range 1 4) (int_range 0 2)))

let print_range_case (lo, hi, chunk, workers, sched) =
  Printf.sprintf "lo=%d hi=%d chunk=%d workers=%d sched=%s" lo hi chunk workers
    (sched_name sched)

let qcheck_ranges_cover_like_sequential =
  QCheck.Test.make ~name:"parallel_for_ranges = sequential loop" ~count:100
    (QCheck.make ~print:print_range_case (QCheck.gen range_case))
    (fun (lo, hi, chunk, workers, sched) ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          let n = max 0 (hi - lo) in
          let hits = Atomic_array.make (max n 1) 0 in
          Pool.parallel_for_ranges pool ~sched ~chunk ~lo ~hi (fun ~lo:rlo ~hi:rhi ->
              if rlo < lo || rhi > hi || rlo >= rhi then failwith "bad range";
              for i = rlo to rhi - 1 do
                ignore (Atomic_array.fetch_add hits (i - lo) 1)
              done);
          let ok = ref true in
          for i = 0 to n - 1 do
            if Atomic_array.get hits i <> 1 then ok := false
          done;
          !ok))

let qcheck_ranges_tid_partition =
  QCheck.Test.make ~name:"parallel_for_ranges_tid partitions work" ~count:100
    (QCheck.make ~print:print_range_case (QCheck.gen range_case))
    (fun (lo, hi, chunk, workers, sched) ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          let covered = Atomic.make 0 in
          Pool.parallel_for_ranges_tid pool ~sched ~chunk ~lo ~hi
            (fun ~tid ~lo:rlo ~hi:rhi ->
              if tid < 0 || tid >= workers then failwith "bad tid";
              ignore (Atomic.fetch_and_add covered (rhi - rlo)));
          Atomic.get covered = max 0 (hi - lo)))

let qcheck_reduce_matches_sequential =
  QCheck.Test.make ~name:"parallel_for_reduce = sequential fold" ~count:100
    (QCheck.make ~print:print_range_case (QCheck.gen range_case))
    (fun (lo, hi, chunk, workers, sched) ->
      Pool.with_pool ~num_workers:workers (fun pool ->
          let expected = ref 0 in
          for i = lo to hi - 1 do
            expected := !expected + (i * i)
          done;
          let got =
            Pool.parallel_for_reduce pool ~sched ~chunk ~lo ~hi ~neutral:0
              ~combine:( + ) (fun i -> i * i)
          in
          got = !expected))

let qcheck_exception_mid_range =
  QCheck.Test.make ~name:"exception mid-range propagates, pool survives" ~count:30
    QCheck.(tup2 (int_range 2 4) (int_range 0 2))
    (fun (workers, s) ->
      let sched = sched_of_int s in
      Pool.with_pool ~num_workers:workers (fun pool ->
          let raised =
            try
              Pool.parallel_for_ranges pool ~sched ~chunk:8 ~lo:0 ~hi:1000
                (fun ~lo ~hi:_ -> if lo >= 496 then failwith "mid-range");
              false
            with Failure msg -> msg = "mid-range"
          in
          (* The pool must stay usable after a worker threw. *)
          let total = Atomic.make 0 in
          Pool.parallel_for pool ~lo:0 ~hi:100 (fun _ ->
              ignore (Atomic.fetch_and_add total 1));
          raised && Atomic.get total = 100))

let test_spin_budget_zero_pool () =
  (* spin_budget 0 forces the pure condvar path of the barrier. *)
  let pool = Pool.create ~spin_budget:0 ~num_workers:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let hits = Atomic.make 0 in
      for _ = 1 to 50 do
        Pool.run_workers pool (fun _ -> ignore (Atomic.fetch_and_add hits 1))
      done;
      Alcotest.(check int) "all episodes complete" 150 (Atomic.get hits))

let test_barrier_wait_counter () =
  Pool.with_pool ~num_workers:2 (fun pool ->
      let before = Pool.barrier_wait_seconds pool in
      Alcotest.(check bool) "starts non-negative" true (before >= 0.0);
      for _ = 1 to 20 do
        Pool.run_workers pool (fun _ -> ())
      done;
      Alcotest.(check bool) "monotone" true
        (Pool.barrier_wait_seconds pool >= before))

let test_make_padded () =
  let a = Atomic_array.make_padded 5 7 in
  Alcotest.(check int) "length" 5 (Atomic_array.length a);
  for i = 0 to 4 do
    Alcotest.(check int) "initial" 7 (Atomic_array.get a i)
  done;
  Pool.with_pool ~num_workers:4 (fun pool ->
      Pool.parallel_for pool ~chunk:3 ~lo:0 ~hi:10_000 (fun i ->
          ignore (Atomic_array.fetch_add a (i mod 5) 1)));
  let total = ref 0 in
  for i = 0 to 4 do
    total := !total + Atomic_array.get a i - 7
  done;
  Alcotest.(check int) "no lost updates across padded cells" 10_000 !total;
  Alcotest.(check (array int))
    "to_array sees logical cells" [| 1; 2; 3 |]
    (Atomic_array.to_array (Atomic_array.of_array [| 1; 2; 3 |]))

let qcheck_drain_to_array_matches_drain =
  QCheck.Test.make ~name:"Update_buffer.drain_to_array = drain" ~count:50
    QCheck.(tup2 (int_range 1 4) (list_of_size (Gen.int_range 0 5000) (int_bound 999)))
    (fun (workers, adds) ->
      let module Ub = Bucketing.Update_buffer in
      Pool.with_pool ~num_workers:workers (fun pool ->
          let mk () =
            let b = Ub.create ~num_vertices:1000 ~num_workers:workers () in
            List.iteri
              (fun i v -> ignore (Ub.try_add b ~tid:(i mod workers) v))
              adds;
            b
          in
          let b1 = mk () and b2 = mk () in
          let via_drain = ref [] in
          Ub.drain b1 (fun v -> via_drain := v :: !via_drain);
          let expected = Array.of_list (List.rev !via_drain) in
          let got = Ub.drain_to_array b2 ~pool in
          got = expected
          && Ub.size b2 = 0
          && Ub.total_added b2 = Array.length expected
          (* Flags were reset: everything can be buffered again. *)
          && List.for_all Fun.id
               (List.sort_uniq compare (Array.to_list expected)
               |> List.map (fun v -> Ub.try_add b2 ~tid:0 v))))

let test_pool_invalid_args () =
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Pool.create: num_workers must be >= 1") (fun () ->
      ignore (Pool.create ~num_workers:0 ()));
  Pool.with_pool ~num_workers:1 (fun pool ->
      Alcotest.check_raises "bad chunk"
        (Invalid_argument "Pool.parallel_for: chunk must be >= 1") (fun () ->
          Pool.parallel_for pool ~chunk:0 ~lo:0 ~hi:10 ignore))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "run_workers covers tids" `Quick
            test_run_workers_covers_all_tids;
          Alcotest.test_case "exception propagation" `Quick
            test_run_workers_propagates_exception;
          Alcotest.test_case "parallel_for coverage" `Quick test_parallel_for_sums;
          Alcotest.test_case "empty range" `Quick test_parallel_for_empty_range;
          Alcotest.test_case "parallel_for_reduce" `Quick test_parallel_for_reduce;
          Alcotest.test_case "parallel_for_tid" `Quick test_parallel_for_tid;
          Alcotest.test_case "invalid args" `Quick test_pool_invalid_args;
          Alcotest.test_case "spin_budget 0 (condvar path)" `Quick
            test_spin_budget_zero_pool;
          Alcotest.test_case "barrier wait counter" `Quick test_barrier_wait_counter;
        ] );
      ( "ranges",
        [
          QCheck_alcotest.to_alcotest qcheck_ranges_cover_like_sequential;
          QCheck_alcotest.to_alcotest qcheck_ranges_tid_partition;
          QCheck_alcotest.to_alcotest qcheck_reduce_matches_sequential;
          QCheck_alcotest.to_alcotest qcheck_exception_mid_range;
        ] );
      ( "atomic_array",
        [
          Alcotest.test_case "fetch_min/max" `Quick test_atomic_fetch_min_max;
          Alcotest.test_case "add_with_floor" `Quick test_atomic_add_with_floor;
          Alcotest.test_case "concurrent min" `Quick test_atomic_concurrent_min;
          Alcotest.test_case "concurrent fetch_add" `Quick
            test_atomic_concurrent_fetch_add;
          Alcotest.test_case "make_padded" `Quick test_make_padded;
        ] );
      ( "update_buffer",
        [ QCheck_alcotest.to_alcotest qcheck_drain_to_array_matches_drain ] );
      ( "prefix_sum",
        [
          Alcotest.test_case "small cases" `Quick test_prefix_sum_small;
          QCheck_alcotest.to_alcotest qcheck_prefix_sum_parallel_matches;
          QCheck_alcotest.to_alcotest qcheck_prefix_sum_parallel_large;
        ] );
    ]
