module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Edge_list = Graphs.Edge_list
module Generators = Graphs.Generators
module Rng = Support.Rng
module Schedule = Ordered.Schedule

let apps_dir = "../examples/apps"
let app path = Filename.concat apps_dir path

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---------------- lexer ---------------- *)

let test_lexer_basics () =
  let tokens = Dsl.Lexer.tokenize "var x : int = 42; % comment\n x min= 3;" in
  let kinds = Array.to_list (Array.map (fun t -> t.Dsl.Token.token) tokens) in
  Alcotest.(check bool) "token stream" true
    (kinds
    = [
        Dsl.Token.Kw_var; Dsl.Token.Ident "x"; Dsl.Token.Colon; Dsl.Token.Ident "int";
        Dsl.Token.Assign; Dsl.Token.Int_lit 42; Dsl.Token.Semicolon;
        Dsl.Token.Ident "x"; Dsl.Token.Min_assign; Dsl.Token.Int_lit 3;
        Dsl.Token.Semicolon; Dsl.Token.Eof;
      ])

let test_lexer_label_and_strings () =
  let tokens = Dsl.Lexer.tokenize "#s1# \"lower_first\" -> ==" in
  let kinds = Array.to_list (Array.map (fun t -> t.Dsl.Token.token) tokens) in
  Alcotest.(check bool) "labels, strings, arrows" true
    (kinds
    = [
        Dsl.Token.Label "s1"; Dsl.Token.String_lit "lower_first"; Dsl.Token.Arrow;
        Dsl.Token.Eq; Dsl.Token.Eof;
      ])

let test_lexer_positions () =
  let tokens = Dsl.Lexer.tokenize "a\n  b" in
  Alcotest.(check int) "line of b" 2 tokens.(1).Dsl.Token.pos.Dsl.Pos.line;
  Alcotest.(check int) "col of b" 3 tokens.(1).Dsl.Token.pos.Dsl.Pos.col

let test_lexer_errors () =
  (match Dsl.Lexer.tokenize "a @ b" with
  | exception Dsl.Lexer.Error (_, msg) ->
      Alcotest.(check bool) "mentions the char" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected a lexer error");
  match Dsl.Lexer.tokenize "\"unterminated" with
  | exception Dsl.Lexer.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected unterminated string error"

(* ---------------- parser ---------------- *)

let test_parse_sssp_shape () =
  let program = Dsl.Parser.parse_string (read_file (app "sssp.gt")) in
  Alcotest.(check (list string)) "elements" [ "Vertex"; "Edge" ] program.Dsl.Ast.elements;
  Alcotest.(check (list string))
    "consts" [ "edges"; "dist"; "pq" ]
    (List.map (fun c -> c.Dsl.Ast.cname) program.Dsl.Ast.consts);
  Alcotest.(check (list string))
    "funcs" [ "updateEdge"; "main" ]
    (List.map (fun f -> f.Dsl.Ast.fname) program.Dsl.Ast.funcs);
  Alcotest.(check int) "schedule calls" 4 (List.length program.Dsl.Ast.schedule)

let test_parse_all_apps () =
  List.iter
    (fun name ->
      match Dsl.Parser.parse_string (read_file (app name)) with
      | _ -> ()
      | exception Dsl.Parser.Error (pos, msg) ->
          Alcotest.fail (Format.asprintf "%s: %a: %s" name Dsl.Pos.pp pos msg))
    [ "sssp.gt"; "wbfs.gt"; "ppsp.gt"; "astar.gt"; "kcore.gt"; "setcover.gt" ]

let test_parse_errors_are_located () =
  List.iter
    (fun (src, fragment) ->
      match Dsl.Parser.parse_string src with
      | _ -> Alcotest.fail ("expected parse error for: " ^ src)
      | exception Dsl.Parser.Error (pos, msg) ->
          Alcotest.(check bool)
            (Printf.sprintf "error %S mentions %S" msg fragment)
            true
            (pos.Dsl.Pos.line >= 1
            &&
            let re = Str.regexp_string fragment in
            (try ignore (Str.search_forward re msg 0); true with Not_found -> false)))
    [
      ("func f( end", "expected");
      ("const x : int = ;", "expression");
      ("element", "identifier");
      ("func main() var x : int = 1 end", "';'");
    ]

(* Diagnostics must point at the offending token, not the enclosing
   statement: shrunk differential repros (check_runner --dsl) are read by
   position. Here the invalid assignment target follows a scheduling
   label, so the statement start and the target differ. *)
let test_parse_error_positions_point_at_target () =
  List.iter
    (fun (src, line, col, fragment) ->
      match Dsl.Parser.parse_string src with
      | _ -> Alcotest.fail ("expected parse error for: " ^ src)
      | exception Dsl.Parser.Error (pos, msg) ->
          Alcotest.(check bool)
            (Printf.sprintf "error %S mentions %S" msg fragment)
            true
            (let re = Str.regexp_string fragment in
             try ignore (Str.search_forward re msg 0); true with Not_found -> false);
          Alcotest.(check int) (Printf.sprintf "%S line" src) line pos.Dsl.Pos.line;
          Alcotest.(check int) (Printf.sprintf "%S col" src) col pos.Dsl.Pos.col)
    [
      ("func main()\n    #s1# f(1) = 2;\nend", 2, 10, "assignment target");
      ( "func main()\n    #s1# f(1) min= 2;\nend",
        2,
        10,
        "reduction assignment" );
    ]

let test_operator_precedence () =
  let program =
    Dsl.Parser.parse_string
      "element Vertex end\nfunc main() var x : int = 1 + 2 * 3; end"
  in
  let f = List.hd program.Dsl.Ast.funcs in
  match f.Dsl.Ast.body with
  | [ { Dsl.Ast.sdesc = Dsl.Ast.S_var_decl (_, _, Some e); _ } ] -> (
      match e.Dsl.Ast.desc with
      | Dsl.Ast.Binop (Dsl.Ast.Add, { Dsl.Ast.desc = Dsl.Ast.Int_lit 1; _ }, rhs) -> (
          match rhs.Dsl.Ast.desc with
          | Dsl.Ast.Binop (Dsl.Ast.Mul, _, _) -> ()
          | _ -> Alcotest.fail "expected 2*3 on the right")
      | _ -> Alcotest.fail "expected 1 + (2*3)")
  | _ -> Alcotest.fail "unexpected body"

(* ---------------- typechecker ---------------- *)

let typecheck_errors src =
  match Dsl.Typecheck.check (Dsl.Parser.parse_string src) with
  | Ok () -> []
  | Error errors -> List.map (fun e -> e.Dsl.Typecheck.message) errors

let test_typecheck_apps () =
  List.iter
    (fun name ->
      match typecheck_errors (read_file (app name)) with
      | [] -> ()
      | errors -> Alcotest.fail (name ^ ": " ^ String.concat "; " errors))
    [ "sssp.gt"; "wbfs.gt"; "ppsp.gt"; "astar.gt"; "kcore.gt"; "setcover.gt" ]

let contains_substring haystack needle =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re haystack 0);
    true
  with Not_found -> false

let expect_type_error src fragment =
  let errors = typecheck_errors src in
  Alcotest.(check bool)
    (Printf.sprintf "expected error containing %S, got [%s]" fragment
       (String.concat "; " errors))
    true
    (List.exists (fun m -> contains_substring m fragment) errors)

let test_typecheck_vertexset_ops () =
  (* The unordered surface: new vertexset / addVertex / getVertexSetSize /
     applyModified must typecheck, and misuse must be reported. *)
  let ok =
    typecheck_errors
      "element Vertex end\nelement Edge end\n\
       const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);\n\
       const dist : vector{Vertex}(int) = INT_MAX;\n\
       func f(src : Vertex, dst : Vertex, w : int)\n\
       dist[dst] min= (dist[src] + w);\nend\n\
       func main()\n\
       var fr : vertexset{Vertex} = new vertexset{Vertex}(0);\n\
       fr.addVertex(0);\n\
       while (fr.getVertexSetSize() > 0)\n\
       fr = edges.from(fr).applyModified(f, dist);\nend\nend"
  in
  Alcotest.(check (list string)) "well typed" [] ok;
  expect_type_error
    "element Vertex end\nelement Edge end\n\
     const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);\n\
     func main()\n\
     var fr : vertexset{Vertex} = new vertexset{Vertex}(0);\n\
     fr.popVertex(0);\nend"
    "vertexsets have no method";
  expect_type_error
    "element Vertex end\nelement Edge end\n\
     const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);\n\
     func main()\n\
     var x : int = edges.applyModified(nosuch, edges);\nend"
    "unknown user function"

let test_typecheck_rejections () =
  expect_type_error "element Vertex end\nfunc main() var x : int = true; end"
    "initializer of x";
  expect_type_error "element Vertex end\nfunc main() x = 1; end" "unbound";
  expect_type_error
    "element Vertex end\nfunc main() var b : bool = 1 < true; end"
    "comparison operand";
  expect_type_error "func main() var v : vector{Vertex}(int) = 0; end"
    "unknown element type";
  expect_type_error
    "element Vertex end\nconst pq : priority_queue{Vertex}(int);\nfunc main()\n\
     pq = new priority_queue{Vertex}(int)(true, \"sideways\", pq);\nend"
    "priority direction";
  expect_type_error "element Vertex end\nfunc f(a : int) pq.finished(); end" "unbound";
  expect_type_error "element Vertex end\nfunc notmain() end" "no 'main'"

(* Type errors must sit on the offending sub-expression (the bad operand,
   the failing initializer), not the statement keyword. *)
let test_typecheck_error_positions () =
  List.iter
    (fun (src, line, col, fragment) ->
      let program = Dsl.Parser.parse_string src in
      match Dsl.Typecheck.check program with
      | Ok () -> Alcotest.fail ("expected type error for: " ^ src)
      | Error errors ->
          let describe (e : Dsl.Typecheck.error) =
            Format.asprintf "%a" Dsl.Typecheck.pp_error e
          in
          let hit =
            List.exists
              (fun (e : Dsl.Typecheck.error) ->
                e.Dsl.Typecheck.pos.Dsl.Pos.line = line
                && e.Dsl.Typecheck.pos.Dsl.Pos.col = col
                &&
                let re = Str.regexp_string fragment in
                try
                  ignore (Str.search_forward re e.Dsl.Typecheck.message 0);
                  true
                with Not_found -> false)
              errors
          in
          Alcotest.(check bool)
            (Printf.sprintf "%S at %d:%d (got: %s)" fragment line col
               (String.concat "; " (List.map describe errors)))
            true hit)
    [
      (* the bad operand [true], column 23, not the [var] keyword *)
      ( "element Vertex end\nfunc main()\n    var y : int = 1 + true;\nend",
        3,
        23,
        "arithmetic operand" );
      (* the int-typed condition, reported at the [+] building it *)
      ( "element Vertex end\nfunc main()\n    while 1 + 2\n    end\nend",
        3,
        13,
        "while condition" );
    ]

(* ---------------- analysis ---------------- *)

let analyze src =
  let program = Dsl.Parser.parse_string src in
  match Dsl.Analysis.analyze program with
  | Ok r -> r
  | Error e -> Alcotest.fail (Format.asprintf "%a" Dsl.Analysis.pp_error e)

let test_analysis_sssp () =
  let r = analyze (read_file (app "sssp.gt")) in
  let pq =
    match r.Dsl.Analysis.pq with
    | Some pq -> pq
    | None -> Alcotest.fail "priority queue not found"
  in
  Alcotest.(check string) "pq name" "pq" pq.Dsl.Analysis.pq_name;
  Alcotest.(check bool) "coarsening allowed" true pq.Dsl.Analysis.allow_coarsening;
  Alcotest.(check string) "priority vector" "dist" pq.Dsl.Analysis.priority_vector;
  match r.Dsl.Analysis.loop with
  | None -> Alcotest.fail "ordered loop not recognized"
  | Some loop ->
      Alcotest.(check (option string)) "label" (Some "s1") loop.Dsl.Analysis.label;
      Alcotest.(check string) "edgeset" "edges" loop.Dsl.Analysis.edgeset_name;
      Alcotest.(check bool) "no stop vertex" true (loop.Dsl.Analysis.stop_vertex = None);
      (match loop.Dsl.Analysis.udf.Dsl.Analysis.update with
      | Dsl.Analysis.Update_min -> ()
      | _ -> Alcotest.fail "expected a min update");
      Alcotest.(check bool) "no constant sum" true
        (loop.Dsl.Analysis.udf.Dsl.Analysis.constant_sum_diff = None)

let test_analysis_kcore_constant_sum () =
  let r = analyze (read_file (app "kcore.gt")) in
  match r.Dsl.Analysis.loop with
  | None -> Alcotest.fail "ordered loop not recognized"
  | Some loop ->
      Alcotest.(check (option int)) "constant sum -1" (Some (-1))
        loop.Dsl.Analysis.udf.Dsl.Analysis.constant_sum_diff;
      Alcotest.(check bool) "coarsening disallowed" false
        (match r.Dsl.Analysis.pq with
        | Some pq -> pq.Dsl.Analysis.allow_coarsening
        | None -> Alcotest.fail "priority queue not found")

let test_analysis_ppsp_stop_vertex () =
  let r = analyze (read_file (app "ppsp.gt")) in
  match r.Dsl.Analysis.loop with
  | Some { Dsl.Analysis.stop_vertex = Some _; _ } -> ()
  | _ -> Alcotest.fail "expected a finishedVertex early-exit conjunct"

let test_analysis_astar_atomics () =
  let r = analyze (read_file (app "astar.gt")) in
  match r.Dsl.Analysis.loop with
  | Some loop ->
      Alcotest.(check (list string)) "dist written at dst needs atomics" [ "dist" ]
        loop.Dsl.Analysis.udf.Dsl.Analysis.atomic_vectors
  | None -> Alcotest.fail "ordered loop not recognized"

let test_analysis_setcover_generic () =
  let r = analyze (read_file (app "setcover.gt")) in
  Alcotest.(check bool) "no replaceable loop (extern-driven)" true
    (r.Dsl.Analysis.loop = None)

let test_analysis_rejects_bucket_reuse () =
  (* Using the bucket after applyUpdatePriority disables the transformation
     (the paper's safety check): the loop must NOT be recognized. *)
  let src =
    "element Vertex end\nelement Edge end\n\
     const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);\n\
     const dist : vector{Vertex}(int) = INT_MAX;\n\
     const pq : priority_queue{Vertex}(int);\n\
     func f(src : Vertex, dst : Vertex, w : int)\n\
     pq.updatePriorityMin(dst, dist[dst], dist[src] + w);\nend\n\
     func main()\n\
     pq = new priority_queue{Vertex}(int)(true, \"lower_first\", dist, 0);\n\
     while (pq.finished() == false)\n\
     var bucket : vertexset{Vertex} = pq.dequeueReadySet();\n\
     edges.from(bucket).applyUpdatePriority(f);\n\
     edges.from(bucket).applyUpdatePriority(f);\n\
     delete bucket;\nend\nend"
  in
  let r = analyze src in
  Alcotest.(check bool) "loop not replaceable" true (r.Dsl.Analysis.loop = None)

let test_analysis_rejects_two_updates () =
  let src =
    "element Vertex end\nelement Edge end\n\
     const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);\n\
     const dist : vector{Vertex}(int) = INT_MAX;\n\
     const pq : priority_queue{Vertex}(int);\n\
     func f(src : Vertex, dst : Vertex, w : int)\n\
     pq.updatePriorityMin(dst, dist[dst], dist[src] + w);\n\
     pq.updatePriorityMin(src, dist[src], dist[src]);\nend\n\
     func main()\n\
     pq = new priority_queue{Vertex}(int)(true, \"lower_first\", dist, 0);\n\
     while (pq.finished() == false)\n\
     var bucket : vertexset{Vertex} = pq.dequeueReadySet();\n\
     edges.from(bucket).applyUpdatePriority(f);\n\
     delete bucket;\nend\nend"
  in
  let program = Dsl.Parser.parse_string src in
  match Dsl.Analysis.analyze program with
  | Error e ->
      Alcotest.(check bool) "mentions exactly one" true
        (contains_substring e.Dsl.Analysis.message "exactly one")
  | Ok _ -> Alcotest.fail "expected analysis rejection"

(* ---------------- scheduling language ---------------- *)

let test_schedule_resolution () =
  let program = Dsl.Parser.parse_string (read_file (app "sssp.gt")) in
  match Dsl.Schedule_lang.resolve program.Dsl.Ast.schedule with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Dsl.Schedule_lang.pp_error e)
  | Ok resolved ->
      let s = Dsl.Schedule_lang.schedule_for (Some "s1") resolved in
      Alcotest.(check string) "strategy" "eager_with_fusion"
        (Schedule.strategy_to_string s.Schedule.strategy);
      Alcotest.(check int) "delta" 8 s.Schedule.delta;
      Alcotest.(check int) "threshold" 1000 s.Schedule.fusion_threshold

let test_schedule_rejects_bad_values () =
  let check_error src fragment =
    let program = Dsl.Parser.parse_string src in
    match Dsl.Schedule_lang.resolve program.Dsl.Ast.schedule with
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error mentions %s" fragment)
          true
          (contains_substring e.Dsl.Schedule_lang.message fragment)
    | Ok _ -> Alcotest.fail ("expected schedule error for " ^ src)
  in
  let base = "element Vertex end\nfunc main() end\nschedule:\n" in
  check_error (base ^ "program->configApplyPriorityUpdate(\"s1\", \"bogus\");")
    "unknown priority-update strategy";
  check_error (base ^ "program->configApplyPriorityUpdateDelta(\"s1\", \"x\");") "integer";
  check_error (base ^ "program->configWhatever(\"s1\", \"x\");") "unknown scheduling";
  check_error
    (base
   ^ "program->configApplyPriorityUpdate(\"s1\", \"eager_with_fusion\")\n\
      ->configApplyDirection(\"s1\", \"DensePull\");")
    "DensePull"

(* ---------------- lowering legality ---------------- *)

let test_lower_rejects_constant_sum_on_min () =
  (* lazy_constant_sum on SSSP's min-update UDF must be rejected. *)
  let src =
    Str.global_replace (Str.regexp_string "eager_with_fusion") "lazy_constant_sum"
      (read_file (app "sssp.gt"))
  in
  match Dsl.Lower.lower_string src with
  | Error msg ->
      Alcotest.(check bool) "mentions constant" true (contains_substring msg "constant")
  | Ok _ -> Alcotest.fail "expected lowering rejection"

let test_lower_rejects_eager_on_generic () =
  let src =
    Str.global_replace (Str.regexp_string "\"lazy\"") "\"eager_with_fusion\""
      (read_file (app "setcover.gt"))
  in
  match Dsl.Lower.lower_string src with
  | Error msg ->
      Alcotest.(check bool) "mentions the pattern" true
        (contains_substring msg "ordered while-loop pattern")
  | Ok _ -> Alcotest.fail "expected lowering rejection"

(* ---------------- end-to-end execution ---------------- *)

let write_temp_graph el =
  let path = Filename.temp_file "dsl_graph" ".el" in
  Graphs.Graph_io.write_edge_list path el;
  path

let with_graph el f =
  let path = write_temp_graph el in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let compile_app name =
  match Dsl.Frontend.compile_file (app name) with
  | Ok c -> c
  | Error msg -> Alcotest.fail msg

let find_vector name result =
  match List.assoc_opt name result.Dsl.Interp.vectors with
  | Some v -> v
  | None -> Alcotest.fail ("missing vector " ^ name)

let random_weighted_el seed ~n ~m ~max_w =
  let rng = Rng.create seed in
  let el = Generators.erdos_renyi ~rng ~num_vertices:n ~num_edges:m () in
  Generators.assign_weights ~rng ~lo:1 ~hi:(max_w + 1) el

let test_run_sssp_matches_native () =
  let el = random_weighted_el 301 ~n:120 ~m:700 ~max_w:20 in
  let g = Csr.of_edge_list el in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  let compiled = compile_app "sssp.gt" in
  with_graph el (fun path ->
      List.iter
        (fun workers ->
          Pool.with_pool ~num_workers:workers (fun pool ->
              let result =
                Dsl.Frontend.run compiled ~pool ~argv:[| "sssp"; path; "0" |] ()
              in
              Alcotest.(check (array int))
                (Printf.sprintf "dsl sssp workers=%d" workers)
                expected (find_vector "dist" result);
              match result.Dsl.Interp.stats with
              | Some stats ->
                  Alcotest.(check bool) "engine ran rounds" true
                    (stats.Ordered.Stats.rounds > 0)
              | None -> Alcotest.fail "expected engine stats"))
        [ 1; 4 ])

let test_run_sssp_all_strategies () =
  (* Swapping only the schedule line changes the execution strategy but
     never the results — the core promise of the scheduling language. *)
  let el = random_weighted_el 302 ~n:100 ~m:600 ~max_w:15 in
  let g = Csr.of_edge_list el in
  let expected = Algorithms.Dijkstra.distances g ~source:3 in
  let source = read_file (app "sssp.gt") in
  with_graph el (fun path ->
      List.iter
        (fun strategy ->
          let src =
            Str.global_replace
              (Str.regexp_string "\"eager_with_fusion\"")
              (Printf.sprintf "%S" strategy) source
          in
          match Dsl.Frontend.compile ~name:strategy src with
          | Error msg -> Alcotest.fail msg
          | Ok compiled ->
              Pool.with_pool ~num_workers:2 (fun pool ->
                  let result =
                    Dsl.Frontend.run compiled ~pool ~argv:[| "sssp"; path; "3" |] ()
                  in
                  Alcotest.(check (array int)) strategy expected
                    (find_vector "dist" result)))
        [ "eager_with_fusion"; "eager_no_fusion"; "lazy" ])

let test_run_wbfs () =
  let rng = Rng.create 303 in
  let el = Generators.erdos_renyi ~rng ~num_vertices:90 ~num_edges:500 () in
  let el = Generators.wbfs_weights ~rng el in
  let g = Csr.of_edge_list el in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  let compiled = compile_app "wbfs.gt" in
  with_graph el (fun path ->
      Pool.with_pool ~num_workers:2 (fun pool ->
          let result = Dsl.Frontend.run compiled ~pool ~argv:[| "wbfs"; path; "0" |] () in
          Alcotest.(check (array int)) "dsl wbfs" expected (find_vector "dist" result)))

let test_run_ppsp () =
  let el = random_weighted_el 304 ~n:150 ~m:900 ~max_w:25 in
  let g = Csr.of_edge_list el in
  let dist = Algorithms.Dijkstra.distances g ~source:0 in
  let target =
    let best = ref 1 in
    Array.iteri
      (fun v d ->
        if v <> 0 && d <> Bucketing.Bucket_order.null_priority then
          if dist.(!best) = Bucketing.Bucket_order.null_priority || d > dist.(!best)
          then best := v)
      dist;
    !best
  in
  let compiled = compile_app "ppsp.gt" in
  with_graph el (fun path ->
      Pool.with_pool ~num_workers:2 (fun pool ->
          let result =
            Dsl.Frontend.run compiled ~pool
              ~argv:[| "ppsp"; path; "0"; string_of_int target |]
              ()
          in
          Alcotest.(check (list string))
            "printed the exact distance"
            [ string_of_int dist.(target) ]
            result.Dsl.Interp.printed))

let test_run_astar_with_extern () =
  let rng = Rng.create 305 in
  let el, coords = Generators.road_grid ~rng ~rows:12 ~cols:14 () in
  let g = Csr.of_edge_list el in
  let source = 0 and target = (12 * 14) - 1 in
  let expected = Algorithms.Dijkstra.distance_to g ~source ~target in
  let compiled = compile_app "astar.gt" in
  with_graph el (fun path ->
      Pool.with_pool ~num_workers:2 (fun pool ->
          let result =
            Dsl.Frontend.run compiled ~pool
              ~argv:[| "astar"; path; string_of_int source; string_of_int target |]
              ~externs:(Dsl.Externs.astar ~coords ~target)
              ()
          in
          Alcotest.(check (list string))
            "printed the exact distance"
            [ string_of_int expected ]
            result.Dsl.Interp.printed))

let test_run_bellman_ford_unordered () =
  (* The unordered DSL program (no priority queue at all) must compute the
     same distances as ordered sssp.gt and the native oracle. *)
  let el = random_weighted_el 309 ~n:110 ~m:650 ~max_w:25 in
  let g = Csr.of_edge_list el in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  let compiled = compile_app "bellman_ford.gt" in
  with_graph el (fun path ->
      List.iter
        (fun workers ->
          Pool.with_pool ~num_workers:workers (fun pool ->
              let result =
                Dsl.Frontend.run compiled ~pool ~argv:[| "bf"; path; "0" |] ()
              in
              Alcotest.(check (array int))
                (Printf.sprintf "dsl bellman-ford workers=%d" workers)
                expected (find_vector "dist" result);
              Alcotest.(check bool) "no engine stats (unordered loop)" true
                (result.Dsl.Interp.stats = None);
              match result.Dsl.Interp.printed with
              | [ rounds ] ->
                  Alcotest.(check bool) "counted rounds" true (int_of_string rounds > 0)
              | _ -> Alcotest.fail "expected one printed round count"))
        [ 1; 2 ])

let test_run_widest () =
  let el = random_weighted_el 308 ~n:120 ~m:700 ~max_w:30 in
  let g = Csr.of_edge_list el in
  let expected = Algorithms.Widest_path.sequential g ~source:0 in
  let compiled = compile_app "widest.gt" in
  with_graph el (fun path ->
      List.iter
        (fun workers ->
          Pool.with_pool ~num_workers:workers (fun pool ->
              let result =
                Dsl.Frontend.run compiled ~pool ~argv:[| "widest"; path; "0" |] ()
              in
              Alcotest.(check (array int))
                (Printf.sprintf "dsl widest workers=%d" workers)
                expected
                (find_vector "cap" result)))
        [ 1; 2 ])

let test_run_kcore () =
  let rng = Rng.create 306 in
  let el = Generators.erdos_renyi ~rng ~num_vertices:100 ~num_edges:600 () in
  let g_sym = Csr.of_edge_list (Edge_list.symmetrized el) in
  let expected = Algorithms.Kcore_peel_seq.coreness g_sym in
  let compiled = compile_app "kcore.gt" in
  with_graph el (fun path ->
      List.iter
        (fun workers ->
          Pool.with_pool ~num_workers:workers (fun pool ->
              let result =
                Dsl.Frontend.run compiled ~pool ~argv:[| "kcore"; path |] ()
              in
              Alcotest.(check (array int))
                (Printf.sprintf "dsl kcore workers=%d" workers)
                expected
                (find_vector "degrees" result)))
        [ 1; 2 ])

let test_run_setcover () =
  let rng = Rng.create 307 in
  let el = Generators.erdos_renyi ~rng ~num_vertices:80 ~num_edges:400 () in
  let g_sym = Csr.of_edge_list (Edge_list.symmetrized el) in
  let compiled = compile_app "setcover.gt" in
  with_graph el (fun path ->
      Pool.with_pool ~num_workers:1 (fun pool ->
          let externs, read_cover = Dsl.Externs.setcover () in
          let result =
            Dsl.Frontend.run compiled ~pool ~argv:[| "setcover"; path |] ~externs ()
          in
          Alcotest.(check (list string)) "all elements covered" [ "0" ]
            result.Dsl.Interp.printed;
          match read_cover () with
          | None -> Alcotest.fail "externs never initialized"
          | Some in_cover ->
              let r =
                let size =
                  Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_cover
                in
                {
                  Algorithms.Setcover.in_cover;
                  cover_size = size;
                  cover_cost = size;
                  rounds = 0;
                  bucket_inserts = 0;
                }
              in
              Alcotest.(check bool) "valid cover" true
                (Algorithms.Setcover.is_valid_cover g_sym r)))

let test_runtime_errors_are_located () =
  let compiled = compile_app "sssp.gt" in
  Pool.with_pool ~num_workers:1 (fun pool ->
      match Dsl.Frontend.run compiled ~pool ~argv:[| "sssp"; "/nonexistent"; "0" |] () with
      | exception Dsl.Interp.Runtime_error (_, msg) ->
          Alcotest.(check bool) "mentions load" true (contains_substring msg "load")
      | _ -> Alcotest.fail "expected a runtime error")

(* ---------------- code generation ---------------- *)

let generate_with_strategy strategy =
  let source = read_file (app "sssp.gt") in
  let src =
    Str.global_replace (Str.regexp_string "\"eager_with_fusion\"") strategy source
  in
  match Dsl.Lower.lower_string src with
  | Ok lowered -> Dsl.Codegen_cpp.generate lowered
  | Error msg -> Alcotest.fail msg

let test_codegen_lazy_shape () =
  let cpp = generate_with_strategy "\"lazy\"" in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true (contains_substring cpp fragment))
    [
      "LazyBuckets"; "bulk bucket update"; "update_priority_min"; "edge_map_push";
      "key_of_priority";
    ];
  Alcotest.(check bool) "no eager bins under lazy" false
    (contains_substring cpp "EagerBuckets");
  (* lazy strategies have no processing filter in the push kernel *)
  Alcotest.(check bool) "no processing filter under lazy" false
    (contains_substring cpp "eager processing filter")

let test_codegen_eager_shape () =
  let cpp = generate_with_strategy "\"eager_no_fusion\"" in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true (contains_substring cpp fragment))
    [ "EagerBuckets"; "eager processing filter"; "on_current_bucket"; "take_local" ];
  Alcotest.(check bool) "no fusion loop" false (contains_substring cpp "bucket fusion");
  let fused = generate_with_strategy "\"eager_with_fusion\"" in
  Alcotest.(check bool) "fusion adds the local drain epilogue" true
    (contains_substring fused "bucket fusion");
  Alcotest.(check bool) "fusion threshold constant emitted" true
    (contains_substring fused "kFusionThreshold")

let test_codegen_pull_drops_atomics () =
  let source = read_file (app "sssp.gt") in
  let src =
    Str.global_replace (Str.regexp_string "\"eager_with_fusion\"") "\"lazy\"" source
  in
  let src =
    Str.global_replace
      (Str.regexp_string "->configApplyParallelization(\"s1\", \"dynamic-vertex-parallel\")")
      "->configApplyDirection(\"s1\", \"DensePull\")" src
  in
  match Dsl.Lower.lower_string src with
  | Error msg -> Alcotest.fail msg
  | Ok lowered ->
      let cpp = Dsl.Codegen_cpp.generate lowered in
      Alcotest.(check bool) "pull walks the transpose" true
        (contains_substring cpp "edge_map_pull");
      Alcotest.(check bool) "pull passes use_atomics=false" true
        (contains_substring cpp "/*use_atomics=*/false");
      Alcotest.(check bool) "no push kernel under pure pull" false
        (contains_substring cpp "edge_map_push");
      (* hybrid emits both kernels plus the direction heuristic *)
      let hybrid_src =
        Str.global_replace
          (Str.regexp_string "->configApplyDirection(\"s1\", \"DensePull\")")
          "->configApplyDirection(\"s1\", \"DensePull-SparsePush\")"
          (Str.global_replace
             (Str.regexp_string
                "->configApplyParallelization(\"s1\", \"dynamic-vertex-parallel\")")
             "->configApplyDirection(\"s1\", \"DensePull\")"
             (Str.global_replace
                (Str.regexp_string "\"eager_with_fusion\"")
                "\"lazy\"" source))
      in
      (match Dsl.Lower.lower_string hybrid_src with
      | Error msg -> Alcotest.fail msg
      | Ok lowered ->
          let cpp = Dsl.Codegen_cpp.generate lowered in
          List.iter
            (fun fragment ->
              Alcotest.(check bool) ("hybrid contains " ^ fragment) true
                (contains_substring cpp fragment))
            [ "edge_map_push"; "edge_map_pull"; "edge_map_round"; "dense_threshold" ])

let test_codegen_constant_sum_shape () =
  let source = read_file (app "kcore.gt") in
  match Dsl.Lower.lower_string source with
  | Error msg -> Alcotest.fail msg
  | Ok lowered ->
      let cpp = Dsl.Codegen_cpp.generate lowered in
      List.iter
        (fun fragment ->
          Alcotest.(check bool) ("contains " ^ fragment) true
            (contains_substring cpp fragment))
        [
          "flush_histogram"; "kConstantSumDiff"; "get_current_priority";
          "hist_count"; "symmetrize_edges";
        ]

let test_codegen_max_update () =
  match Dsl.Lower.lower_string (read_file (app "widest.gt")) with
  | Error msg -> Alcotest.fail msg
  | Ok lowered ->
      let cpp = Dsl.Codegen_cpp.generate lowered in
      Alcotest.(check bool) "max update emitted" true
        (contains_substring cpp "update_priority_max");
      Alcotest.(check bool) "higher-first direction resolved" true
        (contains_substring cpp "kLowerFirst = false")

let test_codegen_stub_for_unordered () =
  match Dsl.Lower.lower_string (read_file (app "bellman_ford.gt")) with
  | Error msg -> Alcotest.fail msg
  | Ok lowered ->
      let cpp = Dsl.Codegen_cpp.generate lowered in
      Alcotest.(check bool) "stub exits 2" true (contains_substring cpp "return 2");
      Alcotest.(check bool) "stub names the reason" true
        (contains_substring cpp "no priority queue")

(* The generated translation units must actually compile and agree with the
   interpreter; exercised end-to-end by the dsl differential sweep
   (check_runner --dsl) when a C++ toolchain is present. Here we only pin
   that every priority-queue app generates without raising. *)
let test_codegen_generates_all_apps () =
  List.iter
    (fun name ->
      match Dsl.Lower.lower_string (read_file (app name)) with
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg)
      | Ok lowered ->
          let cpp = Dsl.Codegen_cpp.generate lowered in
          Alcotest.(check bool) (name ^ " nonempty") true (String.length cpp > 100))
    [ "sssp.gt"; "wbfs.gt"; "ppsp.gt"; "widest.gt"; "kcore.gt"; "astar.gt";
      "setcover.gt"; "bellman_ford.gt" ]

let qcheck_parse_never_crashes =
  QCheck.Test.make ~name:"parser rejects garbage gracefully" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
    (fun src ->
      match Dsl.Parser.parse_string src with
      | _ -> true
      | exception Dsl.Parser.Error _ -> true
      (* anything else (e.g. an uncaught exception) fails the property *))

let () =
  Alcotest.run "dsl"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "labels and strings" `Quick test_lexer_label_and_strings;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "sssp shape" `Quick test_parse_sssp_shape;
          Alcotest.test_case "all apps parse" `Quick test_parse_all_apps;
          Alcotest.test_case "located errors" `Quick test_parse_errors_are_located;
          Alcotest.test_case "error positions on the offending token" `Quick
            test_parse_error_positions_point_at_target;
          Alcotest.test_case "precedence" `Quick test_operator_precedence;
          QCheck_alcotest.to_alcotest qcheck_parse_never_crashes;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "apps are well typed" `Quick test_typecheck_apps;
          Alcotest.test_case "rejections" `Quick test_typecheck_rejections;
          Alcotest.test_case "error positions on the offending token" `Quick
            test_typecheck_error_positions;
          Alcotest.test_case "vertexset ops" `Quick test_typecheck_vertexset_ops;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "sssp" `Quick test_analysis_sssp;
          Alcotest.test_case "kcore constant sum" `Quick
            test_analysis_kcore_constant_sum;
          Alcotest.test_case "ppsp stop vertex" `Quick test_analysis_ppsp_stop_vertex;
          Alcotest.test_case "astar atomics" `Quick test_analysis_astar_atomics;
          Alcotest.test_case "setcover generic" `Quick test_analysis_setcover_generic;
          Alcotest.test_case "bucket reuse disables" `Quick
            test_analysis_rejects_bucket_reuse;
          Alcotest.test_case "two updates rejected" `Quick
            test_analysis_rejects_two_updates;
        ] );
      ( "schedule_lang",
        [
          Alcotest.test_case "resolution" `Quick test_schedule_resolution;
          Alcotest.test_case "bad values" `Quick test_schedule_rejects_bad_values;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "constant sum on min rejected" `Quick
            test_lower_rejects_constant_sum_on_min;
          Alcotest.test_case "eager on generic rejected" `Quick
            test_lower_rejects_eager_on_generic;
        ] );
      ( "execution",
        [
          Alcotest.test_case "sssp matches native" `Quick test_run_sssp_matches_native;
          Alcotest.test_case "sssp all strategies" `Quick test_run_sssp_all_strategies;
          Alcotest.test_case "wbfs" `Quick test_run_wbfs;
          Alcotest.test_case "ppsp" `Quick test_run_ppsp;
          Alcotest.test_case "astar with extern" `Quick test_run_astar_with_extern;
          Alcotest.test_case "bellman-ford (unordered)" `Quick
            test_run_bellman_ford_unordered;
          Alcotest.test_case "widest path" `Quick test_run_widest;
          Alcotest.test_case "kcore" `Quick test_run_kcore;
          Alcotest.test_case "setcover" `Quick test_run_setcover;
          Alcotest.test_case "runtime errors located" `Quick
            test_runtime_errors_are_located;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "lazy shape" `Quick test_codegen_lazy_shape;
          Alcotest.test_case "eager shape" `Quick test_codegen_eager_shape;
          Alcotest.test_case "pull drops atomics" `Quick test_codegen_pull_drops_atomics;
          Alcotest.test_case "constant sum shape" `Quick
            test_codegen_constant_sum_shape;
          Alcotest.test_case "max update shape" `Quick test_codegen_max_update;
          Alcotest.test_case "stub for unordered programs" `Quick
            test_codegen_stub_for_unordered;
          Alcotest.test_case "all apps generate" `Quick
            test_codegen_generates_all_apps;
        ] );
    ]
