(* The traversal kernel is a performance choice, never a semantic one:
   Push, Pull, and Hybrid sweeps of the same edge function must produce
   identical results, and reusing one Scratch across runs must equal fresh
   state. *)

module Pool = Parallel.Pool
module Atomic_array = Parallel.Atomic_array
module Csr = Graphs.Csr
module Generators = Graphs.Generators
module Rng = Support.Rng
module Bucket_order = Bucketing.Bucket_order
module Update_buffer = Bucketing.Update_buffer
module Vertex_subset = Frontier.Vertex_subset
module Edge_map = Traverse.Edge_map
module Scratch = Traverse.Scratch
module Schedule = Ordered.Schedule

let random_weighted_graph = Testlib.random_weighted_graph

(* Bellman-Ford directly on the kernel, one edge-map per iteration in the
   requested direction. The relax function is the schedule-oblivious shape
   every converted call site uses: branch on [ctx.use_atomics] only. *)
let kernel_sssp ~scratch ~graph ~transpose ~direction ~source =
  let n = Csr.num_vertices graph in
  let dist = Atomic_array.make n Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  let buffer = Scratch.buffer scratch in
  let relax ctx ~src ~dst ~weight =
    let ds = Atomic_array.get dist src in
    if ds <> Bucket_order.null_priority then begin
      let nd = ds + weight in
      if ctx.Edge_map.use_atomics then begin
        if Atomic_array.fetch_min dist dst nd then
          ignore (Update_buffer.try_add buffer ~tid:ctx.Edge_map.tid dst)
      end
      else if nd < Atomic_array.get dist dst then begin
        Atomic_array.set dist dst nd;
        ignore (Update_buffer.try_add buffer ~tid:ctx.Edge_map.tid dst)
      end
    end
  in
  let frontier = ref (Vertex_subset.singleton ~num_vertices:n source) in
  while not (Vertex_subset.is_empty !frontier) do
    ignore (Edge_map.run scratch ~graph ~transpose ~direction !frontier ~f:relax);
    frontier := Scratch.drain_frontier scratch
  done;
  Atomic_array.to_array dist

(* The same Bellman-Ford loop through the layout-dispatching entry point,
   so the specialized compressed-kernel instance runs the identical relax
   function. *)
let kernel_sssp_layout ~scratch ~kind ~graph ~transpose ~direction ~source =
  let n = Csr.num_vertices graph in
  let dist = Atomic_array.make n Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  let buffer = Scratch.buffer scratch in
  let relax ctx ~src ~dst ~weight =
    let ds = Atomic_array.get dist src in
    if ds <> Bucket_order.null_priority then begin
      let nd = ds + weight in
      if ctx.Edge_map.use_atomics then begin
        if Atomic_array.fetch_min dist dst nd then
          ignore (Update_buffer.try_add buffer ~tid:ctx.Edge_map.tid dst)
      end
      else if nd < Atomic_array.get dist dst then begin
        Atomic_array.set dist dst nd;
        ignore (Update_buffer.try_add buffer ~tid:ctx.Edge_map.tid dst)
      end
    end
  in
  let graph = Graphs.Layout.of_csr kind graph in
  let transpose = Graphs.Layout.of_csr kind transpose in
  let frontier = ref (Vertex_subset.singleton ~num_vertices:n source) in
  while not (Vertex_subset.is_empty !frontier) do
    ignore
      (Edge_map.run_layout scratch ~graph ~transpose ~direction !frontier
         ~f:relax);
    frontier := Scratch.drain_frontier scratch
  done;
  Atomic_array.to_array dist

let directions = [ Edge_map.Push; Edge_map.Pull; Edge_map.Hybrid ]

(* Every direction of the raw kernel computes the same fixed point as the
   sequential oracle, on 1-worker and multi-worker pools. *)
let qcheck_kernel_direction_equivalence =
  QCheck.Test.make ~name:"kernel push/pull/hybrid SSSP are identical"
    ~count:30
    QCheck.(triple (int_range 2 60) (int_bound 300) (int_range 1 15))
    (fun (n, m, max_w) ->
      let g = random_weighted_graph (n + (m * 31) + max_w) ~n ~m ~max_w in
      let t = Csr.transpose g in
      let expected = Algorithms.Dijkstra.distances g ~source:0 in
      List.for_all
        (fun workers ->
          Pool.with_pool ~num_workers:workers (fun pool ->
              List.for_all
                (fun direction ->
                  let scratch = Scratch.create ~pool ~graph:g in
                  kernel_sssp ~scratch ~graph:g ~transpose:t ~direction
                    ~source:0
                  = expected)
                directions))
        [ 1; 3 ])

(* Layout polymorphism is a performance choice too: the compressed-kernel
   instance (and the plain one through the same dispatching entry point)
   computes the same fixed point in every direction. *)
let qcheck_kernel_layout_equivalence =
  QCheck.Test.make ~name:"kernel layouts compute identical SSSP" ~count:25
    QCheck.(triple (int_range 2 60) (int_bound 300) (int_range 1 15))
    (fun (n, m, max_w) ->
      let g = random_weighted_graph (n + (m * 57) + max_w) ~n ~m ~max_w in
      let t = Csr.transpose g in
      let expected = Algorithms.Dijkstra.distances g ~source:0 in
      List.for_all
        (fun workers ->
          Pool.with_pool ~num_workers:workers (fun pool ->
              List.for_all
                (fun direction ->
                  List.for_all
                    (fun kind ->
                      let scratch = Scratch.create ~pool ~graph:g in
                      kernel_sssp_layout ~scratch ~kind ~graph:g ~transpose:t
                        ~direction ~source:0
                      = expected)
                    Graphs.Layout.all_kinds)
                directions))
        [ 1; 3 ])

(* The engine's handle path: a compressed-kind handle (with its cached
   transpose, no explicit ~transpose argument) matches the plain run. *)
let qcheck_engine_compressed_handle =
  QCheck.Test.make ~name:"engine on a compressed handle stays exact" ~count:20
    QCheck.(triple (int_range 2 50) (int_bound 250) (int_range 1 8))
    (fun (n, m, delta) ->
      let g = random_weighted_graph (n + (m * 29) + delta) ~n ~m ~max_w:9 in
      let expected = Algorithms.Dijkstra.distances g ~source:0 in
      let handle = Graphs.Handle.create ~kind:Graphs.Layout.Compressed g in
      List.for_all
        (fun workers ->
          Pool.with_pool ~num_workers:workers (fun pool ->
              List.for_all
                (fun traversal ->
                  let schedule =
                    { Schedule.default with strategy = Schedule.Lazy; traversal; delta }
                  in
                  let r =
                    Algorithms.Sssp_delta.run ~pool ~graph:g ~handle ~schedule
                      ~source:0 ()
                  in
                  r.Algorithms.Sssp_delta.dist = expected)
                [ Schedule.Sparse_push; Schedule.Dense_pull; Schedule.Hybrid ]))
        [ 1; 4 ])

(* The same property through the ordered engine: a lazy wBFS schedule run
   under each traversal direction (the engine maps them onto the kernel)
   stays exact. *)
let qcheck_engine_direction_equivalence =
  QCheck.Test.make ~name:"engine SparsePush/DensePull/Hybrid wBFS are identical"
    ~count:20
    QCheck.(triple (int_range 2 50) (int_bound 250) (int_range 1 8))
    (fun (n, m, delta) ->
      let g = random_weighted_graph (n + (m * 13) + delta) ~n ~m ~max_w:9 in
      let t = Csr.transpose g in
      let expected = Algorithms.Dijkstra.distances g ~source:0 in
      List.for_all
        (fun workers ->
          Pool.with_pool ~num_workers:workers (fun pool ->
              List.for_all
                (fun traversal ->
                  let schedule =
                    { Schedule.default with strategy = Schedule.Lazy; traversal; delta }
                  in
                  let r =
                    Algorithms.Sssp_delta.run ~pool ~graph:g ~transpose:t
                      ~schedule ~source:0 ()
                  in
                  r.Algorithms.Sssp_delta.dist = expected)
                [ Schedule.Sparse_push; Schedule.Dense_pull; Schedule.Hybrid ]))
        [ 1; 4 ])

(* Scratch reuse: the second run on a reused scratch must equal a run on
   fresh state — the dense gating bitmap, buffer, and counters all reset
   between runs. Hybrid on a dense-ish graph exercises the pull path (and
   its clear-by-members sweep) both times. *)
let test_scratch_reuse () =
  let g = random_weighted_graph 2024 ~n:80 ~m:2500 ~max_w:10 in
  let t = Csr.transpose g in
  Pool.with_pool ~num_workers:3 (fun pool ->
      let reused = Scratch.create ~pool ~graph:g in
      let first =
        kernel_sssp ~scratch:reused ~graph:g ~transpose:t
          ~direction:Edge_map.Hybrid ~source:0
      in
      let second =
        kernel_sssp ~scratch:reused ~graph:g ~transpose:t
          ~direction:Edge_map.Hybrid ~source:0
      in
      let fresh =
        let scratch = Scratch.create ~pool ~graph:g in
        kernel_sssp ~scratch ~graph:g ~transpose:t ~direction:Edge_map.Hybrid
          ~source:0
      in
      Alcotest.(check (array int)) "reused run = fresh run" fresh second;
      Alcotest.(check (array int)) "first run = second run" first second)

(* The kernel's counters account every processed vertex and edge: a push
   sweep over the full frontier of a graph touches each edge exactly
   once. *)
let test_counter_accounting () =
  let g = random_weighted_graph 7 ~n:50 ~m:400 ~max_w:5 in
  Pool.with_pool ~num_workers:2 (fun pool ->
      let scratch = Scratch.create ~pool ~graph:g in
      let n = Csr.num_vertices g in
      let touched = Atomic.make 0 in
      let f _ctx ~src:_ ~dst:_ ~weight:_ = Atomic.incr touched in
      ignore
        (Edge_map.run scratch ~graph:g ~direction:Edge_map.Push
           (Vertex_subset.full ~num_vertices:n)
           ~f);
      Alcotest.(check int) "edges traversed" (Csr.num_edges g)
        (Scratch.edges_traversed scratch);
      Alcotest.(check int) "edges applied" (Csr.num_edges g) (Atomic.get touched);
      Alcotest.(check int) "vertices processed" n
        (Scratch.vertices_processed scratch);
      Scratch.reset_counters scratch;
      Alcotest.(check int) "counters reset" 0 (Scratch.edges_traversed scratch))

(* Cheap constructors: same members as the validated of_array forms, and
   fill/clear leave a reusable bitmap empty again. *)
let test_cheap_constructors () =
  let n = 37 in
  Alcotest.(check int) "empty card" 0 (Vertex_subset.cardinal (Vertex_subset.empty ~num_vertices:n));
  let s = Vertex_subset.singleton ~num_vertices:n 5 in
  Alcotest.(check bool) "singleton mem" true (Vertex_subset.mem s 5);
  Alcotest.(check int) "singleton card" 1 (Vertex_subset.cardinal s);
  Alcotest.check_raises "singleton range" (Invalid_argument "Vertex_subset.singleton: vertex out of range")
    (fun () -> ignore (Vertex_subset.singleton ~num_vertices:n n));
  let f = Vertex_subset.full ~num_vertices:n in
  Alcotest.(check int) "full card" n (Vertex_subset.cardinal f);
  Alcotest.(check bool) "full = of_array identity" true
    (Vertex_subset.equal_members f
       (Vertex_subset.of_array ~num_vertices:n (Array.init n (fun i -> i))));
  let flags = Support.Bitset.create n in
  let sub = Vertex_subset.of_array ~num_vertices:n [| 3; 11; 20 |] in
  Vertex_subset.fill_flags sub flags;
  Alcotest.(check int) "filled" 3 (Support.Bitset.count flags);
  Alcotest.(check bool) "member set" true (Support.Bitset.mem flags 11);
  Vertex_subset.clear_flags sub flags;
  Alcotest.(check int) "cleared" 0 (Support.Bitset.count flags)

(* Pull and Hybrid without a transpose are schedule errors, not silent
   push fallbacks. *)
let test_requires_transpose () =
  let g = random_weighted_graph 3 ~n:10 ~m:30 ~max_w:4 in
  Pool.with_pool ~num_workers:1 (fun pool ->
      let scratch = Scratch.create ~pool ~graph:g in
      let frontier = Vertex_subset.singleton ~num_vertices:10 0 in
      let f _ctx ~src:_ ~dst:_ ~weight:_ = () in
      List.iter
        (fun direction ->
          Alcotest.check_raises "missing transpose"
            (Invalid_argument "Edge_map.run: Pull/Hybrid requires ~transpose")
            (fun () ->
              ignore (Edge_map.run scratch ~graph:g ~direction frontier ~f)))
        [ Edge_map.Pull; Edge_map.Hybrid ])

let () =
  Alcotest.run "traverse"
    [
      ( "edge_map",
        [
          QCheck_alcotest.to_alcotest qcheck_kernel_direction_equivalence;
          QCheck_alcotest.to_alcotest qcheck_kernel_layout_equivalence;
          QCheck_alcotest.to_alcotest qcheck_engine_compressed_handle;
          QCheck_alcotest.to_alcotest qcheck_engine_direction_equivalence;
          Alcotest.test_case "counter accounting" `Quick test_counter_accounting;
          Alcotest.test_case "requires transpose" `Quick test_requires_transpose;
        ] );
      ( "scratch",
        [
          Alcotest.test_case "reuse equals fresh" `Quick test_scratch_reuse;
        ] );
      ( "vertex_subset",
        [
          Alcotest.test_case "cheap constructors + flags" `Quick test_cheap_constructors;
        ] );
    ]
