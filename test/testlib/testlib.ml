(* Helpers shared by the test suites: schedule builders, the strategy
   lists every sweep iterates, seeded random-graph generators, and naive
   oracles. Each suite used to carry private copies of these; keeping one
   definition means a new schedule field or generator tweak lands in every
   suite at once. *)

module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Edge_list = Graphs.Edge_list
module Generators = Graphs.Generators
module Rng = Support.Rng
module Schedule = Ordered.Schedule

let schedule ?(strategy = Schedule.Eager_with_fusion) ?(delta = 1)
    ?(traversal = Schedule.Sparse_push) ?(fusion_threshold = 1000) () =
  { Schedule.default with strategy; delta; traversal; fusion_threshold }

(* The strategies every path-style app accepts. *)
let all_strategies =
  [ Schedule.Eager_with_fusion; Schedule.Eager_no_fusion; Schedule.Lazy ]

(* k-core additionally supports the constant-sum bucket backend. *)
let kcore_strategies = all_strategies @ [ Schedule.Lazy_constant_sum ]

let random_weighted_graph seed ~n ~m ~max_w =
  let rng = Rng.create seed in
  let el = Generators.erdos_renyi ~rng ~num_vertices:n ~num_edges:m () in
  Csr.of_edge_list (Generators.assign_weights ~rng ~lo:1 ~hi:(max_w + 1) el)

let symmetric_random seed ~n ~m =
  let rng = Rng.create seed in
  let el = Generators.erdos_renyi ~rng ~num_vertices:n ~num_edges:m () in
  Csr.of_edge_list (Edge_list.symmetrized el)

let symmetric_weighted seed ~n ~m ~max_w =
  let rng = Rng.create seed in
  let el = Generators.erdos_renyi ~rng ~num_vertices:n ~num_edges:m () in
  let el = Generators.assign_weights ~rng ~lo:1 ~hi:(max_w + 1) el in
  Csr.of_edge_list (Edge_list.symmetrized el)

(* Run [f workers pool] once per worker count, each on a fresh pool. *)
let with_pools workers f =
  List.iter
    (fun w -> Pool.with_pool ~num_workers:w (fun pool -> f w pool))
    workers

(* O(n^2) Matula-Beck coreness by running max of removal degrees — an
   independent oracle for the sequential peel and the parallel engine. *)
let naive_coreness_running_max g =
  let n = Csr.num_vertices g in
  let deg = Csr.out_degrees g in
  let removed = Array.make n false in
  let core = Array.make n 0 in
  let current = ref 0 in
  for _ = 1 to n do
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not removed.(v)) && (!best = -1 || deg.(v) < deg.(!best)) then best := v
    done;
    let v = !best in
    removed.(v) <- true;
    current := max !current deg.(v);
    core.(v) <- !current;
    Csr.iter_out g v (fun u _ ->
        if (not removed.(u)) && deg.(u) > deg.(v) then deg.(u) <- deg.(u) - 1)
  done;
  core
