(* The checker must be trustworthy in both directions: silent on the real
   engine (including under chaos scheduling with the race detector armed)
   and loud on seeded defects — a grafted broken oracle must produce a
   shrunk counterexample with a working repro line, and a deliberately
   racy kernel must trip the detector. *)

module Pool = Parallel.Pool
module Atomic_array = Parallel.Atomic_array
module Race = Parallel.Race
module Chaos = Parallel.Chaos
module Csr = Graphs.Csr
module Schedule = Ordered.Schedule
module Graph_case = Check.Graph_case
module Oracle = Check.Oracle
module Sweep = Check.Sweep

(* ---------------- printable specs and schedules ---------------- *)

let test_graph_spec_roundtrip () =
  let specs =
    Sweep.default_specs ~seed:5
    @ [
        Graph_case.Explicit
          {
            num_vertices = 4;
            edges = [ (0, 1, 3); (1, 2, 1); (3, 3, 9) ];
            coords = Some [ (0.0, 0.5); (1.0, 1.5); (2.0, 0.25); (3.0, 4.0) ];
          };
        Graph_case.Explicit { num_vertices = 2; edges = []; coords = None };
      ]
  in
  List.iter
    (fun spec ->
      let s = Graph_case.to_string spec in
      match Graph_case.of_string s with
      | Ok spec' ->
          Alcotest.(check string) ("round-trip " ^ s) s (Graph_case.to_string spec');
          Alcotest.(check bool) ("equal spec " ^ s) true (spec = spec')
      | Error e -> Alcotest.fail (Printf.sprintf "parse %S: %s" s e))
    specs

let test_schedule_roundtrip () =
  let cases =
    [
      Schedule.default;
      {
        Schedule.default with
        strategy = Schedule.Lazy;
        delta = 8;
        traversal = Schedule.Dense_pull;
        num_open_buckets = 512;
        sched = Some Pool.Guided;
      };
      {
        Schedule.default with
        strategy = Schedule.Eager_no_fusion;
        delta = 2;
        chunk_size = 64;
        sched = Some Pool.Static;
      };
    ]
  in
  List.iter
    (fun sched ->
      let s = Sweep.schedule_to_string sched in
      match Sweep.schedule_of_string s with
      | Ok sched' ->
          Alcotest.(check string) ("round-trip " ^ s) s
            (Sweep.schedule_to_string sched');
          Alcotest.(check bool) ("equal schedule " ^ s) true (sched = sched')
      | Error e -> Alcotest.fail (Printf.sprintf "parse %S: %s" s e))
    cases

let test_schedule_parse_rejects_invalid () =
  (match Sweep.schedule_of_string "strategy=eager_with_fusion,traversal=DensePull" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pull+eager must not validate");
  match Sweep.schedule_of_string "delta=nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad integer must not parse"

(* ---------------- the sweep on the real engine ---------------- *)

let test_small_sweep_clean () =
  let summary =
    Sweep.run
      ~apps:[ Sweep.Sssp; Sweep.Kcore ]
      ~specs:
        [
          Graph_case.Random { seed = 11; n = 24; m = 90; max_w = 8 };
          Graph_case.Self_loops 5;
        ]
      ~workers:[ 2 ] ~budget:30.0 ~seed:11 ()
  in
  Alcotest.(check (list string)) "no failures" []
    (List.map (fun (f : Sweep.failure) -> f.message) summary.Sweep.failures);
  Alcotest.(check bool) "ran configs" true (summary.Sweep.configs_run > 0);
  List.iter
    (fun app ->
      Alcotest.(check bool)
        (Sweep.app_to_string app ^ " covered")
        true
        (List.assoc app summary.Sweep.per_app > 0))
    [ Sweep.Sssp; Sweep.Kcore ]

(* Substrate variants: the same sweep stays clean on the compressed
   layout, under degree reordering, and through a save/load round-trip of
   the binary graph format. *)
let test_variant_sweep_clean () =
  let summary =
    Sweep.run
      ~apps:[ Sweep.Sssp; Sweep.Kcore ]
      ~specs:[ Graph_case.Random { seed = 21; n = 20; m = 70; max_w = 6 } ]
      ~variants:
        [
          { Sweep.default_variant with layout = Graphs.Layout.Compressed };
          { Sweep.default_variant with reorder = Graphs.Reorder.Degree };
          {
            Sweep.layout = Graphs.Layout.Compressed;
            reorder = Graphs.Reorder.Degree;
            bin_roundtrip = true;
          };
        ]
      ~workers:[ 2 ] ~budget:20.0 ~seed:21 ()
  in
  Alcotest.(check (list string)) "no failures" []
    (List.map (fun (f : Sweep.failure) -> f.message) summary.Sweep.failures);
  Alcotest.(check bool) "ran configs" true (summary.Sweep.configs_run > 0)

let test_sweep_chaos_race_silent () =
  (* The acceptance bar: chaos on, detector armed, engine still clean. *)
  let summary =
    Sweep.run
      ~apps:[ Sweep.Sssp; Sweep.Setcover ]
      ~specs:[ Graph_case.Random { seed = 4; n = 20; m = 70; max_w = 6 } ]
      ~workers:[ 4 ] ~budget:30.0 ~seed:4 ~chaos:true ~race:true ()
  in
  Alcotest.(check (list string)) "no failures under chaos" []
    (List.map (fun (f : Sweep.failure) -> f.message) summary.Sweep.failures);
  Alcotest.(check int) "no race findings on the engine" 0
    summary.Sweep.race_findings;
  Alcotest.(check bool) "chaos sweep left chaos off" false (Chaos.enabled ());
  Alcotest.(check bool) "race sweep left detector off" false (Race.enabled ())

(* ---------------- the failure path, end to end ---------------- *)

let broken_oracle =
  { Oracle.default with sssp = (fun _ ~source:_ _ -> Error "forced mismatch") }

let test_forced_mismatch_shrinks () =
  let summary =
    Sweep.run ~oracle:broken_oracle ~apps:[ Sweep.Sssp ]
      ~specs:[ Graph_case.Random { seed = 3; n = 48; m = 200; max_w = 12 } ]
      ~workers:[ 2 ] ~budget:30.0 ~seed:3 ~max_failures:1 ()
  in
  match summary.Sweep.failures with
  | [] -> Alcotest.fail "broken oracle produced no failure"
  | f :: _ -> (
      Alcotest.(check bool) "message mentions the forced mismatch" true
        (String.length f.message > 0);
      match f.shrunk with
      | None -> Alcotest.fail "no shrunk counterexample"
      | Some (Graph_case.Explicit { edges; _ } as spec) ->
          Alcotest.(check bool)
            (Printf.sprintf "shrunk to %d <= 10 edges" (List.length edges))
            true
            (List.length edges <= 10);
          (* The repro line carries the shrunk graph and the schedule. *)
          let spec_string = Graph_case.to_string spec in
          Alcotest.(check bool) "repro names check_runner" true
            (String.length f.repro > 0
            && String.sub f.repro 0 12 = "check_runner");
          let contains hay needle =
            let nl = String.length needle and hl = String.length hay in
            let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "repro embeds the shrunk spec" true
            (contains f.repro spec_string);
          (* And the line's pieces actually reproduce the failure. *)
          let spec' =
            match Graph_case.of_string spec_string with
            | Ok s -> s
            | Error e -> Alcotest.fail ("shrunk spec does not parse: " ^ e)
          in
          let case = Graph_case.build spec' in
          Pool.with_pool ~num_workers:2 (fun pool ->
              match
                Sweep.run_one ~oracle:broken_oracle ~pool Sweep.Sssp case
                  f.config.Sweep.schedule
              with
              | Error _ -> ()
              | Ok () -> Alcotest.fail "shrunk case no longer fails")
      | Some other ->
          Alcotest.fail
            ("shrunk spec is not explicit: " ^ Graph_case.to_string other))

(* ---------------- race detector ---------------- *)

let with_race f =
  Race.clear ();
  Race.enable ();
  Fun.protect ~finally:(fun () -> Race.disable ()) f

let test_race_catches_racy_fixture () =
  (* Four workers hammer eight shared slots with plain sets — the exact
     ownership violation the detector exists for. *)
  with_race (fun () ->
      Pool.with_pool ~num_workers:4 (fun pool ->
          let arr = Atomic_array.make 8 0 in
          Pool.run_workers pool (fun tid ->
              for i = 1 to 10_000 do
                Atomic_array.set arr (i land 7) tid
              done));
      Alcotest.(check bool) "racy fixture caught" true (Race.num_findings () > 0);
      match Race.findings () with
      | [] -> Alcotest.fail "num_findings > 0 but findings empty"
      | f :: _ ->
          Alcotest.(check bool) "distinct tids" true (f.first_tid <> f.second_tid);
          Alcotest.(check bool) "slot in range" true (f.slot >= 0 && f.slot < 8))

let test_race_silent_on_owned_slots () =
  (* The sanctioned discipline: each worker plain-sets only slots it
     owns. Same episode, same array, zero findings. *)
  with_race (fun () ->
      Pool.with_pool ~num_workers:4 (fun pool ->
          let arr = Atomic_array.make 4 0 in
          Pool.run_workers pool (fun tid ->
              for i = 1 to 10_000 do
                Atomic_array.set arr tid (i + tid)
              done));
      Alcotest.(check int) "owner-disciplined writes are silent" 0
        (Race.num_findings ()))

let test_race_episodes_do_not_alias () =
  (* The same slot written by different workers in *different* episodes is
     not a race: each episode bump invalidates the previous tags. *)
  with_race (fun () ->
      Pool.with_pool ~num_workers:2 (fun pool ->
          let arr = Atomic_array.make 1 0 in
          Pool.run_workers pool (fun tid ->
              if tid = 0 then Atomic_array.set arr 0 1);
          Pool.run_workers pool (fun tid ->
              if tid = 1 then Atomic_array.set arr 0 2));
      (* Sequential writes after the rounds must not alias either. *)
      Atomic_array.set (Atomic_array.make 1 0) 0 3;
      Alcotest.(check int) "cross-episode writes are silent" 0
        (Race.num_findings ()))

let test_race_cas_family_exempt () =
  (* fetch_min/fetch_add carry their own reconciliation; they are allowed
     to collide across workers. *)
  with_race (fun () ->
      Pool.with_pool ~num_workers:4 (fun pool ->
          let arr = Atomic_array.make 2 max_int in
          Pool.run_workers pool (fun tid ->
              for i = 1 to 1_000 do
                ignore (Atomic_array.fetch_min arr 0 (i + tid));
                ignore (Atomic_array.fetch_add arr 1 1)
              done));
      Alcotest.(check int) "CAS-family collisions are silent" 0
        (Race.num_findings ()))

(* ---------------- chaos ---------------- *)

let test_chaos_preserves_results () =
  let case =
    Graph_case.build (Graph_case.Random { seed = 7; n = 40; m = 180; max_w = 9 })
  in
  let g = Csr.of_edge_list case.Graph_case.el in
  let expected = Algorithms.Dijkstra.distances g ~source:0 in
  Chaos.enable ~seed:99;
  Fun.protect
    ~finally:(fun () -> Chaos.disable ())
    (fun () ->
      Alcotest.(check bool) "chaos reports enabled" true (Chaos.enabled ());
      Pool.with_pool ~num_workers:4 (fun pool ->
          List.iter
            (fun strategy ->
              let r =
                Algorithms.Sssp_delta.run ~pool ~graph:g
                  ~schedule:{ Schedule.default with strategy; delta = 3 }
                  ~source:0 ()
              in
              Alcotest.(check (array int))
                (Schedule.strategy_to_string strategy ^ " under chaos")
                expected r.dist)
            Testlib.all_strategies));
  Alcotest.(check bool) "chaos off again" false (Chaos.enabled ())

(* ---------------- oracles ---------------- *)

let test_oracle_cross_check () =
  let g =
    Csr.of_edge_list
      (Graph_case.build (Graph_case.Random { seed = 21; n = 30; m = 120; max_w = 7 }))
        .Graph_case.el
  in
  let dijkstra = Algorithms.Dijkstra.distances g ~source:0 in
  Alcotest.(check (array int)) "bellman-ford agrees with dijkstra" dijkstra
    (Oracle.bellman_ford g ~source:0);
  (match Oracle.default.Oracle.sssp g ~source:0 dijkstra with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("true distances rejected: " ^ e));
  let wrong = Array.copy dijkstra in
  wrong.(Array.length wrong - 1) <- 12345;
  match Oracle.default.Oracle.sssp g ~source:0 wrong with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "corrupted distances accepted"

let () =
  Alcotest.run "check"
    [
      ( "printable",
        [
          Alcotest.test_case "graph spec round-trip" `Quick test_graph_spec_roundtrip;
          Alcotest.test_case "schedule round-trip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "schedule rejects invalid" `Quick
            test_schedule_parse_rejects_invalid;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "small sweep clean" `Quick test_small_sweep_clean;
          Alcotest.test_case "variant sweep clean" `Quick
            test_variant_sweep_clean;
          Alcotest.test_case "chaos+race sweep silent" `Quick
            test_sweep_chaos_race_silent;
          Alcotest.test_case "forced mismatch shrinks" `Quick
            test_forced_mismatch_shrinks;
        ] );
      ( "race",
        [
          Alcotest.test_case "catches racy fixture" `Quick
            test_race_catches_racy_fixture;
          Alcotest.test_case "silent on owned slots" `Quick
            test_race_silent_on_owned_slots;
          Alcotest.test_case "episodes do not alias" `Quick
            test_race_episodes_do_not_alias;
          Alcotest.test_case "cas family exempt" `Quick test_race_cas_family_exempt;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "results preserved" `Quick test_chaos_preserves_results;
        ] );
      ( "oracle",
        [ Alcotest.test_case "cross-check and rejection" `Quick test_oracle_cross_check ] );
    ]
