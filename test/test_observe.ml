module Json = Support.Json
module Metrics = Observe.Metrics
module Span = Observe.Span
module Tracer = Observe.Tracer
module Report_diff = Observe.Report_diff
module Log = Observe.Log
module Timeline = Observe.Timeline
module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Schedule = Ordered.Schedule
module Stats = Ordered.Stats

(* ------------------------------------------------------------------ *)
(* Metrics: counters                                                    *)

let test_counter_monotonic () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "test.counter" in
  Alcotest.(check int) "fresh counter" 0 (Metrics.counter_value c);
  Metrics.incr c ~tid:0 ();
  Metrics.incr c ~tid:1 ~by:5 ();
  (* Worker ids beyond the slot count fold in by masking. *)
  Metrics.incr c ~tid:4097 ~by:2 ();
  Alcotest.(check int) "sums per-worker slots" 8 (Metrics.counter_value c);
  Alcotest.check_raises "negative increments rejected"
    (Invalid_argument "Metrics.incr: counters are monotonic (by < 0)")
    (fun () -> Metrics.incr c ~tid:0 ~by:(-1) ());
  Alcotest.(check int) "value unchanged after rejection" 8
    (Metrics.counter_value c);
  Alcotest.(check bool) "registration is idempotent" true
    (Metrics.counter reg "test.counter" == c)

let test_histogram_summary () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "test.hist" in
  Metrics.observe h 1e-6;
  Metrics.observe h 2e-6;
  Metrics.observe h (-5.0);
  (* clamps to zero, still counted *)
  let snap = Metrics.snapshot reg in
  let summary = List.assoc "test.hist" snap.Metrics.histograms in
  Alcotest.(check int) "count" 3 summary.Metrics.count;
  Alcotest.(check bool) "total covers both observations" true
    (summary.Metrics.total_ns >= 3000 && summary.Metrics.total_ns < 4000);
  Alcotest.(check int) "min clamped to zero" 0 summary.Metrics.min_ns;
  Alcotest.(check bool) "max is the largest" true (summary.Metrics.max_ns >= 2000);
  Alcotest.(check int) "bucket counts sum to count" 3
    (List.fold_left (fun acc (_, c) -> acc + c) 0 summary.Metrics.buckets)

let test_snapshot_diff () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "test.rounds" in
  let h = Metrics.histogram reg "test.phase" in
  Metrics.incr c ~tid:0 ~by:10 ();
  Metrics.observe h 1e-3;
  let earlier = Metrics.snapshot reg in
  Metrics.incr c ~tid:0 ~by:7 ();
  Metrics.observe h 2e-3;
  Metrics.observe h 3e-3;
  let later = Metrics.snapshot reg in
  let d = Metrics.diff ~earlier later in
  Alcotest.(check int) "counter diff is the delta" 7
    (List.assoc "test.rounds" d.Metrics.counters);
  let hd = List.assoc "test.phase" d.Metrics.histograms in
  Alcotest.(check int) "histogram diff count" 2 hd.Metrics.count;
  Alcotest.(check bool) "self-diff is empty" true
    (Metrics.is_empty (Metrics.diff ~earlier:later later));
  (* Round-trip: earlier + diff = later, entry-wise. *)
  List.iter
    (fun (name, v) ->
      let e = try List.assoc name earlier.Metrics.counters with Not_found -> 0 in
      let dv = List.assoc name d.Metrics.counters in
      Alcotest.(check int) ("counter round-trip " ^ name) v (e + dv))
    later.Metrics.counters

let test_reset () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "test.c" in
  Metrics.incr c ~tid:0 ~by:3 ();
  Metrics.reset reg;
  Alcotest.(check int) "reset zeroes, handle stays valid" 0
    (Metrics.counter_value c);
  Metrics.incr c ~tid:0 ();
  Alcotest.(check int) "usable after reset" 1 (Metrics.counter_value c)

(* The percentile estimator only sees log2 buckets, so its contract is
   positional, not numeric: the estimate's bucket is within one of the
   exact nearest-rank sample's bucket. Samples are pushed through
   [observe]'s seconds→ns conversion with a +0.5ns bias so truncation
   lands each one on its intended integer. *)
let log2_bucket v =
  let n = max 1 (int_of_float v) in
  let rec go b n = if n <= 1 then b else go (b + 1) (n lsr 1) in
  go 0 n

let qcheck_percentile_buckets =
  QCheck.Test.make ~name:"histogram percentiles within one log2 bucket"
    ~count:200
    QCheck.(list_of_size Gen.(1 -- 200) (int_range 1 (1 lsl 30)))
    (fun ns ->
      let reg = Metrics.create () in
      let h = Metrics.histogram reg "test.pct" in
      List.iter
        (fun v -> Metrics.observe h ((float_of_int v +. 0.5) /. 1e9))
        ns;
      let summary =
        List.assoc "test.pct" (Metrics.snapshot reg).Metrics.histograms
      in
      let sorted = Array.of_list ns in
      Array.sort compare sorted;
      let count = Array.length sorted in
      List.for_all
        (fun q ->
          let rank = max 1 (int_of_float (ceil (q *. float_of_int count))) in
          let exact = sorted.(rank - 1) in
          let est = Metrics.percentile_ns summary q in
          abs (log2_bucket est - log2_bucket (float_of_int exact)) <= 1)
        [ 0.; 0.5; 0.95; 0.99; 1. ])

let test_percentile_empty () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "test.empty" in
  ignore h;
  let summary =
    List.assoc "test.empty" (Metrics.snapshot reg).Metrics.histograms
  in
  Alcotest.(check (float 0.)) "empty histogram percentile" 0.
    (Metrics.percentile_ns summary 0.5)

(* ------------------------------------------------------------------ *)
(* Log: structured JSONL events                                         *)

let with_log_capture f =
  let buf = Buffer.create 256 in
  Log.set_writer (Some (Buffer.add_string buf));
  Fun.protect
    ~finally:(fun () ->
      Log.set_writer None;
      Log.set_level Log.Info)
    (fun () -> f buf)

let log_lines buf =
  Log.flush ();
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> String.trim l <> "")

let test_log_roundtrip () =
  with_log_capture (fun buf ->
      Log.set_level Log.Debug;
      Log.event Log.Debug "test.event" [ ("k", Json.Int 7) ];
      Log.event Log.Warn "test.slow" [ ("wall_ms", Json.Float 12.5) ];
      let lines = log_lines buf in
      Alcotest.(check int) "two lines" 2 (List.length lines);
      List.iter
        (fun line ->
          match Json.of_string line with
          | Error e -> Alcotest.fail ("log line does not parse: " ^ e)
          | Ok json -> (
              match
                ( Json.member "ts" json,
                  Json.member "level" json,
                  Json.member "event" json )
              with
              | Some (Json.Float _), Some (Json.String _), Some (Json.String _)
                ->
                  ()
              | _ -> Alcotest.fail "missing ts/level/event envelope"))
        lines;
      match Json.of_string (List.nth lines 1) with
      | Ok json ->
          Alcotest.(check bool) "emitter fields survive" true
            (Json.member "wall_ms" json = Some (Json.Float 12.5))
      | Error e -> Alcotest.fail e)

let test_log_threshold () =
  with_log_capture (fun buf ->
      (* Default level is Info. *)
      Alcotest.(check bool) "debug below threshold" false (Log.enabled Log.Debug);
      Alcotest.(check bool) "warn passes" true (Log.enabled Log.Warn);
      Log.event Log.Debug "test.dropped" [];
      Log.event Log.Info "test.kept" [];
      Alcotest.(check int) "only the info line lands" 1
        (List.length (log_lines buf)));
  Alcotest.(check bool) "no sink disables even errors" false
    (Log.enabled Log.Error)

let test_log_warn_flushes_immediately () =
  with_log_capture (fun buf ->
      Log.event Log.Info "test.buffered" [];
      Alcotest.(check string) "info stays in the worker buffer" ""
        (Buffer.contents buf);
      Log.event Log.Warn "test.urgent" [];
      (* The warn flushes its whole slot: both lines, in order. *)
      let lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "warn flushed the slot" 2 (List.length lines))

let level_testable =
  Alcotest.testable
    (fun ppf l -> Format.pp_print_string ppf (Log.level_name l))
    ( = )

let test_log_level_of_string () =
  Alcotest.(check (option level_testable)) "warn" (Some Log.Warn)
    (Log.level_of_string "WARN");
  Alcotest.(check (option level_testable)) "warning alias" (Some Log.Warn)
    (Log.level_of_string "warning");
  Alcotest.(check (option level_testable)) "unknown" None
    (Log.level_of_string "loud")

(* ------------------------------------------------------------------ *)
(* Timeline: the bench trajectory recorder                              *)

let tl_point ?(host = "vm") label sections =
  { Timeline.label; git_commit = label ^ "0000000"; hostname = host; sections }

(* The synthetic regression fixture: two flat points then a +49% step in
   [sssp]; [tiny] steps too but sits under the floor on both sides. *)
let test_timeline_regression () =
  let p label v =
    tl_point label [ ("sssp", v); ("tiny", v /. 1000.) ]
  in
  let r = Timeline.analyze [ p "a" 1.0; p "b" 1.02; p "c" 1.5 ] in
  Alcotest.(check int) "one regression" 1 r.Timeline.regressions;
  let row = List.find (fun row -> row.Timeline.section = "sssp") r.Timeline.rows in
  Alcotest.(check bool) "sssp flagged" true row.Timeline.regressed;
  (match row.Timeline.last_rel with
  | Some rel ->
      Alcotest.(check bool) "delta is vs the prior median" true
        (Float.abs (rel -. ((1.5 -. 1.01) /. 1.01)) < 1e-9)
  | None -> Alcotest.fail "no last_rel on the regressed row");
  Alcotest.(check bool) "series stats cover the step" true
    (row.Timeline.vmin = 1.0 && row.Timeline.vmax = 1.5
   && row.Timeline.stddev > 0.);
  let tiny = List.find (fun row -> row.Timeline.section = "tiny") r.Timeline.rows in
  Alcotest.(check bool) "floor suppresses sub-floor noise" true
    (tiny.Timeline.last_rel = None && not tiny.Timeline.regressed);
  let improved = Timeline.analyze [ p "a" 1.5; p "b" 1.5; p "c" 1.0 ] in
  Alcotest.(check int) "an improvement never gates" 0
    improved.Timeline.regressions;
  Alcotest.(check bool) "but is flagged as improved" true
    (List.exists (fun row -> row.Timeline.improved) improved.Timeline.rows)

let test_timeline_foreign_host () =
  let points =
    [
      tl_point "a" [ ("sssp", 1.0) ];
      tl_point "b" [ ("sssp", 1.0) ];
      tl_point ~host:"laptop" "c" [ ("sssp", 9.0) ];
    ]
  in
  let r = Timeline.analyze points in
  Alcotest.(check bool) "foreign point excluded from gating" false
    r.Timeline.gated.(2);
  Alcotest.(check int) "no regression from a foreign host" 0
    r.Timeline.regressions;
  let forced = Timeline.analyze ~gate_foreign:true points in
  Alcotest.(check int) "gate_foreign flags it" 1 forced.Timeline.regressions

let test_timeline_parse_trajectory () =
  let doc =
    {|[{"meta": {"git_commit": "aaa", "hostname": "vm"},
       "section_seconds": {"sssp": 1.0}},
      {"meta": {"git_commit": "bbb", "hostname": "vm"},
       "section_seconds": {"sssp": 1.1, "astar": 0.5}}]|}
  in
  match Timeline.points_of_string ~label:"traj.json" doc with
  | Error e -> Alcotest.fail e
  | Ok ([ a; b ] as points) ->
      Alcotest.(check string) "trajectory entries get indexed labels"
        "traj.json[0]" a.Timeline.label;
      Alcotest.(check string) "commit from meta" "bbb" b.Timeline.git_commit;
      let r = Timeline.analyze points in
      Alcotest.(check int) "sections union across points" 2
        (List.length r.Timeline.rows);
      let astar =
        List.find (fun row -> row.Timeline.section = "astar") r.Timeline.rows
      in
      Alcotest.(check bool) "absent value is None" true
        (astar.Timeline.values.(0) = None);
      (* Exercise both exporters for shape, not content. *)
      (match Json.of_string (Json.to_string (Timeline.to_json r)) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("to_json does not parse: " ^ e));
      Alcotest.(check bool) "pp renders the foreign-host marker set" true
        (String.length (Format.asprintf "%a" Timeline.pp r) > 0)
  | Ok l -> Alcotest.failf "expected 2 points, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

(* Global on/off state: always restore, the other suites assume it off. *)
let with_spans f =
  Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Span.set_enabled false) f

let hist_count snap name =
  match List.assoc_opt name snap.Metrics.histograms with
  | Some s -> s.Metrics.count
  | None -> 0

let test_span_disabled_is_noop () =
  Span.set_enabled false;
  let before = Metrics.snapshot Metrics.default in
  let r = Span.with_ "test.span.off" (fun () -> 41 + 1) in
  Alcotest.(check int) "body result" 42 r;
  let d = Metrics.diff ~earlier:before (Metrics.snapshot Metrics.default) in
  Alcotest.(check int) "nothing recorded" 0 (hist_count d "test.span.off")

let test_span_nesting_and_exceptions () =
  with_spans (fun () ->
      let before = Metrics.snapshot Metrics.default in
      (match
         Span.with_ "test.span.outer" (fun () ->
             Span.with_ "test.span.inner" (fun () -> raise Exit))
       with
      | () -> Alcotest.fail "expected Exit"
      | exception Exit -> ());
      let d = Metrics.diff ~earlier:before (Metrics.snapshot Metrics.default) in
      Alcotest.(check int) "outer recorded despite the raise" 1
        (hist_count d "test.span.outer");
      Alcotest.(check int) "inner recorded despite the raise" 1
        (hist_count d "test.span.inner"))

let test_pool_hook () =
  with_spans (fun () ->
      Span.install_pool_hook ();
      Fun.protect
        ~finally:(fun () -> Span.remove_pool_hook ())
        (fun () ->
          let before = Metrics.snapshot Metrics.default in
          Pool.with_pool ~num_workers:2 (fun pool ->
              for _ = 1 to 5 do
                Pool.run_workers pool (fun _ -> ())
              done);
          let d =
            Metrics.diff ~earlier:before (Metrics.snapshot Metrics.default)
          in
          Alcotest.(check int) "one episode histogram entry per run_workers" 5
            (hist_count d "pool.episode");
          Alcotest.(check int) "episode counter matches" 5
            (List.assoc "pool.episodes" d.Metrics.counters)))

(* Regression for the driver pattern (ordered_run --trace/--profile,
   bench): the process-wide pool hooks must come off even when the run
   body raises, or every later pool user keeps feeding a dead tracer. *)
let test_pool_hooks_detach_on_exception () =
  with_spans (fun () ->
      let t = Tracer.create () in
      Span.install_pool_hook ();
      Tracer.set_current (Some t);
      Tracer.install_pool_hooks ();
      (match
         Fun.protect
           ~finally:(fun () ->
             Span.remove_pool_hook ();
             Tracer.remove_pool_hooks ();
             Tracer.set_current None)
           (fun () -> failwith "driver blew up mid-run")
       with
      | () -> Alcotest.fail "expected Failure"
      | exception Failure _ -> ());
      let before = Metrics.snapshot Metrics.default in
      let events_before = Tracer.event_count t in
      Pool.with_pool ~num_workers:2 (fun pool ->
          Pool.run_workers pool (fun _ -> ()));
      let d = Metrics.diff ~earlier:before (Metrics.snapshot Metrics.default) in
      Alcotest.(check int) "no episode recorded after detach" 0
        (hist_count d "pool.episode");
      Alcotest.(check int) "no tracer events after detach" events_before
        (Tracer.event_count t))

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)

let test_json_emit () =
  let open Json in
  Alcotest.(check string)
    "escaping and scalars"
    {|{"a":null,"b\n":true,"c":[1,-2,"x\"y"],"nan":null}|}
    (to_string
       (Obj
          [
            ("a", Null);
            ("b\n", Bool true);
            ("c", List [ Int 1; Int (-2); String "x\"y" ]);
            ("nan", Float Float.nan);
          ]))

let test_json_parse () =
  let open Json in
  (match of_string {| {"k": [1, 2.5, "s", null, false]} |} with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check bool) "structure" true
        (equal v
           (Obj
              [ ("k", List [ Int 1; Float 2.5; String "s"; Null; Bool false ]) ])));
  (match of_string "[1," with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error _ -> ());
  match member "x" (Obj [ ("x", Int 3) ]) with
  | Some (Int 3) -> ()
  | _ -> Alcotest.fail "member lookup"

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map
          (fun f -> Json.Float (if Float.is_finite f then f else 0.0))
          float;
        map (fun s -> Json.String s) (string_size (int_bound 10));
      ]
  in
  sized_size (int_bound 4) (fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [
            (2, scalar);
            (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n - 1))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 4)
                   (pair (string_size (int_bound 6)) (self (n - 1)))) );
          ]))

let qcheck_json_roundtrip =
  QCheck.Test.make ~name:"json survives to_string/of_string" ~count:500
    (QCheck.make ~print:Json.to_string json_gen) (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> Json.equal v v'
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let qcheck_json_pp_roundtrip =
  QCheck.Test.make ~name:"pretty-printed json parses back" ~count:200
    (QCheck.make ~print:Json.to_string json_gen) (fun v ->
      let pretty = Format.asprintf "%a" Json.pp v in
      match Json.of_string pretty with
      | Ok v' -> Json.equal v v'
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

(* ------------------------------------------------------------------ *)
(* Stats / Trace export                                                 *)

let test_stats_sync_rendering () =
  let s = Stats.create () in
  s.Stats.sync_seconds <- 0.25;
  let render () = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "1-worker pool renders '-'" true
    (s.Stats.workers = 1
    &&
    let str = render () in
    String.length str >= 6
    && String.sub str (String.length str - 6) 6 = "sync=-");
  s.Stats.workers <- 2;
  let str = render () in
  let suffix = "sync=0.250000s" in
  Alcotest.(check bool) "multi-worker pool renders seconds" true
    (String.length str >= String.length suffix
    && String.sub str
         (String.length str - String.length suffix)
         (String.length suffix)
       = suffix);
  (match Json.member "sync_seconds" (Stats.to_json s) with
  | Some (Json.Float f) -> Alcotest.(check (float 1e-9)) "json value" 0.25 f
  | _ -> Alcotest.fail "expected a float");
  s.Stats.workers <- 1;
  match Json.member "sync_seconds" (Stats.to_json s) with
  | Some Json.Null -> ()
  | _ -> Alcotest.fail "1-worker sync_seconds must export as null"

(* ------------------------------------------------------------------ *)
(* Tracer: per-worker timelines as Chrome trace_event JSON              *)

let with_tracer ?capacity f =
  let t = Tracer.create ?capacity_per_track:capacity () in
  Tracer.set_current (Some t);
  Fun.protect ~finally:(fun () -> Tracer.set_current None) (fun () -> f t)

let trace_events json =
  match Json.member "traceEvents" json with
  | Some (Json.List l) -> l
  | _ -> Alcotest.fail "export has no traceEvents array"

let str_field name e =
  match Json.member name e with Some (Json.String s) -> Some s | _ -> None

let int_field name e =
  match Json.member name e with Some (Json.Int i) -> Some i | _ -> None

(* Every track's B/E events must pair up in order: that is what makes the
   export loadable as nested slices. *)
let balanced events =
  let depth = Hashtbl.create 8 in
  let get tid = try Hashtbl.find depth tid with Not_found -> 0 in
  let ok = ref true in
  List.iter
    (fun e ->
      match (str_field "ph" e, int_field "tid" e) with
      | Some "B", Some tid -> Hashtbl.replace depth tid (get tid + 1)
      | Some "E", Some tid ->
          let d = get tid - 1 in
          if d < 0 then ok := false else Hashtbl.replace depth tid d
      | _ -> ())
    events;
  Hashtbl.iter (fun _ d -> if d <> 0 then ok := false) depth;
  !ok

let qcheck_tracer_wraparound =
  QCheck.Test.make ~name:"ring wraparound keeps the newest events" ~count:100
    QCheck.(pair (int_bound 200) (int_bound 5))
    (fun (n, cap_exp) ->
      let cap = 1 lsl cap_exp in
      let t = Tracer.create ~capacity_per_track:cap () in
      let lbl = Tracer.label "test.trace_counter" in
      for i = 0 to n - 1 do
        Tracer.counter t ~tid:0 lbl i
      done;
      let values =
        List.filter_map
          (fun e ->
            match (str_field "ph" e, Json.member "args" e) with
            | Some "C", Some args -> (
                match Json.member "value" args with
                | Some (Json.Int v) -> Some v
                | _ -> None)
            | _ -> None)
          (trace_events (Tracer.to_json t))
      in
      let kept = min n cap in
      values = List.init kept (fun i -> n - kept + i)
      && Tracer.event_count t = kept
      && Tracer.dropped_events t = max 0 (n - cap))

let qcheck_tracer_balanced =
  (* Arbitrary begin/end sequences — including unmatched ends, unclosed
     begins, and tids beyond num_tracks — on a tiny ring, so wraparound
     orphans are common. The export must still balance every track. *)
  QCheck.Test.make ~name:"export nesting is balanced per track" ~count:200
    QCheck.(list_of_size Gen.(int_bound 120) (triple (int_bound 20) bool (int_bound 2)))
    (fun ops ->
      let t = Tracer.create ~capacity_per_track:8 () in
      let lbls =
        [| Tracer.label "test.a"; Tracer.label "test.b"; Tracer.label "test.c" |]
      in
      List.iter
        (fun (tid, is_begin, l) ->
          if is_begin then Tracer.begin_ t ~tid lbls.(l)
          else Tracer.end_ t ~tid lbls.(l))
        ops;
      balanced (trace_events (Tracer.to_json t)))

let qcheck_tracer_roundtrip =
  QCheck.Test.make ~name:"trace export survives to_string/of_string" ~count:50
    QCheck.(list_of_size Gen.(int_bound 40) (pair (int_bound 3) (int_bound 2)))
    (fun ops ->
      let t = Tracer.create ~capacity_per_track:16 () in
      let lbls =
        [| Tracer.label "test.a"; Tracer.label "test.b"; Tracer.label "test.c" |]
      in
      List.iter
        (fun (tid, l) ->
          Tracer.begin_ t ~tid ~arg:l lbls.(l);
          Tracer.end_ t ~tid lbls.(l))
        ops;
      let json = Tracer.to_json t in
      match Json.of_string (Json.to_string json) with
      | Ok v -> Json.equal v json
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let test_tracer_write_dropped () =
  let t = Tracer.create ~capacity_per_track:4 () in
  let lbl = Tracer.label "test.spam" in
  for i = 0 to 9 do
    Tracer.counter t ~tid:0 lbl i
  done;
  Alcotest.(check int) "dropped" 6 (Tracer.dropped_events t);
  let before = Metrics.snapshot Metrics.default in
  let path = Filename.temp_file "trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tracer.write t path;
      let d = Metrics.diff ~earlier:before (Metrics.snapshot Metrics.default) in
      Alcotest.(check int) "write folds the drop count into metrics" 6
        (List.assoc "trace.dropped_events" d.Metrics.counters);
      (* A second write reports only the delta — none here. *)
      Tracer.write t path;
      let d = Metrics.diff ~earlier:before (Metrics.snapshot Metrics.default) in
      Alcotest.(check int) "no double counting across writes" 6
        (List.assoc "trace.dropped_events" d.Metrics.counters);
      let contents =
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Json.of_string contents with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("written trace does not parse: " ^ e))

(* ------------------------------------------------------------------ *)
(* Golden: the --profile flight table on a deterministic run            *)

(* A 6-vertex weighted path 0 -1-> 1 -1-> 2 ... with one shortcut; SSSP
   from 0 with delta=1 on one worker is fully deterministic, so the
   [~times:false] table (names and counts, no wall-clock) is stable. *)
let profile_graph () =
  Csr.of_edge_list
    (Graphs.Edge_list.create ~num_vertices:6
       (Array.map
          (fun (src, dst, weight) -> { Graphs.Edge_list.src; dst; weight })
          [| (0, 1, 1); (1, 2, 1); (2, 3, 1); (3, 4, 1); (4, 5, 1); (0, 3, 5) |]))

let test_profile_table_golden () =
  with_spans (fun () ->
      Span.install_pool_hook ();
      Fun.protect
        ~finally:(fun () -> Span.remove_pool_hook ())
        (fun () ->
          let before = Metrics.snapshot Metrics.default in
          Pool.with_pool ~num_workers:1 (fun pool ->
              ignore
                (Algorithms.Sssp_delta.run ~pool ~graph:(profile_graph ())
                   ~schedule:Schedule.default ~source:0 ()));
          let d =
            Metrics.diff ~earlier:before (Metrics.snapshot Metrics.default)
          in
          let table = Format.asprintf "%a" (Metrics.pp ~times:false) d in
          let expected =
            "counter                                       value\n\
             engine.bucket_inserts                             7\n\
             engine.buckets_processed                          6\n\
             engine.edges_relaxed                              6\n\
             engine.global_syncs                               6\n\
             engine.rounds                                     6\n\
             engine.runs                                       1\n\
             engine.vertices_processed                         6\n\
             pool.episodes                                     6\n\
             span                                      count\n\
             eager_buckets.drain_global                    6\n\
             eager_buckets.next_global_key                 7\n\
             engine.dequeue                                6\n\
             engine.round                                  6\n\
             engine.sync_wait                              6\n\
             pool.episode                                  6\n\
             traverse.push                                 6\n"
          in
          Alcotest.(check string) "flight table" expected table))

(* End to end: a 2-worker SSSP run with the tracer current produces a
   loadable timeline — one track per worker, nested round slices with the
   round index as payload, thread_name metadata. *)
let test_tracer_sssp_export () =
  with_tracer (fun t ->
      Tracer.install_pool_hooks ();
      Fun.protect
        ~finally:(fun () -> Tracer.remove_pool_hooks ())
        (fun () ->
          Pool.with_pool ~num_workers:2 (fun pool ->
              ignore
                (Algorithms.Sssp_delta.run ~pool ~graph:(profile_graph ())
                   ~schedule:Schedule.default ~source:0 ())));
      let json = Tracer.to_json t in
      (match Json.of_string (Json.to_string json) with
      | Ok v ->
          Alcotest.(check bool) "export round-trips" true (Json.equal v json)
      | Error e -> Alcotest.fail ("export does not parse: " ^ e));
      let events = trace_events json in
      let data_tids =
        List.sort_uniq compare
          (List.filter_map
             (fun e ->
               match (str_field "ph" e, int_field "tid" e) with
               | Some ("B" | "E" | "C"), Some tid -> Some tid
               | _ -> None)
             events)
      in
      Alcotest.(check (list int)) "one track per worker" [ 0; 1 ] data_tids;
      Alcotest.(check bool) "nesting balanced" true (balanced events);
      Alcotest.(check bool) "thread_name metadata present" true
        (List.exists
           (fun e ->
             str_field "name" e = Some "thread_name"
             && str_field "ph" e = Some "M")
           events);
      Alcotest.(check bool) "worker slices on the helper track" true
        (List.exists
           (fun e ->
             str_field "name" e = Some "pool.worker" && int_field "tid" e = Some 1)
           events);
      Alcotest.(check bool) "round slices carry the round index" true
        (List.exists
           (fun e ->
             str_field "name" e = Some "engine.round"
             && str_field "ph" e = Some "B"
             &&
             match Json.member "args" e with
             | Some args -> (
                 match Json.member "n" args with
                 | Some (Json.Int n) -> n >= 1
                 | _ -> false)
             | None -> false)
           events))

(* Query-scoped telemetry: async slices pair up as Chrome "b"/"e"
   events keyed by the query id, and the ambient context stamps every
   synchronous slice recorded inside it with args.query. *)
let test_tracer_async_and_context () =
  with_tracer (fun t ->
      let q = Tracer.label "service.query" in
      let work = Tracer.label "test.work" in
      Tracer.async_begin t ~tid:0 ~id:41 q;
      Tracer.set_context (Some 41);
      Alcotest.(check (option int)) "context reads back" (Some 41)
        (Tracer.context ());
      Tracer.begin_ t ~tid:0 work;
      Tracer.end_ t ~tid:0 work;
      Tracer.set_context None;
      Tracer.async_end t ~tid:0 ~id:41 q;
      Tracer.begin_ t ~tid:0 work;
      Tracer.end_ t ~tid:0 work;
      let events = trace_events (Tracer.to_json t) in
      let async ph =
        List.exists
          (fun e ->
            str_field "ph" e = Some ph
            && str_field "cat" e = Some "query"
            && int_field "id" e = Some 41
            && str_field "name" e = Some "service.query")
          events
      in
      Alcotest.(check bool) "async begin exported" true (async "b");
      Alcotest.(check bool) "async end exported" true (async "e");
      let ctx_of e =
        match Json.member "args" e with
        | Some args -> (
            match Json.member "query" args with
            | Some (Json.Int v) -> Some v
            | _ -> None)
        | None -> None
      in
      match
        List.filter
          (fun e ->
            str_field "name" e = Some "test.work" && str_field "ph" e = Some "B")
          events
      with
      | [ inside; outside ] ->
          Alcotest.(check (option int)) "slice inside carries the query id"
            (Some 41) (ctx_of inside);
          Alcotest.(check (option int)) "slice outside carries none" None
            (ctx_of outside)
      | l -> Alcotest.failf "expected 2 work slices, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Report_diff: the bench regression gate                               *)

let read_json path =
  let contents =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string contents with
  | Ok v -> v
  | Error e -> Alcotest.fail (path ^ ": " ^ e)

let test_report_diff_golden () =
  let old_ = read_json "golden/bench_diff_old.json" in
  let new_ = read_json "golden/bench_diff_new.json" in
  Alcotest.(check int) "git_commit alone never mismatches" 0
    (List.length (Report_diff.provenance_mismatches ~old_ ~new_));
  let d = Report_diff.compare_reports ~old_ ~new_ () in
  Alcotest.(check int) "regressions" 2 d.Report_diff.regressions;
  (* The exact delta table is pinned under test/golden/; regenerate with
       dune exec bin/bench_diff.exe -- test/golden/bench_diff_old.json \
         test/golden/bench_diff_new.json | tail -n +3 \
         > test/golden/bench_diff_table.txt
     after inspecting the change. *)
  let expected =
    let ic = open_in "golden/bench_diff_table.txt" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check string) "delta table" expected
    (Format.asprintf "%a" Report_diff.pp d)

let test_report_diff_identical () =
  let old_ = read_json "golden/bench_diff_old.json" in
  let d = Report_diff.compare_reports ~old_ ~new_:old_ () in
  Alcotest.(check int) "no regressions against itself" 0 d.Report_diff.regressions;
  Alcotest.(check bool) "all deltas zero" true
    (List.for_all (fun c -> c.Report_diff.delta_pct = 0.0) d.Report_diff.cells);
  Alcotest.(check (list string)) "no warnings" [] d.Report_diff.warnings

let test_report_diff_provenance () =
  let old_ = read_json "golden/bench_diff_old.json" in
  let other =
    Json.Obj
      [
        ( "meta",
          Json.Obj
            [
              ("hostname", Json.String "elsewhere"); ("workers", Json.Int 4);
            ] );
      ]
  in
  match Report_diff.provenance_mismatches ~old_ ~new_:other with
  | [ ("hostname", "ci-runner", "elsewhere"); ("workers", "1", "4") ] -> ()
  | other ->
      Alcotest.failf "unexpected mismatch list (%d entries)" (List.length other)

let () =
  Alcotest.run "observe"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonic;
          Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
          Alcotest.test_case "snapshot/diff" `Quick test_snapshot_diff;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "empty percentile" `Quick test_percentile_empty;
          QCheck_alcotest.to_alcotest qcheck_percentile_buckets;
        ] );
      ( "log",
        [
          Alcotest.test_case "round-trip" `Quick test_log_roundtrip;
          Alcotest.test_case "level threshold" `Quick test_log_threshold;
          Alcotest.test_case "warn flushes immediately" `Quick
            test_log_warn_flushes_immediately;
          Alcotest.test_case "level_of_string" `Quick test_log_level_of_string;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "regression fixture" `Quick
            test_timeline_regression;
          Alcotest.test_case "foreign host gating" `Quick
            test_timeline_foreign_host;
          Alcotest.test_case "trajectory parsing" `Quick
            test_timeline_parse_trajectory;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_span_disabled_is_noop;
          Alcotest.test_case "nesting and exceptions" `Quick
            test_span_nesting_and_exceptions;
          Alcotest.test_case "pool hook" `Quick test_pool_hook;
          Alcotest.test_case "hooks detach on exception" `Quick
            test_pool_hooks_detach_on_exception;
        ] );
      ( "json",
        [
          Alcotest.test_case "emit" `Quick test_json_emit;
          Alcotest.test_case "parse" `Quick test_json_parse;
          QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_json_pp_roundtrip;
        ] );
      ( "export",
        [
          Alcotest.test_case "stats sync rendering" `Quick
            test_stats_sync_rendering;
          Alcotest.test_case "profile table golden" `Quick
            test_profile_table_golden;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "sssp export" `Quick test_tracer_sssp_export;
          Alcotest.test_case "async slices and query context" `Quick
            test_tracer_async_and_context;
          Alcotest.test_case "write reports drops" `Quick
            test_tracer_write_dropped;
          QCheck_alcotest.to_alcotest qcheck_tracer_wraparound;
          QCheck_alcotest.to_alcotest qcheck_tracer_balanced;
          QCheck_alcotest.to_alcotest qcheck_tracer_roundtrip;
        ] );
      ( "report_diff",
        [
          Alcotest.test_case "golden delta table" `Quick test_report_diff_golden;
          Alcotest.test_case "identical reports" `Quick
            test_report_diff_identical;
          Alcotest.test_case "provenance mismatch" `Quick
            test_report_diff_provenance;
        ] );
    ]
