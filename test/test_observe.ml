module Json = Support.Json
module Metrics = Observe.Metrics
module Span = Observe.Span
module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Schedule = Ordered.Schedule
module Stats = Ordered.Stats

(* ------------------------------------------------------------------ *)
(* Metrics: counters                                                    *)

let test_counter_monotonic () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "test.counter" in
  Alcotest.(check int) "fresh counter" 0 (Metrics.counter_value c);
  Metrics.incr c ~tid:0 ();
  Metrics.incr c ~tid:1 ~by:5 ();
  (* Worker ids beyond the slot count fold in by masking. *)
  Metrics.incr c ~tid:4097 ~by:2 ();
  Alcotest.(check int) "sums per-worker slots" 8 (Metrics.counter_value c);
  Alcotest.check_raises "negative increments rejected"
    (Invalid_argument "Metrics.incr: counters are monotonic (by < 0)")
    (fun () -> Metrics.incr c ~tid:0 ~by:(-1) ());
  Alcotest.(check int) "value unchanged after rejection" 8
    (Metrics.counter_value c);
  Alcotest.(check bool) "registration is idempotent" true
    (Metrics.counter reg "test.counter" == c)

let test_histogram_summary () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "test.hist" in
  Metrics.observe h 1e-6;
  Metrics.observe h 2e-6;
  Metrics.observe h (-5.0);
  (* clamps to zero, still counted *)
  let snap = Metrics.snapshot reg in
  let summary = List.assoc "test.hist" snap.Metrics.histograms in
  Alcotest.(check int) "count" 3 summary.Metrics.count;
  Alcotest.(check bool) "total covers both observations" true
    (summary.Metrics.total_ns >= 3000 && summary.Metrics.total_ns < 4000);
  Alcotest.(check int) "min clamped to zero" 0 summary.Metrics.min_ns;
  Alcotest.(check bool) "max is the largest" true (summary.Metrics.max_ns >= 2000);
  Alcotest.(check int) "bucket counts sum to count" 3
    (List.fold_left (fun acc (_, c) -> acc + c) 0 summary.Metrics.buckets)

let test_snapshot_diff () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "test.rounds" in
  let h = Metrics.histogram reg "test.phase" in
  Metrics.incr c ~tid:0 ~by:10 ();
  Metrics.observe h 1e-3;
  let earlier = Metrics.snapshot reg in
  Metrics.incr c ~tid:0 ~by:7 ();
  Metrics.observe h 2e-3;
  Metrics.observe h 3e-3;
  let later = Metrics.snapshot reg in
  let d = Metrics.diff ~earlier later in
  Alcotest.(check int) "counter diff is the delta" 7
    (List.assoc "test.rounds" d.Metrics.counters);
  let hd = List.assoc "test.phase" d.Metrics.histograms in
  Alcotest.(check int) "histogram diff count" 2 hd.Metrics.count;
  Alcotest.(check bool) "self-diff is empty" true
    (Metrics.is_empty (Metrics.diff ~earlier:later later));
  (* Round-trip: earlier + diff = later, entry-wise. *)
  List.iter
    (fun (name, v) ->
      let e = try List.assoc name earlier.Metrics.counters with Not_found -> 0 in
      let dv = List.assoc name d.Metrics.counters in
      Alcotest.(check int) ("counter round-trip " ^ name) v (e + dv))
    later.Metrics.counters

let test_reset () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "test.c" in
  Metrics.incr c ~tid:0 ~by:3 ();
  Metrics.reset reg;
  Alcotest.(check int) "reset zeroes, handle stays valid" 0
    (Metrics.counter_value c);
  Metrics.incr c ~tid:0 ();
  Alcotest.(check int) "usable after reset" 1 (Metrics.counter_value c)

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

(* Global on/off state: always restore, the other suites assume it off. *)
let with_spans f =
  Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Span.set_enabled false) f

let hist_count snap name =
  match List.assoc_opt name snap.Metrics.histograms with
  | Some s -> s.Metrics.count
  | None -> 0

let test_span_disabled_is_noop () =
  Span.set_enabled false;
  let before = Metrics.snapshot Metrics.default in
  let r = Span.with_ "test.span.off" (fun () -> 41 + 1) in
  Alcotest.(check int) "body result" 42 r;
  let d = Metrics.diff ~earlier:before (Metrics.snapshot Metrics.default) in
  Alcotest.(check int) "nothing recorded" 0 (hist_count d "test.span.off")

let test_span_nesting_and_exceptions () =
  with_spans (fun () ->
      let before = Metrics.snapshot Metrics.default in
      (match
         Span.with_ "test.span.outer" (fun () ->
             Span.with_ "test.span.inner" (fun () -> raise Exit))
       with
      | () -> Alcotest.fail "expected Exit"
      | exception Exit -> ());
      let d = Metrics.diff ~earlier:before (Metrics.snapshot Metrics.default) in
      Alcotest.(check int) "outer recorded despite the raise" 1
        (hist_count d "test.span.outer");
      Alcotest.(check int) "inner recorded despite the raise" 1
        (hist_count d "test.span.inner"))

let test_pool_hook () =
  with_spans (fun () ->
      Span.install_pool_hook ();
      Fun.protect
        ~finally:(fun () -> Span.remove_pool_hook ())
        (fun () ->
          let before = Metrics.snapshot Metrics.default in
          Pool.with_pool ~num_workers:2 (fun pool ->
              for _ = 1 to 5 do
                Pool.run_workers pool (fun _ -> ())
              done);
          let d =
            Metrics.diff ~earlier:before (Metrics.snapshot Metrics.default)
          in
          Alcotest.(check int) "one episode histogram entry per run_workers" 5
            (hist_count d "pool.episode");
          Alcotest.(check int) "episode counter matches" 5
            (List.assoc "pool.episodes" d.Metrics.counters)))

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)

let test_json_emit () =
  let open Json in
  Alcotest.(check string)
    "escaping and scalars"
    {|{"a":null,"b\n":true,"c":[1,-2,"x\"y"],"nan":null}|}
    (to_string
       (Obj
          [
            ("a", Null);
            ("b\n", Bool true);
            ("c", List [ Int 1; Int (-2); String "x\"y" ]);
            ("nan", Float Float.nan);
          ]))

let test_json_parse () =
  let open Json in
  (match of_string {| {"k": [1, 2.5, "s", null, false]} |} with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check bool) "structure" true
        (equal v
           (Obj
              [ ("k", List [ Int 1; Float 2.5; String "s"; Null; Bool false ]) ])));
  (match of_string "[1," with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error _ -> ());
  match member "x" (Obj [ ("x", Int 3) ]) with
  | Some (Int 3) -> ()
  | _ -> Alcotest.fail "member lookup"

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map
          (fun f -> Json.Float (if Float.is_finite f then f else 0.0))
          float;
        map (fun s -> Json.String s) (string_size (int_bound 10));
      ]
  in
  sized_size (int_bound 4) (fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [
            (2, scalar);
            (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n - 1))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 4)
                   (pair (string_size (int_bound 6)) (self (n - 1)))) );
          ]))

let qcheck_json_roundtrip =
  QCheck.Test.make ~name:"json survives to_string/of_string" ~count:500
    (QCheck.make ~print:Json.to_string json_gen) (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> Json.equal v v'
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let qcheck_json_pp_roundtrip =
  QCheck.Test.make ~name:"pretty-printed json parses back" ~count:200
    (QCheck.make ~print:Json.to_string json_gen) (fun v ->
      let pretty = Format.asprintf "%a" Json.pp v in
      match Json.of_string pretty with
      | Ok v' -> Json.equal v v'
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

(* ------------------------------------------------------------------ *)
(* Stats / Trace export                                                 *)

let test_stats_sync_rendering () =
  let s = Stats.create () in
  s.Stats.sync_seconds <- 0.25;
  let render () = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "1-worker pool renders '-'" true
    (s.Stats.workers = 1
    &&
    let str = render () in
    String.length str >= 6
    && String.sub str (String.length str - 6) 6 = "sync=-");
  s.Stats.workers <- 2;
  let str = render () in
  let suffix = "sync=0.250000s" in
  Alcotest.(check bool) "multi-worker pool renders seconds" true
    (String.length str >= String.length suffix
    && String.sub str
         (String.length str - String.length suffix)
         (String.length suffix)
       = suffix);
  (match Json.member "sync_seconds" (Stats.to_json s) with
  | Some (Json.Float f) -> Alcotest.(check (float 1e-9)) "json value" 0.25 f
  | _ -> Alcotest.fail "expected a float");
  s.Stats.workers <- 1;
  match Json.member "sync_seconds" (Stats.to_json s) with
  | Some Json.Null -> ()
  | _ -> Alcotest.fail "1-worker sync_seconds must export as null"

(* ------------------------------------------------------------------ *)
(* Golden: the --profile flight table on a deterministic run            *)

(* A 6-vertex weighted path 0 -1-> 1 -1-> 2 ... with one shortcut; SSSP
   from 0 with delta=1 on one worker is fully deterministic, so the
   [~times:false] table (names and counts, no wall-clock) is stable. *)
let profile_graph () =
  Csr.of_edge_list
    (Graphs.Edge_list.create ~num_vertices:6
       (Array.map
          (fun (src, dst, weight) -> { Graphs.Edge_list.src; dst; weight })
          [| (0, 1, 1); (1, 2, 1); (2, 3, 1); (3, 4, 1); (4, 5, 1); (0, 3, 5) |]))

let test_profile_table_golden () =
  with_spans (fun () ->
      Span.install_pool_hook ();
      Fun.protect
        ~finally:(fun () -> Span.remove_pool_hook ())
        (fun () ->
          let before = Metrics.snapshot Metrics.default in
          Pool.with_pool ~num_workers:1 (fun pool ->
              ignore
                (Algorithms.Sssp_delta.run ~pool ~graph:(profile_graph ())
                   ~schedule:Schedule.default ~source:0 ()));
          let d =
            Metrics.diff ~earlier:before (Metrics.snapshot Metrics.default)
          in
          let table = Format.asprintf "%a" (Metrics.pp ~times:false) d in
          let expected =
            "counter                                       value\n\
             engine.bucket_inserts                             7\n\
             engine.buckets_processed                          6\n\
             engine.edges_relaxed                              6\n\
             engine.global_syncs                               6\n\
             engine.rounds                                     6\n\
             engine.runs                                       1\n\
             engine.vertices_processed                         6\n\
             pool.episodes                                     6\n\
             span                                      count\n\
             eager_buckets.drain_global                    6\n\
             eager_buckets.next_global_key                 7\n\
             engine.dequeue                                6\n\
             engine.sync_wait                              6\n\
             engine.traverse.push                          6\n\
             pool.episode                                  6\n"
          in
          Alcotest.(check string) "flight table" expected table))

let () =
  Alcotest.run "observe"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonic;
          Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
          Alcotest.test_case "snapshot/diff" `Quick test_snapshot_diff;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_span_disabled_is_noop;
          Alcotest.test_case "nesting and exceptions" `Quick
            test_span_nesting_and_exceptions;
          Alcotest.test_case "pool hook" `Quick test_pool_hook;
        ] );
      ( "json",
        [
          Alcotest.test_case "emit" `Quick test_json_emit;
          Alcotest.test_case "parse" `Quick test_json_parse;
          QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_json_pp_roundtrip;
        ] );
      ( "export",
        [
          Alcotest.test_case "stats sync rendering" `Quick
            test_stats_sync_rendering;
          Alcotest.test_case "profile table golden" `Quick
            test_profile_table_golden;
        ] );
    ]
