(* graph_gen: write synthetic workload graphs to disk.

   The generators stand in for the paper's datasets (DESIGN.md §3):
   rmat ~ social networks, road ~ DIMACS road networks (with coordinates),
   er ~ uniform random graphs for testing. *)

open Cmdliner

let write ~kind ~scale ~edge_factor ~rows ~cols ~seed ~weights ~out =
  let rng = Support.Rng.create seed in
  let base, coords =
    match kind with
    | "rmat" -> (Graphs.Generators.rmat ~rng ~scale ~edge_factor (), None)
    | "road" ->
        let el, coords = Graphs.Generators.road_grid ~rng ~rows ~cols () in
        (el, Some coords)
    | "er" ->
        ( Graphs.Generators.erdos_renyi ~rng ~num_vertices:(1 lsl scale)
            ~num_edges:(edge_factor * (1 lsl scale))
            (),
          None )
    | other ->
        Printf.eprintf "unknown graph kind %S (rmat|road|er)\n" other;
        exit 1
  in
  let el =
    match (kind, weights) with
    | "road", _ -> base (* road weights are geometric; keep them *)
    | _, "uniform" -> Graphs.Generators.assign_weights ~rng ~lo:1 ~hi:1000 base
    | _, "wbfs" -> Graphs.Generators.wbfs_weights ~rng base
    | _, "unit" -> base
    | _, other ->
        Printf.eprintf "unknown weight distribution %S (uniform|wbfs|unit)\n" other;
        exit 1
  in
  Graphs.Graph_io.write_edge_list out el;
  Printf.printf "wrote %s: %d vertices, %d edges\n" out el.Graphs.Edge_list.num_vertices
    (Graphs.Edge_list.num_edges el);
  match coords with
  | Some c ->
      let coord_path = out ^ ".coords" in
      Graphs.Graph_io.write_coords coord_path c;
      Printf.printf "wrote %s\n" coord_path
  | None -> ()

let () =
  let kind =
    Arg.(value & opt string "rmat" & info [ "kind" ] ~doc:"Graph family: rmat|road|er")
  in
  let scale =
    Arg.(value & opt int 14 & info [ "scale" ] ~doc:"log2 vertices (rmat/er)")
  in
  let edge_factor =
    Arg.(value & opt int 16 & info [ "edge-factor" ] ~doc:"Edges per vertex (rmat/er)")
  in
  let rows = Arg.(value & opt int 300 & info [ "rows" ] ~doc:"Road grid rows") in
  let cols = Arg.(value & opt int 300 & info [ "cols" ] ~doc:"Road grid columns") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed") in
  let weights =
    Arg.(
      value & opt string "uniform"
      & info [ "weights" ] ~doc:"Weight distribution: uniform|wbfs|unit")
  in
  let out =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT" ~doc:"Output path")
  in
  let term =
    Term.(
      const (fun kind scale edge_factor rows cols seed weights out ->
          write ~kind ~scale ~edge_factor ~rows ~cols ~seed ~weights ~out)
      $ kind $ scale $ edge_factor $ rows $ cols $ seed $ weights $ out)
  in
  exit (Cmd.eval (Cmd.v (Cmd.info "graph_gen" ~doc:"Generate synthetic graphs") term))
