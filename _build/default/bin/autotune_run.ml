(* autotune_run: the §5.3 autotuner as a CLI — search the schedule space
   for the fastest configuration of an algorithm on a concrete graph, and
   print the winning schedule in scheduling-language form. *)

open Cmdliner

let run algorithm graph_path source workers budget seed =
  let el = Graphs.Graph_io.load graph_path in
  Parallel.Pool.with_pool ~num_workers:workers (fun pool ->
      let evaluate =
        match algorithm with
        | "sssp" ->
            let graph = Graphs.Csr.of_edge_list el in
            fun schedule ->
              snd
                (Support.Timer.time (fun () ->
                     Algorithms.Sssp_delta.run ~pool ~graph ~schedule ~source ()))
        | "kcore" ->
            let graph = Graphs.Csr.of_edge_list (Graphs.Edge_list.symmetrized el) in
            fun schedule ->
              snd
                (Support.Timer.time (fun () ->
                     Algorithms.Kcore.run ~pool ~graph ~schedule ()))
        | "widest" ->
            let graph = Graphs.Csr.of_edge_list el in
            fun schedule ->
              snd
                (Support.Timer.time (fun () ->
                     Algorithms.Widest_path.run ~pool ~graph ~schedule ~source ()))
        | other ->
            Printf.eprintf "unknown algorithm %S (sssp|kcore|widest)\n" other;
            exit 1
      in
      let space =
        let base =
          { Autotune.Search_space.default with
            Autotune.Search_space.allow_dense_pull = false }
        in
        if algorithm = "kcore" then
          {
            base with
            Autotune.Search_space.strategies =
              [
                Ordered.Schedule.Eager_with_fusion;
                Ordered.Schedule.Eager_no_fusion;
                Ordered.Schedule.Lazy;
                Ordered.Schedule.Lazy_constant_sum;
              ];
            max_delta_exp = 0 (* k-core admits no coarsening *);
          }
        else base
      in
      Printf.printf "searching %d schedule points (budget %d trials)...\n%!"
        (Autotune.Search_space.size space)
        budget;
      let rng = Support.Rng.create seed in
      let result = Autotune.Tuner.tune ~space ~rng ~budget ~evaluate () in
      List.iteri
        (fun i m ->
          Printf.printf "  trial %2d: %8.4fs  %s\n" (i + 1) m.Autotune.Tuner.seconds
            (Ordered.Schedule.strategy_to_string
               m.Autotune.Tuner.schedule.Ordered.Schedule.strategy))
        result.Autotune.Tuner.trials;
      Printf.printf "\nbest: %.4fs with schedule\n  %s\n"
        result.Autotune.Tuner.best.Autotune.Tuner.seconds
        (Format.asprintf "%a" Ordered.Schedule.pp
           result.Autotune.Tuner.best.Autotune.Tuner.schedule))

let () =
  let algorithm =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ALGORITHM"
           ~doc:"sssp|kcore|widest")
  in
  let graph =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"GRAPH" ~doc:"Graph file")
  in
  let source = Arg.(value & opt int 0 & info [ "source" ] ~doc:"Source vertex") in
  let workers = Arg.(value & opt int 1 & info [ "j"; "workers" ] ~doc:"Worker domains") in
  let budget = Arg.(value & opt int 30 & info [ "budget" ] ~doc:"Evaluation budget") in
  let seed = Arg.(value & opt int 2020 & info [ "seed" ] ~doc:"Search seed") in
  let term = Term.(const run $ algorithm $ graph $ source $ workers $ budget $ seed) in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "autotune_run" ~doc:"Autotune a schedule for an algorithm and graph")
          term))
