(* graphitc: the GraphIt ordered-extension compiler driver.

   Subcommands:
   - check   FILE          parse, typecheck, analyze, resolve schedules
   - emit    FILE          print the C++ the compiler would generate (Fig. 9)
   - run     FILE ARGS...  compile and execute against the ordered runtime
   - ast     FILE          dump the parsed AST (debugging aid) *)

open Cmdliner

let compile_or_exit path =
  match Dsl.Frontend.compile_file path with
  | Ok compiled -> compiled
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1

let describe compiled =
  let lowered = compiled.Dsl.Frontend.lowered in
  let analysis = lowered.Dsl.Lower.analysis in
  (match analysis.Dsl.Analysis.pq with
  | Some pq ->
      Printf.printf "priority queue : %s (vector %s, %s, coarsening %s)\n"
        pq.Dsl.Analysis.pq_name pq.Dsl.Analysis.priority_vector
        (Format.asprintf "%a" Bucketing.Bucket_order.pp_direction
           pq.Dsl.Analysis.direction)
        (if pq.Dsl.Analysis.allow_coarsening then "allowed" else "disallowed")
  | None -> Printf.printf "priority queue : (none declared)\n");
  (match analysis.Dsl.Analysis.loop with
  | Some loop ->
      Printf.printf "ordered loop   : replaceable (udf %s, label %s)\n"
        loop.Dsl.Analysis.udf.Dsl.Analysis.udf_name
        (Option.value ~default:"-" loop.Dsl.Analysis.label);
      Printf.printf "udf update     : %s%s\n"
        (match loop.Dsl.Analysis.udf.Dsl.Analysis.update with
        | Dsl.Analysis.Update_min -> "updatePriorityMin"
        | Dsl.Analysis.Update_max -> "updatePriorityMax"
        | Dsl.Analysis.Update_sum _ -> "updatePrioritySum")
        (match loop.Dsl.Analysis.udf.Dsl.Analysis.constant_sum_diff with
        | Some d -> Printf.sprintf " (constant sum %+d: histogram eligible)" d
        | None -> "");
      if loop.Dsl.Analysis.udf.Dsl.Analysis.atomic_vectors <> [] then
        Printf.printf "atomics needed : %s (written at destination)\n"
          (String.concat ", " loop.Dsl.Analysis.udf.Dsl.Analysis.atomic_vectors)
  | None -> Printf.printf "ordered loop   : generic (direct priority-queue driver)\n");
  Printf.printf "loop schedule  : %s\n"
    (Format.asprintf "%a" Ordered.Schedule.pp lowered.Dsl.Lower.loop_schedule)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DSL source file")

let check_cmd =
  let run path =
    let compiled = compile_or_exit path in
    Printf.printf "%s: OK\n" path;
    describe compiled
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse, typecheck and analyze a DSL program")
    Term.(const run $ file_arg)

let emit_cmd =
  let run path = print_string (Dsl.Frontend.generate_cpp (compile_or_exit path)) in
  Cmd.v
    (Cmd.info "emit" ~doc:"Print the C++ the compiler would generate (paper Fig. 9)")
    Term.(const run $ file_arg)

let ast_cmd =
  let run path =
    let compiled = compile_or_exit path in
    print_endline (Dsl.Ast.show_program compiled.Dsl.Frontend.lowered.Dsl.Lower.program)
  in
  Cmd.v (Cmd.info "ast" ~doc:"Dump the parsed AST") Term.(const run $ file_arg)

let run_cmd =
  let workers =
    Arg.(value & opt int 4 & info [ "j"; "workers" ] ~docv:"N" ~doc:"Worker domains")
  in
  let coords_path =
    Arg.(
      value
      & opt (some file) None
      & info [ "coords" ] ~docv:"FILE" ~doc:"Vertex coordinates (for A*'s heuristic)")
  in
  let args =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS" ~doc:"Program arguments")
  in
  let run path workers coords_path args =
    let compiled = compile_or_exit path in
    let argv = Array.of_list (Filename.basename path :: args) in
    let setcover_externs, _ = Dsl.Externs.setcover () in
    let astar_externs =
      match coords_path with
      | None -> []
      | Some cpath ->
          let coords = Graphs.Graph_io.read_coords cpath in
          let target =
            match args with
            | _ :: _ :: t :: _ -> int_of_string t
            | _ ->
                Printf.eprintf "--coords requires a target vertex argument\n";
                exit 1
          in
          Dsl.Externs.astar ~coords ~target
    in
    Parallel.Pool.with_pool ~num_workers:workers (fun pool ->
        match
          Dsl.Frontend.run compiled ~pool ~argv
            ~externs:(astar_externs @ setcover_externs) ()
        with
        | result ->
            List.iter (Printf.printf "%s\n") result.Dsl.Interp.printed;
            List.iter
              (fun (name, values) ->
                let preview =
                  Array.to_list (Array.sub values 0 (min 10 (Array.length values)))
                  |> List.map (fun v ->
                         if v = Bucketing.Bucket_order.null_priority then "inf"
                         else string_of_int v)
                  |> String.concat " "
                in
                Printf.printf "%s[0..%d] = %s%s\n" name
                  (min 10 (Array.length values) - 1)
                  preview
                  (if Array.length values > 10 then " ..." else ""))
              result.Dsl.Interp.vectors;
            (match result.Dsl.Interp.stats with
            | Some stats -> Format.printf "stats: %a@." Ordered.Stats.pp stats
            | None -> ())
        | exception Dsl.Interp.Runtime_error (pos, msg) ->
            Printf.eprintf "%s: runtime error at %s: %s\n" path
              (Format.asprintf "%a" Dsl.Pos.pp pos)
              msg;
            exit 1)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a DSL program")
    Term.(const run $ file_arg $ workers $ coords_path $ args)

let () =
  let info =
    Cmd.info "graphitc" ~version:"1.0"
      ~doc:"Compiler and runner for the GraphIt priority-based extension"
  in
  exit (Cmd.eval (Cmd.group info [ check_cmd; emit_cmd; ast_cmd; run_cmd ]))
