(* validate: end-user correctness harness. Runs an algorithm on a given
   graph under EVERY legal schedule (and several worker counts), checks all
   results against the sequential oracle, and reports the matrix. This is
   the fast way to convince yourself the scheduling language never changes
   results on YOUR data. *)

open Cmdliner

module Schedule = Ordered.Schedule

let schedules_for algorithm =
  let base strategy delta traversal =
    { Schedule.default with strategy; delta; traversal }
  in
  let eager_and_lazy deltas =
    List.concat_map
      (fun delta ->
        [
          base Schedule.Eager_with_fusion delta Schedule.Sparse_push;
          base Schedule.Eager_no_fusion delta Schedule.Sparse_push;
          base Schedule.Lazy delta Schedule.Sparse_push;
          base Schedule.Lazy delta Schedule.Dense_pull;
          base Schedule.Lazy delta Schedule.Hybrid;
        ])
      deltas
  in
  match algorithm with
  | "sssp" | "widest" -> eager_and_lazy [ 1; 8; 512 ]
  | "kcore" ->
      [
        base Schedule.Eager_with_fusion 1 Schedule.Sparse_push;
        base Schedule.Eager_no_fusion 1 Schedule.Sparse_push;
        base Schedule.Lazy 1 Schedule.Sparse_push;
        base Schedule.Lazy_constant_sum 1 Schedule.Sparse_push;
      ]
  | "score" ->
      [
        base Schedule.Eager_with_fusion 1 Schedule.Sparse_push;
        base Schedule.Eager_no_fusion 1 Schedule.Sparse_push;
        base Schedule.Lazy 1 Schedule.Sparse_push;
      ]
  | _ -> []

let describe s =
  Printf.sprintf "%-18s delta=%-4d %s"
    (Schedule.strategy_to_string s.Schedule.strategy)
    s.Schedule.delta
    (Schedule.traversal_to_string s.Schedule.traversal)

let run algorithm graph_path source max_workers =
  let el = Graphs.Graph_io.load graph_path in
  let directed = Graphs.Csr.of_edge_list el in
  let symmetric = lazy (Graphs.Csr.of_edge_list (Graphs.Edge_list.symmetrized el)) in
  let transpose = lazy (Graphs.Csr.transpose directed) in
  let oracle, run_one =
    match algorithm with
    | "sssp" ->
        ( Algorithms.Dijkstra.distances directed ~source,
          fun pool schedule ->
            let t =
              if schedule.Schedule.traversal = Schedule.Sparse_push then None
              else Some (Lazy.force transpose)
            in
            (Algorithms.Sssp_delta.run ~pool ~graph:directed ?transpose:t ~schedule
               ~source ())
              .dist )
    | "widest" ->
        ( Algorithms.Widest_path.sequential directed ~source,
          fun pool schedule ->
            if schedule.Schedule.traversal <> Schedule.Sparse_push then
              failwith "skip: widest path uses push traversal"
            else
              (Algorithms.Widest_path.run ~pool ~graph:directed ~schedule ~source ())
                .capacity )
    | "kcore" ->
        ( Algorithms.Kcore_peel_seq.coreness (Lazy.force symmetric),
          fun pool schedule ->
            (Algorithms.Kcore.run ~pool ~graph:(Lazy.force symmetric) ~schedule ())
              .coreness )
    | "score" ->
        ( Algorithms.Score.sequential (Lazy.force symmetric),
          fun pool schedule ->
            (Algorithms.Score.run ~pool ~graph:(Lazy.force symmetric) ~schedule ())
              .coreness )
    | other ->
        Printf.eprintf "unknown algorithm %S (sssp|widest|kcore|score)\n" other;
        exit 1
  in
  let worker_counts = List.filter (fun w -> w <= max_workers) [ 1; 2; 4; 8 ] in
  let schedules = schedules_for algorithm in
  Printf.printf "validating %s on %s (%d vertices, %d edges)\n" algorithm graph_path
    (Graphs.Csr.num_vertices directed)
    (Graphs.Csr.num_edges directed);
  Printf.printf "%d schedules x %d worker counts against the sequential oracle\n\n"
    (List.length schedules) (List.length worker_counts);
  let failures = ref 0 and skipped = ref 0 and passed = ref 0 in
  List.iter
    (fun workers ->
      Parallel.Pool.with_pool ~num_workers:workers (fun pool ->
          List.iter
            (fun schedule ->
              match run_one pool schedule with
              | result ->
                  if result = oracle then begin
                    incr passed;
                    Printf.printf "  PASS  workers=%d  %s\n" workers (describe schedule)
                  end
                  else begin
                    incr failures;
                    Printf.printf "  FAIL  workers=%d  %s\n" workers (describe schedule)
                  end
              | exception Failure msg when String.length msg >= 4
                                           && String.sub msg 0 4 = "skip" ->
                  incr skipped
              | exception exn ->
                  incr failures;
                  Printf.printf "  ERROR workers=%d  %s: %s\n" workers
                    (describe schedule) (Printexc.to_string exn))
            schedules))
    worker_counts;
  Printf.printf "\n%d passed, %d failed, %d skipped\n" !passed !failures !skipped;
  if !failures > 0 then exit 1

let () =
  let algorithm =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ALGORITHM"
           ~doc:"sssp|widest|kcore|score")
  in
  let graph =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"GRAPH" ~doc:"Graph file")
  in
  let source = Arg.(value & opt int 0 & info [ "source" ] ~doc:"Source vertex") in
  let workers = Arg.(value & opt int 4 & info [ "max-workers" ] ~doc:"Largest pool") in
  let term = Term.(const run $ algorithm $ graph $ source $ workers) in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "validate"
             ~doc:"Check that every schedule produces oracle-identical results")
          term))
