(* Road navigation: the paper's motivating scenario for bucket fusion.

   Generates a road network (large diameter, tiny frontiers — the regime
   where synchronization dominates), then:
   1. compares SSSP with and without bucket fusion (Table 6's experiment),
   2. answers a point-to-point query three ways: full SSSP, PPSP with early
      exit, and A* with the Euclidean heuristic, showing how much of the
      graph each one touches.

   Run with: dune exec examples/road_navigation.exe *)

module Schedule = Ordered.Schedule

let () =
  let rng = Support.Rng.create 2024 in
  let rows = 120 and cols = 120 in
  let edge_list, coords = Graphs.Generators.road_grid ~rng ~rows ~cols () in
  let graph = Graphs.Csr.of_edge_list edge_list in
  Printf.printf "road network: %d vertices, %d edges (grid %dx%d)\n"
    (Graphs.Csr.num_vertices graph) (Graphs.Csr.num_edges graph) rows cols;
  let delta = 4096 in
  Parallel.Pool.with_pool ~num_workers:4 (fun pool ->
      (* --- bucket fusion on vs off --- *)
      let fused, fused_s =
        Support.Timer.time (fun () ->
            Algorithms.Sssp_delta.run ~pool ~graph
              ~schedule:{ Schedule.default with delta }
              ~source:0 ())
      in
      let unfused, unfused_s =
        Support.Timer.time (fun () ->
            Algorithms.Sssp_delta.run ~pool ~graph
              ~schedule:{ Schedule.default with strategy = Schedule.Eager_no_fusion; delta }
              ~source:0 ())
      in
      assert (fused.dist = unfused.dist);
      Printf.printf "\nSSSP with fusion   : %.4fs  [%d rounds, %d fused drains]\n"
        fused_s fused.stats.Ordered.Stats.rounds fused.stats.Ordered.Stats.fused_drains;
      Printf.printf "SSSP without fusion: %.4fs  [%d rounds]\n" unfused_s
        unfused.stats.Ordered.Stats.rounds;
      Printf.printf "round reduction    : %.1fx\n"
        (float_of_int unfused.stats.Ordered.Stats.rounds
        /. float_of_int (max 1 fused.stats.Ordered.Stats.rounds));
      (* --- point-to-point: SSSP vs PPSP vs A* ---
         A mid-distance target: early exit and the heuristic both get a
         chance to prune (a maximally-distant target forces any method to
         visit the whole graph). *)
      let source = 0 in
      let target = ((rows / 2) * cols) + (cols / 3) in
      let sssp = fused in
      let ppsp =
        Algorithms.Ppsp.run ~pool ~graph ~schedule:{ Schedule.default with delta }
          ~source ~target ()
      in
      let astar =
        Algorithms.Astar.run ~pool ~graph ~coords
          ~schedule:{ Schedule.default with delta } ~source ~target ()
      in
      assert (ppsp.distance = sssp.dist.(target));
      assert (astar.distance = sssp.dist.(target));
      Printf.printf "\npoint-to-point %d -> %d (distance %d):\n" source target
        ppsp.distance;
      let show name (stats : Ordered.Stats.t) =
        Printf.printf "  %-6s touched %8d edges in %5d rounds\n" name
          stats.Ordered.Stats.edges_relaxed stats.Ordered.Stats.rounds
      in
      show "sssp" sssp.stats;
      show "ppsp" ppsp.stats;
      show "astar" astar.stats;
      print_endline "\nA* with an admissible heuristic explores the least; all agree.")
