(* DSL tour: the algorithm/schedule separation end to end.

   Compiles the shipped sssp.gt program, shows how changing ONE line of the
   scheduling section changes the generated C++ (paper Fig. 9) while the
   computed distances stay identical, and runs kcore.gt for a program with
   a different priority-update operator.

   Run with: dune exec examples/dsl_tour.exe (from the repository root) *)

let find_app name =
  let candidates = [ Filename.concat "examples/apps" name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None ->
      Printf.eprintf "run from the repository root (cannot find %s)\n" name;
      exit 1

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile_string ~name src =
  match Dsl.Frontend.compile ~name src with
  | Ok c -> c
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1

let first_lines n s =
  String.split_on_char '\n' s
  |> List.filteri (fun i _ -> i < n)
  |> String.concat "\n"

let () =
  let sssp_src = read_file (find_app "sssp.gt") in
  (* One workload for every variant. *)
  let rng = Support.Rng.create 99 in
  let el = Graphs.Generators.erdos_renyi ~rng ~num_vertices:2000 ~num_edges:16000 () in
  let el = Graphs.Generators.assign_weights ~rng ~lo:1 ~hi:1000 el in
  let graph_path = Filename.temp_file "dsl_tour" ".el" in
  Graphs.Graph_io.write_edge_list graph_path el;
  Fun.protect
    ~finally:(fun () -> Sys.remove graph_path)
    (fun () ->
      Parallel.Pool.with_pool ~num_workers:4 (fun pool ->
          let run_variant strategy =
            let src =
              Str.global_replace
                (Str.regexp_string "\"eager_with_fusion\"")
                (Printf.sprintf "%S" strategy) sssp_src
            in
            let compiled = compile_string ~name:("sssp/" ^ strategy) src in
            let result =
              Dsl.Frontend.run compiled ~pool ~argv:[| "sssp"; graph_path; "0" |] ()
            in
            (compiled, List.assoc "dist" result.Dsl.Interp.vectors)
          in
          let eager_c, eager_dist = run_variant "eager_with_fusion" in
          let lazy_c, lazy_dist = run_variant "lazy" in
          assert (eager_dist = lazy_dist);
          print_endline "=== same algorithm, two schedules, identical results ===";
          Printf.printf "\n--- generated C++ under eager_with_fusion (first 25 lines) ---\n%s\n"
            (first_lines 25 (Dsl.Frontend.generate_cpp eager_c));
          Printf.printf "\n--- generated C++ under lazy (first 25 lines) ---\n%s\n"
            (first_lines 25 (Dsl.Frontend.generate_cpp lazy_c));
          (* kcore.gt exercises updatePrioritySum and the histogram path. *)
          let kcore = compile_string ~name:"kcore" (read_file (find_app "kcore.gt")) in
          let result = Dsl.Frontend.run kcore ~pool ~argv:[| "kcore"; graph_path |] () in
          let coreness = List.assoc "degrees" result.Dsl.Interp.vectors in
          let expected =
            Algorithms.Kcore_peel_seq.coreness
              (Graphs.Csr.of_edge_list (Graphs.Edge_list.symmetrized el))
          in
          assert (coreness = expected);
          let max_core = Array.fold_left max 0 coreness in
          Printf.printf
            "\nkcore.gt (lazy_constant_sum schedule) computed the full \
             decomposition; max core = %d — matches sequential peeling.\n"
            max_core))
