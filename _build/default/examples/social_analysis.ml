(* Social-network analysis: k-core decomposition and approximate set cover
   on a power-law graph — the workloads where lazy bucketing with the
   histogram reduction wins (Table 7 of the paper).

   k-core finds the densely-embedded "core" users (every vertex's coreness);
   set cover picks a small seed set of users whose neighborhoods reach the
   whole network (influence-maximization style).

   Run with: dune exec examples/social_analysis.exe *)

module Schedule = Ordered.Schedule

let () =
  let rng = Support.Rng.create 7 in
  let el = Graphs.Generators.rmat ~rng ~scale:13 ~edge_factor:12 () in
  let el = Graphs.Generators.assign_weights ~rng ~lo:1 ~hi:1000 el in
  let graph = Graphs.Csr.of_edge_list (Graphs.Edge_list.symmetrized el) in
  Printf.printf "social graph (R-MAT): %d vertices, %d directed edges (symmetrized)\n"
    (Graphs.Csr.num_vertices graph) (Graphs.Csr.num_edges graph);
  Parallel.Pool.with_pool ~num_workers:4 (fun pool ->
      (* --- k-core: eager vs lazy-with-histogram --- *)
      let eager, eager_s =
        Support.Timer.time (fun () ->
            Algorithms.Kcore.run ~pool ~graph ~schedule:Schedule.default ())
      in
      let lazy_hist, lazy_s =
        Support.Timer.time (fun () ->
            Algorithms.Kcore.run ~pool ~graph
              ~schedule:{ Schedule.default with strategy = Schedule.Lazy_constant_sum }
              ())
      in
      assert (eager.coreness = lazy_hist.coreness);
      Printf.printf "\nk-core (max core = %d):\n" (Algorithms.Kcore.max_core eager);
      Printf.printf "  eager update            : %.4fs  [%d bucket inserts]\n" eager_s
        eager.stats.Ordered.Stats.bucket_inserts;
      Printf.printf "  lazy + histogram (Fig10): %.4fs  [%d bucket inserts]\n" lazy_s
        lazy_hist.stats.Ordered.Stats.bucket_inserts;
      Printf.printf
        "  the lazy histogram performs one bucket insert per vertex move,\n\
        \  the eager strategy one per priority change (%.1fx more).\n"
        (float_of_int eager.stats.Ordered.Stats.bucket_inserts
        /. float_of_int (max 1 lazy_hist.stats.Ordered.Stats.bucket_inserts));
      (* Coreness histogram of the top of the distribution. *)
      let max_core = Algorithms.Kcore.max_core eager in
      let at_max =
        Array.fold_left
          (fun acc c -> if c = max_core then acc + 1 else acc)
          0 eager.coreness
      in
      Printf.printf "  %d vertices sit in the innermost %d-core\n" at_max max_core;
      (* --- set cover --- *)
      let cover, cover_s =
        Support.Timer.time (fun () ->
            Algorithms.Setcover.run ~pool ~graph
              ~schedule:{ Schedule.default with strategy = Schedule.Lazy }
              ())
      in
      let greedy = Algorithms.Setcover_greedy.run graph in
      assert (Algorithms.Setcover.is_valid_cover graph cover);
      Printf.printf
        "\nset cover: %d seed users reach the whole network (%.4fs, %d rounds);\n\
        \  sequential greedy needs %d — the parallel bucketed result stays close.\n"
        cover.cover_size cover_s cover.rounds greedy.cover_size)
