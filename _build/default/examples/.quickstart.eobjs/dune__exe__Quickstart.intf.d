examples/quickstart.mli:
