examples/network_capacity.mli:
