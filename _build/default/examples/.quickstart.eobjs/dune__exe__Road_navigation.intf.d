examples/road_navigation.mli:
