examples/network_capacity.ml: Algorithms Array Graphs List Ordered Parallel Printf Support
