examples/social_analysis.mli:
