examples/dsl_tour.ml: Algorithms Array Dsl Filename Fun Graphs List Parallel Printf Str String Support Sys
