examples/quickstart.ml: Algorithms Array Bucketing Format Graphs List Ordered Parallel Printf String
