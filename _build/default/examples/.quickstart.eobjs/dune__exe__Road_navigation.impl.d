examples/road_navigation.ml: Algorithms Array Graphs Ordered Parallel Printf Support
