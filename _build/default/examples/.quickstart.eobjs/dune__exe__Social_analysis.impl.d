examples/social_analysis.ml: Algorithms Array Graphs Ordered Parallel Printf Support
