(* Quickstart: the smallest end-to-end tour of the library.

   Builds a tiny weighted graph, runs Δ-stepping SSSP under two different
   schedules (eager-with-fusion vs lazy), checks they agree with Dijkstra,
   and shows the execution counters that distinguish the schedules.

   Run with: dune exec examples/quickstart.exe *)

module Schedule = Ordered.Schedule

let () =
  (* A diamond with a costly direct edge: 0 -> 1 is never on a shortest
     path. Vertex 5 is unreachable. *)
  let edges =
    Graphs.Edge_list.create ~num_vertices:6
      [|
        { src = 0; dst = 1; weight = 10 };
        { src = 0; dst = 2; weight = 2 };
        { src = 2; dst = 1; weight = 3 };
        { src = 1; dst = 3; weight = 1 };
        { src = 2; dst = 3; weight = 9 };
        { src = 3; dst = 4; weight = 2 };
      |]
  in
  let graph = Graphs.Csr.of_edge_list edges in
  Parallel.Pool.with_pool ~num_workers:2 (fun pool ->
      let show name (r : Algorithms.Sssp_delta.result) =
        let rendered =
          Array.to_list r.dist
          |> List.map (fun d ->
                 if d = Bucketing.Bucket_order.null_priority then "inf"
                 else string_of_int d)
          |> String.concat " "
        in
        Printf.printf "%-18s dist = [%s]\n" name rendered;
        Format.printf "%-18s %a@." "" Ordered.Stats.pp r.stats
      in
      let eager =
        Algorithms.Sssp_delta.run ~pool ~graph
          ~schedule:{ Schedule.default with delta = 2 }
          ~source:0 ()
      in
      let lazy_run =
        Algorithms.Sssp_delta.run ~pool ~graph
          ~schedule:{ Schedule.default with strategy = Schedule.Lazy; delta = 2 }
          ~source:0 ()
      in
      show "eager+fusion:" eager;
      show "lazy:" lazy_run;
      let oracle = Algorithms.Dijkstra.distances graph ~source:0 in
      assert (eager.dist = oracle);
      assert (lazy_run.dist = oracle);
      print_endline "both schedules match Dijkstra — schedules change cost, not results")
