(* Network capacity planning with widest (maximum-bottleneck) paths.

   A backbone-and-access network: a small high-capacity ring connects
   district routers; each district serves a tree of low-capacity access
   links. Widest path answers "what is the best guaranteed bandwidth from
   the data center to every node?" — an ordered algorithm that runs
   highest-capacity-first with updatePriorityMax, the dual of Δ-stepping.

   Run with: dune exec examples/network_capacity.exe *)

module Edge_list = Graphs.Edge_list
module Schedule = Ordered.Schedule

let build_network ~districts ~hosts_per_district rng =
  let n = districts + (districts * hosts_per_district) in
  let backbone_capacity = 10_000 in
  let edges = ref [] in
  let add u v w =
    edges := { Edge_list.src = u; dst = v; weight = w }
            :: { Edge_list.src = v; dst = u; weight = w } :: !edges
  in
  (* Backbone ring over routers 0..districts-1. *)
  for r = 0 to districts - 1 do
    add r ((r + 1) mod districts) backbone_capacity
  done;
  (* Access trees: host h of district r hangs off a random earlier host (or
     the router), with decaying capacity. *)
  for r = 0 to districts - 1 do
    for h = 0 to hosts_per_district - 1 do
      let host = districts + (r * hosts_per_district) + h in
      let parent =
        if h = 0 then r
        else districts + (r * hosts_per_district) + Support.Rng.int rng h
      in
      add parent host (Support.Rng.int_range rng 10 (backbone_capacity / 10))
    done
  done;
  Graphs.Csr.of_edge_list (Edge_list.create ~num_vertices:n (Array.of_list !edges))

let () =
  let rng = Support.Rng.create 4242 in
  let graph = build_network ~districts:24 ~hosts_per_district:400 rng in
  Printf.printf "network: %d nodes, %d links\n" (Graphs.Csr.num_vertices graph)
    (Graphs.Csr.num_edges graph);
  Parallel.Pool.with_pool ~num_workers:2 (fun pool ->
      let exact = Algorithms.Widest_path.sequential graph ~source:0 in
      List.iter
        (fun (label, schedule) ->
          let r, seconds =
            Support.Timer.time (fun () ->
                Algorithms.Widest_path.run ~pool ~graph ~schedule ~source:0 ())
          in
          assert (r.capacity = exact);
          Printf.printf "%-28s %.4fs  [%d rounds, %d bucket inserts]\n" label seconds
            r.stats.Ordered.Stats.rounds r.stats.Ordered.Stats.bucket_inserts)
        [
          ("eager + fusion, delta=1", Schedule.default);
          ( "eager + fusion, delta=64",
            { Schedule.default with delta = 64 } );
          ( "lazy, delta=1",
            { Schedule.default with strategy = Schedule.Lazy } );
        ];
      (* Which hosts get less than 1% of backbone bandwidth? *)
      let starved =
        Array.fold_left (fun acc c -> if c > 0 && c < 100 then acc + 1 else acc) 0 exact
      in
      let reachable = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 exact in
      Printf.printf
        "\n%d of %d reachable nodes are bandwidth-starved (< 1%% of backbone);\n\
         all schedules agree with the sequential oracle.\n"
        starved reachable)
