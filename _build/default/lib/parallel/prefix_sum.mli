(** Exclusive prefix sums.

    The lazy bucket-update path computes output offsets for the edge buffer
    with a prefix sum over per-vertex counts ([setupOutputBufferOffsets] in
    Figure 9(a) of the paper); this module provides the sequential and
    parallel variants. *)

(** [exclusive a] returns a fresh array [s] of length [length a + 1] with
    [s.(i) = a.(0) + ... + a.(i-1)]; [s.(length a)] is the total. *)
val exclusive : int array -> int array

(** [exclusive_parallel pool a] is {!exclusive} computed with a two-pass
    block scan over the pool's workers. Results are identical to the
    sequential version. *)
val exclusive_parallel : Pool.t -> int array -> int array
