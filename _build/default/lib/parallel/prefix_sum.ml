let exclusive a =
  let n = Array.length a in
  let out = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    out.(i + 1) <- out.(i) + a.(i)
  done;
  out

let exclusive_parallel pool a =
  let n = Array.length a in
  let workers = Pool.num_workers pool in
  if workers = 1 || n < 4096 then exclusive a
  else begin
    let out = Array.make (n + 1) 0 in
    let block = (n + workers - 1) / workers in
    let block_totals = Array.make workers 0 in
    (* Pass 1: each worker sums its block. *)
    Pool.run_workers pool (fun tid ->
        let lo = tid * block and hi = min n ((tid + 1) * block) in
        let total = ref 0 in
        for i = lo to hi - 1 do
          total := !total + a.(i)
        done;
        block_totals.(tid) <- !total);
    (* Scan block totals sequentially (workers is tiny). *)
    let block_offsets = Array.make workers 0 in
    let running = ref 0 in
    for tid = 0 to workers - 1 do
      block_offsets.(tid) <- !running;
      running := !running + block_totals.(tid)
    done;
    out.(n) <- !running;
    (* Pass 2: each worker writes its block's exclusive sums. *)
    Pool.run_workers pool (fun tid ->
        let lo = tid * block and hi = min n ((tid + 1) * block) in
        let acc = ref block_offsets.(tid) in
        for i = lo to hi - 1 do
          out.(i) <- !acc;
          acc := !acc + a.(i)
        done);
    out
  end
