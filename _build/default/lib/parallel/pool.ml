type t = {
  num_workers : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int;
  mutable remaining : int;
  mutable failure : exn option;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

(* Helper domains block on [work_ready] until the epoch advances, run the
   published job with their worker id, then report completion on
   [work_done]. The caller always acts as worker 0, so a 1-worker pool never
   touches the synchronization primitives on the hot path. *)

let worker_loop pool tid =
  let current_epoch = ref 0 in
  let rec loop () =
    Mutex.lock pool.mutex;
    while (not pool.stopped) && pool.epoch = !current_epoch do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.stopped then Mutex.unlock pool.mutex
    else begin
      current_epoch := pool.epoch;
      let job =
        match pool.job with
        | Some job -> job
        | None -> assert false
      in
      Mutex.unlock pool.mutex;
      let outcome = try Ok (job tid) with exn -> Error exn in
      Mutex.lock pool.mutex;
      (match outcome with
      | Ok () -> ()
      | Error exn -> if pool.failure = None then pool.failure <- Some exn);
      pool.remaining <- pool.remaining - 1;
      if pool.remaining = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex;
      loop ()
    end
  in
  loop ()

let create ~num_workers =
  if num_workers < 1 then invalid_arg "Pool.create: num_workers must be >= 1";
  let pool =
    {
      num_workers;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      epoch = 0;
      remaining = 0;
      failure = None;
      stopped = false;
      domains = [];
    }
  in
  pool.domains <-
    List.init (num_workers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let num_workers pool = pool.num_workers

let run_workers pool f =
  if pool.stopped then invalid_arg "Pool.run_workers: pool is shut down";
  if pool.num_workers = 1 then f 0
  else begin
    Mutex.lock pool.mutex;
    pool.job <- Some f;
    pool.failure <- None;
    pool.remaining <- pool.num_workers - 1;
    pool.epoch <- pool.epoch + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    let caller_outcome = try Ok (f 0) with exn -> Error exn in
    Mutex.lock pool.mutex;
    while pool.remaining > 0 do
      Condition.wait pool.work_done pool.mutex
    done;
    pool.job <- None;
    let failure = pool.failure in
    pool.failure <- None;
    Mutex.unlock pool.mutex;
    match caller_outcome, failure with
    | Error exn, _ -> raise exn
    | Ok (), Some exn -> raise exn
    | Ok (), None -> ()
  end

let parallel_for pool ?(chunk = 256) ~lo ~hi f =
  if chunk < 1 then invalid_arg "Pool.parallel_for: chunk must be >= 1";
  if hi > lo then
    if pool.num_workers = 1 || hi - lo <= chunk then
      for i = lo to hi - 1 do
        f i
      done
    else begin
      let next = Atomic.make lo in
      run_workers pool (fun _tid ->
          let rec claim () =
            let start = Atomic.fetch_and_add next chunk in
            if start < hi then begin
              let stop = min hi (start + chunk) in
              for i = start to stop - 1 do
                f i
              done;
              claim ()
            end
          in
          claim ())
    end

let parallel_for_tid pool ?(chunk = 256) ~lo ~hi f =
  if chunk < 1 then invalid_arg "Pool.parallel_for_tid: chunk must be >= 1";
  if hi > lo then
    if pool.num_workers = 1 then
      for i = lo to hi - 1 do
        f ~tid:0 i
      done
    else begin
      let next = Atomic.make lo in
      run_workers pool (fun tid ->
          let rec claim () =
            let start = Atomic.fetch_and_add next chunk in
            if start < hi then begin
              let stop = min hi (start + chunk) in
              for i = start to stop - 1 do
                f ~tid i
              done;
              claim ()
            end
          in
          claim ())
    end

let parallel_for_reduce pool ?(chunk = 256) ~lo ~hi ~neutral ~combine f =
  if hi <= lo then neutral
  else if pool.num_workers = 1 then begin
    let acc = ref neutral in
    for i = lo to hi - 1 do
      acc := combine !acc (f i)
    done;
    !acc
  end
  else begin
    let partials = Array.make pool.num_workers neutral in
    let next = Atomic.make lo in
    run_workers pool (fun tid ->
        let acc = ref neutral in
        let rec claim () =
          let start = Atomic.fetch_and_add next chunk in
          if start < hi then begin
            let stop = min hi (start + chunk) in
            for i = start to stop - 1 do
              acc := combine !acc (f i)
            done;
            claim ()
          end
        in
        claim ();
        partials.(tid) <- !acc);
    Array.fold_left combine neutral partials
  end

let shutdown pool =
  if not pool.stopped then begin
    Mutex.lock pool.mutex;
    pool.stopped <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.domains;
    pool.domains <- []
  end

let with_pool ~num_workers f =
  let pool = create ~num_workers in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
