lib/parallel/pool.mli:
