lib/parallel/atomic_array.mli:
