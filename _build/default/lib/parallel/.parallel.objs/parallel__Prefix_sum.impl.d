lib/parallel/prefix_sum.ml: Array Pool
