lib/parallel/pool.ml: Array Atomic Condition Domain Fun List Mutex
