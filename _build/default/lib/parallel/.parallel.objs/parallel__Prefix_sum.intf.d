lib/parallel/prefix_sum.mli: Pool
