lib/parallel/atomic_array.ml: Array Atomic
