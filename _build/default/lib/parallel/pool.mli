(** A fixed-size pool of OCaml domains, the substrate that stands in for the
    paper's Cilk/OpenMP runtime.

    The pool supports two idioms used by the ordered-graph engines:

    - {!run_workers} runs one SPMD task per worker, mirroring the
      [#pragma omp parallel] regions of the generated eager code (Figure 9(c)
      of the paper). Each invocation is one global synchronization: all
      workers finish before it returns.
    - {!parallel_for} distributes an index range over the workers with
      dynamic chunking, mirroring [#pragma omp for schedule(dynamic)].

    A pool with one worker executes everything inline on the calling domain,
    which keeps single-threaded runs deterministic and cheap. *)

type t

(** [create ~num_workers] spawns [num_workers - 1] helper domains. The caller
    participates as worker 0. Raises [Invalid_argument] when
    [num_workers < 1]. *)
val create : num_workers:int -> t

(** [num_workers pool] is the worker count, including the caller. *)
val num_workers : t -> int

(** [run_workers pool f] runs [f tid] on every worker, [tid] ranging over
    [0, num_workers). Returns when all workers have finished. If any worker
    raises, one of the exceptions is re-raised on the caller after all
    workers have stopped. Not reentrant. *)
val run_workers : t -> (int -> unit) -> unit

(** [parallel_for pool ?chunk ~lo ~hi f] applies [f i] for every
    [lo <= i < hi], distributing indices across workers in chunks of [chunk]
    (default 256) claimed dynamically. *)
val parallel_for : t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit

(** [parallel_for_tid pool ?chunk ~lo ~hi f] is {!parallel_for} for bodies
    that need the worker id, e.g. to write into per-worker accumulators:
    [f] is called as [f ~tid i]. *)
val parallel_for_tid :
  t -> ?chunk:int -> lo:int -> hi:int -> (tid:int -> int -> unit) -> unit

(** [parallel_for_reduce pool ?chunk ~lo ~hi ~neutral ~combine f] folds the
    per-index values [f i] into a single result. [combine] must be
    associative and commutative with [neutral] as identity. *)
val parallel_for_reduce :
  t ->
  ?chunk:int ->
  lo:int ->
  hi:int ->
  neutral:'a ->
  combine:('a -> 'a -> 'a) ->
  (int -> 'a) ->
  'a

(** [shutdown pool] terminates the helper domains. The pool must not be used
    afterwards. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~num_workers f] creates a pool, passes it to [f], and shuts it
    down even when [f] raises. *)
val with_pool : num_workers:int -> (t -> 'a) -> 'a
