type t = int Atomic.t array

let make n v = Array.init n (fun _ -> Atomic.make v)
let length = Array.length
let get a i = Atomic.get a.(i)
let set a i v = Atomic.set a.(i) v

let compare_and_set a i ~expected ~desired =
  Atomic.compare_and_set a.(i) expected desired

let rec fetch_min a i v =
  let cell = Array.unsafe_get a i in
  let cur = Atomic.get cell in
  if v >= cur then false
  else if Atomic.compare_and_set cell cur v then true
  else fetch_min a i v

let rec fetch_max a i v =
  let cell = Array.unsafe_get a i in
  let cur = Atomic.get cell in
  if v <= cur then false
  else if Atomic.compare_and_set cell cur v then true
  else fetch_max a i v

let fetch_add a i d = Atomic.fetch_and_add a.(i) d

let rec add_with_floor a i ~delta ~floor =
  let cell = Array.unsafe_get a i in
  let cur = Atomic.get cell in
  (* A decrement must leave values already at or below the floor untouched
     (clamping them *up* to the floor would un-finalize peeled vertices). *)
  if delta < 0 && cur <= floor then None
  else begin
    let target = max floor (cur + delta) in
    if target = cur then None
    else if Atomic.compare_and_set cell cur target then Some (cur, target)
    else add_with_floor a i ~delta ~floor
  end

let to_array a = Array.map Atomic.get a
let of_array src = Array.map Atomic.make src

let blit_from a src =
  if Array.length a <> Array.length src then
    invalid_arg "Atomic_array.blit_from: length mismatch";
  Array.iteri (fun i v -> Atomic.set a.(i) v) src
