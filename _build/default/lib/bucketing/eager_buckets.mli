(** GAPBS-style eager bucketing with thread-local bins (Section 3.2 of the
    paper, Figure 6).

    Each worker owns an array of bins indexed by processing key. A priority
    update pushes the vertex into the updating worker's bin immediately — no
    shared buffer, no global reduction. Between rounds, the engine asks for
    the smallest non-empty key across all workers and drains those local
    bins into a global frontier; with bucket fusion (Figure 7) a worker may
    instead keep draining its own current bin locally, skipping the global
    synchronization.

    Bins may contain stale or duplicate copies (a vertex whose priority
    improved twice appears twice); the engine filters candidates against the
    current key when processing, exactly as GAPBS does. *)

type t

(** [create ~num_workers ~min_key ()] sets the key of the first bin;
    inserts below [min_key] are clamped to the processing cursor. *)
val create : num_workers:int -> min_key:int -> unit -> t

(** [num_workers t] is the worker count fixed at creation. *)
val num_workers : t -> int

(** [insert t ~tid ~vertex ~key] pushes into worker [tid]'s bin for [key].
    Thread-safe across distinct [tid]s. Null keys are ignored. *)
val insert : t -> tid:int -> vertex:int -> key:int -> unit

(** [next_global_key t] scans all workers for the smallest non-empty bin at
    or after the cursor, moves the cursor there, and returns its key
    ([getGlobalMinBucket]'s priority-selection half). [None] means every bin
    is empty and processing is complete. Call only between parallel
    phases. *)
val next_global_key : t -> int option

(** [cursor_key t] is the key selected by the last {!next_global_key}. *)
val cursor_key : t -> int

(** [drain_global t ~key] empties every worker's bin for [key] into a fresh
    array (the copy-to-global-frontier step that redistributes work). Call
    only between parallel phases. *)
val drain_global : t -> key:int -> int array

(** [local_size t ~tid ~key] is the number of (possibly stale) entries in
    worker [tid]'s bin for [key]. Safe for the owning worker during a
    parallel phase. *)
val local_size : t -> tid:int -> key:int -> int

(** [take_local t ~tid ~key] removes and returns worker [tid]'s bin contents
    for [key] ([None] when empty). Used by the bucket-fusion inner loop;
    safe for the owning worker during a parallel phase. *)
val take_local : t -> tid:int -> key:int -> int array option

(** [total_inserts t] counts accepted inserts across all workers (bucket
    insertions, Table 7's cost driver). Call between parallel phases. *)
val total_inserts : t -> int
