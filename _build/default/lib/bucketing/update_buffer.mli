(** The lazy bucket-update buffer (Figure 5 of the paper).

    During a round's parallel edge phase, each worker appends the vertices
    whose priority it changed. A compare-and-swap deduplication flag per
    vertex guarantees one buffered copy per round, which is the paper's
    "reduceBucketUpdates": when the buffer is drained, each vertex receives
    a single bucket update computed from its final priority. *)

type t

(** [create ~num_vertices ~num_workers ()] allocates the per-worker segments
    and the deduplication flags. *)
val create : num_vertices:int -> num_workers:int -> unit -> t

(** [try_add t ~tid v] buffers [v] unless it is already buffered this round;
    returns whether it was added. Thread-safe. *)
val try_add : t -> tid:int -> int -> bool

(** [size t] is the number of buffered vertices. Call between phases. *)
val size : t -> int

(** [drain t f] applies [f] to every buffered vertex, then resets the buffer
    and flags for the next round. Call between phases. *)
val drain : t -> (int -> unit) -> unit

(** [total_added t] counts vertices buffered over the structure's lifetime
    (one bucket insertion each under the lazy strategy). *)
val total_added : t -> int
