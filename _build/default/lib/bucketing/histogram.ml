module Int_vec = Support.Int_vec

type t = {
  logs : Int_vec.t array;
  distinct : Int_vec.t;
  mutable total : int;
}

let create ~num_workers () =
  {
    logs = Array.init num_workers (fun _ -> Int_vec.create ());
    distinct = Int_vec.create ();
    total = 0;
  }

let record t ~tid v = Int_vec.push t.logs.(tid) v

let events t = Array.fold_left (fun acc log -> acc + Int_vec.length log) 0 t.logs

let reduce t ~scratch f =
  Int_vec.clear t.distinct;
  Array.iter
    (fun log ->
      Int_vec.iter
        (fun v ->
          if scratch.(v) = 0 then Int_vec.push t.distinct v;
          scratch.(v) <- scratch.(v) + 1;
          t.total <- t.total + 1)
        log;
      Int_vec.clear log)
    t.logs;
  Int_vec.iter
    (fun v ->
      f ~vertex:v ~count:scratch.(v);
      scratch.(v) <- 0)
    t.distinct;
  Int_vec.clear t.distinct

let total_events t = t.total
