(** Priority normalization shared by the lazy and eager bucket structures.

    User-facing priorities grow in one of two directions (Table 1 of the
    paper: [lower_first] or [higher_first]). Internally every bucket
    structure processes the numerically smallest {e key} first, so this
    module maps priorities to keys:

    - [Lower_first]: key = floor(priority / delta)
    - [Higher_first]: key = -floor(priority / delta)

    [delta] is the priority-coarsening factor (Section 2); algorithms that
    cannot tolerate priority inversions (k-core, SetCover) use [delta = 1].
    The null priority [max_int] maps to {!null_key}, which sorts after every
    real key and is never processed. *)

type direction =
  | Lower_first
  | Higher_first

(** [null_priority] is the "unreached" sentinel used in priority vectors
    ([INT_MAX] in the paper's generated code). *)
val null_priority : int

(** [null_key] sorts after every key produced from a non-null priority. *)
val null_key : int

(** [key_of_priority ~direction ~delta p] is the processing key of priority
    [p]. Priorities must be non-negative (checked); [null_priority] maps to
    {!null_key}. [delta] must be positive. *)
val key_of_priority : direction:direction -> delta:int -> int -> int

(** [representative_priority ~direction ~delta key] is the smallest-magnitude
    priority mapping to [key] — what [pq.getCurrentPriority()] returns. *)
val representative_priority : direction:direction -> delta:int -> int -> int

(** [pp_direction] formats a direction as the DSL spells it
    (["lower_first"] / ["higher_first"]). *)
val pp_direction : Format.formatter -> direction -> unit

(** [direction_of_string s] parses the DSL spelling. *)
val direction_of_string : string -> (direction, string) result
