type direction =
  | Lower_first
  | Higher_first

let null_priority = max_int
let null_key = max_int

let key_of_priority ~direction ~delta p =
  if delta <= 0 then invalid_arg "Bucket_order: delta must be positive";
  if p = null_priority then null_key
  else begin
    if p < 0 then invalid_arg "Bucket_order: priorities must be non-negative";
    match direction with
    | Lower_first -> p / delta
    | Higher_first -> -(p / delta)
  end

let representative_priority ~direction ~delta key =
  match direction with
  | Lower_first -> key * delta
  | Higher_first -> -key * delta

let pp_direction ppf = function
  | Lower_first -> Format.pp_print_string ppf "lower_first"
  | Higher_first -> Format.pp_print_string ppf "higher_first"

let direction_of_string = function
  | "lower_first" -> Ok Lower_first
  | "higher_first" -> Ok Higher_first
  | s -> Error (Printf.sprintf "unknown priority direction %S" s)
