module Int_vec = Support.Int_vec
module Atomic_array = Parallel.Atomic_array

type t = {
  segments : Int_vec.t array; (* one per worker *)
  flags : Atomic_array.t;
  mutable total : int;
}

let create ~num_vertices ~num_workers () =
  {
    segments = Array.init num_workers (fun _ -> Int_vec.create ());
    flags = Atomic_array.make num_vertices 0;
    total = 0;
  }

let try_add t ~tid v =
  if Atomic_array.compare_and_set t.flags v ~expected:0 ~desired:1 then begin
    Int_vec.push t.segments.(tid) v;
    true
  end
  else false

let size t = Array.fold_left (fun acc seg -> acc + Int_vec.length seg) 0 t.segments

let drain t f =
  Array.iter
    (fun seg ->
      Int_vec.iter
        (fun v ->
          Atomic_array.set t.flags v 0;
          t.total <- t.total + 1;
          f v)
        seg;
      Int_vec.clear seg)
    t.segments

let total_added t = t.total
