lib/bucketing/update_buffer.mli:
