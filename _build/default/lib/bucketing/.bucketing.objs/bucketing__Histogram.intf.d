lib/bucketing/histogram.mli:
