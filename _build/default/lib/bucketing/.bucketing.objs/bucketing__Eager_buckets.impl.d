lib/bucketing/eager_buckets.ml: Array Bucket_order Support
