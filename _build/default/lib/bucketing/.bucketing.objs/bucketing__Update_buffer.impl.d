lib/bucketing/update_buffer.ml: Array Parallel Support
