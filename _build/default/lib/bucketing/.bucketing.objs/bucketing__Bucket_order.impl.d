lib/bucketing/bucket_order.ml: Format Printf
