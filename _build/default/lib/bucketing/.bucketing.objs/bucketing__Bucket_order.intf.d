lib/bucketing/bucket_order.mli: Format
