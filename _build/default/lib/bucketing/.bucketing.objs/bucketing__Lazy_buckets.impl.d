lib/bucketing/lazy_buckets.ml: Array Bucket_order Parallel Support
