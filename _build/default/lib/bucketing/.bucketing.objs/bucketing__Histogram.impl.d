lib/bucketing/histogram.ml: Array Support
