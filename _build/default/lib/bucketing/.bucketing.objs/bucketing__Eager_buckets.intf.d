lib/bucketing/eager_buckets.mli:
