lib/bucketing/lazy_buckets.mli: Bucket_order Parallel
