(** Histogram-based reduction for constant-sum priority updates
    ("lazy with constant sum reduction", Section 5.1 of the paper).

    When the user function always changes a priority by the same constant
    (k-core decrements by one per peeled neighbor), the updates need not
    touch the priority vector at all during the edge phase: each worker
    merely records the target vertex. Between phases the events are reduced
    to per-vertex counts and applied once, avoiding per-edge atomics and
    contention on high-degree vertices. *)

type t

(** [create ~num_workers ()] allocates per-worker event logs. *)
val create : num_workers:int -> unit -> t

(** [record t ~tid v] logs one update event against [v]. Thread-safe across
    distinct [tid]s. *)
val record : t -> tid:int -> int -> unit

(** [events t] is the number of logged events this round. *)
val events : t -> int

(** [reduce t ~scratch f] counts events per distinct vertex, calls
    [f ~vertex ~count] once per distinct vertex, then clears the logs.
    [scratch] must be a zeroed array of length [num_vertices]; it is zeroed
    again before returning. Call between phases. *)
val reduce : t -> scratch:int array -> (vertex:int -> count:int -> unit) -> unit

(** [total_events t] is the lifetime event count. *)
val total_events : t -> int
