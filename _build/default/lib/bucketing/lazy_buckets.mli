(** Julienne-style lazy bucketing (Dhulipala et al., SPAA'17), as re-designed
    by the paper (Section 5.1).

    Only a window of [num_open] buckets is materialized; vertices whose key
    falls beyond the window live in a single {e overflow} bucket and are
    redistributed when the window is exhausted. Insertions are {e lazy}: a
    vertex may have stale copies in old buckets; extraction filters each
    candidate by recomputing its current key, so every vertex is returned at
    most once per extraction and only from the bucket matching its current
    priority.

    Keys are direction-normalized by {!Bucket_order} (smallest key first).

    Two key sources mirror the paper's comparison: [Closure] is Julienne's
    original interface (a function call per priority computation);
    [Vector] is the optimized interface that reads a priority vector and
    applies the coarsening factor directly. *)

type key_source =
  | Closure of (int -> int)
      (** [f v] is the current key of [v], or {!Bucket_order.null_key}. *)
  | Vector of Parallel.Atomic_array.t * Bucket_order.direction * int
      (** Priority vector, direction, and coarsening delta. *)

type t

(** [create ~num_vertices ~num_open ~source ()] is an empty structure.
    [num_open >= 1]. *)
val create : num_vertices:int -> num_open:int -> source:key_source -> unit -> t

(** [insert t v] files [v] under its current key. Vertices with the null key
    are ignored; keys before the current cursor are clamped to the cursor.
    Not thread-safe: bulk updates are applied in the sequential phase of a
    round, as in Figure 5 of the paper. *)
val insert : t -> int -> unit

(** [insert_all t] files every vertex of the universe (used by k-core and
    SetCover, whose initial frontier is all vertices). *)
val insert_all : t -> unit

(** [next_bucket t] advances to the smallest non-empty bucket at or after
    the cursor and returns [(key, members)], or [None] when every remaining
    copy is stale. Members are deduplicated and validated against the
    current key source. *)
val next_bucket : t -> (int * int array) option

(** [current_key t] is the key of the bucket most recently returned by
    {!next_bucket}. Before the first extraction it is the smallest possible
    key. *)
val current_key : t -> int

(** [total_inserts t] counts every accepted {!insert} since creation, the
    bucket-insertion metric of Table 7. *)
val total_inserts : t -> int

(** [key_of t v] exposes the key source (used by extraction filters and
    tests). *)
val key_of : t -> int -> int
