lib/autotune/tuner.mli: Ordered Search_space Support
