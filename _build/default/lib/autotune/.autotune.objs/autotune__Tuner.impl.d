lib/autotune/tuner.ml: Hashtbl List Ordered Search_space
