lib/autotune/search_space.mli: Ordered Support
