lib/autotune/search_space.ml: Fun List Ordered Support
