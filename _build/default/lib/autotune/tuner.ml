module Schedule = Ordered.Schedule

type measurement = {
  schedule : Schedule.t;
  seconds : float;
}

type result = {
  best : measurement;
  trials : measurement list;
}

let tune ~space ~rng ~budget ~evaluate () =
  if budget < 1 then invalid_arg "Tuner.tune: budget must be >= 1";
  let trials = ref [] in
  let seen = Hashtbl.create 64 in
  let measure schedule =
    match Hashtbl.find_opt seen schedule with
    | Some m -> m
    | None ->
        let seconds = try evaluate schedule with _ -> infinity in
        let m = { schedule; seconds } in
        Hashtbl.replace seen schedule m;
        trials := m :: !trials;
        m
  in
  let better a b = if b.seconds < a.seconds then b else a in
  (* Phase 1: random sampling. *)
  let sample_budget = max 1 (budget / 2) in
  let incumbent = ref (measure (Search_space.random space rng)) in
  for _ = 2 to sample_budget do
    if List.length !trials < budget then
      incumbent := better !incumbent (measure (Search_space.random space rng))
  done;
  (* Phase 2: greedy hill climbing on single-dimension neighbors. *)
  let continue = ref true in
  while !continue && List.length !trials < budget do
    let neighbors = Search_space.neighbors space rng !incumbent.schedule in
    let before = !incumbent.seconds in
    List.iter
      (fun candidate ->
        if List.length !trials < budget then
          incumbent := better !incumbent (measure candidate))
      neighbors;
    if !incumbent.seconds >= before then continue := false
  done;
  { best = !incumbent; trials = List.rev !trials }
