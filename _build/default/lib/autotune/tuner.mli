(** The autotuner of Section 5.3: a stochastic search over the schedule
    space. The paper builds on OpenTuner's ensemble search; this tuner uses
    the same two ingredients that do the work for this space — random
    sampling to locate a promising basin, then greedy hill climbing over
    single-dimension neighbors — and, like the paper, typically lands
    within a few percent of the hand-tuned schedule in tens of trials. *)

type measurement = {
  schedule : Ordered.Schedule.t;
  seconds : float;
}

type result = {
  best : measurement;
  trials : measurement list;  (** Every evaluation, in order. *)
}

(** [tune ~space ~rng ~budget ~evaluate ()] evaluates at most [budget]
    schedules. [evaluate] returns the runtime in seconds and must be
    deterministic enough to rank schedules; schedules it cannot run may
    raise, which counts as an infinitely slow trial. Half the budget is
    spent sampling, half hill climbing from the incumbent. *)
val tune :
  space:Search_space.t ->
  rng:Support.Rng.t ->
  budget:int ->
  evaluate:(Ordered.Schedule.t -> float) ->
  unit ->
  result
