(** C++ code generation, mirroring the paper's Figure 9 / Figure 10.

    The paper's compiler emits Cilk/OpenMP C++; this repository executes
    through {!Interp} instead, but the {e structure} of the code the
    compiler would emit is the observable artifact of the Section 5
    transformations, so we print it:

    - lazy + SparsePush: output buffer with offsets, [atomicWriteMin] with a
      tracking variable, CAS deduplication flags, prefix-sum frontier setup,
      bulk bucket update (Fig. 9(a));
    - lazy + DensePull: in-neighbor iteration with {e no} atomics
      (Fig. 9(b));
    - eager (± fusion): one OpenMP parallel region, thread-local
      [local_bins], dynamic work sharing, and — with fusion — the inner
      while loop that drains the current local bin (Fig. 9(c) / Fig. 7);
    - lazy with constant sum: the transformed histogram user function
      (Fig. 10).

    Golden tests pin these shapes so schedule changes provably change the
    generated synchronization. *)

(** [generate lowered] renders the full generated program. *)
val generate : Lower.t -> string
