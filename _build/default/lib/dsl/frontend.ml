type compiled = {
  lowered : Lower.t;
  source_name : string;
}

let compile ?(name = "<string>") source =
  match Lower.lower_string source with
  | Ok lowered -> Ok { lowered; source_name = name }
  | Error msg -> Error (Printf.sprintf "%s: %s" name msg)

let compile_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let source =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      compile ~name:path source

let run compiled ~pool ~argv ?externs () =
  Interp.run compiled.lowered ~pool ~argv ?externs ()

let generate_cpp compiled = Codegen_cpp.generate compiled.lowered
