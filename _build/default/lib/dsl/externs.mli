(** Host-side extern function implementations for the DSL applications that
    need them — exactly the applications for which the paper reports
    "long extern functions" (A* search and SetCover, Table 5).

    Register these when running the corresponding [.gt] programs:
    {[
      Frontend.run compiled ~pool ~argv
        ~externs:(Externs.astar ~coords ~target) ()
    ]} *)

(** [astar ~coords ~target] provides [heuristic(v)]: the scaled Euclidean
    distance from [v] to [target] (scale 100, matching
    {!Graphs.Generators.road_grid} weights, so the heuristic is
    admissible). *)
val astar :
  coords:Graphs.Coords.t -> target:int -> (string * Interp.extern_fn) list

(** [setcover ()] provides the two externs of [setcover.gt]:

    - [init_priorities(edges, pri)] fills [pri] with
      [floor(log2 (out_degree + 1))], the initial cost-per-element bucket of
      each set, and returns the element count;
    - [process_bucket(pq, bucket, k)] runs one peeling round: it
      re-validates each extracted set against its true uncovered degree
      (re-bucketing stale sets through the priority queue), greedily adds
      still-valid sets to the cover, and returns the number of uncovered
      elements remaining.

    The returned [result ()] reads back which sets were chosen. *)
val setcover :
  unit ->
  (string * Interp.extern_fn) list * (unit -> bool array option)
