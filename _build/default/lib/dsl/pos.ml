type t = {
  line : int;
  col : int;
}

let dummy = { line = 0; col = 0 }
let pp ppf t = Format.fprintf ppf "%d:%d" t.line t.col
