(** Tokens of the GraphIt algorithm and scheduling languages. *)

type t =
  | Ident of string
  | Int_lit of int
  | String_lit of string
  | Label of string  (** [#s1#] *)
  (* Keywords *)
  | Kw_element
  | Kw_const
  | Kw_func
  | Kw_extern
  | Kw_var
  | Kw_end
  | Kw_while
  | Kw_if
  | Kw_else
  | Kw_delete
  | Kw_new
  | Kw_schedule
  | Kw_true
  | Kw_false
  | Kw_and
  | Kw_or
  | Kw_not
  (* Punctuation and operators *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Colon
  | Semicolon
  | Comma
  | Dot
  | Arrow  (** [->] in schedule chains *)
  | Assign  (** [=] *)
  | Min_assign  (** [min=] *)
  | Max_assign  (** [max=] *)
  | Plus_assign  (** [+=] *)
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Plus
  | Minus
  | Star
  | Slash
  | Percent_op  (** [%] would be a comment; modulo is spelled [mod] — unused *)
  | Eof

type located = {
  token : t;
  pos : Pos.t;
}

(** [describe t] is a human-readable rendering for error messages. *)
val describe : t -> string

(** [keyword_of_string s] recognizes keywords; [None] for plain
    identifiers. *)
val keyword_of_string : string -> t option
