(** Type checking for the GraphIt DSL subset.

    Validates declarations, statement and expression types, intrinsic and
    priority-queue operator signatures (Table 1 of the paper), and scoping.
    Later compiler passes ({!Analysis}, {!Lower}) assume a well-typed
    program. *)

type error = {
  pos : Pos.t;
  message : string;
}

(** [pp_error] prints ["line:col: message"]. *)
val pp_error : Format.formatter -> error -> unit

(** [check program] returns all detected type errors (empty list = well
    typed). *)
val check : Ast.program -> (unit, error list) result
