module Schedule = Ordered.Schedule

type error = {
  pos : Pos.t;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "%a: %s" Pos.pp e.pos e.message
let err pos fmt = Printf.ksprintf (fun message -> Error { pos; message }) fmt

let ( let* ) = Result.bind

let int_arg pos name value =
  match int_of_string_opt value with
  | Some i -> Ok i
  | None -> err pos "%s expects an integer, got %S" name value

let apply_call schedules (call : Ast.schedule_call) =
  let pos = call.Ast.sc_pos in
  let* label, value =
    match call.Ast.sc_args with
    | [ label; value ] -> Ok (label, value)
    | _ -> err pos "%s expects (label, value)" call.Ast.sc_name
  in
  let current =
    match List.assoc_opt label schedules with
    | Some s -> s
    | None -> Schedule.default
  in
  let* updated =
    match call.Ast.sc_name with
    | "configApplyPriorityUpdate" -> (
        match Schedule.strategy_of_string value with
        | Ok strategy -> Ok { current with Schedule.strategy }
        | Error msg -> Error { pos; message = msg })
    | "configApplyPriorityUpdateDelta" ->
        let* delta = int_arg pos call.Ast.sc_name value in
        Ok { current with Schedule.delta }
    | "configBucketFusionThreshold" ->
        let* fusion_threshold = int_arg pos call.Ast.sc_name value in
        Ok { current with Schedule.fusion_threshold }
    | "configNumBuckets" ->
        let* num_open_buckets = int_arg pos call.Ast.sc_name value in
        Ok { current with Schedule.num_open_buckets }
    | "configApplyDirection" -> (
        match Schedule.traversal_of_string value with
        | Ok traversal -> Ok { current with Schedule.traversal }
        | Error msg -> Error { pos; message = msg })
    | "configApplyParallelization" -> (
        (* Inherited GraphIt command: we honor the grain size of
           dynamic-vertex-parallel via chunk_size and accept serial. *)
        match value with
        | "dynamic-vertex-parallel" -> Ok { current with Schedule.chunk_size = 64 }
        | "static-vertex-parallel" -> Ok { current with Schedule.chunk_size = 1024 }
        | "serial" -> Ok { current with Schedule.chunk_size = max_int }
        | other -> err pos "unknown parallelization strategy %S" other)
    | other -> err pos "unknown scheduling function %S" other
  in
  Ok ((label, updated) :: List.remove_assoc label schedules)

let resolve calls =
  let* schedules =
    List.fold_left
      (fun acc call ->
        let* schedules = acc in
        apply_call schedules call)
      (Ok []) calls
  in
  (* Validate each label's final schedule. *)
  List.fold_left
    (fun acc (label, schedule) ->
      let* validated = acc in
      match Schedule.validate schedule with
      | Ok s -> Ok ((label, s) :: validated)
      | Error message ->
          Error { pos = Pos.dummy; message = Printf.sprintf "label %s: %s" label message })
    (Ok []) schedules

let schedule_for label resolved =
  match label with
  | None -> Schedule.default
  | Some l -> (
      match List.assoc_opt l resolved with
      | Some s -> s
      | None -> Schedule.default)
