(** The compiler analyses of Section 5 of the paper.

    - {e Ordered-loop pattern detection} (§5.2): find the
      [while (pq.finished() == false)] loop whose body dequeues a ready set,
      applies an [applyUpdatePriority] edge operator to it, and deletes it,
      with no other use of the bucket. Only such loops can be replaced by
      the eager ordered-processing operator; programs that drive the
      priority queue in other ways (e.g. SetCover's extern phases) fall
      back to generic interpretation and lazy bucketing.
    - {e User-function analysis} (§5.1): which priority-update operator the
      UDF invokes; whether the update is a constant-value sum reduction
      (making the histogram strategy legal, Fig. 10); and which vectors the
      UDF writes at the destination index (write-write conflicts that
      require atomics under push traversal).
    - An early-exit conjunct ([pq.finishedVertex(v) == false]) in the loop
      condition is recognized for PPSP/A*-style termination. *)

type priority_update =
  | Update_min
  | Update_max
  | Update_sum of {
      literal_diff : int option;  (** [Some d] when the diff is a literal. *)
      has_threshold : bool;
    }

type udf_info = {
  udf_name : string;
  src_param : string;
  dst_param : string;
  weight_param : string option;
  update : priority_update;
  constant_sum_diff : int option;
      (** [Some d] when the lazy-constant-sum (histogram) strategy is
          legal: a single [updatePrioritySum] with literal diff [d]
          targeting the destination. *)
  atomic_vectors : string list;
      (** Vectors written at the destination index — these writes get
          atomics under push traversal. *)
}

type pq_info = {
  pq_name : string;
  allow_coarsening : bool;
  direction : Bucketing.Bucket_order.direction;
  priority_vector : string;
  start_vertex : Ast.expr option;  (** [None] = all vertices initially. *)
}

type ordered_loop = {
  bucket_name : string;
  edgeset_name : string;
  label : string option;
  stop_vertex : Ast.expr option;
  udf : udf_info;
}

(** What the compiler found in [main]. *)
type result = {
  pq : pq_info option;
      (** [None] when the program declares no priority queue at all (plain
          GraphIt programs are still valid). *)
  loop : ordered_loop option;
      (** [Some] when the §5.2 pattern matched and the loop can be replaced
          by the ordered processing operator; [None] means the program
          drives the queue generically. *)
}

type error = {
  pos : Pos.t;
  message : string;
}

val pp_error : Format.formatter -> error -> unit

(** [analyze program] runs the analyses on a well-typed program. *)
val analyze : Ast.program -> (result, error) Stdlib.result

(** [analyze_udf program name] analyzes one user function (exposed for
    tests and for the code generator). *)
val analyze_udf :
  Ast.program -> pq_name:string -> string -> (udf_info, error) Stdlib.result

(** [match_while program ~pq_name ~cond ~body] tests whether one [while]
    statement is the replaceable ordered loop; used by the interpreter to
    recognize the loop the compiler transformed. [Ok None] means "an
    ordinary while loop". *)
val match_while :
  Ast.program ->
  pq_name:string ->
  cond:Ast.expr ->
  body:Ast.stmt list ->
  (ordered_loop option, error) Stdlib.result
