module Schedule = Ordered.Schedule

type ctx = {
  buf : Buffer.t;
  mutable indent : int;
  schedule : Schedule.t;
  pq_name : string;
  udf : Analysis.udf_info option;
}

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      if s = "" then Buffer.add_char ctx.buf '\n'
      else begin
        Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
        Buffer.add_string ctx.buf s;
        Buffer.add_char ctx.buf '\n'
      end)
    fmt

let indented ctx f =
  ctx.indent <- ctx.indent + 1;
  f ();
  ctx.indent <- ctx.indent - 1

let block ctx header f =
  line ctx "%s {" header;
  indented ctx f;
  line ctx "}"

(* ---------------- expression translation ---------------- *)

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Eq -> "=="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

(* [mapping] renames UDF parameters to the C++ loop variables of the chosen
   traversal (e.g. dst -> "dst.v", weight -> "dst.weight" under push). *)
let rec expr_str ctx mapping (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int_lit i -> string_of_int i
  | Ast.Bool_lit b -> if b then "true" else "false"
  | Ast.String_lit s -> Printf.sprintf "%S" s
  | Ast.Var v -> (
      match List.assoc_opt v mapping with
      | Some mapped -> mapped
      | None -> if v = "INT_MAX" then "INT_MAX" else v)
  | Ast.Index ({ Ast.desc = Ast.Var "argv"; _ }, idx) ->
      Printf.sprintf "argv[%s]" (expr_str ctx mapping idx)
  | Ast.Index (base, idx) ->
      Printf.sprintf "%s[%s]" (expr_str ctx mapping base) (expr_str ctx mapping idx)
  | Ast.Binop (op, lhs, rhs) ->
      Printf.sprintf "(%s %s %s)" (expr_str ctx mapping lhs) (binop_str op)
        (expr_str ctx mapping rhs)
  | Ast.Unop (Ast.Neg, x) -> Printf.sprintf "(-%s)" (expr_str ctx mapping x)
  | Ast.Unop (Ast.Not, x) -> Printf.sprintf "(!%s)" (expr_str ctx mapping x)
  | Ast.Call ("atoi", args) ->
      Printf.sprintf "atoi(%s)" (String.concat ", " (List.map (expr_str ctx mapping) args))
  | Ast.Call ("load", args) ->
      Printf.sprintf "loadGraph(%s)"
        (String.concat ", " (List.map (expr_str ctx mapping) args))
  | Ast.Call (name, args) ->
      Printf.sprintf "%s(%s)" name
        (String.concat ", " (List.map (expr_str ctx mapping) args))
  | Ast.Method_call ({ Ast.desc = Ast.Var recv; _ }, name, args) when recv = ctx.pq_name
    ->
      let cpp_name =
        match name with
        | "getCurrentPriority" | "get_current_priority" -> "get_current_priority"
        | other -> other
      in
      Printf.sprintf "pq->%s(%s)" cpp_name
        (String.concat ", " (List.map (expr_str ctx mapping) args))
  | Ast.Method_call (recv, name, args) ->
      Printf.sprintf "%s.%s(%s)" (expr_str ctx mapping recv) name
        (String.concat ", " (List.map (expr_str ctx mapping) args))
  | Ast.New_vertexset { size; _ } ->
      Printf.sprintf "new VertexSubset<NodeID>(num_verts, %s)" (expr_str ctx mapping size)
  | Ast.New_priority_queue { args; _ } ->
      let kind =
        if Schedule.is_eager ctx.schedule then "EagerPriorityQueue"
        else "LazyPriorityQueue"
      in
      Printf.sprintf "new %s(%s, delta)" kind
        (String.concat ", " (List.map (expr_str ctx mapping) args))

(* ---------------- user function translation ---------------- *)

(* The priority-update operator is where the schedules diverge: each
   strategy compiles the same DSL call to different synchronization
   (Fig. 9 / Fig. 10 of the paper). *)
let emit_priority_update ctx mapping op_args op_kind =
  let dst =
    match op_args with
    | target :: _ -> expr_str ctx mapping target
    | [] -> "dst.v"
  in
  let new_val =
    match (op_kind, op_args) with
    | `Sum, _ :: diff :: _ -> expr_str ctx mapping diff
    | _, args -> (
        match List.rev args with
        | last :: _ -> expr_str ctx mapping last
        | [] -> "0")
  in
  let vec =
    match ctx.udf with
    | Some _ -> "pq->priority_vector"
    | None -> "priority"
  in
  match (ctx.schedule.Schedule.strategy, ctx.schedule.Schedule.traversal, op_kind) with
  | (Schedule.Lazy | Schedule.Lazy_constant_sum), (Schedule.Sparse_push | Schedule.Hybrid), `Min ->
      line ctx "bool tracking_var = atomicWriteMin(&%s[%s], %s);" vec dst new_val;
      line ctx "if (tracking_var && CAS(&dedup_flags[%s], 0, 1)) {" dst;
      indented ctx (fun () -> line ctx "outEdges[offset + j] = %s;" dst);
      line ctx "} else { outEdges[offset + j] = UINT_MAX; }";
      line ctx "j++;"
  | (Schedule.Lazy | Schedule.Lazy_constant_sum), Schedule.Dense_pull, `Min ->
      (* Pull owns the destination: no atomics (Fig. 9(b)). *)
      line ctx "if (%s < %s[%s]) {" new_val vec dst;
      indented ctx (fun () ->
          line ctx "%s[%s] = %s;" vec dst new_val;
          line ctx "if (CAS(&dedup_flags[%s], 0, 1)) { next[%s] = 1; }" dst dst);
      line ctx "}"
  | (Schedule.Eager_with_fusion | Schedule.Eager_no_fusion), _, `Min ->
      line ctx "bool changed = atomicWriteMin(&%s[%s], %s);" vec dst new_val;
      line ctx "if (changed) {";
      indented ctx (fun () ->
          line ctx "size_t dest_bin = %s / delta;" new_val;
          line ctx "if (dest_bin >= local_bins.size()) {";
          indented ctx (fun () -> line ctx "local_bins.resize(dest_bin + 1);");
          line ctx "}";
          line ctx "local_bins[dest_bin].push_back(%s);" dst);
      line ctx "}"
  | _, _, `Max ->
      line ctx "bool tracking_var = atomicWriteMax(&%s[%s], %s);" vec dst new_val;
      line ctx "if (tracking_var) { updateBucketOf(pq, %s); }" dst
  | Schedule.Lazy_constant_sum, _, `Sum ->
      line ctx "// constant-sum update: reduced via histogram (see";
      line ctx "// apply_f_transformed below); only the count is recorded here.";
      line ctx "histogram_record(%s);" dst
  | _, _, `Sum ->
      let floor =
        match op_args with
        | [ _; _; threshold ] -> expr_str ctx mapping threshold
        | _ -> "INT_MIN"
      in
      line ctx "bool changed = atomicAddWithFloor(&%s[%s], %s, %s);" vec dst new_val floor;
      line ctx "if (changed) { local_bins_insert(pq, %s, %s[%s] / delta); }" dst vec dst

let rec emit_udf_stmt ctx mapping (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.S_var_decl (name, _, Some init) ->
      line ctx "int %s = %s;" name (expr_str ctx mapping init)
  | Ast.S_var_decl (name, _, None) -> line ctx "int %s;" name
  | Ast.S_assign (name, e) -> line ctx "%s = %s;" name (expr_str ctx mapping e)
  | Ast.S_index_assign (vec, idx, e) ->
      line ctx "%s[%s] = %s;" vec (expr_str ctx mapping idx) (expr_str ctx mapping e)
  | Ast.S_reduce_assign (rd, vec, idx, e) -> (
      let target = Printf.sprintf "%s[%s]" vec (expr_str ctx mapping idx) in
      let value = expr_str ctx mapping e in
      let is_dst_write =
        match (ctx.udf, idx.Ast.desc) with
        | Some udf, Ast.Var v -> v = udf.Analysis.dst_param
        | _ -> false
      in
      let atomic =
        is_dst_write && ctx.schedule.Schedule.traversal = Schedule.Sparse_push
      in
      match (rd, atomic) with
      | Ast.Rd_min, true -> line ctx "atomicWriteMin(&%s, %s);" target value
      | Ast.Rd_min, false ->
          line ctx "if (%s < %s) { %s = %s; }" value target target value
      | Ast.Rd_max, true -> line ctx "atomicWriteMax(&%s, %s);" target value
      | Ast.Rd_max, false ->
          line ctx "if (%s > %s) { %s = %s; }" value target target value
      | Ast.Rd_plus, true -> line ctx "fetch_and_add(&%s, %s);" target value
      | Ast.Rd_plus, false -> line ctx "%s += %s;" target value)
  | Ast.S_expr { Ast.desc = Ast.Method_call ({ Ast.desc = Ast.Var recv; _ }, op, args); _ }
    when recv = ctx.pq_name -> (
      match op with
      | "updatePriorityMin" -> emit_priority_update ctx mapping args `Min
      | "updatePriorityMax" -> emit_priority_update ctx mapping args `Max
      | "updatePrioritySum" -> emit_priority_update ctx mapping args `Sum
      | other -> line ctx "pq->%s();" other)
  | Ast.S_expr e -> line ctx "%s;" (expr_str ctx mapping e)
  | Ast.S_if (cond, then_branch, else_branch) ->
      line ctx "if (%s) {" (expr_str ctx mapping cond);
      indented ctx (fun () -> List.iter (emit_udf_stmt ctx mapping) then_branch);
      if else_branch <> [] then begin
        line ctx "} else {";
        indented ctx (fun () -> List.iter (emit_udf_stmt ctx mapping) else_branch)
      end;
      line ctx "}"
  | Ast.S_while (cond, body) ->
      line ctx "while (%s) {" (expr_str ctx mapping cond);
      indented ctx (fun () -> List.iter (emit_udf_stmt ctx mapping) body);
      line ctx "}"
  | Ast.S_delete name -> line ctx "deleteObject(%s);" name

let udf_mapping (udf : Analysis.udf_info) traversal =
  match traversal with
  | Schedule.Sparse_push | Schedule.Hybrid ->
      (udf.Analysis.src_param, "src")
      :: (udf.Analysis.dst_param, "dst.v")
      ::
      (match udf.Analysis.weight_param with
      | Some w -> [ (w, "dst.weight") ]
      | None -> [])
  | Schedule.Dense_pull ->
      (udf.Analysis.src_param, "src.v")
      :: (udf.Analysis.dst_param, "dst")
      ::
      (match udf.Analysis.weight_param with
      | Some w -> [ (w, "src.weight") ]
      | None -> [])

(* ---------------- loop skeletons ---------------- *)

let emit_udf_body ctx program (udf : Analysis.udf_info) =
  match Ast.find_func program udf.Analysis.udf_name with
  | None -> line ctx "// unknown user function %s" udf.Analysis.udf_name
  | Some f ->
      let mapping = udf_mapping udf ctx.schedule.Schedule.traversal in
      List.iter (emit_udf_stmt ctx mapping) f.Ast.body

let emit_lazy_push ctx program udf =
  block ctx "while (!pq->finished())" (fun () ->
      line ctx "VertexSubset* frontier = getNextBucket(pq);";
      line ctx "uint* outEdges = setupOutputBuffer(g, frontier);";
      line ctx "uint* offsets = setupOutputBufferOffsets(g, frontier);";
      block ctx "parallel_for (size_t i = 0; i < frontier->size(); i++)" (fun () ->
          line ctx "uint src = frontier->vert_array[i];";
          line ctx "uint offset = offsets[i];";
          line ctx "int j = 0;";
          block ctx "for (WNode dst : g.getOutNgh(src))" (fun () ->
              emit_udf_body ctx program udf));
      line ctx "VertexSubset* nextFrontier = setupFrontier(outEdges);";
      line ctx "updateBuckets(nextFrontier, pq, delta);")

let emit_lazy_pull ctx program udf =
  block ctx "while (!pq->finished())" (fun () ->
      line ctx "VertexSubset* frontier = getNextBucket(pq);";
      line ctx "bool* next = newA(bool, g.num_nodes());";
      line ctx "parallel_for (uint i = 0; i < numNodes; i++) next[i] = 0;";
      block ctx "parallel_for (uint dst = 0; dst < numNodes; dst++)" (fun () ->
          block ctx "for (WNode src : g.getInNgh(dst))" (fun () ->
              block ctx "if (frontier->bool_map_[src.v])" (fun () ->
                  emit_udf_body ctx program udf)));
      line ctx "VertexSubset* nextFrontier = setupFrontier(next);";
      line ctx "updateBuckets(nextFrontier, pq, delta);")

let emit_eager ctx program udf ~fusion =
  line ctx "uint* frontier = new uint[G.num_edges()];";
  line ctx "frontier[0] = start_vertex;";
  line ctx "#pragma omp parallel";
  line ctx "{";
  indented ctx (fun () ->
      line ctx "vector<vector<uint>> local_bins(0);";
      block ctx "while (!pq->finished())" (fun () ->
          line ctx "#pragma omp for nowait schedule(dynamic, %d)"
            ctx.schedule.Schedule.chunk_size;
          block ctx "for (size_t i = 0; i < frontier_size; i++)" (fun () ->
              line ctx "uint src = frontier[i];";
              line ctx "if (pq->get_bucket(pq->priority_vector[src]) != curr_bin) continue;";
              block ctx "for (WNode dst : g.getOutNgh(src))" (fun () ->
                  emit_udf_body ctx program udf));
          if fusion then begin
            line ctx "// bucket fusion (Fig. 7): drain this thread's current bin";
            line ctx "// without a global synchronization while it stays small.";
            block ctx
              (Printf.sprintf
                 "while (curr_bin < local_bins.size() && \
                  !local_bins[curr_bin].empty() && local_bins[curr_bin].size() < %d)"
                 ctx.schedule.Schedule.fusion_threshold)
              (fun () ->
                line ctx "vector<uint> fused = std::move(local_bins[curr_bin]);";
                block ctx "for (uint src : fused)" (fun () ->
                    line ctx
                      "if (pq->get_bucket(pq->priority_vector[src]) != curr_bin) \
                       continue;";
                    block ctx "for (WNode dst : g.getOutNgh(src))" (fun () ->
                        emit_udf_body ctx program udf)))
          end;
          line ctx "#pragma omp barrier";
          line ctx "// propose this thread's next bucket; min across threads wins";
          line ctx "// copy local buckets of the winning priority to the global frontier";
          line ctx "#pragma omp barrier"));
  line ctx "}"

let emit_constant_sum_function ctx udf =
  let diff =
    match udf.Analysis.constant_sum_diff with
    | Some d -> d
    | None -> 0
  in
  line ctx "// transformed constant-sum user function (Fig. 10)";
  block ctx "auto apply_f_transformed = [&] (uint vertex, uint count)" (fun () ->
      line ctx "int k = pq->get_current_priority();";
      line ctx "int priority = pq->priority_vector[vertex];";
      block ctx "if (priority > k)" (fun () ->
          line ctx "uint __new_pri = std::max(priority + (%d) * count, k);" diff;
          line ctx "pq->priority_vector[vertex] = __new_pri;";
          line ctx "return wrap(vertex, pq->get_bucket(__new_pri));");
      line ctx "return Maybe<tuple<uint, uint>>();");
  line ctx ";";
  block ctx "while (!pq->finished())" (fun () ->
      line ctx "VertexSubset* frontier = getNextBucket(pq);";
      line ctx "// histogram: count updates per destination, then apply";
      line ctx "// apply_f_transformed once per distinct vertex.";
      line ctx "updateBucketWithGraphItVertexMap(frontier, apply_f_transformed);")

(* ---------------- whole program ---------------- *)

let generate (lowered : Lower.t) =
  let program = lowered.Lower.program in
  let analysis = lowered.Lower.analysis in
  let schedule = lowered.Lower.loop_schedule in
  let udf = Option.map (fun l -> l.Analysis.udf) analysis.Analysis.loop in
  let ctx =
    {
      buf = Buffer.create 4096;
      indent = 0;
      schedule;
      pq_name =
        (match analysis.Analysis.pq with
        | Some info -> info.Analysis.pq_name
        | None -> "pq");
      udf;
    }
  in
  line ctx "// Generated by the GraphIt priority-based extension.";
  line ctx "// schedule: %s" (Format.asprintf "%a" Schedule.pp schedule);
  line ctx "#include \"gpq_runtime.h\"";
  line ctx "";
  (* Globals. *)
  List.iter
    (fun (c : Ast.const_decl) ->
      match c.Ast.ctyp with
      | Ast.T_vector (_, Ast.T_int) -> line ctx "int * %s = new int[num_verts];" c.Ast.cname
      | Ast.T_priority_queue _ ->
          if Schedule.is_eager schedule then line ctx "EagerPriorityQueue* %s;" c.Ast.cname
          else line ctx "LazyPriorityQueue* %s;" c.Ast.cname
      | Ast.T_edgeset _ -> line ctx "WGraph* %s;" c.Ast.cname
      | _ -> line ctx "int %s;" c.Ast.cname)
    program.Ast.consts;
  line ctx "int delta = %d;" schedule.Schedule.delta;
  line ctx "";
  block ctx "int main(int argc, char* argv[])" (fun () ->
      (* Initialization: every main statement before the ordered loop. *)
      (match Ast.find_func program "main" with
      | None -> ()
      | Some main ->
          List.iter
            (fun (s : Ast.stmt) ->
              match s.Ast.sdesc with
              | Ast.S_while _ -> ()
              | _ -> emit_udf_stmt ctx [] s)
            main.Ast.body);
      line ctx "";
      match (udf, schedule.Schedule.strategy, schedule.Schedule.traversal) with
      | Some u, Schedule.Lazy_constant_sum, _ -> emit_constant_sum_function ctx u
      | Some u, Schedule.Lazy, Schedule.Sparse_push -> emit_lazy_push ctx program u
      | Some u, Schedule.Lazy, Schedule.Dense_pull -> emit_lazy_pull ctx program u
      | Some u, Schedule.Lazy, Schedule.Hybrid ->
          line ctx "// hybrid direction: per round, pull when the frontier is";
          line ctx "// dense (out-degree sum > |E|/20), push otherwise.";
          emit_lazy_push ctx program u
      | Some u, Schedule.Eager_no_fusion, _ -> emit_eager ctx program u ~fusion:false
      | Some u, Schedule.Eager_with_fusion, _ -> emit_eager ctx program u ~fusion:true
      | None, _, _ ->
          line ctx "// no replaceable ordered loop: generic priority-queue driver");
  Buffer.contents ctx.buf
