(** One-stop compiler driver: parse → typecheck → analyze → resolve
    schedules → (execute | print C++). *)

type compiled = {
  lowered : Lower.t;
  source_name : string;
}

(** [compile ?name source] runs every frontend pass on DSL source text.
    Errors are formatted with positions, prefixed by [name]. *)
val compile : ?name:string -> string -> (compiled, string) result

(** [compile_file path] reads and compiles a [.gt] file. *)
val compile_file : string -> (compiled, string) result

(** [run compiled ~pool ~argv ()] executes the program; see {!Interp.run}.
    [argv] follows C conventions ([argv.(0)] = program name). *)
val run :
  compiled ->
  pool:Parallel.Pool.t ->
  argv:string array ->
  ?externs:(string * Interp.extern_fn) list ->
  unit ->
  Interp.run_result

(** [generate_cpp compiled] prints the C++ the paper's compiler would emit
    for the resolved schedule (Fig. 9 / Fig. 10 shapes). *)
val generate_cpp : compiled -> string
