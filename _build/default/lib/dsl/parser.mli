(** Recursive-descent parser for the GraphIt DSL (algorithm language of
    Table 1 / Figure 3 plus the [schedule:] section of Figure 8). *)

exception Error of Pos.t * string

(** [parse tokens] builds the AST. Raises {!Error} with a located message on
    malformed input. *)
val parse : Token.located array -> Ast.program

(** [parse_string source] tokenizes and parses. Lexer errors are re-raised
    as {!Error}. *)
val parse_string : string -> Ast.program
