(** Source positions for located diagnostics. *)

type t = {
  line : int;  (** 1-based. *)
  col : int;  (** 1-based. *)
}

val dummy : t

(** [pp] prints ["line:col"]. *)
val pp : Format.formatter -> t -> unit
