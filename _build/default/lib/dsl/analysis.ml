module Bucket_order = Bucketing.Bucket_order

type priority_update =
  | Update_min
  | Update_max
  | Update_sum of {
      literal_diff : int option;
      has_threshold : bool;
    }

type udf_info = {
  udf_name : string;
  src_param : string;
  dst_param : string;
  weight_param : string option;
  update : priority_update;
  constant_sum_diff : int option;
  atomic_vectors : string list;
}

type pq_info = {
  pq_name : string;
  allow_coarsening : bool;
  direction : Bucket_order.direction;
  priority_vector : string;
  start_vertex : Ast.expr option;
}

type ordered_loop = {
  bucket_name : string;
  edgeset_name : string;
  label : string option;
  stop_vertex : Ast.expr option;
  udf : udf_info;
}

type result = {
  pq : pq_info option;
  loop : ordered_loop option;
}

type error = {
  pos : Pos.t;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "%a: %s" Pos.pp e.pos e.message
let err pos fmt = Printf.ksprintf (fun message -> Error { pos; message }) fmt

let ( let* ) = Result.bind

(* ---------------- user-defined function analysis ---------------- *)

let literal_int (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int_lit i -> Some i
  | Ast.Unop (Ast.Neg, { Ast.desc = Ast.Int_lit i; _ }) -> Some (-i)
  | _ -> None

(* Collect every priority-update call on [pq_name] and every vector write in
   the function body. *)
let rec scan_stmts pq_name stmts updates writes =
  List.iter (fun s -> scan_stmt pq_name s updates writes) stmts

and scan_stmt pq_name (s : Ast.stmt) updates writes =
  match s.Ast.sdesc with
  | Ast.S_var_decl (_, _, Some e) -> scan_expr pq_name e updates
  | Ast.S_var_decl (_, _, None) -> ()
  | Ast.S_assign (_, e) -> scan_expr pq_name e updates
  | Ast.S_index_assign (vec, idx, e) ->
      writes := (vec, idx) :: !writes;
      scan_expr pq_name e updates
  | Ast.S_reduce_assign (_, vec, idx, e) ->
      writes := (vec, idx) :: !writes;
      scan_expr pq_name e updates
  | Ast.S_expr e -> scan_expr pq_name e updates
  | Ast.S_while (cond, body) ->
      scan_expr pq_name cond updates;
      scan_stmts pq_name body updates writes
  | Ast.S_if (cond, then_branch, else_branch) ->
      scan_expr pq_name cond updates;
      scan_stmts pq_name then_branch updates writes;
      scan_stmts pq_name else_branch updates writes
  | Ast.S_delete _ -> ()

and scan_expr pq_name (e : Ast.expr) updates =
  match e.Ast.desc with
  | Ast.Method_call ({ Ast.desc = Ast.Var recv; _ }, name, args) when recv = pq_name ->
      (match name with
      | "updatePriorityMin" | "updatePriorityMax" | "updatePrioritySum" ->
          updates := (e.Ast.pos, name, args) :: !updates
      | _ -> ());
      List.iter (fun a -> scan_expr pq_name a updates) args
  | Ast.Method_call (recv, _, args) ->
      scan_expr pq_name recv updates;
      List.iter (fun a -> scan_expr pq_name a updates) args
  | Ast.Binop (_, lhs, rhs) ->
      scan_expr pq_name lhs updates;
      scan_expr pq_name rhs updates
  | Ast.Unop (_, operand) -> scan_expr pq_name operand updates
  | Ast.Index (base, index) ->
      scan_expr pq_name base updates;
      scan_expr pq_name index updates
  | Ast.Call (_, args) -> List.iter (fun a -> scan_expr pq_name a updates) args
  | Ast.New_priority_queue { args; _ } ->
      List.iter (fun a -> scan_expr pq_name a updates) args
  | Ast.New_vertexset { size; _ } -> scan_expr pq_name size updates
  | Ast.Int_lit _ | Ast.Bool_lit _ | Ast.String_lit _ | Ast.Var _ -> ()

let analyze_udf program ~pq_name name =
  match Ast.find_func program name with
  | None -> err Pos.dummy "unknown user function %S" name
  | Some f -> (
      let* src_param, dst_param, weight_param =
        match f.Ast.params with
        | [ (s, _); (d, _) ] -> Ok (s, d, None)
        | [ (s, _); (d, _); (w, _) ] -> Ok (s, d, Some w)
        | _ ->
            err f.Ast.fpos "user function %s must take (src, dst [, weight])" name
      in
      let updates = ref [] and writes = ref [] in
      scan_stmts pq_name f.Ast.body updates writes;
      let is_dst (e : Ast.expr) =
        match e.Ast.desc with
        | Ast.Var v -> v = dst_param
        | _ -> false
      in
      (* Write-write conflict analysis: a write indexed by the destination
         parameter can race across edges under push traversal. *)
      let atomic_vectors =
        List.filter_map (fun (vec, idx) -> if is_dst idx then Some vec else None) !writes
        |> List.sort_uniq compare
      in
      match !updates with
      | [] -> err f.Ast.fpos "user function %s performs no priority update" name
      | _ :: _ :: _ as all ->
          let pos = match all with (p, _, _) :: _ -> p | [] -> f.Ast.fpos in
          err pos "user function %s must contain exactly one priority update" name
      | [ (pos, op_name, args) ] ->
          let* update =
            match (op_name, args) with
            | "updatePriorityMin", ([ _; _ ] | [ _; _; _ ]) -> Ok Update_min
            | "updatePriorityMax", ([ _; _ ] | [ _; _; _ ]) -> Ok Update_max
            | "updatePrioritySum", [ _; diff ] ->
                Ok (Update_sum { literal_diff = literal_int diff; has_threshold = false })
            | "updatePrioritySum", [ _; diff; _threshold ] ->
                Ok (Update_sum { literal_diff = literal_int diff; has_threshold = true })
            | _, _ -> err pos "%s has the wrong number of arguments" op_name
          in
          let target_is_dst =
            match args with
            | target :: _ -> is_dst target
            | [] -> false
          in
          let constant_sum_diff =
            match update with
            | Update_sum { literal_diff = Some d; _ } when target_is_dst -> Some d
            | _ -> None
          in
          Ok
            {
              udf_name = name;
              src_param;
              dst_param;
              weight_param;
              update;
              constant_sum_diff;
              atomic_vectors;
            })

(* ---------------- priority queue declaration ---------------- *)

let find_pq_decl program =
  (* The pq is declared as a const of priority_queue type and assigned a
     [new priority_queue] in main; programs without one are plain GraphIt
     programs with no ordered loop. *)
  match
    List.find_opt
      (fun c -> match c.Ast.ctyp with Ast.T_priority_queue _ -> true | _ -> false)
      program.Ast.consts
  with
  | None -> Ok None
  | Some pq_const ->
  let pq_name = pq_const.Ast.cname in
  let* main =
    match Ast.find_func program "main" with
    | Some f -> Ok f
    | None -> err Pos.dummy "program has no 'main' function"
  in
  let found = ref None in
  let rec walk stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.S_assign (name, { Ast.desc = Ast.New_priority_queue { args; _ }; pos })
          when name = pq_name ->
            found := Some (pos, args)
        | Ast.S_while (_, body) -> walk body
        | Ast.S_if (_, t, e) ->
            walk t;
            walk e
        | _ -> ())
      stmts
  in
  walk main.Ast.body;
  match !found with
  | None -> err main.Ast.fpos "main never constructs the priority queue %S" pq_name
  | Some (pos, args) -> (
      match args with
      | allow :: direction :: vector :: rest -> (
          let* allow_coarsening =
            match allow.Ast.desc with
            | Ast.Bool_lit b -> Ok b
            | _ -> err pos "allow_coarsening must be a boolean literal"
          in
          let* direction =
            match direction.Ast.desc with
            | Ast.String_lit s -> (
                match Bucket_order.direction_of_string s with
                | Ok d -> Ok d
                | Error msg -> Error { pos; message = msg })
            | _ -> err pos "priority direction must be a string literal"
          in
          let* priority_vector =
            match vector.Ast.desc with
            | Ast.Var v -> Ok v
            | _ -> err pos "priority_vector must name a global vector"
          in
          match rest with
          | [] ->
              Ok (Some { pq_name; allow_coarsening; direction; priority_vector;
                         start_vertex = None })
          | [ start ] ->
              Ok (Some { pq_name; allow_coarsening; direction; priority_vector;
                         start_vertex = Some start })
          | _ -> err pos "too many priority_queue constructor arguments")
      | _ -> err pos "priority_queue constructor takes at least 3 arguments")

(* ---------------- ordered-loop pattern (§5.2) ---------------- *)

(* Match [pq.finished() == false], [not pq.finished()], and recognize an
   extra [pq.finishedVertex(v) == false] (or [not ...]) conjunct. *)
let rec match_condition pq_name (e : Ast.expr) =
  let is_finished_call (x : Ast.expr) =
    match x.Ast.desc with
    | Ast.Method_call ({ Ast.desc = Ast.Var recv; _ }, "finished", []) -> recv = pq_name
    | _ -> false
  in
  let finished_vertex (x : Ast.expr) =
    match x.Ast.desc with
    | Ast.Method_call ({ Ast.desc = Ast.Var recv; _ }, "finishedVertex", [ v ])
      when recv = pq_name ->
        Some v
    | _ -> None
  in
  let negated (x : Ast.expr) k =
    match x.Ast.desc with
    | Ast.Binop (Ast.Eq, inner, { Ast.desc = Ast.Bool_lit false; _ }) -> k inner
    | Ast.Binop (Ast.Eq, { Ast.desc = Ast.Bool_lit false; _ }, inner) -> k inner
    | Ast.Binop (Ast.Neq, inner, { Ast.desc = Ast.Bool_lit true; _ }) -> k inner
    | Ast.Unop (Ast.Not, inner) -> k inner
    | _ -> None
  in
  match e.Ast.desc with
  | Ast.Binop (Ast.And, lhs, rhs) -> (
      match (match_condition pq_name lhs, match_condition pq_name rhs) with
      | Some (true, None), Some (false, Some v) | Some (false, Some v), Some (true, None)
        ->
          Some (true, Some v)
      | _ -> None)
  | _ ->
      negated e (fun inner ->
          if is_finished_call inner then Some (true, None)
          else
            match finished_vertex inner with
            | Some v -> Some (false, Some v)
            | None -> None)

(* Count uses of an identifier in statements (for the "bucket is not used
   elsewhere" safety check). *)
let rec count_var_uses name stmts =
  List.fold_left (fun acc s -> acc + count_in_stmt name s) 0 stmts

and count_in_stmt name (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.S_var_decl (_, _, Some e) -> count_in_expr name e
  | Ast.S_var_decl (_, _, None) -> 0
  | Ast.S_assign (v, e) -> (if v = name then 1 else 0) + count_in_expr name e
  | Ast.S_index_assign (v, idx, e) ->
      (if v = name then 1 else 0) + count_in_expr name idx + count_in_expr name e
  | Ast.S_reduce_assign (_, v, idx, e) ->
      (if v = name then 1 else 0) + count_in_expr name idx + count_in_expr name e
  | Ast.S_expr e -> count_in_expr name e
  | Ast.S_while (cond, body) -> count_in_expr name cond + count_var_uses name body
  | Ast.S_if (cond, t, e) ->
      count_in_expr name cond + count_var_uses name t + count_var_uses name e
  | Ast.S_delete v -> if v = name then 1 else 0

and count_in_expr name (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Var v -> if v = name then 1 else 0
  | Ast.Int_lit _ | Ast.Bool_lit _ | Ast.String_lit _ -> 0
  | Ast.Index (b, i) -> count_in_expr name b + count_in_expr name i
  | Ast.Binop (_, l, r) -> count_in_expr name l + count_in_expr name r
  | Ast.Unop (_, x) -> count_in_expr name x
  | Ast.Call (_, args) | Ast.Method_call (_, _, args) -> (
      List.fold_left (fun acc a -> acc + count_in_expr name a) 0 args
      +
      match e.Ast.desc with
      | Ast.Method_call (recv, _, _) -> count_in_expr name recv
      | _ -> 0)
  | Ast.New_priority_queue { args; _ } ->
      List.fold_left (fun acc a -> acc + count_in_expr name a) 0 args
  | Ast.New_vertexset { size; _ } -> count_in_expr name size

let match_loop_body program pq_name stmts =
  match stmts with
  | { Ast.sdesc = Ast.S_var_decl (bucket, Ast.T_vertexset _, Some dequeue); _ }
    :: ({ Ast.sdesc = Ast.S_expr apply; label; _ } as _apply_stmt)
    :: rest -> (
      let dequeue_ok =
        match dequeue.Ast.desc with
        | Ast.Method_call ({ Ast.desc = Ast.Var recv; _ }, "dequeueReadySet", []) ->
            recv = pq_name
        | _ -> false
      in
      if not dequeue_ok then None
      else
        match apply.Ast.desc with
        | Ast.Method_call
            ( {
                Ast.desc =
                  Ast.Method_call
                    ( { Ast.desc = Ast.Var edgeset_name; _ },
                      "from",
                      [ { Ast.desc = Ast.Var from_bucket; _ } ] );
                _;
              },
              "applyUpdatePriority",
              [ { Ast.desc = Ast.Var udf_name; _ } ] )
          when from_bucket = bucket -> (
            (* The rest may only delete the bucket; any other use disables
               the transformation. *)
            let deletes_only =
              match rest with
              | [] -> true
              | [ { Ast.sdesc = Ast.S_delete d; _ } ] -> d = bucket
              | _ -> count_var_uses bucket rest = 0
            in
            if not deletes_only then None
            else
              match analyze_udf program ~pq_name udf_name with
              | Ok udf -> Some (Ok (bucket, edgeset_name, label, udf))
              | Error e -> Some (Error e))
        | _ -> None)
  | _ -> None

let match_while program ~pq_name ~cond ~body =
  match match_condition pq_name cond with
  | Some (true, stop_vertex) -> (
      match match_loop_body program pq_name body with
      | Some (Ok (bucket_name, edgeset_name, label, udf)) ->
          Ok (Some { bucket_name; edgeset_name; label; stop_vertex; udf })
      | Some (Error e) -> Error e
      | None -> Ok None)
  | _ -> Ok None

let find_ordered_loop program pq =
  match Ast.find_func program "main" with
  | None -> Ok None
  | Some main ->
      let result = ref (Ok None) in
      let rec walk stmts =
        List.iter
          (fun (s : Ast.stmt) ->
            match s.Ast.sdesc with
            | Ast.S_while (cond, body) -> (
                match match_while program ~pq_name:pq.pq_name ~cond ~body with
                | Ok (Some loop) -> result := Ok (Some loop)
                | Error e -> result := Error e
                | Ok None -> walk body)
            | Ast.S_if (_, t, e) ->
                walk t;
                walk e
            | _ -> ())
          stmts
      in
      walk main.Ast.body;
      !result

let analyze program =
  let* pq = find_pq_decl program in
  let* loop =
    match pq with
    | Some info -> find_ordered_loop program info
    | None -> Ok None
  in
  Ok { pq; loop }
