(** Resolution of the scheduling-language section (Table 2 of the paper plus
    the inherited GraphIt direction/parallelization commands) into
    {!Ordered.Schedule.t} values, one per label. *)

type error = {
  pos : Pos.t;
  message : string;
}

val pp_error : Format.formatter -> error -> unit

(** [resolve calls] folds the schedule chain into per-label schedules,
    starting each label from {!Ordered.Schedule.default}. Unknown commands,
    bad argument counts, and invalid values are errors; the final schedule
    of each label is validated with {!Ordered.Schedule.validate}. *)
val resolve :
  Ast.schedule_call list -> ((string * Ordered.Schedule.t) list, error) result

(** [schedule_for label resolved] is the schedule configured for [label],
    or the default when the label was never configured. *)
val schedule_for : string option -> (string * Ordered.Schedule.t) list -> Ordered.Schedule.t
