lib/dsl/externs.pp.ml: Array Bucketing Frontier Graphs Interp Ordered Parallel Pos Printf
