lib/dsl/analysis.pp.ml: Ast Bucketing Format List Pos Printf Result
