lib/dsl/interp.pp.ml: Analysis Array Ast Bucketing Frontier Graphs Hashtbl List Lower Option Ordered Parallel Pos Printf String Support
