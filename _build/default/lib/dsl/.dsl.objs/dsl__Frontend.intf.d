lib/dsl/frontend.pp.mli: Interp Lower Parallel
