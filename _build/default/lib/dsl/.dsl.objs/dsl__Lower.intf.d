lib/dsl/lower.pp.mli: Analysis Ast Ordered
