lib/dsl/lexer.pp.ml: Array Buffer List Pos Printf String Token
