lib/dsl/frontend.pp.ml: Codegen_cpp Fun Interp Lower Printf
