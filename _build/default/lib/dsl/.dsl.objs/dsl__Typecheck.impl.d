lib/dsl/typecheck.pp.ml: Ast Format Hashtbl List Pos Printf
