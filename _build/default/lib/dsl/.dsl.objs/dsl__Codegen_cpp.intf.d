lib/dsl/codegen_cpp.pp.mli: Lower
