lib/dsl/lexer.pp.mli: Pos Token
