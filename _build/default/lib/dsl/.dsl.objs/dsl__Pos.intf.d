lib/dsl/pos.pp.mli: Format
