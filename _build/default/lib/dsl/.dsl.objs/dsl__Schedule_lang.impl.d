lib/dsl/schedule_lang.pp.ml: Ast Format List Ordered Pos Printf Result
