lib/dsl/interp.pp.mli: Frontier Graphs Lower Ordered Parallel Pos
