lib/dsl/typecheck.pp.mli: Ast Format Pos
