lib/dsl/ast.pp.ml: Format List Pos Ppx_deriving_runtime
