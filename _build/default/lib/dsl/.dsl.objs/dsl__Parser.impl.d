lib/dsl/parser.pp.ml: Array Ast Lexer List Pos Printf Token
