lib/dsl/analysis.pp.mli: Ast Bucketing Format Pos Stdlib
