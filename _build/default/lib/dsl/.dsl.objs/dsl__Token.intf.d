lib/dsl/token.pp.mli: Pos
