lib/dsl/token.pp.ml: Pos Printf
