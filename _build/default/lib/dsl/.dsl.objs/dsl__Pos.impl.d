lib/dsl/pos.pp.ml: Format
