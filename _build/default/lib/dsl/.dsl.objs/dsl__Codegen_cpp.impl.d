lib/dsl/codegen_cpp.pp.ml: Analysis Ast Buffer Format List Lower Option Ordered Printf String
