lib/dsl/externs.pp.mli: Graphs Interp
