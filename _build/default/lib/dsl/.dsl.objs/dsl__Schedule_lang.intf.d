lib/dsl/schedule_lang.pp.mli: Ast Format Ordered Pos
