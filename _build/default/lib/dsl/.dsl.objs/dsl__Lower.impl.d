lib/dsl/lower.pp.ml: Analysis Ast Format List Ordered Parser Pos Printf Result Schedule_lang String Typecheck
