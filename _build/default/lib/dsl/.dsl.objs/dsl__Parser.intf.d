lib/dsl/parser.pp.mli: Ast Pos Token
