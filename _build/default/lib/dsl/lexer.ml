exception Error of Pos.t * string

type state = {
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.offset < String.length st.src then Some st.src.[st.offset] else None

let peek2 st =
  if st.offset + 1 < String.length st.src then Some st.src.[st.offset + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.offset <- st.offset + 1

let pos st = { Pos.line = st.line; col = st.col }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let skip_line st =
  let rec go () =
    match peek st with
    | Some '\n' | None -> ()
    | Some _ ->
        advance st;
        go ()
  in
  go ()

let read_while st pred =
  let start = st.offset in
  let rec go () =
    match peek st with
    | Some c when pred c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  String.sub st.src start (st.offset - start)

let read_string_lit st p =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            go ()
        | Some c ->
            Buffer.add_char buf c;
            advance st;
            go ()
        | None -> raise (Error (p, "unterminated string literal")))
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
    | None -> raise (Error (p, "unterminated string literal"))
  in
  go ();
  Buffer.contents buf

let read_label st p =
  advance st (* '#' *);
  let name = read_while st is_ident_char in
  if name = "" then raise (Error (p, "expected a label name after '#'"));
  match peek st with
  | Some '#' ->
      advance st;
      name
  | _ -> raise (Error (p, "expected closing '#' of label"))

let tokenize source =
  let st = { src = source; offset = 0; line = 1; col = 1 } in
  let tokens = ref [] in
  let emit p token = tokens := { Token.token; pos = p } :: !tokens in
  let two st p a =
    advance st;
    advance st;
    emit p a
  in
  let one st p a =
    advance st;
    emit p a
  in
  let rec loop () =
    match peek st with
    | None -> ()
    | Some c ->
        let p = pos st in
        (match c with
        | ' ' | '\t' | '\r' | '\n' -> advance st
        | '%' -> skip_line st
        | '/' when peek2 st = Some '/' -> skip_line st
        | '"' ->
            let s = read_string_lit st p in
            emit p (Token.String_lit s)
        | '#' ->
            let name = read_label st p in
            emit p (Token.Label name)
        | '(' -> one st p Token.Lparen
        | ')' -> one st p Token.Rparen
        | '{' -> one st p Token.Lbrace
        | '}' -> one st p Token.Rbrace
        | '[' -> one st p Token.Lbracket
        | ']' -> one st p Token.Rbracket
        | ':' -> one st p Token.Colon
        | ';' -> one st p Token.Semicolon
        | ',' -> one st p Token.Comma
        | '.' -> one st p Token.Dot
        | '+' when peek2 st = Some '=' -> two st p Token.Plus_assign
        | '+' -> one st p Token.Plus
        | '-' when peek2 st = Some '>' -> two st p Token.Arrow
        | '-' -> one st p Token.Minus
        | '*' -> one st p Token.Star
        | '/' -> one st p Token.Slash
        | '=' when peek2 st = Some '=' -> two st p Token.Eq
        | '=' -> one st p Token.Assign
        | '!' when peek2 st = Some '=' -> two st p Token.Neq
        | '!' -> raise (Error (p, "unexpected '!' (use 'not')"))
        | '<' when peek2 st = Some '=' -> two st p Token.Le
        | '<' -> one st p Token.Lt
        | '>' when peek2 st = Some '=' -> two st p Token.Ge
        | '>' -> one st p Token.Gt
        | c when is_digit c ->
            let digits = read_while st is_digit in
            emit p (Token.Int_lit (int_of_string digits))
        | c when is_ident_start c -> (
            let word = read_while st is_ident_char in
            (* Reduction-assignment operators spelled as words: min= max= *)
            match (word, peek st) with
            | "min", Some '=' when peek2 st <> Some '=' ->
                advance st;
                emit p Token.Min_assign
            | "max", Some '=' when peek2 st <> Some '=' ->
                advance st;
                emit p Token.Max_assign
            | _ -> (
                match Token.keyword_of_string word with
                | Some kw -> emit p kw
                | None -> emit p (Token.Ident word)))
        | c -> raise (Error (p, Printf.sprintf "unexpected character %C" c)));
        loop ()
  in
  loop ();
  emit (pos st) Token.Eof;
  Array.of_list (List.rev !tokens)
