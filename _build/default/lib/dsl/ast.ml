(** Abstract syntax of the GraphIt algorithm language (the subset needed by
    the paper's six ordered applications, Table 1 / Figure 3) plus the
    scheduling-language call chain. *)

type typ =
  | T_int
  | T_bool
  | T_string
  | T_element of string  (** [Vertex], [Edge] — declared element types. *)
  | T_vector of string * typ  (** [vector{Vertex}(int)] *)
  | T_vertexset of string  (** [vertexset{Vertex}] *)
  | T_edgeset of {
      element : string;
      src : string;
      dst : string;
      weighted : bool;
    }  (** [edgeset{Edge}(Vertex, Vertex, int)] (weighted) or without [int]. *)
  | T_priority_queue of string * typ  (** [priority_queue{Vertex}(int)] *)
[@@deriving show { with_path = false }, eq]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
[@@deriving show { with_path = false }, eq]

type unop =
  | Neg
  | Not
[@@deriving show { with_path = false }, eq]

type expr = {
  desc : expr_desc;
  pos : Pos.t; [@printer fun fmt _ -> Format.pp_print_string fmt "_"] [@equal fun _ _ -> true]
}

and expr_desc =
  | Int_lit of int
  | Bool_lit of bool
  | String_lit of string
  | Var of string
  | Index of expr * expr  (** [dist[src]], [argv[1]] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list  (** intrinsics: [load], [atoi], ... *)
  | Method_call of expr * string * expr list
      (** [pq.finished()], [edges.from(b)], ... *)
  | New_priority_queue of {
      element : string;
      value_type : typ;
      args : expr list;
    }
  | New_vertexset of {
      element : string;
      size : expr;  (** [new vertexset{Vertex}(0)] — initial vertex count. *)
    }
[@@deriving show { with_path = false }, eq]

(** Reduction-assignment operators (GraphIt's [min=], [max=], [+=]),
    compiled to atomic updates when the dependence analysis requires it. *)
type reduction =
  | Rd_min
  | Rd_max
  | Rd_plus
[@@deriving show { with_path = false }, eq]

type stmt = {
  sdesc : stmt_desc;
  spos : Pos.t; [@printer fun fmt _ -> Format.pp_print_string fmt "_"] [@equal fun _ _ -> true]
  label : string option;  (** [#s1#] scheduling label. *)
}

and stmt_desc =
  | S_var_decl of string * typ * expr option
  | S_assign of string * expr
  | S_index_assign of string * expr * expr  (** [dist[v] = e] *)
  | S_reduce_assign of reduction * string * expr * expr  (** [dist[v] min= e] *)
  | S_expr of expr
  | S_while of expr * stmt list
  | S_if of expr * stmt list * stmt list
  | S_delete of string
[@@deriving show { with_path = false }, eq]

type func_decl = {
  fname : string;
  params : (string * typ) list;
  body : stmt list;
  fpos : Pos.t; [@printer fun fmt _ -> Format.pp_print_string fmt "_"] [@equal fun _ _ -> true]
}
[@@deriving show { with_path = false }, eq]

type extern_decl = {
  xname : string;
  xparams : typ list;
  xreturn : typ;
  xpos : Pos.t; [@printer fun fmt _ -> Format.pp_print_string fmt "_"] [@equal fun _ _ -> true]
}
[@@deriving show { with_path = false }, eq]

type const_decl = {
  cname : string;
  ctyp : typ;
  cinit : expr option;
  cpos : Pos.t; [@printer fun fmt _ -> Format.pp_print_string fmt "_"] [@equal fun _ _ -> true]
}
[@@deriving show { with_path = false }, eq]

(** One call in the schedule chain:
    [program->configApplyPriorityUpdate("s1", "lazy")]. *)
type schedule_call = {
  sc_name : string;
  sc_args : string list;  (** Arguments, stringified (labels, strategies, numbers). *)
  sc_pos : Pos.t; [@printer fun fmt _ -> Format.pp_print_string fmt "_"] [@equal fun _ _ -> true]
}
[@@deriving show { with_path = false }, eq]

type program = {
  elements : string list;
  consts : const_decl list;
  externs : extern_decl list;
  funcs : func_decl list;
  schedule : schedule_call list;
}
[@@deriving show { with_path = false }, eq]

(** [find_func program name] looks up a function declaration. *)
let find_func program name =
  List.find_opt (fun f -> f.fname = name) program.funcs

(** [find_const program name] looks up a global constant declaration. *)
let find_const program name =
  List.find_opt (fun c -> c.cname = name) program.consts
