type t =
  | Ident of string
  | Int_lit of int
  | String_lit of string
  | Label of string
  | Kw_element
  | Kw_const
  | Kw_func
  | Kw_extern
  | Kw_var
  | Kw_end
  | Kw_while
  | Kw_if
  | Kw_else
  | Kw_delete
  | Kw_new
  | Kw_schedule
  | Kw_true
  | Kw_false
  | Kw_and
  | Kw_or
  | Kw_not
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Colon
  | Semicolon
  | Comma
  | Dot
  | Arrow
  | Assign
  | Min_assign
  | Max_assign
  | Plus_assign
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Plus
  | Minus
  | Star
  | Slash
  | Percent_op
  | Eof

type located = {
  token : t;
  pos : Pos.t;
}

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit i -> Printf.sprintf "integer %d" i
  | String_lit s -> Printf.sprintf "string %S" s
  | Label s -> Printf.sprintf "label #%s#" s
  | Kw_element -> "'element'"
  | Kw_const -> "'const'"
  | Kw_func -> "'func'"
  | Kw_extern -> "'extern'"
  | Kw_var -> "'var'"
  | Kw_end -> "'end'"
  | Kw_while -> "'while'"
  | Kw_if -> "'if'"
  | Kw_else -> "'else'"
  | Kw_delete -> "'delete'"
  | Kw_new -> "'new'"
  | Kw_schedule -> "'schedule'"
  | Kw_true -> "'true'"
  | Kw_false -> "'false'"
  | Kw_and -> "'and'"
  | Kw_or -> "'or'"
  | Kw_not -> "'not'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Colon -> "':'"
  | Semicolon -> "';'"
  | Comma -> "','"
  | Dot -> "'.'"
  | Arrow -> "'->'"
  | Assign -> "'='"
  | Min_assign -> "'min='"
  | Max_assign -> "'max='"
  | Plus_assign -> "'+='"
  | Eq -> "'=='"
  | Neq -> "'!='"
  | Lt -> "'<'"
  | Le -> "'<='"
  | Gt -> "'>'"
  | Ge -> "'>='"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Percent_op -> "'%'"
  | Eof -> "end of input"

let keyword_of_string = function
  | "element" -> Some Kw_element
  | "const" -> Some Kw_const
  | "func" -> Some Kw_func
  | "extern" -> Some Kw_extern
  | "var" -> Some Kw_var
  | "end" -> Some Kw_end
  | "while" -> Some Kw_while
  | "if" -> Some Kw_if
  | "else" -> Some Kw_else
  | "delete" -> Some Kw_delete
  | "new" -> Some Kw_new
  | "schedule" -> Some Kw_schedule
  | "true" -> Some Kw_true
  | "false" -> Some Kw_false
  | "and" -> Some Kw_and
  | "or" -> Some Kw_or
  | "not" -> Some Kw_not
  | _ -> None
