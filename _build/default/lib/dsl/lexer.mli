(** Handwritten lexer for the GraphIt DSL.

    Comments run from [%] to end of line (GraphIt convention); [//] is also
    accepted. Raises {!Error} with a located message on unrecognized
    input. *)

exception Error of Pos.t * string

(** [tokenize source] is the token stream, terminated by {!Token.Eof}. *)
val tokenize : string -> Token.located array
