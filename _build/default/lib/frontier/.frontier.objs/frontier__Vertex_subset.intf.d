lib/frontier/vertex_subset.mli: Graphs Support
