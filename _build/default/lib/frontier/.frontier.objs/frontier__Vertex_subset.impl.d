lib/frontier/vertex_subset.ml: Array Graphs Support
