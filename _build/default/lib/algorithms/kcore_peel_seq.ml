let coreness graph =
  let n = Graphs.Csr.num_vertices graph in
  let degree = Graphs.Csr.out_degrees graph in
  let max_degree = Array.fold_left max 0 degree in
  (* Counting-sort vertices by degree (Matula-Beck). *)
  let bucket_start = Array.make (max_degree + 2) 0 in
  Array.iter (fun d -> bucket_start.(d + 1) <- bucket_start.(d + 1) + 1) degree;
  for d = 1 to max_degree + 1 do
    bucket_start.(d) <- bucket_start.(d) + bucket_start.(d - 1)
  done;
  let order = Array.make n 0 in
  let position = Array.make n 0 in
  let cursor = Array.sub bucket_start 0 (max_degree + 1) in
  for v = 0 to n - 1 do
    let slot = cursor.(degree.(v)) in
    order.(slot) <- v;
    position.(v) <- slot;
    cursor.(degree.(v)) <- slot + 1
  done;
  (* Peel in order (Batagelj-Zaversnik); moving a vertex one bucket down is
     a swap with the first element of its bucket. *)
  let core = Array.copy degree in
  for i = 0 to n - 1 do
    let v = order.(i) in
    core.(v) <- degree.(v);
    Graphs.Csr.iter_out graph v (fun u _w ->
        if degree.(u) > degree.(v) then begin
          let du = degree.(u) in
          let pu = position.(u) in
          let first = max bucket_start.(du) (i + 1) in
          let w = order.(first) in
          if u <> w then begin
            order.(pu) <- w;
            order.(first) <- u;
            position.(u) <- first;
            position.(w) <- pu
          end;
          bucket_start.(du) <- first + 1;
          degree.(u) <- du - 1
        end)
  done;
  (* Peel degrees are nondecreasing along the order; the running maximum is
     a safeguard that also makes the intent explicit. *)
  let running = ref 0 in
  Array.iter
    (fun v ->
      running := max !running core.(v);
      core.(v) <- !running)
    order;
  core
