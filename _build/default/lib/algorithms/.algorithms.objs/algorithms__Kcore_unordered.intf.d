lib/algorithms/kcore_unordered.mli: Graphs Parallel
