lib/algorithms/bellman_ford.mli: Graphs Parallel
