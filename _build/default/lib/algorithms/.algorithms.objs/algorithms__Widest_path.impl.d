lib/algorithms/widest_path.ml: Array Bucketing Graphs Ordered Parallel Support
