lib/algorithms/kcore_peel_seq.mli: Graphs
