lib/algorithms/sssp_delta.ml: Bucketing Graphs Ordered Parallel
