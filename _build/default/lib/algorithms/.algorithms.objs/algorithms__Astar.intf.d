lib/algorithms/astar.mli: Graphs Ordered Parallel
