lib/algorithms/wbfs.ml: Ordered Sssp_delta
