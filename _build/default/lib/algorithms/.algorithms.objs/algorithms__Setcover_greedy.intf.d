lib/algorithms/setcover_greedy.mli: Graphs
