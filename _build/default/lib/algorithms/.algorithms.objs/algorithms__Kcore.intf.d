lib/algorithms/kcore.mli: Graphs Ordered Parallel
