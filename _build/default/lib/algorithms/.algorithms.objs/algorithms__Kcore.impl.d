lib/algorithms/kcore.ml: Array Bucketing Graphs Ordered Parallel
