lib/algorithms/astar.ml: Bucketing Graphs Ordered Parallel
