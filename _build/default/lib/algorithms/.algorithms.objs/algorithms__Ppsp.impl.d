lib/algorithms/ppsp.ml: Bucketing Graphs Ordered Parallel
