lib/algorithms/setcover.ml: Array Bucketing Frontier Fun Graphs Ordered Parallel Support
