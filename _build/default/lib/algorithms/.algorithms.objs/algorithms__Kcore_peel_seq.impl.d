lib/algorithms/kcore_peel_seq.ml: Array Graphs
