lib/algorithms/kcore_unordered.ml: Array Atomic Fun Graphs Parallel
