lib/algorithms/score.ml: Array Bucketing Graphs Ordered Parallel Support
