lib/algorithms/setcover_greedy.ml: Array Fun Graphs Support
