lib/algorithms/setcover.mli: Graphs Ordered Parallel
