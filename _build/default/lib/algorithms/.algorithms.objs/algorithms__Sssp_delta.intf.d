lib/algorithms/sssp_delta.mli: Graphs Ordered Parallel
