lib/algorithms/dijkstra.ml: Array Bucketing Graphs Support
