lib/algorithms/widest_path.mli: Graphs Ordered Parallel
