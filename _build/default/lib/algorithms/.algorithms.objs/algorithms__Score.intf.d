lib/algorithms/score.mli: Graphs Ordered Parallel
