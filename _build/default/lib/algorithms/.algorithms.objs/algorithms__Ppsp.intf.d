lib/algorithms/ppsp.mli: Graphs Ordered Parallel
