lib/algorithms/wbfs.mli: Graphs Ordered Parallel Sssp_delta
