lib/algorithms/bellman_ford.ml: Array Atomic Bucketing Graphs Parallel Support
