lib/algorithms/dijkstra.mli: Graphs
