(** Sequential Dijkstra, the correctness oracle for every shortest-path
    variant: Δ-stepping trades redundant work for parallelism but must
    produce identical distances. *)

(** [distances graph ~source] is the array of shortest-path distances from
    [source]; unreachable vertices hold
    {!Bucketing.Bucket_order.null_priority}. *)
val distances : Graphs.Csr.t -> source:int -> int array

(** [distance_to graph ~source ~target] is the shortest distance from
    [source] to [target] with early termination, or
    {!Bucketing.Bucket_order.null_priority} when unreachable. *)
val distance_to : Graphs.Csr.t -> source:int -> target:int -> int
