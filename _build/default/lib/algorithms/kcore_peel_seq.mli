(** Sequential Matula-Beck peeling, the k-core correctness oracle: O(n + m)
    exact coreness via a degree-bucket queue. *)

(** [coreness graph] computes the coreness of every vertex of a symmetric
    graph. *)
val coreness : Graphs.Csr.t -> int array
