module Int_vec = Support.Int_vec

type result = {
  in_cover : bool array;
  cover_size : int;
}

let iter_set graph s f =
  f s;
  Graphs.Csr.iter_out graph s (fun v _w -> f v)

let run graph =
  let n = Graphs.Csr.num_vertices graph in
  let covered = Array.make n false in
  let in_cover = Array.make n false in
  let uncovered_degree s =
    let d = ref 0 in
    iter_set graph s (fun e -> if not covered.(e) then incr d);
    !d
  in
  let max_degree =
    let best = ref 1 in
    for s = 0 to n - 1 do
      best := max !best (Graphs.Csr.out_degree graph s + 1)
    done;
    !best
  in
  (* Bucket queue keyed by claimed uncovered degree, revalidated lazily on
     extraction: the classical near-linear greedy. *)
  let buckets = Array.init (max_degree + 1) (fun _ -> Int_vec.create ()) in
  for s = 0 to n - 1 do
    Int_vec.push buckets.(Graphs.Csr.out_degree graph s + 1) s
  done;
  let cover_size = ref 0 in
  let d = ref max_degree in
  while !d > 0 do
    match Int_vec.pop buckets.(!d) with
    | None -> decr d
    | Some s ->
        if not in_cover.(s) then begin
          let actual = uncovered_degree s in
          if actual >= !d then begin
            in_cover.(s) <- true;
            incr cover_size;
            iter_set graph s (fun e -> covered.(e) <- true)
          end
          else if actual > 0 then Int_vec.push buckets.(actual) s
        end
  done;
  { in_cover; cover_size = !cover_size }

let run_weighted graph ~costs =
  let n = Graphs.Csr.num_vertices graph in
  if Array.length costs <> n then invalid_arg "Setcover_greedy.run_weighted: costs";
  let covered = Array.make n false in
  let in_cover = Array.make n false in
  let uncovered = ref n in
  let cover_size = ref 0 and cover_cost = ref 0 in
  let uncovered_degree s =
    let d = ref 0 in
    iter_set graph s (fun e -> if not covered.(e) then incr d);
    !d
  in
  while !uncovered > 0 do
    (* Best ratio = max over sets of uncovered(s)/cost(s); compare as
       cross-products to stay in integers. *)
    let best = ref (-1) and best_d = ref 0 in
    for s = 0 to n - 1 do
      if not in_cover.(s) then begin
        let d = uncovered_degree s in
        if d > 0 && (!best = -1 || d * costs.(!best) > !best_d * costs.(s)) then begin
          best := s;
          best_d := d
        end
      end
    done;
    let s = !best in
    in_cover.(s) <- true;
    incr cover_size;
    cover_cost := !cover_cost + costs.(s);
    iter_set graph s (fun e ->
        if not covered.(e) then begin
          covered.(e) <- true;
          decr uncovered
        end)
  done;
  ({ in_cover; cover_size = !cover_size }, !cover_cost)

let is_valid_cover graph r =
  let n = Graphs.Csr.num_vertices graph in
  let covered = Array.make n false in
  for s = 0 to n - 1 do
    if r.in_cover.(s) then iter_set graph s (fun e -> covered.(e) <- true)
  done;
  Array.for_all Fun.id covered
