(** Sequential greedy set cover, the classical ln-n-approximate oracle the
    parallel bucketed algorithm is compared against: repeatedly choose the
    set covering the most uncovered elements. Uses a lazy-revalidation
    bucket queue, so it runs in near-linear time. Same instance encoding as
    {!Setcover}: the set of vertex [s] covers [s] and its neighbors. *)

type result = {
  in_cover : bool array;
  cover_size : int;
}

val run : Graphs.Csr.t -> result

(** [run_weighted graph ~costs] is the weighted greedy: repeatedly choose
    the set with the best uncovered-elements-per-cost ratio. Quadratic scan
    (it is an oracle for small test instances). Returns the cover and its
    total cost. *)
val run_weighted : Graphs.Csr.t -> costs:int array -> result * int

(** [is_valid_cover graph r] checks that every vertex is covered. *)
val is_valid_cover : Graphs.Csr.t -> result -> bool
