(** Weighted core (s-core) decomposition: the generalization of k-core where
    a vertex's degree is the {e sum of incident edge weights} (its
    strength). Peeling a vertex at strength s subtracts each incident
    weight from the neighbor's strength, clamped at s.

    This exercises [updatePrioritySum] with a {e variable} diff — unlike
    unit-weight k-core, the histogram (constant-sum) schedule is illegal
    here, and the compiler-side check in {!Ordered.Priority_queue} enforces
    exactly that. Eager and plain lazy schedules both apply, with priority
    coarsening disabled as for all strict peeling algorithms. *)

type result = {
  coreness : int array;  (** The s-core value (weighted coreness) per vertex. *)
  stats : Ordered.Stats.t;
}

(** [run ~pool ~graph ~schedule ()] on a symmetric weighted graph. Raises
    [Invalid_argument] for the [Lazy_constant_sum] strategy (the update is
    not constant). *)
val run :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  schedule:Ordered.Schedule.t ->
  unit ->
  result

(** [sequential graph] is the min-heap peeling oracle. *)
val sequential : Graphs.Csr.t -> int array
