module Min_heap = Support.Min_heap

let infinity_dist = Bucketing.Bucket_order.null_priority

let search graph ~source ~stop_at =
  let n = Graphs.Csr.num_vertices graph in
  let dist = Array.make n infinity_dist in
  let heap = Min_heap.create () in
  dist.(source) <- 0;
  Min_heap.push heap ~key:0 ~value:source;
  let finished = ref false in
  while not !finished do
    match Min_heap.pop_min heap with
    | None -> finished := true
    | Some (d, u) ->
        (* Lazy deletion: skip superseded heap entries. *)
        if d = dist.(u) then begin
          if stop_at = Some u then finished := true
          else
            Graphs.Csr.iter_out graph u (fun v w ->
                let nd = d + w in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  Min_heap.push heap ~key:nd ~value:v
                end)
        end
  done;
  dist

let distances graph ~source = search graph ~source ~stop_at:None

let distance_to graph ~source ~target =
  let dist = search graph ~source ~stop_at:(Some target) in
  dist.(target)
