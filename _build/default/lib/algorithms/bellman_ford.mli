(** Frontier-based unordered Bellman-Ford, the baseline the paper's Figure 1
    compares ordered SSSP against (and what unordered GraphIt/Ligra run).
    Active vertices are relaxed in arbitrary order each iteration, so large-
    diameter graphs pay enormous amounts of redundant work. *)

type result = {
  dist : int array;
  iterations : int;  (** Frontier sweeps until fixpoint. *)
  edges_relaxed : int;
}

(** [run ~pool ~graph ~source ()] computes exact shortest distances. *)
val run : pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> source:int -> unit -> result
