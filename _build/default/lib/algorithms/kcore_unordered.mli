(** Unordered k-core decomposition by h-index iteration (Lü et al.), the
    unordered baseline of the paper's Figure 1.

    Every vertex repeatedly replaces its core estimate with the H-index of
    its neighbors' estimates until a fixpoint; estimates start at the
    degrees and converge monotonically down to the coreness. No ordering,
    no bucketing — but many redundant sweeps over the whole graph. *)

type result = {
  coreness : int array;
  iterations : int;  (** Full-graph sweeps until fixpoint. *)
}

(** [run ~pool ~graph ()] computes the coreness of every vertex of a
    symmetric graph. *)
val run : pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> unit -> result
