(** The GAP Benchmark Suite comparison points (Beamer et al.): hand-written
    eager Δ-stepping with thread-local bins and {e no} bucket fusion — the
    paper's own eager runtime is modeled on this code, so the GAPBS baseline
    is the ordered engine pinned to [Eager_no_fusion].

    GAPBS provides SSSP only; PPSP and A* are the straightforward
    early-exit extensions the paper wrote for it. k-core and SetCover are
    not provided by GAPBS (grey cells in Figure 4). *)

(** [sssp ~pool ~graph ~delta ~source ()] — eager Δ-stepping, no fusion. *)
val sssp :
  pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> delta:int -> source:int -> unit ->
  Algorithms.Sssp_delta.result

(** [wbfs ~pool ~graph ~source ()] is {!sssp} with Δ = 1. *)
val wbfs :
  pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> source:int -> unit ->
  Algorithms.Sssp_delta.result

(** [ppsp ~pool ~graph ~delta ~source ~target ()] with early exit. *)
val ppsp :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  delta:int ->
  source:int ->
  target:int ->
  unit ->
  Algorithms.Ppsp.result

(** [astar ~pool ~graph ~coords ~delta ~source ~target ()]. *)
val astar :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  coords:Graphs.Coords.t ->
  delta:int ->
  source:int ->
  target:int ->
  unit ->
  Algorithms.Astar.result
