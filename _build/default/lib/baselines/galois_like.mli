(** A Galois-style (Nguyen et al., SOSP'13) approximate-priority scheduler:
    the ordered-list / obim model the paper compares against.

    Each worker owns a lock-protected array of priority bins and processes
    its {e local} minimum; there is no global synchronization after each
    priority — workers drift across priorities and repair the resulting
    priority inversions by re-relaxation. Idle workers steal a victim's
    lowest bin. This trades work-efficiency for the absence of barriers,
    which is exactly the trade-off the paper describes for Galois
    (Section 7, "Approximate Priority Ordering").

    Like Galois, this scheduler can only express algorithms that tolerate
    priority inversions: SSSP, wBFS, PPSP, and A*. k-core and SetCover
    require strict priorities and are deliberately not provided (grey cells
    in Figure 4). *)

type result = {
  dist : int array;
  work_items : int;
      (** Items processed, including priority-inversion re-relaxations —
          the work-efficiency loss is visible as [work_items] exceeding the
          number of reachable vertices. *)
}

(** [sssp ~pool ~graph ~delta ~source ()]. *)
val sssp :
  pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> delta:int -> source:int -> unit ->
  result

(** [wbfs ~pool ~graph ~source ()] is {!sssp} with Δ = 1. *)
val wbfs :
  pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> source:int -> unit -> result

(** [ppsp ~pool ~graph ~delta ~source ~target ()] returns the exact
    source→target distance, pruning items that cannot improve it. *)
val ppsp :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  delta:int ->
  source:int ->
  target:int ->
  unit ->
  int

(** [astar ~pool ~graph ~coords ~delta ~source ~target ()] uses the scaled
    Euclidean heuristic as the (approximate) scheduling priority. *)
val astar :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  coords:Graphs.Coords.t ->
  delta:int ->
  source:int ->
  target:int ->
  unit ->
  int
