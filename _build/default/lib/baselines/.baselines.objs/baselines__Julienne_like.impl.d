lib/baselines/julienne_like.ml: Algorithms Array Bucketing Graphs Ordered Parallel
