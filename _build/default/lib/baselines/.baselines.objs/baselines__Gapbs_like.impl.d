lib/baselines/gapbs_like.ml: Algorithms Ordered
