lib/baselines/ligra_like.ml: Algorithms Array Bucketing Graphs Parallel Support
