lib/baselines/galois_like.ml: Array Atomic Bucketing Domain Graphs Mutex Parallel Support
