lib/baselines/galois_like.mli: Graphs Parallel
