lib/baselines/ligra_like.mli: Algorithms Graphs Parallel
