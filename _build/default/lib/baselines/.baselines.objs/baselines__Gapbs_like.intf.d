lib/baselines/gapbs_like.mli: Algorithms Graphs Parallel
