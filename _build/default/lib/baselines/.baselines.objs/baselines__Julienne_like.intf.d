lib/baselines/julienne_like.mli: Algorithms Graphs Parallel
