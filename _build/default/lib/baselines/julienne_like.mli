(** A faithful re-implementation of how Julienne (Dhulipala et al., SPAA'17)
    executes ordered algorithms, used as the comparison framework of the
    paper's Table 4 / Figure 4.

    Differences from the GraphIt engine, all of which the paper calls out as
    the sources of Julienne's slowdown (Section 6.2):

    - {e lazy bucket updates only}: every round buffers its priority changes
      and applies them in bulk — no eager thread-local bins, no fusion;
    - {e closure-based priorities}: the bucket structure calls a
      user-supplied function per priority computation instead of reading a
      priority vector with a coarsening factor;
    - {e per-round out-degree sums}: Julienne always computes the frontier's
      out-degree sum to drive its push/pull direction selection, paying that
      reduction even when the answer never changes the direction. *)

type sssp_result = {
  dist : int array;
  rounds : int;
}

(** [sssp ~pool ~graph ~delta ~source ()] is Julienne's Δ-stepping. *)
val sssp :
  pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> delta:int -> source:int -> unit ->
  sssp_result

(** [wbfs ~pool ~graph ~source ()] is {!sssp} with Δ = 1. *)
val wbfs :
  pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> source:int -> unit -> sssp_result

(** [ppsp ~pool ~graph ~delta ~source ~target ()] is Δ-stepping with
    Julienne's early exit once the target is finalized. *)
val ppsp :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  delta:int ->
  source:int ->
  target:int ->
  unit ->
  int

type kcore_result = {
  coreness : int array;
  rounds : int;
}

(** [kcore ~pool ~graph ()] is Julienne's work-efficient peeling with the
    histogram-based constant-sum reduction and closure-computed buckets. *)
val kcore : pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> unit -> kcore_result

(** [setcover ~pool ~graph ()] is bucketed approximate set cover with the
    lazy backend (Julienne is the origin of this algorithm's bucketing). *)
val setcover :
  pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> unit -> Algorithms.Setcover.result
