(** A Ligra-style (Shun & Blelloch, PPoPP'13) unordered baseline: frontier
    Bellman-Ford with Ligra's signature push/pull direction optimization —
    when the frontier's out-degree sum passes a density threshold the sweep
    switches to a dense pull over in-edges. Unordered processing performs
    dramatically more work than Δ-stepping on large-diameter graphs
    (Figure 1 / Table 4 of the paper). *)

type result = {
  dist : int array;
  iterations : int;
  dense_iterations : int;  (** Sweeps that ran in pull direction. *)
}

(** [sssp ~pool ~graph ~transpose ~source ()] — exact distances. *)
val sssp :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  transpose:Graphs.Csr.t ->
  source:int ->
  unit ->
  result

(** [kcore ~pool ~graph ()] — the unordered h-index-iteration k-core used as
    the unordered comparison for peeling. *)
val kcore :
  pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> unit ->
  Algorithms.Kcore_unordered.result
