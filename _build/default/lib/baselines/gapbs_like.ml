let schedule delta =
  {
    Ordered.Schedule.default with
    strategy = Ordered.Schedule.Eager_no_fusion;
    delta;
  }

let sssp ~pool ~graph ~delta ~source () =
  Algorithms.Sssp_delta.run ~pool ~graph ~schedule:(schedule delta) ~source ()

let wbfs ~pool ~graph ~source () = sssp ~pool ~graph ~delta:1 ~source ()

let ppsp ~pool ~graph ~delta ~source ~target () =
  Algorithms.Ppsp.run ~pool ~graph ~schedule:(schedule delta) ~source ~target ()

let astar ~pool ~graph ~coords ~delta ~source ~target () =
  Algorithms.Astar.run ~pool ~graph ~coords ~schedule:(schedule delta) ~source
    ~target ()
