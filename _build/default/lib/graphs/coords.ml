type t = {
  xs : float array;
  ys : float array;
}

let create xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Coords.create: length mismatch";
  { xs; ys }

let num_vertices c = Array.length c.xs
let x c v = c.xs.(v)
let y c v = c.ys.(v)

let euclidean c u v =
  let dx = c.xs.(u) -. c.xs.(v) and dy = c.ys.(u) -. c.ys.(v) in
  sqrt ((dx *. dx) +. (dy *. dy))

let scaled_distance ~scale c u v = int_of_float (scale *. euclidean c u v)
