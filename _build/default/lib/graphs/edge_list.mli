(** Weighted directed edge lists, the exchange format between generators,
    file loaders, and the CSR builder. *)

type edge = {
  src : int;
  dst : int;
  weight : int;
}

type t = {
  num_vertices : int;
  edges : edge array;
}

(** [create ~num_vertices edges] validates that every endpoint lies in
    [0, num_vertices) and every weight is positive. *)
val create : num_vertices:int -> edge array -> t

(** [num_edges t] is the number of directed edges. *)
val num_edges : t -> int

(** [map_weights f t] applies [f] to every edge's weight. *)
val map_weights : (edge -> int) -> t -> t

(** [reverse t] flips every edge. *)
val reverse : t -> t

(** [symmetrized t] is the undirected closure: both directions of every edge,
    parallel edges deduplicated keeping the minimum weight, self-loops
    dropped. This matches the paper's symmetrization for k-core and
    SetCover. *)
val symmetrized : t -> t

(** [dedup t] removes parallel edges (keeping minimum weight) and
    self-loops. *)
val dedup : t -> t

(** [concat a b] merges two edge lists over the same vertex universe. *)
val concat : t -> t -> t
