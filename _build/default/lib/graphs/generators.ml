module Rng = Support.Rng

let edge src dst weight = { Edge_list.src; dst; weight }

(* Standard R-MAT: recursively pick a quadrant per bit of the vertex id.
   Partition probabilities (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) with a
   little per-level noise, as in the Graph500 generator. *)
let rmat ~rng ~scale ~edge_factor () =
  if scale < 1 then invalid_arg "Generators.rmat: scale must be >= 1";
  let n = 1 lsl scale in
  let m = edge_factor * n in
  let a = 0.57 and b = 0.19 and c = 0.19 in
  let sample_edge () =
    let src = ref 0 and dst = ref 0 in
    for _level = 1 to scale do
      let noise = 0.95 +. (0.1 *. Rng.float rng) in
      let a' = a *. noise and b' = b *. noise and c' = c *. noise in
      let r = Rng.float rng in
      src := !src lsl 1;
      dst := !dst lsl 1;
      if r < a' then ()
      else if r < a' +. b' then dst := !dst lor 1
      else if r < a' +. b' +. c' then src := !src lor 1
      else begin
        src := !src lor 1;
        dst := !dst lor 1
      end
    done;
    (!src, !dst)
  in
  (* Permute ids so that high-degree vertices are not clustered at 0. *)
  let perm = Array.init n (fun i -> i) in
  Rng.shuffle rng perm;
  let edges =
    Array.init m (fun _ ->
        let src, dst = sample_edge () in
        edge perm.(src) perm.(dst) 1)
  in
  Edge_list.dedup (Edge_list.create ~num_vertices:n edges)

let road_grid ~rng ~rows ~cols () =
  if rows < 2 || cols < 2 then invalid_arg "Generators.road_grid: too small";
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      (* Jitter breaks the lattice symmetry so shortest paths are unique in
         practice and A* has non-trivial geometry to exploit. *)
      xs.(id r c) <- float_of_int c +. (0.4 *. (Rng.float rng -. 0.5));
      ys.(id r c) <- float_of_int r +. (0.4 *. (Rng.float rng -. 0.5))
    done
  done;
  let coords = Coords.create xs ys in
  let scale = 100.0 in
  let road_weight u v =
    (* ceil(scale * length) >= floor(scale * length): the Euclidean heuristic
       stays admissible (stretch >= 1). The bimodal stretch models road
       classes — most segments are slow local roads, a minority are fast
       highway-like links. The resulting weight variance is what makes
       unordered relaxation pay heavily for ignoring priorities, as on real
       road networks. *)
    let stretch =
      if Rng.float rng < 0.15 then 1.0 +. (0.2 *. Rng.float rng)
      else 2.5 +. (3.0 *. Rng.float rng)
    in
    max 1 (int_of_float (ceil (scale *. stretch *. Coords.euclidean coords u v)))
  in
  let acc = ref [] in
  let add u v =
    let w = road_weight u v in
    acc := edge u v w :: edge v u w :: !acc
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then add (id r c) (id r (c + 1));
      if r + 1 < rows then add (id r c) (id (r + 1) c)
    done
  done;
  (* Sparse diagonal shortcuts: keeps the diameter large while breaking the
     pure lattice structure, like highway segments. *)
  let shortcuts = max 1 (n / 200) in
  for _ = 1 to shortcuts do
    let r = Rng.int rng (rows - 1) and c = Rng.int rng (cols - 1) in
    add (id r c) (id (r + 1) (c + 1))
  done;
  let el = Edge_list.dedup (Edge_list.create ~num_vertices:n (Array.of_list !acc)) in
  (el, coords)

let erdos_renyi ~rng ~num_vertices ~num_edges () =
  if num_vertices < 1 then invalid_arg "Generators.erdos_renyi: empty graph";
  let edges =
    Array.init num_edges (fun _ ->
        edge (Rng.int rng num_vertices) (Rng.int rng num_vertices) 1)
  in
  Edge_list.dedup (Edge_list.create ~num_vertices edges)

let assign_weights ~rng ~lo ~hi el =
  if lo < 1 || hi <= lo then invalid_arg "Generators.assign_weights: bad range";
  Edge_list.map_weights (fun _ -> Rng.int_range rng lo (hi - 1)) el

let wbfs_weights ~rng el =
  let n = el.Edge_list.num_vertices in
  let log2n =
    let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
    go 0 n
  in
  assign_weights ~rng ~lo:1 ~hi:(max 2 log2n) el

let path n =
  Edge_list.create ~num_vertices:n
    (Array.init (max 0 (n - 1)) (fun i -> edge i (i + 1) 1))

let cycle n =
  Edge_list.create ~num_vertices:n (Array.init n (fun i -> edge i ((i + 1) mod n) 1))

let star n =
  Edge_list.create ~num_vertices:n (Array.init (max 0 (n - 1)) (fun i -> edge 0 (i + 1) 1))

let complete n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then acc := edge u v 1 :: !acc
    done
  done;
  Edge_list.create ~num_vertices:n (Array.of_list !acc)

let grid rows cols =
  let id r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        acc := edge (id r c) (id r (c + 1)) 1 :: edge (id r (c + 1)) (id r c) 1 :: !acc;
      if r + 1 < rows then
        acc := edge (id r c) (id (r + 1) c) 1 :: edge (id (r + 1) c) (id r c) 1 :: !acc
    done
  done;
  Edge_list.create ~num_vertices:(rows * cols) (Array.of_list !acc)
