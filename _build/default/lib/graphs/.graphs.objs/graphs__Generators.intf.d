lib/graphs/generators.mli: Coords Edge_list Support
