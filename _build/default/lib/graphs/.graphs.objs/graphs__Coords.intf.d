lib/graphs/coords.mli:
