lib/graphs/csr.mli: Edge_list
