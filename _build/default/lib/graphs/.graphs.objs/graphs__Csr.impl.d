lib/graphs/csr.ml: Array Edge_list
