lib/graphs/edge_list.mli:
