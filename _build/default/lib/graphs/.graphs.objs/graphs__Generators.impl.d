lib/graphs/generators.ml: Array Coords Edge_list Support
