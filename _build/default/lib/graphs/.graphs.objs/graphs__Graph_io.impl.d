lib/graphs/graph_io.ml: Array Coords Edge_list Filename Fun List Printf String
