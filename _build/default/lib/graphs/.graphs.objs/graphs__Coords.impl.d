lib/graphs/coords.ml: Array
