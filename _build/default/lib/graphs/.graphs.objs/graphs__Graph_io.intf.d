lib/graphs/graph_io.mli: Coords Edge_list
