lib/graphs/edge_list.ml: Array List
