(** Synthetic graph workloads.

    The paper evaluates on proprietary-scale social networks (Twitter,
    Friendster, ...) and DIMACS road networks. Those datasets are not
    available here, so each graph class is replaced by a generator that
    reproduces the structural properties the evaluation depends on
    (documented in DESIGN.md §3):

    - {!rmat}: power-law degrees and small diameter, standing in for the
      social networks — large frontiers, few buckets, heavy contention.
    - {!road_grid}: bounded degree and large diameter with planar
      coordinates, standing in for the road networks — thousands of tiny
      rounds, the regime where bucket fusion matters, plus an admissible A*
      heuristic.
    - {!erdos_renyi} and the small fixed shapes support tests. *)

(** [rmat ~rng ~scale ~edge_factor ()] is a Kronecker/R-MAT graph with
    [2^scale] vertices and [edge_factor * 2^scale] directed edges using the
    standard (0.57, 0.19, 0.19) partition probabilities, vertex ids
    permuted. Weights are 1; assign real weights with {!assign_weights}. *)
val rmat :
  rng:Support.Rng.t -> scale:int -> edge_factor:int -> unit -> Edge_list.t

(** [road_grid ~rng ~rows ~cols ()] is a perturbed 2D lattice road network:
    4-neighbor connectivity (both directions), a small fraction of diagonal
    shortcut edges, weights equal to [ceil (100 * euclidean_length)] so that
    the Euclidean heuristic of {!Coords.scaled_distance} with scale 100 is
    admissible. Also returns the vertex coordinates. *)
val road_grid :
  rng:Support.Rng.t -> rows:int -> cols:int -> unit -> Edge_list.t * Coords.t

(** [erdos_renyi ~rng ~num_vertices ~num_edges ()] samples directed edges
    uniformly (parallel edges deduplicated, so the result can hold slightly
    fewer than [num_edges] edges). Weights are 1. *)
val erdos_renyi :
  rng:Support.Rng.t -> num_vertices:int -> num_edges:int -> unit -> Edge_list.t

(** [assign_weights ~rng ~lo ~hi el] draws every weight uniformly from
    [lo, hi). The paper's social-network configuration is [1, 1000); its
    wBFS configuration is [1, log n). *)
val assign_weights : rng:Support.Rng.t -> lo:int -> hi:int -> Edge_list.t -> Edge_list.t

(** [wbfs_weights ~rng el] is [assign_weights] with the paper's wBFS range
    [1, max 2 (log2 n)). *)
val wbfs_weights : rng:Support.Rng.t -> Edge_list.t -> Edge_list.t

(** Small deterministic shapes for tests. All weights are 1 unless stated. *)

(** [path n] is the chain [0 -> 1 -> ... -> n-1]. *)
val path : int -> Edge_list.t

(** [cycle n] is the directed cycle on [n] vertices. *)
val cycle : int -> Edge_list.t

(** [star n] has edges from vertex 0 to each of [1..n-1]. *)
val star : int -> Edge_list.t

(** [complete n] has all [n * (n-1)] directed edges. *)
val complete : int -> Edge_list.t

(** [grid rows cols] is the unweighted 4-neighbor lattice with edges in both
    directions. Vertex [(r, c)] has id [r * cols + c]. *)
val grid : int -> int -> Edge_list.t
