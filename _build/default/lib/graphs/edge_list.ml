type edge = {
  src : int;
  dst : int;
  weight : int;
}

type t = {
  num_vertices : int;
  edges : edge array;
}

let create ~num_vertices edges =
  Array.iter
    (fun { src; dst; weight } ->
      if src < 0 || src >= num_vertices || dst < 0 || dst >= num_vertices then
        invalid_arg "Edge_list.create: endpoint out of range";
      if weight <= 0 then invalid_arg "Edge_list.create: weight must be positive")
    edges;
  { num_vertices; edges }

let num_edges t = Array.length t.edges

let map_weights f t =
  { t with edges = Array.map (fun e -> { e with weight = f e }) t.edges }

let reverse t =
  { t with edges = Array.map (fun e -> { e with src = e.dst; dst = e.src }) t.edges }

let compare_endpoints a b =
  match compare a.src b.src with
  | 0 -> (
      match compare a.dst b.dst with
      | 0 -> compare a.weight b.weight
      | c -> c)
  | c -> c

(* Sort by endpoints then sweep, keeping the cheapest copy of each parallel
   edge and dropping self-loops. *)
let dedup_edges edges =
  let sorted = Array.copy edges in
  Array.sort compare_endpoints sorted;
  let out = ref [] in
  let count = ref 0 in
  Array.iter
    (fun e ->
      if e.src <> e.dst then
        match !out with
        | prev :: _ when prev.src = e.src && prev.dst = e.dst -> ()
        | _ ->
            out := e :: !out;
            incr count)
    sorted;
  let result = Array.make !count { src = 0; dst = 0; weight = 1 } in
  List.iteri (fun i e -> result.(!count - 1 - i) <- e) !out;
  result

let dedup t = { t with edges = dedup_edges t.edges }

let symmetrized t =
  let flipped = Array.map (fun e -> { e with src = e.dst; dst = e.src }) t.edges in
  { t with edges = dedup_edges (Array.append t.edges flipped) }

let concat a b =
  if a.num_vertices <> b.num_vertices then
    invalid_arg "Edge_list.concat: vertex universes differ";
  { a with edges = Array.append a.edges b.edges }
