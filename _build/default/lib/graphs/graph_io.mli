(** Reading and writing graphs on disk.

    Two formats are supported:
    - a simple weighted edge-list text format: a header line
      ["# num_vertices num_edges"] followed by one ["src dst weight"] line
      per edge (0-indexed);
    - the DIMACS shortest-path format used by the paper's RoadUSA input:
      ["p sp n m"] then ["a u v w"] lines (1-indexed).

    Coordinates use one ["x y"] line per vertex after a ["# n"] header. *)

(** [write_edge_list path el] writes the simple text format. *)
val write_edge_list : string -> Edge_list.t -> unit

(** [read_edge_list path] parses the simple text format. Raises [Failure]
    with a located message on malformed input. *)
val read_edge_list : string -> Edge_list.t

(** [read_dimacs path] parses the DIMACS [.gr] format, converting to
    0-indexed vertices. *)
val read_dimacs : string -> Edge_list.t

(** [write_dimacs path el] writes the DIMACS [.gr] format. *)
val write_dimacs : string -> Edge_list.t -> unit

(** [write_coords path coords] / [read_coords path] store per-vertex planar
    coordinates. *)
val write_coords : string -> Coords.t -> unit

val read_coords : string -> Coords.t

(** [load path] dispatches on extension: [.gr] loads DIMACS, anything else
    the simple edge-list format. This is the [load] intrinsic of the DSL. *)
val load : string -> Edge_list.t
