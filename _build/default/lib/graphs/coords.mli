(** Per-vertex planar coordinates, used by the A* heuristic the way the paper
    uses OpenStreetMap longitude/latitude data. *)

type t

(** [create xs ys] pairs the coordinate arrays; lengths must match. *)
val create : float array -> float array -> t

(** [num_vertices c] is the number of vertices carrying coordinates. *)
val num_vertices : t -> int

(** [x c v] and [y c v] read vertex [v]'s position. *)
val x : t -> int -> float

val y : t -> int -> float

(** [euclidean c u v] is the straight-line distance between [u] and [v]. *)
val euclidean : t -> int -> int -> float

(** [scaled_distance ~scale c u v] is [floor (scale * euclidean c u v)] as an
    integer, the admissible heuristic used by A* when edge weights are
    [ceil (scale * length)]. *)
val scaled_distance : scale:float -> t -> int -> int -> int
