let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let parse_failure path line_no msg =
  failwith (Printf.sprintf "%s:%d: %s" path line_no msg)

let fold_lines path f init =
  with_in path (fun ic ->
      let rec go acc line_no =
        match input_line ic with
        | line -> go (f acc line_no line) (line_no + 1)
        | exception End_of_file -> acc
      in
      go init 1)

let write_edge_list path (el : Edge_list.t) =
  with_out path (fun oc ->
      Printf.fprintf oc "# %d %d\n" el.num_vertices (Array.length el.edges);
      Array.iter
        (fun { Edge_list.src; dst; weight } -> Printf.fprintf oc "%d %d %d\n" src dst weight)
        el.edges)

let read_edge_list path =
  let header = ref None in
  let edges = ref [] in
  let count = ref 0 in
  fold_lines path
    (fun () line_no line ->
      let line = String.trim line in
      if line = "" then ()
      else
        match (!header, String.split_on_char ' ' line |> List.filter (( <> ) "")) with
        | None, [ "#"; n; m ] -> (
            match (int_of_string_opt n, int_of_string_opt m) with
            | Some n, Some m -> header := Some (n, m)
            | _ -> parse_failure path line_no "malformed header")
        | None, _ -> parse_failure path line_no "expected '# num_vertices num_edges' header"
        | Some _, [ s; d; w ] -> (
            match (int_of_string_opt s, int_of_string_opt d, int_of_string_opt w) with
            | Some s, Some d, Some w ->
                edges := { Edge_list.src = s; dst = d; weight = w } :: !edges;
                incr count
            | _ -> parse_failure path line_no "malformed edge line")
        | Some _, _ -> parse_failure path line_no "expected 'src dst weight'")
    ();
  match !header with
  | None -> failwith (Printf.sprintf "%s: empty file" path)
  | Some (n, m) ->
      if m <> !count then
        failwith (Printf.sprintf "%s: header declares %d edges, found %d" path m !count);
      let arr = Array.make !count { Edge_list.src = 0; dst = 0; weight = 1 } in
      List.iteri (fun i e -> arr.(!count - 1 - i) <- e) !edges;
      Edge_list.create ~num_vertices:n arr

let read_dimacs path =
  let n = ref 0 in
  let edges = ref [] in
  let count = ref 0 in
  fold_lines path
    (fun () line_no line ->
      let fields = String.split_on_char ' ' line |> List.filter (( <> ) "") in
      match fields with
      | [] | "c" :: _ -> ()
      | [ "p"; "sp"; nv; _ne ] -> (
          match int_of_string_opt nv with
          | Some v -> n := v
          | None -> parse_failure path line_no "malformed problem line")
      | [ "a"; u; v; w ] -> (
          match (int_of_string_opt u, int_of_string_opt v, int_of_string_opt w) with
          | Some u, Some v, Some w ->
              edges := { Edge_list.src = u - 1; dst = v - 1; weight = w } :: !edges;
              incr count
          | _ -> parse_failure path line_no "malformed arc line")
      | _ -> parse_failure path line_no "unrecognized DIMACS line")
    ();
  if !n = 0 then failwith (Printf.sprintf "%s: missing 'p sp' problem line" path);
  let arr = Array.make !count { Edge_list.src = 0; dst = 0; weight = 1 } in
  List.iteri (fun i e -> arr.(!count - 1 - i) <- e) !edges;
  Edge_list.create ~num_vertices:!n arr

let write_dimacs path (el : Edge_list.t) =
  with_out path (fun oc ->
      Printf.fprintf oc "p sp %d %d\n" el.num_vertices (Array.length el.edges);
      Array.iter
        (fun { Edge_list.src; dst; weight } ->
          Printf.fprintf oc "a %d %d %d\n" (src + 1) (dst + 1) weight)
        el.edges)

let write_coords path coords =
  with_out path (fun oc ->
      let n = Coords.num_vertices coords in
      Printf.fprintf oc "# %d\n" n;
      for v = 0 to n - 1 do
        Printf.fprintf oc "%.6f %.6f\n" (Coords.x coords v) (Coords.y coords v)
      done)

let read_coords path =
  let n = ref (-1) in
  let xs = ref [] and ys = ref [] in
  fold_lines path
    (fun () line_no line ->
      let line = String.trim line in
      if line = "" then ()
      else
        match (!n, String.split_on_char ' ' line |> List.filter (( <> ) "")) with
        | -1, [ "#"; count ] -> (
            match int_of_string_opt count with
            | Some c -> n := c
            | None -> parse_failure path line_no "malformed coords header")
        | -1, _ -> parse_failure path line_no "expected '# n' header"
        | _, [ x; y ] -> (
            match (float_of_string_opt x, float_of_string_opt y) with
            | Some x, Some y ->
                xs := x :: !xs;
                ys := y :: !ys
            | _ -> parse_failure path line_no "malformed coordinate line")
        | _, _ -> parse_failure path line_no "expected 'x y'")
    ();
  let xs = Array.of_list (List.rev !xs) and ys = Array.of_list (List.rev !ys) in
  if !n >= 0 && Array.length xs <> !n then
    failwith (Printf.sprintf "%s: header declares %d vertices, found %d" path !n
                (Array.length xs));
  Coords.create xs ys

let load path =
  if Filename.check_suffix path ".gr" then read_dimacs path else read_edge_list path
