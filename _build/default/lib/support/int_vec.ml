type t = {
  mutable data : int array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { data = Array.make capacity 0; len = 0 }

let length v = v.len
let is_empty v = v.len = 0

let grow v needed =
  let cap = max needed (max 8 (2 * Array.length v.data)) in
  let data = Array.make cap 0 in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v (v.len + 1);
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Int_vec: index out of bounds"

let get v i =
  check v i;
  Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.len

let of_array a =
  let len = Array.length a in
  { data = (if len = 0 then Array.make 1 0 else Array.copy a); len }

let append dst src =
  if dst.len + src.len > Array.length dst.data then grow dst (dst.len + src.len);
  Array.blit src.data 0 dst.data dst.len src.len;
  dst.len <- dst.len + src.len

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    Some (Array.unsafe_get v.data v.len)
  end

let exists p v =
  let rec loop i = i < v.len && (p (Array.unsafe_get v.data i) || loop (i + 1)) in
  loop 0

let unsafe_get v i = Array.unsafe_get v.data i

let blit_to_array v dst pos =
  if pos < 0 || pos + v.len > Array.length dst then
    invalid_arg "Int_vec.blit_to_array: destination too small";
  Array.blit v.data 0 dst pos v.len

let swap_buffers a b =
  let data = a.data and len = a.len in
  a.data <- b.data;
  a.len <- b.len;
  b.data <- data;
  b.len <- len
