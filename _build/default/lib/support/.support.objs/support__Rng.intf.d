lib/support/rng.mli:
