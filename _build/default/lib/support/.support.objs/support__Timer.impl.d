lib/support/timer.ml: Array Unix
