lib/support/min_heap.ml: Array
