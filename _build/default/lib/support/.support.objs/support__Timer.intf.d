lib/support/timer.mli:
