lib/support/min_heap.mli:
