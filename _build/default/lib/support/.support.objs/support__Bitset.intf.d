lib/support/bitset.mli:
