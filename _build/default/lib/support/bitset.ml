type t = {
  n : int;
  words : Bytes.t;
}

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Bytes.make ((n + 7) / 8) '\000' }

let capacity s = s.n

let check s i =
  if i < 0 || i >= s.n then invalid_arg "Bitset: index out of bounds"

let mem s i =
  check s i;
  Char.code (Bytes.unsafe_get s.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add s i =
  check s i;
  let byte = i lsr 3 in
  let cur = Char.code (Bytes.unsafe_get s.words byte) in
  Bytes.unsafe_set s.words byte (Char.unsafe_chr (cur lor (1 lsl (i land 7))))

let remove s i =
  check s i;
  let byte = i lsr 3 in
  let cur = Char.code (Bytes.unsafe_get s.words byte) in
  Bytes.unsafe_set s.words byte (Char.unsafe_chr (cur land lnot (1 lsl (i land 7))))

let clear s = Bytes.fill s.words 0 (Bytes.length s.words) '\000'

let count s =
  let total = ref 0 in
  for i = 0 to s.n - 1 do
    if Char.code (Bytes.unsafe_get s.words (i lsr 3)) land (1 lsl (i land 7)) <> 0
    then incr total
  done;
  !total

let iter f s =
  for i = 0 to s.n - 1 do
    if Char.code (Bytes.unsafe_get s.words (i lsr 3)) land (1 lsl (i land 7)) <> 0
    then f i
  done

let to_list s =
  let acc = ref [] in
  for i = s.n - 1 downto 0 do
    if Char.code (Bytes.unsafe_get s.words (i lsr 3)) land (1 lsl (i land 7)) <> 0
    then acc := i :: !acc
  done;
  !acc
