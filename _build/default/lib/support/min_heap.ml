type t = {
  mutable keys : int array;
  mutable values : int array;
  mutable len : int;
}

let create () = { keys = Array.make 16 0; values = Array.make 16 0; len = 0 }

let length h = h.len
let is_empty h = h.len = 0

let swap h i j =
  let k = h.keys.(i) and v = h.values.(i) in
  h.keys.(i) <- h.keys.(j);
  h.values.(i) <- h.values.(j);
  h.keys.(j) <- k;
  h.values.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(parent) > h.keys.(i) then begin
      swap h parent i;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.len && h.keys.(left) < h.keys.(!smallest) then smallest := left;
  if right < h.len && h.keys.(right) < h.keys.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~key ~value =
  if h.len = Array.length h.keys then begin
    let cap = 2 * h.len in
    let keys = Array.make cap 0 and values = Array.make cap 0 in
    Array.blit h.keys 0 keys 0 h.len;
    Array.blit h.values 0 values 0 h.len;
    h.keys <- keys;
    h.values <- values
  end;
  h.keys.(h.len) <- key;
  h.values.(h.len) <- value;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop_min h =
  if h.len = 0 then None
  else begin
    let key = h.keys.(0) and value = h.values.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.keys.(0) <- h.keys.(h.len);
      h.values.(0) <- h.values.(h.len);
      sift_down h 0
    end;
    Some (key, value)
  end

let peek_min h = if h.len = 0 then None else Some (h.keys.(0), h.values.(0))
