(** Growable vectors of unboxed integers.

    The bucketing data structures append and drain millions of vertex ids;
    a specialized [int array]-backed vector avoids the boxing and indirection
    of ['a Dynarray.t]-style containers. *)

type t

(** [create ?capacity ()] is an empty vector. [capacity] is a hint only. *)
val create : ?capacity:int -> unit -> t

(** [length v] is the number of elements currently stored. *)
val length : t -> int

(** [is_empty v] is [length v = 0]. *)
val is_empty : t -> bool

(** [push v x] appends [x], growing the backing store as needed. *)
val push : t -> int -> unit

(** [get v i] is the [i]th element. Raises [Invalid_argument] when [i] is out
    of bounds. *)
val get : t -> int -> int

(** [set v i x] replaces the [i]th element. Raises [Invalid_argument] when
    [i] is out of bounds. *)
val set : t -> int -> int -> unit

(** [clear v] resets the length to zero without shrinking the backing store. *)
val clear : t -> unit

(** [iter f v] applies [f] to each element in insertion order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f acc v] folds [f] over the elements in insertion order. *)
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** [to_array v] is a fresh array of the elements in insertion order. *)
val to_array : t -> int array

(** [of_array a] is a vector with the elements of [a]. *)
val of_array : int array -> t

(** [append dst src] pushes every element of [src] onto [dst]. *)
val append : t -> t -> unit

(** [pop v] removes and returns the last element, or [None] when empty. *)
val pop : t -> int option

(** [exists p v] is true when some element satisfies [p]. *)
val exists : (int -> bool) -> t -> bool

(** [unsafe_get v i] is [get v i] without the bounds check; the index must be
    within [0, length v). *)
val unsafe_get : t -> int -> int

(** [blit_to_array v dst pos] copies all elements into [dst] starting at
    [pos]. Raises [Invalid_argument] when [dst] is too small. *)
val blit_to_array : t -> int array -> int -> unit

(** [swap_buffers a b] exchanges the contents of the two vectors in O(1). *)
val swap_buffers : t -> t -> unit
