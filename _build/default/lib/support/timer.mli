(** Wall-clock timing helpers for the benchmark harness. *)

(** [time f] is [(f (), seconds_elapsed)]. *)
val time : (unit -> 'a) -> 'a * float

(** [time_median ~repeats f] runs [f] [repeats] times and returns the result
    of the last run with the median elapsed seconds. [repeats] must be
    positive. *)
val time_median : repeats:int -> (unit -> 'a) -> 'a * float
