(** Fixed-capacity bit sets over vertex ids [0, n).

    Used for dense frontiers and deduplication flags. Not thread-safe for
    writes to the same word; parallel phases partition vertex ranges or use
    {!Parallel.Atomic_array} flags instead. *)

type t

(** [create n] is an empty set over the universe [0, n). *)
val create : int -> t

(** [capacity s] is the universe size [n] passed to {!create}. *)
val capacity : t -> int

(** [mem s i] tests membership. Raises [Invalid_argument] when [i] is outside
    the universe. *)
val mem : t -> int -> bool

(** [add s i] inserts [i]. *)
val add : t -> int -> unit

(** [remove s i] deletes [i]. *)
val remove : t -> int -> unit

(** [clear s] empties the set. *)
val clear : t -> unit

(** [count s] is the number of members (linear in the universe size). *)
val count : t -> int

(** [iter f s] applies [f] to every member in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [to_list s] is the members in increasing order. *)
val to_list : t -> int list
