(** Deterministic pseudo-random number generation (splitmix64).

    Every synthetic workload in the repository is seeded through this module
    so experiments and property tests are reproducible bit-for-bit across
    runs and worker counts. *)

type t

(** [create seed] is a generator whose stream is a pure function of [seed]. *)
val create : int -> t

(** [next t] is the next 62-bit non-negative integer in the stream. *)
val next : t -> int

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] when
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_range t lo hi] is uniform in [lo, hi] inclusive. *)
val int_range : t -> int -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [split t] is a fresh generator seeded from [t]'s stream, for handing
    independent streams to parallel workers. *)
val split : t -> t

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
