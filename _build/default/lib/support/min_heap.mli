(** A binary min-heap of (key, value) integer pairs.

    Used by the sequential reference algorithms (Dijkstra, greedy SetCover)
    that serve as test oracles. Duplicate insertions are allowed; callers
    implement decrease-key by lazy deletion. *)

type t

(** [create ()] is an empty heap. *)
val create : unit -> t

(** [length h] is the number of stored pairs. *)
val length : t -> int

(** [is_empty h] is [length h = 0]. *)
val is_empty : t -> bool

(** [push h ~key ~value] inserts a pair. *)
val push : t -> key:int -> value:int -> unit

(** [pop_min h] removes and returns a pair with the smallest key, or [None]
    when empty. Ties are broken arbitrarily. *)
val pop_min : t -> (int * int) option

(** [peek_min h] returns the smallest pair without removing it. *)
val peek_min : t -> (int * int) option
