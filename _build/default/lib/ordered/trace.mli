(** Per-round execution traces.

    When a trace is passed to {!Engine.run}, the engine records one entry
    per global round: the bucket being processed, the frontier size, the
    traversal direction chosen, and how many local bins were drained by
    bucket fusion during the round. Traces make the scheduling behaviour
    inspectable — e.g. watching Δ-stepping's bucket keys climb while fusion
    keeps same-key rounds off the books — and back the [--trace] flag of
    [ordered_run]. *)

type direction =
  | Push
  | Pull

type round = {
  index : int;  (** 1-based round number. *)
  bucket_key : int;  (** Normalized coarsened key of the bucket. *)
  priority : int;  (** Representative (user-facing) priority. *)
  frontier_size : int;
  direction : direction;
  fused_drains : int;  (** Fusion drains performed during this round. *)
}

type t

(** [create ()] is an empty trace. Recording is single-threaded (the engine
    records between parallel phases). *)
val create : unit -> t

(** [record t round] appends an entry. *)
val record : t -> round -> unit

(** [rounds t] is the recorded entries, oldest first. *)
val rounds : t -> round list

(** [length t] is the number of recorded rounds. *)
val length : t -> int

(** [pp ppf t] prints the trace as an aligned table; [max_rounds] elides the
    middle of long traces (default 40 rows shown). *)
val pp : ?max_rounds:int -> Format.formatter -> t -> unit
