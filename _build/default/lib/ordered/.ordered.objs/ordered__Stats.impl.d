lib/ordered/stats.ml: Format
