lib/ordered/stats.mli: Format
