lib/ordered/trace.ml: Format List
