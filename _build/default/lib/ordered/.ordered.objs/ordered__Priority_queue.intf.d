lib/ordered/priority_queue.mli: Bucketing Frontier Parallel Schedule
