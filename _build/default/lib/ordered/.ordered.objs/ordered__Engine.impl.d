lib/ordered/engine.ml: Array Atomic Bucketing Frontier Graphs Parallel Priority_queue Schedule Stats Support Trace
