lib/ordered/schedule.ml: Format Printf
