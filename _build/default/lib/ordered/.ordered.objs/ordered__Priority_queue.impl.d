lib/ordered/priority_queue.ml: Array Bucketing Frontier Parallel Schedule
