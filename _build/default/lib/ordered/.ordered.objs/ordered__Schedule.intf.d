lib/ordered/schedule.mli: Format
