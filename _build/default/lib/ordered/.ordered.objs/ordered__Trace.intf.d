lib/ordered/trace.mli: Format
