lib/ordered/engine.mli: Graphs Parallel Priority_queue Schedule Stats Trace
