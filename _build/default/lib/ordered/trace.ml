type direction =
  | Push
  | Pull

type round = {
  index : int;
  bucket_key : int;
  priority : int;
  frontier_size : int;
  direction : direction;
  fused_drains : int;
}

type t = { mutable entries : round list (* newest first *) }

let create () = { entries = [] }
let record t round = t.entries <- round :: t.entries
let rounds t = List.rev t.entries
let length t = List.length t.entries

let pp_round ppf r =
  Format.fprintf ppf "%6d %12d %12d %10d %6s %8d" r.index r.bucket_key r.priority
    r.frontier_size
    (match r.direction with Push -> "push" | Pull -> "pull")
    r.fused_drains

let pp ?(max_rounds = 40) ppf t =
  let all = rounds t in
  let total = List.length all in
  Format.fprintf ppf "%6s %12s %12s %10s %6s %8s@." "round" "bucket" "priority"
    "frontier" "dir" "fused";
  let print_list rs = List.iter (fun r -> Format.fprintf ppf "%a@." pp_round r) rs in
  if total <= max_rounds then print_list all
  else begin
    let head = List.filteri (fun i _ -> i < max_rounds / 2) all in
    let tail = List.filteri (fun i _ -> i >= total - (max_rounds / 2)) all in
    print_list head;
    Format.fprintf ppf "  ... %d rounds elided ...@." (total - (2 * (max_rounds / 2)));
    print_list tail
  end
