(* Golden tests: the exact C++ text generated for each schedule is pinned
   under test/golden/. A diff here means the Section 5 transformations
   changed; inspect it, and if intentional regenerate with:

     for s in lazy eager_no_fusion eager_with_fusion; do
       sed "s/\"eager_with_fusion\"/\"$s\"/" examples/apps/sssp.gt > /tmp/p.gt
       dune exec bin/graphitc.exe -- emit /tmp/p.gt > test/golden/sssp_$s.cpp
     done *)

let apps_dir = "../examples/apps"
let golden_dir = "golden"

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let generate ~source_transform app =
  let source = source_transform (read_file (Filename.concat apps_dir app)) in
  match Dsl.Lower.lower_string source with
  | Ok lowered -> Dsl.Codegen_cpp.generate lowered
  | Error msg -> Alcotest.fail msg

let first_diff_line a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | x :: xs, y :: ys -> if x <> y then Some (i, x, y) else go (i + 1) (xs, ys)
    | [], [] -> None
    | x :: _, [] -> Some (i, x, "<end of golden>")
    | [], y :: _ -> Some (i, "<end of generated>", y)
  in
  go 1 (la, lb)

let check_golden ~golden ~generated =
  let expected = read_file (Filename.concat golden_dir golden) in
  if generated <> expected then
    match first_diff_line generated expected with
    | Some (line, got, want) ->
        Alcotest.failf "%s: first difference at line %d:\n  generated: %s\n  golden:    %s"
          golden line got want
    | None -> Alcotest.fail (golden ^ ": contents differ")

let with_strategy strategy source =
  Str.global_replace (Str.regexp_string "\"eager_with_fusion\"") strategy source

let test_sssp_lazy () =
  check_golden ~golden:"sssp_lazy.cpp"
    ~generated:(generate ~source_transform:(with_strategy "\"lazy\"") "sssp.gt")

let test_sssp_eager_no_fusion () =
  check_golden ~golden:"sssp_eager_no_fusion.cpp"
    ~generated:
      (generate ~source_transform:(with_strategy "\"eager_no_fusion\"") "sssp.gt")

let test_sssp_eager_with_fusion () =
  check_golden ~golden:"sssp_eager_with_fusion.cpp"
    ~generated:(generate ~source_transform:Fun.id "sssp.gt")

let test_sssp_lazy_densepull () =
  let transform source =
    source
    |> with_strategy "\"lazy\""
    |> Str.global_replace
         (Str.regexp_string
            "->configApplyParallelization(\"s1\", \"dynamic-vertex-parallel\")")
         "->configApplyDirection(\"s1\", \"DensePull\")"
  in
  check_golden ~golden:"sssp_lazy_densepull.cpp"
    ~generated:(generate ~source_transform:transform "sssp.gt")

let test_kcore_constant_sum () =
  check_golden ~golden:"kcore_lazy_constant_sum.cpp"
    ~generated:(generate ~source_transform:Fun.id "kcore.gt")

let () =
  Alcotest.run "codegen_golden"
    [
      ( "figure 9 shapes",
        [
          Alcotest.test_case "lazy SparsePush (Fig. 9a)" `Quick test_sssp_lazy;
          Alcotest.test_case "lazy DensePull (Fig. 9b)" `Quick test_sssp_lazy_densepull;
          Alcotest.test_case "eager (Fig. 9c)" `Quick test_sssp_eager_no_fusion;
          Alcotest.test_case "eager with fusion (Fig. 7)" `Quick
            test_sssp_eager_with_fusion;
          Alcotest.test_case "constant sum (Fig. 10)" `Quick test_kcore_constant_sum;
        ] );
    ]
