test/test_dsl.ml: Alcotest Algorithms Array Bucketing Dsl Filename Format Fun Graphs List Ordered Parallel Printf QCheck QCheck_alcotest Str String Support Sys
