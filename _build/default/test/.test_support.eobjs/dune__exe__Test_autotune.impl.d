test/test_autotune.ml: Alcotest Algorithms Autotune Graphs List Ordered Parallel Support
