test/test_ordered.ml: Alcotest Algorithms Array Bucketing Format Graphs List Ordered Parallel Printf QCheck QCheck_alcotest String Support
