test/test_baselines.ml: Alcotest Algorithms Array Baselines Bucketing Graphs List Ordered Parallel Printf QCheck QCheck_alcotest Support
