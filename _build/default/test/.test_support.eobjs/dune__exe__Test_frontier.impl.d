test/test_frontier.ml: Alcotest Array Frontier Graphs List QCheck QCheck_alcotest Support
