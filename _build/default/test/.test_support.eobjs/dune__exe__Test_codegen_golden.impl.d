test/test_codegen_golden.ml: Alcotest Dsl Filename Fun Str String
