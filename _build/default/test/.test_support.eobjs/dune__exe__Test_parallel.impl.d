test/test_parallel.ml: Alcotest Array Atomic List Parallel Printf QCheck QCheck_alcotest Support
