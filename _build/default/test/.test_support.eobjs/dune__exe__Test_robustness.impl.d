test/test_robustness.ml: Alcotest Algorithms Array Baselines Bucketing Dsl Filename Frontier Fun Graphs List Ordered Parallel Printf QCheck QCheck_alcotest Str String Support Sys
