test/test_graphs.ml: Alcotest Array Filename Fun Graphs List Printf QCheck QCheck_alcotest String Support Sys
