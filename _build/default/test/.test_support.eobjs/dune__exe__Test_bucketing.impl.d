test/test_bucketing.ml: Alcotest Array Bucketing List Parallel Printf QCheck QCheck_alcotest String
