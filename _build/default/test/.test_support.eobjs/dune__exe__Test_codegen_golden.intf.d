test/test_codegen_golden.mli:
