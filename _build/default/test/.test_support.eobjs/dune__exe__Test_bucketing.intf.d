test/test_bucketing.mli:
