test/test_support.ml: Alcotest Array Hashtbl List QCheck QCheck_alcotest Support
