module Int_vec = Support.Int_vec
module Bitset = Support.Bitset
module Rng = Support.Rng
module Min_heap = Support.Min_heap

let test_int_vec_push_get () =
  let v = Int_vec.create () in
  Alcotest.(check bool) "fresh is empty" true (Int_vec.is_empty v);
  for i = 0 to 999 do
    Int_vec.push v (i * 3)
  done;
  Alcotest.(check int) "length" 1000 (Int_vec.length v);
  Alcotest.(check int) "get 0" 0 (Int_vec.get v 0);
  Alcotest.(check int) "get 999" 2997 (Int_vec.get v 999);
  Int_vec.set v 5 42;
  Alcotest.(check int) "set/get" 42 (Int_vec.get v 5)

let test_int_vec_bounds () =
  let v = Int_vec.of_array [| 1; 2; 3 |] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Int_vec: index out of bounds") (fun () ->
      ignore (Int_vec.get v 3));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Int_vec: index out of bounds") (fun () ->
      ignore (Int_vec.get v (-1)))

let test_int_vec_clear_append () =
  let a = Int_vec.of_array [| 1; 2 |] and b = Int_vec.of_array [| 3; 4; 5 |] in
  Int_vec.append a b;
  Alcotest.(check (array int)) "append" [| 1; 2; 3; 4; 5 |] (Int_vec.to_array a);
  Int_vec.clear a;
  Alcotest.(check bool) "cleared" true (Int_vec.is_empty a);
  Int_vec.push a 9;
  Alcotest.(check (array int)) "reusable after clear" [| 9 |] (Int_vec.to_array a)

let test_int_vec_pop_swap () =
  let a = Int_vec.of_array [| 1; 2; 3 |] in
  Alcotest.(check (option int)) "pop" (Some 3) (Int_vec.pop a);
  Alcotest.(check int) "pop shrinks" 2 (Int_vec.length a);
  let b = Int_vec.of_array [| 7 |] in
  Int_vec.swap_buffers a b;
  Alcotest.(check (array int)) "swap a" [| 7 |] (Int_vec.to_array a);
  Alcotest.(check (array int)) "swap b" [| 1; 2 |] (Int_vec.to_array b)

let test_int_vec_fold_iter () =
  let v = Int_vec.of_array [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold sum" 10 (Int_vec.fold ( + ) 0 v);
  let seen = ref [] in
  Int_vec.iter (fun x -> seen := x :: !seen) v;
  Alcotest.(check (list int)) "iter order" [ 4; 3; 2; 1 ] !seen;
  Alcotest.(check bool) "exists" true (Int_vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Int_vec.exists (fun x -> x = 9) v)

let test_bitset_basics () =
  let s = Bitset.create 100 in
  Alcotest.(check int) "capacity" 100 (Bitset.capacity s);
  Alcotest.(check bool) "initially absent" false (Bitset.mem s 7);
  Bitset.add s 7;
  Bitset.add s 0;
  Bitset.add s 99;
  Alcotest.(check bool) "added" true (Bitset.mem s 7);
  Alcotest.(check int) "count" 3 (Bitset.count s);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 7; 99 ] (Bitset.to_list s);
  Bitset.remove s 7;
  Alcotest.(check bool) "removed" false (Bitset.mem s 7);
  Bitset.clear s;
  Alcotest.(check int) "cleared" 0 (Bitset.count s)

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.add s 8)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.next a <> Rng.next c then differs := true
  done;
  Alcotest.(check bool) "different seed differs" true !differs

let test_rng_ranges () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let y = Rng.int_range rng 5 9 in
    Alcotest.(check bool) "int_range in range" true (y >= 5 && y <= 9);
    let f = Rng.float rng in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 (fun i -> i)) sorted

let test_min_heap_sorts () =
  let h = Min_heap.create () in
  let rng = Rng.create 3 in
  let keys = Array.init 500 (fun _ -> Rng.int rng 1000) in
  Array.iteri (fun i k -> Min_heap.push h ~key:k ~value:i) keys;
  Alcotest.(check int) "length" 500 (Min_heap.length h);
  let prev = ref min_int in
  let popped = ref 0 in
  let rec drain () =
    match Min_heap.pop_min h with
    | None -> ()
    | Some (k, v) ->
        Alcotest.(check bool) "nondecreasing keys" true (k >= !prev);
        Alcotest.(check int) "value matches key" keys.(v) k;
        prev := k;
        incr popped;
        drain ()
  in
  drain ();
  Alcotest.(check int) "drained all" 500 !popped

let test_min_heap_peek () =
  let h = Min_heap.create () in
  Alcotest.(check bool) "empty peek" true (Min_heap.peek_min h = None);
  Min_heap.push h ~key:5 ~value:50;
  Min_heap.push h ~key:2 ~value:20;
  Alcotest.(check bool) "peek min" true (Min_heap.peek_min h = Some (2, 20));
  Alcotest.(check int) "peek does not pop" 2 (Min_heap.length h)

let qcheck_int_vec_roundtrip =
  QCheck.Test.make ~name:"int_vec to_array/of_array roundtrip" ~count:200
    QCheck.(array small_int)
    (fun a -> Int_vec.to_array (Int_vec.of_array a) = a)

let qcheck_bitset_matches_model =
  QCheck.Test.make ~name:"bitset agrees with a list-set model" ~count:200
    QCheck.(list (int_bound 63))
    (fun ops ->
      let s = Bitset.create 64 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun i ->
          if Hashtbl.mem model i then begin
            Bitset.remove s i;
            Hashtbl.remove model i
          end
          else begin
            Bitset.add s i;
            Hashtbl.replace model i ()
          end)
        ops;
      Bitset.count s = Hashtbl.length model
      && List.for_all (fun i -> Bitset.mem s i) (List.of_seq (Hashtbl.to_seq_keys model)))

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"min_heap drains in sorted order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Min_heap.create () in
      List.iter (fun k -> Min_heap.push h ~key:k ~value:k) keys;
      let rec drain acc =
        match Min_heap.pop_min h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

let () =
  Alcotest.run "support"
    [
      ( "int_vec",
        [
          Alcotest.test_case "push/get" `Quick test_int_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_int_vec_bounds;
          Alcotest.test_case "clear/append" `Quick test_int_vec_clear_append;
          Alcotest.test_case "pop/swap" `Quick test_int_vec_pop_swap;
          Alcotest.test_case "fold/iter/exists" `Quick test_int_vec_fold_iter;
          QCheck_alcotest.to_alcotest qcheck_int_vec_roundtrip;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          QCheck_alcotest.to_alcotest qcheck_bitset_matches_model;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "min_heap",
        [
          Alcotest.test_case "sorts" `Quick test_min_heap_sorts;
          Alcotest.test_case "peek" `Quick test_min_heap_peek;
          QCheck_alcotest.to_alcotest qcheck_heap_sorts;
        ] );
    ]
