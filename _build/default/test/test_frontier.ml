module Vertex_subset = Frontier.Vertex_subset
module Generators = Graphs.Generators
module Csr = Graphs.Csr

let test_construction_and_cardinal () =
  let s = Vertex_subset.of_array ~num_vertices:10 [| 3; 1; 7 |] in
  Alcotest.(check int) "cardinal" 3 (Vertex_subset.cardinal s);
  Alcotest.(check int) "universe" 10 (Vertex_subset.num_vertices s);
  Alcotest.(check bool) "not empty" false (Vertex_subset.is_empty s);
  Alcotest.(check (array int)) "sorted members" [| 1; 3; 7 |]
    (Vertex_subset.to_sorted_array s);
  let e = Vertex_subset.empty ~num_vertices:4 in
  Alcotest.(check bool) "empty" true (Vertex_subset.is_empty e);
  let f = Vertex_subset.full ~num_vertices:4 in
  Alcotest.(check int) "full" 4 (Vertex_subset.cardinal f);
  let g = Vertex_subset.singleton ~num_vertices:4 2 in
  Alcotest.(check (array int)) "singleton" [| 2 |] (Vertex_subset.to_sorted_array g)

let test_validation () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Vertex_subset: vertex out of range") (fun () ->
      ignore (Vertex_subset.of_array ~num_vertices:3 [| 3 |]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Vertex_subset: duplicate member") (fun () ->
      ignore (Vertex_subset.of_array ~num_vertices:3 [| 1; 1 |]))

let test_membership_and_densify () =
  let s = Vertex_subset.of_array ~num_vertices:8 [| 0; 5 |] in
  Alcotest.(check bool) "mem present" true (Vertex_subset.mem s 5);
  Alcotest.(check bool) "mem absent" false (Vertex_subset.mem s 4);
  let flags = Vertex_subset.dense_flags s in
  Alcotest.(check (list int)) "dense flags" [ 0; 5 ] (Support.Bitset.to_list flags)

let test_unsafe_of_array () =
  let ids = [| 4; 2 |] in
  let s = Vertex_subset.unsafe_of_array ~num_vertices:6 ids in
  Alcotest.(check int) "cardinal" 2 (Vertex_subset.cardinal s);
  Alcotest.(check (array int)) "sorted" [| 2; 4 |] (Vertex_subset.to_sorted_array s);
  Alcotest.(check bool) "densifies on demand" true (Vertex_subset.mem s 4)

let test_out_degree_sum () =
  let g = Csr.of_edge_list (Generators.star 5) in
  let s = Vertex_subset.of_array ~num_vertices:5 [| 0; 1 |] in
  (* Center has degree 4, leaf has degree 0. *)
  Alcotest.(check int) "degree sum" 4 (Vertex_subset.out_degree_sum g s)

let test_equal_members () =
  let a = Vertex_subset.of_array ~num_vertices:5 [| 1; 3 |] in
  let b = Vertex_subset.of_array ~num_vertices:5 [| 3; 1 |] in
  let c = Vertex_subset.of_array ~num_vertices:5 [| 1; 2 |] in
  Alcotest.(check bool) "order-insensitive equality" true (Vertex_subset.equal_members a b);
  Alcotest.(check bool) "different sets differ" false (Vertex_subset.equal_members a c)

let qcheck_sparse_dense_agree =
  QCheck.Test.make ~name:"sparse and dense views agree" ~count:200
    QCheck.(list (int_bound 31))
    (fun ids ->
      let ids = List.sort_uniq compare ids in
      let s = Vertex_subset.of_array ~num_vertices:32 (Array.of_list ids) in
      let from_dense = Support.Bitset.to_list (Vertex_subset.dense_flags s) in
      let from_sparse = Array.to_list (Vertex_subset.to_sorted_array s) in
      from_dense = ids && from_sparse = ids
      && Vertex_subset.cardinal s = List.length ids)

let () =
  Alcotest.run "frontier"
    [
      ( "vertex_subset",
        [
          Alcotest.test_case "construction" `Quick test_construction_and_cardinal;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "membership" `Quick test_membership_and_densify;
          Alcotest.test_case "unsafe_of_array" `Quick test_unsafe_of_array;
          Alcotest.test_case "out_degree_sum" `Quick test_out_degree_sum;
          Alcotest.test_case "equal_members" `Quick test_equal_members;
          QCheck_alcotest.to_alcotest qcheck_sparse_dense_agree;
        ] );
    ]
