(** Per-run reusable traversal state.

    One [Scratch.t] is created per algorithm run (per pool × graph pair) and
    threaded through every {!Edge_map.run} call of that run, so the hot loop
    allocates nothing per round: the dense gating bitmap, the next-frontier
    update buffer, and the padded per-worker vertex/edge counters are all
    allocated once here and reused round after round. *)

type t

(** [create ~pool ~graph] allocates scratch state sized for [graph] and
    [pool]'s worker count, and caches the hybrid direction threshold
    [num_edges graph / 20] (Ligra's [m/20]). *)
val create : pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> t

(** The pool the scratch was created for. *)
val pool : t -> Parallel.Pool.t

(** Universe size (vertex count of the graph at creation). *)
val num_vertices : t -> int

(** Worker count of the pool at creation. *)
val num_workers : t -> int

(** The cached [m/20] threshold the hybrid heuristic compares
    [degree_sum + |F|] against. *)
val dense_threshold : t -> int

(** The dense gating bitmap used by pull traversal. Owned by the kernel
    while {!Edge_map.run} executes; empty between calls. *)
val flags : t -> Support.Bitset.t

(** The CAS-deduplicated next-frontier buffer. Callers [try_add] into it
    from their edge function and drain it between rounds (directly or via
    {!drain_frontier}). *)
val buffer : t -> Bucketing.Update_buffer.t

(** [drain_frontier t] drains {!buffer} into a fresh sparse vertex subset
    (parallel for large buffers), resetting it for the next round. *)
val drain_frontier : t -> Frontier.Vertex_subset.t

(** [add_vertices t ~tid by] / [add_edges t ~tid by] bump worker [tid]'s
    padded counter slot. The kernel bumps these on the hot path; epilogues
    (e.g. the engine's fusion drain) bump them for vertices they process
    outside the kernel loop. *)
val add_vertices : t -> tid:int -> int -> unit

val add_edges : t -> tid:int -> int -> unit

(** Totals across all worker slots since the last {!reset_counters}. *)
val vertices_processed : t -> int

val edges_traversed : t -> int

(** [reset_counters t] zeroes the vertex/edge counters (call at run start
    when reusing a scratch across algorithm runs). *)
val reset_counters : t -> unit

(** [reset t] fully rearms a scratch for a new run: counters zeroed, the
    dense bitmap cleared, and any frontier entries a stopped/timed-out
    run left in the buffer discarded. *)
val reset : t -> unit

(** [shared ~pool ~graph ~version] returns a process-cached scratch for
    the (pool, graph, version) triple, {!reset} and ready to use, creating
    and caching it on first sight (small LRU-ish cache; the newest
    [8] keys are kept). Safe because runs on one pool are serialized by
    the orchestrating-thread discipline; graphs compare physically, so a
    mutated graph version can never reuse stale sizing. *)
val shared : pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> version:int -> t
