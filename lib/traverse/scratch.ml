module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Bitset = Support.Bitset
module Update_buffer = Bucketing.Update_buffer
module Vertex_subset = Frontier.Vertex_subset

(* Per-worker counters live [stride] ints apart: they are bumped once per
   vertex/edge on the hot path, and packing one slot per worker would
   false-share a cache line between all workers. *)
let stride = 8

type t = {
  pool : Pool.t;
  n : int;
  workers : int;
  dense_threshold : int;
  flags : Bitset.t;
  buffer : Update_buffer.t;
  vertices : int array; (* slot tid * stride *)
  edges : int array;
}

let create ~pool ~graph =
  let n = Csr.num_vertices graph in
  let workers = Pool.num_workers pool in
  {
    pool;
    n;
    workers;
    dense_threshold = Csr.num_edges graph / 20;
    flags = Bitset.create n;
    buffer = Update_buffer.create ~num_vertices:n ~num_workers:workers ();
    vertices = Array.make (workers * stride) 0;
    edges = Array.make (workers * stride) 0;
  }

let pool t = t.pool
let num_vertices t = t.n
let num_workers t = t.workers
let dense_threshold t = t.dense_threshold
let flags t = t.flags
let buffer t = t.buffer

let drain_frontier t =
  Vertex_subset.unsafe_of_array ~num_vertices:t.n
    (Update_buffer.drain_to_array t.buffer ~pool:t.pool)

let add_vertices t ~tid by =
  let slot = tid * stride in
  t.vertices.(slot) <- t.vertices.(slot) + by

let add_edges t ~tid by =
  let slot = tid * stride in
  t.edges.(slot) <- t.edges.(slot) + by

let counter_sum a =
  let total = ref 0 in
  let slots = Array.length a / stride in
  for tid = 0 to slots - 1 do
    total := !total + a.(tid * stride)
  done;
  !total

let vertices_processed t = counter_sum t.vertices
let edges_traversed t = counter_sum t.edges

let reset_counters t =
  Array.fill t.vertices 0 (Array.length t.vertices) 0;
  Array.fill t.edges 0 (Array.length t.edges) 0

let reset t =
  reset_counters t;
  Bitset.clear t.flags;
  (* A run aborted mid-flight (stop/deadline) can leave buffered frontier
     entries behind; a drain discards them and rearms the dedup flags. *)
  if Update_buffer.size t.buffer > 0 then Update_buffer.drain t.buffer (fun _ -> ())

(* ------------------------------------------------------------------ *)
(* Shared scratch, keyed by (pool, graph, version).

   Engine runs against the same pool are serialized by construction (one
   orchestrating thread per pool), so reusing one scratch per
   (pool, graph) pair is safe and saves the per-run allocation that
   dominates small incremental repairs. Keys compare physically: each
   graph version is a distinct CSR, so a version bump naturally misses
   the cache; the explicit version component guards the degenerate case
   of physically distinct CSRs for the same logical version. *)

let cache_capacity = 8
let cache : (Pool.t * Csr.t * int * t) list ref = ref []
let cache_mutex = Mutex.create ()

let shared ~pool ~graph ~version =
  Mutex.lock cache_mutex;
  let hit =
    List.find_opt (fun (p, g, v, _) -> p == pool && g == graph && v = version) !cache
  in
  let scratch =
    match hit with
    | Some (_, _, _, s) -> s
    | None ->
        let s = create ~pool ~graph in
        let kept =
          if List.length !cache >= cache_capacity then
            List.filteri (fun i _ -> i < cache_capacity - 1) !cache
          else !cache
        in
        cache := (pool, graph, version, s) :: kept;
        s
  in
  Mutex.unlock cache_mutex;
  reset scratch;
  scratch
