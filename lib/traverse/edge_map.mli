(** The single direction-optimizing traversal kernel (GraphIt's
    edgeset-apply, Ligra's edgeMap).

    Every frontier sweep in the repository — the ordered engine's rounds,
    the Ligra/Julienne baselines, the DSL interpreter's edgeset-apply ops,
    and the unordered algorithm loops — runs through {!run}. The kernel
    owns the traversal mechanics the call sites used to duplicate: chunked
    parallel scheduling, the dense gating bitmap, the per-direction atomics
    policy, and the Span/Tracer instrumentation ([traverse.push] /
    [traverse.pull] slices plus the padded per-worker vertex/edge
    counters in {!Scratch}).

    {2 Directions}

    - [Push] claims fixed {e Dynamic} chunks of the frontier's sparse
      members (uneven degrees need the balancing) and applies [f] to each
      member's out-edges with [ctx.use_atomics = true]: many sources may
      relax the same destination concurrently.
    - [Pull] sweeps all destinations [0, n) of the transpose with {e
      Guided} chunks, gated on the scratch's dense bitmap, and applies [f]
      with [ctx.use_atomics = false]: each destination is written only by
      the worker that owns its range (pull ownership, Fig. 9(b) of the
      GraphIt paper).
    - [Hybrid] decides per call with Ligra's heuristic: pull when
      [degree_sum frontier + cardinal frontier > m/20] (the threshold is
      cached in {!Scratch}), where the degree sum is a {e parallel}
      reduce — the per-round sequential walk the old engine did is gone.

    {2 Hooks}

    [filter] (push only) skips members without touching their edges — the
    engine's "is this vertex still on the current bucket" check.
    [vertex_begin]/[vertex_end] bracket each processed vertex — each
    frontier member under push, {e every} destination in [0, n) under pull
    (which is what per-vertex accumulator sweeps like the h-index k-core
    want). [epilogue] runs once per worker after its share of the sweep,
    {e inside the same parallel episode} — the engine's bucket-fusion
    drain lives there so fused drains still avoid a global barrier. *)

(** The apply context handed to every callback. [tid] picks per-worker
    slots; [use_atomics] tells the caller's relax function whether
    destination writes race ([true] under push) or are owned ([false]
    under pull). [Ordered.Priority_queue.ctx] re-exports this type, so
    relax functions written against either name are interchangeable. *)
type ctx = {
  tid : int;
  use_atomics : bool;
}

type direction =
  | Push
  | Pull
  | Hybrid

(** Which direction a {!run} actually executed ([Hybrid] resolves to one
    of the two). *)
type executed =
  | Ran_push
  | Ran_pull

type edge_fn = ctx -> src:int -> dst:int -> weight:int -> unit

(** [degree_sum scratch ~graph frontier] is the sum of the members'
    out-degrees, reduced in parallel on the scratch's pool — the quantity
    the hybrid heuristic (and Julienne's per-round direction accounting)
    needs. Reads the graph's cached degree array
    ({!Graphs.Csr.out_degrees_cached}) rather than chasing offsets. *)
val degree_sum : Scratch.t -> graph:Graphs.Csr.t -> Frontier.Vertex_subset.t -> int

(** [run scratch ~graph ?transpose ~direction frontier ~f] traverses the
    out-edges of [frontier] per [direction], calling [f] on each. Raises
    [Invalid_argument] when [direction] is [Pull] or [Hybrid] and
    [transpose] is missing. [chunk] (default 64) sizes the scheduling
    chunks; pull raises it to at least 64. [sched] overrides the loop
    scheduling policy in both directions; omitted, each direction keeps
    its tuned default ([Dynamic] push, [Guided] pull). [filter] is
    honoured under push only. Counter totals land in [scratch]
    ({!Scratch.vertices_processed} / {!Scratch.edges_traversed}); under
    pull the vertex counter advances by the frontier cardinality, matching
    the old engine's accounting. *)
val run :
  Scratch.t ->
  graph:Graphs.Csr.t ->
  ?transpose:Graphs.Csr.t ->
  ?sched:Parallel.Pool.sched ->
  ?filter:(int -> bool) ->
  ?vertex_begin:(ctx -> int -> unit) ->
  ?vertex_end:(ctx -> int -> unit) ->
  ?epilogue:(ctx -> unit) ->
  ?chunk:int ->
  direction:direction ->
  Frontier.Vertex_subset.t ->
  f:edge_fn ->
  executed

(** The kernel as a functor over a storage layout. Instantiating it
    specializes the hot edge loops per layout — plain CSR keeps its array
    indexing, compressed CSR its in-register varint decode — so layout
    polymorphism costs one dispatch per sweep, not one branch per edge. *)
module Make (L : Graphs.Layout.S) : sig
  val degree_sum : Scratch.t -> graph:L.g -> Frontier.Vertex_subset.t -> int

  val run :
    Scratch.t ->
    graph:L.g ->
    ?transpose:L.g ->
    ?sched:Parallel.Pool.sched ->
    ?filter:(int -> bool) ->
    ?vertex_begin:(ctx -> int -> unit) ->
    ?vertex_end:(ctx -> int -> unit) ->
    ?epilogue:(ctx -> unit) ->
    ?chunk:int ->
    direction:direction ->
    Frontier.Vertex_subset.t ->
    f:edge_fn ->
    executed
end

(** The two baked instances {!run_layout} dispatches between. *)
module Plain : module type of Make (Graphs.Layout.Plain_layout)

module Compressed : module type of Make (Graphs.Layout.Compressed_layout)

(** [run_layout] is {!run} over a packed {!Graphs.Layout.t}: it dispatches
    to the matching specialized instance once per sweep. The transpose,
    when given, must use the same layout as the graph
    ([Invalid_argument] otherwise). *)
val run_layout :
  Scratch.t ->
  graph:Graphs.Layout.t ->
  ?transpose:Graphs.Layout.t ->
  ?sched:Parallel.Pool.sched ->
  ?filter:(int -> bool) ->
  ?vertex_begin:(ctx -> int -> unit) ->
  ?vertex_end:(ctx -> int -> unit) ->
  ?epilogue:(ctx -> unit) ->
  ?chunk:int ->
  direction:direction ->
  Frontier.Vertex_subset.t ->
  f:edge_fn ->
  executed
