module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Layout = Graphs.Layout
module Bitset = Support.Bitset
module Vertex_subset = Frontier.Vertex_subset
module Span = Observe.Span

type ctx = {
  tid : int;
  use_atomics : bool;
}

type direction =
  | Push
  | Pull
  | Hybrid

type executed =
  | Ran_push
  | Ran_pull

type edge_fn = ctx -> src:int -> dst:int -> weight:int -> unit

let no_filter _ = true
let no_hook _ _ = ()
let no_epilogue _ = ()

(* One 64-byte cache line of boxed-int-free array elements: pull chunks
   start on line boundaries of the per-vertex result arrays so neighbouring
   workers' unsynchronized writes never share a line. *)
let cache_line_ints = 8

(* The kernel, written once against the layout signature and instantiated
   per storage layout below. The functor specializes [iter_out] at each
   instantiation, so the hot edge loop carries no per-edge layout branch —
   plain CSR keeps its array indexing, compressed CSR its in-register
   varint decode. *)
module Make (L : Layout.S) = struct
  let degree_sum scratch ~graph frontier =
    (* Borrow the layout's degree array once (cached/stored, not rebuilt)
       rather than chasing offsets per member. *)
    let degrees = L.out_degrees graph in
    let members = Vertex_subset.sparse_members frontier in
    Pool.parallel_for_reduce (Scratch.pool scratch) ~chunk:128 ~lo:0
      ~hi:(Array.length members) ~neutral:0 ~combine:( + ) (fun i ->
        Array.unsafe_get degrees (Array.unsafe_get members i))

  let run_push scratch ~graph ~sched ~filter ~vertex_begin ~vertex_end
      ~epilogue ~chunk frontier ~f =
    Span.with_ "traverse.push" (fun () ->
        let members = Vertex_subset.sparse_members frontier in
        let total = Array.length members in
        let pool = Scratch.pool scratch in
        (* Frontier members have wildly uneven degrees: claim fixed chunks
           dynamically, then run a tight local loop over each chunk. *)
        let sched = Option.value sched ~default:Pool.Dynamic in
        let cursor = Pool.range_cursor pool ~sched ~chunk ~lo:0 ~hi:total () in
        Pool.run_workers pool (fun tid ->
            let ctx = { tid; use_atomics = true } in
            let rec drain () =
              match Pool.next_range cursor ~tid with
              | Some (lo, hi) ->
                  for i = lo to hi - 1 do
                    let u = Array.unsafe_get members i in
                    if filter u then begin
                      Scratch.add_vertices scratch ~tid 1;
                      Scratch.add_edges scratch ~tid (L.out_degree graph u);
                      vertex_begin ctx u;
                      L.iter_out graph u (fun dst weight ->
                          f ctx ~src:u ~dst ~weight);
                      vertex_end ctx u
                    end
                  done;
                  drain ()
              | None -> ()
            in
            drain ();
            epilogue ctx));
    Ran_push

  let run_pull scratch ~graph ~transpose ~sched ~vertex_begin ~vertex_end
      ~epilogue ~chunk frontier ~f =
    Span.with_ "traverse.pull" (fun () ->
        let pool = Scratch.pool scratch in
        let n = L.num_vertices graph in
        let card = Vertex_subset.cardinal frontier in
        (* A full frontier gates nothing: skip the bitmap entirely, the
           common case for whole-graph sweeps (h-index k-core). *)
        let gated = card < n in
        let flags = Scratch.flags scratch in
        if gated then Vertex_subset.fill_flags frontier flags;
        let chunk = max chunk 64 in
        (* The pull sweep touches every vertex: guided chunks keep the
           shared cursor cold for most of the range and still balance the
           tail. Chunks are cache-line aligned (lo = 0) so each worker's
           unsynchronized result writes own whole lines. *)
        let sched = Option.value sched ~default:Pool.Guided in
        let cursor =
          Pool.range_cursor pool ~sched ~chunk ~align:cache_line_ints ~lo:0
            ~hi:n ()
        in
        Pool.run_workers pool (fun tid ->
            (* Pull ownership: only this worker writes vertex [d], so the
               user function runs without atomics (Fig. 9(b)). *)
            let ctx = { tid; use_atomics = false } in
            let rec drain () =
              match Pool.next_range cursor ~tid with
              | Some (lo, hi) ->
                  for d = lo to hi - 1 do
                    vertex_begin ctx d;
                    L.iter_out transpose d (fun src weight ->
                        if (not gated) || Bitset.mem flags src then begin
                          Scratch.add_edges scratch ~tid 1;
                          f ctx ~src ~dst:d ~weight
                        end);
                    vertex_end ctx d
                  done;
                  drain ()
              | None -> ()
            in
            drain ();
            epilogue ctx);
        if gated then Vertex_subset.clear_flags frontier flags;
        Scratch.add_vertices scratch ~tid:0 card);
    Ran_pull

  let run scratch ~graph ?transpose ?sched ?(filter = no_filter)
      ?(vertex_begin = no_hook) ?(vertex_end = no_hook)
      ?(epilogue = no_epilogue) ?(chunk = 64) ~direction frontier ~f =
    let require_transpose () =
      match transpose with
      | Some tg -> tg
      | None -> invalid_arg "Edge_map.run: Pull/Hybrid requires ~transpose"
    in
    match direction with
    | Push ->
        run_push scratch ~graph ~sched ~filter ~vertex_begin ~vertex_end
          ~epilogue ~chunk frontier ~f
    | Pull ->
        let transpose = require_transpose () in
        run_pull scratch ~graph ~transpose ~sched ~vertex_begin ~vertex_end
          ~epilogue ~chunk frontier ~f
    | Hybrid ->
        (* Ligra's direction heuristic: pull when the frontier and its
           out-edges cover more than 1/20 of the graph. *)
        let transpose = require_transpose () in
        if
          degree_sum scratch ~graph frontier + Vertex_subset.cardinal frontier
          > Scratch.dense_threshold scratch
        then
          run_pull scratch ~graph ~transpose ~sched ~vertex_begin ~vertex_end
            ~epilogue ~chunk frontier ~f
        else
          run_push scratch ~graph ~sched ~filter ~vertex_begin ~vertex_end
            ~epilogue ~chunk frontier ~f
end

module Plain = Make (Layout.Plain_layout)
module Compressed = Make (Layout.Compressed_layout)

(* The historical Csr-typed entry points are the plain instance. *)
let degree_sum = Plain.degree_sum
let run = Plain.run

let run_layout scratch ~graph ?transpose ?sched ?filter ?vertex_begin
    ?vertex_end ?epilogue ?chunk ~direction frontier ~f =
  (* Dispatch on the packed layout once per sweep; the graph and its
     transpose must agree so the specialized kernel sees one [L.g] type. *)
  match graph with
  | Layout.Plain_graph g ->
      let transpose =
        Option.map
          (function
            | Layout.Plain_graph t -> t
            | Layout.Compressed_graph _ ->
                invalid_arg "Edge_map.run_layout: transpose layout mismatch")
          transpose
      in
      Plain.run scratch ~graph:g ?transpose ?sched ?filter ?vertex_begin
        ?vertex_end ?epilogue ?chunk ~direction frontier ~f
  | Layout.Compressed_graph g ->
      let transpose =
        Option.map
          (function
            | Layout.Compressed_graph t -> t
            | Layout.Plain_graph _ ->
                invalid_arg "Edge_map.run_layout: transpose layout mismatch")
          transpose
      in
      Compressed.run scratch ~graph:g ?transpose ?sched ?filter ?vertex_begin
        ?vertex_end ?epilogue ?chunk ~direction frontier ~f
