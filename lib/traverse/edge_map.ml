module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Bitset = Support.Bitset
module Vertex_subset = Frontier.Vertex_subset
module Span = Observe.Span

type ctx = {
  tid : int;
  use_atomics : bool;
}

type direction =
  | Push
  | Pull
  | Hybrid

type executed =
  | Ran_push
  | Ran_pull

type edge_fn = ctx -> src:int -> dst:int -> weight:int -> unit

let degree_sum scratch ~graph frontier =
  let members = Vertex_subset.sparse_members frontier in
  Pool.parallel_for_reduce (Scratch.pool scratch) ~chunk:128 ~lo:0
    ~hi:(Array.length members) ~neutral:0 ~combine:( + ) (fun i ->
      Csr.out_degree graph (Array.unsafe_get members i))

let no_filter _ = true
let no_hook _ _ = ()
let no_epilogue _ = ()

let run_push scratch ~graph ~sched ~filter ~vertex_begin ~vertex_end ~epilogue
    ~chunk frontier ~f =
  Span.with_ "traverse.push" (fun () ->
      let members = Vertex_subset.sparse_members frontier in
      let total = Array.length members in
      let pool = Scratch.pool scratch in
      (* Frontier members have wildly uneven degrees: claim fixed chunks
         dynamically, then run a tight local loop over each chunk. *)
      let sched = Option.value sched ~default:Pool.Dynamic in
      let cursor = Pool.range_cursor pool ~sched ~chunk ~lo:0 ~hi:total () in
      Pool.run_workers pool (fun tid ->
          let ctx = { tid; use_atomics = true } in
          let rec drain () =
            match Pool.next_range cursor ~tid with
            | Some (lo, hi) ->
                for i = lo to hi - 1 do
                  let u = Array.unsafe_get members i in
                  if filter u then begin
                    Scratch.add_vertices scratch ~tid 1;
                    Scratch.add_edges scratch ~tid (Csr.out_degree graph u);
                    vertex_begin ctx u;
                    Csr.iter_out graph u (fun dst weight ->
                        f ctx ~src:u ~dst ~weight);
                    vertex_end ctx u
                  end
                done;
                drain ()
            | None -> ()
          in
          drain ();
          epilogue ctx));
  Ran_push

let run_pull scratch ~graph ~transpose ~sched ~vertex_begin ~vertex_end
    ~epilogue ~chunk frontier ~f =
  Span.with_ "traverse.pull" (fun () ->
      let pool = Scratch.pool scratch in
      let n = Csr.num_vertices graph in
      let card = Vertex_subset.cardinal frontier in
      (* A full frontier gates nothing: skip the bitmap entirely, the
         common case for whole-graph sweeps (h-index k-core). *)
      let gated = card < n in
      let flags = Scratch.flags scratch in
      if gated then Vertex_subset.fill_flags frontier flags;
      let chunk = max chunk 64 in
      (* The pull sweep touches every vertex: guided chunks keep the shared
         cursor cold for most of the range and still balance the tail. *)
      let sched = Option.value sched ~default:Pool.Guided in
      let cursor = Pool.range_cursor pool ~sched ~chunk ~lo:0 ~hi:n () in
      Pool.run_workers pool (fun tid ->
          (* Pull ownership: only this worker writes vertex [d], so the user
             function runs without atomics (Fig. 9(b)). *)
          let ctx = { tid; use_atomics = false } in
          let rec drain () =
            match Pool.next_range cursor ~tid with
            | Some (lo, hi) ->
                for d = lo to hi - 1 do
                  vertex_begin ctx d;
                  Csr.iter_out transpose d (fun src weight ->
                      if (not gated) || Bitset.mem flags src then begin
                        Scratch.add_edges scratch ~tid 1;
                        f ctx ~src ~dst:d ~weight
                      end);
                  vertex_end ctx d
                done;
                drain ()
            | None -> ()
          in
          drain ();
          epilogue ctx);
      if gated then Vertex_subset.clear_flags frontier flags;
      Scratch.add_vertices scratch ~tid:0 card);
  Ran_pull

let run scratch ~graph ?transpose ?sched ?(filter = no_filter)
    ?(vertex_begin = no_hook) ?(vertex_end = no_hook)
    ?(epilogue = no_epilogue) ?(chunk = 64) ~direction frontier ~f =
  let require_transpose () =
    match transpose with
    | Some tg -> tg
    | None -> invalid_arg "Edge_map.run: Pull/Hybrid requires ~transpose"
  in
  match direction with
  | Push ->
      run_push scratch ~graph ~sched ~filter ~vertex_begin ~vertex_end
        ~epilogue ~chunk frontier ~f
  | Pull ->
      let transpose = require_transpose () in
      run_pull scratch ~graph ~transpose ~sched ~vertex_begin ~vertex_end
        ~epilogue ~chunk frontier ~f
  | Hybrid ->
      (* Ligra's direction heuristic: pull when the frontier and its
         out-edges cover more than 1/20 of the graph. *)
      let transpose = require_transpose () in
      if
        degree_sum scratch ~graph frontier + Vertex_subset.cardinal frontier
        > Scratch.dense_threshold scratch
      then
        run_pull scratch ~graph ~transpose ~sched ~vertex_begin ~vertex_end
          ~epilogue ~chunk frontier ~f
      else
        run_push scratch ~graph ~sched ~filter ~vertex_begin ~vertex_end
          ~epilogue ~chunk frontier ~f
