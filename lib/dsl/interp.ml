module Pool = Parallel.Pool
module Atomic_array = Parallel.Atomic_array
module Csr = Graphs.Csr
module Vertex_subset = Frontier.Vertex_subset
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Engine = Ordered.Engine
module Schedule = Ordered.Schedule
module Edge_map = Traverse.Edge_map
module Scratch = Traverse.Scratch

type value =
  | V_unit
  | V_int of int
  | V_bool of bool
  | V_string of string
  | V_vector of Atomic_array.t
  | V_edgeset of Csr.t
  | V_vertexset of Vertex_subset.t
  | V_filtered_edges of Csr.t * Vertex_subset.t
  | V_pq of Pq.t

type extern_fn = value list -> value

type run_result = {
  vectors : (string * int array) list;
  stats : Ordered.Stats.t option;
  printed : string list;
}

exception Runtime_error of Pos.t * string

let error pos fmt = Printf.ksprintf (fun msg -> raise (Runtime_error (pos, msg))) fmt

type state = {
  lowered : Lower.t;
  pool : Pool.t;
  argv : string array;
  (* When false, the §5.2 loop replacement is suppressed: matched while
     loops are interpreted statement-by-statement over a lazy backend —
     the engine-free reference semantics the differential sweep compares
     the engine and compiled lanes against. *)
  transform : bool;
  externs : (string, extern_fn) Hashtbl.t;
  globals : (string, value) Hashtbl.t;
  mutable pq : Pq.t option;
  mutable stats : Ordered.Stats.t option;
  mutable transpose : Csr.t option;
  mutable printed : string list;
  (* Traversal scratch, cached per graph (physical equality): the edgeset
     ops of an unordered loop reuse one scratch across all iterations. *)
  mutable scratch : (Csr.t * Scratch.t) option;
}

type frame = {
  mutable locals : (string * value ref) list;
  ctx : Pq.ctx;
}

let sequential_ctx = { Pq.tid = 0; use_atomics = true }

let scratch_for state graph =
  match state.scratch with
  | Some (g, s) when g == graph -> s
  | _ ->
      let s = Scratch.create ~pool:state.pool ~graph in
      state.scratch <- Some (graph, s);
      s

let describe_value = function
  | V_unit -> "unit"
  | V_int _ -> "int"
  | V_bool _ -> "bool"
  | V_string _ -> "string"
  | V_vector _ -> "vector"
  | V_edgeset _ -> "edgeset"
  | V_vertexset _ -> "vertexset"
  | V_filtered_edges _ -> "filtered edgeset"
  | V_pq _ -> "priority_queue"

let as_int pos = function
  | V_int i -> i
  | v -> error pos "expected an int, got %s" (describe_value v)

let as_bool pos = function
  | V_bool b -> b
  | v -> error pos "expected a bool, got %s" (describe_value v)

let as_vector pos = function
  | V_vector a -> a
  | v -> error pos "expected a vector, got %s" (describe_value v)

let as_edgeset pos = function
  | V_edgeset g -> g
  | v -> error pos "expected an edgeset, got %s" (describe_value v)

let the_pq state pos =
  match state.pq with
  | Some pq -> pq
  | None -> error pos "the priority queue has not been constructed yet"

let lookup state frame pos name =
  match List.assoc_opt name frame.locals with
  | Some r -> !r
  | None -> (
      match Hashtbl.find_opt state.globals name with
      | Some v -> v
      | None ->
          if name = "INT_MAX" then V_int Bucket_order.null_priority
          else error pos "unbound identifier %S" name)

let string_of_value = function
  | V_unit -> "()"
  | V_int i -> string_of_int i
  | V_bool b -> string_of_bool b
  | V_string s -> s
  | V_vector a ->
      let n = min 16 (Atomic_array.length a) in
      let cells = List.init n (fun i -> string_of_int (Atomic_array.get a i)) in
      Printf.sprintf "[%s%s]" (String.concat "; " cells)
        (if Atomic_array.length a > n then "; ..." else "")
  | V_edgeset g ->
      Printf.sprintf "<edgeset |V|=%d |E|=%d>" (Csr.num_vertices g) (Csr.num_edges g)
  | V_vertexset s -> Printf.sprintf "<vertexset |%d|>" (Vertex_subset.cardinal s)
  | V_filtered_edges _ -> "<filtered edgeset>"
  | V_pq _ -> "<priority_queue>"

(* The vertex universe: the size of any loaded edgeset (for sizing
   vertexsets and vectors created before the priority queue exists). *)
let universe_size state pos =
  let n = ref (-1) in
  Hashtbl.iter
    (fun _ v -> match v with V_edgeset g -> n := max !n (Csr.num_vertices g) | _ -> ())
    state.globals;
  if !n < 0 then error pos "no edgeset loaded yet, so the vertex universe is unknown";
  !n

(* ---------------- expression evaluation ---------------- *)

let rec eval state frame (e : Ast.expr) : value =
  let pos = e.Ast.pos in
  match e.Ast.desc with
  | Ast.Int_lit i -> V_int i
  | Ast.Bool_lit b -> V_bool b
  | Ast.String_lit s -> V_string s
  | Ast.Var name -> lookup state frame pos name
  | Ast.Index (base, index) -> (
      match base.Ast.desc with
      | Ast.Var "argv" ->
          let i = as_int pos (eval state frame index) in
          if i < 0 || i >= Array.length state.argv then
            error pos "argv[%d] out of range (%d arguments)" i (Array.length state.argv);
          V_string state.argv.(i)
      | _ ->
          let vec = as_vector pos (eval state frame base) in
          let i = as_int pos (eval state frame index) in
          if i < 0 || i >= Atomic_array.length vec then
            error pos "vector index %d out of range" i;
          V_int (Atomic_array.get vec i))
  | Ast.Binop (op, lhs, rhs) -> eval_binop state frame pos op lhs rhs
  | Ast.Unop (Ast.Neg, operand) -> V_int (-as_int pos (eval state frame operand))
  | Ast.Unop (Ast.Not, operand) -> V_bool (not (as_bool pos (eval state frame operand)))
  | Ast.Call (name, args) -> eval_call state frame pos name args
  | Ast.Method_call (receiver, name, args) -> eval_method state frame pos receiver name args
  | Ast.New_vertexset { size; _ } ->
      let n = as_int pos (eval state frame size) in
      let universe = universe_size state pos in
      if n = 0 then V_vertexset (Vertex_subset.empty ~num_vertices:universe)
      else if n = universe then V_vertexset (Vertex_subset.full ~num_vertices:universe)
      else error pos "new vertexset size must be 0 or the vertex count, got %d" n
  | Ast.New_priority_queue _ ->
      error pos "priority queue construction is only allowed in an assignment"

and eval_binop state frame pos op lhs rhs =
  match op with
  | Ast.And ->
      V_bool (as_bool pos (eval state frame lhs) && as_bool pos (eval state frame rhs))
  | Ast.Or ->
      V_bool (as_bool pos (eval state frame lhs) || as_bool pos (eval state frame rhs))
  | _ -> (
      let l = eval state frame lhs and r = eval state frame rhs in
      match op with
      | Ast.Add -> V_int (as_int pos l + as_int pos r)
      | Ast.Sub -> V_int (as_int pos l - as_int pos r)
      | Ast.Mul -> V_int (as_int pos l * as_int pos r)
      | Ast.Div ->
          let d = as_int pos r in
          if d = 0 then error pos "division by zero";
          V_int (as_int pos l / d)
      | Ast.Lt -> V_bool (as_int pos l < as_int pos r)
      | Ast.Le -> V_bool (as_int pos l <= as_int pos r)
      | Ast.Gt -> V_bool (as_int pos l > as_int pos r)
      | Ast.Ge -> V_bool (as_int pos l >= as_int pos r)
      | Ast.Eq -> V_bool (values_equal pos l r)
      | Ast.Neq -> V_bool (not (values_equal pos l r))
      | Ast.And | Ast.Or -> assert false)

and values_equal pos a b =
  match (a, b) with
  | V_int x, V_int y -> x = y
  | V_bool x, V_bool y -> x = y
  | V_string x, V_string y -> x = y
  | _ -> error pos "cannot compare %s with %s" (describe_value a) (describe_value b)

and eval_call state frame pos name args =
  let values () = List.map (eval state frame) args in
  match name with
  | "load" -> (
      match values () with
      | [ V_string path ] -> (
          match Graphs.Graph_io.load path with
          | el -> V_edgeset (Csr.of_edge_list el)
          | exception (Failure msg | Sys_error msg) ->
              error pos "load(%S) failed: %s" path msg)
      | _ -> error pos "load expects a path string")
  | "symmetrize" -> (
      match values () with
      | [ V_edgeset g ] ->
          V_edgeset (Csr.of_edge_list (Graphs.Edge_list.symmetrized (Csr.to_edge_list g)))
      | _ -> error pos "symmetrize expects an edgeset")
  | "atoi" -> (
      match values () with
      | [ V_string s ] -> (
          match int_of_string_opt (String.trim s) with
          | Some i -> V_int i
          | None -> error pos "atoi: %S is not an integer" s)
      | _ -> error pos "atoi expects a string")
  | "print" ->
      let rendered = String.concat " " (List.map string_of_value (values ())) in
      state.printed <- rendered :: state.printed;
      V_unit
  | _ -> (
      match Hashtbl.find_opt state.externs name with
      | Some fn -> fn (values ())
      | None ->
          if Ast.find_func state.lowered.Lower.program name <> None then
            error pos
              "user function %S can only be passed to applyUpdatePriority" name
          else error pos "unknown function %S" name)

and eval_method state frame pos receiver name args =
  let is_pq =
    match (receiver.Ast.desc, state.lowered.Lower.analysis.Analysis.pq) with
    | Ast.Var v, Some info -> v = info.Analysis.pq_name
    | _, _ -> false
  in
  if is_pq then eval_pq_method state frame pos name args
  else begin
    let recv = eval state frame receiver in
    match (recv, name) with
    | V_edgeset g, "from" -> (
        match List.map (eval state frame) args with
        | [ V_vertexset s ] -> V_filtered_edges (g, s)
        | _ -> error pos "from() expects a vertexset")
    | V_edgeset g, "getOutDegrees" ->
        V_vector (Atomic_array.of_array (Csr.out_degrees_cached g))
    | V_edgeset g, "getMaxWeight" -> V_int (max 1 (Csr.max_weight g))
    | V_vertexset set, "getVertexSetSize" -> V_int (Vertex_subset.cardinal set)
    | V_vertexset set, "addVertex" -> (
        let v =
          match List.map (eval state frame) args with
          | [ V_int v ] -> v
          | _ -> error pos "addVertex expects a vertex"
        in
        let updated =
          if Vertex_subset.mem set v then set
          else
            Vertex_subset.of_array
              ~num_vertices:(Vertex_subset.num_vertices set)
              (Array.append (Vertex_subset.sparse_members set) [| v |])
        in
        (* addVertex mutates: rebind the receiver variable. *)
        match receiver.Ast.desc with
        | Ast.Var name -> (
            match List.assoc_opt name frame.locals with
            | Some r ->
                r := V_vertexset updated;
                V_unit
            | None ->
                if Hashtbl.mem state.globals name then begin
                  Hashtbl.replace state.globals name (V_vertexset updated);
                  V_unit
                end
                else error pos "unbound identifier %S" name)
        | _ -> error pos "addVertex requires a named vertexset")
    | (V_filtered_edges _ | V_edgeset _), "applyModified" -> (
        match args with
        | [ { Ast.desc = Ast.Var udf_name; _ }; { Ast.desc = Ast.Var vec_name; _ } ] ->
            apply_modified state frame pos recv udf_name vec_name
        | _ -> error pos "applyModified expects (function_name, tracked_vector)")
    | (V_filtered_edges _ | V_edgeset _), "applyUpdatePriority" -> (
        match args with
        | [ { Ast.desc = Ast.Var udf_name; _ } ] ->
            apply_update_priority state pos recv udf_name;
            V_unit
        | _ -> error pos "applyUpdatePriority expects a function name")
    | recv, _ -> error pos "%s has no method %S" (describe_value recv) name
  end

and eval_pq_method state frame pos name args =
  let pq = the_pq state pos in
  let int_arg i = as_int pos (eval state frame (List.nth args i)) in
  match (name, List.length args) with
  | "finished", 0 -> V_bool (Pq.finished pq)
  | "finishedVertex", 1 -> V_bool (Pq.finished_vertex pq (int_arg 0))
  | ("getCurrentPriority" | "get_current_priority"), 0 -> V_int (Pq.current_priority pq)
  | "dequeueReadySet", 0 ->
      if Pq.finished pq then error pos "dequeueReadySet on a finished queue";
      V_vertexset (Pq.dequeue_ready_set pq)
  | "updatePriorityMin", (2 | 3) ->
      (* (vertex, [old_value,] new_value) — the middle argument of the
         3-ary form (Fig. 3) is informational. *)
      let v = int_arg 0 in
      let new_val = int_arg (List.length args - 1) in
      Pq.update_priority_min pq frame.ctx v new_val;
      V_unit
  | "updatePriorityMax", (2 | 3) ->
      let v = int_arg 0 in
      let new_val = int_arg (List.length args - 1) in
      Pq.update_priority_max pq frame.ctx v new_val;
      V_unit
  | "updatePrioritySum", (2 | 3) ->
      let v = int_arg 0 in
      let diff = int_arg 1 in
      let floor = if List.length args = 3 then int_arg 2 else 0 in
      Pq.update_priority_sum pq frame.ctx v ~diff ~floor;
      V_unit
  | _, _ -> error pos "bad priority-queue call %s/%d" name (List.length args)

(* One parallel push round applying [udf_name] to the out-edges of a vertex
   subset — the generic interpretation of [applyUpdatePriority] used when
   the loop was not replaced by the engine. *)
and apply_update_priority state pos recv udf_name =
  let graph, subset =
    match recv with
    | V_filtered_edges (g, s) -> (g, s)
    | V_edgeset g -> (g, Vertex_subset.full ~num_vertices:(Csr.num_vertices g))
    | _ -> assert false
  in
  let edge_fn = compile_udf state pos udf_name in
  ignore
    (Edge_map.run (scratch_for state graph) ~graph ~direction:Edge_map.Push
       subset ~f:edge_fn)

(* The unordered GraphIt operator: apply the user function to the out-edges
   of a subset and return the set of destinations whose tracked vector
   changed — the frontier of the next unordered iteration. *)
and apply_modified state frame pos recv udf_name vec_name =
  let graph, subset =
    match recv with
    | V_filtered_edges (g, s) -> (g, s)
    | V_edgeset g -> (g, Vertex_subset.full ~num_vertices:(Csr.num_vertices g))
    | _ -> assert false
  in
  let tracked = as_vector pos (lookup state frame pos vec_name) in
  let scratch = scratch_for state graph in
  let buffer = Scratch.buffer scratch in
  let edge_fn = compile_udf state pos udf_name in
  (* Snapshot-free change tracking: compare the tracked cell around the
     user-function application (reductions are atomic, so a change by any
     worker is observed by at least the worker that made it). *)
  let f ctx ~src ~dst ~weight =
    let before = Atomic_array.get tracked dst in
    edge_fn ctx ~src ~dst ~weight;
    if Atomic_array.get tracked dst <> before then
      ignore (Bucketing.Update_buffer.try_add buffer ~tid:ctx.Pq.tid dst)
  in
  ignore (Edge_map.run scratch ~graph ~direction:Edge_map.Push subset ~f);
  V_vertexset (Scratch.drain_frontier scratch)

(* Compile a user function to an engine edge function: a closure that binds
   the parameters and interprets the body. *)
and compile_udf state pos udf_name : Engine.edge_fn =
  match Ast.find_func state.lowered.Lower.program udf_name with
  | None -> error pos "unknown user function %S" udf_name
  | Some f ->
      let param_names = List.map fst f.Ast.params in
      let body = f.Ast.body in
      fun ctx ~src ~dst ~weight ->
        let locals =
          match param_names with
          | [ s; d ] -> [ (s, ref (V_int src)); (d, ref (V_int dst)) ]
          | [ s; d; w ] ->
              [ (s, ref (V_int src)); (d, ref (V_int dst)); (w, ref (V_int weight)) ]
          | _ -> error f.Ast.fpos "user function %s must take 2 or 3 parameters" udf_name
        in
        let frame = { locals; ctx } in
        exec_block state frame body

(* ---------------- statement execution ---------------- *)

and exec_stmt state frame (s : Ast.stmt) =
  let pos = s.Ast.spos in
  match s.Ast.sdesc with
  | Ast.S_var_decl (name, _typ, init) ->
      let v = match init with Some e -> eval state frame e | None -> V_int 0 in
      frame.locals <- (name, ref v) :: frame.locals
  | Ast.S_assign (name, { Ast.desc = Ast.New_priority_queue _; pos = npos }) ->
      construct_pq state frame npos name
  | Ast.S_assign (name, e) -> (
      let v = eval state frame e in
      match List.assoc_opt name frame.locals with
      | Some r -> r := v
      | None ->
          if Hashtbl.mem state.globals name then Hashtbl.replace state.globals name v
          else error pos "unbound identifier %S" name)
  | Ast.S_index_assign (vec_name, idx, e) ->
      let vec = as_vector pos (lookup state frame pos vec_name) in
      let i = as_int pos (eval state frame idx) in
      let v = as_int pos (eval state frame e) in
      if i < 0 || i >= Atomic_array.length vec then
        error pos "vector index %d out of range for %s" i vec_name;
      Atomic_array.set vec i v
  | Ast.S_reduce_assign (rd, vec_name, idx, e) -> (
      let vec = as_vector pos (lookup state frame pos vec_name) in
      let i = as_int pos (eval state frame idx) in
      let v = as_int pos (eval state frame e) in
      if i < 0 || i >= Atomic_array.length vec then
        error pos "vector index %d out of range for %s" i vec_name;
      (* Dependence analysis inserted atomics: reduction assignments into
         shared vectors race across edges under push traversal. *)
      match rd with
      | Ast.Rd_min ->
          if frame.ctx.Pq.use_atomics then ignore (Atomic_array.fetch_min vec i v)
          else if v < Atomic_array.get vec i then Atomic_array.set vec i v
      | Ast.Rd_max ->
          if frame.ctx.Pq.use_atomics then ignore (Atomic_array.fetch_max vec i v)
          else if v > Atomic_array.get vec i then Atomic_array.set vec i v
      | Ast.Rd_plus ->
          if frame.ctx.Pq.use_atomics then ignore (Atomic_array.fetch_add vec i v)
          else Atomic_array.set vec i (Atomic_array.get vec i + v))
  | Ast.S_expr e -> ignore (eval state frame e)
  | Ast.S_while (cond, body) -> exec_while state frame pos cond body
  | Ast.S_if (cond, then_branch, else_branch) ->
      if as_bool pos (eval state frame cond) then exec_block_in_scope state frame then_branch
      else exec_block_in_scope state frame else_branch
  | Ast.S_delete name -> frame.locals <- List.remove_assoc name frame.locals

and exec_block state frame stmts = List.iter (exec_stmt state frame) stmts

and exec_block_in_scope state frame stmts =
  let saved = frame.locals in
  exec_block state frame stmts;
  frame.locals <- saved

and exec_while state frame pos cond body =
  let program = state.lowered.Lower.program in
  let matched =
    match state.lowered.Lower.analysis.Analysis.pq with
    | Some info when state.transform ->
        Analysis.match_while program ~pq_name:info.Analysis.pq_name ~cond ~body
    | Some _ | None -> Ok None
  in
  match matched with
  | Ok (Some loop) -> run_ordered_loop state frame pos loop
  | Ok None | Error _ ->
      (* An ordinary while loop: interpret it. *)
      let continue = ref true in
      while !continue do
        if as_bool pos (eval state frame cond) then exec_block_in_scope state frame body
        else continue := false
      done

(* The §5.2 transformation at execution time: the matched loop runs through
   the ordered processing operator. *)
and run_ordered_loop state frame pos (loop : Analysis.ordered_loop) =
  let pq = the_pq state pos in
  let graph =
    as_edgeset pos (lookup state frame pos loop.Analysis.edgeset_name)
  in
  let schedule = state.lowered.Lower.loop_schedule in
  let transpose =
    match schedule.Schedule.traversal with
    | Schedule.Dense_pull | Schedule.Hybrid ->
        (match state.transpose with
        | Some t -> Some t
        | None ->
            let t = Csr.transpose graph in
            state.transpose <- Some t;
            Some t)
    | Schedule.Sparse_push -> None
  in
  let edge_fn = compile_udf state pos loop.Analysis.udf.Analysis.udf_name in
  let stop =
    match loop.Analysis.stop_vertex with
    | None -> None
    | Some e ->
        let v = as_int pos (eval state frame e) in
        Some (fun () -> Pq.finished_vertex pq v)
  in
  let stats = Engine.run ~pool:state.pool ~graph ?transpose ~schedule ~pq ~edge_fn ?stop () in
  state.stats <- Some stats

and construct_pq state frame pos name =
  let analysis = state.lowered.Lower.analysis in
  let info =
    match analysis.Analysis.pq with
    | Some info -> info
    | None -> error pos "program declares no priority queue"
  in
  if name <> info.Analysis.pq_name then
    error pos "priority queue must be assigned to %S" info.Analysis.pq_name;
  let priorities =
    match Hashtbl.find_opt state.globals info.Analysis.priority_vector with
    | Some (V_vector a) -> a
    | _ -> error pos "priority vector %S is not a vector" info.Analysis.priority_vector
  in
  let initial =
    match info.Analysis.start_vertex with
    | Some e -> Pq.Start_vertex (as_int pos (eval state frame e))
    | None -> Pq.All_vertices
  in
  let schedule =
    match analysis.Analysis.loop with
    | Some _ when state.transform -> state.lowered.Lower.loop_schedule
    | Some _ | None ->
        (* Generic programs (and the transform-disabled reference lane)
           drive the queue directly; only the lazy backend filters
           staleness at extraction, so force it. *)
        { state.lowered.Lower.loop_schedule with Schedule.strategy = Schedule.Lazy }
  in
  let constant_sum_delta =
    match (schedule.Schedule.strategy, analysis.Analysis.loop) with
    | Schedule.Lazy_constant_sum, Some loop ->
        loop.Analysis.udf.Analysis.constant_sum_diff
    | _ -> None
  in
  let pq =
    Pq.create ~schedule ~num_workers:(Pool.num_workers state.pool)
      ~direction:info.Analysis.direction
      ~allow_coarsening:info.Analysis.allow_coarsening ~priorities ~initial
      ?constant_sum_delta ~pool:state.pool ()
  in
  state.pq <- Some pq;
  Hashtbl.replace state.globals name (V_pq pq)

(* ---------------- globals ---------------- *)

let graph_vertices state pos =
  let n = ref (-1) in
  Hashtbl.iter
    (fun _ v ->
      match v with
      | V_edgeset g -> n := max !n (Csr.num_vertices g)
      | _ -> ())
    state.globals;
  if !n < 0 then
    error pos "a vector was declared before any edgeset was loaded, so its size is unknown";
  !n

let init_const state (c : Ast.const_decl) =
  let pos = c.Ast.cpos in
  let frame = { locals = []; ctx = sequential_ctx } in
  let value =
    match (c.Ast.ctyp, c.Ast.cinit) with
    | Ast.T_priority_queue _, _ -> V_unit (* constructed in main *)
    | Ast.T_vector (_, Ast.T_int), init -> (
        match Option.map (eval state frame) init with
        | Some (V_vector a) -> V_vector a
        | Some (V_int fill) -> V_vector (Atomic_array.make (graph_vertices state pos) fill)
        | None -> V_vector (Atomic_array.make (graph_vertices state pos) 0)
        | Some v -> error pos "cannot initialize a vector from %s" (describe_value v))
    | _, Some init -> eval state frame init
    | _, None -> V_int 0
  in
  Hashtbl.replace state.globals c.Ast.cname value

let run lowered ~pool ~argv ?(externs = []) ?(transform = true) () =
  let state =
    {
      lowered;
      pool;
      argv;
      transform;
      externs = Hashtbl.create 8;
      globals = Hashtbl.create 16;
      pq = None;
      stats = None;
      transpose = None;
      printed = [];
      scratch = None;
    }
  in
  List.iter (fun (name, fn) -> Hashtbl.replace state.externs name fn) externs;
  List.iter (init_const state) lowered.Lower.program.Ast.consts;
  let main =
    match Ast.find_func lowered.Lower.program "main" with
    | Some f -> f
    | None -> error Pos.dummy "program has no main function"
  in
  let frame = { locals = []; ctx = sequential_ctx } in
  exec_block state frame main.Ast.body;
  let vectors =
    Hashtbl.fold
      (fun name v acc ->
        match v with
        | V_vector a -> (name, Atomic_array.to_array a) :: acc
        | _ -> acc)
      state.globals []
    |> List.sort compare
  in
  { vectors; stats = state.stats; printed = List.rev state.printed }
