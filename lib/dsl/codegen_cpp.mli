(** C++ code generation retargeted at the {!Traverse.Edge_map} runtime.

    [generate] prints one self-contained C++17 translation unit that is the
    reference backend for the differential checker's compiled lane:

    - it compiles with nothing but a hosted toolchain
      ([g++ -O2 -std=c++17 file.cpp]);
    - it ports the bucketing runtime the interpreter runs on —
      [Lazy_buckets] (window + overflow + stamp dedup), [Eager_buckets]
      (per-worker bins + bucket fusion), the bulk-update buffer (Fig. 5)
      and the constant-sum histogram (Fig. 10) — with the same clamping,
      staleness and dedup rules, so interp-vs-compiled sweeps compare equal
      vertex-by-vertex;
    - the traversal mirrors [Edge_map]: push walks the sparse frontier's
      out-edges with destination updates routed through the atomic slots,
      pull walks the transpose gated by a frontier bitmap (only when the
      frontier is not full) with no atomics, and hybrid applies Ligra's
      [degree_sum + |frontier| > |E|/20] direction heuristic per round;
    - eager schedules apply the on-current-bucket processing filter, and
      [eager_with_fusion] drains the worker-local bin under the threshold
      as the kernel epilogue (Fig. 7).

    The emitted program speaks a line protocol on stdout so lanes can be
    compared textually: [out <text>] per DSL [print()], then
    [vec <name> v0 v1 ...] for every global vector, sorted by name.
    Programs whose main loop does not match the §5.2 ordered pattern (and
    constructs outside the compiled subset) exit with status 2, which the
    sweep driver treats as "lane unavailable", not as a failure.

    One deliberate divergence: arithmetic is 64-bit two's complement, while
    the interpreter uses OCaml's 63-bit ints. Programs (and the generator
    in {!Check}) must keep values in range; the shared [INT_MAX] sentinel
    is OCaml's [max_int], emitted as [kNullPriority]. *)

(** [generate lowered] renders the full generated program. *)
val generate : Lower.t -> string
