(** Execution of lowered DSL programs against the ordered runtime.

    Sequential statements are interpreted directly. The ordered while loop
    recognized by {!Analysis} is executed by {!Ordered.Engine.run} with the
    user function compiled to a closure — the same engine the native OCaml
    applications use, under the schedule resolved from the program's
    [schedule:] section. Programs that drive the priority queue generically
    (e.g. SetCover's extern phases) interpret the loop directly over a lazy
    backend.

    Extern functions declared with [extern func] are resolved from the
    [externs] registry supplied by the host. *)

type value =
  | V_unit
  | V_int of int
  | V_bool of bool
  | V_string of string
  | V_vector of Parallel.Atomic_array.t
  | V_edgeset of Graphs.Csr.t
  | V_vertexset of Frontier.Vertex_subset.t
  | V_filtered_edges of Graphs.Csr.t * Frontier.Vertex_subset.t
      (** The intermediate value of [edges.from(bucket)]. *)
  | V_pq of Ordered.Priority_queue.t
      (** The priority queue itself; passing [pq] to an extern lets host
          code perform bucket updates (SetCover's extern phases). *)

type extern_fn = value list -> value

type run_result = {
  vectors : (string * int array) list;
      (** Final contents of every global vector (e.g. [dist]). *)
  stats : Ordered.Stats.t option;
      (** Engine counters when the ordered loop ran through the engine. *)
  printed : string list;  (** Output of [print] calls, in order. *)
}

exception Runtime_error of Pos.t * string

(** [run lowered ~pool ~argv ()] executes [main]. [argv.(0)] is
    conventionally the program name, matching the DSL's [argv[1]]-style
    accesses.

    [transform] (default [true]) controls the §5.2 loop replacement:
    when [false], matched while loops are interpreted
    statement-by-statement over a lazy backend instead of running
    through {!Ordered.Engine}. This is the engine-free reference lane of
    the differential sweep ({!Check} [Dsl_sweep]) — the scheduled engine
    and the generated C++ are both judged against it. *)
val run :
  Lower.t ->
  pool:Parallel.Pool.t ->
  argv:string array ->
  ?externs:(string * extern_fn) list ->
  ?transform:bool ->
  unit ->
  run_result
