(* Pretty-printer from the AST back to concrete DSL syntax.

   The output must re-lex, re-parse, and re-typecheck to an AST equal to the
   input (positions excluded — [Ast.equal_program] ignores them). That
   round-trip property is what makes printed programs usable as repro lines
   for the differential checker, and it is pinned by a qcheck property in
   test_dsl. Two consequences shape the code:

   - parenthesization is computed from the parser's precedence table, and the
     comparison level is non-associative (the parser consumes at most one
     comparison operator), so both comparison operands print at the additive
     level;
   - negative integer literals have no surface syntax ([-5] lexes as unary
     minus applied to [5]), so [Int_lit i] with [i < 0] prints as [(0 - n)]
     only under a flag callers of generated programs never need; the program
     generator simply never produces them. *)

let buf_add = Buffer.add_string

(* Parser precedence levels, lowest binds loosest. [parse_comparison] accepts
   exactly one operator whose operands are additive expressions, so both
   sides of a comparison must be printed at [lvl_add] or tighter. *)
let lvl_or = 1

let lvl_and = 2
let lvl_cmp = 3
let lvl_add = 4
let lvl_mul = 5
let lvl_unary = 6
let lvl_postfix = 7

let binop_level = function
  | Ast.Or -> lvl_or
  | Ast.And -> lvl_and
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> lvl_cmp
  | Ast.Add | Ast.Sub -> lvl_add
  | Ast.Mul | Ast.Div -> lvl_mul

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Eq -> "=="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "and"
  | Ast.Or -> "or"

(* Inverse of the lexer's escape handling: only backslash and double quote
   need escaping; a literal newline prints as [\n]. *)
let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec type_str = function
  | Ast.T_int -> "int"
  | Ast.T_bool -> "bool"
  | Ast.T_string -> "string"
  | Ast.T_element name -> name
  | Ast.T_vector (element, value) ->
      Printf.sprintf "vector{%s}(%s)" element (type_str value)
  | Ast.T_vertexset element -> Printf.sprintf "vertexset{%s}" element
  | Ast.T_edgeset { element; src; dst; weighted } ->
      Printf.sprintf "edgeset{%s}(%s, %s%s)" element src dst
        (if weighted then ", int" else "")
  | Ast.T_priority_queue (element, value) ->
      Printf.sprintf "priority_queue{%s}(%s)" element (type_str value)

(* [expr_at level e] prints [e], wrapping in parentheses when [e] binds
   looser than the surrounding [level] demands. *)
let rec expr_at level (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int_lit i ->
      if i >= 0 then string_of_int i
      else Printf.sprintf "(0 - %s)" (string_of_int (-i))
  | Ast.Bool_lit true -> "true"
  | Ast.Bool_lit false -> "false"
  | Ast.String_lit s -> Printf.sprintf "\"%s\"" (escape_string s)
  | Ast.Var name -> name
  | Ast.Index (base, index) ->
      Printf.sprintf "%s[%s]" (expr_at lvl_postfix base) (expr_at 0 index)
  | Ast.Binop (op, lhs, rhs) ->
      let mine = binop_level op in
      let body =
        if mine = lvl_cmp then
          (* Non-associative: the parser parses additive on both sides. *)
          Printf.sprintf "%s %s %s" (expr_at lvl_add lhs) (binop_str op)
            (expr_at lvl_add rhs)
        else
          (* Left-associative: the right operand must bind tighter. *)
          Printf.sprintf "%s %s %s" (expr_at mine lhs) (binop_str op)
            (expr_at (mine + 1) rhs)
      in
      if mine < level then "(" ^ body ^ ")" else body
  | Ast.Unop (op, operand) ->
      let body =
        match op with
        | Ast.Neg -> "-" ^ expr_at lvl_unary operand
        | Ast.Not -> "not " ^ expr_at lvl_unary operand
      in
      if lvl_unary < level then "(" ^ body ^ ")" else body
  | Ast.Call (name, args) -> Printf.sprintf "%s(%s)" name (args_str args)
  | Ast.Method_call (receiver, name, args) ->
      Printf.sprintf "%s.%s(%s)" (expr_at lvl_postfix receiver) name (args_str args)
  | Ast.New_priority_queue { element; value_type; args } ->
      Printf.sprintf "new priority_queue{%s}(%s)(%s)" element (type_str value_type)
        (args_str args)
  | Ast.New_vertexset { element; size } ->
      Printf.sprintf "new vertexset{%s}(%s)" element (expr_at 0 size)

and args_str args = String.concat ", " (List.map (expr_at 0) args)

let expr e = expr_at 0 e

let reduction_str = function
  | Ast.Rd_min -> "min="
  | Ast.Rd_max -> "max="
  | Ast.Rd_plus -> "+="

let rec emit_stmt buf indent (s : Ast.stmt) =
  buf_add buf indent;
  (match s.Ast.label with
  | Some l -> buf_add buf (Printf.sprintf "#%s# " l)
  | None -> ());
  match s.Ast.sdesc with
  | Ast.S_var_decl (name, typ, init) ->
      let init_str =
        match init with Some e -> " = " ^ expr e | None -> ""
      in
      buf_add buf (Printf.sprintf "var %s : %s%s;\n" name (type_str typ) init_str)
  | Ast.S_assign (name, e) -> buf_add buf (Printf.sprintf "%s = %s;\n" name (expr e))
  | Ast.S_index_assign (vec, idx, e) ->
      buf_add buf (Printf.sprintf "%s[%s] = %s;\n" vec (expr idx) (expr e))
  | Ast.S_reduce_assign (rd, vec, idx, e) ->
      buf_add buf
        (Printf.sprintf "%s[%s] %s %s;\n" vec (expr idx) (reduction_str rd) (expr e))
  | Ast.S_expr e -> buf_add buf (expr e ^ ";\n")
  | Ast.S_while (cond, body) ->
      buf_add buf (Printf.sprintf "while %s\n" (expr cond));
      emit_block buf (indent ^ "    ") body;
      buf_add buf (indent ^ "end\n")
  | Ast.S_if (cond, then_branch, else_branch) ->
      buf_add buf (Printf.sprintf "if %s\n" (expr cond));
      emit_block buf (indent ^ "    ") then_branch;
      if else_branch <> [] then begin
        buf_add buf (indent ^ "else\n");
        emit_block buf (indent ^ "    ") else_branch
      end;
      buf_add buf (indent ^ "end\n")
  | Ast.S_delete name -> buf_add buf (Printf.sprintf "delete %s;\n" name)

and emit_block buf indent stmts = List.iter (emit_stmt buf indent) stmts

let emit_const buf (c : Ast.const_decl) =
  let init_str =
    match c.Ast.cinit with Some e -> " = " ^ expr e | None -> ""
  in
  buf_add buf
    (Printf.sprintf "const %s : %s%s;\n" c.Ast.cname (type_str c.Ast.ctyp) init_str)

let emit_extern buf (x : Ast.extern_decl) =
  (* Parameter names are not kept in the AST; invent positional ones. *)
  let params =
    List.mapi (fun i t -> Printf.sprintf "a%d : %s" i (type_str t)) x.Ast.xparams
  in
  buf_add buf
    (Printf.sprintf "extern func %s(%s) : %s;\n" x.Ast.xname
       (String.concat ", " params)
       (type_str x.Ast.xreturn))

let emit_func buf (f : Ast.func_decl) =
  let params =
    List.map (fun (n, t) -> Printf.sprintf "%s : %s" n (type_str t)) f.Ast.params
  in
  buf_add buf (Printf.sprintf "func %s(%s)\n" f.Ast.fname (String.concat ", " params));
  emit_block buf "    " f.Ast.body;
  buf_add buf "end\n"

let emit_schedule buf calls =
  (* The parser collects a flat call list; one chain reproduces it. All
     arguments print as string literals — the parser stringifies every
     argument form, so this is round-trip exact. *)
  buf_add buf "\nschedule:\nprogram";
  List.iter
    (fun (c : Ast.schedule_call) ->
      let args =
        String.concat ", "
          (List.map (fun a -> Printf.sprintf "\"%s\"" (escape_string a)) c.Ast.sc_args)
      in
      buf_add buf (Printf.sprintf "\n    ->%s(%s)" c.Ast.sc_name args))
    calls;
  buf_add buf ";\n"

let program (p : Ast.program) =
  let buf = Buffer.create 1024 in
  List.iter (fun name -> buf_add buf (Printf.sprintf "element %s end\n" name)) p.Ast.elements;
  if p.Ast.elements <> [] then buf_add buf "\n";
  List.iter (emit_const buf) p.Ast.consts;
  if p.Ast.consts <> [] then buf_add buf "\n";
  List.iter (emit_extern buf) p.Ast.externs;
  if p.Ast.externs <> [] then buf_add buf "\n";
  List.iteri
    (fun i f ->
      if i > 0 then buf_add buf "\n";
      emit_func buf f)
    p.Ast.funcs;
  if p.Ast.schedule <> [] then emit_schedule buf p.Ast.schedule;
  Buffer.contents buf
