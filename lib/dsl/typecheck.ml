type error = {
  pos : Pos.t;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "%a: %s" Pos.pp e.pos e.message

(* Internal checker types: [Unknown] unifies with anything (used for
   intrinsics like [load] whose edgeset element types come from the
   declaration they initialize). *)
type ty =
  | Unit
  | Unknown
  | Argv
  | Func of string  (* a user function referenced by name *)
  | T of Ast.typ

let rec compatible a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> true
  | Unit, Unit -> true
  | Argv, Argv -> true
  | Func f, Func g -> f = g
  | T x, T y -> compatible_typ x y
  | _ -> false

and compatible_typ x y =
  match (x, y) with
  (* Element values are vertex ids: allow int <-> element coercion, as
     GraphIt does for vertex arguments. *)
  | Ast.T_int, Ast.T_element _ | Ast.T_element _, Ast.T_int -> true
  | ( Ast.T_edgeset { element = e1; src = s1; dst = d1; weighted = _ },
      Ast.T_edgeset { element = e2; src = s2; dst = d2; weighted = _ } ) ->
      e1 = e2 && s1 = s2 && d1 = d2
  | x, y -> Ast.equal_typ x y

let describe = function
  | Unit -> "unit"
  | Unknown -> "_"
  | Argv -> "argv"
  | Func f -> Printf.sprintf "function %s" f
  | T t -> Ast.show_typ t

type env = {
  program : Ast.program;
  globals : (string, ty) Hashtbl.t;
  mutable errors : error list;
}

let add_error env pos message = env.errors <- { pos; message } :: env.errors

let lookup env locals name =
  match List.assoc_opt name locals with
  | Some t -> Some t
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some t -> Some t
      | None ->
          if name = "argv" then Some Argv
          else if name = "INT_MAX" then Some (T Ast.T_int)
          else if Ast.find_func env.program name <> None then Some (Func name)
          else None)

let is_element env name = List.mem name env.program.Ast.elements

let check_element env pos name =
  if not (is_element env name) then
    add_error env pos (Printf.sprintf "unknown element type %S" name)

let rec check_declared_type env pos = function
  | Ast.T_int | Ast.T_bool | Ast.T_string -> ()
  | Ast.T_element name -> check_element env pos name
  | Ast.T_vector (element, value) ->
      check_element env pos element;
      check_declared_type env pos value
  | Ast.T_vertexset element -> check_element env pos element
  | Ast.T_edgeset { element; src; dst; weighted = _ } ->
      check_element env pos element;
      check_element env pos src;
      check_element env pos dst
  | Ast.T_priority_queue (element, value) ->
      check_element env pos element;
      check_declared_type env pos value

(* ---------------- expressions ---------------- *)

let vector_value_type = function
  | T (Ast.T_vector (_, value)) -> T value
  | _ -> Unknown

let rec infer env locals (e : Ast.expr) : ty =
  match e.Ast.desc with
  | Ast.Int_lit _ -> T Ast.T_int
  | Ast.Bool_lit _ -> T Ast.T_bool
  | Ast.String_lit _ -> T Ast.T_string
  | Ast.Var name -> (
      match lookup env locals name with
      | Some t -> t
      | None ->
          add_error env e.Ast.pos (Printf.sprintf "unbound identifier %S" name);
          Unknown)
  | Ast.Index (base, index) -> (
      let base_ty = infer env locals base in
      let index_ty = infer env locals index in
      match base_ty with
      | Argv ->
          require env index index_ty (T Ast.T_int) "argv index";
          T Ast.T_string
      | T (Ast.T_vector (element, value)) ->
          if
            not
              (compatible index_ty (T Ast.T_int)
              || compatible index_ty (T (Ast.T_element element)))
          then
            add_error env e.Ast.pos
              (Printf.sprintf "vector over %s indexed with %s" element
                 (describe index_ty));
          T value
      | Unknown -> Unknown
      | t ->
          add_error env e.Ast.pos
            (Printf.sprintf "%s cannot be indexed" (describe t));
          Unknown)
  | Ast.Binop (op, lhs, rhs) -> (
      let lt = infer env locals lhs and rt = infer env locals rhs in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
          require env lhs lt (T Ast.T_int) "arithmetic operand";
          require env rhs rt (T Ast.T_int) "arithmetic operand";
          T Ast.T_int
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          require env lhs lt (T Ast.T_int) "comparison operand";
          require env rhs rt (T Ast.T_int) "comparison operand";
          T Ast.T_bool
      | Ast.Eq | Ast.Neq ->
          if not (compatible lt rt) then
            add_error env e.Ast.pos
              (Printf.sprintf "cannot compare %s with %s" (describe lt) (describe rt));
          T Ast.T_bool
      | Ast.And | Ast.Or ->
          require env lhs lt (T Ast.T_bool) "boolean operand";
          require env rhs rt (T Ast.T_bool) "boolean operand";
          T Ast.T_bool)
  | Ast.Unop (Ast.Neg, operand) ->
      require env operand (infer env locals operand) (T Ast.T_int) "negation";
      T Ast.T_int
  | Ast.Unop (Ast.Not, operand) ->
      require env operand (infer env locals operand) (T Ast.T_bool) "'not'";
      T Ast.T_bool
  | Ast.Call (name, args) -> infer_call env locals e.Ast.pos name args
  | Ast.Method_call (receiver, name, args) ->
      infer_method env locals e.Ast.pos receiver name args
  | Ast.New_vertexset { element; size } ->
      check_element env e.Ast.pos element;
      require env size (infer env locals size) (T Ast.T_int)
        "vertexset size";
      T (Ast.T_vertexset element)
  | Ast.New_priority_queue { element; value_type; args } ->
      check_element env e.Ast.pos element;
      List.iter (fun a -> ignore (infer env locals a)) args;
      (match args with
      | [ _; direction; _ ] | [ _; direction; _; _ ] -> (
          match direction.Ast.desc with
          | Ast.String_lit ("lower_first" | "higher_first") -> ()
          | Ast.String_lit other ->
              add_error env direction.Ast.pos
                (Printf.sprintf
                   "priority direction must be \"lower_first\" or \"higher_first\", got %S"
                   other)
          | _ ->
              add_error env direction.Ast.pos
                "priority direction must be a string literal")
      | _ ->
          add_error env e.Ast.pos
            "priority_queue constructor takes (allow_coarsening, direction, \
             priority_vector [, start_vertex])");
      T (Ast.T_priority_queue (element, value_type))

and require env (expr : Ast.expr) actual expected what =
  (* Report at the offending sub-expression, not the enclosing statement:
     shrunk differential repros are read by position. *)
  if not (compatible actual expected) then
    add_error env expr.Ast.pos
      (Printf.sprintf "%s has type %s but %s was expected" what (describe actual)
         (describe expected))

and infer_call env locals pos name args =
  let arg_types = List.map (infer env locals) args in
  let arity n =
    if List.length args <> n then
      add_error env pos
        (Printf.sprintf "%s expects %d argument(s), got %d" name n (List.length args))
  in
  match (name, arg_types) with
  | "load", _ ->
      arity 1;
      List.iter2
        (fun t a -> require env a t (T Ast.T_string) "load argument")
        arg_types args;
      Unknown (* an edgeset whose element types come from the declaration *)
  | "symmetrize", _ ->
      arity 1;
      Unknown
  | "print", _ ->
      arity 1;
      Unit
  | "atoi", _ ->
      arity 1;
      List.iter2
        (fun t a -> require env a t (T Ast.T_string) "atoi argument")
        arg_types args;
      T Ast.T_int
  | _ -> (
      match List.find_opt (fun x -> x.Ast.xname = name) env.program.Ast.externs with
      | Some ext ->
          if List.length ext.Ast.xparams <> List.length args then
            add_error env pos
              (Printf.sprintf "extern %s expects %d argument(s), got %d" name
                 (List.length ext.Ast.xparams) (List.length args));
          T ext.Ast.xreturn
      | None ->
          add_error env pos (Printf.sprintf "unknown function %S" name);
          Unknown)

and infer_method env locals pos receiver name args =
  let receiver_ty = infer env locals receiver in
  let arg_types = List.map (infer env locals) args in
  let arity n =
    if List.length args <> n then
      add_error env pos
        (Printf.sprintf "%s expects %d argument(s), got %d" name n (List.length args))
  in
  let vertex_arg i =
    match List.nth_opt arg_types i with
    | Some t ->
        if not (compatible t (T Ast.T_int)) then
          add_error env pos
            (Printf.sprintf "argument %d of %s must be a vertex" (i + 1) name)
    | None -> ()
  in
  match receiver_ty with
  | T (Ast.T_priority_queue _) | Unknown -> (
      match name with
      | "finished" ->
          arity 0;
          T Ast.T_bool
      | "finishedVertex" ->
          arity 1;
          vertex_arg 0;
          T Ast.T_bool
      | "dequeueReadySet" ->
          arity 0;
          T (Ast.T_vertexset "Vertex")
      | "getCurrentPriority" | "get_current_priority" ->
          arity 0;
          T Ast.T_int
      | "updatePriorityMin" | "updatePriorityMax" ->
          if List.length args <> 2 && List.length args <> 3 then
            add_error env pos
              (Printf.sprintf "%s takes (vertex, [old_value,] new_value)" name);
          vertex_arg 0;
          Unit
      | "updatePrioritySum" ->
          if List.length args <> 2 && List.length args <> 3 then
            add_error env pos
              "updatePrioritySum takes (vertex, sum_diff [, min_threshold])";
          vertex_arg 0;
          Unit
      | _ ->
          add_error env pos (Printf.sprintf "priority queues have no method %S" name);
          Unknown)
  | T (Ast.T_edgeset _) -> (
      match name with
      | "from" ->
          arity 1;
          (match arg_types with
          | [ T (Ast.T_vertexset _) ] | [ Unknown ] -> ()
          | _ -> add_error env pos "from() expects a vertexset");
          receiver_ty
      | "applyUpdatePriority" ->
          arity 1;
          (match (args, arg_types) with
          | [ { Ast.desc = Ast.Var fname; _ } ], _ -> (
              match Ast.find_func env.program fname with
              | Some f ->
                  let n = List.length f.Ast.params in
                  if n <> 2 && n <> 3 then
                    add_error env pos
                      (Printf.sprintf
                         "user function %s must take (src, dst [, weight])" fname)
              | None ->
                  add_error env pos (Printf.sprintf "unknown user function %S" fname))
          | _ -> add_error env pos "applyUpdatePriority expects a function name");
          Unit
      | "getOutDegrees" ->
          arity 0;
          T (Ast.T_vector ("Vertex", Ast.T_int))
      | "getMaxWeight" ->
          arity 0;
          T Ast.T_int
      | "applyModified" ->
          arity 2;
          (match args with
          | [ { Ast.desc = Ast.Var fname; _ }; { Ast.desc = Ast.Var vec; _ } ] ->
              (match Ast.find_func env.program fname with
              | Some f ->
                  let n = List.length f.Ast.params in
                  if n <> 2 && n <> 3 then
                    add_error env pos
                      (Printf.sprintf
                         "user function %s must take (src, dst [, weight])" fname)
              | None ->
                  add_error env pos (Printf.sprintf "unknown user function %S" fname));
              (match lookup env locals vec with
              | Some (T (Ast.T_vector _)) | Some Unknown -> ()
              | _ ->
                  add_error env pos
                    "applyModified's second argument must be a tracked vector")
          | _ ->
              add_error env pos
                "applyModified expects (function_name, tracked_vector)");
          T (Ast.T_vertexset "Vertex")
      | _ ->
          add_error env pos (Printf.sprintf "edgesets have no method %S" name);
          Unknown)
  | T (Ast.T_vertexset _) -> (
      match name with
      | "addVertex" ->
          arity 1;
          vertex_arg 0;
          Unit
      | "getVertexSetSize" ->
          arity 0;
          T Ast.T_int
      | _ ->
          add_error env pos (Printf.sprintf "vertexsets have no method %S" name);
          Unknown)
  | t ->
      add_error env pos
        (Printf.sprintf "%s has no method %S" (describe t) name);
      Unknown

(* ---------------- statements ---------------- *)

let rec check_stmt env locals (s : Ast.stmt) : (string * ty) list =
  match s.Ast.sdesc with
  | Ast.S_var_decl (name, typ, init) ->
      check_declared_type env s.Ast.spos typ;
      (match init with
      | Some e ->
          let t = infer env locals e in
          require env e t (T typ) (Printf.sprintf "initializer of %s" name)
      | None -> ());
      (name, T typ) :: locals
  | Ast.S_assign (name, e) ->
      let t = infer env locals e in
      (match lookup env locals name with
      | Some target -> require env e t target (Printf.sprintf "assignment to %s" name)
      | None -> add_error env s.Ast.spos (Printf.sprintf "unbound identifier %S" name));
      locals
  | Ast.S_index_assign (vec, idx, e) ->
      let vec_ty =
        match lookup env locals vec with
        | Some t -> t
        | None ->
            add_error env s.Ast.spos (Printf.sprintf "unbound identifier %S" vec);
            Unknown
      in
      ignore (infer env locals idx);
      let value_ty = infer env locals e in
      require env e value_ty (vector_value_type vec_ty)
        (Printf.sprintf "assignment into %s" vec);
      locals
  | Ast.S_reduce_assign (_rd, vec, idx, e) ->
      let vec_ty =
        match lookup env locals vec with
        | Some t -> t
        | None ->
            add_error env s.Ast.spos (Printf.sprintf "unbound identifier %S" vec);
            Unknown
      in
      (match vec_ty with
      | T (Ast.T_vector _) | Unknown -> ()
      | t ->
          add_error env s.Ast.spos
            (Printf.sprintf "reduction target %s is %s, not a vector" vec (describe t)));
      ignore (infer env locals idx);
      let value_ty = infer env locals e in
      require env e value_ty (vector_value_type vec_ty)
        (Printf.sprintf "reduction into %s" vec);
      locals
  | Ast.S_expr e ->
      ignore (infer env locals e);
      locals
  | Ast.S_while (cond, body) ->
      let t = infer env locals cond in
      require env cond t (T Ast.T_bool) "while condition";
      ignore (check_block env locals body);
      locals
  | Ast.S_if (cond, then_branch, else_branch) ->
      let t = infer env locals cond in
      require env cond t (T Ast.T_bool) "if condition";
      ignore (check_block env locals then_branch);
      ignore (check_block env locals else_branch);
      locals
  | Ast.S_delete name ->
      (match lookup env locals name with
      | Some (T (Ast.T_vertexset _)) | Some Unknown -> ()
      | Some t ->
          add_error env s.Ast.spos
            (Printf.sprintf "delete expects a vertexset, %s is %s" name (describe t))
      | None -> add_error env s.Ast.spos (Printf.sprintf "unbound identifier %S" name));
      locals

and check_block env locals stmts =
  List.fold_left (fun locals s -> check_stmt env locals s) locals stmts

let check program =
  let env = { program; globals = Hashtbl.create 16; errors = [] } in
  (* Globals: constants. *)
  List.iter
    (fun (c : Ast.const_decl) ->
      check_declared_type env c.Ast.cpos c.Ast.ctyp;
      if Hashtbl.mem env.globals c.Ast.cname then
        add_error env c.Ast.cpos (Printf.sprintf "duplicate constant %S" c.Ast.cname);
      Hashtbl.replace env.globals c.Ast.cname (T c.Ast.ctyp))
    program.Ast.consts;
  (* Constant initializers (INT_MAX as a vector initializer is idiomatic). *)
  List.iter
    (fun (c : Ast.const_decl) ->
      match (c.Ast.cinit, c.Ast.ctyp) with
      | None, _ -> ()
      | Some { Ast.desc = Ast.Var "INT_MAX"; _ }, Ast.T_vector (_, Ast.T_int) -> ()
      | Some { Ast.desc = Ast.Int_lit _; _ }, Ast.T_vector (_, Ast.T_int) -> ()
      | Some e, _ ->
          let t = infer env [] e in
          require env e t (T c.Ast.ctyp)
            (Printf.sprintf "initializer of %s" c.Ast.cname))
    program.Ast.consts;
  (* Function bodies. *)
  List.iter
    (fun (f : Ast.func_decl) ->
      List.iter (fun (_, t) -> check_declared_type env f.Ast.fpos t) f.Ast.params;
      let locals = List.map (fun (name, t) -> (name, T t)) f.Ast.params in
      ignore (check_block env locals f.Ast.body))
    program.Ast.funcs;
  if Ast.find_func program "main" = None then
    add_error env Pos.dummy "program has no 'main' function";
  match List.rev env.errors with
  | [] -> Ok ()
  | errors -> Error errors
