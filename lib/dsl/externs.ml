module Atomic_array = Parallel.Atomic_array
module Csr = Graphs.Csr
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Vertex_subset = Frontier.Vertex_subset

let extern_error fmt =
  Printf.ksprintf (fun msg -> raise (Interp.Runtime_error (Pos.dummy, msg))) fmt

let astar ~coords ~target =
  let heuristic = function
    | [ Interp.V_int v ] ->
        Interp.V_int (Graphs.Coords.scaled_distance ~scale:100.0 coords v target)
    | _ -> extern_error "heuristic(v) expects a vertex"
  in
  [ ("heuristic", heuristic) ]

let ilog2 d =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 d

(* Sequential membership iteration over one set (self + out-neighbors),
   used by the greedy winner-commit phase — order-dependent per-set work,
   not a frontier sweep, so it stays off [Traverse.Edge_map]. *)
let iter_set graph s f =
  f s;
  Csr.iter_out graph s (fun v _w -> f v)

let setcover () =
  (* Shared state across extern calls within one program run. *)
  let covered = ref [||] in
  let in_cover = ref None in
  let graph = ref None in
  let uncovered = ref 0 in
  let init_priorities = function
    | [ Interp.V_edgeset g; Interp.V_vector pri ] ->
        let n = Csr.num_vertices g in
        graph := Some g;
        covered := Array.make n false;
        in_cover := Some (Array.make n false);
        uncovered := n;
        for s = 0 to n - 1 do
          Atomic_array.set pri s (ilog2 (Csr.out_degree g s + 1))
        done;
        Interp.V_int n
    | _ -> extern_error "init_priorities(edges, pri) expects an edgeset and a vector"
  in
  let process_bucket = function
    | [ Interp.V_pq pq; Interp.V_vertexset bucket; Interp.V_int k ] ->
        let g =
          match !graph with
          | Some g -> g
          | None -> extern_error "process_bucket called before init_priorities"
        in
        let chosen =
          match !in_cover with
          | Some c -> c
          | None -> assert false
        in
        let covered = !covered in
        let uncovered_degree s =
          let d = ref 0 in
          iter_set g s (fun e -> if not covered.(e) then incr d);
          !d
        in
        let ctx = { Pq.tid = 0; use_atomics = false } in
        Array.iter
          (fun s ->
            if not chosen.(s) then begin
              let d = uncovered_degree s in
              if d = 0 then
                Parallel.Atomic_array.set (Pq.priorities pq) s
                  Bucket_order.null_priority
              else begin
                let p = ilog2 d in
                if p <> k then
                  (* Stale bucket value: refile under the true priority. *)
                  Pq.set_priority pq ctx s p
                else begin
                  (* Greedy selection within the highest bucket. *)
                  chosen.(s) <- true;
                  Parallel.Atomic_array.set (Pq.priorities pq) s
                    Bucket_order.null_priority;
                  iter_set g s (fun e ->
                      if not covered.(e) then begin
                        covered.(e) <- true;
                        decr uncovered
                      end)
                end
              end
            end)
          (Vertex_subset.sparse_members bucket);
        Interp.V_int !uncovered
    | _ -> extern_error "process_bucket(pq, bucket, k) has the wrong arguments"
  in
  ( [ ("init_priorities", init_priorities); ("process_bucket", process_bucket) ],
    fun () -> !in_cover )
