exception Error of Pos.t * string

type state = {
  tokens : Token.located array;
  mutable cursor : int;
}

let current st = st.tokens.(st.cursor)
let peek_token st = (current st).Token.token
let peek_pos st = (current st).Token.pos

let advance st =
  if st.cursor < Array.length st.tokens - 1 then st.cursor <- st.cursor + 1

let fail st msg = raise (Error (peek_pos st, msg))

let expect st token =
  if peek_token st = token then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Token.describe token)
         (Token.describe (peek_token st)))

let expect_ident st =
  match peek_token st with
  | Token.Ident name ->
      advance st;
      name
  | t -> fail st (Printf.sprintf "expected an identifier but found %s" (Token.describe t))

let accept st token =
  if peek_token st = token then begin
    advance st;
    true
  end
  else false

(* ---------------- types ---------------- *)

let rec parse_type st =
  match peek_token st with
  | Token.Ident "int" ->
      advance st;
      Ast.T_int
  | Token.Ident "bool" ->
      advance st;
      Ast.T_bool
  | Token.Ident "string" ->
      advance st;
      Ast.T_string
  | Token.Ident "vector" ->
      advance st;
      expect st Token.Lbrace;
      let element = expect_ident st in
      expect st Token.Rbrace;
      expect st Token.Lparen;
      let value = parse_type st in
      expect st Token.Rparen;
      Ast.T_vector (element, value)
  | Token.Ident "vertexset" ->
      advance st;
      expect st Token.Lbrace;
      let element = expect_ident st in
      expect st Token.Rbrace;
      Ast.T_vertexset element
  | Token.Ident "edgeset" ->
      advance st;
      expect st Token.Lbrace;
      let element = expect_ident st in
      expect st Token.Rbrace;
      expect st Token.Lparen;
      let src = expect_ident st in
      expect st Token.Comma;
      let dst = expect_ident st in
      let weighted =
        if accept st Token.Comma then begin
          (match peek_token st with
          | Token.Ident "int" -> advance st
          | t ->
              fail st
                (Printf.sprintf "expected weight type 'int' but found %s"
                   (Token.describe t)));
          true
        end
        else false
      in
      expect st Token.Rparen;
      Ast.T_edgeset { element; src; dst; weighted }
  | Token.Ident "priority_queue" ->
      advance st;
      expect st Token.Lbrace;
      let element = expect_ident st in
      expect st Token.Rbrace;
      expect st Token.Lparen;
      let value = parse_type st in
      expect st Token.Rparen;
      Ast.T_priority_queue (element, value)
  | Token.Ident name ->
      advance st;
      Ast.T_element name
  | t -> fail st (Printf.sprintf "expected a type but found %s" (Token.describe t))

(* ---------------- expressions ---------------- *)

let mk pos desc = { Ast.desc; pos }

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek_token st = Token.Kw_or do
    let pos = peek_pos st in
    advance st;
    let rhs = parse_and st in
    lhs := mk pos (Ast.Binop (Ast.Or, !lhs, rhs))
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_comparison st) in
  while peek_token st = Token.Kw_and do
    let pos = peek_pos st in
    advance st;
    let rhs = parse_comparison st in
    lhs := mk pos (Ast.Binop (Ast.And, !lhs, rhs))
  done;
  !lhs

and parse_comparison st =
  let lhs = parse_additive st in
  let op =
    match peek_token st with
    | Token.Eq -> Some Ast.Eq
    | Token.Neq -> Some Ast.Neq
    | Token.Lt -> Some Ast.Lt
    | Token.Le -> Some Ast.Le
    | Token.Gt -> Some Ast.Gt
    | Token.Ge -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      let pos = peek_pos st in
      advance st;
      let rhs = parse_additive st in
      mk pos (Ast.Binop (op, lhs, rhs))

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec go () =
    match peek_token st with
    | Token.Plus ->
        let pos = peek_pos st in
        advance st;
        let rhs = parse_multiplicative st in
        lhs := mk pos (Ast.Binop (Ast.Add, !lhs, rhs));
        go ()
    | Token.Minus ->
        let pos = peek_pos st in
        advance st;
        let rhs = parse_multiplicative st in
        lhs := mk pos (Ast.Binop (Ast.Sub, !lhs, rhs));
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let rec go () =
    match peek_token st with
    | Token.Star ->
        let pos = peek_pos st in
        advance st;
        let rhs = parse_unary st in
        lhs := mk pos (Ast.Binop (Ast.Mul, !lhs, rhs));
        go ()
    | Token.Slash ->
        let pos = peek_pos st in
        advance st;
        let rhs = parse_unary st in
        lhs := mk pos (Ast.Binop (Ast.Div, !lhs, rhs));
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary st =
  match peek_token st with
  | Token.Minus ->
      let pos = peek_pos st in
      advance st;
      let operand = parse_unary st in
      mk pos (Ast.Unop (Ast.Neg, operand))
  | Token.Kw_not ->
      let pos = peek_pos st in
      advance st;
      let operand = parse_unary st in
      mk pos (Ast.Unop (Ast.Not, operand))
  | _ -> parse_postfix st

and parse_postfix st =
  let base = ref (parse_primary st) in
  let rec go () =
    match peek_token st with
    | Token.Dot ->
        let pos = peek_pos st in
        advance st;
        let name = expect_ident st in
        expect st Token.Lparen;
        let args = parse_args st in
        expect st Token.Rparen;
        base := mk pos (Ast.Method_call (!base, name, args));
        go ()
    | Token.Lbracket ->
        let pos = peek_pos st in
        advance st;
        let index = parse_expr st in
        expect st Token.Rbracket;
        base := mk pos (Ast.Index (!base, index));
        go ()
    | _ -> ()
  in
  go ();
  !base

and parse_args st =
  if peek_token st = Token.Rparen then []
  else begin
    let first = parse_expr st in
    let rec go acc = if accept st Token.Comma then go (parse_expr st :: acc) else acc in
    List.rev (go [ first ])
  end

and parse_primary st =
  let pos = peek_pos st in
  match peek_token st with
  | Token.Int_lit i ->
      advance st;
      mk pos (Ast.Int_lit i)
  | Token.String_lit s ->
      advance st;
      mk pos (Ast.String_lit s)
  | Token.Kw_true ->
      advance st;
      mk pos (Ast.Bool_lit true)
  | Token.Kw_false ->
      advance st;
      mk pos (Ast.Bool_lit false)
  | Token.Lparen ->
      advance st;
      let e = parse_expr st in
      expect st Token.Rparen;
      e
  | Token.Kw_new -> (
      advance st;
      match peek_token st with
      | Token.Ident "vertexset" ->
          advance st;
          expect st Token.Lbrace;
          let element = expect_ident st in
          expect st Token.Rbrace;
          expect st Token.Lparen;
          let size = parse_expr st in
          expect st Token.Rparen;
          mk pos (Ast.New_vertexset { element; size })
      | Token.Ident "priority_queue" ->
          advance st;
          expect st Token.Lbrace;
          let element = expect_ident st in
          expect st Token.Rbrace;
          expect st Token.Lparen;
          let value_type = parse_type st in
          expect st Token.Rparen;
          expect st Token.Lparen;
          let args = parse_args st in
          expect st Token.Rparen;
          mk pos (Ast.New_priority_queue { element; value_type; args })
      | t ->
          fail st
            (Printf.sprintf
               "expected 'priority_queue' or 'vertexset' after 'new' but found %s"
               (Token.describe t)))
  | Token.Ident name -> (
      advance st;
      match peek_token st with
      | Token.Lparen ->
          advance st;
          let args = parse_args st in
          expect st Token.Rparen;
          mk pos (Ast.Call (name, args))
      | _ -> mk pos (Ast.Var name))
  | t -> fail st (Printf.sprintf "expected an expression but found %s" (Token.describe t))

(* ---------------- statements ---------------- *)

let rec parse_stmt st =
  let label =
    match peek_token st with
    | Token.Label l ->
        advance st;
        Some l
    | _ -> None
  in
  let pos = peek_pos st in
  let sdesc =
    match peek_token st with
    | Token.Kw_var ->
        advance st;
        let name = expect_ident st in
        expect st Token.Colon;
        let typ = parse_type st in
        let init = if accept st Token.Assign then Some (parse_expr st) else None in
        expect st Token.Semicolon;
        Ast.S_var_decl (name, typ, init)
    | Token.Kw_while ->
        advance st;
        let cond = parse_expr st in
        let body = parse_stmts_until st [ Token.Kw_end ] in
        expect st Token.Kw_end;
        Ast.S_while (cond, body)
    | Token.Kw_if ->
        advance st;
        let cond = parse_expr st in
        let then_branch = parse_stmts_until st [ Token.Kw_end; Token.Kw_else ] in
        let else_branch =
          if accept st Token.Kw_else then parse_stmts_until st [ Token.Kw_end ] else []
        in
        expect st Token.Kw_end;
        Ast.S_if (cond, then_branch, else_branch)
    | Token.Kw_delete ->
        advance st;
        let name = expect_ident st in
        expect st Token.Semicolon;
        Ast.S_delete name
    | _ -> (
        let e = parse_expr st in
        let reduction =
          match peek_token st with
          | Token.Min_assign -> Some Ast.Rd_min
          | Token.Max_assign -> Some Ast.Rd_max
          | Token.Plus_assign -> Some Ast.Rd_plus
          | _ -> None
        in
        match (reduction, peek_token st) with
        | Some rd, _ -> (
            advance st;
            let rhs = parse_expr st in
            expect st Token.Semicolon;
            match e.Ast.desc with
            | Ast.Index ({ Ast.desc = Ast.Var vec; _ }, idx) ->
                Ast.S_reduce_assign (rd, vec, idx, rhs)
            | _ ->
                (* Point at the target expression itself, not the statement
                   start (the statement may begin with a label). *)
                raise
                  (Error
                     (e.Ast.pos, "reduction assignment requires a 'vector[index]' target")))
        | None, Token.Assign -> (
            advance st;
            let rhs = parse_expr st in
            expect st Token.Semicolon;
            match e.Ast.desc with
            | Ast.Var name -> Ast.S_assign (name, rhs)
            | Ast.Index ({ Ast.desc = Ast.Var vec; _ }, idx) ->
                Ast.S_index_assign (vec, idx, rhs)
            | _ -> raise (Error (e.Ast.pos, "invalid assignment target")))
        | None, _ ->
            expect st Token.Semicolon;
            Ast.S_expr e)
  in
  { Ast.sdesc; spos = pos; label }

and parse_stmts_until st terminators =
  let rec go acc =
    if List.mem (peek_token st) terminators || peek_token st = Token.Eof then List.rev acc
    else go (parse_stmt st :: acc)
  in
  go []

(* ---------------- declarations ---------------- *)

let parse_params st =
  expect st Token.Lparen;
  if accept st Token.Rparen then []
  else begin
    let parse_one () =
      let name = expect_ident st in
      expect st Token.Colon;
      let typ = parse_type st in
      (name, typ)
    in
    let first = parse_one () in
    let rec go acc = if accept st Token.Comma then go (parse_one () :: acc) else acc in
    let params = List.rev (go [ first ]) in
    expect st Token.Rparen;
    params
  end

let parse_schedule_section st =
  (* program -> configX("a", "b") -> configY(...) ; ... *)
  let calls = ref [] in
  let rec parse_chain () =
    let root = expect_ident st in
    if root <> "program" then
      fail st (Printf.sprintf "schedule chains must start with 'program', got %S" root);
    let rec links () =
      if accept st Token.Arrow then begin
        let pos = peek_pos st in
        let name = expect_ident st in
        expect st Token.Lparen;
        let args = ref [] in
        let parse_arg () =
          match peek_token st with
          | Token.String_lit s ->
              advance st;
              args := s :: !args
          | Token.Int_lit i ->
              advance st;
              args := string_of_int i :: !args
          | Token.Ident s ->
              advance st;
              args := s :: !args
          | t -> fail st (Printf.sprintf "unexpected schedule argument %s" (Token.describe t))
        in
        if peek_token st <> Token.Rparen then begin
          parse_arg ();
          while accept st Token.Comma do
            parse_arg ()
          done
        end;
        expect st Token.Rparen;
        calls := { Ast.sc_name = name; sc_args = List.rev !args; sc_pos = pos } :: !calls;
        links ()
      end
    in
    links ();
    expect st Token.Semicolon;
    if peek_token st <> Token.Eof then parse_chain ()
  in
  if peek_token st <> Token.Eof then parse_chain ();
  List.rev !calls

let parse tokens =
  let st = { tokens; cursor = 0 } in
  let elements = ref [] in
  let consts = ref [] in
  let externs = ref [] in
  let funcs = ref [] in
  let schedule = ref [] in
  let rec loop () =
    match peek_token st with
    | Token.Eof -> ()
    | Token.Kw_element ->
        advance st;
        let name = expect_ident st in
        expect st Token.Kw_end;
        elements := name :: !elements;
        loop ()
    | Token.Kw_const ->
        let pos = peek_pos st in
        advance st;
        let name = expect_ident st in
        expect st Token.Colon;
        let typ = parse_type st in
        let init = if accept st Token.Assign then Some (parse_expr st) else None in
        expect st Token.Semicolon;
        consts := { Ast.cname = name; ctyp = typ; cinit = init; cpos = pos } :: !consts;
        loop ()
    | Token.Kw_extern ->
        let pos = peek_pos st in
        advance st;
        expect st Token.Kw_func;
        let name = expect_ident st in
        let params = parse_params st in
        let return_type = if accept st Token.Colon then parse_type st else Ast.T_int in
        expect st Token.Semicolon;
        externs :=
          { Ast.xname = name; xparams = List.map snd params; xreturn = return_type;
            xpos = pos }
          :: !externs;
        loop ()
    | Token.Kw_func ->
        let pos = peek_pos st in
        advance st;
        let name = expect_ident st in
        let params = parse_params st in
        let body = parse_stmts_until st [ Token.Kw_end ] in
        expect st Token.Kw_end;
        funcs := { Ast.fname = name; params; body; fpos = pos } :: !funcs;
        loop ()
    | Token.Kw_schedule ->
        advance st;
        expect st Token.Colon;
        schedule := parse_schedule_section st
    | t -> fail st (Printf.sprintf "expected a declaration but found %s" (Token.describe t))
  in
  loop ();
  expect st Token.Eof;
  {
    Ast.elements = List.rev !elements;
    consts = List.rev !consts;
    externs = List.rev !externs;
    funcs = List.rev !funcs;
    schedule = !schedule;
  }

let parse_string source =
  match Lexer.tokenize source with
  | tokens -> parse tokens
  | exception Lexer.Error (pos, msg) -> raise (Error (pos, msg))
