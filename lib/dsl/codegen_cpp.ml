(* C++ code generation against the Edge_map runtime semantics.

   The old backend printed the *shape* of the paper's Fig. 9/10 code against
   an imaginary runtime header; this one emits a complete, compilable
   program whose observable behaviour matches the interpreter, so the
   differential checker can run compiled-vs-interp lanes. Everything the
   emitted runtime does is a sequential port of the OCaml structures the
   interpreter executes on:

   - [LazyBuckets]   <- lib/bucketing/lazy_buckets.ml   (window + overflow +
                        stamp dedup + stale-key drops on re-rooting)
   - [EagerBuckets]  <- lib/bucketing/eager_buckets.ml  (slot clamp, local
                        bins, bucket-fusion take_local)
   - [PriorityQueue] <- lib/ordered/priority_queue.ml   (pending-prefetch
                        finished/dequeue protocol, bulk-update buffer,
                        constant-sum histogram flush with floor clamping)
   - edge_map_*      <- lib/traverse/edge_map.ml        (push over sparse
                        members with the atomics contract, pull over the
                        transpose gated by a frontier bitmap, Ligra's
                        |E|/20 hybrid heuristic)
   - the ordered loop skeleton <- lib/ordered/engine.ml (processing filter
                        for eager strategies, fused drain epilogue, stop
                        vertex checked before finished())

   Behavioural fidelity rules worth keeping in mind when editing:
   - the sentinel is OCaml's max_int (kNullPriority); arithmetic is 64-bit
     here vs 63-bit in OCaml, so programs must stay in range;
   - under push the destination cells are shared and updates go through the
     atomic_* helpers; under pull the iterating worker owns the destination
     row and the plain_* variants apply. The sequential build makes both
     plain read-modify-writes, but the call sites mark exactly where a
     parallel backend must CAS — and the two variants genuinely differ for
     updatePriorityMax (the plain form refuses to revive the null sentinel).

   Programs that do not match the §5.2 ordered-loop pattern compile to a
   stub that exits with status 2 ("lane unavailable" to the sweep driver);
   constructs outside the compiled subset emit a trap() with the same
   status, so generation itself is total. *)

module Schedule = Ordered.Schedule
module Order = Bucketing.Bucket_order

(* ---------------- emission helpers ---------------- *)

type kind = K_int | K_bool | K_str

type gkind =
  | G_vector
  | G_edgeset
  | G_pq
  | G_scalar of kind

type env = {
  buf : Buffer.t;
  mutable indent : int;
  program : Ast.program;
  schedule : Schedule.t;
  pq_info : Analysis.pq_info;
  loop : Analysis.ordered_loop;
  globals : (string * gkind) list;  (* DSL name -> classification *)
  (* derived, baked into the emitted constants *)
  delta : int;
  lower_first : bool;
  eager : bool;
  fusion : bool;
  constant_sum : int option;
  mutable locals : (string * kind) list;
  (* "use_atomics" inside the UDF, "true" in main (sequential context) *)
  mutable atomics : string;
}

let line env fmt =
  Printf.ksprintf
    (fun s ->
      if s = "" then Buffer.add_char env.buf '\n'
      else begin
        Buffer.add_string env.buf (String.make (2 * env.indent) ' ');
        Buffer.add_string env.buf s;
        Buffer.add_char env.buf '\n'
      end)
    fmt

(* Verbatim runtime text: emitted as-is (already indented). *)
let raw env s = Buffer.add_string env.buf s

let indented env f =
  env.indent <- env.indent + 1;
  f ();
  env.indent <- env.indent - 1

(* C++ keywords plus every identifier the emitted runtime uses at namespace
   scope; DSL names that collide get a trailing underscore. *)
let cpp_reserved =
  [
    "alignas"; "alignof"; "and"; "asm"; "auto"; "bool"; "break"; "case";
    "catch"; "char"; "class"; "const"; "constexpr"; "continue"; "default";
    "delete"; "do"; "double"; "else"; "enum"; "explicit"; "export"; "extern";
    "false"; "float"; "for"; "friend"; "goto"; "if"; "inline"; "int"; "long";
    "mutable"; "namespace"; "new"; "not"; "nullptr"; "operator"; "or";
    "private"; "protected"; "public"; "register"; "return"; "short"; "signed";
    "sizeof"; "static"; "struct"; "switch"; "template"; "this"; "throw";
    "true"; "try"; "typedef"; "typeid"; "typename"; "union"; "unsigned";
    "using"; "virtual"; "void"; "volatile"; "while";
    (* runtime identifiers *)
    "i64"; "kNullPriority"; "kNullKey"; "kMinCursor"; "kLowerFirst";
    "kDelta"; "kNumOpenBuckets"; "kFusionThreshold"; "kConstantSumDiff";
    "die"; "trap"; "arg"; "to_i64"; "print_int"; "print_bool"; "print_str";
    "dump_vec"; "g_argc"; "g_argv"; "Edge"; "EdgeList"; "Graph";
    "load_edges"; "symmetrize_edges"; "csr_of"; "transpose_of";
    "out_degrees"; "max_weight"; "key_of_priority"; "representative_priority";
    "atomic_write_min"; "atomic_write_max"; "plain_write_min";
    "plain_write_max"; "reduce_min"; "reduce_max"; "reduce_plus";
    "LazyBuckets"; "EagerBuckets"; "PriorityQueue"; "frontier";
    "in_frontier"; "dense_threshold"; "edge_map_push"; "edge_map_pull";
    "edge_map_round"; "main"; "argc"; "argv"; "stop_v"; "use_atomics";
  ]

let cpp_name n = if List.mem n cpp_reserved then n ^ "_" else n

let gname env n =
  match List.assoc_opt n env.globals with
  | Some _ -> cpp_name n
  | None -> cpp_name n

let udf_cpp_name name = "udf_" ^ cpp_name name

let kind_of_typ = function
  | Ast.T_bool -> K_bool
  | Ast.T_string -> K_str
  | _ -> K_int

let ctype_of_kind = function
  | K_int -> "i64"
  | K_bool -> "bool"
  | K_str -> "const char*"

(* ---------------- expression translation ---------------- *)

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Eq -> "=="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

let kind_of env (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int_lit _ -> K_int
  | Ast.Bool_lit _ -> K_bool
  | Ast.String_lit _ -> K_str
  | Ast.Var v -> (
      match List.assoc_opt v env.locals with
      | Some k -> k
      | None -> (
          match List.assoc_opt v env.globals with
          | Some (G_scalar k) -> k
          | _ -> K_int))
  | Ast.Index ({ Ast.desc = Ast.Var "argv"; _ }, _) -> K_str
  | Ast.Index _ -> K_int
  | Ast.Binop ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or), _, _)
    -> K_bool
  | Ast.Binop _ -> K_int
  | Ast.Unop (Ast.Not, _) -> K_bool
  | Ast.Unop (Ast.Neg, _) -> K_int
  | Ast.Method_call (_, ("finished" | "finishedVertex"), _) -> K_bool
  | _ -> K_int

let trap_expr what = Printf.sprintf "trap(\"%s\")" (String.escaped what)

let rec cexpr env (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int_lit i -> string_of_int i
  | Ast.Bool_lit b -> if b then "true" else "false"
  | Ast.String_lit s -> Printf.sprintf "%S" s
  | Ast.Var v -> (
      match List.assoc_opt v env.locals with
      | Some _ -> cpp_name v
      | None -> (
          match List.assoc_opt v env.globals with
          | Some _ -> cpp_name v
          | None -> if v = "INT_MAX" then "kNullPriority" else cpp_name v))
  | Ast.Index ({ Ast.desc = Ast.Var "argv"; _ }, idx) ->
      Printf.sprintf "arg(%s)" (cexpr env idx)
  | Ast.Index (base, idx) ->
      Printf.sprintf "%s[%s]" (cexpr env base) (cexpr env idx)
  | Ast.Binop (op, lhs, rhs) ->
      Printf.sprintf "(%s %s %s)" (cexpr env lhs) (binop_str op) (cexpr env rhs)
  | Ast.Unop (Ast.Neg, x) -> Printf.sprintf "(-%s)" (cexpr env x)
  | Ast.Unop (Ast.Not, x) -> Printf.sprintf "(!%s)" (cexpr env x)
  | Ast.Call ("atoi", [ x ]) -> Printf.sprintf "to_i64(%s)" (cexpr env x)
  | Ast.Call ("load", [ x ]) ->
      Printf.sprintf "csr_of(load_edges(%s))" (cexpr env x)
  | Ast.Call ("symmetrize", [ { Ast.desc = Ast.Call ("load", [ x ]); _ } ]) ->
      Printf.sprintf "csr_of(symmetrize_edges(load_edges(%s)))" (cexpr env x)
  | Ast.Call (name, _) -> trap_expr (Printf.sprintf "call to %s()" name)
  | Ast.Method_call ({ Ast.desc = Ast.Var recv; _ }, m, args)
    when recv = env.pq_info.Analysis.pq_name ->
      cexpr_pq env m args
  | Ast.Method_call ({ Ast.desc = Ast.Var recv; _ }, "getOutDegrees", [])
    when List.assoc_opt recv env.globals = Some G_edgeset ->
      Printf.sprintf "out_degrees(%s)" (cpp_name recv)
  | Ast.Method_call ({ Ast.desc = Ast.Var recv; _ }, "getMaxWeight", [])
    when List.assoc_opt recv env.globals = Some G_edgeset ->
      Printf.sprintf "max_weight(%s)" (cpp_name recv)
  | Ast.Method_call (_, name, _) -> trap_expr (Printf.sprintf "method %s()" name)
  | Ast.New_priority_queue _ -> trap_expr "priority queue outside assignment"
  | Ast.New_vertexset _ -> trap_expr "vertexset value"

and cexpr_pq env m args =
  let pq = cpp_name env.pq_info.Analysis.pq_name in
  match (m, args) with
  | "finished", [] -> Printf.sprintf "%s.finished()" pq
  | "finishedVertex", [ v ] ->
      Printf.sprintf "%s.finished_vertex(%s)" pq (cexpr env v)
  | ("getCurrentPriority" | "get_current_priority"), [] ->
      Printf.sprintf "%s.get_current_priority()" pq
  | "updatePriorityMin", (target :: _ :: _ as all) ->
      (* (vertex, [old_value,] new_value): the middle argument of the 3-ary
         form is informational, like the interpreter treats it. *)
      let value = List.nth all (List.length all - 1) in
      Printf.sprintf "%s.update_priority_min(%s, %s, %s)" pq env.atomics
        (cexpr env target) (cexpr env value)
  | "updatePriorityMax", (target :: _ :: _ as all) ->
      let value = List.nth all (List.length all - 1) in
      Printf.sprintf "%s.update_priority_max(%s, %s, %s)" pq env.atomics
        (cexpr env target) (cexpr env value)
  | "updatePrioritySum", target :: diff :: rest ->
      let floor = match rest with [ f ] -> cexpr env f | _ -> "0" in
      Printf.sprintf "%s.update_priority_sum(%s, %s, %s)" pq (cexpr env target)
        (cexpr env diff) floor
  | name, _ -> trap_expr (Printf.sprintf "priority-queue call %s()" name)

(* ---------------- statement translation ---------------- *)

let rec cstmt env ~in_main (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.S_var_decl (_, (Ast.T_vertexset _ | Ast.T_edgeset _ | Ast.T_priority_queue _), _)
    ->
      line env "%s;" (trap_expr "non-scalar local declaration")
  | Ast.S_var_decl (name, typ, init) ->
      let k = kind_of_typ typ in
      let init_str =
        match init with
        | Some e -> cexpr env e
        | None -> ( match k with K_bool -> "false" | K_str -> "\"\"" | K_int -> "0")
      in
      env.locals <- (name, k) :: env.locals;
      line env "%s %s = %s;" (ctype_of_kind k) (cpp_name name) init_str
  | Ast.S_assign (name, { Ast.desc = Ast.New_priority_queue _; _ })
    when name = env.pq_info.Analysis.pq_name && in_main ->
      emit_pq_construction env
  | Ast.S_assign (name, e) -> line env "%s = %s;" (cpp_name name) (cexpr env e)
  | Ast.S_index_assign (vec, idx, e) ->
      line env "%s[%s] = %s;" (gname env vec) (cexpr env idx) (cexpr env e)
  | Ast.S_reduce_assign (rd, vec, idx, e) ->
      let op =
        match rd with
        | Ast.Rd_min -> "reduce_min"
        | Ast.Rd_max -> "reduce_max"
        | Ast.Rd_plus -> "reduce_plus"
      in
      line env "%s(%s, %s, %s, %s);" op (gname env vec) (cexpr env idx)
        (cexpr env e) env.atomics
  | Ast.S_expr { Ast.desc = Ast.Call ("print", [ a ]); _ } -> (
      match kind_of env a with
      | K_str -> line env "print_str(%s);" (cexpr env a)
      | K_bool -> line env "print_bool(%s);" (cexpr env a)
      | K_int -> line env "print_int(%s);" (cexpr env a))
  | Ast.S_expr e -> line env "%s;" (cexpr env e)
  | Ast.S_while (cond, body) -> (
      let matched =
        if in_main then
          match
            Analysis.match_while env.program ~pq_name:env.pq_info.Analysis.pq_name
              ~cond ~body
          with
          | Ok (Some loop) -> Some loop
          | Ok None | Error _ -> None
        else None
      in
      match matched with
      | Some loop -> emit_ordered_loop env loop
      | None ->
          let saved = env.locals in
          line env "while (%s) {" (cexpr env cond);
          indented env (fun () -> List.iter (cstmt env ~in_main) body);
          line env "}";
          env.locals <- saved)
  | Ast.S_if (cond, then_branch, else_branch) ->
      let saved = env.locals in
      line env "if (%s) {" (cexpr env cond);
      indented env (fun () -> List.iter (cstmt env ~in_main) then_branch);
      env.locals <- saved;
      if else_branch <> [] then begin
        line env "} else {";
        indented env (fun () -> List.iter (cstmt env ~in_main) else_branch);
        env.locals <- saved
      end;
      line env "}"
  | Ast.S_delete name -> line env "// delete %s: storage is runtime-managed" name

(* The priority-queue construction statement: wire the queue to its
   priority vector and seed the initial bucket contents, exactly as
   Priority_queue.create does. *)
and emit_pq_construction env =
  let pq = cpp_name env.pq_info.Analysis.pq_name in
  let vec = cpp_name env.pq_info.Analysis.priority_vector in
  line env "%s.init(&%s);" pq vec;
  match env.pq_info.Analysis.start_vertex with
  | Some e -> line env "%s.seed_start(%s);" pq (cexpr env e)
  | None -> line env "%s.seed_all();" pq

(* The §5.2 transformation: the matched while loop is replaced by the
   ordered processing operator's round loop. *)
and emit_ordered_loop env (loop : Analysis.ordered_loop) =
  let pq = cpp_name env.pq_info.Analysis.pq_name in
  let edges = cpp_name loop.Analysis.edgeset_name in
  let traversal = env.schedule.Schedule.traversal in
  line env "";
  line env "// ---- ordered processing loop (replaces the matched §5.2 pattern) ----";
  (match traversal with
  | Schedule.Dense_pull | Schedule.Hybrid ->
      line env "%s_t = transpose_of(%s);" edges edges;
      line env "in_frontier.assign(%s.n, 0);" edges
  | Schedule.Sparse_push -> ());
  (match traversal with
  | Schedule.Hybrid ->
      line env "dense_threshold = %s.m / 20;  // Ligra's density cutoff" edges
  | _ -> ());
  let round_fn =
    match traversal with
    | Schedule.Sparse_push -> "edge_map_push"
    | Schedule.Dense_pull -> "edge_map_pull"
    | Schedule.Hybrid -> "edge_map_round"
  in
  let cond =
    match loop.Analysis.stop_vertex with
    | Some e ->
        (* The engine checks the stop vertex before finished() each round. *)
        line env "i64 stop_v = %s;" (cexpr env e);
        Printf.sprintf "!%s.finished_vertex(stop_v) && !%s.finished()" pq pq
    | None -> Printf.sprintf "!%s.finished()" pq
  in
  line env "while (%s) {" cond;
  indented env (fun () ->
      line env "%s.dequeue_ready_set(&frontier);" pq;
      line env "%s(frontier);" round_fn);
  line env "}"

(* ---------------- fixed runtime text ---------------- *)

let emit_prelude env =
  raw env
    {|#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

typedef int64_t i64;

// OCaml's 63-bit max_int: the DSL's INT_MAX, the "unreached" sentinel
// (Bucket_order.null_priority) and the null bucket key.
static const i64 kNullPriority = INT64_C(4611686018427387903);
static const i64 kNullKey = kNullPriority;
static const i64 kMinCursor = INT64_MIN;

static void die(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  std::exit(2);
}

// Constructs outside the compiled subset abort with the same status the
// sweep driver reads as "compiled lane unavailable".
static i64 trap(const char* what) {
  std::fprintf(stderr, "unsupported construct: %s\n", what);
  std::exit(2);
}

static int g_argc;
static char** g_argv;

static const char* arg(i64 i) {
  if (i < 0 || i >= (i64)g_argc) die("argv index out of range");
  return g_argv[i];
}

static i64 to_i64(const char* s) {
  char* end = nullptr;
  long long v = std::strtoll(s, &end, 10);
  while (end != nullptr && *end != '\0' && std::isspace((unsigned char)*end)) end++;
  if (end == s || (end != nullptr && *end != '\0')) die("atoi: not an integer");
  return (i64)v;
}

// Output protocol consumed by the differential checker.
static void print_int(i64 v) { std::printf("out %lld\n", (long long)v); }
static void print_bool(bool b) { std::printf("out %s\n", b ? "true" : "false"); }
static void print_str(const char* s) { std::printf("out %s\n", s); }

static void dump_vec(const char* name, const std::vector<i64>& v) {
  std::printf("vec %s", name);
  for (i64 x : v) std::printf(" %lld", (long long)x);
  std::printf("\n");
}

// ---- graph substrate (mirrors Graph_io.read_edge_list + Edge_list/Csr) ----

struct Edge {
  i64 src, dst, w;
};

struct EdgeList {
  i64 n = 0;
  std::vector<Edge> edges;
};

struct Graph {
  i64 n = 0, m = 0;
  std::vector<i64> off, dst, w;
};

static EdgeList load_edges(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) die("cannot open graph file");
  EdgeList el;
  bool have_header = false;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    bool blank = true;
    for (char* p = line; *p != '\0'; p++)
      if (!std::isspace((unsigned char)*p)) blank = false;
    if (blank) continue;
    if (!have_header) {
      long long n = 0, m = 0;
      if (std::sscanf(line, "# %lld %lld", &n, &m) != 2)
        die("graph header must be '# num_vertices num_edges'");
      if (n < 0) die("negative vertex count");
      el.n = (i64)n;
      have_header = true;
      continue;
    }
    long long s = 0, d = 0, w = 0;
    if (std::sscanf(line, "%lld %lld %lld", &s, &d, &w) != 3)
      die("edge lines must be 'src dst weight'");
    if (s < 0 || s >= el.n || d < 0 || d >= el.n) die("edge endpoint out of range");
    if (w <= 0) die("edge weights must be positive");
    el.edges.push_back(Edge{(i64)s, (i64)d, (i64)w});
  }
  std::fclose(f);
  if (!have_header) die("empty graph file");
  return el;
}

// Mirror of Edge_list.symmetrized: add every edge's reverse, then dedup —
// sort by (src, dst, weight), drop self-loops, keep the cheapest copy of
// each parallel edge.
static EdgeList symmetrize_edges(EdgeList el) {
  std::vector<Edge> all = el.edges;
  all.reserve(2 * el.edges.size());
  for (size_t i = 0; i < el.edges.size(); i++)
    all.push_back(Edge{el.edges[i].dst, el.edges[i].src, el.edges[i].w});
  std::sort(all.begin(), all.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.w < b.w;
  });
  EdgeList out;
  out.n = el.n;
  for (const Edge& e : all) {
    if (e.src == e.dst) continue;
    if (!out.edges.empty() && out.edges.back().src == e.src &&
        out.edges.back().dst == e.dst)
      continue;
    out.edges.push_back(e);
  }
  return out;
}

static Graph csr_of(const EdgeList& el) {
  Graph g;
  g.n = el.n;
  g.m = (i64)el.edges.size();
  g.off.assign(g.n + 1, 0);
  for (const Edge& e : el.edges) g.off[e.src + 1]++;
  for (i64 v = 0; v < g.n; v++) g.off[v + 1] += g.off[v];
  g.dst.assign(g.m, 0);
  g.w.assign(g.m, 0);
  std::vector<i64> cursor(g.off.begin(), g.off.end() - 1);
  for (const Edge& e : el.edges) {
    i64 i = cursor[e.src]++;
    g.dst[i] = e.dst;
    g.w[i] = e.w;
  }
  return g;
}

static Graph transpose_of(const Graph& g) {
  EdgeList el;
  el.n = g.n;
  el.edges.reserve(g.m);
  for (i64 v = 0; v < g.n; v++)
    for (i64 e = g.off[v]; e < g.off[v + 1]; e++)
      el.edges.push_back(Edge{g.dst[e], v, g.w[e]});
  return csr_of(el);
}

static std::vector<i64> out_degrees(const Graph& g) {
  std::vector<i64> d((size_t)g.n, 0);
  for (i64 v = 0; v < g.n; v++) d[v] = g.off[v + 1] - g.off[v];
  return d;
}

static i64 max_weight(const Graph& g) {
  i64 best = 1;
  for (i64 w : g.w) best = std::max(best, w);
  return best;
}
|}

let emit_contract env =
  raw env
    {|
// ---- priority normalization (Bucket_order) ----

static i64 key_of_priority(i64 p) {
  if (p == kNullPriority) return kNullKey;
  if (p < 0) die("negative priority");
  return kLowerFirst ? p / kDelta : -(p / kDelta);
}

static i64 representative_priority(i64 key) {
  return kLowerFirst ? key * kDelta : -(key * kDelta);
}

// ---- atomics contract (Fig. 9) ----
// Under push traversal destination cells are shared between workers and
// every update goes through the atomic_* slots; under pull traversal the
// iterating worker owns the destination row and the plain_* variants
// apply. This reference build is sequential, so the atomic slots are plain
// read-modify-writes — but the call sites mark exactly where a parallel
// backend must CAS.

static inline bool atomic_write_min(std::vector<i64>& a, i64 i, i64 v) {
  if (v < a[i]) { a[i] = v; return true; }
  return false;
}

static inline bool plain_write_min(std::vector<i64>& a, i64 i, i64 v) {
  if (v < a[i]) { a[i] = v; return true; }
  return false;
}

// fetch-max never beats the null sentinel (nothing exceeds max_int)...
static inline bool atomic_write_max(std::vector<i64>& a, i64 i, i64 v) {
  if (v > a[i]) { a[i] = v; return true; }
  return false;
}

// ...and the plain variant refuses to revive it explicitly.
static inline bool plain_write_max(std::vector<i64>& a, i64 i, i64 v) {
  if (a[i] == kNullPriority) return false;
  if (v > a[i]) { a[i] = v; return true; }
  return false;
}

static inline void reduce_min(std::vector<i64>& a, i64 i, i64 v, bool use_atomics) {
  if (use_atomics) (void)atomic_write_min(a, i, v);
  else (void)plain_write_min(a, i, v);
}

static inline void reduce_max(std::vector<i64>& a, i64 i, i64 v, bool use_atomics) {
  if (use_atomics) (void)atomic_write_max(a, i, v);
  else if (v > a[i]) a[i] = v;
}

static inline void reduce_plus(std::vector<i64>& a, i64 i, i64 v, bool use_atomics) {
  (void)use_atomics;  // fetch-add and plain add agree sequentially
  a[i] += v;
}
|}

let emit_lazy_buckets env =
  raw env
    {|
// ---- LazyBuckets: port of Bucketing.Lazy_buckets ----
// A window of kNumOpenBuckets open buckets over the key space plus an
// overflow bucket; lazily deduplicated on drain via per-vertex stamps.

struct LazyBuckets {
  std::vector<i64>* pri = nullptr;
  std::vector<std::vector<i64>> open_buckets;
  std::vector<i64> overflow, overflow_spill;
  i64 window_lo = 0;
  bool window_set = false;
  i64 cur = kMinCursor;
  std::vector<i64> stamps;
  i64 stamp = 0;

  void init(std::vector<i64>* p, i64 n) {
    pri = p;
    open_buckets.assign((size_t)kNumOpenBuckets, {});
    stamps.assign((size_t)n, -1);
  }

  i64 key_of(i64 v) const { return key_of_priority((*pri)[v]); }

  void insert(i64 v) {
    i64 key = key_of(v);
    if (key == kNullKey) return;
    if (!window_set || key >= window_lo + kNumOpenBuckets) {
      overflow.push_back(v);
      return;
    }
    // Keys behind the cursor can only arise from same-bucket updates
    // (monotonic priorities); clamp them into the current bucket.
    key = std::max(key, std::max(cur, window_lo));
    open_buckets[(size_t)(key - window_lo)].push_back(v);
  }

  // Re-root the window at new_lo. Keys at or behind the just-exhausted
  // cursor are STALE copies (every priority change inserted a fresh copy
  // at its new location) and must be dropped, or k-core would peel a
  // vertex twice.
  void materialize_window(i64 new_lo) {
    i64 old_cur = window_set ? cur : kMinCursor;
    window_lo = new_lo;
    window_set = true;
    cur = new_lo;
    overflow_spill.clear();
    for (i64 v : overflow) {
      i64 key = key_of(v);
      if (key != kNullKey && key >= new_lo && key > old_cur) {
        if (key < new_lo + kNumOpenBuckets)
          open_buckets[(size_t)(key - new_lo)].push_back(v);
        else
          overflow_spill.push_back(v);
      }
    }
    std::swap(overflow, overflow_spill);
    overflow_spill.clear();
  }

  // Smallest overflow key strictly after the cursor (stale keys excluded).
  i64 min_overflow_key() const {
    i64 c = window_set ? cur : kMinCursor;
    i64 best = kNullKey;
    for (i64 v : overflow) {
      i64 key = key_of(v);
      if (key != kNullKey && key > c && key < best) best = key;
    }
    return best;
  }

  // Drain one open bucket: live (key still matches) and deduplicated
  // (one stamp per vertex per drain).
  void drain_bucket(i64 slot, i64 key, std::vector<i64>* out) {
    out->clear();
    stamp++;
    for (i64 v : open_buckets[(size_t)slot]) {
      if (stamps[(size_t)v] != stamp && key_of(v) == key) {
        stamps[(size_t)v] = stamp;
        out->push_back(v);
      }
    }
    open_buckets[(size_t)slot].clear();
  }

  bool next_bucket(i64* out_key, std::vector<i64>* out) {
    for (;;) {
      if (!window_set) {
        if (overflow.empty()) return false;
        i64 new_lo = min_overflow_key();
        if (new_lo == kNullKey) { overflow.clear(); return false; }
        materialize_window(new_lo);
        continue;
      }
      i64 slot = std::max((i64)0, cur - window_lo);
      bool rerooted = false;
      for (;;) {
        if (slot >= kNumOpenBuckets) {
          // Window exhausted: re-root at the smallest overflow key.
          if (overflow.empty()) return false;
          i64 new_lo = min_overflow_key();
          if (new_lo == kNullKey) { overflow.clear(); return false; }
          materialize_window(new_lo);
          rerooted = true;
          break;
        }
        if (open_buckets[(size_t)slot].empty()) { slot++; continue; }
        i64 key = window_lo + slot;
        drain_bucket(slot, key, out);
        cur = key;
        if (out->empty()) continue;  // all stale: rescan (bucket now empty)
        *out_key = key;
        return true;
      }
      if (rerooted) continue;
    }
  }
};
|}

let emit_eager_buckets env =
  raw env
    {|
// ---- EagerBuckets: port of Bucketing.Eager_buckets (one worker) ----
// Bins indexed by key - base; vertices are filed under their new bucket
// the moment their priority improves.

struct EagerBuckets {
  i64 base = 0;
  std::vector<std::vector<i64>> bins;
  i64 min_slot = kNullKey;
  i64 cur_slot = 0;

  void init(i64 min_key) { base = min_key; }

  void insert(i64 vertex, i64 key) {
    if (key == kNullKey) return;
    // Monotonic priorities never move behind the cursor except within the
    // current bucket; clamp defensively, as GAPBS does with its floor.
    i64 slot = std::max(key - base, cur_slot);
    if ((size_t)slot >= bins.size()) bins.resize((size_t)slot + 1);
    bins[(size_t)slot].push_back(vertex);
    if (slot < min_slot) min_slot = slot;
  }

  bool next_global_key(i64* out) {
    i64 slot = std::max(min_slot, cur_slot);
    while ((size_t)slot < bins.size() && bins[(size_t)slot].empty()) slot++;
    min_slot = slot;
    if ((size_t)slot >= bins.size()) return false;
    cur_slot = slot;
    *out = base + slot;
    return true;
  }

  void drain(i64 key, std::vector<i64>* out) {
    std::vector<i64>& bin = bins[(size_t)(key - base)];
    out->assign(bin.begin(), bin.end());
    bin.clear();
  }

  i64 local_size(i64 key) const {
    i64 slot = key - base;
    return (size_t)slot < bins.size() ? (i64)bins[(size_t)slot].size() : 0;
  }

  // Fused drain support (Fig. 7): steal this worker's bin for the current
  // bucket without a global synchronization.
  bool take_local(i64 key, std::vector<i64>* out) {
    i64 slot = key - base;
    if ((size_t)slot >= bins.size() || bins[(size_t)slot].empty()) return false;
    out->assign(bins[(size_t)slot].begin(), bins[(size_t)slot].end());
    bins[(size_t)slot].clear();
    return true;
  }
};
|}

let emit_priority_queue env =
  let lazy_backend = not env.eager in
  let histogram = env.constant_sum <> None in
  raw env
    {|
// ---- PriorityQueue: port of Ordered.Priority_queue ----

struct PriorityQueue {
  std::vector<i64>* pri = nullptr;
  i64 cur_key = kMinCursor;
  bool exhausted = false;
  // finished() prefetches the next ready set so emptiness is decidable
  // without consuming it; dequeue_ready_set() hands it out.
  bool has_pending = false;
  std::vector<i64> pending;
|};
  if lazy_backend then begin
    raw env
      {|  LazyBuckets buckets;
  // bulk-update buffer (Fig. 5): vertices whose priority changed this
  // round, deduplicated by a per-vertex flag.
  std::vector<uint8_t> buf_flag;
  std::vector<i64> buffer;
|};
    if histogram then
      raw env
        {|  // constant-sum histogram (Fig. 10): updates are only counted during
  // the round and applied once per distinct vertex at the bulk update.
  std::vector<i64> hist_log, hist_touched, hist_count;
|}
  end
  else raw env {|  EagerBuckets bins;
|};
  (* init / seeding *)
  if lazy_backend then begin
    raw env
      {|
  void init(std::vector<i64>* p) {
    pri = p;
    i64 n = (i64)p->size();
    buckets.init(p, n);
    buf_flag.assign((size_t)n, 0);
|};
    if histogram then raw env {|    hist_count.assign((size_t)n, 0);
|};
    raw env
      {|  }

  void seed_start(i64 v) { buckets.insert(v); }

  void seed_all() {
    for (i64 v = 0; v < (i64)pri->size(); v++) buckets.insert(v);
  }
|}
  end
  else
    raw env
      {|
  void init(std::vector<i64>* p) { pri = p; }

  void seed_start(i64 v) {
    bins.init(key_of_priority((*pri)[v]));
    bins.insert(v, key_of_priority((*pri)[v]));
  }

  void seed_all() {
    i64 base = kNullKey;
    for (i64 v = 0; v < (i64)pri->size(); v++)
      base = std::min(base, key_of_priority((*pri)[v]));
    if (base == kNullKey) base = 0;
    bins.init(base);
    for (i64 v = 0; v < (i64)pri->size(); v++)
      bins.insert(v, key_of_priority((*pri)[v]));
  }
|};
  (* histogram flush *)
  if histogram then
    raw env
      {|
  // Apply the buffered constant-sum updates (Fig. 10): vertices at or
  // below the current priority are finalized and must not move; the rest
  // drop by kConstantSumDiff * count, clamped at the current bucket.
  void flush_histogram() {
    i64 floor_pri = (cur_key == kMinCursor) ? 0 : representative_priority(cur_key);
    for (i64 v : hist_log) {
      if (hist_count[(size_t)v]++ == 0) hist_touched.push_back(v);
    }
    hist_log.clear();
    for (i64 v : hist_touched) {
      i64 count = hist_count[(size_t)v];
      hist_count[(size_t)v] = 0;
      i64 p = (*pri)[v];
      if (p != kNullPriority && key_of_priority(p) > cur_key) {
        i64 proposed = p + kConstantSumDiff * count;
        i64 updated = kConstantSumDiff < 0 ? std::max(proposed, floor_pri) : proposed;
        if (updated != p) {
          (*pri)[v] = updated;
          buckets.insert(v);
        }
      }
    }
    hist_touched.clear();
  }
|};
  (* compute_next *)
  if lazy_backend then begin
    raw env {|
  bool compute_next(std::vector<i64>* out) {
|};
    if histogram then raw env {|    flush_histogram();
|};
    raw env
      {|    // bulk bucket update (Fig. 5, lines 12-13)
    for (i64 v : buffer) {
      buf_flag[(size_t)v] = 0;
      buckets.insert(v);
    }
    buffer.clear();
    return buckets.next_bucket(&cur_key, out);
  }
|}
  end
  else
    raw env
      {|
  bool compute_next(std::vector<i64>* out) {
    i64 key;
    if (!bins.next_global_key(&key)) return false;
    cur_key = key;
    bins.drain(key, out);
    return true;
  }
|};
  (* shared protocol *)
  raw env
    {|
  bool finished() {
    if (has_pending) return false;
    if (exhausted) return true;
    if (compute_next(&pending)) {
      has_pending = true;
      return false;
    }
    exhausted = true;
    return true;
  }

  void dequeue_ready_set(std::vector<i64>* out) {
    if (has_pending) {
      out->swap(pending);
      pending.clear();
      has_pending = false;
      return;
    }
    if (exhausted || !compute_next(out)) die("dequeue_ready_set: finished");
  }

  i64 get_current_priority() const { return representative_priority(cur_key); }

  bool finished_vertex(i64 v) const {
    return exhausted || key_of_priority((*pri)[v]) < cur_key;
  }

  bool on_current_bucket(i64 v) const {
    return key_of_priority((*pri)[v]) == cur_key;
  }
|};
  (* record_change *)
  if lazy_backend then
    raw env
      {|
  void record_change(i64 v, i64 value) {
    (void)value;  // lazy: the bucket is derived from the vector at drain
    if (!buf_flag[(size_t)v]) {
      buf_flag[(size_t)v] = 1;
      buffer.push_back(v);
    }
  }
|}
  else
    raw env
      {|
  void record_change(i64 v, i64 value) {
    // eager: file the vertex under its new bucket immediately
    bins.insert(v, key_of_priority(value));
  }
|};
  (* update operators *)
  raw env
    {|
  void update_priority_min(bool use_atomics, i64 v, i64 value) {
    bool changed = use_atomics ? atomic_write_min(*pri, v, value)
                               : plain_write_min(*pri, v, value);
    if (changed) record_change(v, value);
  }

  void update_priority_max(bool use_atomics, i64 v, i64 value) {
    bool changed = use_atomics ? atomic_write_max(*pri, v, value)
                               : plain_write_max(*pri, v, value);
    if (changed) record_change(v, value);
  }
|};
  if histogram then
    raw env
      {|
  void update_priority_sum(i64 v, i64 diff, i64 floor) {
    (void)floor;  // the histogram flush clamps at the current bucket instead
    if (diff != kConstantSumDiff) die("updatePrioritySum: diff != constant-sum delta");
    hist_log.push_back(v);
  }
};
|}
  else
    raw env
      {|
  void update_priority_sum(i64 v, i64 diff, i64 floor) {
    // add-with-floor: a decrement must leave values already at or below
    // the floor untouched (clamping them up would un-finalize them).
    i64 cur = (*pri)[v];
    if (diff < 0 && cur <= floor) return;
    i64 target = std::max(floor, cur + diff);
    if (target == cur) return;
    (*pri)[v] = target;
    record_change(v, target);
  }
};
|}

(* ---------------- traversal kernels ---------------- *)

let emit_edge_maps env =
  let edges = cpp_name env.loop.Analysis.edgeset_name in
  let udf = udf_cpp_name env.loop.Analysis.udf.Analysis.udf_name in
  let pq = cpp_name env.pq_info.Analysis.pq_name in
  let traversal = env.schedule.Schedule.traversal in
  let needs_push = traversal <> Schedule.Dense_pull in
  let needs_pull = traversal <> Schedule.Sparse_push in
  line env "";
  line env "// ---- traversal kernels (mirror of Traverse.Edge_map) ----";
  if needs_push then begin
    line env "";
    line env "// push: walk the sparse frontier's out-edges; destination updates go";
    line env "// through the atomic slots (Fig. 9(a)).";
    line env "static void edge_map_push(const std::vector<i64>& frontier) {";
    indented env (fun () ->
        line env "for (i64 src : frontier) {";
        indented env (fun () ->
            if env.eager then begin
              line env "// eager processing filter: skip vertices no longer on the";
              line env "// current bucket (they were reinserted deeper).";
              line env "if (!%s.on_current_bucket(src)) continue;" pq
            end;
            line env "for (i64 e = %s.off[src]; e < %s.off[src + 1]; e++)" edges edges;
            line env "  %s(/*use_atomics=*/true, src, %s.dst[e], %s.w[e]);" udf edges
              edges);
        line env "}";
        if env.fusion then begin
          line env "// bucket fusion (Fig. 7): as the kernel's per-worker epilogue,";
          line env "// keep draining the local bin for the current bucket while it";
          line env "// stays at or under the threshold — no global synchronization.";
          line env "std::vector<i64> fused;";
          line env "for (;;) {";
          indented env (fun () ->
              line env "i64 size = %s.bins.local_size(%s.cur_key);" pq pq;
              line env "if (size == 0 || size > kFusionThreshold) break;";
              line env "if (!%s.bins.take_local(%s.cur_key, &fused)) break;" pq pq;
              line env "for (i64 src : fused) {";
              indented env (fun () ->
                  line env "if (!%s.on_current_bucket(src)) continue;" pq;
                  line env "for (i64 e = %s.off[src]; e < %s.off[src + 1]; e++)" edges
                    edges;
                  line env "  %s(/*use_atomics=*/true, src, %s.dst[e], %s.w[e]);" udf
                    edges edges);
              line env "}");
          line env "}"
        end);
    line env "}"
  end;
  if needs_pull then begin
    line env "";
    line env "// pull: every destination scans its in-neighbors on the transpose,";
    line env "// gated by a frontier bitmap unless the frontier is full; the";
    line env "// iterating worker owns the destination row, so no atomics (Fig. 9(b)).";
    line env "static void edge_map_pull(const std::vector<i64>& frontier) {";
    indented env (fun () ->
        line env "bool gated = (i64)frontier.size() < %s_t.n;" edges;
        line env "if (gated) for (i64 v : frontier) in_frontier[(size_t)v] = 1;";
        line env "for (i64 dst = 0; dst < %s_t.n; dst++) {" edges;
        indented env (fun () ->
            line env "for (i64 e = %s_t.off[dst]; e < %s_t.off[dst + 1]; e++) {" edges
              edges;
            indented env (fun () ->
                line env "i64 src = %s_t.dst[e];" edges;
                line env "if (gated && !in_frontier[(size_t)src]) continue;";
                line env "%s(/*use_atomics=*/false, src, dst, %s_t.w[e]);" udf edges);
            line env "}");
        line env "}";
        line env "if (gated) for (i64 v : frontier) in_frontier[(size_t)v] = 0;");
    line env "}"
  end;
  if traversal = Schedule.Hybrid then begin
    line env "";
    line env "// hybrid: Ligra's direction heuristic — pull when the frontier plus";
    line env "// its out-edges cover more than 1/20 of the graph.";
    line env "static void edge_map_round(const std::vector<i64>& frontier) {";
    indented env (fun () ->
        line env "i64 degree_sum = 0;";
        line env "for (i64 v : frontier) degree_sum += %s.off[v + 1] - %s.off[v];"
          edges edges;
        line env "if (degree_sum + (i64)frontier.size() > dense_threshold)";
        line env "  edge_map_pull(frontier);";
        line env "else";
        line env "  edge_map_push(frontier);");
    line env "}"
  end

(* ---------------- user function ---------------- *)

let emit_udf env =
  let udf = env.loop.Analysis.udf in
  match Ast.find_func env.program udf.Analysis.udf_name with
  | None -> line env "// unknown user function %s" udf.Analysis.udf_name
  | Some f ->
      let src = cpp_name udf.Analysis.src_param in
      let dst = cpp_name udf.Analysis.dst_param in
      let w, w_used =
        match udf.Analysis.weight_param with
        | Some w -> (cpp_name w, true)
        | None -> ("unused_weight", false)
      in
      line env "";
      line env "// user function %s, applied per edge by the traversal kernel;"
        udf.Analysis.udf_name;
      line env "// use_atomics is the push/pull ownership contract.";
      line env "static void %s(bool use_atomics, i64 %s, i64 %s, i64 %s) {"
        (udf_cpp_name udf.Analysis.udf_name)
        src dst w;
      indented env (fun () ->
          line env "(void)use_atomics;";
          if not w_used then line env "(void)%s;" w;
          env.locals <-
            (udf.Analysis.src_param, K_int) :: (udf.Analysis.dst_param, K_int)
            ::
            (match udf.Analysis.weight_param with
            | Some wp -> [ (wp, K_int) ]
            | None -> []);
          env.atomics <- "use_atomics";
          List.iter (cstmt env ~in_main:false) f.Ast.body;
          env.atomics <- "true";
          env.locals <- []);
      line env "}"

(* ---------------- globals and main ---------------- *)

let classify_globals (program : Ast.program) =
  List.map
    (fun (c : Ast.const_decl) ->
      let g =
        match c.Ast.ctyp with
        | Ast.T_edgeset _ -> G_edgeset
        | Ast.T_vector _ -> G_vector
        | Ast.T_priority_queue _ -> G_pq
        | t -> G_scalar (kind_of_typ t)
      in
      (c.Ast.cname, g))
    program.Ast.consts

let emit_globals env =
  line env "";
  line env "// ---- program globals ----";
  List.iter
    (fun (c : Ast.const_decl) ->
      match List.assoc c.Ast.cname env.globals with
      | G_edgeset -> line env "static Graph %s;" (cpp_name c.Ast.cname)
      | G_vector -> line env "static std::vector<i64> %s;" (cpp_name c.Ast.cname)
      | G_pq -> line env "static PriorityQueue %s;" (cpp_name c.Ast.cname)
      | G_scalar k -> line env "static %s %s;" (ctype_of_kind k) (cpp_name c.Ast.cname))
    env.program.Ast.consts;
  line env "static std::vector<i64> frontier;";
  (match env.schedule.Schedule.traversal with
  | Schedule.Dense_pull | Schedule.Hybrid ->
      line env "static Graph %s_t;  // transpose for the pull sweeps"
        (cpp_name env.loop.Analysis.edgeset_name);
      line env "static std::vector<uint8_t> in_frontier;  // pull gate bitmap"
  | Schedule.Sparse_push -> ());
  match env.schedule.Schedule.traversal with
  | Schedule.Hybrid -> line env "static i64 dense_threshold;"
  | _ -> ()

(* Vector sizes come from the loaded graphs: the largest vertex count among
   the edgesets declared before the vector (interp's graph_vertices). *)
let vertices_expr env ~before =
  let edgesets =
    List.filter_map
      (fun (c : Ast.const_decl) ->
        match List.assoc c.Ast.cname env.globals with
        | G_edgeset when List.mem c.Ast.cname before -> Some (cpp_name c.Ast.cname)
        | _ -> None)
      env.program.Ast.consts
  in
  match edgesets with
  | [] -> trap_expr "vector declared before any edgeset"
  | [ e ] -> e ^ ".n"
  | first :: rest ->
      List.fold_left
        (fun acc e -> Printf.sprintf "std::max(%s, %s.n)" acc e)
        (first ^ ".n") rest

let emit_const_inits env =
  line env "// global constant initialization, in declaration order";
  let seen = ref [] in
  List.iter
    (fun (c : Ast.const_decl) ->
      let name = cpp_name c.Ast.cname in
      (match List.assoc c.Ast.cname env.globals with
      | G_pq -> ()  (* constructed by the assignment in main *)
      | G_edgeset -> (
          match c.Ast.cinit with
          | Some e -> line env "%s = %s;" name (cexpr env e)
          | None -> line env "%s;" (trap_expr "edgeset without initializer"))
      | G_vector -> (
          let n = vertices_expr env ~before:!seen in
          match c.Ast.cinit with
          | Some ({ Ast.desc = Ast.Method_call (_, "getOutDegrees", _); _ } as e) ->
              line env "%s = %s;" name (cexpr env e)
          | Some e -> line env "%s.assign((size_t)(%s), %s);" name n (cexpr env e)
          | None -> line env "%s.assign((size_t)(%s), 0);" name n)
      | G_scalar k -> (
          match c.Ast.cinit with
          | Some e -> line env "%s = %s;" name (cexpr env e)
          | None ->
              line env "%s = %s;" name
                (match k with K_bool -> "false" | K_str -> "\"\"" | K_int -> "0")));
      seen := c.Ast.cname :: !seen)
    env.program.Ast.consts

let emit_main env =
  line env "";
  line env "int main(int argc, char** argv) {";
  indented env (fun () ->
      line env "g_argc = argc;";
      line env "g_argv = argv;";
      emit_const_inits env;
      line env "";
      (match Ast.find_func env.program "main" with
      | None -> line env "%s;" (trap_expr "program has no main()")
      | Some main ->
          env.locals <- [];
          env.atomics <- "true";
          List.iter (cstmt env ~in_main:true) main.Ast.body;
          env.locals <- []);
      line env "";
      line env "// result protocol: every global vector, sorted by name";
      let vectors =
        List.filter (fun (_, g) -> g = G_vector) env.globals
        |> List.map fst
        |> List.sort compare
      in
      List.iter
        (fun v -> line env "dump_vec(%S, %s);" v (cpp_name v))
        vectors;
      line env "return 0;");
  line env "}"

(* ---------------- entry point ---------------- *)

let header schedule =
  Printf.sprintf
    {|// Generated by the GraphIt priority-based extension (Edge_map backend).
// schedule: %s
//
// Self-contained reference translation of the scheduled program: build with
//   g++ -O2 -std=c++17 -o prog prog.cpp
// and run with the DSL program's arguments (argv mirrors the DSL's argv).
// Output protocol, consumed by the differential checker:
//   out <text>            one line per DSL print()
//   vec <name> v0 v1 ...  every global vector, sorted by name, on exit
// Arithmetic caveat: 64-bit two's complement here vs OCaml's 63-bit ints
// in the reference interpreter; programs must stay in range.
|}
    (Format.asprintf "%a" Schedule.pp schedule)

let stub schedule reason =
  Printf.sprintf
    {|%s
#include <cstdio>

// %s: the C++ backend only compiles programs whose main loop matches the
// §5.2 ordered pattern; everything else runs under the interpreter. Exit
// status 2 tells the sweep driver the compiled lane is unavailable.
int main() {
  std::fprintf(stderr, "unsupported: %s\n");
  return 2;
}
|}
    (header schedule) reason reason

let generate (lowered : Lower.t) =
  let program = lowered.Lower.program in
  let analysis = lowered.Lower.analysis in
  let schedule = lowered.Lower.loop_schedule in
  match (analysis.Analysis.pq, analysis.Analysis.loop) with
  | None, _ -> stub schedule "no priority queue declared"
  | _, None -> stub schedule "no replaceable ordered loop"
  | Some pq_info, Some loop ->
      let delta =
        if pq_info.Analysis.allow_coarsening then schedule.Schedule.delta else 1
      in
      let env =
        {
          buf = Buffer.create 16384;
          indent = 0;
          program;
          schedule;
          pq_info;
          loop;
          globals = classify_globals program;
          delta;
          lower_first = pq_info.Analysis.direction = Order.Lower_first;
          eager = Schedule.is_eager schedule;
          fusion = schedule.Schedule.strategy = Schedule.Eager_with_fusion;
          constant_sum =
            (match schedule.Schedule.strategy with
            | Schedule.Lazy_constant_sum ->
                loop.Analysis.udf.Analysis.constant_sum_diff
            | _ -> None);
          locals = [];
          atomics = "true";
        }
      in
      raw env (header schedule);
      raw env "\n";
      emit_prelude env;
      line env "";
      line env "// ---- resolved schedule constants ----";
      line env "static const bool kLowerFirst = %b;  // priority direction"
        env.lower_first;
      line env "static const i64 kDelta = %d;  // priority coarsening (1 = strict)"
        env.delta;
      if not env.eager then
        line env "static const i64 kNumOpenBuckets = %d;"
          schedule.Schedule.num_open_buckets;
      if env.fusion then
        line env "static const i64 kFusionThreshold = %d;"
          schedule.Schedule.fusion_threshold;
      (match env.constant_sum with
      | Some d -> line env "static const i64 kConstantSumDiff = %d;" d
      | None -> ());
      emit_contract env;
      if env.eager then emit_eager_buckets env else emit_lazy_buckets env;
      emit_priority_queue env;
      emit_globals env;
      emit_udf env;
      emit_edge_maps env;
      emit_main env;
      Buffer.contents env.buf
