(** Lowering: the compiled form of a DSL program.

    [lower] chains the frontend passes — type checking, the Section 5
    analyses, scheduling-language resolution — and enforces the legality
    rules the paper's compiler enforces:

    - eager strategies (and bucket fusion) require the ordered-loop pattern,
      because only then can the while loop be replaced by the ordered
      processing operator (§5.2);
    - [lazy_constant_sum] additionally requires the user function to perform
      a single constant-diff [updatePrioritySum] (§5.1, Fig. 10);
    - [DensePull] also requires the ordered loop (the pull traversal is
      generated inside the operator).

    The result is consumed by {!Interp} (execution) and {!Codegen_cpp}
    (code printing). *)

type t = {
  program : Ast.program;
  analysis : Analysis.result;
  schedules : (string * Ordered.Schedule.t) list;  (** Per label. *)
  loop_schedule : Ordered.Schedule.t;
      (** The schedule attached to the ordered loop's label (or the
          default), driving the main [applyUpdatePriority]. *)
}

(** [lower program] compiles, returning a formatted error message on the
    first failing pass. *)
val lower : Ast.program -> (t, string) result

(** [lower_string source] parses then lowers. *)
val lower_string : string -> (t, string) result

(** [with_loop_schedule t s] re-points the ordered loop at schedule [s],
    validating [s] and re-checking the legality rules above (so an eager
    schedule on a pattern-less program, or [lazy_constant_sum] on a
    non-constant-sum user function, still fails). The differential sweep
    uses this to move one parsed program across the whole schedule grid. *)
val with_loop_schedule : t -> Ordered.Schedule.t -> (t, string) result
