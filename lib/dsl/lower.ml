module Schedule = Ordered.Schedule

type t = {
  program : Ast.program;
  analysis : Analysis.result;
  schedules : (string * Schedule.t) list;
  loop_schedule : Schedule.t;
}

let ( let* ) = Result.bind

let format_typecheck_errors errors =
  String.concat "\n"
    (List.map (fun e -> Format.asprintf "%a" Typecheck.pp_error e) errors)

let lower program =
  let* () =
    Result.map_error format_typecheck_errors (Typecheck.check program)
  in
  let* analysis =
    Result.map_error
      (fun e -> Format.asprintf "%a" Analysis.pp_error e)
      (Analysis.analyze program)
  in
  let* schedules =
    Result.map_error
      (fun e -> Format.asprintf "%a" Schedule_lang.pp_error e)
      (Schedule_lang.resolve program.Ast.schedule)
  in
  let loop_schedule =
    match analysis.Analysis.loop with
    | Some loop -> Schedule_lang.schedule_for loop.Analysis.label schedules
    | None -> Schedule.default
  in
  let* () =
    match (analysis.Analysis.loop, loop_schedule.Schedule.strategy) with
    | None, (Schedule.Eager_with_fusion | Schedule.Eager_no_fusion) ->
        (* Without the pattern, the while loop cannot be replaced by the
           ordered processing operator. (The default strategy is eager, so
           only report this when the user explicitly scheduled it.) *)
        Ok ()
    | _ -> Ok ()
  in
  let* () =
    match analysis.Analysis.loop with
    | None ->
        (* Generic programs run the explicit loop against lazy buckets; an
           explicitly requested eager schedule cannot be honored. *)
        let explicit_eager =
          List.exists
            (fun (_, s) ->
              match s.Schedule.strategy with
              | Schedule.Eager_with_fusion | Schedule.Eager_no_fusion -> true
              | Schedule.Lazy | Schedule.Lazy_constant_sum -> false)
            schedules
        in
        if explicit_eager then
          Error
            "eager bucket-update schedules require the ordered while-loop \
             pattern (while (pq.finished() == false) { var b = \
             pq.dequeueReadySet(); edges.from(b).applyUpdatePriority(f); \
             delete b; }), which this program does not match"
        else Ok ()
    | Some loop -> (
        match loop_schedule.Schedule.strategy with
        | Schedule.Lazy_constant_sum
          when loop.Analysis.udf.Analysis.constant_sum_diff = None ->
            Error
              (Printf.sprintf
                 "schedule lazy_constant_sum requires user function %s to \
                  perform a single updatePrioritySum with a constant literal \
                  diff on the destination vertex"
                 loop.Analysis.udf.Analysis.udf_name)
        | _ -> Ok ())
  in
  Ok { program; analysis; schedules; loop_schedule }

(* Re-point the ordered loop at a different schedule, re-checking the
   legality rules the original lowering enforced (the sweep uses this to
   move one parsed program across the whole schedule grid without
   re-rendering and re-parsing its schedule section). *)
let with_loop_schedule t schedule =
  let* schedule = Schedule.validate schedule in
  let* () =
    match t.analysis.Analysis.loop with
    | None -> (
        match schedule.Schedule.strategy with
        | Schedule.Eager_with_fusion | Schedule.Eager_no_fusion ->
            Error
              "eager bucket-update schedules require the ordered while-loop \
               pattern"
        | Schedule.Lazy | Schedule.Lazy_constant_sum -> Ok ())
    | Some loop -> (
        match schedule.Schedule.strategy with
        | Schedule.Lazy_constant_sum
          when loop.Analysis.udf.Analysis.constant_sum_diff = None ->
            Error
              (Printf.sprintf
                 "schedule lazy_constant_sum requires user function %s to \
                  perform a single updatePrioritySum with a constant literal \
                  diff on the destination vertex"
                 loop.Analysis.udf.Analysis.udf_name)
        | _ -> Ok ())
  in
  let schedules =
    match t.analysis.Analysis.loop with
    | Some { Analysis.label = Some label; _ } ->
        (label, schedule) :: List.remove_assoc label t.schedules
    | _ -> t.schedules
  in
  Ok { t with schedules; loop_schedule = schedule }

let lower_string source =
  match Parser.parse_string source with
  | program -> lower program
  | exception Parser.Error (pos, msg) ->
      Error (Format.asprintf "%a: parse error: %s" Pos.pp pos msg)
