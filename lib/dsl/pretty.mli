(** Pretty-printer from the AST back to concrete DSL syntax.

    The contract, pinned by a qcheck property in the test suite, is the
    round trip: for any well-formed program AST [p],
    [Parser.parse_string (program p)] equals [p] under {!Ast.equal_program}
    (which ignores source positions). This is what lets the differential
    checker ({!Check.Dsl_case}) hand out generated programs as paste-able
    repro text.

    Caveats inherited from the grammar: extern parameter names are not kept
    in the AST, so invented positional names are printed; negative integer
    literals have no surface syntax and print as [(0 - n)], which re-parses
    as a subtraction — generators avoid producing them. *)

(** [program p] prints a complete program: elements, consts, externs,
    functions, then the [schedule:] section (the grammar requires the
    schedule last — it consumes the rest of the input). *)
val program : Ast.program -> string

(** [expr e] prints one expression with minimal parentheses. *)
val expr : Ast.expr -> string

(** [type_str t] prints a type, e.g. [vector{Vertex}(int)]. *)
val type_str : Ast.typ -> string
