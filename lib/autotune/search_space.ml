module Schedule = Ordered.Schedule
module Rng = Support.Rng

type t = {
  strategies : Schedule.update_strategy list;
  max_delta_exp : int;
  allow_dense_pull : bool;
}

let default =
  {
    strategies = [ Schedule.Eager_with_fusion; Schedule.Eager_no_fusion; Schedule.Lazy ];
    max_delta_exp = 17;
    allow_dense_pull = true;
  }

let thresholds = [ 128; 512; 1000; 4096 ]
let bucket_counts = [ 32; 128; 512 ]
let chunks = [ 16; 64; 256 ]

let scheds =
  [ None; Some Parallel.Pool.Static; Some Parallel.Pool.Dynamic;
    Some Parallel.Pool.Guided ]

let traversals space strategy =
  match strategy with
  | Schedule.Eager_with_fusion | Schedule.Eager_no_fusion -> [ Schedule.Sparse_push ]
  | Schedule.Lazy | Schedule.Lazy_constant_sum ->
      if space.allow_dense_pull then
        [ Schedule.Sparse_push; Schedule.Dense_pull; Schedule.Hybrid ]
      else [ Schedule.Sparse_push ]

let size space =
  List.fold_left
    (fun acc strategy ->
      acc
      + List.length (traversals space strategy)
        * (space.max_delta_exp + 1)
        * List.length thresholds * List.length bucket_counts
        * List.length chunks * List.length scheds)
    0 space.strategies

let pick rng xs = List.nth xs (Rng.int rng (List.length xs))

let random space rng =
  let strategy = pick rng space.strategies in
  {
    Schedule.strategy;
    delta = 1 lsl Rng.int rng (space.max_delta_exp + 1);
    fusion_threshold = pick rng thresholds;
    num_open_buckets = pick rng bucket_counts;
    traversal = pick rng (traversals space strategy);
    chunk_size = pick rng chunks;
    sched = pick rng scheds;
    (* Not part of the static-schedule search space: the fallback knob
       only matters to incremental recompute, which the tuner doesn't
       drive. *)
    incremental_threshold = Schedule.default.Schedule.incremental_threshold;
  }

let neighbors space _rng (point : Schedule.t) =
  let changed = ref [] in
  let add candidate =
    match Schedule.validate candidate with
    | Ok c when c <> point -> changed := c :: !changed
    | Ok _ | Error _ -> ()
  in
  List.iter (fun strategy -> add { point with Schedule.strategy }) space.strategies;
  List.iter
    (fun exp -> add { point with Schedule.delta = 1 lsl exp })
    (List.filter
       (fun exp -> abs ((1 lsl exp) - point.Schedule.delta) > 0)
       (List.init (space.max_delta_exp + 1) Fun.id));
  List.iter (fun fusion_threshold -> add { point with Schedule.fusion_threshold }) thresholds;
  List.iter (fun num_open_buckets -> add { point with Schedule.num_open_buckets }) bucket_counts;
  List.iter
    (fun traversal -> add { point with Schedule.traversal })
    (traversals space point.Schedule.strategy);
  List.iter (fun chunk_size -> add { point with Schedule.chunk_size }) chunks;
  List.iter (fun sched -> add { point with Schedule.sched }) scheds;
  !changed
