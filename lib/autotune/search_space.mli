(** The schedule search space the autotuner explores (Section 5.3 of the
    paper): bucket-update strategy × priority-coarsening Δ (powers of two,
    spanning the social-network range 1..100 up to the road-network range
    2^13..2^17) × fusion threshold × materialized-bucket count × traversal
    direction × parallel grain size × loop-scheduling policy. *)

type t = {
  strategies : Ordered.Schedule.update_strategy list;
  max_delta_exp : int;  (** Δ candidates are 2^0 .. 2^max_delta_exp. *)
  allow_dense_pull : bool;
}

(** [default] covers the full space of Table 2 minus [Lazy_constant_sum]
    (which is only legal for constant-sum programs — add it explicitly). *)
val default : t

(** [size space] is the number of distinct schedule points. *)
val size : t -> int

(** [random space rng] draws a uniformly random {e valid} schedule. *)
val random : t -> Support.Rng.t -> Ordered.Schedule.t

(** [neighbors space rng point] is a list of valid schedules that differ
    from [point] in exactly one dimension (for hill climbing). *)
val neighbors : t -> Support.Rng.t -> Ordered.Schedule.t -> Ordered.Schedule.t list
