module Pool = Parallel.Pool
module Atomic_array = Parallel.Atomic_array
module Csr = Graphs.Csr
module Int_vec = Support.Int_vec
module Bucket_order = Bucketing.Bucket_order

type result = {
  dist : int array;
  work_items : int;
}

(* One worker's obim-style local queue: priority-indexed bins behind a lock.
   Owners push and pop; idle workers steal a whole minimum bin. *)
type local_queue = {
  lock : Mutex.t;
  mutable bins : Int_vec.t array;
  mutable min_slot : int;
}

let make_queue () = { lock = Mutex.create (); bins = [||]; min_slot = 0 }

let ensure_slot q slot =
  if slot >= Array.length q.bins then begin
    let len = max (slot + 1) (max 8 (2 * Array.length q.bins)) in
    q.bins <-
      Array.init len (fun i ->
          if i < Array.length q.bins then q.bins.(i) else Int_vec.create ~capacity:2 ())
  end

let queue_push q ~slot v =
  Mutex.lock q.lock;
  ensure_slot q slot;
  Int_vec.push q.bins.(slot) v;
  if slot < q.min_slot then q.min_slot <- slot;
  Mutex.unlock q.lock

(* Pop the whole lowest non-empty bin, or [None]. *)
let queue_pop_min q =
  Mutex.lock q.lock;
  let len = Array.length q.bins in
  let slot = ref q.min_slot in
  while !slot < len && Int_vec.is_empty q.bins.(!slot) do
    incr slot
  done;
  q.min_slot <- !slot;
  let out =
    if !slot >= len then None
    else begin
      let bin = q.bins.(!slot) in
      let items = Int_vec.to_array bin in
      Int_vec.clear bin;
      Some (!slot, items)
    end
  in
  Mutex.unlock q.lock;
  out

let search ~pool ~graph ~delta ~source ~heuristic ~target () =
  let n = Csr.num_vertices graph in
  let workers = Pool.num_workers pool in
  let dist = Atomic_array.make n Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  let queues = Array.init workers (fun _ -> make_queue ()) in
  (* [pending] counts pushed-but-unfinished items; the run is over when it
     hits zero (items are only created while another item is in flight). *)
  let pending = Atomic.make 1 in
  let processed = Array.make workers 0 in
  queue_push queues.(0) ~slot:(heuristic source / delta) source;
  let prune_key key =
    match target with
    | None -> false
    | Some t ->
        let dt = Atomic_array.get dist t in
        dt <> Bucket_order.null_priority && key * delta >= dt + heuristic t
  in
  (* Asynchronous per-item processor, not a frontier sweep: Galois has no
     bulk-synchronous rounds, so this is the one baseline loop that cannot
     run through [Traverse.Edge_map] (items pop off relaxed multi-queues
     one at a time, mid-flight). *)
  let process tid v =
    processed.(tid) <- processed.(tid) + 1;
    let du = Atomic_array.get dist v in
    if du <> Bucket_order.null_priority then
      Csr.iter_out graph v (fun u w ->
          let nd = du + w in
          if Atomic_array.fetch_min dist u nd then begin
            let key = (nd + heuristic u) / delta in
            if not (prune_key key) then begin
              Atomic.incr pending;
              queue_push queues.(tid) ~slot:key u
            end
          end)
  in
  Pool.run_workers pool (fun tid ->
      let rng = Support.Rng.create (tid + 12345) in
      let rec loop () =
        match queue_pop_min queues.(tid) with
        | Some (slot, items) ->
            Array.iter
              (fun v ->
                (* Skip items superseded by a lower-priority copy: priorities
                   only decrease, so [cur < slot] means a fresher copy was
                   pushed under the lower key and carries the work. *)
                let cur =
                  let d = Atomic_array.get dist v in
                  if d = Bucket_order.null_priority then max_int
                  else (d + heuristic v) / delta
                in
                if cur >= slot then process tid v;
                Atomic.decr pending)
              items;
            loop ()
        | None ->
            if Atomic.get pending > 0 then begin
              (* Steal a victim's lowest bin, then retry. *)
              (if workers > 1 then
                 let victim = Support.Rng.int rng workers in
                 if victim <> tid then
                   match queue_pop_min queues.(victim) with
                   | Some (slot, items) ->
                       Mutex.lock queues.(tid).lock;
                       ensure_slot queues.(tid) slot;
                       Array.iter (Int_vec.push queues.(tid).bins.(slot)) items;
                       if slot < queues.(tid).min_slot then
                         queues.(tid).min_slot <- slot;
                       Mutex.unlock queues.(tid).lock
                   | None -> Domain.cpu_relax ());
              loop ()
            end
      in
      loop ());
  let work_items = Array.fold_left ( + ) 0 processed in
  (Atomic_array.to_array dist, work_items)

let no_heuristic _ = 0

let sssp ~pool ~graph ~delta ~source () =
  let dist, work_items =
    search ~pool ~graph ~delta ~source ~heuristic:no_heuristic ~target:None ()
  in
  { dist; work_items }

let wbfs ~pool ~graph ~source () = sssp ~pool ~graph ~delta:1 ~source ()

let ppsp ~pool ~graph ~delta ~source ~target () =
  let dist, _ =
    search ~pool ~graph ~delta ~source ~heuristic:no_heuristic ~target:(Some target) ()
  in
  dist.(target)

let astar ~pool ~graph ~coords ~delta ~source ~target () =
  let heuristic v = Graphs.Coords.scaled_distance ~scale:100.0 coords v target in
  let dist, _ =
    search ~pool ~graph ~delta ~source ~heuristic ~target:(Some target) ()
  in
  dist.(target)
