module Pool = Parallel.Pool
module Atomic_array = Parallel.Atomic_array
module Csr = Graphs.Csr
module Bucket_order = Bucketing.Bucket_order
module Lazy_buckets = Bucketing.Lazy_buckets
module Update_buffer = Bucketing.Update_buffer
module Histogram = Bucketing.Histogram
module Vertex_subset = Frontier.Vertex_subset
module Edge_map = Traverse.Edge_map
module Scratch = Traverse.Scratch

type sssp_result = {
  dist : int array;
  rounds : int;
}

let sssp_engine ~pool ~graph ~delta ~source ~stop () =
  let n = Csr.num_vertices graph in
  let dist = Atomic_array.make n Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  (* Closure-based priority interface: a function call per computation. *)
  let bucket_of v =
    let d = Atomic_array.get dist v in
    if d = Bucket_order.null_priority then Bucket_order.null_key else d / delta
  in
  let buckets =
    Lazy_buckets.create ~num_vertices:n ~num_open:128
      ~source:(Lazy_buckets.Closure bucket_of) ()
  in
  Lazy_buckets.insert buckets source;
  let scratch = Scratch.create ~pool ~graph in
  let buffer = Scratch.buffer scratch in
  let relax ctx ~src ~dst ~weight =
    if Atomic_array.fetch_min dist dst (Atomic_array.get dist src + weight)
    then ignore (Update_buffer.try_add buffer ~tid:ctx.Edge_map.tid dst)
  in
  let rounds = ref 0 in
  let dense_rounds = ref 0 in
  let finished = ref false in
  while not !finished do
    match Lazy_buckets.next_bucket buckets with
    | None -> finished := true
    | Some (key, members) ->
        if stop ~current_key:key ~dist then finished := true
        else
          (* The round index rides on the timeline slice so straggler
             rounds are addressable in the Perfetto view. *)
          Observe.Span.with_ ~arg:(!rounds + 1) "julienne.round" (fun () ->
              incr rounds;
              let frontier = Vertex_subset.unsafe_of_array ~num_vertices:n members in
              (* Julienne's direction-selection preamble: an out-degree sum
                 over the frontier every round (the paper measures this as a
                 significant share of Julienne's extra instructions on SSSP).
                 The threshold outcome is recorded to keep it observable. *)
              let sum = Edge_map.degree_sum scratch ~graph frontier in
              if sum > Scratch.dense_threshold scratch then incr dense_rounds;
              ignore
                (Edge_map.run scratch ~graph ~direction:Edge_map.Push frontier
                   ~f:relax);
              Array.iter
                (fun v -> Lazy_buckets.insert buckets v)
                (Update_buffer.drain_to_array buffer ~pool))
  done;
  (dist, !rounds)

let never ~current_key:_ ~dist:_ = false

let sssp ~pool ~graph ~delta ~source () =
  let dist, rounds = sssp_engine ~pool ~graph ~delta ~source ~stop:never () in
  { dist = Atomic_array.to_array dist; rounds }

let wbfs ~pool ~graph ~source () = sssp ~pool ~graph ~delta:1 ~source ()

let ppsp ~pool ~graph ~delta ~source ~target () =
  let stop ~current_key ~dist =
    let dt = Atomic_array.get dist target in
    dt <> Bucket_order.null_priority && current_key > dt / delta
  in
  let dist, _rounds = sssp_engine ~pool ~graph ~delta ~source ~stop () in
  Atomic_array.get dist target

type kcore_result = {
  coreness : int array;
  rounds : int;
}

let kcore ~pool ~graph () =
  let n = Csr.num_vertices graph in
  let workers = Pool.num_workers pool in
  let degrees = Atomic_array.of_array (Csr.out_degrees_cached graph) in
  let bucket_of v = Atomic_array.get degrees v in
  let buckets =
    Lazy_buckets.create ~num_vertices:n ~num_open:128
      ~source:(Lazy_buckets.Closure bucket_of) ()
  in
  Lazy_buckets.insert_all buckets;
  let histogram = Histogram.create ~num_workers:workers () in
  let traverse_scratch = Scratch.create ~pool ~graph in
  let record ctx ~src:_ ~dst ~weight:_ =
    Histogram.record histogram ~tid:ctx.Edge_map.tid dst
  in
  let scratch = Array.make n 0 in
  let rounds = ref 0 in
  let finished = ref false in
  while not !finished do
    match Lazy_buckets.next_bucket buckets with
    | None -> finished := true
    | Some (k, members) ->
        Observe.Span.with_ ~arg:(!rounds + 1) "julienne.round" (fun () ->
            incr rounds;
            let frontier = Vertex_subset.unsafe_of_array ~num_vertices:n members in
            ignore (Edge_map.degree_sum traverse_scratch ~graph frontier);
            ignore
              (Edge_map.run traverse_scratch ~graph ~direction:Edge_map.Push
                 frontier ~f:record);
            Histogram.reduce histogram ~scratch (fun ~vertex ~count ->
                let d = Atomic_array.get degrees vertex in
                if d > k then begin
                  Atomic_array.set degrees vertex (max (d - count) k);
                  Lazy_buckets.insert buckets vertex
                end))
  done;
  { coreness = Atomic_array.to_array degrees; rounds = !rounds }

let setcover ~pool ~graph () =
  let schedule = { Ordered.Schedule.default with strategy = Ordered.Schedule.Lazy } in
  Algorithms.Setcover.run ~pool ~graph ~schedule ()
