module Pool = Parallel.Pool
module Atomic_array = Parallel.Atomic_array
module Csr = Graphs.Csr
module Bucket_order = Bucketing.Bucket_order
module Lazy_buckets = Bucketing.Lazy_buckets
module Update_buffer = Bucketing.Update_buffer
module Histogram = Bucketing.Histogram

type sssp_result = {
  dist : int array;
  rounds : int;
}

(* Julienne's direction-selection preamble: an out-degree sum over the
   frontier every round (the paper measures this as a significant share of
   Julienne's extra instructions on SSSP). The result feeds a threshold test
   whose outcome we record to keep the computation observable. *)
let degree_sum pool graph members =
  Pool.parallel_for_reduce pool ~chunk:128 ~lo:0 ~hi:(Array.length members)
    ~neutral:0 ~combine:( + ) (fun i -> Csr.out_degree graph members.(i))

let sssp_engine ~pool ~graph ~delta ~source ~stop () =
  let n = Csr.num_vertices graph in
  let workers = Pool.num_workers pool in
  let dist = Atomic_array.make n Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  (* Closure-based priority interface: a function call per computation. *)
  let bucket_of v =
    let d = Atomic_array.get dist v in
    if d = Bucket_order.null_priority then Bucket_order.null_key else d / delta
  in
  let buckets =
    Lazy_buckets.create ~num_vertices:n ~num_open:128
      ~source:(Lazy_buckets.Closure bucket_of) ()
  in
  Lazy_buckets.insert buckets source;
  let buffer = Update_buffer.create ~num_vertices:n ~num_workers:workers () in
  let rounds = ref 0 in
  let dense_rounds = ref 0 in
  let finished = ref false in
  while not !finished do
    match Lazy_buckets.next_bucket buckets with
    | None -> finished := true
    | Some (key, members) ->
        if stop ~current_key:key ~dist then finished := true
        else
          (* The round index rides on the timeline slice so straggler
             rounds are addressable in the Perfetto view. *)
          Observe.Span.with_ ~arg:(!rounds + 1) "julienne.round" (fun () ->
              incr rounds;
              let sum = degree_sum pool graph members in
              if sum > Csr.num_edges graph / 20 then incr dense_rounds;
              Pool.parallel_for_ranges_tid pool ~chunk:64 ~lo:0
                ~hi:(Array.length members) (fun ~tid ~lo ~hi ->
                  for i = lo to hi - 1 do
                    let u = members.(i) in
                    let du = Atomic_array.get dist u in
                    Csr.iter_out graph u (fun v w ->
                        if Atomic_array.fetch_min dist v (du + w) then
                          ignore (Update_buffer.try_add buffer ~tid v))
                  done);
              Array.iter
                (fun v -> Lazy_buckets.insert buckets v)
                (Update_buffer.drain_to_array buffer ~pool))
  done;
  (dist, !rounds)

let never ~current_key:_ ~dist:_ = false

let sssp ~pool ~graph ~delta ~source () =
  let dist, rounds = sssp_engine ~pool ~graph ~delta ~source ~stop:never () in
  { dist = Atomic_array.to_array dist; rounds }

let wbfs ~pool ~graph ~source () = sssp ~pool ~graph ~delta:1 ~source ()

let ppsp ~pool ~graph ~delta ~source ~target () =
  let stop ~current_key ~dist =
    let dt = Atomic_array.get dist target in
    dt <> Bucket_order.null_priority && current_key > dt / delta
  in
  let dist, _rounds = sssp_engine ~pool ~graph ~delta ~source ~stop () in
  Atomic_array.get dist target

type kcore_result = {
  coreness : int array;
  rounds : int;
}

let kcore ~pool ~graph () =
  let n = Csr.num_vertices graph in
  let workers = Pool.num_workers pool in
  let degrees = Atomic_array.of_array (Csr.out_degrees graph) in
  let bucket_of v = Atomic_array.get degrees v in
  let buckets =
    Lazy_buckets.create ~num_vertices:n ~num_open:128
      ~source:(Lazy_buckets.Closure bucket_of) ()
  in
  Lazy_buckets.insert_all buckets;
  let histogram = Histogram.create ~num_workers:workers () in
  let scratch = Array.make n 0 in
  let rounds = ref 0 in
  let finished = ref false in
  while not !finished do
    match Lazy_buckets.next_bucket buckets with
    | None -> finished := true
    | Some (k, members) ->
        Observe.Span.with_ ~arg:(!rounds + 1) "julienne.round" (fun () ->
            incr rounds;
            ignore (degree_sum pool graph members);
            Pool.parallel_for_ranges_tid pool ~chunk:64 ~lo:0
              ~hi:(Array.length members) (fun ~tid ~lo ~hi ->
                for i = lo to hi - 1 do
                  Csr.iter_out graph members.(i) (fun v _w ->
                      Histogram.record histogram ~tid v)
                done);
            Histogram.reduce histogram ~scratch (fun ~vertex ~count ->
                let d = Atomic_array.get degrees vertex in
                if d > k then begin
                  Atomic_array.set degrees vertex (max (d - count) k);
                  Lazy_buckets.insert buckets vertex
                end))
  done;
  { coreness = Atomic_array.to_array degrees; rounds = !rounds }

let setcover ~pool ~graph () =
  let schedule = { Ordered.Schedule.default with strategy = Ordered.Schedule.Lazy } in
  Algorithms.Setcover.run ~pool ~graph ~schedule ()
