module Pool = Parallel.Pool
module Atomic_array = Parallel.Atomic_array
module Csr = Graphs.Csr
module Bucket_order = Bucketing.Bucket_order
module Update_buffer = Bucketing.Update_buffer
module Bitset = Support.Bitset

type result = {
  dist : int array;
  iterations : int;
  dense_iterations : int;
}

let sssp ~pool ~graph ~transpose ~source () =
  let n = Csr.num_vertices graph in
  let m = Csr.num_edges graph in
  let workers = Pool.num_workers pool in
  let dist = Atomic_array.make n Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  let buffer = Update_buffer.create ~num_vertices:n ~num_workers:workers () in
  let frontier = ref [| source |] in
  let iterations = ref 0 and dense_iterations = ref 0 in
  while Array.length !frontier > 0 do
    Observe.Span.with_ ~arg:(!iterations + 1) "ligra.iteration" (fun () ->
        incr iterations;
        let members = !frontier in
        let degree_sum =
          Pool.parallel_for_reduce pool ~chunk:128 ~lo:0
            ~hi:(Array.length members) ~neutral:0 ~combine:( + ) (fun i ->
              Csr.out_degree graph members.(i))
        in
        if degree_sum + Array.length members > m / 20 then begin
          (* Dense pull sweep: every vertex scans its in-neighbors against the
             frontier bitmap; no atomics on the destination. *)
          incr dense_iterations;
          let flags = Bitset.create n in
          Array.iter (Bitset.add flags) members;
          Pool.parallel_for_ranges_tid pool ~sched:Pool.Guided ~chunk:256 ~lo:0
            ~hi:n (fun ~tid ~lo ~hi ->
              for d = lo to hi - 1 do
                let improved = ref false in
                let best = ref (Atomic_array.get dist d) in
                Csr.iter_out transpose d (fun s w ->
                    if Bitset.mem flags s then begin
                      let ds = Atomic_array.get dist s in
                      if ds <> Bucket_order.null_priority && ds + w < !best
                      then begin
                        best := ds + w;
                        improved := true
                      end
                    end);
                if !improved then begin
                  Atomic_array.set dist d !best;
                  ignore (Update_buffer.try_add buffer ~tid d)
                end
              done)
        end
        else
          (* Sparse push sweep. *)
          Pool.parallel_for_ranges_tid pool ~chunk:64 ~lo:0
            ~hi:(Array.length members) (fun ~tid ~lo ~hi ->
              for i = lo to hi - 1 do
                let u = members.(i) in
                let du = Atomic_array.get dist u in
                Csr.iter_out graph u (fun v w ->
                    if Atomic_array.fetch_min dist v (du + w) then
                      ignore (Update_buffer.try_add buffer ~tid v))
              done);
        frontier := Update_buffer.drain_to_array buffer ~pool)
  done;
  {
    dist = Atomic_array.to_array dist;
    iterations = !iterations;
    dense_iterations = !dense_iterations;
  }

let kcore ~pool ~graph () = Algorithms.Kcore_unordered.run ~pool ~graph ()
