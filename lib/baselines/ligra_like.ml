module Pool = Parallel.Pool
module Atomic_array = Parallel.Atomic_array
module Csr = Graphs.Csr
module Bucket_order = Bucketing.Bucket_order
module Update_buffer = Bucketing.Update_buffer
module Vertex_subset = Frontier.Vertex_subset
module Edge_map = Traverse.Edge_map
module Scratch = Traverse.Scratch

type result = {
  dist : int array;
  iterations : int;
  dense_iterations : int;
}

(* Ligra's direction-switching Bellman-Ford: one Hybrid edge-map per
   iteration. The kernel owns the degree-sum heuristic, the dense gating
   bitmap (reused from the scratch across iterations rather than
   reallocated per dense sweep), and the atomics policy: the relax
   function just branches on [ctx.use_atomics]. *)
let sssp ~pool ~graph ~transpose ~source () =
  let n = Csr.num_vertices graph in
  let dist = Atomic_array.make n Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  let scratch = Scratch.create ~pool ~graph in
  let buffer = Scratch.buffer scratch in
  let relax ctx ~src ~dst ~weight =
    let ds = Atomic_array.get dist src in
    if ds <> Bucket_order.null_priority then begin
      let nd = ds + weight in
      if ctx.Edge_map.use_atomics then begin
        if Atomic_array.fetch_min dist dst nd then
          ignore (Update_buffer.try_add buffer ~tid:ctx.Edge_map.tid dst)
      end
      else if nd < Atomic_array.get dist dst then begin
        (* Pull ownership: this worker is the only writer of [dst]. *)
        Atomic_array.set dist dst nd;
        ignore (Update_buffer.try_add buffer ~tid:ctx.Edge_map.tid dst)
      end
    end
  in
  let frontier = ref (Vertex_subset.singleton ~num_vertices:n source) in
  let iterations = ref 0 and dense_iterations = ref 0 in
  while not (Vertex_subset.is_empty !frontier) do
    Observe.Span.with_ ~arg:(!iterations + 1) "ligra.iteration" (fun () ->
        incr iterations;
        (match
           Edge_map.run scratch ~graph ~transpose ~direction:Edge_map.Hybrid
             !frontier ~f:relax
         with
        | Edge_map.Ran_pull -> incr dense_iterations
        | Edge_map.Ran_push -> ());
        frontier := Scratch.drain_frontier scratch)
  done;
  {
    dist = Atomic_array.to_array dist;
    iterations = !iterations;
    dense_iterations = !dense_iterations;
  }

let kcore ~pool ~graph () = Algorithms.Kcore_unordered.run ~pool ~graph ()
