module Atomic_array = Parallel.Atomic_array
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Engine = Ordered.Engine
module Min_heap = Support.Min_heap

type result = {
  coreness : int array;
  stats : Ordered.Stats.t;
}

let strengths graph =
  Array.init (Graphs.Csr.num_vertices graph) (fun v ->
      Graphs.Csr.fold_out graph v (fun acc _u w -> acc + w) 0)

let run ~pool ~graph ~schedule () =
  (match schedule.Ordered.Schedule.strategy with
  | Ordered.Schedule.Lazy_constant_sum ->
      invalid_arg
        "Score.run: weighted peeling subtracts per-edge weights, not a \
         constant; the histogram schedule is illegal here"
  | _ -> ());
  let strength = Atomic_array.of_array (strengths graph) in
  let pq =
    Pq.create ~schedule ~num_workers:(Parallel.Pool.num_workers pool)
      ~direction:Bucket_order.Lower_first ~allow_coarsening:false
      ~priorities:strength ~initial:Pq.All_vertices ~pool ()
  in
  let edge_fn ctx ~src:_ ~dst ~weight =
    let s = Pq.current_priority pq in
    Pq.update_priority_sum pq ctx dst ~diff:(-weight) ~floor:s
  in
  let stats = Engine.run ~pool ~graph ~schedule ~pq ~edge_fn () in
  { coreness = Atomic_array.to_array strength; stats }

let sequential graph =
  let n = Graphs.Csr.num_vertices graph in
  let strength = strengths graph in
  let removed = Array.make n false in
  let heap = Min_heap.create () in
  Array.iteri (fun v s -> Min_heap.push heap ~key:s ~value:v) strength;
  let current = ref 0 in
  let remaining = ref n in
  while !remaining > 0 do
    match Min_heap.pop_min heap with
    | None -> remaining := 0
    | Some (s, v) ->
        (* Lazy deletion: only the entry matching the live strength counts. *)
        if (not removed.(v)) && s = strength.(v) then begin
          removed.(v) <- true;
          decr remaining;
          current := max !current s;
          strength.(v) <- !current;
          Graphs.Csr.iter_out graph v (fun u w ->
              if (not removed.(u)) && strength.(u) > !current then begin
                strength.(u) <- max !current (strength.(u) - w);
                Min_heap.push heap ~key:strength.(u) ~value:u
              end)
        end
  done;
  strength
