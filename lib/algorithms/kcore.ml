module Atomic_array = Parallel.Atomic_array
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Engine = Ordered.Engine

type result = {
  coreness : int array;
  stats : Ordered.Stats.t;
}

let run ~pool ~graph ?handle ~schedule ?deadline () =
  let n = Graphs.Csr.num_vertices graph in
  let degrees = Atomic_array.of_array (Graphs.Csr.out_degrees_cached graph) in
  let constant_sum_delta =
    match schedule.Ordered.Schedule.strategy with
    | Ordered.Schedule.Lazy_constant_sum -> Some (-1)
    | _ -> None
  in
  let pq =
    Pq.create ~schedule ~num_workers:(Parallel.Pool.num_workers pool)
      ~direction:Bucket_order.Lower_first ~allow_coarsening:false
      ~priorities:degrees ~initial:Pq.All_vertices ?constant_sum_delta ~pool ()
  in
  (* The apply_f of Fig. 10 (top): peeling [src] at core value k lowers each
     neighbor's degree by one, never below k. Under the histogram schedule
     the compiler's transformation reduces the per-edge work to recording
     the target (Fig. 10 bottom) — mirror that with the recorder fast
     path. *)
  let edge_fn =
    match Pq.constant_sum_recorder pq with
    | Some record -> fun ctx ~src:_ ~dst ~weight:_ -> record ~tid:ctx.Pq.tid dst
    | None ->
        fun ctx ~src:_ ~dst ~weight:_ ->
          let k = Pq.current_priority pq in
          Pq.update_priority_sum pq ctx dst ~diff:(-1) ~floor:k
  in
  let stats = Engine.run ~pool ~graph ?handle ~schedule ~pq ~edge_fn ?deadline () in
  ignore n;
  { coreness = Atomic_array.to_array degrees; stats }

let max_core r = Array.fold_left max 0 r.coreness
