module Atomic_array = Parallel.Atomic_array
module Pool = Parallel.Pool
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Int_vec = Support.Int_vec
module Vertex_subset = Frontier.Vertex_subset
module Edge_map = Traverse.Edge_map
module Scratch = Traverse.Scratch

type result = {
  in_cover : bool array;
  cover_size : int;
  cover_cost : int;
  rounds : int;
  bucket_inserts : int;
}

let ilog2 d =
  if d <= 0 then invalid_arg "Setcover.ilog2: positive argument expected";
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 d

(* The set of vertex [s] covers [s] itself and its neighbors. *)
let iter_set graph s f =
  f s;
  Graphs.Csr.iter_out graph s (fun v _w -> f v)


(* Cost-per-element bucket value: floor(log2 of the scaled coverage/cost
   ratio). With unit costs this degenerates to floor(log2 degree), the
   unweighted bucketing of the paper; [ratio_scale] gives weighted
   instances enough resolution to separate sets with equal coverage but
   different costs. *)
let ratio_scale = 8

let bucket_value ~cost d =
  (* Clamp at 1 so a still-useful set (d > 0) always stays in some bucket:
     dropping it could leave its private elements uncoverable. *)
  ilog2 (max 1 (d * ratio_scale / cost))

let run ~pool ~graph ?handle ~schedule ?costs () =
  (match schedule.Ordered.Schedule.strategy with
  | Ordered.Schedule.Lazy_constant_sum ->
      invalid_arg
        "Setcover.run: priorities are recomputed, not constant-sum; use lazy \
         or an eager strategy"
  | _ -> ());
  let n = Graphs.Csr.num_vertices graph in
  let workers = Pool.num_workers pool in
  let cost_of =
    match costs with
    | None -> fun _ -> 1
    | Some c ->
        if Array.length c <> n then invalid_arg "Setcover.run: costs length mismatch";
        Array.iter
          (fun x -> if x < 1 then invalid_arg "Setcover.run: costs must be positive")
          c;
        fun s -> c.(s)
  in
  let covered = Atomic_array.make n 0 in
  let reservations = Atomic_array.make n max_int in
  let priorities =
    Atomic_array.of_array
      (Array.init n (fun s ->
           bucket_value ~cost:(cost_of s) (Graphs.Csr.out_degree graph s + 1)))
  in
  let pq =
    Pq.create ~schedule ~num_workers:workers ~direction:Bucket_order.Higher_first
      ~allow_coarsening:false ~priorities ~initial:Pq.All_vertices ~pool ()
  in
  let in_cover = Array.make n false in
  let uncovered = ref n in
  let rounds = ref 0 in
  let candidates = Array.init workers (fun _ -> Int_vec.create ()) in
  let covered_delta = Array.make workers 0 in
  let scratch = Scratch.create ~pool ~graph in
  (* All three sweeps below are push-direction; a non-plain handle routes
     them through the kernel instance specialized for its layout. *)
  let sweep ?filter ?vertex_begin ?vertex_end ?chunk frontier ~f =
    match handle with
    | Some h when Graphs.Handle.kind h <> Graphs.Layout.Plain ->
        Edge_map.run_layout scratch ~graph:(Graphs.Handle.graph h) ?filter
          ?vertex_begin ?vertex_end ?chunk ~direction:Edge_map.Push frontier ~f
    | _ ->
        Edge_map.run scratch ~graph ?filter ?vertex_begin ?vertex_end ?chunk
          ~direction:Edge_map.Push frontier ~f
  in
  (* The kernel's edge function sees only out-edges; the set of [s] also
     covers [s] itself, so [vertex_begin] accounts for the self element.
     Per-vertex accumulators live in padded per-worker slots (one sweep's
     vertex is processed start-to-finish by one worker). *)
  let stride = 8 in
  let uncovered_count = Array.make (workers * stride) 0 in
  let claimed = Array.make (workers * stride) 0 in
  let won = Array.make (workers * stride) 0 in
  let current_value = ref 0 in
  (* Phase 1 hooks: validate each extracted set against its true uncovered
     degree; refile sets whose stored priority went stale, drop fully
     covered sets, keep exact matches as this round's candidates. *)
  let validate_begin ctx s =
    let slot = ctx.Pq.tid * stride in
    uncovered_count.(slot) <- (if Atomic_array.get covered s = 0 then 1 else 0)
  in
  let validate_edge ctx ~src:_ ~dst ~weight:_ =
    if Atomic_array.get covered dst = 0 then begin
      let slot = ctx.Pq.tid * stride in
      uncovered_count.(slot) <- uncovered_count.(slot) + 1
    end
  in
  let validate_end ctx s =
    let d = uncovered_count.(ctx.Pq.tid * stride) in
    if d = 0 then Atomic_array.set priorities s Bucket_order.null_priority
    else begin
      let p = bucket_value ~cost:(cost_of s) d in
      if p = !current_value then Int_vec.push candidates.(ctx.Pq.tid) s
      else Pq.set_priority pq ctx s p
    end
  in
  (* Phase 2 hooks: nearly-independent-set reservation — each uncovered
     element remembers the smallest candidate id claiming it. *)
  let reserve_begin _ctx s =
    if Atomic_array.get covered s = 0 then
      ignore (Atomic_array.fetch_min reservations s s)
  in
  let reserve_edge _ctx ~src ~dst ~weight:_ =
    if Atomic_array.get covered dst = 0 then
      ignore (Atomic_array.fetch_min reservations dst src)
  in
  (* Phase 3 hooks: candidates that won at least 3/4 of their claimed
     elements join the cover; the rest release their reservations and are
     refiled by their next extraction. The commit/release passes re-iterate
     the winner's own set sequentially — per-set follow-up work, not a
     frontier sweep. *)
  let commit_begin ctx s =
    let slot = ctx.Pq.tid * stride in
    claimed.(slot) <- 0;
    won.(slot) <- 0;
    if Atomic_array.get covered s = 0 then begin
      claimed.(slot) <- 1;
      if Atomic_array.get reservations s = s then won.(slot) <- 1
    end
  in
  let commit_edge ctx ~src ~dst ~weight:_ =
    if Atomic_array.get covered dst = 0 then begin
      let slot = ctx.Pq.tid * stride in
      claimed.(slot) <- claimed.(slot) + 1;
      if Atomic_array.get reservations dst = src then won.(slot) <- won.(slot) + 1
    end
  in
  let commit_end ctx s =
    let slot = ctx.Pq.tid * stride in
    let claimed = claimed.(slot) and won = won.(slot) in
    if won > 0 && won * 4 >= claimed * 3 then begin
      in_cover.(s) <- true;
      Atomic_array.set priorities s Bucket_order.null_priority;
      let actually_covered = ref 0 in
      iter_set graph s (fun e ->
          if
            Atomic_array.get reservations e = s
            && Atomic_array.get covered e = 0
          then begin
            Atomic_array.set covered e 1;
            incr actually_covered
          end);
      covered_delta.(ctx.Pq.tid) <- covered_delta.(ctx.Pq.tid) + !actually_covered
    end
    else begin
      (* Release this candidate's reservations and refile it. *)
      iter_set graph s (fun e ->
          if Atomic_array.get reservations e = s then
            Atomic_array.set reservations e max_int);
      let remaining = max 0 (claimed - won) in
      if remaining = 0 then
        (* Everything it claimed is being taken by winners; it will be
           dropped or refiled at its next extraction. *)
        Pq.set_priority pq ctx s !current_value
      else
        Pq.set_priority pq ctx s (bucket_value ~cost:(cost_of s) (max 1 remaining))
    end
  in
  while !uncovered > 0 && not (Pq.finished pq) do
    incr rounds;
    let frontier = Pq.dequeue_ready_set pq in
    current_value := Pq.current_priority pq;
    Array.iter Int_vec.clear candidates;
    ignore
      (sweep
         ~filter:(fun s -> not in_cover.(s))
         ~vertex_begin:validate_begin ~vertex_end:validate_end frontier
         ~f:validate_edge);
    let round_candidates =
      let merged = Int_vec.create () in
      Array.iter (fun vec -> Int_vec.append merged vec) candidates;
      Int_vec.to_array merged
    in
    if Array.length round_candidates > 0 then begin
      let candidate_set =
        Vertex_subset.unsafe_of_array ~num_vertices:n round_candidates
      in
      ignore
        (sweep ~vertex_begin:reserve_begin ~chunk:16 candidate_set
           ~f:reserve_edge);
      Array.fill covered_delta 0 workers 0;
      ignore
        (sweep ~vertex_begin:commit_begin ~vertex_end:commit_end ~chunk:16
           candidate_set ~f:commit_edge);
      uncovered := !uncovered - Array.fold_left ( + ) 0 covered_delta
    end
  done;
  let cover_size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 in_cover in
  let cover_cost = ref 0 in
  Array.iteri (fun s chosen -> if chosen then cover_cost := !cover_cost + cost_of s) in_cover;
  {
    in_cover;
    cover_size;
    cover_cost = !cover_cost;
    rounds = !rounds;
    bucket_inserts = Pq.total_bucket_inserts pq;
  }

let is_valid_cover graph r =
  let n = Graphs.Csr.num_vertices graph in
  let covered = Array.make n false in
  for s = 0 to n - 1 do
    if r.in_cover.(s) then iter_set graph s (fun e -> covered.(e) <- true)
  done;
  Array.for_all Fun.id covered
