module Atomic_array = Parallel.Atomic_array
module Pool = Parallel.Pool
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Int_vec = Support.Int_vec

type result = {
  in_cover : bool array;
  cover_size : int;
  cover_cost : int;
  rounds : int;
  bucket_inserts : int;
}

let ilog2 d =
  if d <= 0 then invalid_arg "Setcover.ilog2: positive argument expected";
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 d

(* The set of vertex [s] covers [s] itself and its neighbors. *)
let iter_set graph s f =
  f s;
  Graphs.Csr.iter_out graph s (fun v _w -> f v)

let uncovered_degree graph covered s =
  let d = ref 0 in
  iter_set graph s (fun e -> if Atomic_array.get covered e = 0 then incr d);
  !d

(* Cost-per-element bucket value: floor(log2 of the scaled coverage/cost
   ratio). With unit costs this degenerates to floor(log2 degree), the
   unweighted bucketing of the paper; [ratio_scale] gives weighted
   instances enough resolution to separate sets with equal coverage but
   different costs. *)
let ratio_scale = 8

let bucket_value ~cost d =
  (* Clamp at 1 so a still-useful set (d > 0) always stays in some bucket:
     dropping it could leave its private elements uncoverable. *)
  ilog2 (max 1 (d * ratio_scale / cost))

let run ~pool ~graph ~schedule ?costs () =
  (match schedule.Ordered.Schedule.strategy with
  | Ordered.Schedule.Lazy_constant_sum ->
      invalid_arg
        "Setcover.run: priorities are recomputed, not constant-sum; use lazy \
         or an eager strategy"
  | _ -> ());
  let n = Graphs.Csr.num_vertices graph in
  let workers = Pool.num_workers pool in
  let cost_of =
    match costs with
    | None -> fun _ -> 1
    | Some c ->
        if Array.length c <> n then invalid_arg "Setcover.run: costs length mismatch";
        Array.iter
          (fun x -> if x < 1 then invalid_arg "Setcover.run: costs must be positive")
          c;
        fun s -> c.(s)
  in
  let covered = Atomic_array.make n 0 in
  let reservations = Atomic_array.make n max_int in
  let priorities =
    Atomic_array.of_array
      (Array.init n (fun s ->
           bucket_value ~cost:(cost_of s) (Graphs.Csr.out_degree graph s + 1)))
  in
  let pq =
    Pq.create ~schedule ~num_workers:workers ~direction:Bucket_order.Higher_first
      ~allow_coarsening:false ~priorities ~initial:Pq.All_vertices ~pool ()
  in
  let in_cover = Array.make n false in
  let uncovered = ref n in
  let rounds = ref 0 in
  let candidates = Array.init workers (fun _ -> Int_vec.create ()) in
  let covered_delta = Array.make workers 0 in
  while !uncovered > 0 && not (Pq.finished pq) do
    incr rounds;
    let frontier = Pq.dequeue_ready_set pq in
    let members = Frontier.Vertex_subset.sparse_members frontier in
    let current_value = Pq.current_priority pq in
    (* Phase 1: validate each extracted set against its true uncovered
       degree; refile sets whose stored priority went stale, drop fully
       covered sets, keep exact matches as this round's candidates. *)
    Array.iter Int_vec.clear candidates;
    Pool.parallel_for_ranges_tid pool ~chunk:64 ~lo:0 ~hi:(Array.length members)
      (fun ~tid ~lo ~hi ->
        for i = lo to hi - 1 do
          let s = members.(i) in
          if not in_cover.(s) then begin
            let d = uncovered_degree graph covered s in
            if d = 0 then Atomic_array.set priorities s Bucket_order.null_priority
            else begin
              let p = bucket_value ~cost:(cost_of s) d in
              if p = current_value then Int_vec.push candidates.(tid) s
              else Pq.set_priority pq { Pq.tid; use_atomics = true } s p
            end
          end
        done);
    let round_candidates =
      let merged = Int_vec.create () in
      Array.iter (fun vec -> Int_vec.append merged vec) candidates;
      Int_vec.to_array merged
    in
    let num_candidates = Array.length round_candidates in
    if num_candidates > 0 then begin
      (* Phase 2: nearly-independent-set reservation — each uncovered
         element remembers the smallest candidate id claiming it. *)
      Pool.parallel_for_ranges pool ~chunk:16 ~lo:0 ~hi:num_candidates
        (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            let s = round_candidates.(i) in
            iter_set graph s (fun e ->
                if Atomic_array.get covered e = 0 then
                  ignore (Atomic_array.fetch_min reservations e s))
          done);
      (* Phase 3: candidates that won at least 3/4 of their claimed elements
         join the cover; the rest release their reservations and are
         refiled by their next extraction. *)
      Array.fill covered_delta 0 workers 0;
      Pool.parallel_for_ranges_tid pool ~chunk:16 ~lo:0 ~hi:num_candidates
        (fun ~tid ~lo ~hi ->
          for i = lo to hi - 1 do
          let s = round_candidates.(i) in
          let claimed = ref 0 and won = ref 0 in
          iter_set graph s (fun e ->
              if Atomic_array.get covered e = 0 then begin
                incr claimed;
                if Atomic_array.get reservations e = s then incr won
              end);
          let ctx = { Pq.tid; use_atomics = true } in
          if !won > 0 && !won * 4 >= !claimed * 3 then begin
            in_cover.(s) <- true;
            Atomic_array.set priorities s Bucket_order.null_priority;
            let actually_covered = ref 0 in
            iter_set graph s (fun e ->
                if
                  Atomic_array.get reservations e = s
                  && Atomic_array.get covered e = 0
                then begin
                  Atomic_array.set covered e 1;
                  incr actually_covered
                end);
            covered_delta.(tid) <- covered_delta.(tid) + !actually_covered
          end
          else begin
            (* Release this candidate's reservations and refile it. *)
            iter_set graph s (fun e ->
                if Atomic_array.get reservations e = s then
                  Atomic_array.set reservations e max_int);
            let remaining = max 0 (!claimed - !won) in
            if remaining = 0 then
              (* Everything it claimed is being taken by winners; it will be
                 dropped or refiled at its next extraction. *)
              Pq.set_priority pq ctx s current_value
            else
              Pq.set_priority pq ctx s (bucket_value ~cost:(cost_of s) (max 1 remaining))
          end
          done);
      uncovered := !uncovered - Array.fold_left ( + ) 0 covered_delta
    end
  done;
  let cover_size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 in_cover in
  let cover_cost = ref 0 in
  Array.iteri (fun s chosen -> if chosen then cover_cost := !cover_cost + cost_of s) in_cover;
  {
    in_cover;
    cover_size;
    cover_cost = !cover_cost;
    rounds = !rounds;
    bucket_inserts = Pq.total_bucket_inserts pq;
  }

let is_valid_cover graph r =
  let n = Graphs.Csr.num_vertices graph in
  let covered = Array.make n false in
  for s = 0 to n - 1 do
    if r.in_cover.(s) then iter_set graph s (fun e -> covered.(e) <- true)
  done;
  Array.for_all Fun.id covered
