(** Frontier-based unordered Bellman-Ford, the baseline the paper's Figure 1
    compares ordered SSSP against (and what unordered GraphIt/Ligra run).
    Active vertices are relaxed in arbitrary order each iteration, so large-
    diameter graphs pay enormous amounts of redundant work. *)

type result = {
  dist : int array;
  iterations : int;  (** Frontier sweeps until fixpoint. *)
  edges_relaxed : int;
}

(** [run ~pool ~graph ~source ()] computes exact shortest distances. *)
val run : pool:Parallel.Pool.t -> graph:Graphs.Csr.t -> source:int -> unit -> result

(** [run_incremental ~pool ~old_graph ~graph ~source ~batch ~prev ()]
    repairs a previous result after [batch] transformed [old_graph] into
    [graph]: dirty distances (per {!Graphs.Delta.plan}) are unlearned and
    the clean boundary is swept to fixpoint with unordered frontier
    iterations. The differential checker uses this as the incremental
    counterpart that shares no bucketing code with the ordered engine. *)
val run_incremental :
  pool:Parallel.Pool.t ->
  old_graph:Graphs.Csr.t ->
  graph:Graphs.Csr.t ->
  source:int ->
  batch:Graphs.Delta.batch ->
  prev:int array ->
  unit ->
  result
