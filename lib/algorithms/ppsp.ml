module Atomic_array = Parallel.Atomic_array
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Engine = Ordered.Engine

type result = {
  distance : int;
  stats : Ordered.Stats.t;
}

let run ~pool ~graph ?transpose ?handle ~schedule ~source ~target ?deadline () =
  let n = Graphs.Csr.num_vertices graph in
  if source < 0 || source >= n || target < 0 || target >= n then
    invalid_arg "Ppsp.run: endpoint out of range";
  let dist = Atomic_array.make n Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  let pq =
    Pq.create ~schedule ~num_workers:(Parallel.Pool.num_workers pool)
      ~direction:Bucket_order.Lower_first ~allow_coarsening:true ~priorities:dist
      ~initial:(Pq.Start_vertex source) ~pool ()
  in
  let edge_fn ctx ~src ~dst ~weight =
    let new_dist = Atomic_array.get dist src + weight in
    Pq.update_priority_min pq ctx dst new_dist
  in
  (* Early exit: once the current bucket's priority passes dist[target], no
     relaxation can improve it (monotonicity of Δ-stepping buckets). *)
  let stop () =
    Atomic_array.get dist target <> Bucket_order.null_priority
    && Pq.finished_vertex pq target
  in
  let stats =
    Engine.run ~pool ~graph ?transpose ?handle ~schedule ~pq ~edge_fn ~stop
      ?deadline ()
  in
  { distance = Atomic_array.get dist target; stats }
