(** Weighted breadth-first search: Δ-stepping specialized to Δ = 1 for
    graphs with small positive integer weights (Section 6.1 of the paper,
    following Julienne's wBFS). *)

(** [run ~pool ~graph ~schedule ~source ()] is {!Sssp_delta.run} with the
    schedule's Δ forced to 1; every other scheduling choice (eager/lazy,
    fusion, traversal) is honored. *)
val run :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  ?transpose:Graphs.Csr.t ->
  ?handle:Graphs.Handle.t ->
  schedule:Ordered.Schedule.t ->
  source:int ->
  unit ->
  Sssp_delta.result
