(** Δ-stepping single-source shortest paths (Figures 5-7 of the paper) on
    the ordered runtime. The schedule chooses between lazy, eager, and
    eager-with-fusion bucket updates; all schedules compute exact shortest
    distances. *)

type result = {
  dist : int array;
      (** Shortest distances; unreachable vertices hold
          {!Bucketing.Bucket_order.null_priority}. *)
  stats : Ordered.Stats.t;
}

(** [run ~pool ~graph ~schedule ~source ()] executes Δ-stepping with
    [schedule.delta] as the priority-coarsening factor.

    @param transpose required when [schedule.traversal] is [Dense_pull] or
      [Hybrid].
    @param trace records one entry per round (see {!Ordered.Trace}). *)
val run :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  ?transpose:Graphs.Csr.t ->
  ?handle:Graphs.Handle.t ->
  schedule:Ordered.Schedule.t ->
  source:int ->
  ?deadline:Ordered.Deadline.t ->
  ?trace:Ordered.Trace.t ->
  unit ->
  result
