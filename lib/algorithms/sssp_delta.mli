(** Δ-stepping single-source shortest paths (Figures 5-7 of the paper) on
    the ordered runtime. The schedule chooses between lazy, eager, and
    eager-with-fusion bucket updates; all schedules compute exact shortest
    distances. *)

type result = {
  dist : int array;
      (** Shortest distances; unreachable vertices hold
          {!Bucketing.Bucket_order.null_priority}. *)
  stats : Ordered.Stats.t;
}

(** [run ~pool ~graph ~schedule ~source ()] executes Δ-stepping with
    [schedule.delta] as the priority-coarsening factor.

    @param transpose required when [schedule.traversal] is [Dense_pull] or
      [Hybrid].
    @param trace records one entry per round (see {!Ordered.Trace}). *)
val run :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  ?transpose:Graphs.Csr.t ->
  ?handle:Graphs.Handle.t ->
  schedule:Ordered.Schedule.t ->
  source:int ->
  ?deadline:Ordered.Deadline.t ->
  ?trace:Ordered.Trace.t ->
  unit ->
  result

type incremental = {
  result : result;  (** Exact shortest distances on the {e new} graph. *)
  affected : int;  (** [|dirty| + |seeds|] from {!Graphs.Delta.plan}. *)
  fell_back : bool;
      (** True when the affected set exceeded
          [schedule.incremental_threshold * n] and a full {!run} was
          executed instead. *)
}

(** [run_incremental ~pool ~old_graph ~graph ~schedule ~source ~batch
    ~prev ()] repairs a previous SSSP result after [batch] transformed
    [old_graph] into [graph] (i.e. [graph = Delta.apply old_graph batch]).
    [prev] is the distance vector [run] produced on [old_graph] for the
    same [source]; it is not modified. The repair plans the conservative
    affected set ({!Graphs.Delta.plan}), unlearns dirty distances, and
    re-seeds the bucket structures from the clean boundary — identical
    results to a from-scratch [run] on [graph], usually at a fraction of
    the work. [transpose]/[handle] must describe the {e new} graph. *)
val run_incremental :
  pool:Parallel.Pool.t ->
  old_graph:Graphs.Csr.t ->
  graph:Graphs.Csr.t ->
  ?transpose:Graphs.Csr.t ->
  ?handle:Graphs.Handle.t ->
  schedule:Ordered.Schedule.t ->
  source:int ->
  batch:Graphs.Delta.batch ->
  prev:int array ->
  ?deadline:Ordered.Deadline.t ->
  ?trace:Ordered.Trace.t ->
  unit ->
  incremental
