let run ~pool ~graph ?transpose ?handle ~schedule ~source () =
  let schedule = { schedule with Ordered.Schedule.delta = 1 } in
  Sssp_delta.run ~pool ~graph ?transpose ?handle ~schedule ~source ()
