module Vertex_subset = Frontier.Vertex_subset
module Edge_map = Traverse.Edge_map
module Scratch = Traverse.Scratch

type result = {
  coreness : int array;
  iterations : int;
}

(* H-index fixpoint: each sweep recomputes, for every vertex [v], the
   largest h such that at least h neighbors have estimate >= h, by counting
   estimates into a histogram truncated at [v]'s current estimate. The
   sweep runs as a Pull edge-map over the full frontier (no gating bitmap,
   pull ownership, no atomics): [vertex_begin] resets the worker's
   histogram, the edge function bins one neighbor estimate, [vertex_end]
   scans the histogram down. *)
let run ~pool ~graph () =
  let n = Graphs.Csr.num_vertices graph in
  let workers = Parallel.Pool.num_workers pool in
  let estimates = Graphs.Csr.out_degrees graph in
  let next_estimates = Array.make n 0 in
  let max_degree = Array.fold_left max 0 estimates in
  (* Per-worker histogram scratch so sweeps can run in parallel. *)
  let hist = Array.init workers (fun _ -> Array.make (max_degree + 1) 0) in
  let changed = Array.make workers false in
  let scratch = Scratch.create ~pool ~graph in
  let everyone = Vertex_subset.full ~num_vertices:n in
  let vertex_begin ctx v =
    let counts = hist.(ctx.Edge_map.tid) in
    for i = 0 to estimates.(v) do
      counts.(i) <- 0
    done
  in
  let count ctx ~src ~dst ~weight:_ =
    let counts = hist.(ctx.Edge_map.tid) in
    let e = min estimates.(src) estimates.(dst) in
    counts.(e) <- counts.(e) + 1
  in
  let vertex_end ctx v =
    let counts = hist.(ctx.Edge_map.tid) in
    let cap = estimates.(v) in
    let rec scan h cumulative =
      if h <= 0 then 0
      else begin
        let cumulative = cumulative + counts.(h) in
        if cumulative >= h then h else scan (h - 1) cumulative
      end
    in
    let h = scan cap 0 in
    next_estimates.(v) <- h;
    if h <> cap then changed.(ctx.Edge_map.tid) <- true
  in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    incr iterations;
    Array.fill changed 0 workers false;
    (* Passing the graph itself as the "transpose" makes the pull sweep
       enumerate each destination's out-neighbors, which is exactly the
       neighborhood the h-index needs. Chunk 256: the sweep is
       near-uniform per vertex, so guided chunks touch the shared cursor
       O(workers log n) times instead of O(n / chunk). *)
    ignore
      (Edge_map.run scratch ~graph ~transpose:graph ~vertex_begin ~vertex_end
         ~chunk:256 ~direction:Edge_map.Pull everyone ~f:count);
    Array.blit next_estimates 0 estimates 0 n;
    continue := Array.exists Fun.id changed
  done;
  { coreness = estimates; iterations = !iterations }
