module Pool = Parallel.Pool

type result = {
  coreness : int array;
  iterations : int;
}

(* H-index of the neighbor estimates of [v]: the largest h such that at
   least h neighbors have estimate >= h. Computed by counting estimates
   into a histogram truncated at the current estimate of [v]. *)
let h_index graph estimates counts v =
  let cap = estimates.(v) in
  if cap = 0 then 0
  else begin
    for i = 0 to cap do
      counts.(i) <- 0
    done;
    Graphs.Csr.iter_out graph v (fun u _w ->
        let e = min estimates.(u) cap in
        counts.(e) <- counts.(e) + 1);
    let rec scan h cumulative =
      if h <= 0 then 0
      else begin
        let cumulative = cumulative + counts.(h) in
        if cumulative >= h then h else scan (h - 1) cumulative
      end
    in
    scan cap 0
  end

let run ~pool ~graph () =
  let n = Graphs.Csr.num_vertices graph in
  let workers = Pool.num_workers pool in
  let estimates = Graphs.Csr.out_degrees graph in
  let next_estimates = Array.make n 0 in
  let max_degree = Array.fold_left max 0 estimates in
  (* Per-worker histogram scratch so sweeps can run in parallel. *)
  let scratch = Array.init workers (fun _ -> Array.make (max_degree + 1) 0) in
  let changed = Array.make workers false in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    incr iterations;
    Array.fill changed 0 workers false;
    (* The h-index sweep is near-uniform per vertex: guided chunks touch the
       shared cursor O(workers log n) times instead of O(n / chunk). *)
    Pool.parallel_for_ranges_tid pool ~sched:Pool.Guided ~chunk:256 ~lo:0 ~hi:n
      (fun ~tid ~lo ~hi ->
        let counts = scratch.(tid) in
        for v = lo to hi - 1 do
          let h = h_index graph estimates counts v in
          next_estimates.(v) <- h;
          if h <> estimates.(v) then changed.(tid) <- true
        done);
    Array.blit next_estimates 0 estimates 0 n;
    continue := Array.exists Fun.id changed
  done;
  { coreness = estimates; iterations = !iterations }
