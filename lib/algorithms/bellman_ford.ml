module Atomic_array = Parallel.Atomic_array
module Pool = Parallel.Pool
module Update_buffer = Bucketing.Update_buffer

type result = {
  dist : int array;
  iterations : int;
  edges_relaxed : int;
}

let run ~pool ~graph ~source () =
  let n = Graphs.Csr.num_vertices graph in
  if source < 0 || source >= n then invalid_arg "Bellman_ford.run: source out of range";
  let workers = Pool.num_workers pool in
  let dist = Atomic_array.make n Bucketing.Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  let buffer = Update_buffer.create ~num_vertices:n ~num_workers:workers () in
  let frontier = ref [| source |] in
  let iterations = ref 0 in
  let edge_counts = Array.make workers 0 in
  while Array.length !frontier > 0 do
    incr iterations;
    let members = !frontier in
    Pool.parallel_for_ranges_tid pool ~chunk:64 ~lo:0 ~hi:(Array.length members)
      (fun ~tid ~lo ~hi ->
        for i = lo to hi - 1 do
          let u = members.(i) in
          let du = Atomic_array.get dist u in
          edge_counts.(tid) <- edge_counts.(tid) + Graphs.Csr.out_degree graph u;
          Graphs.Csr.iter_out graph u (fun v w ->
              if Atomic_array.fetch_min dist v (du + w) then
                ignore (Update_buffer.try_add buffer ~tid v))
        done);
    frontier := Update_buffer.drain_to_array buffer ~pool
  done;
  {
    dist = Atomic_array.to_array dist;
    iterations = !iterations;
    edges_relaxed = Array.fold_left ( + ) 0 edge_counts;
  }
