module Atomic_array = Parallel.Atomic_array
module Update_buffer = Bucketing.Update_buffer
module Vertex_subset = Frontier.Vertex_subset
module Edge_map = Traverse.Edge_map
module Scratch = Traverse.Scratch

type result = {
  dist : int array;
  iterations : int;
  edges_relaxed : int;
}

let run ~pool ~graph ~source () =
  let n = Graphs.Csr.num_vertices graph in
  if source < 0 || source >= n then invalid_arg "Bellman_ford.run: source out of range";
  let dist = Atomic_array.make n Bucketing.Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  let scratch = Scratch.create ~pool ~graph in
  let buffer = Scratch.buffer scratch in
  let relax ctx ~src ~dst ~weight =
    if Atomic_array.fetch_min dist dst (Atomic_array.get dist src + weight)
    then ignore (Update_buffer.try_add buffer ~tid:ctx.Edge_map.tid dst)
  in
  let frontier = ref (Vertex_subset.singleton ~num_vertices:n source) in
  let iterations = ref 0 in
  while not (Vertex_subset.is_empty !frontier) do
    incr iterations;
    ignore
      (Edge_map.run scratch ~graph ~direction:Edge_map.Push !frontier ~f:relax);
    frontier := Scratch.drain_frontier scratch
  done;
  {
    dist = Atomic_array.to_array dist;
    iterations = !iterations;
    edges_relaxed = Scratch.edges_traversed scratch;
  }

(* Incremental repair on the unordered baseline: same plan as the ordered
   path (dirty closure + boundary seeds), but the repaired region is
   swept to fixpoint with plain frontier iterations. Serves as the
   differential checker's incremental counterpart — it shares no
   bucketing code with the engine, so agreement is meaningful. *)
let run_incremental ~pool ~old_graph ~graph ~source ~batch ~prev () =
  let n = Graphs.Csr.num_vertices graph in
  if source < 0 || source >= n then
    invalid_arg "Bellman_ford.run_incremental: source out of range";
  if Array.length prev <> n then
    invalid_arg "Bellman_ford.run_incremental: prev length mismatch";
  let null = Bucketing.Bucket_order.null_priority in
  let plan = Graphs.Delta.plan ~old_csr:old_graph ~new_csr:graph batch ~dist:prev ~null in
  let dist = Atomic_array.of_array prev in
  Array.iter (fun v -> Atomic_array.set dist v null) plan.Graphs.Delta.dirty;
  let scratch = Scratch.create ~pool ~graph in
  let buffer = Scratch.buffer scratch in
  let relax ctx ~src ~dst ~weight =
    if Atomic_array.fetch_min dist dst (Atomic_array.get dist src + weight)
    then ignore (Update_buffer.try_add buffer ~tid:ctx.Edge_map.tid dst)
  in
  List.iter
    (fun (v, cand) ->
      if Atomic_array.fetch_min dist v cand then
        ignore (Update_buffer.try_add buffer ~tid:0 v))
    plan.Graphs.Delta.seeds;
  let frontier = ref (Scratch.drain_frontier scratch) in
  let iterations = ref 0 in
  while not (Vertex_subset.is_empty !frontier) do
    incr iterations;
    ignore (Edge_map.run scratch ~graph ~direction:Edge_map.Push !frontier ~f:relax);
    frontier := Scratch.drain_frontier scratch
  done;
  {
    dist = Atomic_array.to_array dist;
    iterations = !iterations;
    edges_relaxed = Scratch.edges_traversed scratch;
  }
