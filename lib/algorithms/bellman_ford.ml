module Atomic_array = Parallel.Atomic_array
module Update_buffer = Bucketing.Update_buffer
module Vertex_subset = Frontier.Vertex_subset
module Edge_map = Traverse.Edge_map
module Scratch = Traverse.Scratch

type result = {
  dist : int array;
  iterations : int;
  edges_relaxed : int;
}

let run ~pool ~graph ~source () =
  let n = Graphs.Csr.num_vertices graph in
  if source < 0 || source >= n then invalid_arg "Bellman_ford.run: source out of range";
  let dist = Atomic_array.make n Bucketing.Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  let scratch = Scratch.create ~pool ~graph in
  let buffer = Scratch.buffer scratch in
  let relax ctx ~src ~dst ~weight =
    if Atomic_array.fetch_min dist dst (Atomic_array.get dist src + weight)
    then ignore (Update_buffer.try_add buffer ~tid:ctx.Edge_map.tid dst)
  in
  let frontier = ref (Vertex_subset.singleton ~num_vertices:n source) in
  let iterations = ref 0 in
  while not (Vertex_subset.is_empty !frontier) do
    incr iterations;
    ignore
      (Edge_map.run scratch ~graph ~direction:Edge_map.Push !frontier ~f:relax);
    frontier := Scratch.drain_frontier scratch
  done;
  {
    dist = Atomic_array.to_array dist;
    iterations = !iterations;
    edges_relaxed = Scratch.edges_traversed scratch;
  }
