(** Parallel approximate set cover by bucketed peeling of highest-value sets
    (Blelloch et al.'s MANIS approach as implemented in Julienne and used by
    the paper; Section 6.1).

    Instance encoding: the ground elements are the vertices of a symmetric
    graph, and the set associated with vertex [s] covers [s] and its
    neighbors. Sets are bucketed by [floor(log2 uncovered_degree)] and
    processed highest-bucket-first with strict priorities (no coarsening).
    Each round, candidate sets {e reserve} their uncovered elements with an
    atomic minimum on the element (lowest set id wins); a candidate that
    wins at least 3/4 of its claimed elements joins the cover, and losers
    are re-bucketed — a nearly-independent-set step that guarantees
    progress while keeping the greedy approximation quality.

    Like the paper's version, this application drives the priority queue
    with extern-function logic rather than a plain edge map. *)

type result = {
  in_cover : bool array;  (** Which sets (vertices) were chosen. *)
  cover_size : int;
  cover_cost : int;  (** Sum of chosen sets' costs (= [cover_size] unweighted). *)
  rounds : int;
  bucket_inserts : int;
}

(** [run ~pool ~graph ~schedule ?costs ()] covers every vertex of the
    symmetric graph [graph]. The schedule selects the bucket backend (lazy,
    as in Julienne, or eager); Δ is ignored.

    [costs] generalizes to weighted set cover, which the paper notes the
    bucketed algorithm handles directly: sets are then bucketed by their
    {e cost-per-element ratio} [uncovered / cost] instead of plain
    uncovered degree. Costs must be positive; omitted = unweighted. *)
val run :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  ?handle:Graphs.Handle.t ->
  schedule:Ordered.Schedule.t ->
  ?costs:int array ->
  unit ->
  result

(** [is_valid_cover graph r] checks that every vertex is covered by some
    chosen set. *)
val is_valid_cover : Graphs.Csr.t -> result -> bool
