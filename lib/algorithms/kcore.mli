(** Ordered k-core decomposition by bucketed peeling (Matula-Beck; Julienne's
    formulation used in the paper).

    The priority of a vertex is its induced degree; vertices are processed
    lowest-degree-first with no priority coarsening (k-core tolerates no
    priority inversions, Section 2). Peeling a vertex at core value [k]
    decrements each neighbor's degree, clamped at [k] — so on termination
    the priority vector holds exactly the coreness of every vertex.

    The interesting schedules are [Eager_no_fusion]/[Eager_with_fusion]
    (per-update bucket moves) and [Lazy_constant_sum] (the histogram
    reduction of Fig. 10, which the paper shows is up to 4x faster because
    every vertex is peeled exactly [degree] times). The graph must be
    symmetric. *)

type result = {
  coreness : int array;
  stats : Ordered.Stats.t;
}

(** [run ~pool ~graph ~schedule ()] computes the coreness of every vertex. *)
val run :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  ?handle:Graphs.Handle.t ->
  schedule:Ordered.Schedule.t ->
  ?deadline:Ordered.Deadline.t ->
  unit ->
  result

(** [max_core r] is the largest coreness in the decomposition. *)
val max_core : result -> int
