module Atomic_array = Parallel.Atomic_array
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Engine = Ordered.Engine

type result = {
  distance : int;
  stats : Ordered.Stats.t;
}

let run ~pool ~graph ?coords ?heuristic ?transpose ?handle ~schedule ~source
    ~target ?deadline () =
  let n = Graphs.Csr.num_vertices graph in
  if source < 0 || source >= n || target < 0 || target >= n then
    invalid_arg "Astar.run: endpoint out of range";
  (match coords with
  | Some c when Graphs.Coords.num_vertices c <> n ->
      invalid_arg "Astar.run: coordinates do not match the graph"
  | _ -> ());
  (* The heuristic is the max of whatever admissible-and-consistent lower
     bounds are on hand: scaled Euclidean distance when coordinates exist
     (the paper's road-network setup), a caller-supplied bound (the query
     service's ALT landmark cache), or zero — which degrades A* to plain
     PPSP, still exact, just undirected. The max of consistent heuristics
     is consistent, so the early exit below stays exact. *)
  let heuristic =
    let coords_h =
      Option.map
        (fun c v -> Graphs.Coords.scaled_distance ~scale:100.0 c v target)
        coords
    in
    match (coords_h, heuristic) with
    | None, None -> fun _ -> 0
    | Some h, None | None, Some h -> h
    | Some h1, Some h2 -> fun v -> max (h1 v) (h2 v)
  in
  let dist = Atomic_array.make n Bucket_order.null_priority in
  (* [estimate] is the priority vector: f = g + h. *)
  let estimate = Atomic_array.make n Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  Atomic_array.set estimate source (heuristic source);
  let pq =
    Pq.create ~schedule ~num_workers:(Parallel.Pool.num_workers pool)
      ~direction:Bucket_order.Lower_first ~allow_coarsening:true
      ~priorities:estimate ~initial:(Pq.Start_vertex source) ~pool ()
  in
  let edge_fn ctx ~src ~dst ~weight =
    let new_dist = Atomic_array.get dist src + weight in
    if Atomic_array.fetch_min dist dst new_dist then
      Pq.update_priority_min pq ctx dst (new_dist + heuristic dst)
  in
  let stop () =
    Atomic_array.get dist target <> Bucket_order.null_priority
    && Pq.finished_vertex pq target
  in
  let stats =
    Engine.run ~pool ~graph ?transpose ?handle ~schedule ~pq ~edge_fn ~stop
      ?deadline ()
  in
  { distance = Atomic_array.get dist target; stats }
