module Atomic_array = Parallel.Atomic_array
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Engine = Ordered.Engine

type result = {
  distance : int;
  stats : Ordered.Stats.t;
}

let run ~pool ~graph ~coords ?transpose ?handle ~schedule ~source ~target () =
  let n = Graphs.Csr.num_vertices graph in
  if source < 0 || source >= n || target < 0 || target >= n then
    invalid_arg "Astar.run: endpoint out of range";
  if Graphs.Coords.num_vertices coords <> n then
    invalid_arg "Astar.run: coordinates do not match the graph";
  let heuristic v = Graphs.Coords.scaled_distance ~scale:100.0 coords v target in
  let dist = Atomic_array.make n Bucket_order.null_priority in
  (* [estimate] is the priority vector: f = g + h. *)
  let estimate = Atomic_array.make n Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  Atomic_array.set estimate source (heuristic source);
  let pq =
    Pq.create ~schedule ~num_workers:(Parallel.Pool.num_workers pool)
      ~direction:Bucket_order.Lower_first ~allow_coarsening:true
      ~priorities:estimate ~initial:(Pq.Start_vertex source) ~pool ()
  in
  let edge_fn ctx ~src ~dst ~weight =
    let new_dist = Atomic_array.get dist src + weight in
    if Atomic_array.fetch_min dist dst new_dist then
      Pq.update_priority_min pq ctx dst (new_dist + heuristic dst)
  in
  let stop () =
    Atomic_array.get dist target <> Bucket_order.null_priority
    && Pq.finished_vertex pq target
  in
  let stats =
    Engine.run ~pool ~graph ?transpose ?handle ~schedule ~pq ~edge_fn ~stop ()
  in
  { distance = Atomic_array.get dist target; stats }
