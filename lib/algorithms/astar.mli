(** A* search on road networks (Section 6.1 of the paper).

    Identical to point-to-point Δ-stepping except that the priority of a
    vertex is the {e estimated} total source→target distance through it:
    [f(v) = dist(v) + h(v)], where the heuristic [h] is the scaled Euclidean
    distance to the target computed from vertex coordinates. Road graphs
    built by {!Graphs.Generators.road_grid} make [h] admissible, so the
    early exit returns exact distances. Like the paper, this application
    needs extern-style logic beyond the pure DSL operators (two vertex
    vectors updated per relaxation). *)

type result = {
  distance : int;
      (** Exact [source]→[target] distance, or
          {!Bucketing.Bucket_order.null_priority} when unreachable. *)
  stats : Ordered.Stats.t;
}

(** [run ~pool ~graph ~coords ~schedule ~source ~target ()] runs A* with the
    Euclidean heuristic at scale 100 (matching road-grid weights). *)
val run :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  coords:Graphs.Coords.t ->
  ?transpose:Graphs.Csr.t ->
  ?handle:Graphs.Handle.t ->
  schedule:Ordered.Schedule.t ->
  source:int ->
  target:int ->
  unit ->
  result
