(** A* search on road networks (Section 6.1 of the paper).

    Identical to point-to-point Δ-stepping except that the priority of a
    vertex is the {e estimated} total source→target distance through it:
    [f(v) = dist(v) + h(v)]. The heuristic [h] is pluggable: the scaled
    Euclidean distance to the target computed from vertex coordinates
    (road graphs built by {!Graphs.Generators.road_grid} make it
    admissible), a caller-supplied lower bound such as the query
    service's ALT landmark cache ([Service.Alt]), or both — the engine
    runs on their pointwise max. Any admissible-and-consistent [h] keeps
    the early exit exact. Like the paper, this application needs
    extern-style logic beyond the pure DSL operators (two vertex vectors
    updated per relaxation). *)

type result = {
  distance : int;
      (** Exact [source]→[target] distance, or
          {!Bucketing.Bucket_order.null_priority} when unreachable. When
          the run was cut short by [deadline] ([stats.timed_out]), a
          finite value is the length of a real discovered path — an
          upper bound on the true distance — and [null_priority] means
          no path was found in time. *)
  stats : Ordered.Stats.t;
}

(** [run ~pool ~graph ?coords ?heuristic ~schedule ~source ~target ()]
    runs A* with the max of the available heuristics: the Euclidean
    bound at scale 100 when [coords] is given (matching road-grid
    weights), [heuristic] when supplied (must be admissible and
    consistent for exact answers), and [h = 0] when neither is — plain
    PPSP. *)
val run :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  ?coords:Graphs.Coords.t ->
  ?heuristic:(int -> int) ->
  ?transpose:Graphs.Csr.t ->
  ?handle:Graphs.Handle.t ->
  schedule:Ordered.Schedule.t ->
  source:int ->
  target:int ->
  ?deadline:Ordered.Deadline.t ->
  unit ->
  result
