module Atomic_array = Parallel.Atomic_array
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Engine = Ordered.Engine

type result = {
  dist : int array;
  stats : Ordered.Stats.t;
}

let run ~pool ~graph ?transpose ?handle ~schedule ~source ?deadline ?trace () =
  let n = Graphs.Csr.num_vertices graph in
  if source < 0 || source >= n then invalid_arg "Sssp_delta.run: source out of range";
  let dist = Atomic_array.make n Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  let pq =
    Pq.create ~schedule ~num_workers:(Parallel.Pool.num_workers pool)
      ~direction:Bucket_order.Lower_first ~allow_coarsening:true ~priorities:dist
      ~initial:(Pq.Start_vertex source) ~pool ()
  in
  (* The updateEdge user function of Fig. 3: relax and move buckets. *)
  let edge_fn ctx ~src ~dst ~weight =
    let new_dist = Atomic_array.get dist src + weight in
    Pq.update_priority_min pq ctx dst new_dist
  in
  let stats =
    Engine.run ~pool ~graph ?transpose ?handle ~schedule ~pq ~edge_fn ?deadline
      ?trace ()
  in
  { dist = Atomic_array.to_array dist; stats }
