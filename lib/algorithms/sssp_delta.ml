module Atomic_array = Parallel.Atomic_array
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Engine = Ordered.Engine

type result = {
  dist : int array;
  stats : Ordered.Stats.t;
}

let run ~pool ~graph ?transpose ?handle ~schedule ~source ?deadline ?trace () =
  let n = Graphs.Csr.num_vertices graph in
  if source < 0 || source >= n then invalid_arg "Sssp_delta.run: source out of range";
  let dist = Atomic_array.make n Bucket_order.null_priority in
  Atomic_array.set dist source 0;
  let pq =
    Pq.create ~schedule ~num_workers:(Parallel.Pool.num_workers pool)
      ~direction:Bucket_order.Lower_first ~allow_coarsening:true ~priorities:dist
      ~initial:(Pq.Start_vertex source) ~pool ()
  in
  (* The updateEdge user function of Fig. 3: relax and move buckets. *)
  let edge_fn ctx ~src ~dst ~weight =
    let new_dist = Atomic_array.get dist src + weight in
    Pq.update_priority_min pq ctx dst new_dist
  in
  let stats =
    Engine.run ~pool ~graph ?transpose ?handle ~schedule ~pq ~edge_fn ?deadline
      ?trace ()
  in
  { dist = Atomic_array.to_array dist; stats }

type incremental = {
  result : result;
  affected : int;
  fell_back : bool;
}

let run_incremental ~pool ~old_graph ~graph ?transpose ?handle ~schedule ~source
    ~batch ~prev ?deadline ?trace () =
  let n = Graphs.Csr.num_vertices graph in
  if source < 0 || source >= n then
    invalid_arg "Sssp_delta.run_incremental: source out of range";
  if Array.length prev <> n then
    invalid_arg "Sssp_delta.run_incremental: prev length mismatch";
  let plan =
    Graphs.Delta.plan ~old_csr:old_graph ~new_csr:graph batch ~dist:prev
      ~null:Bucket_order.null_priority
  in
  let threshold =
    int_of_float (schedule.Ordered.Schedule.incremental_threshold *. float_of_int n)
  in
  if plan.Graphs.Delta.affected > threshold then begin
    let r = run ~pool ~graph ?transpose ?handle ~schedule ~source ?deadline ?trace () in
    { result = r; affected = plan.Graphs.Delta.affected; fell_back = true }
  end
  else begin
    let dist = Atomic_array.of_array prev in
    (* Dirty distances are unlearned before seeding, so every boundary
       candidate lands as a strict improvement and registers a bucket
       move; clean vertices keep their (still achievable) distances. *)
    Array.iter (fun v -> Atomic_array.set dist v Bucket_order.null_priority)
      plan.Graphs.Delta.dirty;
    let pq =
      Pq.create ~schedule ~num_workers:(Parallel.Pool.num_workers pool)
        ~direction:Bucket_order.Lower_first ~allow_coarsening:true ~priorities:dist
        ~initial:Pq.No_initial ~pool ()
    in
    let edge_fn ctx ~src ~dst ~weight =
      let new_dist = Atomic_array.get dist src + weight in
      Pq.update_priority_min pq ctx dst new_dist
    in
    let seed ctx =
      List.iter
        (fun (v, cand) -> Pq.update_priority_min pq ctx v cand)
        plan.Graphs.Delta.seeds
    in
    let stats =
      Engine.run_incremental ~pool ~graph ?transpose ?handle ~schedule ~pq ~edge_fn
        ~seed ?deadline ?trace ()
    in
    {
      result = { dist = Atomic_array.to_array dist; stats };
      affected = plan.Graphs.Delta.affected;
      fell_back = false;
    }
  end
