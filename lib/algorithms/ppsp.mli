(** Point-to-point shortest path via Δ-stepping with early termination: the
    run stops as soon as the destination's priority is finalized, i.e. when
    processing enters a bucket whose priority is at least the best distance
    already found (Section 6.1 of the paper). *)

type result = {
  distance : int;
      (** Shortest [source]→[target] distance, or
          {!Bucketing.Bucket_order.null_priority} when unreachable. *)
  stats : Ordered.Stats.t;
}

val run :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  ?transpose:Graphs.Csr.t ->
  ?handle:Graphs.Handle.t ->
  schedule:Ordered.Schedule.t ->
  source:int ->
  target:int ->
  ?deadline:Ordered.Deadline.t ->
  unit ->
  result
