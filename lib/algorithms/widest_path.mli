(** Widest path (maximum-bottleneck path): maximize, over all paths from the
    source, the minimum edge weight along the path — bandwidth routing.

    This is the canonical ordered algorithm for the {e other} half of the
    paper's Table 1: priorities {e increase} monotonically
    ([updatePriorityMax]) and the highest priority is processed first
    ([higher_first]). It tolerates priority coarsening exactly like
    Δ-stepping (a vertex processed with a non-final capacity is simply
    reprocessed when its capacity improves within the bucket), so every
    schedule — eager, eager with fusion, lazy — applies. *)

type result = {
  capacity : int array;
      (** [capacity.(v)] is the best bottleneck capacity of any
          source→v path; [0] when unreachable ([capacity.(source)] is the
          graph's maximum edge weight). *)
  stats : Ordered.Stats.t;
}

(** [run ~pool ~graph ~schedule ~source ()]. The schedule's Δ coarsens
    capacities. *)
val run :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  ?handle:Graphs.Handle.t ->
  schedule:Ordered.Schedule.t ->
  source:int ->
  ?deadline:Ordered.Deadline.t ->
  unit ->
  result

(** [sequential graph ~source] is the max-heap reference implementation,
    used as the correctness oracle. *)
val sequential : Graphs.Csr.t -> source:int -> int array
