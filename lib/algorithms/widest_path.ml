module Atomic_array = Parallel.Atomic_array
module Bucket_order = Bucketing.Bucket_order
module Pq = Ordered.Priority_queue
module Engine = Ordered.Engine
module Min_heap = Support.Min_heap

type result = {
  capacity : int array;
  stats : Ordered.Stats.t;
}

let run ~pool ~graph ?handle ~schedule ~source ?deadline () =
  let n = Graphs.Csr.num_vertices graph in
  if source < 0 || source >= n then invalid_arg "Widest_path.run: source out of range";
  (* 0 = "no path yet": a valid lowest priority that is never enqueued
     (vertices enter the queue only when an update raises them). *)
  let capacity = Atomic_array.make n 0 in
  Atomic_array.set capacity source (max 1 (Graphs.Csr.max_weight graph));
  let pq =
    Pq.create ~schedule ~num_workers:(Parallel.Pool.num_workers pool)
      ~direction:Bucket_order.Higher_first ~allow_coarsening:true
      ~priorities:capacity ~initial:(Pq.Start_vertex source) ~pool ()
  in
  let edge_fn ctx ~src ~dst ~weight =
    let through = min (Atomic_array.get capacity src) weight in
    Pq.update_priority_max pq ctx dst through
  in
  let stats = Engine.run ~pool ~graph ?handle ~schedule ~pq ~edge_fn ?deadline () in
  { capacity = Atomic_array.to_array capacity; stats }

let sequential graph ~source =
  let n = Graphs.Csr.num_vertices graph in
  let capacity = Array.make n 0 in
  capacity.(source) <- max 1 (Graphs.Csr.max_weight graph);
  let heap = Min_heap.create () in
  (* Negate keys: the min-heap pops the widest candidate first. *)
  Min_heap.push heap ~key:(-capacity.(source)) ~value:source;
  let rec drain () =
    match Min_heap.pop_min heap with
    | None -> ()
    | Some (neg_cap, u) ->
        if -neg_cap = capacity.(u) then
          Graphs.Csr.iter_out graph u (fun v w ->
              let through = min capacity.(u) w in
              if through > capacity.(v) then begin
                capacity.(v) <- through;
                Min_heap.push heap ~key:(-through) ~value:v
              end);
        drain ()
  in
  drain ();
  capacity
