(** Performance-optimization schedules for [applyUpdatePriority] operators —
    the scheduling-language surface of Table 2 in the paper, plus the
    original GraphIt direction and parallelization knobs it composes with. *)

(** The bucket-update strategy ([configApplyPriorityUpdate]). *)
type update_strategy =
  | Eager_with_fusion  (** Thread-local buckets + bucket fusion (Fig. 7). *)
  | Eager_no_fusion  (** Thread-local buckets, one sync per round (Fig. 6). *)
  | Lazy  (** Buffered updates, bulk bucket insertion (Fig. 5). *)
  | Lazy_constant_sum
      (** Lazy plus histogram reduction of constant-delta updates
          (Fig. 10); only valid when the user function performs a
          constant-sum priority update. *)

(** Edge-traversal direction ([configApplyDirection]). *)
type traversal =
  | Sparse_push  (** Sparse frontier, push along out-edges. *)
  | Dense_pull
      (** Dense frontier bitmap, pull along in-edges; no atomics on the
          destination (Fig. 9(b)). Only valid with lazy strategies. *)
  | Hybrid
      (** Ligra-style direction optimization, which the paper notes can be
          combined with the lazy bucketing schedules: each round pulls when
          the frontier's out-degree sum passes a density threshold and
          pushes otherwise. Only valid with lazy strategies. *)

type t = {
  strategy : update_strategy;
  delta : int;  (** Priority-coarsening factor ([configApplyPriorityUpdateDelta]). *)
  fusion_threshold : int;
      (** Max local-bucket size a thread may process without
          redistributing ([configBucketFusionThreshold]). *)
  num_open_buckets : int;
      (** Materialized buckets for lazy strategies ([configNumBuckets]). *)
  traversal : traversal;
  chunk_size : int;  (** Dynamic-scheduling grain for parallel loops. *)
  sched : Parallel.Pool.sched option;
      (** Loop-scheduling policy for the edge sweep ([configApplyParallelization]
          analogue). [None] keeps the traversal core's per-direction defaults
          ([Dynamic] for push, [Guided] for pull); [Some _] forces one policy
          in both directions. Orthogonal to correctness — enumerated by the
          differential sweep precisely because results must not depend on it. *)
  incremental_threshold : float;
      (** Incremental-recompute fallback knob: when a delta batch's
          affected set (dirty vertices + boundary seeds) exceeds this
          fraction of the vertex count, [run_incremental] consumers fall
          back to a full recompute. [0] forces full recompute always;
          [1] never falls back. Orthogonal to correctness — swept by the
          differential checker like the other axes. *)
}

(** [default] is eager-with-fusion, [delta = 1], threshold 1000, 128 open
    buckets, sparse-push, chunk 64 — mirroring the paper's defaults
    (Table 2 bolds eager_with_fusion). *)
val default : t

(** [validate t] rejects inconsistent combinations: non-positive parameters,
    an [incremental_threshold] outside [0, 1], [Dense_pull] with an eager
    strategy (eager bucket updates require push ownership of the local
    bins). *)
val validate : t -> (t, string) result

(** [strategy_of_string] / [strategy_to_string] use the scheduling-language
    spellings: ["eager_with_fusion"], ["eager_no_fusion"], ["lazy"],
    ["lazy_constant_sum"]. *)
val strategy_of_string : string -> (update_strategy, string) result

val strategy_to_string : update_strategy -> string

(** [traversal_of_string] / [traversal_to_string] use ["SparsePush"],
    ["DensePull"], and ["DensePull-SparsePush"] (hybrid). *)
val traversal_of_string : string -> (traversal, string) result

val traversal_to_string : traversal -> string

(** [sched_of_string] / [sched_to_string] use ["default"], ["static"],
    ["dynamic"], ["guided"]. *)
val sched_of_string : string -> (Parallel.Pool.sched option, string) result

val sched_to_string : Parallel.Pool.sched option -> string

(** [is_eager t] is true for both eager strategies. *)
val is_eager : t -> bool

(** [pp] prints a schedule as scheduling-language calls. *)
val pp : Format.formatter -> t -> unit
