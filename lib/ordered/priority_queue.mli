(** The abstract priority queue of the paper's algorithm-language extension
    (Table 1), backed by either lazy or eager buckets according to the
    schedule.

    A priority queue owns a {e priority vector} (the user's [dist], degree,
    or cost vector — priorities are always read from it, never cached) and a
    bucket structure over direction-normalized, Δ-coarsened keys. The update
    operators hide synchronization, deduplication, and bucket maintenance,
    exactly as the DSL operators do. *)

(** Where the initial frontier comes from. *)
type initial =
  | Start_vertex of int  (** Shortest-path style: one source. *)
  | All_vertices  (** Peeling style (k-core, SetCover): everyone. *)
  | No_initial  (** Populate manually via the update operators. *)

(** Per-worker update context. [use_atomics] is false only in pull
    traversal, where each destination is owned by a single worker
    (Fig. 9(b) of the paper drops the atomics). This is an alias for
    {!Traverse.Edge_map.ctx} — the traversal kernel constructs it; relax
    functions written against either name are interchangeable. *)
type ctx = Traverse.Edge_map.ctx = {
  tid : int;
  use_atomics : bool;
}

type t

(** [create ~schedule ~num_workers ~direction ~allow_coarsening ~priorities
    ~initial ()] builds the backend dictated by [schedule.strategy]. When
    [allow_coarsening] is false the schedule's Δ is ignored and 1 is used
    (k-core and SetCover tolerate no priority inversion, Section 2).
    [constant_sum_delta] must be supplied for the [Lazy_constant_sum]
    strategy: it is the fixed per-update priority change the analysis
    extracted (e.g. -1 for k-core). When [pool] is supplied (it must be the
    pool the algorithm runs on, so worker counts agree), lazy backends drain
    their update buffer in parallel at round boundaries via
    {!Bucketing.Update_buffer.drain_to_array}. *)
val create :
  schedule:Schedule.t ->
  num_workers:int ->
  direction:Bucketing.Bucket_order.direction ->
  allow_coarsening:bool ->
  priorities:Parallel.Atomic_array.t ->
  initial:initial ->
  ?constant_sum_delta:int ->
  ?pool:Parallel.Pool.t ->
  unit ->
  t

(** [num_vertices t] is the universe size. *)
val num_vertices : t -> int

(** [priorities t] is the underlying priority vector. *)
val priorities : t -> Parallel.Atomic_array.t

(** [delta t] is the effective coarsening factor. *)
val delta : t -> int

(** [finished t] is true when no bucket remains ([pq.finished()]). *)
val finished : t -> bool

(** [dequeue_ready_set t] extracts the next ready bucket as a vertex subset
    ([pq.dequeueReadySet()]). For lazy backends this first applies all
    buffered bucket updates (the [bulkUpdateBuckets] step). Raises
    [Invalid_argument] when the queue is finished. *)
val dequeue_ready_set : t -> Frontier.Vertex_subset.t

(** [current_priority t] is the representative (un-coarsened) priority of
    the bucket being processed ([pq.getCurrentPriority()]). *)
val current_priority : t -> int

(** [current_key t] is the normalized coarsened key of that bucket. *)
val current_key : t -> int

(** [finished_vertex t v] is true when [v]'s priority can no longer change
    ([pq.finishedVertex(v)]): its bucket precedes the current one, or the
    queue is finished. *)
val finished_vertex : t -> int -> bool

(** [update_priority_min t ctx v value] lowers [v]'s priority to [value] if
    smaller, scheduling the bucket move ([pq.updatePriorityMin]). *)
val update_priority_min : t -> ctx -> int -> int -> unit

(** [update_priority_max t ctx v value] raises [v]'s priority to [value] if
    larger ([pq.updatePriorityMax]). *)
val update_priority_max : t -> ctx -> int -> int -> unit

(** [update_priority_sum t ctx v ~diff ~floor] adds [diff] to [v]'s priority
    without letting it drop below [floor] ([pq.updatePrioritySum]). Under
    the [Lazy_constant_sum] backend the update is merely logged and reduced
    via histogram at the next round boundary; [diff] must then equal the
    [constant_sum_delta] the queue was created with. *)
val update_priority_sum : t -> ctx -> int -> diff:int -> floor:int -> unit

(** [set_priority t ctx v value] overwrites [v]'s priority and schedules the
    bucket move. This is the escape hatch used by SetCover's extern
    functions, where the new priority is recomputed rather than folded. *)
val set_priority : t -> ctx -> int -> int -> unit

(** [constant_sum_recorder t] is the fast path of the Fig. 10 transformation:
    under the [Lazy_constant_sum] backend, a constant-sum update only needs
    to log its target vertex — the histogram reduction applies the
    arithmetic once per vertex at the round boundary. The compiler rewrites
    the user function to call this recorder directly instead of
    [update_priority_sum]; [None] for every other backend. *)
val constant_sum_recorder : t -> (tid:int -> int -> unit) option

(** [key_of_priority t p] normalizes and coarsens a raw priority. *)
val key_of_priority : t -> int -> int

(** [vertex_on_current_bucket t v] tests whether [v]'s current priority maps
    to the bucket being processed — the staleness filter eager processing
    applies to frontier candidates. *)
val vertex_on_current_bucket : t -> int -> bool

(** [eager_buckets t] exposes the eager backend for the engine's fusion
    loop. Raises [Invalid_argument] on lazy backends. *)
val eager_buckets : t -> Bucketing.Eager_buckets.t

(** [is_eager t] discriminates the backend. *)
val is_eager : t -> bool

(** [needs_processing_filter t] is true when extracted frontiers may contain
    stale entries (eager backends: lazy extraction already filters). *)
val needs_processing_filter : t -> bool

(** [total_bucket_inserts t] is the lifetime insert count of the backend. *)
val total_bucket_inserts : t -> int
