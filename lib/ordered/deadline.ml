type t = { expires_at : float }

let after ~seconds = { expires_at = Unix.gettimeofday () +. seconds }
let after_ms ms = after ~seconds:(ms /. 1000.)
let expired t = Unix.gettimeofday () >= t.expires_at
let remaining_seconds t = t.expires_at -. Unix.gettimeofday ()

let earliest a b =
  if a.expires_at <= b.expires_at then a else b

let latest a b = if a.expires_at >= b.expires_at then a else b
