module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Vertex_subset = Frontier.Vertex_subset
module Eager_buckets = Bucketing.Eager_buckets
module Edge_map = Traverse.Edge_map
module Scratch = Traverse.Scratch
module Pq = Priority_queue
module Span = Observe.Span

type edge_fn = Priority_queue.ctx -> src:int -> dst:int -> weight:int -> unit

(* The fused-drain counter stays engine-side (the kernel knows nothing of
   buckets); same padded-slot layout as the kernel's counters. *)
let stride = 8

let counter_sum a =
  let total = ref 0 in
  let slots = Array.length a / stride in
  for tid = 0 to slots - 1 do
    total := !total + a.(tid * stride)
  done;
  !total

let process_vertex graph pq scratch ~ctx ~edge_fn u =
  if Pq.vertex_on_current_bucket pq u then begin
    let tid = ctx.Pq.tid in
    Scratch.add_vertices scratch ~tid 1;
    Scratch.add_edges scratch ~tid (Csr.out_degree graph u);
    Csr.iter_out graph u (fun dst weight -> edge_fn ctx ~src:u ~dst ~weight)
  end

(* Fused inner loop (Fig. 7, lines 14-20): keep draining this worker's bin
   for the current bucket while it stays under the threshold; a larger bin
   is left in place so the next global round redistributes it. This is the
   one sweep that stays outside the traversal kernel — it runs as the
   kernel's per-worker epilogue, inside the same parallel episode, so a
   fused drain still avoids a global barrier. *)
let fusion_loop graph pq scratch ~threshold ~fused ~ctx ~edge_fn =
  let eb = Pq.eager_buckets pq in
  let tid = ctx.Pq.tid in
  let key = Pq.current_key pq in
  let rec fuse () =
    let size = Eager_buckets.local_size eb ~tid ~key in
    if size > 0 && size <= threshold then
      match Eager_buckets.take_local eb ~tid ~key with
      | None -> ()
      | Some bin ->
          fused.(tid * stride) <- fused.(tid * stride) + 1;
          Array.iter (fun u -> process_vertex graph pq scratch ~ctx ~edge_fn u) bin;
          fuse ()
  in
  fuse ()

let run ~pool ~graph ?transpose ?handle ~schedule ~pq ~edge_fn
    ?(stop = fun () -> false) ?deadline ?on_round ?trace () =
  (match Schedule.validate schedule with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Engine.run: " ^ msg));
  let needs_transpose =
    match schedule.Schedule.traversal with
    | Schedule.Dense_pull | Schedule.Hybrid -> true
    | Schedule.Sparse_push -> false
  in
  let transpose_graph =
    match (needs_transpose, transpose, handle) with
    | false, _, _ -> None
    | true, Some tg, _ -> Some tg
    (* A handle can always derive (and cache) the transpose itself. *)
    | true, None, Some h -> Some (Graphs.Handle.transpose_csr h)
    | true, None, None ->
        invalid_arg "Engine.run: DensePull traversal requires ~transpose"
  in
  (* The kernel applies Ligra's hybrid heuristic (with a parallel degree
     sum); the engine only maps the schedule onto a kernel direction. *)
  let direction =
    match schedule.Schedule.traversal with
    | Schedule.Sparse_push -> Edge_map.Push
    | Schedule.Dense_pull -> Edge_map.Pull
    | Schedule.Hybrid -> Edge_map.Hybrid
  in
  let workers = Pool.num_workers pool in
  (* Scratch is shared per (pool, graph, version): repeated runs over one
     snapshot — a bench loop, the checker, incremental repairs — skip the
     per-run allocation. Runs on one pool are serialized, so sharing is
     race-free; a new graph version is a new CSR and misses the cache. *)
  let scratch =
    let version = match handle with Some h -> Graphs.Handle.version h | None -> 0 in
    Scratch.shared ~pool ~graph ~version
  in
  (* Layout dispatch happens here, once per run: a handle carrying a
     non-plain layout routes sweeps through the kernel instance
     specialized for it; everything else keeps the plain-CSR entry point.
     The fused drain below always walks the plain CSR the handle also
     carries — fusion touches single vertices, where decode-in-register
     buys nothing. *)
  let traverse ?filter ?epilogue ~chunk ~direction frontier ~f =
    match handle with
    | Some h when Graphs.Handle.kind h <> Graphs.Layout.Plain ->
        let transpose =
          if needs_transpose then Some (Graphs.Handle.transpose h) else None
        in
        Edge_map.run_layout scratch ~graph:(Graphs.Handle.graph h) ?transpose
          ?sched:schedule.Schedule.sched ?filter ?epilogue ~chunk ~direction
          frontier ~f
    | _ ->
        Edge_map.run scratch ~graph ?transpose:transpose_graph
          ?sched:schedule.Schedule.sched ?filter ?epilogue ~chunk ~direction
          frontier ~f
  in
  let fused = Array.make (workers * stride) 0 in
  let filter =
    if Pq.needs_processing_filter pq then Some (Pq.vertex_on_current_bucket pq)
    else None
  in
  (* Fusion only composes with eager strategies, which the schedule
     validator restricts to push traversal — the epilogue never runs under
     pull. *)
  let epilogue =
    if schedule.Schedule.strategy = Schedule.Eager_with_fusion then
      Some
        (fun ctx ->
          fusion_loop graph pq scratch
            ~threshold:schedule.Schedule.fusion_threshold ~fused ~ctx ~edge_fn)
    else None
  in
  let stats = Stats.create () in
  stats.Stats.workers <- workers;
  let sync_start = Pool.barrier_wait_seconds pool in
  let last_key = ref min_int in
  let continue = ref true in
  (* Phase timestamps are taken only when a trace collects them; the span
     guards below are a flag read each when the recorder is off. *)
  let tracing = trace <> None in
  let timestamp () = if tracing then Unix.gettimeofday () else 0.0 in
  let run_round () =
    let round_start = timestamp () in
    let round_sync_start = Pool.barrier_wait_seconds pool in
    let frontier =
      Span.with_ "engine.dequeue" (fun () -> Pq.dequeue_ready_set pq)
    in
    let dequeue_done = timestamp () in
    stats.Stats.rounds <- stats.Stats.rounds + 1;
    if Pq.current_key pq <> !last_key then begin
      stats.Stats.buckets_processed <- stats.Stats.buckets_processed + 1;
      last_key := Pq.current_key pq
    end;
    let fused_before = counter_sum fused in
    let executed =
      traverse ?filter ?epilogue ~chunk:schedule.Schedule.chunk_size
        ~direction frontier ~f:edge_fn
    in
    let direction =
      match executed with
      | Edge_map.Ran_pull ->
          stats.Stats.pull_rounds <- stats.Stats.pull_rounds + 1;
          Trace.Pull
      | Edge_map.Ran_push -> Trace.Push
    in
    let traverse_done = timestamp () in
    let round_sync = Pool.barrier_wait_seconds pool -. round_sync_start in
    if Span.enabled () then Span.record "engine.sync_wait" round_sync;
    (* The barrier wait is sampled, not timed, so the timeline renders it
       as a stepped counter track (µs per round) rather than a slice. *)
    (match Observe.Tracer.current () with
    | Some t ->
        Observe.Tracer.counter t ~tid:0
          (Observe.Tracer.label "engine.sync_wait_us")
          (int_of_float (round_sync *. 1e6))
    | None -> ());
    (match trace with
    | Some t ->
        Trace.record t
          {
            Trace.index = stats.Stats.rounds;
            bucket_key = Pq.current_key pq;
            priority = Pq.current_priority pq;
            frontier_size = Vertex_subset.cardinal frontier;
            direction;
            fused_drains = counter_sum fused - fused_before;
            wall_seconds = traverse_done -. round_start;
            dequeue_seconds = dequeue_done -. round_start;
            traverse_seconds = traverse_done -. dequeue_done;
            sync_wait_seconds = round_sync;
          }
    | None -> ());
    stats.Stats.global_syncs <- stats.Stats.global_syncs + 1;
    if not (Schedule.is_eager schedule) then
      (* The lazy strategies pay an extra synchronization per round for the
         buffer reduction / bulk bucket update (Fig. 5, lines 12-13). *)
      stats.Stats.global_syncs <- stats.Stats.global_syncs + 1;
    (* The live-stats hook shares the stop/deadline cadence: once per
       global round, on the orchestrating worker, after the round's
       barrier. The scratch/fused sums it needs are only folded in when
       someone listens, so unhooked runs keep the hot path unchanged.
       The service batcher uses this to attribute rounds and
       relaxations to the batch members it resolves mid-run. *)
    (match on_round with
    | None -> ()
    | Some f ->
        stats.Stats.vertices_processed <- Scratch.vertices_processed scratch;
        stats.Stats.edges_relaxed <- Scratch.edges_traversed scratch;
        stats.Stats.fused_drains <- counter_sum fused;
        f stats);
    if stats.Stats.rounds > 100_000_000 then continue := false
  in
  (* The deadline shares the [stop] seam's cadence: one check per global
     round, on the orchestrating worker, never inside a parallel episode.
     An expired deadline marks the run [timed_out] so callers can tell a
     partial priority vector from a finished one. *)
  let deadline_hit () =
    match deadline with
    | None -> false
    | Some d ->
        let hit = Deadline.expired d in
        if hit then stats.Stats.timed_out <- true;
        hit
  in
  while
    !continue && (not (stop ())) && (not (deadline_hit ())) && not (Pq.finished pq)
  do
    (* One timeline slice per round, the round index as its payload;
       the dequeue/traverse spans nest inside it on worker 0's track. *)
    Span.with_ ~arg:(stats.Stats.rounds + 1) "engine.round" run_round
  done;
  stats.Stats.vertices_processed <- Scratch.vertices_processed scratch;
  stats.Stats.edges_relaxed <- Scratch.edges_traversed scratch;
  stats.Stats.fused_drains <- counter_sum fused;
  stats.Stats.bucket_inserts <- Pq.total_bucket_inserts pq;
  stats.Stats.sync_seconds <- Pool.barrier_wait_seconds pool -. sync_start;
  if Span.enabled () then begin
    (* Fold the run's hardware-independent counters into the flight
       recorder, so cumulative totals survive across runs. *)
    let bump name by = Span.count ~tid:0 ~by name in
    bump "engine.runs" 1;
    bump "engine.rounds" stats.Stats.rounds;
    bump "engine.global_syncs" stats.Stats.global_syncs;
    bump "engine.fused_drains" stats.Stats.fused_drains;
    bump "engine.buckets_processed" stats.Stats.buckets_processed;
    bump "engine.vertices_processed" stats.Stats.vertices_processed;
    bump "engine.edges_relaxed" stats.Stats.edges_relaxed;
    bump "engine.bucket_inserts" stats.Stats.bucket_inserts;
    bump "engine.pull_rounds" stats.Stats.pull_rounds
  end;
  stats

(* Incremental entry point: identical round loop, but the priority
   structures start from caller-provided seeds instead of a canonical
   initial frontier. The seam is deliberately thin — all the planning
   (dirty closure, boundary seeds, fallback decision) lives with the
   algorithm (e.g. [Algorithms.Sssp_delta.run_incremental]); the engine
   only guarantees the seeds are applied through the priority-queue
   operators on the orchestrating thread before the first dequeue, so
   both eager bins and lazy buffers observe them exactly like a round's
   worth of updates. *)
let run_incremental ~pool ~graph ?transpose ?handle ~schedule ~pq ~edge_fn ~seed
    ?stop ?deadline ?on_round ?trace () =
  let ctx = { Pq.tid = 0; use_atomics = true } in
  seed ctx;
  run ~pool ~graph ?transpose ?handle ~schedule ~pq ~edge_fn ?stop ?deadline
    ?on_round ?trace ()
