module Pool = Parallel.Pool
module Csr = Graphs.Csr
module Vertex_subset = Frontier.Vertex_subset
module Eager_buckets = Bucketing.Eager_buckets
module Pq = Priority_queue
module Span = Observe.Span

type edge_fn = Priority_queue.ctx -> src:int -> dst:int -> weight:int -> unit

(* Per-worker counters live [stride] ints apart: they are bumped once per
   vertex/edge on the hot path, and packing one slot per worker would
   false-share a cache line between all workers. *)
let stride = 8

type counters = {
  vertices : int array; (* slot tid * stride *)
  edges : int array;
  fused : int array;
}

let make_counters ~workers =
  {
    vertices = Array.make (workers * stride) 0;
    edges = Array.make (workers * stride) 0;
    fused = Array.make (workers * stride) 0;
  }

let counter_sum a =
  let total = ref 0 in
  let slots = Array.length a / stride in
  for tid = 0 to slots - 1 do
    total := !total + a.(tid * stride)
  done;
  !total

let process_vertex graph pq ~filter ~ctx ~edge_fn counters u =
  if (not filter) || Pq.vertex_on_current_bucket pq u then begin
    let slot = ctx.Pq.tid * stride in
    counters.vertices.(slot) <- counters.vertices.(slot) + 1;
    counters.edges.(slot) <- counters.edges.(slot) + Csr.out_degree graph u;
    Csr.iter_out graph u (fun dst weight -> edge_fn ctx ~src:u ~dst ~weight)
  end

(* Fused inner loop (Fig. 7, lines 14-20): keep draining this worker's bin
   for the current bucket while it stays under the threshold; a larger bin
   is left in place so the next global round redistributes it. *)
let fusion_loop graph pq ~threshold ~ctx ~edge_fn counters =
  let eb = Pq.eager_buckets pq in
  let tid = ctx.Pq.tid in
  let key = Pq.current_key pq in
  let rec fuse () =
    let size = Eager_buckets.local_size eb ~tid ~key in
    if size > 0 && size <= threshold then
      match Eager_buckets.take_local eb ~tid ~key with
      | None -> ()
      | Some bin ->
          counters.fused.(tid * stride) <- counters.fused.(tid * stride) + 1;
          Array.iter
            (fun u -> process_vertex graph pq ~filter:true ~ctx ~edge_fn counters u)
            bin;
          fuse ()
  in
  fuse ()

let push_round pool graph schedule pq ~edge_fn counters frontier =
  let members = Vertex_subset.sparse_members frontier in
  let total = Array.length members in
  let filter = Pq.needs_processing_filter pq in
  let fusion = schedule.Schedule.strategy = Schedule.Eager_with_fusion in
  let chunk = schedule.Schedule.chunk_size in
  (* Frontier members have wildly uneven degrees: claim fixed chunks
     dynamically, then run a tight local loop over each chunk. *)
  let cursor = Pool.range_cursor pool ~sched:Pool.Dynamic ~chunk ~lo:0 ~hi:total () in
  Pool.run_workers pool (fun tid ->
      let ctx = { Pq.tid; use_atomics = true } in
      let rec drain () =
        match Pool.next_range cursor ~tid with
        | Some (lo, hi) ->
            for i = lo to hi - 1 do
              process_vertex graph pq ~filter ~ctx ~edge_fn counters
                (Array.unsafe_get members i)
            done;
            drain ()
        | None -> ()
      in
      drain ();
      if fusion then
        fusion_loop graph pq ~threshold:schedule.Schedule.fusion_threshold ~ctx
          ~edge_fn counters)

let pull_round pool graph transpose schedule ~edge_fn counters frontier =
  let flags = Vertex_subset.dense_flags frontier in
  let n = Csr.num_vertices graph in
  let chunk = max schedule.Schedule.chunk_size 64 in
  let frontier_size = Vertex_subset.cardinal frontier in
  (* The pull sweep touches every vertex: guided chunks keep the shared
     cursor cold for most of the range and still balance the tail. *)
  let cursor = Pool.range_cursor pool ~sched:Pool.Guided ~chunk ~lo:0 ~hi:n () in
  Pool.run_workers pool (fun tid ->
      (* Pull ownership: only this worker writes vertex [d], so the user
         function runs without atomics (Fig. 9(b)). *)
      let ctx = { Pq.tid; use_atomics = false } in
      let slot = tid * stride in
      let rec drain () =
        match Pool.next_range cursor ~tid with
        | Some (lo, hi) ->
            for d = lo to hi - 1 do
              Csr.iter_out transpose d (fun src weight ->
                  if Support.Bitset.mem flags src then begin
                    counters.edges.(slot) <- counters.edges.(slot) + 1;
                    edge_fn ctx ~src ~dst:d ~weight
                  end)
            done;
            drain ()
        | None -> ()
      in
      drain ());
  counters.vertices.(0) <- counters.vertices.(0) + frontier_size

let run ~pool ~graph ?transpose ~schedule ~pq ~edge_fn ?(stop = fun () -> false)
    ?trace () =
  (match Schedule.validate schedule with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Engine.run: " ^ msg));
  let transpose_graph =
    match (schedule.Schedule.traversal, transpose) with
    | (Schedule.Dense_pull | Schedule.Hybrid), None ->
        invalid_arg "Engine.run: DensePull traversal requires ~transpose"
    | (Schedule.Dense_pull | Schedule.Hybrid), Some tg -> Some tg
    | Schedule.Sparse_push, _ -> None
  in
  (* Ligra's direction heuristic for the hybrid schedule: pull when the
     frontier and its out-edges cover more than 1/20 of the graph. *)
  let dense_threshold = Csr.num_edges graph / 20 in
  let choose_pull frontier =
    match schedule.Schedule.traversal with
    | Schedule.Sparse_push -> false
    | Schedule.Dense_pull -> true
    | Schedule.Hybrid ->
        Vertex_subset.out_degree_sum graph frontier + Vertex_subset.cardinal frontier
        > dense_threshold
  in
  let workers = Pool.num_workers pool in
  let counters = make_counters ~workers in
  let stats = Stats.create () in
  stats.Stats.workers <- workers;
  let sync_start = Pool.barrier_wait_seconds pool in
  let last_key = ref min_int in
  let continue = ref true in
  (* Phase timestamps are taken only when a trace collects them; the span
     guards below are a flag read each when the recorder is off. *)
  let tracing = trace <> None in
  let timestamp () = if tracing then Unix.gettimeofday () else 0.0 in
  let run_round () =
    let round_start = timestamp () in
    let round_sync_start = Pool.barrier_wait_seconds pool in
    let frontier =
      Span.with_ "engine.dequeue" (fun () -> Pq.dequeue_ready_set pq)
    in
    let dequeue_done = timestamp () in
    stats.Stats.rounds <- stats.Stats.rounds + 1;
    if Pq.current_key pq <> !last_key then begin
      stats.Stats.buckets_processed <- stats.Stats.buckets_processed + 1;
      last_key := Pq.current_key pq
    end;
    let fused_before = counter_sum counters.fused in
    let direction =
      match (transpose_graph, choose_pull frontier) with
      | Some tg, true ->
          stats.Stats.pull_rounds <- stats.Stats.pull_rounds + 1;
          Span.with_ "engine.traverse.pull" (fun () ->
              pull_round pool graph tg schedule ~edge_fn counters frontier);
          Trace.Pull
      | _, _ ->
          Span.with_ "engine.traverse.push" (fun () ->
              push_round pool graph schedule pq ~edge_fn counters frontier);
          Trace.Push
    in
    let traverse_done = timestamp () in
    let round_sync = Pool.barrier_wait_seconds pool -. round_sync_start in
    if Span.enabled () then Span.record "engine.sync_wait" round_sync;
    (* The barrier wait is sampled, not timed, so the timeline renders it
       as a stepped counter track (µs per round) rather than a slice. *)
    (match Observe.Tracer.current () with
    | Some t ->
        Observe.Tracer.counter t ~tid:0
          (Observe.Tracer.label "engine.sync_wait_us")
          (int_of_float (round_sync *. 1e6))
    | None -> ());
    (match trace with
    | Some t ->
        Trace.record t
          {
            Trace.index = stats.Stats.rounds;
            bucket_key = Pq.current_key pq;
            priority = Pq.current_priority pq;
            frontier_size = Vertex_subset.cardinal frontier;
            direction;
            fused_drains = counter_sum counters.fused - fused_before;
            wall_seconds = traverse_done -. round_start;
            dequeue_seconds = dequeue_done -. round_start;
            traverse_seconds = traverse_done -. dequeue_done;
            sync_wait_seconds = round_sync;
          }
    | None -> ());
    stats.Stats.global_syncs <- stats.Stats.global_syncs + 1;
    if not (Schedule.is_eager schedule) then
      (* The lazy strategies pay an extra synchronization per round for the
         buffer reduction / bulk bucket update (Fig. 5, lines 12-13). *)
      stats.Stats.global_syncs <- stats.Stats.global_syncs + 1;
    if stats.Stats.rounds > 100_000_000 then continue := false
  in
  while !continue && (not (stop ())) && not (Pq.finished pq) do
    (* One timeline slice per round, the round index as its payload;
       the dequeue/traverse spans nest inside it on worker 0's track. *)
    Span.with_ ~arg:(stats.Stats.rounds + 1) "engine.round" run_round
  done;
  stats.Stats.vertices_processed <- counter_sum counters.vertices;
  stats.Stats.edges_relaxed <- counter_sum counters.edges;
  stats.Stats.fused_drains <- counter_sum counters.fused;
  stats.Stats.bucket_inserts <- Pq.total_bucket_inserts pq;
  stats.Stats.sync_seconds <- Pool.barrier_wait_seconds pool -. sync_start;
  if Span.enabled () then begin
    (* Fold the run's hardware-independent counters into the flight
       recorder, so cumulative totals survive across runs. *)
    let bump name by = Span.count ~tid:0 ~by name in
    bump "engine.runs" 1;
    bump "engine.rounds" stats.Stats.rounds;
    bump "engine.global_syncs" stats.Stats.global_syncs;
    bump "engine.fused_drains" stats.Stats.fused_drains;
    bump "engine.buckets_processed" stats.Stats.buckets_processed;
    bump "engine.vertices_processed" stats.Stats.vertices_processed;
    bump "engine.edges_relaxed" stats.Stats.edges_relaxed;
    bump "engine.bucket_inserts" stats.Stats.bucket_inserts;
    bump "engine.pull_rounds" stats.Stats.pull_rounds
  end;
  stats
