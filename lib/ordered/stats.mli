(** Execution counters for ordered runs.

    Rounds and synchronizations are the hardware-independent quantities the
    paper reports (Table 6 shows bucket fusion cutting SSSP on RoadUSA from
    48407 to 1069 rounds), so the engine maintains them exactly. Every
    field is documented with its exported name in
    [docs/OBSERVABILITY.md]. *)

type t = {
  mutable rounds : int;  (** Global rounds (one {!Engine} iteration each). *)
  mutable global_syncs : int;
      (** Barrier-equivalent synchronizations (parallel regions joined). *)
  mutable fused_drains : int;
      (** Local bucket drains performed inside the fusion inner loop,
          i.e. rounds that skipped their global synchronization. *)
  mutable buckets_processed : int;  (** Distinct bucket keys processed. *)
  mutable vertices_processed : int;
      (** Frontier members processed (incl. re-processing). *)
  mutable edges_relaxed : int;  (** User-function applications. *)
  mutable bucket_inserts : int;  (** Insertions into bucket structures. *)
  mutable pull_rounds : int;
      (** Rounds traversed in dense-pull direction (hybrid/pull schedules). *)
  mutable sync_seconds : float;
      (** Wall-clock seconds worker 0 spent waiting at end-of-round barriers
          during the run ({!Parallel.Pool.barrier_wait_seconds} delta) — the
          per-round synchronization cost that bucket fusion amortizes.
          Meaningless on single-worker pools, where rounds need no barrier;
          {!pp} and {!to_json} render it as unmeasured there. *)
  mutable workers : int;
      (** Worker count of the pool the run executed on (set by the engine;
          [1] after {!create}/{!reset}). Lets consumers tell a measured
          zero in [sync_seconds] apart from "no barrier exists". *)
  mutable timed_out : bool;
      (** True when the run was cut short by an expired {!Deadline} at a
          round boundary: the priority vector holds partial (monotone
          upper/lower) bounds, not final values. Always [false] for runs
          without a deadline. *)
}

(** [create ()] is all-zero counters on one worker. *)
val create : unit -> t

(** [reset t] zeroes every counter and resets [workers] to [1]. *)
val reset : t -> unit

(** [pp] prints a one-line human-readable summary. [sync] renders as [-]
    when [workers <= 1] so the column cannot be misread as a measured
    zero. *)
val pp : Format.formatter -> t -> unit

(** [to_json t] is the flat object
    [{"rounds": .., "global_syncs": .., "fused_drains": ..,
      "buckets_processed": .., "vertices_processed": .., "edges_relaxed": ..,
      "bucket_inserts": .., "pull_rounds": .., "sync_seconds": ..,
      "workers": .., "timed_out": ..}].
    [sync_seconds] is [null] when [workers <= 1] (unmeasured, not zero). *)
val to_json : t -> Support.Json.t
