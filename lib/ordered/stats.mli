(** Execution counters for ordered runs.

    Rounds and synchronizations are the hardware-independent quantities the
    paper reports (Table 6 shows bucket fusion cutting SSSP on RoadUSA from
    48407 to 1069 rounds), so the engine maintains them exactly. *)

type t = {
  mutable rounds : int;  (** Global rounds (one {!Engine} iteration each). *)
  mutable global_syncs : int;
      (** Barrier-equivalent synchronizations (parallel regions joined). *)
  mutable fused_drains : int;
      (** Local bucket drains performed inside the fusion inner loop,
          i.e. rounds that skipped their global synchronization. *)
  mutable buckets_processed : int;  (** Distinct bucket keys processed. *)
  mutable vertices_processed : int;  (** Frontier members processed (incl. re-processing). *)
  mutable edges_relaxed : int;  (** User-function applications. *)
  mutable bucket_inserts : int;  (** Insertions into bucket structures. *)
  mutable pull_rounds : int;
      (** Rounds traversed in dense-pull direction (hybrid/pull schedules). *)
  mutable sync_seconds : float;
      (** Wall-clock seconds worker 0 spent waiting at end-of-round barriers
          during the run ({!Parallel.Pool.barrier_wait_seconds} delta) — the
          per-round synchronization cost that bucket fusion amortizes.
          [0.] on single-worker pools, where rounds need no barrier. *)
}

(** [create ()] is all-zero counters. *)
val create : unit -> t

(** [reset t] zeroes every counter. *)
val reset : t -> unit

(** [pp] prints a one-line human-readable summary. *)
val pp : Format.formatter -> t -> unit
