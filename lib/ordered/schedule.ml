type update_strategy =
  | Eager_with_fusion
  | Eager_no_fusion
  | Lazy
  | Lazy_constant_sum

type traversal =
  | Sparse_push
  | Dense_pull
  | Hybrid

type t = {
  strategy : update_strategy;
  delta : int;
  fusion_threshold : int;
  num_open_buckets : int;
  traversal : traversal;
  chunk_size : int;
  sched : Parallel.Pool.sched option;
  incremental_threshold : float;
}

let default =
  {
    strategy = Eager_with_fusion;
    delta = 1;
    fusion_threshold = 1000;
    num_open_buckets = 128;
    traversal = Sparse_push;
    chunk_size = 64;
    sched = None;
    incremental_threshold = 0.25;
  }

let is_eager t =
  match t.strategy with
  | Eager_with_fusion | Eager_no_fusion -> true
  | Lazy | Lazy_constant_sum -> false

let validate t =
  if t.delta < 1 then Error "delta must be >= 1"
  else if t.fusion_threshold < 1 then Error "fusion threshold must be >= 1"
  else if t.num_open_buckets < 1 then Error "num_open_buckets must be >= 1"
  else if t.chunk_size < 1 then Error "chunk_size must be >= 1"
  else if t.incremental_threshold < 0.0 || t.incremental_threshold > 1.0 then
    Error "incremental_threshold must be in [0, 1]"
  else if is_eager t && t.traversal <> Sparse_push then
    Error "DensePull/hybrid traversal requires a lazy bucket-update strategy"
  else Ok t

let strategy_to_string = function
  | Eager_with_fusion -> "eager_with_fusion"
  | Eager_no_fusion -> "eager_no_fusion"
  | Lazy -> "lazy"
  | Lazy_constant_sum -> "lazy_constant_sum"

let strategy_of_string = function
  | "eager_with_fusion" -> Ok Eager_with_fusion
  | "eager_no_fusion" -> Ok Eager_no_fusion
  | "lazy" -> Ok Lazy
  | "lazy_constant_sum" -> Ok Lazy_constant_sum
  | s -> Error (Printf.sprintf "unknown priority-update strategy %S" s)

let traversal_to_string = function
  | Sparse_push -> "SparsePush"
  | Dense_pull -> "DensePull"
  | Hybrid -> "DensePull-SparsePush"

let traversal_of_string = function
  | "SparsePush" -> Ok Sparse_push
  | "DensePull" -> Ok Dense_pull
  | "DensePull-SparsePush" | "hybrid" -> Ok Hybrid
  | s -> Error (Printf.sprintf "unknown traversal direction %S" s)

let sched_to_string = function
  | None -> "default"
  | Some Parallel.Pool.Static -> "static"
  | Some Parallel.Pool.Dynamic -> "dynamic"
  | Some Parallel.Pool.Guided -> "guided"

let sched_of_string = function
  | "default" -> Ok None
  | "static" -> Ok (Some Parallel.Pool.Static)
  | "dynamic" -> Ok (Some Parallel.Pool.Dynamic)
  | "guided" -> Ok (Some Parallel.Pool.Guided)
  | s -> Error (Printf.sprintf "unknown loop schedule %S" s)

let pp ppf t =
  Format.fprintf ppf
    "configApplyPriorityUpdate(%S); configApplyPriorityUpdateDelta(%d); \
     configBucketFusionThreshold(%d); configNumBuckets(%d); \
     configApplyDirection(%S)"
    (strategy_to_string t.strategy)
    t.delta t.fusion_threshold t.num_open_buckets
    (traversal_to_string t.traversal)
