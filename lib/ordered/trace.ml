type direction =
  | Push
  | Pull

type round = {
  index : int;
  bucket_key : int;
  priority : int;
  frontier_size : int;
  direction : direction;
  fused_drains : int;
  wall_seconds : float;
  dequeue_seconds : float;
  traverse_seconds : float;
  sync_wait_seconds : float;
}

type t = { mutable entries : round list (* newest first *) }

let create () = { entries = [] }
let record t round = t.entries <- round :: t.entries
let rounds t = List.rev t.entries
let length t = List.length t.entries

let pp_round ppf r =
  Format.fprintf ppf "%6d %12d %12d %10d %6s %8d %9.3f %9.3f" r.index
    r.bucket_key r.priority r.frontier_size
    (match r.direction with Push -> "push" | Pull -> "pull")
    r.fused_drains
    (1e3 *. r.wall_seconds)
    (1e3 *. r.traverse_seconds)

let pp ?(max_rounds = 40) ppf t =
  let all = rounds t in
  let total = List.length all in
  Format.fprintf ppf "%6s %12s %12s %10s %6s %8s %9s %9s@." "round" "bucket"
    "priority" "frontier" "dir" "fused" "wall(ms)" "trav(ms)";
  let print_list rs = List.iter (fun r -> Format.fprintf ppf "%a@." pp_round r) rs in
  if total <= max_rounds then print_list all
  else begin
    let head = List.filteri (fun i _ -> i < max_rounds / 2) all in
    let tail = List.filteri (fun i _ -> i >= total - (max_rounds / 2)) all in
    print_list head;
    Format.fprintf ppf "  ... %d rounds elided ...@." (total - (2 * (max_rounds / 2)));
    print_list tail
  end;
  (* Phase totals over the whole trace, including any elided rounds. *)
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 all in
  if total > 0 then
    Format.fprintf ppf
      "phase totals over %d rounds: wall=%.3fms dequeue=%.3fms \
       traverse=%.3fms sync_wait=%.3fms@."
      total
      (1e3 *. sum (fun r -> r.wall_seconds))
      (1e3 *. sum (fun r -> r.dequeue_seconds))
      (1e3 *. sum (fun r -> r.traverse_seconds))
      (1e3 *. sum (fun r -> r.sync_wait_seconds))

let round_to_json r =
  let open Support.Json in
  Obj
    [
      ("index", Int r.index);
      ("bucket_key", Int r.bucket_key);
      ("priority", Int r.priority);
      ("frontier_size", Int r.frontier_size);
      ( "direction",
        String (match r.direction with Push -> "push" | Pull -> "pull") );
      ("fused_drains", Int r.fused_drains);
      ("wall_seconds", Float r.wall_seconds);
      ("dequeue_seconds", Float r.dequeue_seconds);
      ("traverse_seconds", Float r.traverse_seconds);
      ("sync_wait_seconds", Float r.sync_wait_seconds);
    ]

let to_json t = Support.Json.List (List.map round_to_json (rounds t))
