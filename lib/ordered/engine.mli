(** The ordered processing operator (Section 5.2 of the paper).

    [run] drives rounds of bucket extraction and parallel edge processing
    until the priority queue is exhausted or a stop condition fires,
    implementing all four schedules:

    - eager (Fig. 6): one parallel region per round; workers file priority
      updates straight into thread-local bins;
    - eager with bucket fusion (Fig. 7): after the shared frontier is
      drained, each worker keeps processing its own current-priority bin
      while it stays below the fusion threshold, skipping the global
      synchronization those rounds would have cost;
    - lazy (Fig. 5): updates are buffered with CAS deduplication and applied
      in bulk between rounds;
    - lazy with constant-sum reduction (Fig. 10): updates are histogrammed
      and reduced once per vertex per round.

    The traversal direction follows the schedule: [Sparse_push] maps the
    user function over out-edges of frontier members; [Dense_pull] scans
    in-edges of every vertex against a dense frontier, without atomics.

    Every run returns {!Stats}; a supplied {!Trace} additionally records a
    per-round wall-clock phase breakdown, and when the flight recorder is
    enabled ([Observe.Span.set_enabled]) the engine's phases are recorded
    as spans ([engine.dequeue], [engine.traverse.push]/[.pull],
    [engine.sync_wait]) and its counters folded into [Observe.Metrics] —
    see [docs/OBSERVABILITY.md]. *)

type edge_fn = Priority_queue.ctx -> src:int -> dst:int -> weight:int -> unit
(** The compiled user-defined function ([updateEdge] in Fig. 3): it must
    perform its priority updates through the {!Priority_queue} operators
    using the supplied context. *)

(** [run ~pool ~graph ~schedule ~pq ~edge_fn ()] executes to completion and
    returns the execution counters.

    @param transpose required for [Dense_pull] and [Hybrid] traversal
      unless [handle] is given (a handle derives and caches it).
    @param handle routes traversal through the handle's storage layout:
      a [Compressed]-kind handle runs the sweeps on the varint-compressed
      form (the fused drain stays on the plain CSR the handle also
      carries), and the handle's cached transpose replaces per-run
      rebuilds.
    @param stop checked before each round ([pq.finished] custom conditions,
      e.g. PPSP's early exit once the destination is finalized).
    @param deadline checked at the same round boundaries as [stop]: once
      expired the run terminates with [Stats.timed_out] set and the
      priority vector holding partial monotone bounds (see
      {!Deadline}) — the query service's timeout seam.
    @param on_round called once per global round, after the round's
      barrier and at the same cadence as [stop], with the {e live}
      stats record: [rounds], [vertices_processed], [edges_relaxed],
      and [fused_drains] reflect work completed so far (the remaining
      fields finalize at run end). The record passed is the one [run]
      returns — treat it as read-only. Runs without the hook skip the
      per-round counter folds entirely. The query service uses this to
      attribute rounds and relaxations to individual batch members as
      their replies resolve mid-run.
    @param trace when supplied, one {!Trace.round} is recorded per global
      round.
    @raise Invalid_argument on an invalid schedule or missing transpose. *)
val run :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  ?transpose:Graphs.Csr.t ->
  ?handle:Graphs.Handle.t ->
  schedule:Schedule.t ->
  pq:Priority_queue.t ->
  edge_fn:edge_fn ->
  ?stop:(unit -> bool) ->
  ?deadline:Deadline.t ->
  ?on_round:(Stats.t -> unit) ->
  ?trace:Trace.t ->
  unit ->
  Stats.t

(** [run_incremental] is {!run} with a caller-seeded initial frontier:
    the incremental-recompute entry point. [seed] is invoked once, on the
    orchestrating thread, before the first round, with a context valid
    for the priority-queue update operators — apply one
    [update_priority_min] (or [_max]) per affected-set candidate and the
    engine repairs outward from exactly that frontier. The queue should
    be created with [initial:No_initial]; callers reset invalidated
    entries of the priority vector {e before} seeding so every candidate
    registers as a strict improvement. Planning (dirty closure, boundary
    seeds, full-recompute fallback via [Schedule.incremental_threshold])
    lives with the algorithm layer — see
    [Algorithms.Sssp_delta.run_incremental]. *)
val run_incremental :
  pool:Parallel.Pool.t ->
  graph:Graphs.Csr.t ->
  ?transpose:Graphs.Csr.t ->
  ?handle:Graphs.Handle.t ->
  schedule:Schedule.t ->
  pq:Priority_queue.t ->
  edge_fn:edge_fn ->
  seed:(Priority_queue.ctx -> unit) ->
  ?stop:(unit -> bool) ->
  ?deadline:Deadline.t ->
  ?on_round:(Stats.t -> unit) ->
  ?trace:Trace.t ->
  unit ->
  Stats.t
