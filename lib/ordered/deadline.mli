(** Wall-clock deadlines for ordered runs.

    A deadline is an absolute expiry instant. The engine checks it once
    per global round — the same cadence as the [stop] condition — so a
    run that exceeds its budget terminates at the next round boundary
    with whatever priorities it has computed so far, instead of hanging
    an interactive caller. Monotone algorithms make those partial
    vectors meaningful: Δ-stepping/PPSP/A* distances only ever decrease
    toward the true value (any finite entry is the length of a real
    path, an {e upper} bound), widest-path capacities only ever increase
    (a {e lower} bound), and the k-core peel only lowers its clamped
    degree bounds toward the true coreness (an upper bound). The query
    service ([lib/service], docs/SERVICE.md) builds its partial-result
    semantics on exactly these invariants.

    Checking costs one [Unix.gettimeofday] per round; runs without a
    deadline pay nothing. *)

type t

(** [after ~seconds] expires [seconds] from now. Non-positive budgets
    yield an already-expired deadline (a run observes it before its
    first round and returns immediately). *)
val after : seconds:float -> t

(** [after_ms ms] is [after ~seconds:(ms /. 1000.)]. *)
val after_ms : float -> t

(** [expired t] is true once the current time has passed the expiry. *)
val expired : t -> bool

(** [remaining_seconds t] is the time left, negative once expired. *)
val remaining_seconds : t -> float

(** [earliest a b] / [latest a b] combine deadlines — [latest] is how a
    batch of queries derives the point past which no member can still
    profit from more rounds. *)
val earliest : t -> t -> t

val latest : t -> t -> t
