module Atomic_array = Parallel.Atomic_array
module Bucket_order = Bucketing.Bucket_order
module Lazy_buckets = Bucketing.Lazy_buckets
module Eager_buckets = Bucketing.Eager_buckets
module Update_buffer = Bucketing.Update_buffer
module Histogram = Bucketing.Histogram
module Vertex_subset = Frontier.Vertex_subset

type initial =
  | Start_vertex of int
  | All_vertices
  | No_initial

type ctx = Traverse.Edge_map.ctx = {
  tid : int;
  use_atomics : bool;
}

type backend =
  | Lazy_backend of {
      buckets : Lazy_buckets.t;
      buffer : Update_buffer.t;
      histogram : Histogram.t option;
      scratch : int array;
    }
  | Eager_backend of Eager_buckets.t

type t = {
  num_vertices : int;
  direction : Bucket_order.direction;
  delta : int;
  priorities : Atomic_array.t;
  backend : backend;
  constant_sum_delta : int option;
  pool : Parallel.Pool.t option;
  mutable cur_key : int;
  mutable pending : Vertex_subset.t option;
  mutable exhausted : bool;
}

let key_of_priority t p = Bucket_order.key_of_priority ~direction:t.direction ~delta:t.delta p

let key_of_vertex t v = key_of_priority t (Atomic_array.get t.priorities v)

let min_initial_key ~direction ~delta ~priorities ~initial =
  let key p = Bucket_order.key_of_priority ~direction ~delta p in
  match initial with
  | Start_vertex s -> key (Atomic_array.get priorities s)
  | All_vertices ->
      let best = ref Bucket_order.null_key in
      for v = 0 to Atomic_array.length priorities - 1 do
        let k = key (Atomic_array.get priorities v) in
        if k < !best then best := k
      done;
      if !best = Bucket_order.null_key then 0 else !best
  | No_initial -> 0

let create ~schedule ~num_workers ~direction ~allow_coarsening ~priorities ~initial
    ?constant_sum_delta ?pool () =
  let delta = if allow_coarsening then schedule.Schedule.delta else 1 in
  let num_vertices = Atomic_array.length priorities in
  let backend =
    match schedule.Schedule.strategy with
    | Schedule.Eager_with_fusion | Schedule.Eager_no_fusion ->
        let min_key = min_initial_key ~direction ~delta ~priorities ~initial in
        Eager_backend (Eager_buckets.create ~num_workers ~min_key ())
    | Schedule.Lazy | Schedule.Lazy_constant_sum ->
        let histogram =
          match schedule.Schedule.strategy with
          | Schedule.Lazy_constant_sum ->
              if constant_sum_delta = None then
                invalid_arg
                  "Priority_queue.create: lazy_constant_sum requires \
                   constant_sum_delta";
              Some (Histogram.create ~num_workers ())
          | _ -> None
        in
        Lazy_backend
          {
            buckets =
              Lazy_buckets.create ~num_vertices
                ~num_open:schedule.Schedule.num_open_buckets
                ~source:(Lazy_buckets.Vector (priorities, direction, delta))
                ();
            buffer = Update_buffer.create ~num_vertices ~num_workers ();
            histogram;
            scratch = Array.make num_vertices 0;
          }
  in
  let t =
    {
      num_vertices;
      direction;
      delta;
      priorities;
      backend;
      constant_sum_delta;
      pool;
      cur_key = min_int;
      pending = None;
      exhausted = false;
    }
  in
  (match (t.backend, initial) with
  | _, No_initial -> ()
  | Lazy_backend { buckets; _ }, Start_vertex s -> Lazy_buckets.insert buckets s
  | Lazy_backend { buckets; _ }, All_vertices -> Lazy_buckets.insert_all buckets
  | Eager_backend eb, Start_vertex s ->
      Eager_buckets.insert eb ~tid:0 ~vertex:s ~key:(key_of_vertex t s)
  | Eager_backend eb, All_vertices ->
      for v = 0 to num_vertices - 1 do
        Eager_buckets.insert eb ~tid:0 ~vertex:v ~key:(key_of_vertex t v)
      done);
  t

let num_vertices t = t.num_vertices
let priorities t = t.priorities
let delta t = t.delta

let representative t = Bucket_order.representative_priority ~direction:t.direction ~delta:t.delta t.cur_key

(* Apply the buffered constant-sum updates (Fig. 10 of the paper): vertices
   at or below the current priority are finalized and must not move; the
   rest drop by [diff * count], clamped at the current bucket. *)
let flush_histogram t buckets histogram scratch =
  match t.constant_sum_delta with
  | None -> ()
  | Some diff ->
      let floor_pri = if t.cur_key = min_int then 0 else representative t in
      Histogram.reduce histogram ~scratch (fun ~vertex ~count ->
          let pri = Atomic_array.get t.priorities vertex in
          if pri <> Bucket_order.null_priority && key_of_priority t pri > t.cur_key
          then begin
            let proposed = pri + (diff * count) in
            let updated = if diff < 0 then max proposed floor_pri else proposed in
            if updated <> pri then begin
              Atomic_array.set t.priorities vertex updated;
              Lazy_buckets.insert buckets vertex
            end
          end)

let compute_next t =
  match t.backend with
  | Lazy_backend { buckets; buffer; histogram; scratch } -> (
      (* The bulk bucket update of Fig. 5 (lines 12-13): the per-round
         "update" phase the observability layer records. *)
      Observe.Span.with_ "pq.bulk_update" (fun () ->
          (match histogram with
          | Some h -> flush_histogram t buckets h scratch
          | None -> ());
          (* The insert sweep is inherently sequential, but with a pool the
             buffer copy and flag resets run one segment per worker. *)
          match t.pool with
          | Some pool ->
              let vs = Update_buffer.drain_to_array buffer ~pool in
              Array.iter (fun v -> Lazy_buckets.insert buckets v) vs
          | None ->
              Update_buffer.drain buffer (fun v -> Lazy_buckets.insert buckets v));
      match Lazy_buckets.next_bucket buckets with
      | None -> None
      | Some (key, members) ->
          t.cur_key <- key;
          Some (Vertex_subset.unsafe_of_array ~num_vertices:t.num_vertices members))
  | Eager_backend eb -> (
      match Eager_buckets.next_global_key eb with
      | None -> None
      | Some key ->
          t.cur_key <- key;
          let members = Eager_buckets.drain_global eb ~key in
          Some (Vertex_subset.unsafe_of_array ~num_vertices:t.num_vertices members))

let finished t =
  match t.pending with
  | Some _ -> false
  | None ->
      t.exhausted
      ||
      (match compute_next t with
      | Some subset ->
          t.pending <- Some subset;
          false
      | None ->
          t.exhausted <- true;
          true)

let dequeue_ready_set t =
  match t.pending with
  | Some subset ->
      t.pending <- None;
      subset
  | None -> (
      if t.exhausted then invalid_arg "Priority_queue.dequeue_ready_set: finished";
      match compute_next t with
      | Some subset -> subset
      | None ->
          t.exhausted <- true;
          invalid_arg "Priority_queue.dequeue_ready_set: finished")

let current_priority t = representative t
let current_key t = t.cur_key

let finished_vertex t v = t.exhausted || key_of_vertex t v < t.cur_key

(* Record that [v]'s priority changed to [value]: eager backends file the
   vertex under its new bucket immediately; lazy backends buffer it (with
   per-round CAS deduplication) for the next bulk update. *)
let record_change t ctx v value =
  match t.backend with
  | Eager_backend eb ->
      Eager_buckets.insert eb ~tid:ctx.tid ~vertex:v ~key:(key_of_priority t value)
  | Lazy_backend { buffer; _ } -> ignore (Update_buffer.try_add buffer ~tid:ctx.tid v)

let update_priority_min t ctx v value =
  let changed =
    if ctx.use_atomics then Atomic_array.fetch_min t.priorities v value
    else begin
      let cur = Atomic_array.get t.priorities v in
      if value < cur then begin
        Atomic_array.set t.priorities v value;
        true
      end
      else false
    end
  in
  if changed then record_change t ctx v value

let update_priority_max t ctx v value =
  let changed =
    if ctx.use_atomics then Atomic_array.fetch_max t.priorities v value
    else begin
      let cur = Atomic_array.get t.priorities v in
      if value > cur && cur <> Bucket_order.null_priority then begin
        Atomic_array.set t.priorities v value;
        true
      end
      else false
    end
  in
  if changed then record_change t ctx v value

let update_priority_sum t ctx v ~diff ~floor =
  match t.backend with
  | Lazy_backend { histogram = Some h; _ } ->
      (match t.constant_sum_delta with
      | Some expected when expected <> diff ->
          invalid_arg
            "Priority_queue.update_priority_sum: diff differs from the \
             constant_sum_delta the queue was created with"
      | _ -> ());
      Histogram.record h ~tid:ctx.tid v
  | Lazy_backend _ | Eager_backend _ ->
      let change =
        if ctx.use_atomics then
          Atomic_array.add_with_floor t.priorities v ~delta:diff ~floor
        else begin
          let cur = Atomic_array.get t.priorities v in
          if diff < 0 && cur <= floor then None
          else begin
            let target = max floor (cur + diff) in
            if target = cur then None
            else begin
              Atomic_array.set t.priorities v target;
              Some (cur, target)
            end
          end
        end
      in
      (match change with
      | Some (_, updated) -> record_change t ctx v updated
      | None -> ())

let set_priority t ctx v value =
  Atomic_array.set t.priorities v value;
  if value <> Bucket_order.null_priority then record_change t ctx v value

let constant_sum_recorder t =
  match t.backend with
  | Lazy_backend { histogram = Some h; _ } ->
      Some (fun ~tid v -> Histogram.record h ~tid v)
  | Lazy_backend { histogram = None; _ } | Eager_backend _ -> None

let vertex_on_current_bucket t v = key_of_vertex t v = t.cur_key

let eager_buckets t =
  match t.backend with
  | Eager_backend eb -> eb
  | Lazy_backend _ -> invalid_arg "Priority_queue.eager_buckets: lazy backend"

let is_eager t =
  match t.backend with
  | Eager_backend _ -> true
  | Lazy_backend _ -> false

let needs_processing_filter = is_eager

let total_bucket_inserts t =
  match t.backend with
  | Eager_backend eb -> Eager_buckets.total_inserts eb
  | Lazy_backend { buckets; _ } -> Lazy_buckets.total_inserts buckets
