type t = {
  mutable rounds : int;
  mutable global_syncs : int;
  mutable fused_drains : int;
  mutable buckets_processed : int;
  mutable vertices_processed : int;
  mutable edges_relaxed : int;
  mutable bucket_inserts : int;
  mutable pull_rounds : int;
  mutable sync_seconds : float;
}

let create () =
  {
    rounds = 0;
    global_syncs = 0;
    fused_drains = 0;
    buckets_processed = 0;
    vertices_processed = 0;
    edges_relaxed = 0;
    bucket_inserts = 0;
    pull_rounds = 0;
    sync_seconds = 0.0;
  }

let reset t =
  t.rounds <- 0;
  t.global_syncs <- 0;
  t.fused_drains <- 0;
  t.buckets_processed <- 0;
  t.vertices_processed <- 0;
  t.edges_relaxed <- 0;
  t.bucket_inserts <- 0;
  t.pull_rounds <- 0;
  t.sync_seconds <- 0.0

let pp ppf t =
  Format.fprintf ppf
    "rounds=%d syncs=%d fused=%d buckets=%d vertices=%d edges=%d inserts=%d \
     pull_rounds=%d sync=%.6fs"
    t.rounds t.global_syncs t.fused_drains t.buckets_processed
    t.vertices_processed t.edges_relaxed t.bucket_inserts t.pull_rounds
    t.sync_seconds
