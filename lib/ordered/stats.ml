type t = {
  mutable rounds : int;
  mutable global_syncs : int;
  mutable fused_drains : int;
  mutable buckets_processed : int;
  mutable vertices_processed : int;
  mutable edges_relaxed : int;
  mutable bucket_inserts : int;
  mutable pull_rounds : int;
  mutable sync_seconds : float;
  mutable workers : int;
  mutable timed_out : bool;
}

let create () =
  {
    rounds = 0;
    global_syncs = 0;
    fused_drains = 0;
    buckets_processed = 0;
    vertices_processed = 0;
    edges_relaxed = 0;
    bucket_inserts = 0;
    pull_rounds = 0;
    sync_seconds = 0.0;
    workers = 1;
    timed_out = false;
  }

let reset t =
  t.rounds <- 0;
  t.global_syncs <- 0;
  t.fused_drains <- 0;
  t.buckets_processed <- 0;
  t.vertices_processed <- 0;
  t.edges_relaxed <- 0;
  t.bucket_inserts <- 0;
  t.pull_rounds <- 0;
  t.sync_seconds <- 0.0;
  t.workers <- 1;
  t.timed_out <- false

let pp ppf t =
  (* On a single-worker pool rounds need no barrier: print the sync column
     as unmeasured rather than a measured zero. *)
  let sync =
    if t.workers <= 1 then "-" else Printf.sprintf "%.6fs" t.sync_seconds
  in
  Format.fprintf ppf
    "rounds=%d syncs=%d fused=%d buckets=%d vertices=%d edges=%d inserts=%d \
     pull_rounds=%d sync=%s"
    t.rounds t.global_syncs t.fused_drains t.buckets_processed
    t.vertices_processed t.edges_relaxed t.bucket_inserts t.pull_rounds sync;
  (* Appended rather than a column so existing golden output stays
     byte-identical for runs that finish. *)
  if t.timed_out then Format.fprintf ppf " TIMED-OUT"

let to_json t =
  let open Support.Json in
  Obj
    [
      ("rounds", Int t.rounds);
      ("global_syncs", Int t.global_syncs);
      ("fused_drains", Int t.fused_drains);
      ("buckets_processed", Int t.buckets_processed);
      ("vertices_processed", Int t.vertices_processed);
      ("edges_relaxed", Int t.edges_relaxed);
      ("bucket_inserts", Int t.bucket_inserts);
      ("pull_rounds", Int t.pull_rounds);
      ("sync_seconds", if t.workers <= 1 then Null else Float t.sync_seconds);
      ("workers", Int t.workers);
      ("timed_out", Bool t.timed_out);
    ]
