(** Per-round execution traces.

    When a trace is passed to {!Engine.run}, the engine records one entry
    per global round: the bucket being processed, the frontier size, the
    traversal direction chosen, how many local bins were drained by bucket
    fusion during the round, and the round's wall-clock broken down by
    engine phase. Traces make the scheduling behaviour inspectable — e.g.
    watching Δ-stepping's bucket keys climb while fusion keeps same-key
    rounds off the books — and back the [--trace] flag of [ordered_run].
    Every field's exported name is documented in
    [docs/OBSERVABILITY.md]. *)

type direction =
  | Push
  | Pull

type round = {
  index : int;  (** 1-based round number. *)
  bucket_key : int;  (** Normalized coarsened key of the bucket. *)
  priority : int;  (** Representative (user-facing) priority. *)
  frontier_size : int;  (** Members extracted for this round. *)
  direction : direction;  (** Traversal direction the engine chose. *)
  fused_drains : int;  (** Fusion drains performed during this round. *)
  wall_seconds : float;
      (** Wall-clock of the whole round, dequeue through synchronization. *)
  dequeue_seconds : float;
      (** Time in [dequeue_ready_set] — for lazy schedules this includes
          the bulk bucket update (buffer reduction / histogram flush). *)
  traverse_seconds : float;
      (** Time in the parallel edge-processing region, including any
          fusion drains performed inside it. *)
  sync_wait_seconds : float;
      (** Worker 0's end-of-round barrier wait
          ({!Parallel.Pool.barrier_wait_seconds} delta); [0.] on
          single-worker pools. *)
}

type t

(** [create ()] is an empty trace. Recording is single-threaded (the engine
    records between parallel phases). *)
val create : unit -> t

(** [record t round] appends an entry. *)
val record : t -> round -> unit

(** [rounds t] is the recorded entries, oldest first. *)
val rounds : t -> round list

(** [length t] is the number of recorded rounds. *)
val length : t -> int

(** [pp ?max_rounds ppf t] prints the trace as an aligned table (round,
    bucket, priority, frontier, direction, fused drains, wall and traverse
    milliseconds) followed by a phase-totals line covering every recorded
    round. [max_rounds] elides the middle of long traces (default 40 rows
    shown); the totals line always covers the full trace. *)
val pp : ?max_rounds:int -> Format.formatter -> t -> unit

(** [to_json t] is the trace as a JSON array, one object per round with
    the field names of {!round} (direction as ["push"]/["pull"]). *)
val to_json : t -> Support.Json.t
