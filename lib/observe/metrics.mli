(** The flight-recorder metric registry: named monotonic counters and
    duration histograms, cheap enough to stay on while the engine runs.

    A registry maps names to instruments. {e Counters} are monotonic and
    accumulate per worker into padded slots
    ({!Parallel.Atomic_array.make_padded}), so hot-path increments from
    different domains never bounce a cache line; a counter's value is the
    sum over slots. {e Histograms} record durations (seconds in, integer
    nanoseconds internally) into power-of-two buckets with atomic updates,
    so any domain may record.

    Reading happens through {!snapshot}: an immutable copy of every
    instrument, taken between parallel phases. {!diff} subtracts two
    snapshots, which is how callers scope measurements to one run ("the
    flight") on a shared registry. Every metric name that ships in this
    repository is documented in [docs/OBSERVABILITY.md]. *)

type t

(** [create ()] is an empty registry. Counter slot counts are fixed (16,
    a power of two); worker ids are folded into slots by masking, so any
    [tid] is safe. *)
val create : unit -> t

(** [default] is the process-wide registry used by {!Span} and the
    instrumentation hooks in the engine, bucket structures, and baselines. *)
val default : t

(** [reset t] zeroes every registered instrument (the registry keeps its
    instruments; handles stay valid). Call between flights only. *)
val reset : t -> unit

(** {1 Counters} *)

type counter

(** [counter t name] is the counter registered under [name], creating it on
    first use. Thread-safe; idempotent. *)
val counter : t -> string -> counter

(** [incr c ~tid ?by ()] adds [by] (default 1) to worker [tid]'s slot.
    Counters are monotonic: raises [Invalid_argument] when [by < 0]. *)
val incr : counter -> tid:int -> ?by:int -> unit -> unit

(** [counter_value c] sums the per-worker slots. Exact only between
    parallel phases. *)
val counter_value : counter -> int

(** {1 Duration histograms} *)

type histogram

(** [histogram t name] is the histogram registered under [name], creating
    it on first use. Thread-safe; idempotent. *)
val histogram : t -> string -> histogram

(** [observe h seconds] records one duration. Negative durations clamp to
    zero (a clock can step backwards); all updates are atomic. *)
val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type hist_summary = {
  count : int;  (** Number of observations. *)
  total_ns : int;  (** Sum of observed durations, nanoseconds. *)
  min_ns : int;  (** Smallest observation; [0] when [count = 0]. *)
  max_ns : int;  (** Largest observation; [0] when [count = 0]. *)
  buckets : (int * int) list;
      (** Non-empty power-of-two buckets, [(exponent, count)]: an
          observation of [n] ns lands in the bucket whose exponent is the
          position of [n]'s highest set bit. Sorted by exponent. *)
}

type snapshot = {
  counters : (string * int) list;  (** Sorted by name. *)
  histograms : (string * hist_summary) list;  (** Sorted by name. *)
}

(** [percentile_ns h q] estimates the [q]-quantile ([q] in [[0;1]],
    clamped) of the durations recorded in [h], in nanoseconds, from its
    power-of-two buckets alone: nearest-rank bucket selection plus
    linear interpolation within the bucket, clamped to the recorded
    min/max. Because buckets bin by highest set bit, the estimate is
    always within one log2 bucket of the exact sample percentile — the
    contract the qcheck suite pins. [0.] when the histogram is empty.
    The service's [stats] reply derives its p50/p95/p99 latencies from
    this. *)
val percentile_ns : hist_summary -> float -> float

(** [snapshot t] copies every instrument. Take it between parallel phases
    for exact values. *)
val snapshot : t -> snapshot

(** [diff ~earlier later] subtracts counter values and histogram summaries
    entry-wise: the activity that happened between the two snapshots.
    Instruments absent from [earlier] are kept as-is; [min_ns]/[max_ns]
    are those of [later] (extrema cannot be un-observed). *)
val diff : earlier:snapshot -> snapshot -> snapshot

(** [is_empty s] is true when [s] has no instruments with any activity. *)
val is_empty : snapshot -> bool

(** {1 Exporters} *)

(** [pp ?times ppf s] prints the snapshot as an aligned table: counters
    first, then histograms (count, total ms, mean us, min/max us).
    [~times:false] omits every wall-clock column, leaving only names and
    counts — the deterministic form used by golden tests. *)
val pp : ?times:bool -> Format.formatter -> snapshot -> unit

(** [to_json s] is the snapshot as
    [{"counters": {name: value, ...},
      "histograms": {name: {"count": .., "total_ns": .., "min_ns": ..,
                            "max_ns": .., "buckets": [[exp, count], ...]},
                     ...}}]
    — the [metrics] object of the bench [--json] schema. *)
val to_json : snapshot -> Support.Json.t
