(* Per-worker timeline rings. The hot path must be safe to call from a
   worker loop: no locks, no allocation, no branches beyond the capacity
   mask. Each track is three int arrays plus a plain head counter, and
   each track has a single writer (the worker that owns the slot), so
   plain stores are enough; readers run between parallel phases, after a
   pool barrier has ordered the writes. *)

let num_tracks = 16

(* Phase tag packed into the low bits of the code word. Three bits so
   the async pair fits alongside begin/end/counter. *)
let ph_begin = 0
let ph_end = 1
let ph_counter = 2
let ph_async_begin = 3
let ph_async_end = 4
let no_arg = min_int
let no_ctx = min_int

type ring = {
  mutable head : int; (* total events ever written to this track *)
  ts : int array; (* ns since tracer creation *)
  code : int array; (* (label lsl 3) lor phase *)
  arg : int array; (* payload; [no_arg] = none *)
  ctx : int array; (* ambient query context at record time; [no_ctx] = none *)
}

type t = {
  capacity : int; (* power of two *)
  mask : int;
  rings : ring array; (* [num_tracks], tid folds in by masking *)
  start_ns : int;
  mutable dropped_reported : int; (* folded into Metrics by [write] *)
}

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ?(capacity_per_track = 8192) () =
  if capacity_per_track < 1 then
    invalid_arg "Tracer.create: capacity_per_track must be >= 1";
  let capacity = pow2_at_least capacity_per_track 1 in
  {
    capacity;
    mask = capacity - 1;
    rings =
      Array.init num_tracks (fun _ ->
          {
            head = 0;
            ts = Array.make capacity 0;
            code = Array.make capacity 0;
            arg = Array.make capacity no_arg;
            ctx = Array.make capacity no_ctx;
          });
    start_ns = now_ns ();
    dropped_reported = 0;
  }

(* ------------------------------------------------------------------ *)
(* The current tracer *)

let current_tracer : t option Atomic.t = Atomic.make None
let set_current t = Atomic.set current_tracer t
let current () = Atomic.get current_tracer

(* ------------------------------------------------------------------ *)
(* Ambient query context: a trace id attached to every event recorded
   while it is set. Hosted here (not per call site) so the service can
   scope a whole batch run — engine rounds, traversal sweeps, pool
   episodes — without threading an id through every layer. One atomic
   read per push; [no_ctx] (the default) adds nothing to the export. *)

let context_cell : int Atomic.t = Atomic.make no_ctx

let set_context = function
  | None -> Atomic.set context_cell no_ctx
  | Some id -> Atomic.set context_cell id

let context () =
  let c = Atomic.get context_cell in
  if c = no_ctx then None else Some c

(* ------------------------------------------------------------------ *)
(* Labels: interned once; reads scan an immutable array with no lock so
   round-granular call sites can resolve by string without contention. *)

type label = int

let labels : string array Atomic.t = Atomic.make [||]
let label_mutex = Mutex.create ()

let find_label arr name =
  let rec go i =
    if i >= Array.length arr then -1
    else if String.equal (Array.unsafe_get arr i) name then i
    else go (i + 1)
  in
  go 0

let label name =
  let arr = Atomic.get labels in
  let i = find_label arr name in
  if i >= 0 then i
  else begin
    Mutex.lock label_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock label_mutex)
      (fun () ->
        (* Re-check: another domain may have interned it meanwhile. *)
        let arr = Atomic.get labels in
        let i = find_label arr name in
        if i >= 0 then i
        else begin
          Atomic.set labels (Array.append arr [| name |]);
          Array.length arr
        end)
  end

let label_name l =
  let arr = Atomic.get labels in
  if l >= 0 && l < Array.length arr then arr.(l) else "?"

(* ------------------------------------------------------------------ *)
(* Recording *)

let push t ~tid phase lbl arg =
  let r = Array.unsafe_get t.rings (tid land (num_tracks - 1)) in
  let i = r.head land t.mask in
  Array.unsafe_set r.ts i (now_ns () - t.start_ns);
  Array.unsafe_set r.code i ((lbl lsl 3) lor phase);
  Array.unsafe_set r.arg i arg;
  Array.unsafe_set r.ctx i (Atomic.get context_cell);
  r.head <- r.head + 1

let begin_ t ~tid ?(arg = no_arg) lbl = push t ~tid ph_begin lbl arg
let end_ t ~tid lbl = push t ~tid ph_end lbl no_arg
let counter t ~tid lbl v = push t ~tid ph_counter lbl v
let async_begin t ~tid ~id lbl = push t ~tid ph_async_begin lbl id
let async_end t ~tid ~id lbl = push t ~tid ph_async_end lbl id

(* ------------------------------------------------------------------ *)
(* Reading *)

let retained r ~capacity = min r.head capacity

let event_count t =
  Array.fold_left (fun acc r -> acc + retained r ~capacity:t.capacity) 0 t.rings

let dropped_of_ring r ~capacity = max 0 (r.head - capacity)

let dropped_events t =
  Array.fold_left (fun acc r -> acc + dropped_of_ring r ~capacity:t.capacity) 0 t.rings

(* ------------------------------------------------------------------ *)
(* Export *)

let us_of_ns ns = float_of_int ns /. 1e3

let event ~name ~ph ~ts ~tid extra =
  let open Support.Json in
  Obj
    ([
       ("name", String name);
       ("ph", String ph);
       ("ts", Float (us_of_ns ts));
       ("pid", Int 1);
       ("tid", Int tid);
     ]
    @ extra)

let to_json t =
  let open Support.Json in
  let events = ref [] in
  (* newest first while building *)
  let emit e = events := e :: !events in
  emit
    (Obj
       [
         ("name", String "process_name");
         ("ph", String "M");
         ("pid", Int 1);
         ("args", Obj [ ("name", String "graphit-ordered") ]);
       ]);
  Array.iteri
    (fun tid r ->
      let n = retained r ~capacity:t.capacity in
      if n > 0 then begin
        emit
          (Obj
             [
               ("name", String "thread_name");
               ("ph", String "M");
               ("pid", Int 1);
               ("tid", Int tid);
               ("args", Obj [ ("name", String (Printf.sprintf "worker %d" tid)) ]);
             ]);
        let first = r.head - n in
        (* Open-slice stack for the balance guarantee: orphan ends (their
           begin was overwritten by wraparound) are skipped; slices still
           open at the end of the track are closed at its last timestamp. *)
        let stack = ref [] in
        let last_ts = ref 0 in
        for j = first to r.head - 1 do
          let i = j land t.mask in
          let code = r.code.(i) and ts = r.ts.(i) and arg = r.arg.(i) in
          let ctx = r.ctx.(i) in
          let lbl = code lsr 3 and phase = code land 7 in
          let with_query fields =
            if ctx = no_ctx then fields else ("query", Int ctx) :: fields
          in
          let args_of fields =
            match with_query fields with [] -> [] | fs -> [ ("args", Obj fs) ]
          in
          last_ts := ts;
          if phase = ph_begin then begin
            stack := lbl :: !stack;
            let fields = if arg = no_arg then [] else [ ("n", Int arg) ] in
            emit (event ~name:(label_name lbl) ~ph:"B" ~ts ~tid (args_of fields))
          end
          else if phase = ph_end then (
            match !stack with
            | [] -> () (* orphan end: begin lost to wraparound *)
            | _ :: rest ->
                stack := rest;
                emit (event ~name:(label_name lbl) ~ph:"E" ~ts ~tid []))
          else if phase = ph_counter then
            emit
              (event ~name:(label_name lbl) ~ph:"C" ~ts ~tid
                 [ ("args", Obj [ ("value", Int arg) ]) ])
          else if phase = ph_async_begin || phase = ph_async_end then
            (* Chrome async events: overlapping per-query slices matched
               by (cat, id), free of the per-track nesting discipline. *)
            emit
              (event
                 ~name:(label_name lbl)
                 ~ph:(if phase = ph_async_begin then "b" else "e")
                 ~ts ~tid
                 [
                   ("cat", String "query");
                   ("id", Int arg);
                   ("args", Obj [ ("query", Int arg) ]);
                 ])
        done;
        List.iter
          (fun lbl -> emit (event ~name:(label_name lbl) ~ph:"E" ~ts:!last_ts ~tid []))
          !stack
      end)
    t.rings;
  Obj
    [
      ("traceEvents", List (List.rev !events));
      ("displayTimeUnit", String "ns");
    ]

let write t path =
  let doc = to_json t in
  let dropped = dropped_events t in
  if dropped > t.dropped_reported then begin
    Metrics.incr
      (Metrics.counter Metrics.default "trace.dropped_events")
      ~tid:0
      ~by:(dropped - t.dropped_reported)
      ();
    t.dropped_reported <- dropped
  end;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Support.Json.to_string doc);
      output_char oc '\n');
  if dropped > 0 then
    Printf.eprintf
      "WARNING: trace %s is TRUNCATED: %d event(s) were dropped by ring-buffer \
       wraparound (capacity %d/track). The timeline keeps only the newest \
       events per worker; re-run with a larger capacity for a complete trace.\n\
       %!"
      path dropped t.capacity

(* ------------------------------------------------------------------ *)
(* Pool wiring: one [pool.worker] slice per worker per episode, on that
   worker's own track. The hook reads the current tracer per event so it
   can stay installed across tracer swaps. *)

let worker_hook ~tid ~enter =
  match current () with
  | None -> ()
  | Some t ->
      let lbl = label "pool.worker" in
      if enter then begin_ t ~tid lbl else end_ t ~tid lbl

let install_pool_hooks () = Parallel.Pool.set_worker_hook (Some worker_hook)
let remove_pool_hooks () = Parallel.Pool.set_worker_hook None
