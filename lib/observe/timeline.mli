(** Cross-PR benchmark trajectory analysis — the engine behind
    [bin/bench_timeline.exe].

    Where {!Report_diff} compares exactly two bench [--json] reports,
    the timeline aggregates the whole committed history
    ([bench/BENCH_*.json], oldest first) plus an optional freshly
    measured point into a per-section series: median/min/max and sample
    stddev over the series, and a regression flag comparing the {e
    newest} point against the median of the points before it — the
    trajectory's own baseline, so one noisy historical point cannot
    mask a step change.

    Provenance is respected the same way bench_diff refuses cross-host
    diffs: points whose [meta.hostname] differs from the majority
    hostname are listed but excluded from gating unless
    [~gate_foreign:true] (the CLI's [--force]). Thresholds follow the
    bench_diff contract: a section regresses when the newest gated
    value exceeds the prior median by more than [threshold]
    (relative), unless both sit below [floor] seconds. *)

type point = {
  label : string;  (** Usually the file's basename. *)
  git_commit : string;
  hostname : string;
  sections : (string * float) list;  (** [section_seconds], report order. *)
}

type row = {
  section : string;
  values : float option array;  (** One per point; [None] = absent. *)
  median : float;  (** Over present values, seconds. *)
  vmin : float;
  vmax : float;
  stddev : float;  (** Sample stddev; [0.] when fewer than 2 values. *)
  last_rel : float option;
      (** Relative delta of the newest gated value vs the median of the
          prior gated values; [None] when under 2 gated values or both
          sides sit below the floor. *)
  regressed : bool;
  improved : bool;
}

type report = {
  points : point list;
  gated : bool array;
  rows : row list;
  regressions : int;
  threshold : float;
  floor : float;
}

(** [points_of_string ~label s] parses one file's contents: either a
    single bench [--json] report or a bench_diff trajectory file (a
    JSON list of reports, oldest first), which flattens in order —
    multi-entry trajectories get [label[i]] labels. *)
val points_of_string : label:string -> string -> (point list, string) result

(** Same, from an already parsed document. *)
val points_of_doc : label:string -> Support.Json.t -> (point list, string) result

(** [analyze ?threshold ?floor ?gate_foreign points] builds the report.
    Defaults match the CI bench gate: [threshold = 0.25],
    [floor = 0.01] (seconds), [gate_foreign = false]. *)
val analyze :
  ?threshold:float -> ?floor:float -> ?gate_foreign:bool -> point list -> report

(** Aligned text table: one line per point (label, commit, host,
    gating), then one row per section with the series, summary stats,
    the newest point's relative delta, and REGRESSED flags. *)
val pp : Format.formatter -> report -> unit

(** JSON form of the same report (the artifact CI uploads). *)
val to_json : report -> Support.Json.t
