(** Span-based profiling: wall-clock scopes recorded into
    {!Metrics.default} duration histograms.

    Spans are {b off by default}. Disabled, {!with_} is a single atomic
    flag read followed by a direct call of the body — the no-op path that
    keeps instrumented hot loops at their uninstrumented cost (every span
    shipped in this repository is at round granularity or coarser, never
    per edge). The flag is the runtime form of compiling the
    instrumentation out: builds that must not even pay the flag read can
    set {!static_enabled} to [false], turning [with_] into a direct call
    the optimizer erases.

    Enabled, a span times its body and records the duration under its
    label, whether the body returns or raises — a span that dies by
    exception is still part of the flight. Nesting is by lexical scope;
    labels are dot-separated paths by convention ([engine.traverse.push]).
    The recorded labels are documented in [docs/OBSERVABILITY.md]. *)

(** Build-time master switch. [false] removes the instrumentation
    entirely: {!with_} becomes an alias for application and enabling at
    runtime has no effect. Ships as [true]; the runtime flag below is the
    normal control. *)
val static_enabled : bool

(** [set_enabled b] turns recording on or off process-wide. *)
val set_enabled : bool -> unit

(** [enabled ()] is the current recording state ([false] whenever
    {!static_enabled} is [false]). *)
val enabled : unit -> bool

(** [with_ ?tid ?arg label f] runs [f ()], recording its wall-clock
    duration under [label] when enabled. The duration is recorded even
    when [f] raises (the exception is re-raised). Returns [f ()]'s value.

    When a {!Tracer} is current, the span additionally emits a timeline
    slice on worker [tid]'s track (default 0 — every shipped span runs
    on the orchestrating worker between parallel phases), carrying [arg]
    (a round index, a bucket key) as its integer payload. The tracer
    sink is independent of {!enabled}: [--trace] works without
    [--profile] and vice versa. With both sinks off, the cost is two
    flag reads. *)
val with_ : ?tid:int -> ?arg:int -> string -> (unit -> 'a) -> 'a

(** [record label seconds] records an externally measured duration under
    [label] when enabled — for phases whose cost is measured by the
    substrate rather than timed here (e.g. the engine's per-round barrier
    wait, sampled from {!Parallel.Pool.barrier_wait_seconds}). *)
val record : string -> float -> unit

(** [count ~tid ?by label] bumps the counter [label] by [by] (default 1)
    when enabled. The per-worker slot is picked by [tid]. Disabled, the
    cost is a single flag read. *)
val count : tid:int -> ?by:int -> string -> unit

(** [install_pool_hook ()] wires {!Parallel.Pool.set_episode_hook} to the
    recorder: every [run_workers] episode then records the
    [pool.episode] histogram and the [pool.episodes] counter. Idempotent.
    [remove_pool_hook] detaches it again. *)
val install_pool_hook : unit -> unit

val remove_pool_hook : unit -> unit
