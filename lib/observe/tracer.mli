(** Per-worker timeline tracing: fixed-capacity ring buffers of
    timestamped begin/end events, exported as Chrome/Perfetto
    [trace_event] JSON so any run opens directly in [ui.perfetto.dev].

    Where {!Metrics} aggregates (how much time went to dequeue overall),
    a tracer keeps the {e timeline}: which rounds, which workers, where
    the stragglers sit. One track per worker; slices nest by lexical
    scope, exactly like spans.

    Recording is lock-free and allocation-free on the hot path: each
    worker owns a ring of four int arrays (timestamp, packed
    label/phase, argument, ambient query context) indexed by a plain
    head counter, and a write is four stores plus an increment. Timestamps come from the
    monotonic clock ([bechamel.monotonic_clock], [clock_gettime]
    underneath), relative to tracer creation. When a ring wraps, the
    {e newest} events win and the overwritten ones are counted as
    dropped — see {!dropped_events} and the [trace.dropped_events]
    metric recorded by {!write}.

    Rings are fixed at {!num_tracks} slots; worker ids fold in by
    masking (like {!Metrics} counter slots), so any [tid] is safe. Two
    workers that alias the same slot interleave raggedly rather than
    crash; pools in this repository stay within [num_tracks].

    The export sanitizes each track so nesting is always balanced:
    orphan end events (whose begin was overwritten by wraparound) are
    dropped, and slices still open at export time are closed at the
    track's last timestamp. *)

type t

(** Number of per-worker tracks (16, a power of two). *)
val num_tracks : int

(** [create ?capacity_per_track ()] is a fresh tracer. Capacity is
    rounded up to a power of two, default 8192 events per track; at 24
    bytes per event the default costs ~3 MB across all tracks. *)
val create : ?capacity_per_track:int -> unit -> t

(** {1 The current tracer}

    Instrumentation sites ({!Span.with_}, the pool worker hook, the
    engine) record into the process-wide current tracer; [None] (the
    default) makes every emission a single flag read. *)

val set_current : t option -> unit
val current : unit -> t option

(** {1 Query context}

    An ambient trace id attached to every event recorded while it is
    set. The query service scopes a whole batch run with it — engine
    rounds, traversal sweeps, pool episodes all pick it up without any
    id threading through those layers — so a Perfetto trace can be
    sliced per query: every slice recorded under a context carries
    [args:{"query": id}]. Costs one atomic read per event; [None] (the
    default) leaves exports unchanged. Process-wide, like the current
    tracer itself: set it around a run, clear it after. *)

val set_context : int option -> unit
val context : unit -> int option

(** {1 Labels}

    Event names are interned to small ints once so the hot path stores
    an int, not a string. The read path is lock-free (an immutable
    array behind an [Atomic]); interning a new name takes a mutex. *)

type label = private int

val label : string -> label
val label_name : label -> string

(** {1 Recording}

    Safe with no effect when the event does not fit ([tid] is masked,
    never rejected). *)

(** [begin_ t ~tid ?arg l] opens a slice on worker [tid]'s track.
    [arg] is an optional integer payload (a round index, a bucket key)
    exported as [args:{"n": arg}]. *)
val begin_ : t -> tid:int -> ?arg:int -> label -> unit

(** [end_ t ~tid l] closes the innermost slice named [l]. *)
val end_ : t -> tid:int -> label -> unit

(** [counter t ~tid l v] records a Perfetto counter sample ([ph:"C"]),
    rendered as a stepped value track — used for per-round barrier-wait
    time, which is sampled rather than timed. *)
val counter : t -> tid:int -> label -> int -> unit

(** [async_begin t ~tid ~id l] / [async_end t ~tid ~id l] bracket a
    Chrome {e async} slice ([ph:"b"]/["e"], [cat:"query"]) matched by
    [id] rather than by stack discipline, so slices for different
    queries may overlap freely — the service opens one per batch member
    at dispatch and closes it when that member's reply resolves, which
    can happen rounds before the batch finishes. [id] is exported both
    as the Chrome async [id] and as [args:{"query": id}]. *)
val async_begin : t -> tid:int -> id:int -> label -> unit

val async_end : t -> tid:int -> id:int -> label -> unit

(** {1 Reading} *)

(** [event_count t] is the number of events currently retained. *)
val event_count : t -> int

(** [dropped_events t] is the number of events overwritten by ring
    wraparound so far — a non-zero value means the exported timeline is
    truncated to the newest [capacity] events per track. *)
val dropped_events : t -> int

(** [to_json t] is the trace as a Chrome [trace_event] document:
    [{"traceEvents": [{"name", "ph", "ts", "pid", "tid", ...}, ...],
      "displayTimeUnit": "ns"}] with [ph] one of ["B"]/["E"]/["C"]/["M"]
    and [ts] in (fractional) microseconds. Tracks are emitted in [tid]
    order, each preceded by a [thread_name] metadata event; per-track
    event order is oldest to newest. Safe to call while the tracer is
    still current, between parallel phases. *)
val to_json : t -> Support.Json.t

(** [write t path] dumps {!to_json} to [path]. If any events were
    dropped it prints a loud warning on stderr and folds the count into
    the [trace.dropped_events] counter of {!Metrics.default} (the delta
    since the previous [write]), so truncated timelines are never
    mistaken for complete ones. *)
val write : t -> string -> unit

(** {1 Pool wiring}

    [install_pool_hooks ()] sets {!Parallel.Pool.set_worker_hook} to
    record a [pool.worker] slice on each worker's own track for every
    episode — the per-worker busy/idle picture. Records into whichever
    tracer is current at event time; harmless when none is.
    [remove_pool_hooks] detaches it. *)

val install_pool_hooks : unit -> unit
val remove_pool_hooks : unit -> unit
