(* Structured, levelled JSONL event log. The write path mirrors the
   rest of the flight recorder: per-worker buffers so concurrent
   emitters never contend on one stream, a single sink guarded by a
   mutex, and a one-atomic-read fast path when logging is off. Unlike
   metrics and traces this log is for discrete *events* — a slow query,
   an admission rejection, a subscription — each a self-describing JSON
   line a human can grep and a test can parse back. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let threshold = Atomic.make (level_rank Info)
let set_level l = Atomic.set threshold (level_rank l)

(* ------------------------------------------------------------------ *)
(* Sink: one writer closure behind a mutex. [None] (the default) turns
   every [event] into a single atomic read. *)

let writer : (string -> unit) option Atomic.t = Atomic.make None
let writer_mutex = Mutex.create ()
let file_chan : out_channel option ref = ref None

let enabled l =
  Atomic.get writer <> None && level_rank l >= Atomic.get threshold

(* ------------------------------------------------------------------ *)
(* Per-worker buffers. Each slot has its own mutex because unlike the
   tracer rings several OS threads can share a slot (the service logs
   from reader threads and subscription pushers, all on tid 0); the
   locks are uncontended in the common case and never held across the
   sink. Lock order is always slot -> sink. *)

let num_slots = 16
let flush_at = 32 * 1024

type slot = { mu : Mutex.t; buf : Buffer.t }

let slots =
  Array.init num_slots (fun _ -> { mu = Mutex.create (); buf = Buffer.create 512 })

let to_sink chunk =
  if chunk <> "" then begin
    Mutex.lock writer_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock writer_mutex)
      (fun () -> match Atomic.get writer with Some w -> w chunk | None -> ())
  end

let flush_slot s =
  Mutex.lock s.mu;
  let chunk =
    if Buffer.length s.buf = 0 then ""
    else begin
      let c = Buffer.contents s.buf in
      Buffer.clear s.buf;
      c
    end
  in
  Mutex.unlock s.mu;
  to_sink chunk

let flush () = Array.iter flush_slot slots

(* ------------------------------------------------------------------ *)
(* Emission *)

let event ?(tid = 0) level name fields =
  if enabled level then begin
    let open Support.Json in
    let line =
      to_string
        (Obj
           (("ts", Float (Unix.gettimeofday ()))
           :: ("level", String (level_name level))
           :: ("event", String name)
           :: fields))
    in
    let s = Array.unsafe_get slots (tid land (num_slots - 1)) in
    Mutex.lock s.mu;
    Buffer.add_string s.buf line;
    Buffer.add_char s.buf '\n';
    let full = Buffer.length s.buf >= flush_at in
    Mutex.unlock s.mu;
    (* Warnings and errors (slow queries, deadline misses) must reach
       the sink before a crash or a reader can care; Debug/Info ride
       the buffer until it fills or someone flushes. *)
    if full || level_rank level >= level_rank Warn then flush_slot s
  end

(* ------------------------------------------------------------------ *)
(* Sink management *)

let close_chan () =
  match !file_chan with
  | None -> ()
  | Some oc ->
      (try close_out oc with Sys_error _ -> ());
      file_chan := None

let set_writer w =
  flush ();
  Mutex.lock writer_mutex;
  close_chan ();
  Atomic.set writer w;
  Mutex.unlock writer_mutex

let open_file path =
  flush ();
  Mutex.lock writer_mutex;
  close_chan ();
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  file_chan := Some oc;
  Atomic.set writer
    (Some
       (fun chunk ->
         output_string oc chunk;
         Stdlib.flush oc));
  Mutex.unlock writer_mutex;
  event Info "log.opened" [ ("path", Support.Json.String path) ];
  flush ()

let close () =
  flush ();
  Mutex.lock writer_mutex;
  close_chan ();
  Atomic.set writer None;
  Mutex.unlock writer_mutex
