module Json = Support.Json

type cell = {
  section : string;
  key : string;
  field : string;
  old_v : float;
  new_v : float;
  delta_pct : float;
  gated : bool;
  regressed : bool;
  improved : bool;
}

type t = {
  cells : cell list;
  warnings : string list;
  regressions : int;
}

(* ------------------------------------------------------------------ *)
(* Measured fields: which leaves are timings, and in what unit.         *)

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

(* Seconds per unit of the field, or None when the field is identity or
   a hardware-independent count (rounds, trials, loc, ...). *)
let unit_of_field name =
  let base =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  if ends_with ~suffix:"seconds" base then Some 1.0
  else if ends_with ~suffix:"_us" base then Some 1e-6
  else if ends_with ~suffix:"_ns" base || base = "ns_per_run" then Some 1e-9
  else None

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

(* Flatten a row into (identity fields, measured leaves). Identity is
   every top-level scalar that is not a measurement; measured leaves are
   collected recursively with dotted paths so nested objects like tab6's
   [with_fusion.stats] contribute. *)
let flatten_row row =
  let identity = ref [] and measured = ref [] in
  let rec walk prefix = function
    | Json.Obj fields ->
        List.iter
          (fun (name, v) ->
            let path = if prefix = "" then name else prefix ^ "." ^ name in
            match v with
            | Json.Obj _ -> walk path v
            | Json.List _ -> () (* sweeps etc.: no stable identity, skip *)
            | scalar -> (
                match (unit_of_field path, number scalar) with
                | Some _, Some x -> measured := (path, x) :: !measured
                | Some _, None -> () (* null timing: unsupported cell *)
                | None, _ ->
                    if prefix = "" then
                      let rendered =
                        match scalar with
                        | Json.String s -> Some s
                        | Json.Int i -> Some (string_of_int i)
                        | Json.Bool b -> Some (string_of_bool b)
                        | _ -> None
                      in
                      match rendered with
                      | Some r -> identity := (name, r) :: !identity
                      | None -> ()))
          fields
    | _ -> ()
  in
  walk "" row;
  let key =
    String.concat " "
      (List.rev_map (fun (name, v) -> name ^ "=" ^ v) !identity)
  in
  (key, List.rev !measured)

(* ------------------------------------------------------------------ *)
(* Report structure                                                     *)

let sections_of report =
  let data =
    match Json.member "sections" report with
    | Some (Json.Obj fields) ->
        List.map
          (fun (id, rows) ->
            let rows = match rows with Json.List l -> l | other -> [ other ] in
            (id, List.map flatten_row rows))
          fields
    | _ -> []
  in
  (* section_seconds as a pseudo-section: one row per executed section. *)
  let durations =
    match Json.member "section_seconds" report with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (id, v) ->
            match number v with
            | Some x -> Some (id, [ ("seconds", x) ])
            | None -> None)
          fields
    | _ -> []
  in
  if durations = [] then data else ("section_seconds", durations) :: data

(* Duplicate row keys within a section (e.g. a sweep whose identity
   fields repeat) are disambiguated by occurrence index, so matching
   stays positional among same-key rows. *)
let number_duplicates rows =
  let seen = Hashtbl.create 16 in
  List.map
    (fun (key, fields) ->
      let n = try Hashtbl.find seen key with Not_found -> 0 in
      Hashtbl.replace seen key (n + 1);
      let key = if n = 0 then key else Printf.sprintf "%s #%d" key n in
      (key, fields))
    rows

(* ------------------------------------------------------------------ *)
(* Provenance                                                           *)

let provenance_fields =
  [ "git_commit"; "hostname"; "ocaml_version"; "workers"; "scale"; "smoke" ]

let provenance report =
  let meta =
    match Json.member "meta" report with Some m -> m | None -> Json.Obj []
  in
  List.filter_map
    (fun name ->
      match Json.member name meta with
      | Some (Json.String s) -> Some (name, s)
      | Some (Json.Int i) -> Some (name, string_of_int i)
      | Some (Json.Bool b) -> Some (name, string_of_bool b)
      | Some (Json.Float f) -> Some (name, string_of_float f)
      | _ -> None)
    provenance_fields

let provenance_mismatches ~old_ ~new_ =
  let po = provenance old_ and pn = provenance new_ in
  List.filter_map
    (fun (name, ov) ->
      if name = "git_commit" then None
      else
        match List.assoc_opt name pn with
        | Some nv when nv <> ov -> Some (name, ov, nv)
        | _ -> None)
    po

(* ------------------------------------------------------------------ *)
(* The comparison                                                       *)

let compare_reports ?(threshold = 0.10) ?(floor_seconds = 1e-4) ~old_ ~new_ () =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  let cells = ref [] in
  let old_sections = sections_of old_ and new_sections = sections_of new_ in
  List.iter
    (fun (id, old_rows) ->
      match List.assoc_opt id new_sections with
      | None -> warn "section %s: missing from the new report" id
      | Some new_rows ->
          let old_rows = number_duplicates old_rows in
          let new_rows = number_duplicates new_rows in
          List.iter
            (fun (key, old_fields) ->
              match List.assoc_opt key new_rows with
              | None -> warn "section %s: row [%s] missing from the new report" id key
              | Some new_fields ->
                  List.iter
                    (fun (field, old_v) ->
                      match List.assoc_opt field new_fields with
                      | None ->
                          warn "section %s: row [%s] lost field %s" id key field
                      | Some new_v ->
                          let unit_s =
                            match unit_of_field field with
                            | Some u -> u
                            | None -> assert false
                          in
                          let gated = old_v *. unit_s >= floor_seconds in
                          let delta_pct =
                            if old_v > 0.0 then
                              100.0 *. (new_v -. old_v) /. old_v
                            else if new_v > 0.0 then Float.infinity
                            else 0.0
                          in
                          let regressed =
                            gated && delta_pct > 100.0 *. threshold
                          in
                          let improved =
                            gated && delta_pct < -100.0 *. threshold
                          in
                          cells :=
                            {
                              section = id;
                              key;
                              field;
                              old_v;
                              new_v;
                              delta_pct;
                              gated;
                              regressed;
                              improved;
                            }
                            :: !cells)
                    old_fields)
            old_rows;
          List.iter
            (fun (key, _) ->
              if List.assoc_opt key old_rows = None then
                warn "section %s: row [%s] only in the new report" id key)
            new_rows)
    old_sections;
  List.iter
    (fun (id, _) ->
      if List.assoc_opt id old_sections = None then
        warn "section %s: only in the new report" id)
    new_sections;
  let cells = List.rev !cells in
  {
    cells;
    warnings = List.rev !warnings;
    regressions = List.length (List.filter (fun c -> c.regressed) cells);
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let verdict c =
  if c.regressed then "REGRESS"
  else if c.improved then "improved"
  else if not c.gated then "~"
  else "ok"

let pp ppf t =
  Format.fprintf ppf "%-16s %-38s %-26s %10s %10s %9s  %s@." "section" "row"
    "field" "old" "new" "delta" "verdict";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-16s %-38s %-26s %10.4g %10.4g %+8.1f%%  %s@."
        c.section
        (if c.key = "" then "-" else c.key)
        c.field c.old_v c.new_v c.delta_pct (verdict c))
    t.cells;
  List.iter (fun w -> Format.fprintf ppf "warning: %s@." w) t.warnings;
  Format.fprintf ppf "%d comparison(s), %d regression(s)@."
    (List.length t.cells) t.regressions
