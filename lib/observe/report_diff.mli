(** Section-by-section comparison of two [bench --json] reports — the
    regression gate behind [bin/bench_diff.exe].

    A report (schema in [docs/OBSERVABILITY.md] §5) is an object with
    [meta], [section_seconds], and [sections]. The comparison walks every
    section present in both reports, matches rows by their identity
    fields (every scalar field that is not a measurement), and compares
    the {e measured} fields: numeric leaves whose name ends in
    [seconds], [_us], or [_ns], or equals [ns_per_run] — dotted paths
    reach into nested objects, e.g. [with_fusion.seconds] in [tab6]
    rows. [section_seconds] is compared too, as a pseudo-section.

    A cell {e regresses} when the new value exceeds the old by more than
    [threshold] (relative), {e and} the old value, converted to seconds,
    is at least [floor_seconds] — sub-millisecond timings are pure
    scheduler noise and never gate (they still appear in the table).
    Rows or sections present on only one side produce warnings, never
    regressions. *)

module Json = Support.Json

type cell = {
  section : string;
  key : string;  (** Identity fields of the row, rendered [k=v k=v]. *)
  field : string;  (** Dotted path of the measured leaf. *)
  old_v : float;
  new_v : float;  (** In the field's native unit. *)
  delta_pct : float;
  gated : bool;  (** Old value at/above the floor: eligible to regress. *)
  regressed : bool;
  improved : bool;  (** Mirror of [regressed], same threshold. *)
}

type t = {
  cells : cell list;  (** Report order: section by section, row by row. *)
  warnings : string list;
  regressions : int;
}

(** [provenance report] is the meta fields that identify where a report
    was produced (present ones among [git_commit], [hostname],
    [ocaml_version], [workers], [scale], [smoke]), rendered as strings. *)
val provenance : Json.t -> (string * string) list

(** [provenance_mismatches ~old_ ~new_] is the provenance fields that
    are present in both reports but differ — excluding [git_commit],
    which is {e expected} to differ across a comparison. A non-empty
    result means the reports come from different machines or
    configurations and their timings are not comparable; [bench_diff]
    refuses unless [--force] is passed. *)
val provenance_mismatches :
  old_:Json.t -> new_:Json.t -> (string * string * string) list

(** [compare_reports ?threshold ?floor_seconds ~old_ ~new_ ()] runs the
    comparison. [threshold] is relative (default [0.10] = 10%);
    [floor_seconds] (default [1e-4]) is the absolute gate described
    above. *)
val compare_reports :
  ?threshold:float ->
  ?floor_seconds:float ->
  old_:Json.t ->
  new_:Json.t ->
  unit ->
  t

(** [pp ppf t] prints the per-row delta table (every cell, one line
    each, verdict column: [ok] / [~] below-floor / [improved] /
    [REGRESS]), then warnings, then a one-line summary. *)
val pp : Format.formatter -> t -> unit
