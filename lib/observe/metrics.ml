module Atomic_array = Parallel.Atomic_array

(* Counter slots: a fixed power of two so any worker id can be folded in
   with a mask. 16 padded slots cover every pool size this repo runs. *)
let num_slots = 16

type counter = { c_slots : Atomic_array.t (* padded, [num_slots] *) }

(* Histogram buckets by position of the highest set bit of the duration in
   nanoseconds: bucket 0 holds [0,1] ns, bucket 40 ~ 18 minutes. The
   [h_state] array packs (count, total, min, max) as padded atomic cells. *)
let num_buckets = 48
let st_count = 0
let st_total = 1
let st_min = 2
let st_max = 3

type histogram = {
  h_counts : Atomic_array.t; (* [num_buckets], plain density is fine *)
  h_state : Atomic_array.t; (* padded, 4 cells *)
}

type t = {
  mutex : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let default = create ()

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let counter t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
          let c = { c_slots = Atomic_array.make_padded num_slots 0 } in
          Hashtbl.add t.counters name c;
          c)

let incr c ~tid ?(by = 1) () =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic (by < 0)";
  ignore (Atomic_array.fetch_add c.c_slots (tid land (num_slots - 1)) by)

let counter_value c =
  let total = ref 0 in
  for i = 0 to num_slots - 1 do
    total := !total + Atomic_array.get c.c_slots i
  done;
  !total

let histogram t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
          let h =
            {
              h_counts = Atomic_array.make num_buckets 0;
              h_state = Atomic_array.make_padded 4 0;
            }
          in
          Atomic_array.set h.h_state st_min max_int;
          Hashtbl.add t.histograms name h;
          h)

let bucket_of_ns ns =
  let rec bits acc n = if n = 0 then acc else bits (acc + 1) (n lsr 1) in
  min (num_buckets - 1) (bits 0 ns)

let observe h seconds =
  let ns = int_of_float (Float.max 0.0 seconds *. 1e9) in
  ignore (Atomic_array.fetch_add h.h_counts (bucket_of_ns ns) 1);
  ignore (Atomic_array.fetch_add h.h_state st_count 1);
  ignore (Atomic_array.fetch_add h.h_state st_total ns);
  ignore (Atomic_array.fetch_min h.h_state st_min ns);
  ignore (Atomic_array.fetch_max h.h_state st_max ns)

let reset t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ c ->
          for i = 0 to num_slots - 1 do
            Atomic_array.set c.c_slots i 0
          done)
        t.counters;
      Hashtbl.iter
        (fun _ h ->
          for i = 0 to num_buckets - 1 do
            Atomic_array.set h.h_counts i 0
          done;
          Atomic_array.set h.h_state st_count 0;
          Atomic_array.set h.h_state st_total 0;
          Atomic_array.set h.h_state st_min max_int;
          Atomic_array.set h.h_state st_max 0)
        t.histograms)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)

type hist_summary = {
  count : int;
  total_ns : int;
  min_ns : int;
  max_ns : int;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_summary) list;
}

let summarize h =
  let count = Atomic_array.get h.h_state st_count in
  let buckets = ref [] in
  for b = num_buckets - 1 downto 0 do
    let n = Atomic_array.get h.h_counts b in
    if n > 0 then buckets := (b, n) :: !buckets
  done;
  {
    count;
    total_ns = Atomic_array.get h.h_state st_total;
    min_ns = (if count = 0 then 0 else Atomic_array.get h.h_state st_min);
    max_ns = Atomic_array.get h.h_state st_max;
    buckets = !buckets;
  }

(* Percentile estimate from the log2 buckets: nearest-rank to find the
   bucket holding the rank-th observation, then linear interpolation
   inside that bucket's value range. Bucket [e] covers
   [[2^(e-1), 2^e - 1]] for [e >= 1] and exactly [{0}] for [e = 0]
   (highest-set-bit binning), so the estimate always lands in the same
   bucket as the exact sample percentile — within one power of two of
   it. Clamping to the recorded min/max only ever moves the estimate
   toward the exact value (both extrema are real observations). *)
let percentile_ns (h : hist_summary) q =
  if h.count = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let rec find cum = function
      | [] -> float_of_int h.max_ns
      | (e, n) :: rest ->
          if cum + n >= rank then begin
            let lo = if e = 0 then 0. else float_of_int (1 lsl (e - 1)) in
            let hi = if e = 0 then 1. else float_of_int (1 lsl e) in
            let frac = (float_of_int (rank - cum) -. 0.5) /. float_of_int n in
            lo +. ((hi -. lo) *. frac)
          end
          else find (cum + n) rest
    in
    let v = find 0 h.buckets in
    let v = if v < float_of_int h.min_ns then float_of_int h.min_ns else v in
    if v > float_of_int h.max_ns then float_of_int h.max_ns else v
  end

let snapshot t =
  with_lock t (fun () ->
      let sorted_bindings tbl value =
        Hashtbl.fold (fun name v acc -> (name, value v) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      {
        counters = sorted_bindings t.counters counter_value;
        histograms = sorted_bindings t.histograms summarize;
      })

let diff ~earlier later =
  let counter_base name =
    match List.assoc_opt name earlier.counters with Some v -> v | None -> 0
  in
  let hist_base name =
    List.assoc_opt name earlier.histograms
  in
  let sub_hist name h =
    match hist_base name with
    | None -> h
    | Some e ->
        let sub_buckets =
          List.filter_map
            (fun (b, n) ->
              let prev =
                match List.assoc_opt b e.buckets with Some p -> p | None -> 0
              in
              if n - prev > 0 then Some (b, n - prev) else None)
            h.buckets
        in
        {
          count = h.count - e.count;
          total_ns = h.total_ns - e.total_ns;
          min_ns = h.min_ns;
          max_ns = h.max_ns;
          buckets = sub_buckets;
        }
  in
  {
    counters =
      List.map (fun (name, v) -> (name, v - counter_base name)) later.counters;
    histograms =
      List.map (fun (name, h) -> (name, sub_hist name h)) later.histograms;
  }

let is_empty s =
  List.for_all (fun (_, v) -> v = 0) s.counters
  && List.for_all (fun (_, h) -> h.count = 0) s.histograms

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)

let pp ?(times = true) ppf s =
  let live_counters = List.filter (fun (_, v) -> v <> 0) s.counters in
  let live_hists = List.filter (fun (_, h) -> h.count <> 0) s.histograms in
  if live_counters <> [] then begin
    Format.fprintf ppf "%-36s %14s@." "counter" "value";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "%-36s %14d@." name v)
      live_counters
  end;
  if live_hists <> [] then begin
    if times then
      Format.fprintf ppf "%-36s %10s %12s %10s %10s %10s@." "span" "count"
        "total(ms)" "mean(us)" "min(us)" "max(us)"
    else Format.fprintf ppf "%-36s %10s@." "span" "count";
    List.iter
      (fun (name, h) ->
        if times then
          Format.fprintf ppf "%-36s %10d %12.3f %10.2f %10.2f %10.2f@." name
            h.count
            (float_of_int h.total_ns /. 1e6)
            (float_of_int h.total_ns /. float_of_int h.count /. 1e3)
            (float_of_int h.min_ns /. 1e3)
            (float_of_int h.max_ns /. 1e3)
        else Format.fprintf ppf "%-36s %10d@." name h.count)
      live_hists
  end;
  if live_counters = [] && live_hists = [] then
    Format.fprintf ppf "(no recorded metrics)@."

let to_json s =
  let open Support.Json in
  Obj
    [
      ("counters", Obj (List.map (fun (name, v) -> (name, Int v)) s.counters));
      ( "histograms",
        Obj
          (List.map
             (fun (name, h) ->
               ( name,
                 Obj
                   [
                     ("count", Int h.count);
                     ("total_ns", Int h.total_ns);
                     ("min_ns", Int h.min_ns);
                     ("max_ns", Int h.max_ns);
                     ( "buckets",
                       List
                         (List.map
                            (fun (b, n) -> List [ Int b; Int n ])
                            h.buckets) );
                   ] ))
             s.histograms) );
    ]
