(* Cross-PR benchmark trajectory: aggregate the committed
   bench/BENCH_*.json points (and a freshly measured one, in CI) into a
   per-section series with summary statistics and a regression flag for
   the newest point. This is the across-PRs half of the flight
   recorder: bench_diff compares two reports; the timeline watches the
   whole history and knows its own variance. *)

open Support

type point = {
  label : string;
  git_commit : string;
  hostname : string;
  sections : (string * float) list; (* section_seconds, report order *)
}

type row = {
  section : string;
  values : float option array; (* one per point; [None] = absent *)
  median : float; (* over present values *)
  vmin : float;
  vmax : float;
  stddev : float; (* sample stddev, 0. when < 2 values *)
  last_rel : float option; (* newest gated value vs median of prior gated *)
  regressed : bool;
  improved : bool;
}

type report = {
  points : point list;
  gated : bool array; (* per point; foreign-host points are excluded *)
  rows : row list;
  regressions : int;
  threshold : float;
  floor : float;
}

(* ------------------------------------------------------------------ *)
(* Loading *)

let number_of = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let string_member name obj =
  match Json.member name obj with Some (Json.String s) -> s | _ -> ""

let point_of_report ~label doc =
  match Json.member "section_seconds" doc with
  | Some (Json.Obj fields) ->
      let sections =
        List.filter_map
          (fun (name, v) -> Option.map (fun f -> (name, f)) (number_of v))
          fields
      in
      let meta = Option.value ~default:Json.Null (Json.member "meta" doc) in
      Ok
        {
          label;
          git_commit = string_member "git_commit" meta;
          hostname = string_member "hostname" meta;
          sections;
        }
  | _ -> Error (Printf.sprintf "%s: no section_seconds object" label)

(* A file is either one bench report or a bench_diff trajectory (a JSON
   list of reports, oldest first); trajectories flatten in order. *)
let points_of_doc ~label doc =
  match doc with
  | Json.List docs ->
      let n = List.length docs in
      List.mapi
        (fun i d ->
          let label = if n = 1 then label else Printf.sprintf "%s[%d]" label i in
          point_of_report ~label d)
        docs
      |> List.fold_left
           (fun acc r ->
             match (acc, r) with
             | Error e, _ -> Error e
             | Ok ps, Ok p -> Ok (p :: ps)
             | Ok _, Error e -> Error e)
           (Ok [])
      |> Result.map List.rev
  | Json.Obj _ -> Result.map (fun p -> [ p ]) (point_of_report ~label doc)
  | _ -> Error (Printf.sprintf "%s: expected a report object or list" label)

let points_of_string ~label s =
  match Json.of_string s with
  | Error e -> Error (Printf.sprintf "%s: %s" label e)
  | Ok doc -> points_of_doc ~label doc

(* ------------------------------------------------------------------ *)
(* Statistics *)

let median_of sorted =
  let n = Array.length sorted in
  if n = 0 then 0.
  else if n land 1 = 1 then sorted.(n / 2)
  else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.

let stats values =
  let present = Array.of_list (List.filter_map Fun.id (Array.to_list values)) in
  let n = Array.length present in
  if n = 0 then (0., 0., 0., 0.)
  else begin
    let sorted = Array.copy present in
    Array.sort compare sorted;
    let median = median_of sorted in
    let vmin = sorted.(0) and vmax = sorted.(n - 1) in
    let stddev =
      if n < 2 then 0.
      else begin
        let mean = Array.fold_left ( +. ) 0. present /. float_of_int n in
        let ss =
          Array.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0. present
        in
        sqrt (ss /. float_of_int (n - 1))
      end
    in
    (median, vmin, vmax, stddev)
  end

(* ------------------------------------------------------------------ *)
(* Analysis *)

let majority_hostname points =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let n = try Hashtbl.find tally p.hostname with Not_found -> 0 in
      Hashtbl.replace tally p.hostname (n + 1))
    points;
  List.fold_left
    (fun best p ->
      let n = Hashtbl.find tally p.hostname in
      match best with
      | Some (_, bn) when bn >= n -> best
      | _ -> Some (p.hostname, n))
    None points
  |> Option.map fst

let analyze ?(threshold = 0.25) ?(floor = 0.01) ?(gate_foreign = false) points =
  let points = (points : point list) in
  let np = List.length points in
  let gated =
    match majority_hostname points with
    | Some host when not gate_foreign ->
        Array.of_list (List.map (fun p -> String.equal p.hostname host) points)
    | _ -> Array.make np true
  in
  (* Union of section names, first-seen order. *)
  let seen = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (name, _) ->
          if not (Hashtbl.mem seen name) then begin
            Hashtbl.add seen name ();
            order := name :: !order
          end)
        p.sections)
    points;
  let sections = List.rev !order in
  let parr = Array.of_list points in
  let rows =
    List.map
      (fun section ->
        let values =
          Array.map (fun p -> List.assoc_opt section p.sections) parr
        in
        let median, vmin, vmax, stddev = stats values in
        (* Regression: the newest gated value against the median of the
           gated values before it — the trajectory's own baseline, so a
           single noisy historical point cannot mask a step change. *)
        let gated_vals =
          List.filteri (fun i _ -> gated.(i)) (Array.to_list values)
          |> List.filter_map Fun.id
        in
        let last_rel, regressed, improved =
          match List.rev gated_vals with
          | last :: (_ :: _ as prior_rev) ->
              let prior = Array.of_list (List.rev prior_rev) in
              Array.sort compare prior;
              let base = median_of prior in
              if base < floor && last < floor then (None, false, false)
              else begin
                let base = if base <= 0. then floor else base in
                let rel = (last -. base) /. base in
                (Some rel, rel > threshold, rel < -.threshold)
              end
          | _ -> (None, false, false)
        in
        { section; values; median; vmin; vmax; stddev; last_rel; regressed; improved })
      sections
  in
  let regressions = List.length (List.filter (fun r -> r.regressed) rows) in
  { points; gated; rows; regressions; threshold; floor }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let short_commit c = if String.length c > 8 then String.sub c 0 8 else c

let pp_value ppf = function
  | None -> Format.fprintf ppf "%10s" "-"
  | Some v -> Format.fprintf ppf "%10.4g" v

let pp ppf r =
  let np = List.length r.points in
  Format.fprintf ppf "benchmark trajectory: %d point%s, %d section%s@." np
    (if np = 1 then "" else "s")
    (List.length r.rows)
    (if List.length r.rows = 1 then "" else "s");
  List.iteri
    (fun i p ->
      Format.fprintf ppf "  [%d] %-14s %-9s host=%s%s@." i p.label
        (short_commit p.git_commit)
        (if p.hostname = "" then "?" else p.hostname)
        (if r.gated.(i) then "" else "  (foreign host: excluded from gating)"))
    r.points;
  Format.fprintf ppf "@.%-12s" "section";
  List.iteri (fun i _ -> Format.fprintf ppf " %9s[%d]" "" i) r.points;
  Format.fprintf ppf " %10s %10s %10s %10s %8s@." "median" "min" "max" "stddev"
    "lastΔ";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-12s" row.section;
      Array.iter (fun v -> Format.fprintf ppf "  %a" pp_value v) row.values;
      Format.fprintf ppf " %10.4g %10.4g %10.4g %10.4g" row.median row.vmin
        row.vmax row.stddev;
      (match row.last_rel with
      | None -> Format.fprintf ppf " %8s" "-"
      | Some rel -> Format.fprintf ppf " %+7.1f%%" (100. *. rel));
      if row.regressed then Format.fprintf ppf "  REGRESSED";
      if row.improved then Format.fprintf ppf "  improved";
      Format.fprintf ppf "@.")
    r.rows;
  if r.regressions > 0 then
    Format.fprintf ppf "@.%d section(s) REGRESSED beyond +%.0f%% vs trajectory median@."
      r.regressions (100. *. r.threshold)

let to_json r =
  let open Json in
  Obj
    [
      ( "points",
        List
          (List.mapi
             (fun i p ->
               Obj
                 [
                   ("label", String p.label);
                   ("git_commit", String p.git_commit);
                   ("hostname", String p.hostname);
                   ("gated", Bool r.gated.(i));
                 ])
             r.points) );
      ( "sections",
        Obj
          (List.map
             (fun row ->
               ( row.section,
                 Obj
                   [
                     ( "values",
                       List
                         (Array.to_list
                            (Array.map
                               (function None -> Null | Some v -> Float v)
                               row.values)) );
                     ("median", Float row.median);
                     ("min", Float row.vmin);
                     ("max", Float row.vmax);
                     ("stddev", Float row.stddev);
                     ( "last_rel",
                       match row.last_rel with None -> Null | Some v -> Float v );
                     ("regressed", Bool row.regressed);
                     ("improved", Bool row.improved);
                   ] ))
             r.rows) );
      ("regressions", Int r.regressions);
      ("threshold", Float r.threshold);
      ("floor", Float r.floor);
    ]
