(** Structured, levelled JSONL event log — the third leg of the flight
    recorder. {!Metrics} aggregates, {!Tracer} keeps the timeline; this
    log keeps discrete {e events} as self-describing JSON lines:

    {v
    {"ts": 1754650000.123, "level": "warn", "event": "service.slow_query",
     "query": 41, "op": "ppsp", "wall_ms": 12.7, ...}
    v}

    Every line carries [ts] (Unix epoch seconds), [level], and [event]
    (a dotted name, catalogued in docs/OBSERVABILITY.md) followed by the
    emitter's fields. The query service builds its slow-query log on
    top: see [service.slow_query] / [service.query.done] there.

    The write path follows the recorder discipline: with no sink
    installed (the default) an {!event} is one atomic read; with one,
    lines accumulate in per-worker buffers (16 slots, tids fold in by
    masking, each slot individually locked because service threads share
    slot 0) and reach the sink in slot-sized chunks. [Warn]/[Error]
    events flush their slot immediately — a slow-query record must
    survive a crash — so lines from different workers interleave at
    chunk granularity; order across workers is by [ts], not file
    position. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

(** [level_of_string s] parses ["debug"]/["info"]/["warn"]/["error"]
    (case-insensitive; ["warning"] also accepted). *)
val level_of_string : string -> level option

(** [set_level l] drops events below [l]. Default: [Info]. *)
val set_level : level -> unit

(** [enabled l] is true when a sink is installed and [l] passes the
    threshold — check it before building expensive fields. *)
val enabled : level -> bool

(** [event ?tid level name fields] emits one line. [tid] picks the
    buffer slot (default 0). No-op (one atomic read) when [enabled
    level] is false. *)
val event : ?tid:int -> level -> string -> (string * Support.Json.t) list -> unit

(** {1 Sinks} *)

(** [open_file path] appends lines to [path], creating it if needed;
    the channel is flushed on every chunk. Replaces (and closes) any
    previous file sink; pending buffers are drained to the old sink
    first. Emits (and flushes) a [log.opened] Info record so a fresh
    sink is never silently empty. *)
val open_file : string -> unit

(** [set_writer w] installs [w] as the sink — it receives whole chunks
    of newline-terminated lines, already serialized, under the sink
    lock. [set_writer None] disables logging. Tests use this to capture
    records in memory. Drains pending buffers to the old sink first and
    closes any file sink. *)
val set_writer : (string -> unit) option -> unit

(** [flush ()] drains every worker buffer to the sink. *)
val flush : unit -> unit

(** [close ()] flushes, closes any file sink, and disables logging. *)
val close : unit -> unit
