(* The master switch is a compile-time constant: with [static_enabled =
   false] every guard below is [if false && ...], which the compiler
   folds away, leaving [with_ _ f = f ()]. *)
let static_enabled = true

let runtime_enabled = Atomic.make false
let set_enabled b = Atomic.set runtime_enabled (static_enabled && b)
let enabled () = static_enabled && Atomic.get runtime_enabled

(* Histogram/counter handles are resolved per label on the slow (enabled)
   path only; the registry memoizes them behind a mutex. Callers on hot
   paths should still hoist [with_] to round granularity. *)
let record label seconds =
  if enabled () then
    Metrics.observe (Metrics.histogram Metrics.default label) seconds

let count ~tid ?(by = 1) label =
  if enabled () then
    Metrics.incr (Metrics.counter Metrics.default label) ~tid ~by ()

(* A span feeds two sinks with independent switches: the metrics
   histograms (aggregate, [enabled]) and the current tracer (timeline,
   [Tracer.current]). Both off — the common case — costs two flag reads
   before the body runs. *)
let with_ ?(tid = 0) ?arg label f =
  let tracer = Tracer.current () in
  if (not (enabled ())) && tracer = None then f ()
  else begin
    (match tracer with
    | Some t -> Tracer.begin_ t ~tid ?arg (Tracer.label label)
    | None -> ());
    let start = Unix.gettimeofday () in
    let finish () =
      record label (Unix.gettimeofday () -. start);
      match tracer with
      | Some t -> Tracer.end_ t ~tid (Tracer.label label)
      | None -> ()
    in
    match f () with
    | result ->
        finish ();
        result
    | exception exn ->
        finish ();
        raise exn
  end

(* ------------------------------------------------------------------ *)
(* Pool wiring: the parallel substrate cannot depend on this library, so
   it exposes a hook and we install the recorder into it. *)

let pool_hook ~workers:_ ~seconds =
  if enabled () then begin
    record "pool.episode" seconds;
    count ~tid:0 "pool.episodes"
  end

let install_pool_hook () = Parallel.Pool.set_episode_hook (Some pool_hook)
let remove_pool_hook () = Parallel.Pool.set_episode_hook None
