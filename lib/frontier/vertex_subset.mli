(** Sets of active vertices (the [vertexset] of the DSL, Ligra's
    vertexSubset).

    A subset has a dual representation: sparse (an array of vertex ids, good
    for small frontiers and push traversal) or dense (a membership bitmap,
    good for large frontiers and pull traversal). Conversions are explicit;
    the engine picks the representation dictated by the schedule's traversal
    direction. *)

type t

(** [of_array ~num_vertices ids] is a sparse subset. Ids must be unique and
    in range; this is checked. *)
val of_array : num_vertices:int -> int array -> t

(** [of_vec ~num_vertices vec] is a sparse subset taking ownership of the
    elements of [vec] (not the vector itself). *)
val of_vec : num_vertices:int -> Support.Int_vec.t -> t

(** [unsafe_of_array ~num_vertices ids] is a sparse subset that takes
    ownership of [ids] without copying or validating. The caller must
    guarantee uniqueness and range; bucket extraction already does, and
    skipping the O(n) check matters on road networks with tens of thousands
    of tiny frontiers. *)
val unsafe_of_array : num_vertices:int -> int array -> t

(** [singleton ~num_vertices v] contains exactly [v]. Range-checks [v] but
    pays none of [of_array]'s O(n) validation. *)
val singleton : num_vertices:int -> int -> t

(** [empty ~num_vertices] contains nothing. O(1). *)
val empty : num_vertices:int -> t

(** [full ~num_vertices] contains every vertex. Builds the identity member
    array without the O(n) duplicate check (it is unique by
    construction). *)
val full : num_vertices:int -> t

(** [num_vertices t] is the universe size. *)
val num_vertices : t -> int

(** [cardinal t] is the number of members. *)
val cardinal : t -> int

(** [is_empty t] is [cardinal t = 0]. *)
val is_empty : t -> bool

(** [mem t v] tests membership. O(1) dense; forces densification the first
    time it is called on a sparse subset. *)
val mem : t -> int -> bool

(** [iter f t] applies [f] to every member. Order is unspecified. *)
val iter : (int -> unit) -> t -> unit

(** [to_sorted_array t] is the members in increasing order (fresh array). *)
val to_sorted_array : t -> int array

(** [sparse_members t] is the members as an array in unspecified order,
    without copying when the subset is already sparse. Do not mutate. *)
val sparse_members : t -> int array

(** [dense_flags t] is the membership bitmap, densifying if needed. Do not
    mutate. *)
val dense_flags : t -> Support.Bitset.t

(** [fill_flags t flags] adds every member to [flags], and [clear_flags]
    removes them again — the clear-by-members sweep that lets a traversal
    scratch reuse one bitmap across rounds (O(|t|) per round) instead of
    allocating a fresh O(n) bitmap per dense round. [flags] must belong to
    the same universe. *)
val fill_flags : t -> Support.Bitset.t -> unit

val clear_flags : t -> Support.Bitset.t -> unit

(** [out_degree_sum graph t] sums the out-degrees of the members — the
    quantity Julienne computes each round to drive direction selection
    (§6.2 of the paper). *)
val out_degree_sum : Graphs.Csr.t -> t -> int

(** [equal_members a b] tests extensional equality. *)
val equal_members : t -> t -> bool
