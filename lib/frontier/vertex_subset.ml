module Bitset = Support.Bitset
module Int_vec = Support.Int_vec

type t = {
  n : int;
  mutable sparse : int array option;
  mutable dense : Bitset.t option;
  mutable card : int;
}

let check_members n ids =
  let seen = Bitset.create n in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Vertex_subset: vertex out of range";
      if Bitset.mem seen v then invalid_arg "Vertex_subset: duplicate member";
      Bitset.add seen v)
    ids;
  seen

let of_array ~num_vertices ids =
  let dense = check_members num_vertices ids in
  { n = num_vertices; sparse = Some (Array.copy ids); dense = Some dense;
    card = Array.length ids }

let of_vec ~num_vertices vec = of_array ~num_vertices (Int_vec.to_array vec)

let unsafe_of_array ~num_vertices ids =
  { n = num_vertices; sparse = Some ids; dense = None; card = Array.length ids }

(* The fixed-shape constructors are correct by construction: a range check
   is all [singleton] needs, and [empty]/[full] need nothing, so none of
   them pay [of_array]'s O(n) duplicate-check bitset. *)
let singleton ~num_vertices v =
  if v < 0 || v >= num_vertices then
    invalid_arg "Vertex_subset.singleton: vertex out of range";
  { n = num_vertices; sparse = Some [| v |]; dense = None; card = 1 }

let empty ~num_vertices =
  { n = num_vertices; sparse = Some [||]; dense = None; card = 0 }

let full ~num_vertices =
  {
    n = num_vertices;
    sparse = Some (Array.init num_vertices (fun i -> i));
    dense = None;
    card = num_vertices;
  }

let num_vertices t = t.n
let cardinal t = t.card
let is_empty t = t.card = 0

let densify t =
  match t.dense with
  | Some flags -> flags
  | None ->
      let flags = Bitset.create t.n in
      (match t.sparse with
      | Some ids -> Array.iter (Bitset.add flags) ids
      | None -> assert false);
      t.dense <- Some flags;
      flags

let sparsify t =
  match t.sparse with
  | Some ids -> ids
  | None ->
      let flags =
        match t.dense with
        | Some flags -> flags
        | None -> assert false
      in
      let ids = Array.make t.card 0 in
      let k = ref 0 in
      Bitset.iter
        (fun v ->
          ids.(!k) <- v;
          incr k)
        flags;
      t.sparse <- Some ids;
      ids

let mem t v = Bitset.mem (densify t) v

let iter f t =
  match t.sparse with
  | Some ids -> Array.iter f ids
  | None -> Bitset.iter f (densify t)

let to_sorted_array t =
  let ids = Array.copy (sparsify t) in
  Array.sort compare ids;
  ids

let sparse_members t = sparsify t
let dense_flags t = densify t

let fill_flags t flags = iter (Bitset.add flags) t
let clear_flags t flags = iter (Bitset.remove flags) t

let out_degree_sum graph t =
  let total = ref 0 in
  iter (fun v -> total := !total + Graphs.Csr.out_degree graph v) t;
  !total

let equal_members a b =
  a.n = b.n && a.card = b.card && to_sorted_array a = to_sorted_array b
