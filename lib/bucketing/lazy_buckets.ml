module Int_vec = Support.Int_vec

type key_source =
  | Closure of (int -> int)
  | Vector of Parallel.Atomic_array.t * Bucket_order.direction * int

type t = {
  num_vertices : int;
  num_open : int;
  source : key_source;
  open_buckets : Int_vec.t array;
  overflow : Int_vec.t;
  overflow_spill : Int_vec.t; (* scratch for redistribution *)
  (* [window_lo] is the key of slot 0 once the window is materialized;
     until then every insert lands in the overflow bucket. *)
  mutable window_lo : int;
  mutable window_set : bool;
  mutable cur : int;
  stamps : int array; (* extraction dedup: stamp per vertex *)
  mutable stamp : int;
  mutable total_inserts : int;
}

let key_of t v =
  match t.source with
  | Closure f -> f v
  | Vector (priorities, direction, delta) ->
      Bucket_order.key_of_priority ~direction ~delta
        (Parallel.Atomic_array.get priorities v)

let create ~num_vertices ~num_open ~source () =
  if num_open < 1 then invalid_arg "Lazy_buckets.create: num_open must be >= 1";
  {
    num_vertices;
    num_open;
    source;
    open_buckets = Array.init num_open (fun _ -> Int_vec.create ~capacity:4 ());
    overflow = Int_vec.create ();
    overflow_spill = Int_vec.create ();
    window_lo = 0;
    window_set = false;
    cur = min_int;
    stamps = Array.make num_vertices (-1);
    stamp = 0;
    total_inserts = 0;
  }

let insert t v =
  let key = key_of t v in
  if key <> Bucket_order.null_key then begin
    t.total_inserts <- t.total_inserts + 1;
    if (not t.window_set) || key >= t.window_lo + t.num_open then Int_vec.push t.overflow v
    else begin
      (* Keys behind the cursor can only arise from same-bucket updates
         (monotonic priorities); clamp them into the current bucket. *)
      let key = max key (max t.cur t.window_lo) in
      Int_vec.push t.open_buckets.(key - t.window_lo) v
    end
  end

let insert_all t =
  Observe.Span.with_ "lazy_buckets.insert_all" (fun () ->
      for v = 0 to t.num_vertices - 1 do
        insert t v
      done)

(* Move every overflow vertex whose key now falls inside the window rooted
   at [new_lo] into the open buckets; keep the rest in overflow.

   Keys at or behind the just-exhausted cursor are STALE and must be
   dropped: every priority change inserts a fresh copy at its new location,
   so by the time the window is exhausted, any vertex whose current key is
   <= cur was already extracted from its proper bucket — an overflow copy
   re-reading that priority is a leftover. Re-materializing it would emit
   the vertex a second time (double-peeling it in k-core). *)
let materialize_window t new_lo =
  let old_cur = if t.window_set then t.cur else min_int in
  t.window_lo <- new_lo;
  t.window_set <- true;
  t.cur <- new_lo;
  Int_vec.clear t.overflow_spill;
  Int_vec.iter
    (fun v ->
      let key = key_of t v in
      if key <> Bucket_order.null_key && key >= new_lo && key > old_cur then
        if key < new_lo + t.num_open then
          Int_vec.push t.open_buckets.(key - new_lo) v
        else Int_vec.push t.overflow_spill v)
    t.overflow;
  Int_vec.swap_buffers t.overflow t.overflow_spill;
  Int_vec.clear t.overflow_spill

(* Smallest overflow key strictly after the cursor (see above: keys at or
   behind it are stale copies). *)
let min_overflow_key t =
  let cur = if t.window_set then t.cur else min_int in
  Int_vec.fold
    (fun acc v ->
      let key = key_of t v in
      if key = Bucket_order.null_key || key <= cur then acc else min acc key)
    Bucket_order.null_key t.overflow

(* Drain one open bucket, returning the live, deduplicated members. *)
let drain_bucket t slot key =
  let bucket = t.open_buckets.(slot) in
  t.stamp <- t.stamp + 1;
  let live = Int_vec.create ~capacity:(Int_vec.length bucket) () in
  Int_vec.iter
    (fun v ->
      if t.stamps.(v) <> t.stamp && key_of t v = key then begin
        t.stamps.(v) <- t.stamp;
        Int_vec.push live v
      end)
    bucket;
  Int_vec.clear bucket;
  Int_vec.to_array live

let rec next_bucket_loop t =
  if not t.window_set then begin
    if Int_vec.is_empty t.overflow then None
    else begin
      let new_lo = min_overflow_key t in
      if new_lo = Bucket_order.null_key then begin
        Int_vec.clear t.overflow;
        None
      end
      else begin
        materialize_window t new_lo;
        next_bucket_loop t
      end
    end
  end
  else begin
    let start_slot = max 0 (t.cur - t.window_lo) in
    let rec scan slot =
      if slot >= t.num_open then
        (* Window exhausted: re-root it at the smallest overflow key. *)
        if Int_vec.is_empty t.overflow then None
        else begin
          let new_lo = min_overflow_key t in
          if new_lo = Bucket_order.null_key then begin
            Int_vec.clear t.overflow;
            None
          end
          else begin
            materialize_window t new_lo;
            next_bucket_loop t
          end
        end
      else if Int_vec.is_empty t.open_buckets.(slot) then scan (slot + 1)
      else begin
        let key = t.window_lo + slot in
        let members = drain_bucket t slot key in
        t.cur <- key;
        if Array.length members = 0 then scan slot else Some (key, members)
      end
    in
    scan start_slot
  end

(* The extraction sweep is a between-phase operation: one span per call is
   round-granular, not hot-path. *)
let next_bucket t =
  Observe.Span.with_ ~arg:t.cur "lazy_buckets.next_bucket" (fun () ->
      next_bucket_loop t)

let current_key t = t.cur
let total_inserts t = t.total_inserts
