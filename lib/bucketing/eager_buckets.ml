module Int_vec = Support.Int_vec

type local = {
  mutable bins : Int_vec.t array; (* slot i holds key base + i *)
  mutable min_slot : int; (* lower bound on the smallest non-empty slot *)
  mutable inserts : int;
}

type t = {
  workers : int;
  base : int;
  locals : local array;
  mutable cur_slot : int;
}

let create ~num_workers ~min_key () =
  if num_workers < 1 then invalid_arg "Eager_buckets.create: num_workers >= 1";
  {
    workers = num_workers;
    base = min_key;
    locals =
      Array.init num_workers (fun _ ->
          { bins = [||]; min_slot = max_int; inserts = 0 });
    cur_slot = 0;
  }

let num_workers t = t.workers

let ensure_slot local slot =
  if slot >= Array.length local.bins then begin
    let len = max (slot + 1) (max 8 (2 * Array.length local.bins)) in
    let bins = Array.init len (fun i ->
        if i < Array.length local.bins then local.bins.(i)
        else Int_vec.create ~capacity:2 ())
    in
    local.bins <- bins
  end

let insert t ~tid ~vertex ~key =
  if key <> Bucket_order.null_key then begin
    let local = t.locals.(tid) in
    (* Monotonic priorities never move behind the cursor except within the
       current bucket; clamp defensively, as GAPBS does with its floor. *)
    let slot = max (key - t.base) t.cur_slot in
    ensure_slot local slot;
    Int_vec.push local.bins.(slot) vertex;
    if slot < local.min_slot then local.min_slot <- slot;
    local.inserts <- local.inserts + 1
  end

(* Both global operations below run once per round, between parallel
   phases — round-granular spans, never per-edge. *)
let next_global_key t =
  Observe.Span.with_ "eager_buckets.next_global_key" (fun () ->
      let best = ref max_int in
      Array.iter
        (fun local ->
          let len = Array.length local.bins in
          let slot = ref (max local.min_slot t.cur_slot) in
          while
            !slot < len && !slot < !best && Int_vec.is_empty local.bins.(!slot)
          do
            incr slot
          done;
          local.min_slot <- !slot;
          if
            !slot < len && !slot < !best
            && not (Int_vec.is_empty local.bins.(!slot))
          then best := !slot)
        t.locals;
      if !best = max_int then None
      else begin
        t.cur_slot <- !best;
        Some (t.base + !best)
      end)

let cursor_key t = t.base + t.cur_slot

let drain_global t ~key =
  Observe.Span.with_ ~arg:key "eager_buckets.drain_global" (fun () ->
      let slot = key - t.base in
      let total =
        Array.fold_left
          (fun acc local ->
            if slot < Array.length local.bins then
              acc + Int_vec.length local.bins.(slot)
            else acc)
          0 t.locals
      in
      let out = Array.make total 0 in
      let pos = ref 0 in
      Array.iter
        (fun local ->
          if slot < Array.length local.bins then begin
            let bin = local.bins.(slot) in
            Int_vec.blit_to_array bin out !pos;
            pos := !pos + Int_vec.length bin;
            Int_vec.clear bin
          end)
        t.locals;
      out)

let local_size t ~tid ~key =
  let local = t.locals.(tid) in
  let slot = key - t.base in
  if slot < Array.length local.bins then Int_vec.length local.bins.(slot) else 0

let take_local t ~tid ~key =
  let local = t.locals.(tid) in
  let slot = key - t.base in
  if slot >= Array.length local.bins || Int_vec.is_empty local.bins.(slot) then None
  else begin
    let bin = local.bins.(slot) in
    let out = Int_vec.to_array bin in
    Int_vec.clear bin;
    Some out
  end

let total_inserts t =
  Array.fold_left (fun acc local -> acc + local.inserts) 0 t.locals
