(** The lazy bucket-update buffer (Figure 5 of the paper).

    During a round's parallel edge phase, each worker appends the vertices
    whose priority it changed. A compare-and-swap deduplication flag per
    vertex guarantees one buffered copy per round, which is the paper's
    "reduceBucketUpdates": when the buffer is drained, each vertex receives
    a single bucket update computed from its final priority. *)

type t

(** [create ~num_vertices ~num_workers ()] allocates the per-worker segments
    and the deduplication flags. *)
val create : num_vertices:int -> num_workers:int -> unit -> t

(** [try_add t ~tid v] buffers [v] unless it is already buffered this round;
    returns whether it was added. Thread-safe. *)
val try_add : t -> tid:int -> int -> bool

(** [size t] is the number of buffered vertices. Call between phases. *)
val size : t -> int

(** [drain t f] applies [f] to every buffered vertex, then resets the buffer
    and flags for the next round. Call between phases. *)
val drain : t -> (int -> unit) -> unit

(** [drain_to_array t ~pool] is {!drain} specialized to collecting the
    buffered vertices into a fresh array (the common case: the next round's
    frontier). Large buffers are copied and their deduplication flags reset
    in parallel, one segment per worker, when [pool] matches the buffer's
    worker count; the element order equals {!drain}'s either way. Call
    between phases. *)
val drain_to_array : t -> pool:Parallel.Pool.t -> int array

(** [total_added t] counts vertices buffered over the structure's lifetime
    (one bucket insertion each under the lazy strategy). *)
val total_added : t -> int
