module Int_vec = Support.Int_vec
module Atomic_array = Parallel.Atomic_array

type t = {
  segments : Int_vec.t array; (* one per worker *)
  flags : Atomic_array.t;
  mutable total : int;
}

let create ~num_vertices ~num_workers () =
  {
    segments = Array.init num_workers (fun _ -> Int_vec.create ());
    flags = Atomic_array.make num_vertices 0;
    total = 0;
  }

let try_add t ~tid v =
  if Atomic_array.compare_and_set t.flags v ~expected:0 ~desired:1 then begin
    Int_vec.push t.segments.(tid) v;
    true
  end
  else false

let size t = Array.fold_left (fun acc seg -> acc + Int_vec.length seg) 0 t.segments

let drain t f =
  Array.iter
    (fun seg ->
      Int_vec.iter
        (fun v ->
          Atomic_array.set t.flags v 0;
          t.total <- t.total + 1;
          f v)
        seg;
      Int_vec.clear seg)
    t.segments

(* Below this size the barrier costs more than the copy. *)
let parallel_drain_threshold = 2048

let drain_to_array t ~pool =
  let workers = Array.length t.segments in
  let offsets = Array.make (workers + 1) 0 in
  for tid = 0 to workers - 1 do
    offsets.(tid + 1) <- offsets.(tid) + Int_vec.length t.segments.(tid)
  done;
  let total = offsets.(workers) in
  let out = Array.make total 0 in
  let drain_segment tid =
    let seg = t.segments.(tid) in
    Int_vec.blit_to_array seg out offsets.(tid);
    Int_vec.iter (fun v -> Atomic_array.set t.flags v 0) seg;
    Int_vec.clear seg
  in
  if
    total >= parallel_drain_threshold
    && Parallel.Pool.num_workers pool = workers
    && workers > 1
  then
    (* Segment [tid] is copied and its flags reset by worker [tid] — the
       round that filled the buffer balanced the segments already. *)
    Parallel.Pool.run_workers pool drain_segment
  else
    for tid = 0 to workers - 1 do
      drain_segment tid
    done;
  t.total <- t.total + total;
  out

let total_added t = t.total
