type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                             *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g round-trips every finite double; JSON has no nan/inf, so those
   become null (a nan bench cell means "not supported"). *)
let float_token f =
  if not (Float.is_finite f) then "null" else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_token f)
  | String s -> escape_string buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as atom ->
      Format.pp_print_string ppf (to_string atom)
  | List [] -> Format.pp_print_string ppf "[]"
  | List xs ->
      Format.fprintf ppf "[@;<0 2>@[<v>%a@]@,]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           pp)
        xs
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
      let field ppf (k, v) =
        Format.fprintf ppf "%s: %a" (to_string (String k)) pp v
      in
      Format.fprintf ppf "{@;<0 2>@[<v>%a@]@,}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           field)
        fields

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the string.                    *)

exception Parse_error of string

type cursor = {
  src : string;
  mutable pos : int;
}

let fail c msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    &&
    match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let add_utf8 buf code =
  (* Encode a BMP code point from a \uXXXX escape. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some e ->
            c.pos <- c.pos + 1;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.src then fail c "short \\u escape";
                let hex = String.sub c.src c.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail c "bad \\u escape"
                in
                c.pos <- c.pos + 4;
                add_utf8 buf code
            | _ -> fail c "unknown escape");
            go ())
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume_digits () =
    while
      match peek c with Some ('0' .. '9') -> true | _ -> false
    do
      c.pos <- c.pos + 1
    done
  in
  if peek c = Some '-' then c.pos <- c.pos + 1;
  consume_digits ();
  if peek c = Some '.' then begin
    is_float := true;
    c.pos <- c.pos + 1;
    consume_digits ()
  end;
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      c.pos <- c.pos + 1;
      (match peek c with
      | Some ('+' | '-') -> c.pos <- c.pos + 1
      | _ -> ());
      consume_digits ()
  | _ -> ());
  let token = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt token with
    | Some f -> Float f
    | None -> fail c "malformed number"
  else
    match int_of_string_opt token with
    | Some i -> Int i
    | None -> (
        (* Integer literal beyond the int range: keep it as a float. *)
        match float_of_string_opt token with
        | Some f -> Float f
        | None -> fail c "malformed number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %C" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "at offset %d: trailing garbage" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Float x, Float y -> x = y
  | String x, String y -> x = y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (ka, va) (kb, vb) -> ka = kb && equal va vb)
           xs ys
  | _ -> false

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
