(** A minimal JSON tree with a hand-rolled emitter and parser.

    This backs the machine-readable exports of the observability layer
    (bench [--json], {!Observe.Metrics.to_json} via [lib/observe]) without
    pulling in an external dependency. The emitter always produces valid
    RFC 8259 JSON; the parser accepts exactly that grammar and exists so
    exports can be read back (CI trajectory diffs, the parse-back property
    tests). See [docs/OBSERVABILITY.md] for the schemas built on top. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
      (** Non-finite floats cannot be represented in JSON and are emitted
          as [null] (a nan benchmark cell means "not supported"). *)
  | String of string
  | List of t list
  | Obj of (string * t) list  (** Fields are emitted in list order. *)

(** [to_string t] is the compact (single-line) serialization. *)
val to_string : t -> string

(** [pp ppf t] pretty-prints with two-space indentation — the form written
    by [bench --json FILE] so trajectory files diff cleanly line-by-line. *)
val pp : Format.formatter -> t -> unit

(** [of_string s] parses a serialized document. Numbers with a fraction,
    exponent, or magnitude beyond [int] parse as [Float]; [null] parses as
    [Null] (so non-finite floats do not round-trip, by design). *)
val of_string : string -> (t, string) result

(** [equal a b] is structural equality with numeric tolerance: [Int] and
    [Float] compare by numeric value, so a value survives
    {!to_string}/{!of_string} even when the parser reads [1.0] back as an
    integer-valued float. *)
val equal : t -> t -> bool

(** [member name obj] is the first field named [name], if [obj] is an
    object that has one. Convenience for tests and consumers of dumps. *)
val member : string -> t -> t option
