let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_median ~repeats f =
  if repeats <= 0 then invalid_arg "Timer.time_median: repeats must be positive";
  let samples = Array.make repeats 0.0 in
  let last = ref None in
  for i = 0 to repeats - 1 do
    let result, elapsed = time f in
    samples.(i) <- elapsed;
    last := Some result
  done;
  Array.sort compare samples;
  let result =
    match !last with
    | Some r -> r
    | None -> assert false
  in
  (result, samples.(repeats / 2))

type stats = {
  median : float;
  min : float;
  max : float;
}

let time_stats ~repeats f =
  if repeats <= 0 then invalid_arg "Timer.time_stats: repeats must be positive";
  let samples = Array.make repeats 0.0 in
  let last = ref None in
  for i = 0 to repeats - 1 do
    let result, elapsed = time f in
    samples.(i) <- elapsed;
    last := Some result
  done;
  Array.sort compare samples;
  let result =
    match !last with
    | Some r -> r
    | None -> assert false
  in
  ( result,
    {
      median = samples.(repeats / 2);
      min = samples.(0);
      max = samples.(repeats - 1);
    } )
