(** Wall-clock timing helpers for the benchmark harness. *)

(** [time f] is [(f (), seconds_elapsed)]. *)
val time : (unit -> 'a) -> 'a * float

(** [time_median ~repeats f] runs [f] [repeats] times and returns the result
    of the last run with the median elapsed seconds. [repeats] must be
    positive. *)
val time_median : repeats:int -> (unit -> 'a) -> 'a * float

(** Summary of the elapsed-seconds samples of repeated runs. *)
type stats = {
  median : float;
  min : float;
  max : float;
}

(** [time_stats ~repeats f] is {!time_median} but returns the full
    median/min/max spread of the samples, for benchmark rows that report
    run-to-run variance. *)
val time_stats : repeats:int -> (unit -> 'a) -> 'a * stats
