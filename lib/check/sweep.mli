(** The schedule-space differential sweep.

    One algorithm text must produce oracle-equivalent results under every
    point of the paper's schedule space (Table 2). {!run} enumerates, per
    app and graph, the cross-product

    {v strategy × Δ ∈ {1, 2, 8, Δ*} × traversal (push/pull/hybrid)
     × open-bucket count × fusion threshold × Static/Dynamic/Guided
     × 1/2/4 workers v}

    plus a few {!Autotune.Search_space} samples, runs the app on each
    point, and judges the result with {!Oracle}. A failing point is
    shrunk (ddmin over the edge list, then a vertex trim) and reported
    with a paste-able [check_runner] repro line.

    Everything is deterministic in [seed] — graph contents, sampled
    schedules, and (given the same machine timing) the chaos streams. *)

type app = Sssp | Wbfs | Ppsp | Astar | Kcore | Setcover

val all_apps : app list
val app_to_string : app -> string
val app_of_string : string -> (app, string) result

(** [schedule_to_string] / [schedule_of_string] round-trip a schedule
    through the repro-line syntax
    ([strategy=lazy,delta=2,...,sched=guided]); parsing starts from
    {!Ordered.Schedule.default}, so keys may be omitted, and validates
    the result. *)
val schedule_to_string : Ordered.Schedule.t -> string

val schedule_of_string : string -> (Ordered.Schedule.t, string) result

(** A substrate variant: which storage layout to traverse with, which
    vertex reordering to apply first, and whether the graph must survive
    a [save-bin] → [load-bin] round trip before running. The oracles
    judge apps on the transformed graph, so a variant failure isolates
    the substrate. *)
type variant = {
  layout : Graphs.Layout.kind;
  reorder : Graphs.Reorder.kind;
  bin_roundtrip : bool;
}

(** Plain layout, identity order, no round trip — the historical sweep. *)
val default_variant : variant

(** The default axis: plain and compressed layouts, each also under the
    degree reordering, plus a binary round trip on the plain layout. *)
val default_variants : variant list

type config = {
  app : app;
  spec : Graph_case.spec;
  schedule : Ordered.Schedule.t;
  workers : int;
  variant : variant;
}

(** [repro_line ~seed config] is the [check_runner] invocation that
    re-runs exactly [config]. *)
val repro_line : ?chaos:bool -> seed:int -> config -> string

(** [run_one ~pool app case schedule] runs one configuration and judges
    it against [oracle] (default {!Oracle.default}). Engine exceptions
    are reported as [Error] like any mismatch. k-core and set cover run
    on the symmetrized edge list; A* requires [case.coords]. [variant]
    (default {!default_variant}) first applies the substrate transforms:
    reordering rewrites the case's edge list and coordinates, [layout]
    picks the traversal storage, and [bin_roundtrip] passes the graph
    through the binary format (a round trip that changes the graph is an
    [Error]). *)
val run_one :
  ?oracle:Oracle.t ->
  ?variant:variant ->
  pool:Parallel.Pool.t ->
  app ->
  Graph_case.t ->
  Ordered.Schedule.t ->
  (unit, string) result

(** [shrink ~check case] minimizes [case]'s edge list with ddmin while
    [check] keeps failing (returns [true]), then trims unused trailing
    vertices; [None] when no smaller failing case was found. Bounded at
    a few hundred probes. *)
val shrink :
  check:(Graph_case.t -> bool) -> Graph_case.t -> Graph_case.spec option

type failure = {
  config : config;
  message : string;
  shrunk : Graph_case.spec option;
  repro : string;  (** Repro line for the shrunk (or original) graph. *)
}

type summary = {
  configs_run : int;
  per_app : (app * int) list;
  failures : failure list;
  elapsed_seconds : float;
  budget_exhausted : bool;
  race_findings : int;  (** 0 unless [race] was set. *)
}

(** The default graph catalogue for [seed]: random multigraphs, road
    grids, and the degenerate shapes (edgeless, singleton, self-loops,
    duplicate edges). *)
val default_specs : seed:int -> Graph_case.spec list

(** [run ()] sweeps [apps] × [specs] × [variants] (default
    {!default_variants}) × the schedule grid × [workers]
    (pools are created once per worker count and reused) until done or
    [budget] seconds elapse, stopping early after [max_failures]
    failures. [chaos] enables seeded scheduling perturbation
    ({!Parallel.Chaos}) for the whole sweep; [race] enables the
    plain-write detector ({!Parallel.Race}) and reports its finding
    count. [log] receives one line per failure and per repro. *)
val run :
  ?oracle:Oracle.t ->
  ?apps:app list ->
  ?specs:Graph_case.spec list ->
  ?variants:variant list ->
  ?workers:int list ->
  ?budget:float ->
  ?seed:int ->
  ?max_failures:int ->
  ?chaos:bool ->
  ?race:bool ->
  ?log:(string -> unit) ->
  unit ->
  summary
