(** Named, seeded graph inputs for the differential sweep, round-tripping
    through compact strings so every failure prints a self-contained repro
    line ([check_runner --graph 'random:seed=3,n=48,m=200,w=12']).

    The catalogue covers both regimes the paper evaluates (power-law-ish
    random multigraphs for the social-network side, perturbed road grids
    with coordinates for the A*/road side) and the degenerate shapes from
    [test_robustness] (edgeless, singleton-via-[Edgeless 1], self-loops,
    duplicate edges). [Explicit] carries a literal edge list — the form
    shrunk counterexamples are reported in. *)

type spec =
  | Random of { seed : int; n : int; m : int; max_w : int }
      (** [m] independent uniform (src, dst, weight) draws — self-loops and
          parallel edges included. *)
  | Dup_edges of { seed : int; n : int; m : int; max_w : int }
      (** {!Random} with every edge duplicated at weight+1. *)
  | Road of { seed : int; rows : int; cols : int }
      (** {!Graphs.Generators.road_grid}; the only generated spec with
          coordinates, hence the A* input. *)
  | Path of int
  | Cycle of int
  | Star of int
  | Complete of int
  | Edgeless of int
  | Self_loops of int  (** A cycle plus a self-loop on every vertex. *)
  | Explicit of {
      num_vertices : int;
      edges : (int * int * int) list;  (** [(src, dst, weight)] *)
      coords : (float * float) list option;
    }

type t = {
  spec : spec;
  el : Graphs.Edge_list.t;
  coords : Graphs.Coords.t option;
}

(** [build spec] materializes the edge list (deterministic in the spec).
    Raises [Invalid_argument] for specs violating {!Graphs.Edge_list}'s
    invariants (out-of-range endpoints, non-positive weights). *)
val build : spec -> t

val to_string : spec -> string

(** [of_string s] parses what {!to_string} prints. *)
val of_string : string -> (spec, string) result
