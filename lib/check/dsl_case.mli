(** Seeded, printable DSL programs for the differential sweep.

    A case is a small well-typed GraphIt program built from a family
    skeleton — the §5.2 ordered-loop pattern around one of the paper's
    Table 1 update operators — plus a set of optional {e genes}, each an
    independent statement-level feature (a redundant guard, a second
    vector updated with a reduction, a stop vertex, a [print]). Genes are
    chosen so every program terminates and its observable results are
    schedule-independent, which is what lets three lanes (transform-free
    interpreter, scheduled engine, generated C++) be compared exactly.

    Specs round-trip through compact strings ([min:guard+reach+print]) so
    failures print self-contained repro lines, and ddmin shrinking over
    programs is just shrinking the gene list. *)

type family =
  | Min_relax  (** SSSP-shaped: [updatePriorityMin], lower-first. *)
  | Max_relax  (** Widest-path-shaped: [updatePriorityMax], higher-first. *)
  | Sum_peel
      (** k-core-shaped: constant-diff [updatePrioritySum] over the
          symmetrized graph, eligible for [lazy_constant_sum]. *)

val all_families : family list
val family_to_string : family -> string

type spec = {
  family : family;
  genes : string list;  (** Enabled genes, a subset of [all_genes]. *)
}

(** The gene pool of a family, in canonical order. *)
val all_genes : family -> string list

(** [generate ~seed i] is the [i]-th program of the seeded stream:
    families round-robin, gene subsets drawn from [seed]. *)
val generate : seed:int -> int -> spec

val to_string : spec -> string

(** [of_string s] parses what {!to_string} prints, rejecting unknown
    families and genes. *)
val of_string : string -> (spec, string) result

(** [render spec] prints the complete program text, ready for
    {!Dsl.Lower.lower_string} or a [.gt] file. [schedule] (default
    {!Ordered.Schedule.default}) is rendered into the [schedule:]
    section via the [Schedule_lang] directives; the worker-sched axis
    has no directive and is carried by the repro line instead. *)
val render : ?schedule:Ordered.Schedule.t -> spec -> string

(** Whether the sweep may compare full result vectors. [false] when the
    ["stop"] gene is on: an early-stopped run leaves non-finalized
    vertices at schedule-dependent values, so only printed output (the
    finalized target) is comparable. *)
val compare_vectors : spec -> bool

(** Statement count of the rendered program (user function plus [main]
    bodies); the ordered while-loop and its fixed dequeue/apply/delete
    body count as one statement — they are the irreducible §5.2 pattern.
    The forced-bug test bounds this after shrinking (bare [Min_relax] is
    5). *)
val num_statements : spec -> int

(** [argv ~graph_file spec] is the argument vector the rendered program
    expects: program name, graph file, then source/target as the genes
    require. [target] defaults to 0. *)
val argv : graph_file:string -> ?target:int -> spec -> string array

(** Grid constraints mirroring {!Sweep}'s per-app rules: which strategies
    a family tolerates ([Sum_peel] adds [lazy_constant_sum]) and which
    traversals a strategy supports (pull needs the lazy backends). *)
val strategies : family -> Ordered.Schedule.update_strategy list

val traversals :
  Ordered.Schedule.update_strategy -> Ordered.Schedule.traversal list
